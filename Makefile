# Developer entry points. `make check` is the gate every change must pass:
# it builds all packages, vets them, and runs the full test suite with the
# race detector on (the fleet orchestrator and the parallel bench paths
# are concurrent code).

GO ?= go

.PHONY: check build vet test race bench bench-smoke benchjson report sweep clean

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One iteration of every benchmark — the CI bit-rot gate for the perf
# harness.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Re-measure the perf suite and update BENCH_baseline.json's "current"
# section (the frozen "baseline" section is preserved).
benchjson:
	$(GO) run ./cmd/cebinae-bench -benchjson BENCH_baseline.json

# Regenerate the quick evaluation report on all cores with checkpointing.
report:
	$(GO) run ./cmd/cebinae-bench -scale quick -resume bench_quick.jsonl -o bench_report_quick.txt

# Default parameter sweep (Fig.12 family): JSONL + CSV.
sweep:
	$(GO) run ./cmd/cebinae-sweep -store sweep.jsonl -csv sweep.csv -resume

clean:
	rm -f bench_quick.jsonl bench_report_quick.txt sweep.jsonl sweep.csv
