# Developer entry points. `make check` is the gate every change must pass:
# it builds all packages, lints them (go vet + the cebinae-vet determinism
# & ownership analyzers, see STATIC_ANALYSIS.md), and runs the full test
# suite with the race detector on (the fleet orchestrator and the parallel
# bench paths are concurrent code).

GO ?= go

.PHONY: check build vet lint test race race-shard speedup-smoke fastforward-smoke scenario-conformance cover bench bench-smoke benchjson report sweep clean

check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet: the repo's own invariant analyzers
# (detsource/mapiter/pktown/simtime — the determinism contract), plus
# staticcheck when it is installed (it is not vendored: this build
# environment is offline, so it stays an optional layer; CI installs it).
lint:
	$(GO) run ./cmd/cebinae-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
	  staticcheck ./...; \
	else \
	  echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1 — the version CI pins)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sharded-engine determinism gate under the race detector: the SPSC
# handoff queues rely on barrier happens-before rather than atomics, so
# these are the tests that catch a reintroduced data race. The experiments
# differentials all run the min-cut auto-partitioned path (including the
# backbone's 3-shard cut-access-link case). CI runs this as its own cached
# job; `make race` still covers the whole tree.
race-shard:
	$(GO) test -race ./internal/shard
	$(GO) test -race -run 'TestShardDifferential|TestBackboneShardDifferential' ./experiments

# Wall-clock scaling gate (needs >= 2 cores): the auto-partitioned 2-shard
# chain spec must not run materially slower than single-engine.
speedup-smoke:
	CEBINAE_SPEEDUP_SMOKE=1 $(GO) test -run 'TestShardSpeedupSmoke' -v ./internal/benchkit/

# The fluid fast-forward gate: the short fluid-vs-packet differentials
# (error bound, determinism, forced-off byte-identity) plus the 10-minute
# scored cell, which must run ≥ 5× faster wall-clock with ≤ 1% per-flow
# goodput error against the exact packet-level run.
fastforward-smoke:
	$(GO) test -run 'TestFastForward' ./experiments/ ./internal/fluid/
	CEBINAE_FASTFORWARD_SMOKE=1 $(GO) test -run 'TestFastForwardLongHorizon' -v ./experiments/

# The declarative-scenario gate (mirrors the scenario-conformance CI
# job): canonical spec files stay byte-identical with their hand-built Go
# twins, validation diagnostics match their goldens, the CCA tournament /
# buffer sweeps hold the BBR-fairness signature, and a short fuzz run
# holds the parse→emit→parse round-trip law.
scenario-conformance:
	$(GO) test -run 'TestCanonicalFiles|TestEmitLoadIdentity|TestDifferential|TestDiagnosticsGolden|TestTournamentConformance|TestBufferSweepConformance' ./internal/scenario/
	$(GO) test -run '^$$' -fuzz FuzzScenarioLoad -fuzztime 25s ./internal/scenario/

# Statement coverage over the library packages, gated at a ratcheted
# minimum (raise COVER_MIN when coverage improves; never lower it). The
# profile is left at coverage.out for `go tool cover -html` and the CI
# artifact upload.
COVER_MIN ?= 89.0

cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
	  { echo "coverage $$total% fell below the ratcheted minimum $(COVER_MIN)%"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One iteration of every benchmark — the CI bit-rot gate for the perf
# harness.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Re-measure the perf suite and update BENCH_baseline.json's "current"
# section (the frozen "baseline" section is preserved).
benchjson:
	$(GO) run ./cmd/cebinae-bench -benchjson BENCH_baseline.json

# Regenerate the quick evaluation report on all cores with checkpointing.
report:
	$(GO) run ./cmd/cebinae-bench -scale quick -resume bench_quick.jsonl -o bench_report_quick.txt

# Default parameter sweep (Fig.12 family): JSONL + CSV.
sweep:
	$(GO) run ./cmd/cebinae-sweep -store sweep.jsonl -csv sweep.csv -resume

clean:
	rm -f bench_quick.jsonl bench_report_quick.txt sweep.jsonl sweep.csv
