module cebinae

go 1.22
