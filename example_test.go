package cebinae_test

import (
	"fmt"

	"cebinae"
	"cebinae/internal/maxmin"
)

// ExampleJFI shows Jain's Fairness Index at its extremes.
func ExampleJFI() {
	fmt.Printf("%.3f\n", cebinae.JFI([]float64{10, 10, 10, 10}))
	fmt.Printf("%.3f\n", cebinae.JFI([]float64{40, 0, 0, 0}))
	// Output:
	// 1.000
	// 0.250
}

// ExampleNormalizedJFI measures distance to an uneven ideal allocation
// (the paper's §5.3 metric): tracking the ideal exactly scores 1.
func ExampleNormalizedJFI() {
	ideal := []float64{6.25, 25, 12.5}
	fmt.Printf("%.3f\n", cebinae.NormalizedJFI([]float64{6.25, 25, 12.5}, ideal))
	fmt.Printf("%.3f\n", cebinae.NormalizedJFI([]float64{1, 40, 12.5}, ideal))
	// Output:
	// 1.000
	// 0.708
}

// ExampleDefaultParams derives Cebinae parameters for a 100 Mbps port with
// a 450-MTU buffer and 40 ms flows, per §4.4's recipe.
func ExampleDefaultParams() {
	p := cebinae.DefaultParams(100e6, 450*1500, cebinae.Millis(40))
	fmt.Printf("tau=%.2f dT=%v P=%d\n", p.Tau, p.DT.Std(), p.P)
	// Output:
	// tau=0.01 dT=67.108864ms P=1
}

// ExampleNewEngine runs three events in virtual time order.
func ExampleNewEngine() {
	eng := cebinae.NewEngine()
	eng.Schedule(cebinae.Millis(3), func() { fmt.Println("third") })
	eng.Schedule(cebinae.Millis(1), func() { fmt.Println("first") })
	eng.Schedule(cebinae.Millis(2), func() { fmt.Println("second") })
	eng.Run(cebinae.Seconds(1))
	// Output:
	// first
	// second
	// third
}

// Example_waterFilling computes the paper's Figure 2b ideal allocation:
// flow A over ℓ1→ℓ3→ℓ4, B over ℓ1→ℓ2, C over ℓ2→ℓ5, with ℓ5's tiny
// capacity bottlenecking C, which frees ℓ2 capacity for B, and so on.
func Example_waterFilling() {
	n := &maxmin.Network{
		Capacity: []float64{20, 10, 20, 20, 2},
		Routes: [][]int{
			{0, 2, 3}, // A
			{0, 1},    // B
			{1, 4},    // C
		},
	}
	rates, _ := maxmin.Allocate(n)
	fmt.Printf("A=%.0f B=%.0f C=%.0f\n", rates[0], rates[1], rates[2])
	// Output:
	// A=12 B=8 C=2
}
