package experiments

import (
	"math"

	"cebinae/internal/core"
	"cebinae/internal/fluid"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// Fast-forward wiring: when a scenario requests fluid acceleration
// (Scenario.FastForward or the CLI-set package default), Run builds a
// fluid.Controller over the dumbbell before the clock starts. The
// controller watches every device's transmit rate and queue occupancy
// plus every flow's goodput meter, treats drops, ECN marks,
// retransmissions, and Cebinae phase/config changes as discontinuities,
// and — once quiescence is proven — skips between pinned control-plane
// deadlines with closed-form counter advancement.
//
// Eligibility is deliberately narrow: single-shard runs only (a sharded
// cluster steps its engines through conservative windows, where a clock
// skip on one shard would break the cross-shard ordering proof) and only
// bottleneck disciplines whose frozen state translates across a skip
// (fifo, fq, cebinae — the calendar baselines rotate buckets on
// absolute-time arithmetic that has no ShiftTime). An ineligible request
// falls back to exact packet level and reports Result.FF.ForcedOff.

// fluidEligible reports whether the bottleneck discipline supports
// byte-consistent re-entry from a clock skip.
func fluidEligible(k QdiscKind) bool {
	switch k {
	case FIFO, FQ, Cebinae, "":
		return true
	}
	return false
}

// setupFastForward builds and starts the fluid controller for a
// scenario, or reports the request was forced off. Must run after the
// topology, connections, and meters exist and before the cluster runs.
func setupFastForward(s Scenario, d *netem.Dumbbell, cq *core.Qdisc, flat []FlowGroup, keys []packet.FlowKey, conns []*tcp.Conn, meters []*metrics.FlowMeter) (*fluid.Controller, bool) {
	if !s.FastForward && !defaultFastForward.Load() {
		return nil, false
	}
	if effectiveShards(s.Shards) != 1 || !fluidEligible(s.Qdisc) {
		return nil, true
	}
	eng := d.Bottleneck.Node().Engine()
	// Resample: converged rates can still drift on timescales far above
	// the stability window (congestion windows growing between loss
	// episodes, BBR bandwidth shares wandering), which a frozen model
	// would extrapolate forever. Re-measuring at packet level once a
	// second caps the staleness of any frozen rate at one second while
	// still skipping ~95% of events on a quiescent run.
	c := fluid.New(eng, fluid.Config{Resample: Seconds(1)})

	// Every device is both a stability signal and a skip target: any
	// queue anywhere moving while armed is a discontinuity, and every
	// TX/RX counter keeps advancing across skipped time so monitors and
	// utilisation numbers stay truthful. The bottleneck is contested
	// when several flows share it: at full utilisation their shares are
	// contest-determined and flat rates may be a probing limit cycle's
	// cruise stretch, so the controller refuses to arm there — saturated
	// cells run at exact packet level. Access links stay plain watches:
	// a single flow pinned at its edge rate is a stationary allocation.
	for _, n := range d.Net.Nodes() {
		for _, dev := range n.Devices() {
			if dev == d.Bottleneck && len(flat) > 1 {
				c.WatchDeviceContested(dev)
			} else {
				c.WatchDevice(dev)
			}
		}
	}

	// Per-flow goodput meters: the stability gate for fairness (shares,
	// not just the aggregate, must be steady) and the closed-form series
	// the post-run RateOver/Series reads. wireFactor converts goodput to
	// wire bytes for Cebinae's heavy-hitter cache and LBF banks — exact
	// under quiescence, where no delivered byte is a retransmission.
	//
	// The fluid hypothesis needs a provably unique stationary
	// allocation. With several flows, the proof is each flow's dedicated
	// access link: once a flow sustains ≈ its access rate (in goodput
	// terms, scaled by MSS/MTU, with 10% slack for pacing quantisation),
	// its share is pinned by topology and flat windows are trustworthy.
	// A multi-flow cell with no access limit offers no such proof — its
	// shares are contest-determined, momentarily flat inside probing
	// limit cycles far longer than the detection span — so an infinite
	// floor keeps the detector from ever arming there. A single flow
	// needs no proof: its allocation is unique whatever limits it.
	pinFloor := 0.0
	if len(flat) > 1 {
		pinFloor = math.Inf(1)
		if s.AccessBps > 0 {
			pinFloor = 0.9 * s.AccessBps / 8 * float64(packet.MSS) / float64(packet.MSS+packet.HeaderBytes)
		}
	}
	for i := range flat {
		if pinFloor > 0 {
			c.WatchFlowPinned(keys[i], flat[i].StartAt, meters[i].Total, meters[i].Record, pinFloor)
		} else {
			c.WatchFlow(keys[i], flat[i].StartAt, meters[i].Total, meters[i].Record)
		}
	}
	if cq != nil {
		c.WatchCebinae(cq, float64(packet.MSS+packet.HeaderBytes)/float64(packet.MSS))
	}

	// Sender-side loss signals: a retransmission, timeout, or ECE
	// reduction anywhere resets quiescence detection (or disarms).
	for _, cn := range conns {
		st := &cn.Stats
		c.WatchCounter(func() uint64 { return st.Retransmits + st.Timeouts + st.ECEReductions })
		c.AddShifter(cn)
	}

	// Measurement epochs must be exact, not straddled by a skip: pin a
	// no-op at every boundary the post-run metrics read — the warmup
	// edge and each late-starting flow's own settle edge (mirroring the
	// arithmetic in Run).
	//lint:ignore simtime warmup is a fraction of a bounded scenario duration (minutes at most, « 2^53 ns); sub-nanosecond rounding of a measurement window is immaterial
	warmup := sim.Time(float64(s.Duration) * s.WarmupFraction)
	pinBoundary(eng, warmup, s.Duration)
	for _, f := range flat {
		if f.StartAt > warmup {
			pinBoundary(eng, f.StartAt+(s.Duration-f.StartAt)/5, s.Duration)
		}
	}
	// With time-series sampling on, a pinned metronome bounds every skip
	// to the sample grid so Series windows stay exact even on runs with
	// no stateSampler (non-Cebinae bottlenecks).
	if s.SampleInterval > 0 {
		m := &ffMetronome{eng: eng, interval: s.SampleInterval, horizon: s.Duration}
		eng.ArmPinnedTimer(&m.timer, s.SampleInterval, m, nil)
	}

	c.Start()
	return c, false
}

// pinBoundary schedules a pinned no-op at t, making it a hard epoch
// boundary for skips. Out-of-range boundaries are dropped.
func pinBoundary(eng *sim.Engine, t, horizon sim.Time) {
	if t <= 0 || t > horizon {
		return
	}
	eng.AtPinned(t, func() {})
}

// ffMetronome is a pinned no-op tick aligning skips to the sample grid.
type ffMetronome struct {
	eng      *sim.Engine
	interval sim.Time
	horizon  sim.Time
	timer    sim.Timer
}

func (m *ffMetronome) OnEvent(any) {
	if m.eng.Now() >= m.horizon {
		return
	}
	m.eng.ArmPinnedTimer(&m.timer, m.interval, m, nil)
}
