package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/sim"
)

// ---------------------------------------------------------------------------
// Extension 4 — the §2 scalability argument, quantified: AFQ's calendar
// must satisfy Eq. 1 (buffer_req ≤ BpR × nQ) for *every* flow, so with a
// fixed hardware budget (nQ queues × BpR bytes) its fairness collapses as
// RTT (and hence per-flow burst/buffer requirements) grows. Cebinae uses
// two queues regardless. We sweep the base RTT for 8 NewReno flows under
// AFQ, Cebinae, and FIFO with the same switch buffer and report goodput
// and JFI per point.
// ---------------------------------------------------------------------------

// ScalabilityPoint is one RTT sweep measurement.
type ScalabilityPoint struct {
	RTT        sim.Time
	GoodputBps map[QdiscKind]float64
	JFI        map[QdiscKind]float64
}

// ExtScalability runs the sweep.
func ExtScalability(scale Scale) []ScalabilityPoint {
	dur := sim.Time(float64(scale) * 100e9)
	if dur < Seconds(10) {
		dur = Seconds(10)
	}
	var out []ScalabilityPoint
	for _, rtt := range []sim.Time{ms(10), ms(40), ms(100), ms(200)} {
		pt := ScalabilityPoint{RTT: rtt, GoodputBps: map[QdiscKind]float64{}, JFI: map[QdiscKind]float64{}}
		for _, kind := range []QdiscKind{FIFO, AFQ, PCQ, Cebinae} {
			r := Run(Scenario{
				Name:          fmt.Sprintf("ext-scal/%v/%s", rtt, kind),
				BottleneckBps: 500e6,
				BufferBytes:   8 << 20,
				Groups:        []FlowGroup{{CC: "newreno", Count: 8, RTT: rtt}},
				Duration:      dur,
				Qdisc:         kind,
				// Fixed AFQ hardware budget: 32 queues × 12.8 kB = 409.6 kB
				// of calendar horizon per flow — ample at 10 ms, far below
				// one flow's BDP share at 200 ms.
				AFQQueues: 32,
				AFQBpR:    12800,
				Seed:      23,
			})
			pt.GoodputBps[kind] = r.GoodputBps
			pt.JFI[kind] = r.JFI
		}
		out = append(out, pt)
	}
	return out
}

// RenderExtScalability prints the sweep.
func RenderExtScalability(pts []ScalabilityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — Eq.1 scalability: 8 NewReno on 500 Mbps, AFQ/PCQ fixed at 32×12.8kB\n")
	fmt.Fprintf(&b, "%8s | %9s %9s %9s %9s | %7s %7s %7s %7s\n", "RTT[ms]", "Gp-FIFO", "Gp-AFQ", "Gp-PCQ", "Gp-Ceb", "J-FIFO", "J-AFQ", "J-PCQ", "J-Ceb")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.0f | %9.1f %9.1f %9.1f %9.1f | %7.3f %7.3f %7.3f %7.3f\n",
			float64(p.RTT)/1e6,
			p.GoodputBps[FIFO]/1e6, p.GoodputBps[AFQ]/1e6, p.GoodputBps[PCQ]/1e6, p.GoodputBps[Cebinae]/1e6,
			p.JFI[FIFO], p.JFI[AFQ], p.JFI[PCQ], p.JFI[Cebinae])
	}
	return b.String()
}
