// Package experiments reproduces every table and figure of the Cebinae
// paper's evaluation (§5): a generic single-bottleneck scenario runner
// (Table 2, Figs. 1, 7, 8, 9, 10, 12), a parking-lot multi-bottleneck
// runner (Fig. 11), the heavy-hitter accuracy harness (Fig. 13), and the
// Tofino resource model (Table 3). Each experiment has a builder returning
// structured results plus a text renderer that prints the same rows/series
// the paper reports.
//
// Experiments are no longer code-only: the same config structs are the
// lowering targets of declarative scenario files (scenarios/*.json,
// package cebinae/internal/scenario), so a workload can be described,
// versioned, and swept without recompiling. A spec file and a hand-built
// Go config that describe the same experiment produce byte-identical
// reports.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"

	"cebinae/internal/core"
	"cebinae/internal/fluid"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/shard"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// SimTime aliases the simulator's nanosecond timestamp so external callers
// (examples, tools) can build scenario durations and RTTs without importing
// internal packages.
type SimTime = sim.Time

// CebinaeParams aliases the mechanism's Table-1 parameter set.
type CebinaeParams = core.Params

// DefaultCebinaeParams derives default Cebinae parameters for a scenario's
// bottleneck (capacity, buffer, and maximum group RTT).
func DefaultCebinaeParams(s Scenario) CebinaeParams {
	return core.DefaultParams(s.BottleneckBps, s.BufferBytes, maxRTT(s.Groups))
}

// Millis builds a SimTime from milliseconds.
func Millis(v float64) SimTime { return SimTime(v * 1e6) }

// Seconds builds a SimTime from seconds.
func Seconds(v float64) SimTime { return SimTime(v * 1e9) }

// QdiscKind selects the bottleneck discipline under test.
type QdiscKind string

const (
	FIFO     QdiscKind = "fifo"
	FQ       QdiscKind = "fq"       // FQ-CoDel with ideal per-flow queues
	AFQ      QdiscKind = "afq"      // calendar-queue approximate fair queueing (NSDI '18)
	PCQ      QdiscKind = "pcq"      // programmable calendar queues (NSDI '20): squash, don't drop
	Strawman QdiscKind = "strawman" // the §3.2 token-bucket freezer
	Cebinae  QdiscKind = "cebinae"  // the paper's mechanism
)

// Scale trades run length for fidelity. The paper's runs are 100 s; the
// quick scale shortens them so the full suite fits in a test/bench budget
// while preserving comparative shape.
type Scale float64

const (
	Quick  Scale = 0.08 // 8 s horizon
	Medium Scale = 0.3  // 30 s
	Full   Scale = 1.0  // paper-length (100 s)
)

// FlowGroup declares a homogeneous group of flows in a scenario.
type FlowGroup struct {
	CC    string
	Count int
	// RTT is the group's base round-trip time.
	RTT sim.Time
	// StartAt optionally delays the group's flows (Fig. 10 arrivals).
	StartAt sim.Time
}

// Scenario is a single-bottleneck (dumbbell) experiment configuration.
// It can be built in Go or compiled from a "dumbbell" scenario file
// (internal/scenario); both paths hand Run the same struct.
type Scenario struct {
	Name          string
	BottleneckBps float64
	BufferBytes   int
	Groups        []FlowGroup
	Duration      sim.Time
	Qdisc         QdiscKind
	// AccessBps overrides the edge-link rate (default 0: 10× the
	// bottleneck, so edges never constrain). Setting it below
	// BottleneckBps/N builds an access-limited dumbbell whose stationary
	// allocation is pinned per flow — the canonical provably-quiescent
	// cell for the fluid fast-forward differential.
	AccessBps float64
	// Params overrides Cebinae's parameters (nil = DefaultParams).
	Params *core.Params
	// MinRTO clamps each sender's retransmission timer. The default (0)
	// selects 1 s — the RFC 6298 minimum NS-3 uses, matching the paper's
	// simulations; Linux-like stacks would use 200 ms.
	MinRTO SimTime
	// AFQQueues / AFQBpR configure the AFQ baseline's calendar geometry
	// (defaults: 32 queues, 12.8 kB per round — a fixed hardware budget).
	AFQQueues int
	AFQBpR    int64
	// WarmupFraction of the run is excluded from averaged metrics
	// (default 1/5).
	WarmupFraction float64
	Seed           uint64
	// SampleInterval enables time-series sampling when non-zero.
	SampleInterval sim.Time
	// Shards partitions the simulation across that many engines (one
	// goroutine each) with conservative time-window synchronisation; 0
	// selects the package default (SetDefaultShards) and ShardAuto sizes
	// the partition to the machine. Placement is computed by min-cut
	// graph partitioning over the topology (shard.AutoPlan), which
	// degrades gracefully when the topology cannot split as far as
	// requested. Results are byte-identical at any shard count.
	Shards int
	// FastForward enables the hybrid fluid/packet accelerator
	// (internal/fluid): when every link's rate and occupancy have been
	// provably quiescent for a stability window, the run skips ahead in
	// closed form between control-plane deadlines, falling back to exact
	// packet level on any discontinuity. Off by default (false keeps
	// every report byte-identical to the pure packet-level run); the
	// CLIs' -fastforward flag sets the package default
	// (SetDefaultFastForward). Fluid mode only engages on single-shard
	// runs with a fifo/fq/cebinae bottleneck — anything else forces it
	// off (Result.FF.ForcedOff) and runs exact.
	FastForward bool
}

// ShardAuto, as a Scenario.Shards / SetDefaultShards value, requests a
// machine-sized shard count: min(GOMAXPROCS, 4). Four is the largest
// partition the scored benchmarks pin down; beyond it barrier overhead
// grows faster than the topologies here can amortise. Results remain
// byte-identical whatever count "auto" resolves to on a given host.
const ShardAuto = -1

// ParseShards parses a CLI -shards value: "auto" selects ShardAuto, any
// positive integer selects that exact count.
func ParseShards(s string) (int, error) {
	if s == "auto" {
		return ShardAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("experiments: -shards wants a positive integer or \"auto\", got %q", s)
	}
	return n, nil
}

// defaultShards is used when Scenario.Shards is zero. SetDefaultShards
// lets the CLIs apply a -shards flag to every scenario they construct;
// it is atomic so fleet worker goroutines read it safely regardless of
// when the caller sets it. The zero value means "unset" and resolves
// to 1.
var defaultShards atomic.Int64

// SetDefaultShards sets the shard count scenarios use when their Shards
// field is zero: a positive count, or ShardAuto for machine-sized
// partitioning. Other values select 1.
func SetDefaultShards(n int) {
	if n < 1 && n != ShardAuto {
		n = 1
	}
	defaultShards.Store(int64(n))
}

// effectiveShards resolves a configured shard count against the package
// default and ShardAuto, returning the partition count to request from
// the planner. The planner itself clamps to what the topology supports,
// so no topology ceiling is applied here.
func effectiveShards(configured int) int {
	n := configured
	if n == 0 {
		n = int(defaultShards.Load())
	}
	if n == ShardAuto {
		n = runtime.GOMAXPROCS(0)
		if n > 4 {
			n = 4
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ResolvedShards reports the concrete engine count a configured shard
// value resolves to on this machine — in particular what ShardAuto will
// use — for callers that budget worker pools by cores per job.
func ResolvedShards(configured int) int { return effectiveShards(configured) }

// defaultFastForward is used when Scenario.FastForward is false; the
// CLIs' -fastforward flag sets it (atomic for the same reason as
// defaultShards: fleet workers read it from many goroutines).
var defaultFastForward atomic.Bool

// SetDefaultFastForward turns the fluid fast-forward accelerator on or
// off for every scenario that does not set its own FastForward field.
func SetDefaultFastForward(on bool) { defaultFastForward.Store(on) }

// newCluster builds the partitioned cluster for the topology `build`
// constructs. Every multi-shard request flows through the min-cut
// partitioner: AutoPlan records the builder's construction trace against
// a throwaway fabric, computes the widest-lookahead load-balanced
// partition, and the returned cluster places the second (real) build of
// the same topology accordingly. Single-shard requests skip the
// recording pass.
func newCluster(configured int, build func(netem.Fabric)) *shard.Cluster {
	n := effectiveShards(configured)
	if n == 1 {
		return shard.NewCluster(1)
	}
	return shard.NewClusterWithPlan(shard.AutoPlan(n, build))
}

// FlowResult is one flow's measured outcome.
type FlowResult struct {
	Index      int
	CC         string
	RTT        sim.Time
	GoodputBps float64
	// Series is the per-interval goodput (bytes/sec) when sampling is on.
	Series []float64
}

// Result aggregates a scenario run.
type Result struct {
	Scenario      Scenario
	Flows         []FlowResult
	ThroughputBps float64 // bottleneck wire throughput (bits/sec)
	GoodputBps    float64 // aggregate application goodput (bits/sec)
	JFI           float64
	// JFISeries is the per-interval JFI over flows active in the interval.
	JFISeries []float64
	// StateSeries marks, per sample interval, Cebinae's phase: 'u' for
	// unsaturated, 'S' for saturated (the background colouring of the
	// paper's Fig. 1). Empty unless sampling a Cebinae run.
	StateSeries []byte
	// CebStats is populated for Cebinae runs.
	CebStats core.Stats
	Events   uint64
	// FF reports the fluid fast-forward controller's activity when the
	// scenario requested fast-forward (zero value otherwise). ForcedOff
	// is set when the request could not be honoured (multi-shard run or
	// an ineligible bottleneck qdisc) and the run fell back to exact
	// packet level. Deliberately not part of Report(), so fast-forward
	// bookkeeping never perturbs the byte-identity contract.
	FF FFStats
}

// FFStats mirrors fluid.Stats for Result consumers without forcing them
// to import internal/fluid.
type FFStats = fluid.Stats

func maxRTT(groups []FlowGroup) sim.Time {
	var m sim.Time
	for _, g := range groups {
		if g.RTT > m {
			m = g.RTT
		}
	}
	return m
}

// buildQdisc constructs the bottleneck discipline for a scenario, binding
// Cebinae's rotation un-gating to the device's transmitter.
func buildQdisc(eng *sim.Engine, s Scenario, dev *netem.Device) (netem.Qdisc, *core.Qdisc) {
	switch s.Qdisc {
	case FQ:
		return qdisc.NewFQCoDel(eng, s.BufferBytes, 0, qdisc.DefaultCoDelParams()), nil
	case Strawman:
		return core.NewStrawman(eng, s.BottleneckBps, s.BufferBytes, sim.Duration(100e6), 0.01), nil
	case AFQ, PCQ:
		nq, bpr := s.AFQQueues, s.AFQBpR
		if nq == 0 {
			nq = 32
		}
		if bpr == 0 {
			bpr = 12800
		}
		if s.Qdisc == PCQ {
			return qdisc.NewPCQ(nq, bpr, s.BufferBytes, 8192), nil
		}
		return qdisc.NewAFQ(nq, bpr, s.BufferBytes, 8192), nil
	case Cebinae:
		p := core.DefaultParams(s.BottleneckBps, s.BufferBytes, maxRTT(s.Groups))
		if s.Params != nil {
			p = *s.Params
		}
		cq := core.New(eng, s.BottleneckBps, s.BufferBytes, p)
		cq.OnDrain = dev.Kick
		return cq, cq
	default:
		return qdisc.NewFIFO(s.BufferBytes), nil
	}
}

// Run executes a dumbbell scenario and gathers metrics.
func Run(s Scenario) Result {
	if s.WarmupFraction == 0 {
		s.WarmupFraction = 0.2
	}
	if s.MinRTO == 0 {
		s.MinRTO = Seconds(1)
	}
	var flat []FlowGroup
	for _, g := range s.Groups {
		for i := 0; i < g.Count; i++ {
			flat = append(flat, FlowGroup{CC: g.CC, Count: 1, RTT: g.RTT, StartAt: g.StartAt})
		}
	}
	rtts := make([]sim.Time, len(flat))
	for i, f := range flat {
		rtts[i] = f.RTT
	}

	// The builder runs twice on multi-shard runs: once against the
	// planner's recording fabric and once for real, so cq must come from
	// the last (real) pass. The min-cut plan usually cuts the sender
	// access links rather than the bottleneck — their delay dominates
	// whenever base RTTs exceed the 200 µs bottleneck round trip, which
	// widens the conservative window from 100 µs to the access delay.
	var cq *core.Qdisc
	build := func(f netem.Fabric) *netem.Dumbbell {
		return netem.BuildDumbbellOn(f, netem.DumbbellConfig{
			FlowCount:       len(flat),
			BottleneckBps:   s.BottleneckBps,
			BottleneckDelay: sim.Duration(100e3),
			RTTs:            rtts,
			AccessBps:       s.AccessBps,
			BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
				// The qdisc must schedule on the engine of the shard that
				// owns the bottleneck device.
				q, c := buildQdisc(dev.Node().Engine(), s, dev)
				cq = c
				return q
			},
			DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(64 << 20) },
		})
	}
	cl := newCluster(s.Shards, func(f netem.Fabric) { build(f) })
	d := build(cl)

	meters := make([]*metrics.FlowMeter, len(flat))
	conns := make([]*tcp.Conn, len(flat))
	keys := make([]packet.FlowKey, len(flat))
	for i, f := range flat {
		cc, ok := tcp.NewCC(f.CC)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown CC %q", f.CC))
		}
		key := packet.FlowKey{
			Src: d.Senders[i].ID, Dst: d.Receivers[i].ID,
			SrcPort: uint16(1000 + i), DstPort: uint16(5000 + i), Proto: packet.ProtoTCP,
		}
		keys[i] = key
		conns[i] = tcp.NewConn(d.Senders[i].Engine(), d.Senders[i], tcp.Config{Key: key, CC: cc, StartAt: f.StartAt, Seed: s.Seed + uint64(i), MinRTO: s.MinRTO})
		recv := tcp.NewReceiver(d.Receivers[i].Engine(), d.Receivers[i], tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recv.GoodputAt = m.Record
		meters[i] = m
	}

	ffc, ffForcedOff := setupFastForward(s, d, cq, flat, keys, conns, meters)

	var sampler *stateSampler
	if s.SampleInterval > 0 && cq != nil {
		// The sampler lives on the bottleneck's shard: it reads the
		// qdisc's state, so it must run on the engine that owns it. The
		// state buffer is pre-sized from the run length so appends never
		// reallocate.
		beng := d.Bottleneck.Node().Engine()
		n := int((s.Duration + s.SampleInterval - 1) / s.SampleInterval)
		sampler = &stateSampler{
			eng: beng, cq: cq, interval: s.SampleInterval,
			states: make([]byte, 0, n),
		}
		// Pinned: sample instants are measurement epochs the fluid
		// fast-forward layer must never skip across (placement is
		// invisible to the event stream when fast-forward is unused).
		beng.ArmPinnedTimer(&sampler.timer, s.SampleInterval, sampler, nil)
	}

	cl.Run(s.Duration)

	res := Result{Scenario: s, Events: cl.Processed()}
	if ffc != nil {
		res.FF = ffc.Stats()
	} else if ffForcedOff {
		res.FF.ForcedOff = true
	}
	if sampler != nil {
		res.StateSeries = sampler.states
	}
	//lint:ignore simtime warmup is a fraction of a bounded scenario duration (minutes at most, « 2^53 ns); sub-nanosecond rounding of a measurement window is immaterial
	warmup := sim.Time(float64(s.Duration) * s.WarmupFraction)
	rates := make([]float64, len(flat))
	for i, f := range flat {
		from := warmup
		if f.StartAt > from {
			from = f.StartAt + (s.Duration-f.StartAt)/5
		}
		rate := meters[i].RateOver(from, s.Duration)
		rates[i] = rate
		fr := FlowResult{Index: i, CC: f.CC, RTT: f.RTT, GoodputBps: rate * 8}
		if s.SampleInterval > 0 {
			fr.Series = meters[i].Series(s.SampleInterval, s.Duration)
		}
		res.Flows = append(res.Flows, fr)
		res.GoodputBps += rate * 8
	}
	res.JFI = metrics.JFI(rates)
	res.ThroughputBps = float64(d.Bottleneck.Stats.TxBytes) * 8 / s.Duration.Seconds()
	if cq != nil {
		res.CebStats = cq.Stats
	}
	if s.SampleInterval > 0 {
		n := int((s.Duration + s.SampleInterval - 1) / s.SampleInterval)
		res.JFISeries = make([]float64, 0, n)
		active := make([]float64, 0, len(flat))
		for k := 0; k < n; k++ {
			active = active[:0]
			t0 := sim.Time(k) * s.SampleInterval
			for i, f := range flat {
				if f.StartAt <= t0 {
					active = append(active, res.Flows[i].Series[k])
				}
			}
			res.JFISeries = append(res.JFISeries, metrics.JFI(active))
		}
	}
	return res
}

// stateSampler records the bottleneck qdisc's phase ('S'/'u') once per
// sampling interval, rescheduling itself via an embedded timer.
type stateSampler struct {
	eng      *sim.Engine
	cq       *core.Qdisc
	interval sim.Time
	timer    sim.Timer
	states   []byte
}

func (sp *stateSampler) OnEvent(any) {
	if sp.cq.Saturated() {
		sp.states = append(sp.states, 'S')
	} else {
		sp.states = append(sp.states, 'u')
	}
	sp.eng.ArmPinnedTimer(&sp.timer, sp.interval, sp, nil)
}

// Report flattens a Result into a canonical text form — the same kind of
// byte stream a report file would carry — so drift anywhere in the
// pipeline (between runs, shard counts, or a scenario file and its
// hand-built Go equivalent) shows up as a byte difference.
func (r Result) Report() string {
	s := fmt.Sprintf("events=%d throughput=%.6f goodput=%.6f jfi=%.9f\n",
		r.Events, r.ThroughputBps, r.GoodputBps, r.JFI)
	for _, f := range r.Flows {
		s += fmt.Sprintf("flow %d cc=%s rtt=%d goodput=%.6f series=%v\n",
			f.Index, f.CC, f.RTT, f.GoodputBps, f.Series)
	}
	s += fmt.Sprintf("jfiseries=%v states=%s\n", r.JFISeries, r.StateSeries)
	s += fmt.Sprintf("cebstats=%+v\n", r.CebStats)
	return s
}

// SortedGoodputs returns the flows' goodputs (bits/sec) ascending — CDF
// material for Fig. 8.
func (r Result) SortedGoodputs() []float64 {
	out := make([]float64, len(r.Flows))
	for i, f := range r.Flows {
		out[i] = f.GoodputBps
	}
	sort.Float64s(out)
	return out
}
