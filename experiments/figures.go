package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/metrics"
	"cebinae/internal/sim"
)

// ---------------------------------------------------------------------------
// Figure 1: two NewReno flows with differing RTTs, FIFO vs Cebinae goodput
// time series over 50 s on a 100 Mbps bottleneck.
// ---------------------------------------------------------------------------

// Fig1Result holds the two time series pairs.
type Fig1Result struct {
	Interval sim.Time
	// Series[kind][flow] is the goodput series in bytes/sec.
	Series map[QdiscKind][][]float64
	JFI    map[QdiscKind]float64
	// State is Cebinae's per-second phase ('u' unsaturated / 'S'
	// saturated) — the background colouring of the paper's figure.
	State []byte
}

// Fig1 runs the experiment at the given scale (Full = the paper's 50 s).
func Fig1(scale Scale) Fig1Result {
	dur := sim.Time(float64(scale) * 50e9 / 1.0)
	if dur < sim.Duration(5e9) {
		dur = sim.Duration(5e9)
	}
	out := Fig1Result{Interval: sim.Duration(1e9), Series: map[QdiscKind][][]float64{}, JFI: map[QdiscKind]float64{}}
	for _, kind := range []QdiscKind{FIFO, Cebinae} {
		r := Run(Scenario{
			Name:          fmt.Sprintf("fig1/%s", kind),
			BottleneckBps: 100e6,
			BufferBytes:   450 * 1500,
			Groups: []FlowGroup{
				{CC: "newreno", Count: 1, RTT: ms(20.4)},
				{CC: "newreno", Count: 1, RTT: ms(40)},
			},
			Duration:       dur,
			Qdisc:          kind,
			SampleInterval: sim.Duration(1e9),
			Seed:           7,
		})
		out.Series[kind] = [][]float64{r.Flows[0].Series, r.Flows[1].Series}
		out.JFI[kind] = r.JFI
		if kind == Cebinae {
			out.State = r.StateSeries
		}
	}
	return out
}

// Render prints the series as aligned columns (MBps, as the paper's axis).
func (f Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.1 — goodput [MBps] of 2 NewReno flows (RTT 20.4 ms vs 40 ms), 100 Mbps bottleneck\n")
	fmt.Fprintf(&b, "%5s | %12s %12s | %15s %15s | %s\n", "t[s]", "FIFO 20.4ms", "FIFO 40ms", "Cebinae 20.4ms", "Cebinae 40ms", "state")
	fifo, ceb := f.Series[FIFO], f.Series[Cebinae]
	for i := range fifo[0] {
		state := byte(' ')
		if i < len(f.State) {
			state = f.State[i]
		}
		fmt.Fprintf(&b, "%5d | %12.2f %12.2f | %15.2f %15.2f | %c\n", i+1,
			fifo[0][i]/1e6, fifo[1][i]/1e6, ceb[0][i]/1e6, ceb[1][i]/1e6, state)
	}
	fmt.Fprintf(&b, "(state: u = unsaturated, S = saturated — the paper's background colouring)\n")
	fmt.Fprintf(&b, "JFI: FIFO=%.3f Cebinae=%.3f\n", f.JFI[FIFO], f.JFI[Cebinae])
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7: 16 Vegas flows vs 1 NewReno flow on 100 Mbps — per-flow goodput
// bars under FIFO and Cebinae.
// ---------------------------------------------------------------------------

// Fig7Result carries per-flow goodputs per discipline.
type Fig7Result struct {
	Goodputs map[QdiscKind][]float64 // bits/sec, flows 0–15 Vegas, 16 NewReno
	JFI      map[QdiscKind]float64
}

// Fig7 runs the starvation-prevention experiment.
func Fig7(scale Scale) Fig7Result {
	dur := sim.Time(float64(scale) * 100e9)
	out := Fig7Result{Goodputs: map[QdiscKind][]float64{}, JFI: map[QdiscKind]float64{}}
	for _, kind := range []QdiscKind{FIFO, Cebinae} {
		r := Run(Scenario{
			Name:          fmt.Sprintf("fig7/%s", kind),
			BottleneckBps: 100e6,
			BufferBytes:   850 * 1500,
			Groups: []FlowGroup{
				{CC: "vegas", Count: 16, RTT: ms(100)},
				{CC: "newreno", Count: 1, RTT: ms(100)},
			},
			Duration: dur,
			Qdisc:    kind,
			Seed:     7,
		})
		gp := make([]float64, len(r.Flows))
		for i, fl := range r.Flows {
			gp[i] = fl.GoodputBps
		}
		out.Goodputs[kind] = gp
		out.JFI[kind] = r.JFI
	}
	return out
}

// Render prints per-flow bars.
func (f Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.7 — 16 Vegas (0–15) + 1 NewReno (16), 100 Mbps: per-flow goodput [Mbps]\n")
	fmt.Fprintf(&b, "%4s | %8s | %8s\n", "flow", "FIFO", "Cebinae")
	for i := range f.Goodputs[FIFO] {
		fmt.Fprintf(&b, "%4d | %8.2f | %8.2f\n", i, f.Goodputs[FIFO][i]/1e6, f.Goodputs[Cebinae][i]/1e6)
	}
	fmt.Fprintf(&b, "JFI: FIFO=%.3f Cebinae=%.3f\n", f.JFI[FIFO], f.JFI[Cebinae])
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 8: goodput CDFs. (a) 128 NewReno vs 2 BBR on 1 Gbps;
// (b) 128 NewReno vs 4 Vegas on 1 Gbps with RTTs 100/64 ms.
// ---------------------------------------------------------------------------

// Fig8Result carries the goodput CDFs per discipline.
type Fig8Result struct {
	Label string
	CDF   map[QdiscKind][]metrics.CDFPoint
	JFI   map[QdiscKind]float64
}

// Fig8a: aggressive BBR flows against many NewReno flows.
func Fig8a(scale Scale) Fig8Result {
	return fig8(scale, "fig8a", []FlowGroup{
		{CC: "newreno", Count: 128, RTT: ms(50)},
		{CC: "bbr", Count: 2, RTT: ms(50)},
	}, 4200*1500)
}

// Fig8b: Vegas starvation among many NewReno flows.
func Fig8b(scale Scale) Fig8Result {
	return fig8(scale, "fig8b", []FlowGroup{
		{CC: "newreno", Count: 128, RTT: ms(100)},
		{CC: "vegas", Count: 4, RTT: ms(64)},
	}, 8500*1500)
}

func fig8(scale Scale, label string, groups []FlowGroup, buf int) Fig8Result {
	dur := table2Duration(1e9, scale)
	out := Fig8Result{Label: label, CDF: map[QdiscKind][]metrics.CDFPoint{}, JFI: map[QdiscKind]float64{}}
	for _, kind := range []QdiscKind{FIFO, Cebinae} {
		r := Run(Scenario{
			Name:          fmt.Sprintf("%s/%s", label, kind),
			BottleneckBps: 1e9,
			BufferBytes:   buf,
			Groups:        groups,
			Duration:      dur,
			Qdisc:         kind,
			Seed:          7,
		})
		out.CDF[kind] = metrics.CDFSorted(r.SortedGoodputs())
		out.JFI[kind] = r.JFI
	}
	return out
}

// Render prints decile points of both CDFs.
func (f Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — goodput CDF [Mbps]\n%6s | %8s | %8s\n", f.Label, "pct", "FIFO", "Cebinae")
	quantile := func(pts []metrics.CDFPoint, p float64) float64 {
		for _, pt := range pts {
			if pt.P >= p {
				return pt.Value
			}
		}
		if len(pts) == 0 {
			return 0
		}
		return pts[len(pts)-1].Value
	}
	for _, p := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0} {
		fmt.Fprintf(&b, "%5.0f%% | %8.2f | %8.2f\n", p*100,
			quantile(f.CDF[FIFO], p)/1e6, quantile(f.CDF[Cebinae], p)/1e6)
	}
	fmt.Fprintf(&b, "JFI: FIFO=%.3f Cebinae=%.3f\n", f.JFI[FIFO], f.JFI[Cebinae])
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 9: RTT unfairness — 4 Cubic flows at 256 ms vs 4 Cubic flows at
// 16–256 ms over 400 Mbps, 3 MB buffer; JFI and aggregate goodput per
// asymmetry point, under FIFO, FQ, and Cebinae.
// ---------------------------------------------------------------------------

// Fig9Point is one RTT-asymmetry measurement.
type Fig9Point struct {
	VarRTT     sim.Time
	JFI        map[QdiscKind]float64
	GoodputBps map[QdiscKind]float64
}

// Fig9 sweeps the variable group's RTT.
func Fig9(scale Scale) []Fig9Point {
	dur := sim.Time(float64(scale) * 100e9)
	var out []Fig9Point
	for _, rtt := range []sim.Time{ms(16), ms(32), ms(64), ms(128), ms(256)} {
		pt := Fig9Point{VarRTT: rtt, JFI: map[QdiscKind]float64{}, GoodputBps: map[QdiscKind]float64{}}
		for _, kind := range []QdiscKind{FIFO, FQ, Cebinae} {
			r := Run(Scenario{
				Name:          fmt.Sprintf("fig9/%v/%s", rtt, kind),
				BottleneckBps: 400e6,
				BufferBytes:   3 << 20,
				Groups: []FlowGroup{
					{CC: "cubic", Count: 4, RTT: ms(256)},
					{CC: "cubic", Count: 4, RTT: rtt},
				},
				Duration: dur,
				Qdisc:    kind,
				Seed:     7,
			})
			pt.JFI[kind] = r.JFI
			pt.GoodputBps[kind] = r.GoodputBps
		}
		out = append(out, pt)
	}
	return out
}

// RenderFig9 prints the two panels' series.
func RenderFig9(pts []Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.9 — 4+4 Cubic, fixed 256 ms vs varying RTT, 400 Mbps\n")
	fmt.Fprintf(&b, "%8s | %7s %7s %7s | %9s %9s %9s\n", "RTT[ms]", "JFI-F", "JFI-FQ", "JFI-C", "Gp-F", "Gp-FQ", "Gp-C")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8.0f | %7.3f %7.3f %7.3f | %9.1f %9.1f %9.1f\n",
			float64(p.VarRTT)/1e6,
			p.JFI[FIFO], p.JFI[FQ], p.JFI[Cebinae],
			p.GoodputBps[FIFO]/1e6, p.GoodputBps[FQ]/1e6, p.GoodputBps[Cebinae]/1e6)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 10: JFI time series with flow arrivals — 32 Vegas flows in steady
// state, a NewReno flow arrives ≈5 s, a Cubic flow ≈25 s.
// ---------------------------------------------------------------------------

// Fig10Result holds the per-second JFI series per discipline.
type Fig10Result struct {
	Interval sim.Time
	JFI      map[QdiscKind][]float64
}

// Fig10 runs the arrival dynamics experiment (Full = 50 s).
func Fig10(scale Scale) Fig10Result {
	dur := sim.Time(float64(scale) * 50e9)
	if dur < sim.Duration(30e9) {
		dur = sim.Duration(30e9) // need to reach past the 25 s arrival
	}
	out := Fig10Result{Interval: sim.Duration(1e9), JFI: map[QdiscKind][]float64{}}
	for _, kind := range []QdiscKind{FIFO, FQ, Cebinae} {
		r := Run(Scenario{
			Name:          fmt.Sprintf("fig10/%s", kind),
			BottleneckBps: 100e6,
			BufferBytes:   850 * 1500,
			Groups: []FlowGroup{
				{CC: "vegas", Count: 32, RTT: ms(40)},
				{CC: "newreno", Count: 1, RTT: ms(40), StartAt: sim.Duration(5e9)},
				{CC: "cubic", Count: 1, RTT: ms(40), StartAt: sim.Duration(25e9)},
			},
			Duration:       dur,
			Qdisc:          kind,
			SampleInterval: sim.Duration(1e9),
			Seed:           7,
		})
		out.JFI[kind] = r.JFISeries
	}
	return out
}

// Render prints the series.
func (f Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.10 — JFI/s; 32 Vegas steady, NewReno @5s, Cubic @25s, 100 Mbps\n")
	fmt.Fprintf(&b, "%5s | %6s %6s %8s\n", "t[s]", "FIFO", "FQ", "Cebinae")
	for i := range f.JFI[FIFO] {
		fmt.Fprintf(&b, "%5d | %6.3f %6.3f %8.3f\n", i+1, f.JFI[FIFO][i], f.JFI[FQ][i], f.JFI[Cebinae][i])
	}
	return b.String()
}
