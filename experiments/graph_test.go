package experiments

import (
	"strings"
	"testing"
)

// smallGraph is a compact two-switch instance of the multi-hop family:
// two sender groups on s1 (one crossing the core toward receivers on s2),
// Cebinae guarding the downlink ports, enough to exercise switch routing,
// per-port qdiscs, and fan-in.
func smallGraph(shards int) GraphConfig {
	return GraphConfig{
		Name:     "graph/small",
		Switches: []GraphSwitch{{Name: "t1"}, {Name: "t2"}},
		Links: []GraphLink{
			{A: "t1", B: "t2", RateBps: 200e6, Delay: ms(2)},
		},
		Hosts: []GraphHostGroup{
			{Name: "s1", Count: 3, Attach: "t1", RateBps: 100e6, Delay: ms(1)},
			{Name: "s2", Count: 2, Attach: "t1", RateBps: 100e6, Delay: ms(1)},
			{Name: "r1", Count: 1, Attach: "t2", RateBps: 100e6, Delay: ms(1),
				DownQdisc: PortQdisc{Kind: Cebinae, BufferBytes: 1 << 20, CebinaeRTT: ms(40)}},
			{Name: "r2", Count: 1, Attach: "t2", RateBps: 100e6, Delay: ms(1),
				DownQdisc: PortQdisc{Kind: Cebinae, BufferBytes: 1 << 20, CebinaeRTT: ms(40)}},
		},
		Flows: []GraphFlowGroup{
			{From: "s1", To: "r1", CC: "newreno"},
			{From: "s2", To: "r2", CC: "cubic", StartAt: Millis(100)},
		},
		Duration: Seconds(1),
		Seed:     3,
		Shards:   shards,
	}
}

func TestGraphRunsAndIsShardInvariant(t *testing.T) {
	want := RunGraph(smallGraph(1))
	if len(want.Flows) != 5 {
		t.Fatalf("flows = %d, want 5", len(want.Flows))
	}
	for _, f := range want.Flows {
		if f.GoodputBps <= 0 {
			t.Fatalf("flow %d (%s #%d) made no progress", f.Index, f.Group, f.Host)
		}
	}
	if want.JFI <= 0 || want.JFI > 1 {
		t.Fatalf("JFI = %v out of range", want.JFI)
	}
	if !strings.Contains(want.Report(), "graph graph/small: 5 flows") {
		t.Fatalf("report header malformed:\n%s", want.Report())
	}
	for _, shards := range []int{2, ShardAuto} {
		got := RunGraph(smallGraph(shards))
		if got.Report() != want.Report() {
			t.Fatalf("shards=%d report differs\n--- shards=1\n%s--- shards=%d\n%s",
				shards, want.Report(), shards, got.Report())
		}
	}
}
