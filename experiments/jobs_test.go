package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cebinae/internal/fleet"
)

func TestBenchSectionsEnumerateUniqueJobs(t *testing.T) {
	sections := BenchSections(Quick)
	if len(sections) != 17 {
		t.Fatalf("got %d sections, want 17", len(sections))
	}
	seen := map[string]bool{}
	byID := map[string]int{}
	for _, s := range sections {
		byID[s.ID] = len(s.Jobs)
		for _, j := range s.Jobs {
			if seen[j.ID] {
				t.Errorf("duplicate job ID %s", j.ID)
			}
			seen[j.ID] = true
			if j.Run == nil {
				t.Errorf("job %s has no closure", j.ID)
			}
		}
	}
	if byID["table2"] != 25 {
		t.Errorf("table2 enumerates %d jobs, want 25 (one per row)", byID["table2"])
	}
	for id, n := range map[string]int{"ext-churn": 3, "ext-udp": 3, "ext-strawman": 3, "fig1": 1} {
		if byID[id] != n {
			t.Errorf("%s enumerates %d jobs, want %d", id, byID[id], n)
		}
	}
}

// TestSectionRendersThroughFleet pushes the (simulation-free) Table 3
// section through the orchestrator and checks the reassembled text equals
// a direct sequential render — the JSON checkpoint roundtrip is lossless.
func TestSectionRendersThroughFleet(t *testing.T) {
	var table3 BenchSection
	for _, s := range BenchSections(Quick) {
		if s.ID == "table3" {
			table3 = s
		}
	}
	sum, err := fleet.Run(table3.Jobs, fleet.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := table3.Render(SummaryGetter(sum))
	if err != nil {
		t.Fatal(err)
	}
	if want := RenderTable3(Table3()); got != want {
		t.Fatalf("fleet render differs from direct render:\n--- fleet ---\n%s--- direct ---\n%s", got, want)
	}
}

func TestSummaryGetterSurfacesFailures(t *testing.T) {
	jobs := []fleet.Job{{ID: "doomed", Run: func() (any, error) { panic("blew up") }}}
	sum, err := fleet.Run(jobs, fleet.Options{Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SummaryGetter(sum)("doomed"); err == nil || !strings.Contains(err.Error(), "blew up") {
		t.Fatalf("want failure surfaced, got %v", err)
	}
	if _, err := SummaryGetter(sum)("never-enqueued"); err == nil {
		t.Fatal("missing job not surfaced")
	}
}

func tinySweep() SweepConfig {
	cfg := DefaultSweepConfig()
	cfg.Qdiscs = []QdiscKind{FIFO, Cebinae}
	cfg.Scales = []Scale{Scale(0.01)} // clamps to the 2 s minimum horizon
	cfg.ThresholdPcts = []float64{5}
	cfg.Groups = []FlowGroup{
		{CC: "newreno", Count: 2, RTT: ms(20)},
		{CC: "cubic", Count: 1, RTT: ms(40)},
	}
	return cfg
}

func TestSweepGridShape(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Scales = []Scale{Quick, Medium}
	// fifo, fq: 1 point per scale; cebinae: 8 thresholds per scale.
	if got, want := len(cfg.Points()), 2*2+8*2; got != want {
		t.Fatalf("grid has %d points, want %d", got, want)
	}
	ids := map[string]bool{}
	for _, p := range cfg.Points() {
		if ids[p.ID()] {
			t.Errorf("duplicate point ID %s", p.ID())
		}
		ids[p.ID()] = true
	}
}

// TestSweepDeterministicAcrossParallelism is the subsystem-level version
// of the p=1 vs p=8 contract: real simulations, two stores, sorted JSONL
// byte-identical.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := tinySweep()
	dir := t.TempDir()
	var files [2][]byte
	for i, p := range []int{1, 4} {
		path := filepath.Join(dir, "sweep.jsonl")
		os.Remove(path)
		st, err := fleet.OpenStore(path)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := fleet.Run(cfg.Jobs(), fleet.Options{Parallelism: p, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		st.Close()
		if sum.Failed != 0 {
			t.Fatalf("p=%d: %d failed", p, sum.Failed)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
		sort.Slice(lines, func(a, b int) bool { return bytes.Compare(lines[a], lines[b]) < 0 })
		files[i] = bytes.Join(lines, []byte("\n"))
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatalf("sweep JSONL differs between p=1 and p=4:\n%s\n----\n%s", files[0], files[1])
	}
}

func TestSweepCSVRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := tinySweep()
	cfg.Qdiscs = []QdiscKind{Cebinae}
	sum, err := fleet.Run(cfg.Jobs(), fleet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeSweepResults(sum.Results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Qdisc != Cebinae || rows[0].ThresholdPct != 5 {
		t.Fatalf("decoded rows %+v", rows)
	}
	if rows[0].GoodputBps <= 0 || rows[0].JFI <= 0 {
		t.Fatalf("degenerate measurement %+v", rows[0])
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "qdisc,scale,threshold_pct,duration_s,throughput_mbps,goodput_mbps,jfi\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 1 {
		t.Fatalf("csv has %d data rows, want 1:\n%s", lines, out)
	}
	if txt := RenderSweep(rows); !strings.Contains(txt, "cebinae") {
		t.Fatalf("rendered table missing rows:\n%s", txt)
	}
}
