package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/sim"
)

// Table2Config is one row of the paper's Table 2: a bandwidth / RTT /
// buffer / CCA-mix combination evaluated under FIFO, FQ, and Cebinae.
type Table2Config struct {
	Label      string
	BtlBps     float64
	RTTs       []sim.Time // one per group, or a single shared value
	BufferMTUs int
	Groups     []FlowGroup // RTT fields filled from RTTs
}

// ms is a readability helper for scenario tables.
func ms(v float64) sim.Time { return sim.Time(v * 1e6) }

// Table2Rows returns all 25 configurations of Table 2, in paper order.
func Table2Rows() []Table2Config {
	g := func(cc string, n int) FlowGroup { return FlowGroup{CC: cc, Count: n} }
	rows := []Table2Config{
		{BtlBps: 100e6, RTTs: []sim.Time{ms(20.8), ms(28)}, BufferMTUs: 250, Groups: []FlowGroup{g("newreno", 2), g("newreno", 8)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(20.4), ms(40)}, BufferMTUs: 350, Groups: []FlowGroup{g("cubic", 8), g("cubic", 2)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(20.4), ms(60)}, BufferMTUs: 500, Groups: []FlowGroup{g("vegas", 2), g("vegas", 8)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(200)}, BufferMTUs: 1700, Groups: []FlowGroup{g("newreno", 16), g("cubic", 1)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(100)}, BufferMTUs: 850, Groups: []FlowGroup{g("newreno", 16), g("cubic", 1)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(50)}, BufferMTUs: 420, Groups: []FlowGroup{g("newreno", 16), g("cubic", 1)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(50)}, BufferMTUs: 420, Groups: []FlowGroup{g("vegas", 16), g("cubic", 1)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(100)}, BufferMTUs: 850, Groups: []FlowGroup{g("vegas", 16), g("newreno", 1)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(100)}, BufferMTUs: 850, Groups: []FlowGroup{g("vegas", 128), g("newreno", 1)}},
		{BtlBps: 100e6, RTTs: []sim.Time{ms(60)}, BufferMTUs: 500, Groups: []FlowGroup{g("vegas", 8), g("newreno", 8), g("cubic", 2)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(5)}, BufferMTUs: 420, Groups: []FlowGroup{g("newreno", 32), g("cubic", 8)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(10)}, BufferMTUs: 850, Groups: []FlowGroup{g("vegas", 128), g("cubic", 1)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(10)}, BufferMTUs: 850, Groups: []FlowGroup{g("vegas", 1024), g("cubic", 2)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(50)}, BufferMTUs: 4200, Groups: []FlowGroup{g("newreno", 128), g("bbr", 1)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(50)}, BufferMTUs: 4200, Groups: []FlowGroup{g("newreno", 128), g("bbr", 2)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(50)}, BufferMTUs: 21000, Groups: []FlowGroup{g("newreno", 128), g("bbr", 2)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(100)}, BufferMTUs: 8350, Groups: []FlowGroup{g("newreno", 128), g("bbr", 2)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(10)}, BufferMTUs: 850, Groups: []FlowGroup{g("vegas", 64), g("newreno", 1)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(100)}, BufferMTUs: 8500, Groups: []FlowGroup{g("vegas", 4), g("newreno", 128)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(100), ms(64)}, BufferMTUs: 8500, Groups: []FlowGroup{g("vegas", 4), g("newreno", 128)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(100)}, BufferMTUs: 8500, Groups: []FlowGroup{g("vegas", 8), g("newreno", 128)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(10)}, BufferMTUs: 850, Groups: []FlowGroup{g("vegas", 128), g("bbr", 1)}},
		{BtlBps: 1e9, RTTs: []sim.Time{ms(100)}, BufferMTUs: 8500, Groups: []FlowGroup{g("bic", 2), g("cubic", 32)}},
		{BtlBps: 10e9, RTTs: []sim.Time{ms(50), ms(44)}, BufferMTUs: 41667, Groups: []FlowGroup{g("newreno", 128), g("cubic", 16)}},
		{BtlBps: 10e9, RTTs: []sim.Time{ms(28), ms(28)}, BufferMTUs: 25000, Groups: []FlowGroup{g("newreno", 128), g("cubic", 128)}},
	}
	for i := range rows {
		r := &rows[i]
		for gi := range r.Groups {
			rtt := r.RTTs[0]
			if len(r.RTTs) > gi {
				rtt = r.RTTs[gi]
			}
			r.Groups[gi].RTT = rtt
		}
		r.Label = table2Label(*r)
	}
	return rows
}

func table2Label(r Table2Config) string {
	var ccs, rtts []string
	for _, g := range r.Groups {
		ccs = append(ccs, fmt.Sprintf("%s:%d", g.CC, g.Count))
	}
	seen := map[sim.Time]bool{}
	for _, rt := range r.RTTs {
		if !seen[rt] {
			seen[rt] = true
			rtts = append(rtts, fmt.Sprintf("%g", float64(rt)/1e6))
		}
	}
	return fmt.Sprintf("%s/{%s}ms/%dMTU/{%s}", bwLabel(r.BtlBps), strings.Join(rtts, ","), r.BufferMTUs, strings.Join(ccs, ","))
}

func bwLabel(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%gGbps", bps/1e9)
	default:
		return fmt.Sprintf("%gMbps", bps/1e6)
	}
}

// Table2Cell is one (row, qdisc) measurement.
type Table2Cell struct {
	ThroughputBps float64
	GoodputBps    float64
	JFI           float64
}

// Table2Row is a fully-measured row.
type Table2Row struct {
	Config Table2Config
	Cells  map[QdiscKind]Table2Cell
}

// table2Duration picks a per-row horizon: high-bandwidth rows are shortened
// further so the event count stays bounded at small scales.
func table2Duration(bps float64, scale Scale) sim.Time {
	base := sim.Time(float64(scale) * 100e9)
	switch {
	case bps > 5e9:
		base /= 8
	case bps > 5e8:
		base /= 2
	}
	if base < sim.Duration(2e9) {
		base = sim.Duration(2e9)
	}
	return base
}

// Table2Scenario materialises one (config, qdisc) scenario.
func Table2Scenario(cfg Table2Config, kind QdiscKind, scale Scale) Scenario {
	return Scenario{
		Name:          fmt.Sprintf("table2/%s/%s", cfg.Label, kind),
		BottleneckBps: cfg.BtlBps,
		BufferBytes:   cfg.BufferMTUs * 1500,
		Groups:        cfg.Groups,
		Duration:      table2Duration(cfg.BtlBps, scale),
		Qdisc:         kind,
		Seed:          42,
	}
}

// RunTable2Row measures one config under all three disciplines.
func RunTable2Row(cfg Table2Config, scale Scale) Table2Row {
	row := Table2Row{Config: cfg, Cells: make(map[QdiscKind]Table2Cell)}
	for _, kind := range []QdiscKind{FIFO, FQ, Cebinae} {
		r := Run(Table2Scenario(cfg, kind, scale))
		row.Cells[kind] = Table2Cell{ThroughputBps: r.ThroughputBps, GoodputBps: r.GoodputBps, JFI: r.JFI}
	}
	return row
}

// RunTable2 measures every row. Progress, when non-nil, is invoked after
// each row.
func RunTable2(scale Scale, progress func(i int, row Table2Row)) []Table2Row {
	rows := Table2Rows()
	out := make([]Table2Row, len(rows))
	for i, cfg := range rows {
		out[i] = RunTable2Row(cfg, scale)
		if progress != nil {
			progress(i, out[i])
		}
	}
	return out
}

// RenderTable2 prints the measured table in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s | %27s | %27s | %23s\n", "Configuration", "Throughput [Mbps]", "Goodput [Mbps]", "JFI")
	fmt.Fprintf(&b, "%-52s | %8s %8s %9s | %8s %8s %9s | %7s %7s %7s\n",
		"", "FIFO", "FQ", "Cebinae", "FIFO", "FQ", "Cebinae", "FIFO", "FQ", "Cebinae")
	for _, r := range rows {
		f, q, c := r.Cells[FIFO], r.Cells[FQ], r.Cells[Cebinae]
		fmt.Fprintf(&b, "%-52s | %8.1f %8.1f %9.1f | %8.1f %8.1f %9.1f | %7.3f %7.3f %7.3f\n",
			r.Config.Label,
			f.ThroughputBps/1e6, q.ThroughputBps/1e6, c.ThroughputBps/1e6,
			f.GoodputBps/1e6, q.GoodputBps/1e6, c.GoodputBps/1e6,
			f.JFI, q.JFI, c.JFI)
	}
	return b.String()
}
