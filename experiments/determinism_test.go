package experiments

import (
	"reflect"
	"testing"
)

// determinismScenario is a medium dumbbell: mixed CC and RTT groups through
// the Cebinae bottleneck with time-series sampling on, so the comparison
// covers the engine, netem, TCP, the core mechanism, meters, and the
// series/JFI pipelines at once.
func determinismScenario() Scenario {
	return Scenario{
		Name:          "determinism",
		BottleneckBps: 50e6,
		BufferBytes:   1 << 20,
		Groups: []FlowGroup{
			{CC: "newreno", Count: 3, RTT: Millis(20)},
			{CC: "cubic", Count: 2, RTT: Millis(60)},
			{CC: "newreno", Count: 1, RTT: Millis(40), StartAt: Seconds(1)},
		},
		Duration:       Seconds(4),
		Qdisc:          Cebinae,
		Seed:           7,
		SampleInterval: Millis(200),
	}
}

// renderResult is Result.Report — kept as a local alias so the
// determinism tests read as comparing canonical byte streams.
func renderResult(r Result) string { return r.Report() }

// differentialScenarios is the scenario family every shard count must
// reproduce byte-for-byte: the full determinism scenario (Cebinae with
// sampling) plus FIFO and FQ variants with different CC mixes, so the
// comparison crosses the engine, netem's cut-link handoff, every
// transport, and the metrics pipeline.
func differentialScenarios() []Scenario {
	base := determinismScenario()

	fifo := base
	fifo.Name, fifo.Qdisc, fifo.Duration = "diff/fifo", FIFO, Seconds(2)
	fifo.Groups = []FlowGroup{
		{CC: "newreno", Count: 2, RTT: Millis(30)},
		{CC: "bbr", Count: 1, RTT: Millis(30)},
		{CC: "vegas", Count: 1, RTT: Millis(80)},
	}

	fq := base
	fq.Name, fq.Qdisc, fq.Duration = "diff/fq", FQ, Seconds(2)
	fq.SampleInterval = 0

	return []Scenario{base, fifo, fq}
}

// TestShardDifferential is the sharded engine's correctness gate: every
// scenario run at 1, 2, 3, and 4 shards must produce byte-identical
// rendered reports and identical event counts. Placement comes from the
// min-cut planner, which on a dumbbell cuts the sender access links (the
// widest window), so the comparison covers cut access links, not just the
// bottleneck. `make race` runs this same test under the race detector,
// which exercises the barrier protocol and the SPSC handoff queues.
func TestShardDifferential(t *testing.T) {
	for _, s := range differentialScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			s.Shards = 1
			want := Run(s)
			ref := renderResult(want)
			for _, n := range []int{2, 3, 4} {
				s.Shards = n
				got := Run(s)
				if got.Events != want.Events {
					t.Errorf("shards=%d: event count %d, want %d (single-engine)", n, got.Events, want.Events)
				}
				if r := renderResult(got); r != ref {
					t.Errorf("shards=%d: report not byte-identical to single-engine run:\n--- shards=1 ---\n%s--- shards=%d ---\n%s", n, ref, n, r)
				}
			}
		})
	}
}

// TestShardDifferentialParkingLot covers the multi-bottleneck chain — the
// topology where sharding actually splits work across up to four engines
// (one per switch) — under both FIFO and Cebinae bottlenecks.
func TestShardDifferentialParkingLot(t *testing.T) {
	dur := Seconds(2)
	for _, kind := range []QdiscKind{FIFO, Cebinae} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			want, wantEvents := RunParkingLotShards(kind, dur, 1)
			for _, n := range []int{2, 3, 4} {
				got, gotEvents := RunParkingLotShards(kind, dur, n)
				if gotEvents != wantEvents {
					t.Errorf("shards=%d: event count %d, want %d", n, gotEvents, wantEvents)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d: goodputs diverge from single-engine run:\n got %v\nwant %v", n, got, want)
				}
			}
		})
	}
}

// TestRunDeterminism is the end-to-end determinism regression gate: the same
// scenario run twice in one process must produce an identical event count,
// identical structured results, and byte-identical rendered output. `make
// race` runs this same test under the race detector.
func TestRunDeterminism(t *testing.T) {
	a := Run(determinismScenario())
	b := Run(determinismScenario())

	if a.Events != b.Events {
		t.Errorf("event counts differ between identical runs: %d vs %d", a.Events, b.Events)
	}
	if !reflect.DeepEqual(a.Flows, b.Flows) {
		t.Errorf("flow results differ between identical runs:\n%+v\n%+v", a.Flows, b.Flows)
	}
	if a.CebStats != b.CebStats {
		t.Errorf("cebinae stats differ between identical runs:\n%+v\n%+v", a.CebStats, b.CebStats)
	}
	ra, rb := renderResult(a), renderResult(b)
	if ra != rb {
		t.Errorf("rendered reports are not byte-identical:\n--- run 1 ---\n%s--- run 2 ---\n%s", ra, rb)
	}
}
