package experiments

import (
	"strings"
	"testing"
)

func TestWriteTable2CSV(t *testing.T) {
	rows := []Table2Row{{
		Config: Table2Config{Label: "x"},
		Cells: map[QdiscKind]Table2Cell{
			FIFO:    {ThroughputBps: 1e6, GoodputBps: 9e5, JFI: 0.5},
			FQ:      {ThroughputBps: 2e6, GoodputBps: 1.8e6, JFI: 0.9},
			Cebinae: {ThroughputBps: 3e6, GoodputBps: 2.7e6, JFI: 0.99},
		},
	}}
	var b strings.Builder
	if err := WriteTable2CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header + 3 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "config,qdisc") {
		t.Fatalf("header wrong: %s", lines[0])
	}
	if !strings.Contains(out, "cebinae") || !strings.Contains(out, "0.99") {
		t.Fatalf("data missing:\n%s", out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := WriteSeriesCSV(&b, Seconds(1), []string{"a", "b"}, [][]float64{{1, 2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header + 3 rows, got %d", len(lines))
	}
	if lines[3] != "3,3," {
		t.Fatalf("ragged series padding wrong: %q", lines[3])
	}
	if err := WriteSeriesCSV(&b, Seconds(1), []string{"a"}, nil); err == nil {
		t.Fatal("mismatched names/series must error")
	}
}

func TestWriteFlowsCSV(t *testing.T) {
	r := Result{Flows: []FlowResult{{Index: 0, CC: "cubic", RTT: Millis(20), GoodputBps: 5e6}}}
	var b strings.Builder
	if err := WriteFlowsCSV(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cubic,20,5") {
		t.Fatalf("flow row wrong:\n%s", b.String())
	}
}

func TestWriteFig13CSV(t *testing.T) {
	pts := []Fig13Point{{Stages: 2, Slots: 2048, Interval: Millis(100), FPR: 0.0001, FNR: 0.05}}
	var b strings.Builder
	if err := WriteFig13CSV(&b, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "2,2048,100,0.0001,0.05") {
		t.Fatalf("point row wrong:\n%s", b.String())
	}
}
