package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/core"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/tcp"
)

// ChainConfig parameterises the multi-bottleneck chain scenario (the
// Fig.-11 parking lot, generalised): long flows traverse every hop of a
// switch chain while per-hop cross traffic contends at each inter-switch
// link. It is the builder behind RunParkingLotShards and the "chain"
// scenario-file kind, so a spec file and the hand-built Go scenario lower
// to the identical construction.
type ChainConfig struct {
	Name        string
	Hops        int
	LongFlows   int
	CrossPerHop []int
	// LongCC drives the end-to-end flows; CrossCCs[h] drives hop h's
	// cross traffic.
	LongCC   string
	CrossCCs []string
	// BottleneckBps / BufferBytes size each inter-switch link and its
	// queue; LinkDelay / AccessDelay are the one-way propagation delays.
	BottleneckBps float64
	BufferBytes   int
	LinkDelay     SimTime
	AccessDelay   SimTime
	// Qdisc is the discipline at every inter-switch (forward) port.
	Qdisc QdiscKind
	// CebinaeRTT seeds DefaultParams for Cebinae bottlenecks (the max
	// base RTT the mechanism should assume).
	CebinaeRTT SimTime
	Duration   SimTime
	Seed       uint64
	Shards     int
}

// CanonicalChain is the Fig.-11 parking-lot configuration: 8 NewReno long
// flows against 2 Bic / 8 Vegas / 4 Cubic cross flows over three
// 100 Mbps bottlenecks.
func CanonicalChain(kind QdiscKind, dur SimTime, shards int) ChainConfig {
	return ChainConfig{
		Name:          fmt.Sprintf("chain/%s", kind),
		Hops:          3,
		LongFlows:     8,
		CrossPerHop:   []int{2, 8, 4},
		LongCC:        "newreno",
		CrossCCs:      []string{"bic", "vegas", "cubic"},
		BottleneckBps: 100e6,
		BufferBytes:   850 * 1500,
		LinkDelay:     ms(5),
		AccessDelay:   ms(5),
		Qdisc:         kind,
		CebinaeRTT:    ms(120),
		Duration:      dur,
		Shards:        shards,
	}
}

// ChainFlowResult is one chain flow's measured outcome.
type ChainFlowResult struct {
	Index int
	// Label names the flow in paper order: long flows first, then each
	// hop's cross flows.
	Label      string
	CC         string
	GoodputBps float64
}

// ChainResult aggregates a chain run.
type ChainResult struct {
	Name   string
	Flows  []ChainFlowResult
	JFI    float64
	Events uint64
}

// Goodputs returns the per-flow goodputs (bits/sec) in paper order.
func (r ChainResult) Goodputs() []float64 {
	out := make([]float64, len(r.Flows))
	for i, f := range r.Flows {
		out[i] = f.GoodputBps
	}
	return out
}

// Report renders the chain run in canonical byte-stable form (the
// differential tests compare these bytes across spec-vs-Go builds and
// shard counts).
func (r ChainResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain %s: %d flows, events=%d, JFI=%.9f\n", r.Name, len(r.Flows), r.Events, r.JFI)
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "%4d %-12s %-8s %14.6f\n", f.Index, f.Label, f.CC, f.GoodputBps)
	}
	return b.String()
}

// RunChain builds and runs the chain for one configuration, returning
// per-flow goodputs in paper order plus the total dispatched event count;
// both are byte-identical at any shard count.
func RunChain(cfg ChainConfig) ChainResult {
	btlQdisc := func(dev *netem.Device) netem.Qdisc {
		eng := dev.Node().Engine()
		switch cfg.Qdisc {
		case FQ:
			return qdisc.NewFQCoDel(eng, cfg.BufferBytes, 0, qdisc.DefaultCoDelParams())
		case Cebinae:
			cq := core.New(eng, cfg.BottleneckBps, cfg.BufferBytes, core.DefaultParams(cfg.BottleneckBps, cfg.BufferBytes, cfg.CebinaeRTT))
			cq.OnDrain = dev.Kick
			return cq
		default:
			return qdisc.NewFIFO(cfg.BufferBytes)
		}
	}
	build := func(f netem.Fabric) *netem.ParkingLot {
		return netem.BuildParkingLotOn(f, netem.ParkingLotConfig{
			Hops:            cfg.Hops,
			LongFlows:       cfg.LongFlows,
			CrossPerHop:     cfg.CrossPerHop,
			BottleneckBps:   cfg.BottleneckBps,
			LinkDelay:       cfg.LinkDelay,
			AccessDelay:     cfg.AccessDelay,
			BottleneckQdisc: btlQdisc,
			DefaultQdisc:    func() netem.Qdisc { return qdisc.NewFIFO(64 << 20) },
		})
	}
	cl := newCluster(cfg.Shards, func(f netem.Fabric) { build(f) })
	pl := build(cl)

	type ep struct {
		s, r  *netem.Node
		cc    string
		label string
	}
	var eps []ep
	for i := 0; i < cfg.LongFlows; i++ {
		eps = append(eps, ep{pl.LongSenders[i], pl.LongReceivers[i], cfg.LongCC, fmt.Sprintf("long%d", i)})
	}
	for h := 0; h < cfg.Hops; h++ {
		for c := range pl.CrossSenders[h] {
			eps = append(eps, ep{pl.CrossSenders[h][c], pl.CrossReceivers[h][c], cfg.CrossCCs[h], fmt.Sprintf("x%d.%d", h+1, c)})
		}
	}

	meters := make([]*metrics.FlowMeter, len(eps))
	for i, e := range eps {
		cc, ok := tcp.NewCC(e.cc)
		if !ok {
			panic("unknown cc " + e.cc)
		}
		key := packet.FlowKey{Src: e.s.ID, Dst: e.r.ID, SrcPort: uint16(1000 + i), DstPort: uint16(5000 + i), Proto: packet.ProtoTCP}
		tcp.NewConn(e.s.Engine(), e.s, tcp.Config{Key: key, CC: cc, Seed: cfg.Seed + uint64(i), MinRTO: Seconds(1)})
		recv := tcp.NewReceiver(e.r.Engine(), e.r, tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recv.GoodputAt = m.Record
		meters[i] = m
	}
	cl.Run(cfg.Duration)

	res := ChainResult{Name: cfg.Name, Events: cl.Processed()}
	rates := make([]float64, len(eps))
	for i, m := range meters {
		rates[i] = m.RateOver(cfg.Duration/5, cfg.Duration)
		res.Flows = append(res.Flows, ChainFlowResult{
			Index: i, Label: eps[i].label, CC: eps[i].cc, GoodputBps: rates[i] * 8,
		})
	}
	res.JFI = metrics.JFI(rates)
	return res
}
