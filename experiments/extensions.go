package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/app"
	"cebinae/internal/core"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// This file holds experiments beyond the paper's evaluation, exercising the
// repository's extensions: short-flow protection under churn, blind-UDP
// containment, and the §7 per-flow-⊤ isolation mode. They are clearly
// labelled as extensions in reports.

// ---------------------------------------------------------------------------
// Extension 1 — short-flow completion times under churn: one long-lived
// aggressive flow (classified ⊤) shares a bottleneck with a Poisson stream
// of short transfers. Cebinae's headroom for ⊥ flows should cut the short
// flows' completion times relative to FIFO.
// ---------------------------------------------------------------------------

// ExtChurnResult compares short-transfer completion times.
type ExtChurnResult struct {
	Kind        QdiscKind
	Started     uint64
	Completed   uint64
	MeanFCTms   float64
	P95FCTms    float64
	LongGoodput float64 // bits/sec of the long-lived flow
}

// ExtChurn runs the scenario under one discipline.
func ExtChurn(kind QdiscKind, scale Scale) ExtChurnResult {
	dur := sim.Time(float64(scale) * 100e9)
	if dur < Seconds(10) {
		dur = Seconds(10)
	}
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	const rate = 100e6
	buf := 850 * 1500

	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       2, // host pair 0: long flow; host pair 1: churn
		BottleneckBps:   rate,
		BottleneckDelay: sim.Duration(100e3),
		RTTs:            []sim.Time{ms(40), ms(40)},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
			switch kind {
			case FQ:
				return qdisc.NewFQCoDel(eng, buf, 0, qdisc.DefaultCoDelParams())
			case Cebinae:
				cq := core.New(eng, rate, buf, core.DefaultParams(rate, buf, ms(40)))
				cq.OnDrain = dev.Kick
				return cq
			default:
				return qdisc.NewFIFO(buf)
			}
		},
		DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(64 << 20) },
	})

	// Long-lived aggressive flow (Cubic).
	longKey := packet.FlowKey{Src: d.Senders[0].ID, Dst: d.Receivers[0].ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	cc, _ := tcp.NewCC("cubic")
	tcp.NewConn(eng, d.Senders[0], tcp.Config{Key: longKey, CC: cc, MinRTO: Seconds(1)})
	longRecv := tcp.NewReceiver(eng, d.Receivers[0], tcp.ReceiverConfig{Key: longKey})
	longMeter := &metrics.FlowMeter{}
	longRecv.GoodputAt = longMeter.Record

	// Short-transfer churn: ~40 arrivals/s of mean 200 KB ⇒ ≈64 Mbps of
	// offered short traffic.
	churn := app.NewChurn(eng, d.Senders[1], d.Receivers[1], app.ChurnConfig{
		ArrivalsPerSec: 40,
		MeanFlowBytes:  200 << 10,
		CC:             "newreno",
		BasePort:       1000,
		Seed:           11,
		MinRTO:         Seconds(1),
	})

	eng.Run(dur)

	res := ExtChurnResult{Kind: kind, Started: churn.Started, Completed: churn.Completed}
	if len(churn.CompletionTimes) > 0 {
		fcts := make([]float64, len(churn.CompletionTimes))
		for i, ct := range churn.CompletionTimes {
			fcts[i] = float64(ct) / 1e6 // ms
		}
		res.MeanFCTms = metrics.Mean(fcts)
		res.P95FCTms = metrics.Percentile(fcts, 95)
	}
	res.LongGoodput = longMeter.RateOver(dur/5, dur) * 8
	return res
}

// RenderExtChurn prints the comparison.
func RenderExtChurn(results []ExtChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — short-flow FCT under churn vs 1 long Cubic flow, 100 Mbps\n")
	fmt.Fprintf(&b, "%8s | %7s %9s | %11s %11s | %12s\n", "qdisc", "started", "completed", "meanFCT[ms]", "p95FCT[ms]", "long[Mbps]")
	for _, r := range results {
		fmt.Fprintf(&b, "%8s | %7d %9d | %11.1f %11.1f | %12.2f\n",
			r.Kind, r.Started, r.Completed, r.MeanFCTms, r.P95FCTms, r.LongGoodput/1e6)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Extension 2 — blind-UDP containment: a non-congestion-controlled CBR
// source at 80% of capacity against TCP flows. The paper notes blind flows
// need admission control, but Cebinae should still tax the blaster and
// preserve more TCP goodput than FIFO.
// ---------------------------------------------------------------------------

// ExtBlindUDPResult compares TCP aggregate goodput with a UDP blaster.
type ExtBlindUDPResult struct {
	Kind         QdiscKind
	UDPDelivered float64 // bits/sec
	TCPAggregate float64 // bits/sec
	TCPFlowJFI   float64
	CebinaeStats core.Stats
}

// ExtBlindUDP runs the scenario under one discipline.
func ExtBlindUDP(kind QdiscKind, scale Scale) ExtBlindUDPResult {
	dur := sim.Time(float64(scale) * 100e9)
	if dur < Seconds(10) {
		dur = Seconds(10)
	}
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	const rate = 100e6
	buf := 850 * 1500
	var cq *core.Qdisc

	nTCP := 8
	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       nTCP + 1,
		BottleneckBps:   rate,
		BottleneckDelay: sim.Duration(100e3),
		RTTs:            []sim.Time{ms(40)},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
			switch kind {
			case FQ:
				return qdisc.NewFQCoDel(eng, buf, 0, qdisc.DefaultCoDelParams())
			case Cebinae:
				cq = core.New(eng, rate, buf, core.DefaultParams(rate, buf, ms(40)))
				cq.OnDrain = dev.Kick
				return cq
			default:
				return qdisc.NewFIFO(buf)
			}
		},
		DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(64 << 20) },
	})

	// UDP blaster on pair 0.
	udpKey := packet.FlowKey{Src: d.Senders[0].ID, Dst: d.Receivers[0].ID, SrcPort: 9, DstPort: 9, Proto: packet.ProtoUDP}
	udpMeter := &metrics.FlowMeter{}
	d.Receivers[0].Register(udpKey, meterSink{udpMeter, eng})
	app.NewCBR(eng, d.Senders[0], udpKey, 0.8*rate, 0)

	// TCP flows on pairs 1..n.
	meters := make([]*metrics.FlowMeter, nTCP)
	for i := 0; i < nTCP; i++ {
		key := packet.FlowKey{Src: d.Senders[i+1].ID, Dst: d.Receivers[i+1].ID, SrcPort: uint16(100 + i), DstPort: uint16(200 + i), Proto: packet.ProtoTCP}
		cc, _ := tcp.NewCC("newreno")
		tcp.NewConn(eng, d.Senders[i+1], tcp.Config{Key: key, CC: cc, Seed: uint64(i), MinRTO: Seconds(1)})
		recv := tcp.NewReceiver(eng, d.Receivers[i+1], tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recv.GoodputAt = m.Record
		meters[i] = m
	}

	eng.Run(dur)

	res := ExtBlindUDPResult{Kind: kind}
	res.UDPDelivered = udpMeter.RateOver(dur/5, dur) * 8
	rates := make([]float64, nTCP)
	for i, m := range meters {
		rates[i] = m.RateOver(dur/5, dur)
		res.TCPAggregate += rates[i] * 8
	}
	res.TCPFlowJFI = metrics.JFI(rates)
	if cq != nil {
		res.CebinaeStats = cq.Stats
	}
	return res
}

// meterSink counts delivered payload bytes into a FlowMeter.
type meterSink struct {
	m   *metrics.FlowMeter
	eng *sim.Engine
}

func (s meterSink) Deliver(p *packet.Packet) {
	s.m.Record(s.eng.Now(), int64(p.PayloadSize))
}

// RenderExtBlindUDP prints the comparison.
func RenderExtBlindUDP(results []ExtBlindUDPResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — blind 80 Mbps UDP blaster vs 8 NewReno flows, 100 Mbps\n")
	fmt.Fprintf(&b, "%8s | %10s | %14s | %8s\n", "qdisc", "udp[Mbps]", "tcpSum[Mbps]", "tcpJFI")
	for _, r := range results {
		fmt.Fprintf(&b, "%8s | %10.2f | %14.2f | %8.3f\n", r.Kind, r.UDPDelivered/1e6, r.TCPAggregate/1e6, r.TCPFlowJFI)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Extension 3 — §7 per-flow-⊤ ablation: two NewReno flows of very unequal
// RTTs, both classified ⊤ (wide δf); compare the aggregate group against
// the per-flow extension.
// ---------------------------------------------------------------------------

// ExtPerFlowResult compares the two ⊤-tracking modes.
type ExtPerFlowResult struct {
	AggregateJFI float64
	PerFlowJFI   float64
	AggregateGp  float64
	PerFlowGp    float64
}

// ExtPerFlow runs the ablation.
func ExtPerFlow(scale Scale) ExtPerFlowResult {
	dur := sim.Time(float64(scale) * 100e9)
	if dur < Seconds(20) {
		dur = Seconds(20)
	}
	run := func(perFlow bool) (float64, float64) {
		p := core.DefaultParams(50e6, 420*1500, ms(80))
		p.DeltaFlow = 0.9
		p.PerFlowTop = perFlow
		r := Run(Scenario{
			Name:          fmt.Sprintf("ext-perflow/%v", perFlow),
			BottleneckBps: 50e6,
			BufferBytes:   420 * 1500,
			Groups: []FlowGroup{
				{CC: "newreno", Count: 1, RTT: ms(10)},
				{CC: "newreno", Count: 1, RTT: ms(80)},
			},
			Duration: dur,
			Qdisc:    Cebinae,
			Params:   &p,
			Seed:     5,
		})
		return r.JFI, r.GoodputBps
	}
	var out ExtPerFlowResult
	out.AggregateJFI, out.AggregateGp = run(false)
	out.PerFlowJFI, out.PerFlowGp = run(true)
	return out
}

// RenderExtPerFlow prints the ablation.
func RenderExtPerFlow(r ExtPerFlowResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — §7 per-flow ⊤ ablation (2 NewReno, RTT 10 vs 80 ms, both ⊤)\n")
	fmt.Fprintf(&b, "%10s | %6s | %14s\n", "mode", "JFI", "goodput[Mbps]")
	fmt.Fprintf(&b, "%10s | %6.3f | %14.2f\n", "aggregate", r.AggregateJFI, r.AggregateGp/1e6)
	fmt.Fprintf(&b, "%10s | %6.3f | %14.2f\n", "per-flow", r.PerFlowJFI, r.PerFlowGp/1e6)
	return b.String()
}

// ---------------------------------------------------------------------------
// Extension 5 — the §3.2 strawman comparison: a Cubic incumbent converges
// alone for 10 s, then four Vegas flows join. The token-bucket strawman
// freezes the unfair allocation; Cebinae redistributes.
// ---------------------------------------------------------------------------

// ExtStrawmanResult holds the incumbent and mean-latecomer tail goodputs
// per discipline.
type ExtStrawmanResult struct {
	Kind         QdiscKind
	IncumbentBps float64
	LatecomerBps float64 // mean across the four Vegas flows
	OverallJFI   float64
}

// ExtStrawman runs the scenario under one discipline.
func ExtStrawman(kind QdiscKind, scale Scale) ExtStrawmanResult {
	dur := sim.Time(float64(scale) * 100e9)
	if dur < Seconds(30) {
		dur = Seconds(30)
	}
	r := Run(Scenario{
		Name:          fmt.Sprintf("ext-strawman/%s", kind),
		BottleneckBps: 50e6,
		BufferBytes:   420 * 1500,
		Groups: []FlowGroup{
			{CC: "cubic", Count: 1, RTT: ms(40)},
			{CC: "vegas", Count: 4, RTT: ms(40), StartAt: Seconds(10)},
		},
		Duration:       dur,
		Qdisc:          kind,
		WarmupFraction: 0.65, // measure well after the latecomers arrive
		Seed:           31,
	})
	out := ExtStrawmanResult{Kind: kind, IncumbentBps: r.Flows[0].GoodputBps, OverallJFI: r.JFI}
	for _, f := range r.Flows[1:] {
		out.LatecomerBps += f.GoodputBps
	}
	out.LatecomerBps /= 4
	return out
}

// RenderExtStrawman prints the comparison.
func RenderExtStrawman(results []ExtStrawmanResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — §3.2 strawman vs Cebinae: Cubic incumbent, 4 late Vegas, 50 Mbps\n")
	fmt.Fprintf(&b, "%9s | %15s | %15s | %6s\n", "qdisc", "incumbent[Mbps]", "latecomer[Mbps]", "JFI")
	for _, r := range results {
		fmt.Fprintf(&b, "%9s | %15.2f | %15.2f | %6.3f\n", r.Kind, r.IncumbentBps/1e6, r.LatecomerBps/1e6, r.OverallJFI)
	}
	return b.String()
}
