package experiments

import (
	"os"
	"strings"
	"testing"
	"time"
)

// ffCell is the canonical provably-quiescent differential cell: an
// access-limited BBR dumbbell, where every flow's stationary rate is
// pinned by its own edge link, so the exact packet-level run converges
// to constant per-flow goodput that the fluid model must reproduce.
func ffCell(q QdiscKind, dur SimTime) Scenario {
	return Scenario{
		Name: "ff-diff", BottleneckBps: 100e6, BufferBytes: 375000,
		AccessBps: 20e6,
		Groups:    []FlowGroup{{CC: "bbr", Count: 4, RTT: Millis(40)}},
		Duration:  dur, Qdisc: q, Seed: 1,
	}
}

// maxFlowErr returns the worst per-flow goodput error (fraction) of ff
// against exact.
func maxFlowErr(t *testing.T, exact, ff Result) float64 {
	t.Helper()
	if len(exact.Flows) != len(ff.Flows) {
		t.Fatalf("flow count diverged: %d vs %d", len(exact.Flows), len(ff.Flows))
	}
	worst := 0.0
	for i := range exact.Flows {
		e, f := exact.Flows[i].GoodputBps, ff.Flows[i].GoodputBps
		if e == 0 {
			t.Fatalf("flow %d moved no bytes in the exact run", i)
		}
		err := (f - e) / e
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	return worst
}

// TestFastForwardDifferential is the fluid-vs-packet error-bound gate:
// with fast-forward on, the converged cell must save ≥5× the events while
// keeping every flow's goodput within 1% of the exact packet-level run.
// The Cebinae variant additionally exercises rotation/configure deadlines
// as pinned skip boundaries and the closed-form heavy-hitter/LBF feed.
func TestFastForwardDifferential(t *testing.T) {
	for _, q := range []QdiscKind{FIFO, Cebinae} {
		base := ffCell(q, Seconds(120))
		exact := Run(base)
		ff := base
		ff.FastForward = true
		fr := Run(ff)

		if fr.FF.Skips == 0 || fr.FF.Arms == 0 {
			t.Fatalf("%s: fluid mode never engaged: %+v", q, fr.FF)
		}
		if ratio := float64(exact.Events) / float64(fr.Events); ratio < 5 {
			t.Fatalf("%s: event reduction %.1f× < 5×: exact=%d ff=%d", q, ratio, exact.Events, fr.Events)
		}
		if worst := maxFlowErr(t, exact, fr); worst > 0.01 {
			t.Fatalf("%s: per-flow goodput error %.3f%% exceeds the 1%% bound", q, 100*worst)
		}
	}
}

// TestFastForwardDeterministic pins the accelerated path to the same
// reproducibility contract as everything else: two fast-forward runs of
// the same scenario must produce byte-identical reports.
func TestFastForwardDeterministic(t *testing.T) {
	s := ffCell(Cebinae, Seconds(30))
	s.FastForward = true
	a, b := Run(s), Run(s)
	if a.Report() != b.Report() {
		t.Fatal("fast-forward runs diverged between repetitions")
	}
	if a.FF != b.FF {
		t.Fatalf("controller stats diverged: %+v vs %+v", a.FF, b.FF)
	}
}

// TestFastForwardSaturatedNeverArms pins the validity-domain doctrine: a
// saturated cell (no access limit — the four BBR flows contend for the
// whole bottleneck, so their shares wander through probing cycles) must
// never arm: with no dedicated access links there is no pinned-rate
// proof of a unique stationary allocation, so every flow's floor is
// infinite. With zero skips the accelerated run's physics must equal
// the exact run's byte for byte — fast-forward on an out-of-domain cell
// costs accuracy nothing because it stays at packet level. Only the
// dispatch count may differ: the controller's sampler processes its own
// observation events.
func TestFastForwardSaturatedNeverArms(t *testing.T) {
	sat := ffCell(Cebinae, Seconds(20))
	sat.AccessBps = 0
	plain := Run(sat)
	ff := sat
	ff.FastForward = true
	fr := Run(ff)
	if fr.FF.ForcedOff {
		t.Fatalf("saturated cell reported ForcedOff — it is eligible, just never quiescent: %+v", fr.FF)
	}
	if fr.FF.Arms != 0 || fr.FF.Skips != 0 {
		t.Fatalf("saturated cell armed %d times, skipped %d — pinned-floor guard failed: %+v",
			fr.FF.Arms, fr.FF.Skips, fr.FF)
	}
	stripEvents := func(r Result) string {
		rep := r.Report()
		return rep[strings.Index(rep, " "):]
	}
	if stripEvents(plain) != stripEvents(fr) {
		t.Fatal("never-armed fast-forward run's physics diverged from the plain run")
	}
	if fr.Events <= plain.Events {
		t.Fatalf("sampler events missing from dispatch count: plain=%d ff=%d", plain.Events, fr.Events)
	}
}

// TestFastForwardForcedOffShards: a multi-shard run cannot skip (the
// conservative window protocol owns the clock), so a fast-forward request
// must be forced off and the run must stay byte-identical to the same
// scenario without the request.
func TestFastForwardForcedOffShards(t *testing.T) {
	base := ffCell(FIFO, Seconds(10))
	base.Shards = 2
	plain := Run(base)
	ff := base
	ff.FastForward = true
	fr := Run(ff)
	if !fr.FF.ForcedOff {
		t.Fatalf("sharded run did not force fast-forward off: %+v", fr.FF)
	}
	if fr.FF.Skips != 0 || fr.FF.Arms != 0 {
		t.Fatalf("forced-off run still skipped: %+v", fr.FF)
	}
	if plain.Report() != fr.Report() {
		t.Fatal("forced-off fast-forward run is not byte-identical to the plain run")
	}

	if ResolvedShards(ShardAuto) > 1 {
		auto := base
		auto.Shards = ShardAuto
		plainAuto := Run(auto)
		ffAuto := auto
		ffAuto.FastForward = true
		frAuto := Run(ffAuto)
		if !frAuto.FF.ForcedOff {
			t.Fatalf("-shards auto run did not force fast-forward off: %+v", frAuto.FF)
		}
		if plainAuto.Report() != frAuto.Report() {
			t.Fatal("-shards auto forced-off run is not byte-identical")
		}
	}
}

// TestFastForwardIneligibleQdisc: the calendar baselines rotate buckets
// on absolute-time arithmetic with no ShiftTime, so a fast-forward
// request on them must fall back to exact packet level.
func TestFastForwardIneligibleQdisc(t *testing.T) {
	base := ffCell(AFQ, Seconds(10))
	plain := Run(base)
	ff := base
	ff.FastForward = true
	fr := Run(ff)
	if !fr.FF.ForcedOff {
		t.Fatalf("afq run did not force fast-forward off: %+v", fr.FF)
	}
	if plain.Report() != fr.Report() {
		t.Fatal("ineligible-qdisc forced-off run is not byte-identical")
	}
}

// TestFastForwardRotationOnEpochBoundary aligns a Cebinae rotation
// deadline exactly with the warmup measurement epoch (both pinned at the
// same instant): the skip must land on the shared boundary, dispatch
// both, and carry on — the engine treats a pinned event exactly at the
// skip target as legal re-entry.
func TestFastForwardRotationOnEpochBoundary(t *testing.T) {
	// All-binary timing so the alignment is exact: duration 2^33 ns
	// (~8.6 s), warmup fraction 1/4 → warmup boundary at 2^31 ns, dT
	// 2^23 ns (~8.4 ms, rotations must be a power of two) → the warmup
	// epoch is rotation number 256 precisely. The buffer shrinks to fit
	// Cebinae's Eq.2 headroom constraint at this small a rotation period.
	s := ffCell(Cebinae, SimTime(1)<<33)
	s.BufferBytes = 100000
	s.WarmupFraction = 0.25
	p := DefaultCebinaeParams(s)
	p.DT = SimTime(1) << 23
	s.Params = &p
	s.FastForward = true
	r := Run(s)
	if r.FF.Skips == 0 {
		t.Fatalf("fluid mode never engaged around the aligned boundary: %+v", r.FF)
	}
	if r.GoodputBps == 0 {
		t.Fatal("run moved no bytes")
	}
}

// TestFastForwardLongHorizon is the ≥10-minute scored cell behind the
// fastforward-smoke make target: wall-clock speedup ≥5× with the 1%
// per-flow bound on a converged Cebinae dumbbell.
func TestFastForwardLongHorizon(t *testing.T) {
	if os.Getenv("CEBINAE_FASTFORWARD_SMOKE") == "" {
		t.Skip("set CEBINAE_FASTFORWARD_SMOKE=1 to run the long-horizon fluid differential")
	}
	base := ffCell(Cebinae, Seconds(600))
	t0 := time.Now()
	exact := Run(base)
	exactWall := time.Since(t0)
	ff := base
	ff.FastForward = true
	t0 = time.Now()
	fr := Run(ff)
	ffWall := time.Since(t0)

	speedup := exactWall.Seconds() / ffWall.Seconds()
	worst := maxFlowErr(t, exact, fr)
	t.Logf("600 s cell: wall %.2fs → %.2fs (%.1f×), events %d → %d (%.1f×), worst flow error %.3f%%, ff=%+v",
		exactWall.Seconds(), ffWall.Seconds(), speedup,
		exact.Events, fr.Events, float64(exact.Events)/float64(fr.Events), 100*worst, fr.FF)
	if speedup < 5 {
		t.Fatalf("wall-clock speedup %.1f× < 5×", speedup)
	}
	if worst > 0.01 {
		t.Fatalf("per-flow goodput error %.3f%% exceeds the 1%% bound", 100*worst)
	}
}
