package experiments

import (
	"strings"
	"testing"
)

func TestTable2RowsShape(t *testing.T) {
	rows := Table2Rows()
	if len(rows) != 25 {
		t.Fatalf("Table 2 has 25 configurations, got %d", len(rows))
	}
	for i, r := range rows {
		if r.BtlBps <= 0 || r.BufferMTUs <= 0 || len(r.Groups) == 0 {
			t.Fatalf("row %d malformed: %+v", i, r)
		}
		for gi, g := range r.Groups {
			if g.RTT == 0 {
				t.Fatalf("row %d group %d missing RTT", i, gi)
			}
			if _, ok := map[string]bool{"newreno": true, "cubic": true, "bic": true, "vegas": true, "bbr": true}[g.CC]; !ok {
				t.Fatalf("row %d group %d unknown CCA %q", i, gi, g.CC)
			}
		}
		if r.Label == "" {
			t.Fatalf("row %d missing label", i)
		}
	}
	// Spot-check paper rows: row 13 is {Vegas:1024, Cubic:2} at 1 Gbps.
	r13 := rows[12]
	if r13.BtlBps != 1e9 || r13.Groups[0].Count != 1024 || r13.Groups[0].CC != "vegas" {
		t.Fatalf("row 13 wrong: %+v", r13)
	}
	// Row 25 is the 10 Gbps 128v128 row.
	r25 := rows[24]
	if r25.BtlBps != 10e9 || r25.Groups[1].Count != 128 {
		t.Fatalf("row 25 wrong: %+v", r25)
	}
}

func TestRunScenarioBasics(t *testing.T) {
	r := Run(Scenario{
		Name:          "test",
		BottleneckBps: 20e6,
		BufferBytes:   128 * 1500,
		Groups:        []FlowGroup{{CC: "newreno", Count: 2, RTT: Millis(20)}},
		Duration:      Seconds(5),
		Qdisc:         FIFO,
	})
	if len(r.Flows) != 2 {
		t.Fatalf("expected 2 flows, got %d", len(r.Flows))
	}
	if r.JFI < 0 || r.JFI > 1 {
		t.Fatalf("JFI out of range: %v", r.JFI)
	}
	if r.ThroughputBps > 20e6*1.01 {
		t.Fatalf("throughput above capacity: %v", r.ThroughputBps)
	}
	if r.GoodputBps < 0.7*20e6 {
		t.Fatalf("two NewReno flows should fill most of the link: %v", r.GoodputBps/1e6)
	}
	if r.Events == 0 {
		t.Fatal("event counter missing")
	}
}

func TestRunScenarioSampling(t *testing.T) {
	r := Run(Scenario{
		Name:          "sampled",
		BottleneckBps: 20e6,
		BufferBytes:   128 * 1500,
		Groups: []FlowGroup{
			{CC: "newreno", Count: 1, RTT: Millis(20)},
			{CC: "newreno", Count: 1, RTT: Millis(20), StartAt: Seconds(2)},
		},
		Duration:       Seconds(5),
		Qdisc:          FIFO,
		SampleInterval: Seconds(1),
	})
	if len(r.JFISeries) != 5 {
		t.Fatalf("expected 5 JFI samples, got %d", len(r.JFISeries))
	}
	// Before the second flow arrives the JFI covers one flow (≡1).
	if r.JFISeries[0] < 0.99 {
		t.Fatalf("single-flow JFI should be 1, got %v", r.JFISeries[0])
	}
	if len(r.Flows[1].Series) != 5 || r.Flows[1].Series[0] != 0 {
		t.Fatalf("late flow should have an empty first interval: %v", r.Flows[1].Series)
	}
}

func TestFig11IdealMatchesWaterFilling(t *testing.T) {
	ideal := Fig11Ideal()
	if len(ideal) != 22 {
		t.Fatalf("22 flows expected, got %d", len(ideal))
	}
	approx := func(got, want float64) bool { return got > want*0.999 && got < want*1.001 }
	// Allocator units are bits/sec: long flows 6.25 Mbps.
	if !approx(ideal[0], 6.25e6) {
		t.Fatalf("long flow ideal %v, want 6.25e6", ideal[0])
	}
	if !approx(ideal[8], 25e6) || !approx(ideal[10], 6.25e6) || !approx(ideal[18], 12.5e6) {
		t.Fatalf("cross ideals wrong: bic=%v vegas=%v cubic=%v", ideal[8], ideal[10], ideal[18])
	}
}

func TestTable3MatchesPaperBallpark(t *testing.T) {
	rows := Table3()
	if len(rows) != 2 {
		t.Fatalf("two configurations expected")
	}
	one, two := rows[0].Usage, rows[1].Usage
	if one.CacheStages != 1 || two.CacheStages != 2 {
		t.Fatal("stage ordering wrong")
	}
	// Paper: 937b/1042b PHV, 2448/4096 KB SRAM, 15/34 KB TCAM, 89/93 VLIW,
	// 11 stages, 64 queues. The model must land within ~15%.
	within := func(got, want, tol float64) bool { return got >= want*(1-tol) && got <= want*(1+tol) }
	if !within(float64(one.PHVBits), 937, 0.15) || !within(float64(two.PHVBits), 1042, 0.15) {
		t.Fatalf("PHV off: %d/%d", one.PHVBits, two.PHVBits)
	}
	if !within(float64(one.SRAMKB), 2448, 0.15) || !within(float64(two.SRAMKB), 4096, 0.15) {
		t.Fatalf("SRAM off: %d/%d", one.SRAMKB, two.SRAMKB)
	}
	if !within(float64(one.VLIWInstrs), 89, 0.15) || !within(float64(two.VLIWInstrs), 93, 0.15) {
		t.Fatalf("VLIW off: %d/%d", one.VLIWInstrs, two.VLIWInstrs)
	}
	if one.Queues != 64 || two.Queues != 64 {
		t.Fatalf("queues off: %d/%d", one.Queues, two.Queues)
	}
	if !rows[0].Fits || !rows[1].Fits {
		t.Fatal("both builds must fit the Tofino budget")
	}
}

func TestFig13AccuracyTrends(t *testing.T) {
	cfg := DefaultFig13Config(Quick)
	cfg.Trials = 3
	pts := Fig13b(cfg)
	// Collect FNR by stages at the largest slot count.
	fnr := map[int]float64{}
	for _, p := range pts {
		if p.Slots == 4096 {
			fnr[p.Stages] = p.FNR
		}
		if p.FPR > 0.01 {
			t.Fatalf("FPR must stay tiny (paper: <10⁻⁴ scale): %+v", p)
		}
	}
	if fnr[4] > fnr[1]+1e-9 {
		t.Fatalf("more stages must not worsen FNR: %v", fnr)
	}
	// More slots reduce (or hold) FNR for the 1-stage cache.
	var fnr512, fnr4096 float64
	for _, p := range pts {
		if p.Stages == 1 && p.Slots == 512 {
			fnr512 = p.FNR
		}
		if p.Stages == 1 && p.Slots == 4096 {
			fnr4096 = p.FNR
		}
	}
	if fnr4096 > fnr512+0.05 {
		t.Fatalf("more slots should not worsen FNR: 512→%v 4096→%v", fnr512, fnr4096)
	}
}

// TestFig7Reproduction is the headline behavioural check: Cebinae must
// dramatically improve the Vegas-starvation JFI over FIFO (paper: 0.093 →
// 0.984) and cut the NewReno flow's capture.
func TestFig7Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	r := Fig7(Medium)
	if r.JFI[Cebinae] < r.JFI[FIFO]+0.3 {
		t.Fatalf("Cebinae JFI %.3f vs FIFO %.3f: insufficient improvement", r.JFI[Cebinae], r.JFI[FIFO])
	}
	if r.JFI[Cebinae] < 0.85 {
		t.Fatalf("Cebinae JFI %.3f below reproduction bar", r.JFI[Cebinae])
	}
	renoFIFO := r.Goodputs[FIFO][16]
	renoCeb := r.Goodputs[Cebinae][16]
	if renoCeb > renoFIFO/2 {
		t.Fatalf("NewReno capture not curtailed: %.1f → %.1f Mbps", renoFIFO/1e6, renoCeb/1e6)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	out := RenderTable3(Table3())
	if !strings.Contains(out, "SRAM") {
		t.Fatal("table 3 renderer broken")
	}
	f := Fig1(Quick)
	if !strings.Contains(f.Render(), "Cebinae") {
		t.Fatal("fig1 renderer broken")
	}
	cfg := DefaultFig13Config(Quick)
	cfg.Trials = 2
	if !strings.Contains(RenderFig13(Fig13a(cfg), Fig13b(cfg)), "FNR") {
		t.Fatal("fig13 renderer broken")
	}
}
