package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/core"
	"cebinae/internal/hhcache"
	"cebinae/internal/maxmin"
	"cebinae/internal/metrics"
	"cebinae/internal/packet"
	"cebinae/internal/resource"
	"cebinae/internal/sim"
	"cebinae/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 11: the parking-lot multi-bottleneck scenario — 8 NewReno flows
// across 3 hops contend with 2 Bic, 8 Vegas, and 4 Cubic cross flows at
// three 100 Mbps bottlenecks. Measured against the ideal max-min
// allocation via the normalised JFI of §5.3.
// ---------------------------------------------------------------------------

// Fig11Result carries per-flow goodputs, the ideal allocation, and the
// normalised JFI per discipline.
type Fig11Result struct {
	// Labels[i] names flow i (paper indexing: 0–7 NewReno long, 8–9 Bic,
	// 10–17 Vegas, 18–21 Cubic).
	Labels     []string
	IdealBps   []float64
	GoodputBps map[QdiscKind][]float64
	NormJFI    map[QdiscKind]float64
}

// Fig11Ideal computes the water-filling allocation for the topology.
func Fig11Ideal() []float64 {
	n := &maxmin.Network{
		Capacity: []float64{100e6, 100e6, 100e6},
		Routes:   make([][]int, 0, 22),
	}
	for i := 0; i < 8; i++ { // long NewReno flows traverse every hop
		n.Routes = append(n.Routes, []int{0, 1, 2})
	}
	for i := 0; i < 2; i++ { // Bic at hop 1
		n.Routes = append(n.Routes, []int{0})
	}
	for i := 0; i < 8; i++ { // Vegas at hop 2
		n.Routes = append(n.Routes, []int{1})
	}
	for i := 0; i < 4; i++ { // Cubic at hop 3
		n.Routes = append(n.Routes, []int{2})
	}
	rates, err := maxmin.Allocate(n)
	if err != nil {
		panic(err)
	}
	return rates
}

// Fig11 runs the parking-lot experiment under FIFO and Cebinae.
func Fig11(scale Scale) Fig11Result {
	dur := sim.Time(float64(scale) * 100e9)
	res := Fig11Result{
		IdealBps:   Fig11Ideal(),
		GoodputBps: map[QdiscKind][]float64{},
		NormJFI:    map[QdiscKind]float64{},
	}
	for i := 0; i < 8; i++ {
		res.Labels = append(res.Labels, fmt.Sprintf("newreno-long%d", i))
	}
	for i := 0; i < 2; i++ {
		res.Labels = append(res.Labels, fmt.Sprintf("bic-x1.%d", i))
	}
	for i := 0; i < 8; i++ {
		res.Labels = append(res.Labels, fmt.Sprintf("vegas-x2.%d", i))
	}
	for i := 0; i < 4; i++ {
		res.Labels = append(res.Labels, fmt.Sprintf("cubic-x3.%d", i))
	}

	for _, kind := range []QdiscKind{FIFO, Cebinae} {
		res.GoodputBps[kind] = runParkingLot(kind, dur)
		ideal := make([]float64, len(res.IdealBps))
		copy(ideal, res.IdealBps)
		res.NormJFI[kind] = metrics.NormalizedJFI(res.GoodputBps[kind], ideal)
	}
	return res
}

// runParkingLot builds and runs the 3-hop chain for one discipline,
// returning per-flow goodputs (bits/sec) in paper order.
func runParkingLot(kind QdiscKind, dur sim.Time) []float64 {
	goodputs, _ := RunParkingLotShards(kind, dur, 0)
	return goodputs
}

// RunParkingLotShards runs the Fig.11 parking-lot chain partitioned
// across `shards` engines (0 selects the package default, ShardAuto a
// machine-sized count; placement comes from the min-cut planner). It
// returns per-flow goodputs in paper order plus the total dispatched
// event count; both are byte-identical at any shard count, which the
// differential regression tests assert. The construction itself lives in
// RunChain — the same builder the "chain" scenario-file kind lowers to.
func RunParkingLotShards(kind QdiscKind, dur sim.Time, shards int) ([]float64, uint64) {
	r := RunChain(CanonicalChain(kind, dur, shards))
	return r.Goodputs(), r.Events
}

// Render prints per-flow goodputs against the ideal.
func (f Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.11 — parking lot (3×100 Mbps): per-flow goodput [Mbps] vs ideal max-min\n")
	fmt.Fprintf(&b, "%4s %-16s | %6s | %8s | %8s\n", "flow", "kind", "ideal", "FIFO", "Cebinae")
	for i := range f.Labels {
		fmt.Fprintf(&b, "%4d %-16s | %6.2f | %8.2f | %8.2f\n", i, f.Labels[i],
			f.IdealBps[i]/1e6, f.GoodputBps[FIFO][i]/1e6, f.GoodputBps[Cebinae][i]/1e6)
	}
	fmt.Fprintf(&b, "normalised JFI: FIFO=%.3f Cebinae=%.3f\n", f.NormJFI[FIFO], f.NormJFI[Cebinae])
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 12: parameter sensitivity — 16 NewReno vs 1 Cubic on 100 Mbps,
// sweeping δp = δf = τ together from 1% to 100%; JFI and goodput, with
// FIFO and FQ reference lines.
// ---------------------------------------------------------------------------

// Fig12Point is one threshold setting's outcome.
type Fig12Point struct {
	ThresholdPct float64
	JFI          float64
	GoodputBps   float64
}

// Fig12Result carries the sweep plus reference baselines.
type Fig12Result struct {
	Points      []Fig12Point
	FIFOJFI     float64
	FIFOGoodput float64
	FQJFI       float64
	FQGoodput   float64
}

// Fig12 runs the sweep.
func Fig12(scale Scale) Fig12Result {
	dur := sim.Time(float64(scale) * 100e9)
	base := Scenario{
		BottleneckBps: 100e6,
		BufferBytes:   850 * 1500,
		Groups: []FlowGroup{
			{CC: "newreno", Count: 16, RTT: ms(50)},
			{CC: "cubic", Count: 1, RTT: ms(50)},
		},
		Duration: dur,
		Seed:     7,
	}
	var out Fig12Result
	{
		s := base
		s.Name, s.Qdisc = "fig12/fifo", FIFO
		r := Run(s)
		out.FIFOJFI, out.FIFOGoodput = r.JFI, r.GoodputBps
	}
	{
		s := base
		s.Name, s.Qdisc = "fig12/fq", FQ
		r := Run(s)
		out.FQJFI, out.FQGoodput = r.JFI, r.GoodputBps
	}
	for _, pct := range []float64{1, 2, 5, 10, 25, 50, 75, 100} {
		p := core.DefaultParams(base.BottleneckBps, base.BufferBytes, ms(50))
		p.DeltaPort = pct / 100
		p.DeltaFlow = pct / 100
		p.Tau = pct / 100
		s := base
		s.Name, s.Qdisc, s.Params = fmt.Sprintf("fig12/ceb/%g", pct), Cebinae, &p
		r := Run(s)
		out.Points = append(out.Points, Fig12Point{ThresholdPct: pct, JFI: r.JFI, GoodputBps: r.GoodputBps})
	}
	return out
}

// Render prints the sweep.
func (f Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.12 — 16 NewReno vs 1 Cubic, 100 Mbps; thresholds δp=δf=τ swept together\n")
	fmt.Fprintf(&b, "%9s | %6s | %14s\n", "thresh[%]", "JFI", "goodput[Mbps]")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%9g | %6.3f | %14.2f\n", p.ThresholdPct, p.JFI, p.GoodputBps/1e6)
	}
	fmt.Fprintf(&b, "ref FIFO: JFI=%.3f goodput=%.2f | ref FQ: JFI=%.3f goodput=%.2f\n",
		f.FIFOJFI, f.FIFOGoodput/1e6, f.FQJFI, f.FQGoodput/1e6)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3: Tofino resource usage for 1- and 2-stage cache builds.
// ---------------------------------------------------------------------------

// Table3Row pairs a build config with its modelled usage.
type Table3Row struct {
	Usage resource.Usage
	Fits  bool
}

// Table3 evaluates the paper's two configurations (32 ports, 4096 slots per
// port per stage).
func Table3() []Table3Row {
	var out []Table3Row
	for _, stages := range []int{1, 2} {
		u := resource.Estimate(resource.Config{Ports: 32, CacheStages: stages, CacheSlots: 4096, TopTableEntries: 1024})
		ok, _ := u.Fits(resource.TofinoBudget())
		out = append(out, Table3Row{Usage: u, Fits: ok})
	}
	return out
}

// RenderTable3 prints the table in the paper's layout.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	budget := resource.TofinoBudget()
	fmt.Fprintf(&b, "Table 3 — Cebinae data-plane resource usage (32-port Tofino model)\n")
	fmt.Fprintf(&b, "%11s | %14s | %6s | %8s | %7s | %10s | %6s | %4s\n",
		"Cache stages", "Pipeline stages", "PHV", "SRAM", "TCAM", "VLIW instrs", "Queues", "fits")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d | %15d | %4db | %5dKB | %4dKB | %11d | %6d | %v\n",
			r.Usage.CacheStages, r.Usage.PipelineStages, r.Usage.PHVBits, r.Usage.SRAMKB,
			r.Usage.TCAMKB, r.Usage.VLIWInstrs, r.Usage.Queues, r.Fits)
	}
	fmt.Fprintf(&b, "budget: %d stages, %db PHV, %dKB SRAM, %dKB TCAM, %d VLIW, %d queues\n",
		budget.PipelineStages, budget.PHVBits, budget.SRAMKB, budget.TCAMKB, budget.VLIWInstrs, budget.Queues)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 13: ⊤-flow detection accuracy of the heavy-hitter cache on a
// synthetic backbone trace — FPR/FNR vs round interval (a) and slot count
// (b), for 1/2/4-stage caches.
// ---------------------------------------------------------------------------

// Fig13Point is one (stages, slots, interval) accuracy measurement.
type Fig13Point struct {
	Stages   int
	Slots    int
	Interval sim.Time
	FPR      float64
	FNR      float64
}

// Fig13Config parameterises the accuracy sweep.
type Fig13Config struct {
	Trials    int
	DeltaFlow float64
	Trace     trace.Config
}

// DefaultFig13Config mirrors the paper: 100 trials per point at Full scale.
func DefaultFig13Config(scale Scale) Fig13Config {
	trials := int(100 * float64(scale))
	if trials < 5 {
		trials = 5
	}
	tc := trace.DefaultConfig()
	tc.Duration = sim.Duration(500e6) // 0.5 s of backbone traffic per trial
	return Fig13Config{Trials: trials, DeltaFlow: 0.01, Trace: tc}
}

// Fig13a varies the round interval at 2048 slots.
func Fig13a(cfg Fig13Config) []Fig13Point {
	var out []Fig13Point
	for _, stages := range []int{1, 2, 4} {
		for _, ivalMS := range []float64{20, 40, 60, 80, 100} {
			out = append(out, fig13Point(cfg, stages, 2048, ms(ivalMS)))
		}
	}
	return out
}

// Fig13b varies the slot count at a 100 ms interval.
func Fig13b(cfg Fig13Config) []Fig13Point {
	var out []Fig13Point
	for _, stages := range []int{1, 2, 4} {
		for _, slots := range []int{512, 1024, 2048, 4096} {
			out = append(out, fig13Point(cfg, stages, slots, ms(100)))
		}
	}
	return out
}

// fig13Point replays trials of the synthetic trace through a cache of the
// given geometry, comparing detected ⊤ flows against ground truth per
// round interval.
func fig13Point(cfg Fig13Config, stages, slots int, interval sim.Time) Fig13Point {
	var fpSum, fnSum float64
	var fpDen, fnDen float64
	for trial := 0; trial < cfg.Trials; trial++ {
		tc := cfg.Trace
		tc.Seed = uint64(trial + 1)
		pkts := trace.Generate(tc)
		cache := hhcache.New(stages, slots)

		for from := sim.Time(0); from < tc.Duration; from += interval {
			to := from + interval
			// Ground truth over the window.
			truth := trace.Aggregate(pkts, from, to)
			if len(truth) == 0 {
				continue
			}
			trueMax := truth[0].Bytes
			trueTop := map[packet.FlowKey]bool{}
			for _, fc := range truth {
				if float64(fc.Bytes) >= float64(trueMax)*(1-cfg.DeltaFlow) {
					trueTop[fc.Flow] = true
				}
			}
			// Replay through the cache.
			for _, p := range pkts {
				if p.At >= from && p.At < to {
					cache.Observe(p.Flow, int64(p.Bytes))
				}
			}
			entries := cache.Poll()
			var cacheMax int64
			for _, e := range entries {
				if e.Bytes > cacheMax {
					cacheMax = e.Bytes
				}
			}
			detected := map[packet.FlowKey]bool{}
			for _, e := range entries {
				if float64(e.Bytes) >= float64(cacheMax)*(1-cfg.DeltaFlow) {
					detected[e.Flow] = true
				}
			}
			// Score.
			var fp, fn int
			for f := range detected {
				if !trueTop[f] {
					fp++
				}
			}
			for f := range trueTop {
				if !detected[f] {
					fn++
				}
			}
			fpSum += float64(fp)
			fpDen += float64(len(truth) - len(trueTop))
			fnSum += float64(fn)
			fnDen += float64(len(trueTop))
		}
	}
	pt := Fig13Point{Stages: stages, Slots: slots, Interval: interval}
	if fpDen > 0 {
		pt.FPR = fpSum / fpDen
	}
	if fnDen > 0 {
		pt.FNR = fnSum / fnDen
	}
	return pt
}

// RenderFig13 prints both panels.
func RenderFig13(a, b []Fig13Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig.13a — FPR/FNR vs round interval (2048 slots)\n")
	fmt.Fprintf(&sb, "%6s %9s | %10s | %8s\n", "stages", "ival[ms]", "FPR", "FNR")
	for _, p := range a {
		fmt.Fprintf(&sb, "%6d %9.0f | %10.6f | %8.4f\n", p.Stages, float64(p.Interval)/1e6, p.FPR, p.FNR)
	}
	fmt.Fprintf(&sb, "Fig.13b — FPR/FNR vs slot count (100 ms interval)\n")
	fmt.Fprintf(&sb, "%6s %9s | %10s | %8s\n", "stages", "slots", "FPR", "FNR")
	for _, p := range b {
		fmt.Fprintf(&sb, "%6d %9d | %10.6f | %8.4f\n", p.Stages, p.Slots, p.FPR, p.FNR)
	}
	return sb.String()
}
