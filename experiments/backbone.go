package experiments

// The backbone scenario family is the paper's Fig.-13 regime run live: a
// 10 Gbps core carrying a CAIDA-like flow population (10⁵–10⁶ standing
// flows plus >400k flows/min of churn) through a Cebinae switch. Flows are
// driven by internal/replay — compact paced senders, not TCP state
// machines — which is what makes the million-flow tier a benchmark row
// instead of a slogan. The run stress-tests the cardinality-sensitive
// components at real cardinality: the heavy-hitter cache (recall of the
// true top-K), the count-min sketch (overestimate bias, never-undercount
// invariant), and the max-min allocator (water-filling over every observed
// flow).

import (
	"fmt"
	"sort"
	"strings"

	"cebinae/internal/cmsketch"
	"cebinae/internal/core"
	"cebinae/internal/hhcache"
	"cebinae/internal/maxmin"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/replay"
	"cebinae/internal/sim"
	"cebinae/internal/trace"
)

// BackboneConfig parameterises one backbone run.
type BackboneConfig struct {
	Name string
	// Flows is the standing population target (flows in progress at t=0).
	Flows int
	// CoreBps / CoreDelay describe the bottleneck core link; AccessBps
	// the edge links feeding it.
	CoreBps   float64
	CoreDelay SimTime
	AccessBps float64
	// BufferBytes sizes the core egress buffer.
	BufferBytes int
	Duration    SimTime
	// Qdisc selects the core discipline: Cebinae or FIFO.
	Qdisc QdiscKind
	// ClosedLoop enables the replay congestion loop (drops and CE marks
	// slow senders down — required for Cebinae's tax to bite).
	ClosedLoop bool
	// RTTSpread scatters per-flow pacing cadence by a deterministic
	// hash of each flow record (see replay.Config.RTTSpread), modelling
	// the RTT diversity of a real backbone population.
	RTTSpread float64
	// Trace is the flow schedule generator configuration.
	Trace trace.Config
	// Sketch / cache geometry for the cardinality stress instrumentation.
	SketchRows  int
	SketchCols  int
	CacheStages int
	CacheSlots  int
	// TopK is the heavy-hitter set size scored for recall.
	TopK int
	// Shards partitions the run (0 = package default, ShardAuto =
	// machine-sized); the min-cut planner places the four-node chain,
	// cutting the core link first and the access links beyond two shards.
	Shards int
}

// BackboneTier returns the canonical configuration for a standing
// population of `flows` (1e5 and 1e6 are the named tiers). The trace's
// LifetimeScale is set by Little's law: with the default churn rate and
// millisecond lifetimes the standing population would collapse within a
// few ms of t=0, so lifetimes stretch proportionally to the target
// population and the population stays near `flows` for the whole window.
func BackboneTier(flows int, scale Scale) BackboneConfig {
	//lint:ignore simtime the horizon is a scale fraction of 400 ms (« 2^53 ns); sub-nanosecond rounding of a run length is immaterial
	dur := SimTime(float64(Seconds(0.4)) * float64(scale))
	if dur < Millis(40) {
		dur = Millis(40)
	}
	tc := trace.DefaultConfig()
	tc.Duration = dur
	tc.StandingFlows = flows
	tc.LifetimeScale = float64(flows) / 2000
	tc.LinkBps = 0 // no offline thinning: the replay loop paces live
	tc.Seed = 1
	return BackboneConfig{
		Name:        fmt.Sprintf("backbone-%dk", flows/1000),
		Flows:       flows,
		CoreBps:     10e9,
		CoreDelay:   Millis(2),
		AccessBps:   40e9,
		BufferBytes: 8 << 20,
		Duration:    dur,
		Qdisc:       Cebinae,
		ClosedLoop:  true,
		RTTSpread:   0.2,
		Trace:       tc,
		SketchRows:  4,
		SketchCols:  1 << 16,
		CacheStages: 2,
		CacheSlots:  2048,
		TopK:        64,
	}
}

// BackboneResult aggregates one backbone run.
type BackboneResult struct {
	Config BackboneConfig

	// Flow population.
	FlowsSeen  int // unique flows observed at the core
	Started    uint64
	Finished   uint64
	PeakActive int

	// Core link.
	SentPackets    uint64
	CoreTxPackets  uint64
	CoreTxBytes    uint64
	CoreDropPkts   uint64
	UtilizationPct float64

	// Closed loop.
	SinkPackets uint64
	LostBytes   uint64
	CEMarks     uint64
	Feedbacks   uint64
	RateCuts    uint64

	// Cebinae internals (zero for FIFO cores).
	CebStats core.Stats

	// Cardinality stress scores.
	CacheRecallTopK        float64
	CacheOccupied          int
	SketchOverestimatePct  float64 // mean relative overestimate on true top-K
	SketchUnderestimates   int     // count-min must never undercount: 0
	MaxMinFlows            int
	MaxMinFairShareBps     float64
	MaxMinSumBps           float64
	MaxMinSaturatedDemands int

	Events uint64
}

// backboneObserver taps the core device's transmit hook: the exact packet
// stream the control plane of a core switch would see. It feeds the sketch
// and cache under test and keeps exact per-flow truth for scoring.
type backboneObserver struct {
	sketch *cmsketch.Sketch
	cache  *hhcache.Cache
	truth  map[packet.FlowKey]int64
}

func (o *backboneObserver) observe(p *packet.Packet) {
	if p.PayloadSize <= 0 {
		return // feedback headers are not flow traffic
	}
	sz := int64(p.Size)
	o.sketch.Add(p.Flow, sz)
	o.cache.Observe(p.Flow, sz)
	o.truth[p.Flow] += sz
}

// backbonePoller drains the stress cache every interval on the core
// shard's engine — the control plane's poll-and-reset loop — merging each
// round's entries into the set of flows the cache ever reported. Without
// the resets a HashPipe cache saturates with the first arrivals and the
// recall score measures slot ownership, not detection.
type backbonePoller struct {
	timer    sim.Timer
	eng      *sim.Engine
	cache    *hhcache.Cache
	interval sim.Time
	held     map[packet.FlowKey]bool
	peakOcc  int
}

func (b *backbonePoller) OnEvent(any) {
	b.poll()
	b.eng.ArmTimer(&b.timer, b.interval, b, nil)
}

func (b *backbonePoller) poll() {
	for _, e := range b.cache.Poll() {
		b.held[e.Flow] = true
	}
	if occ := b.cache.Stats().Occupied; occ > b.peakOcc {
		b.peakOcc = occ
	}
}

// RunBackbone executes one backbone scenario.
func RunBackbone(cfg BackboneConfig) BackboneResult {
	if err := cfg.Trace.Validate(); err != nil {
		panic(err)
	}
	schedule := trace.Flows(cfg.Trace)

	// Chain: src — sw1 ═(core)═ sw2 — dst, partitioned by the min-cut
	// planner. Two shards cut the core link ({src,sw1} | {sw2,dst}, 2 ms
	// lookahead); three and four shards also cut the 200 µs access links.
	// Cut access links are safe now that cross-shard injections carry
	// their emission stamp (sim.Engine.AtCallFrom): even at 10⁵-flow
	// density, where a 40 Gbps access link serialises a packet every
	// ~150 ns and same-nanosecond ties between injected arrivals and the
	// core queue's own events are systematic, the (time, emission, seq)
	// order resolves them exactly as a single merged engine would — the
	// differential tests assert byte-identity across all four counts.
	type backboneTopo struct {
		src, sw1, sw2, dst               *netem.Node
		srcFwd, srcRev, coreFwd, coreRev *netem.Device
		dstFwd, dstRev                   *netem.Device
	}
	edge := func() netem.Qdisc { return qdisc.NewFIFO(64 << 20) }
	build := func(f netem.Fabric) backboneTopo {
		var t backboneTopo
		n := f.Shards()
		t.src = f.NodeOn(0, "src")
		t.sw1 = f.NodeOn(0, "sw1")
		t.sw2 = f.NodeOn(n-1, "sw2")
		t.dst = f.NodeOn(n-1, "dst")
		access := netem.LinkConfig{RateBps: cfg.AccessBps, Delay: sim.Duration(200e3), QdiscFactory: edge}
		t.srcFwd, t.srcRev = f.Connect(t.src, t.sw1, access)
		t.coreFwd, t.coreRev = f.Connect(t.sw1, t.sw2, netem.LinkConfig{RateBps: cfg.CoreBps, Delay: cfg.CoreDelay, QdiscFactory: edge})
		t.dstFwd, t.dstRev = f.Connect(t.sw2, t.dst, access)
		return t
	}
	cl := newCluster(cfg.Shards, func(f netem.Fabric) { build(f) })
	topo := build(cl)
	src, sw1, sw2, dst := topo.src, topo.sw1, topo.sw2, topo.dst
	srcFwd, srcRev := topo.srcFwd, topo.srcRev
	coreFwd, coreRev := topo.coreFwd, topo.coreRev
	dstFwd, dstRev := topo.dstFwd, topo.dstRev

	// The core egress discipline under test, on the engine that owns it.
	var cq *core.Qdisc
	if cfg.Qdisc == Cebinae {
		rtt := 2 * (cfg.CoreDelay + 2*sim.Duration(200e3))
		cq = core.New(coreFwd.Node().Engine(), cfg.CoreBps, cfg.BufferBytes, core.DefaultParams(cfg.CoreBps, cfg.BufferBytes, rtt))
		cq.OnDrain = coreFwd.Kick
		coreFwd.SetQdisc(cq)
	} else {
		coreFwd.SetQdisc(qdisc.NewFIFO(cfg.BufferBytes))
	}

	// Forward route src→dst and the reverse feedback path dst→src.
	src.AddRoute(dst.ID, srcFwd)
	sw1.AddRoute(dst.ID, coreFwd)
	sw2.AddRoute(dst.ID, dstFwd)
	dst.AddRoute(src.ID, dstRev)
	sw2.AddRoute(src.ID, coreRev)
	sw1.AddRoute(src.ID, srcRev)

	obs := &backboneObserver{
		sketch: cmsketch.New(cfg.SketchRows, cfg.SketchCols),
		cache:  hhcache.New(cfg.CacheStages, cfg.CacheSlots),
		truth:  make(map[packet.FlowKey]int64, cfg.Flows),
	}
	coreFwd.OnTransmit = obs.observe

	// Control-plane polling at a quarter of the run — the cadence, like
	// the cache itself, lives on the engine that owns the core device.
	poller := &backbonePoller{
		eng:      coreFwd.Node().Engine(),
		cache:    obs.cache,
		interval: cfg.Duration / 4,
		held:     make(map[packet.FlowKey]bool),
	}
	poller.eng.ArmTimer(&poller.timer, poller.interval, poller, nil)

	source := replay.NewSource(src, schedule, replay.Config{
		To:          dst.ID,
		PacketBytes: cfg.Trace.MeanPacketBytes,
		ClosedLoop:  cfg.ClosedLoop,
		ECN:         cfg.ClosedLoop,
		RTTSpread:   cfg.RTTSpread,
	})
	sink := replay.NewSink(dst, replay.SinkConfig{ClosedLoop: cfg.ClosedLoop})

	cl.Run(cfg.Duration)

	res := BackboneResult{
		Config:        cfg,
		FlowsSeen:     len(obs.truth),
		Started:       source.Stats.Started,
		Finished:      source.Stats.Finished,
		PeakActive:    source.Stats.PeakActive,
		SentPackets:   source.Stats.SentPackets,
		CoreTxPackets: coreFwd.Stats.TxPackets,
		CoreTxBytes:   coreFwd.Stats.TxBytes,
		CoreDropPkts:  coreFwd.Stats.DropPackets,
		SinkPackets:   sink.Stats.Packets,
		LostBytes:     sink.Stats.LostBytes,
		CEMarks:       sink.Stats.CEMarks,
		Feedbacks:     source.Stats.Feedbacks,
		RateCuts:      source.Stats.RateCuts,
		Events:        cl.Processed(),
	}
	if cq != nil {
		res.CebStats = cq.Stats
		// Cebinae owns the core's drop accounting (past-tail drops happen
		// at enqueue, inside the qdisc).
		res.CoreDropPkts = res.CebStats.BufferDrops + res.CebStats.LBFDrops
	}
	res.UtilizationPct = 100 * float64(res.CoreTxBytes*8) / (cfg.CoreBps * cfg.Duration.Seconds())
	poller.poll() // final partial round
	scoreBackbone(&res, obs, poller, cfg)
	return res
}

// scoreBackbone computes the cardinality-stress scores from the observer's
// ground truth: cache recall on the true top-K, sketch bias on the same
// set, and the ideal water-filling allocation over every observed flow.
func scoreBackbone(res *BackboneResult, obs *backboneObserver, poller *backbonePoller, cfg BackboneConfig) {
	if len(obs.truth) == 0 {
		return
	}
	truth := make([]trace.FlowCount, 0, len(obs.truth))
	for f, b := range obs.truth {
		truth = append(truth, trace.FlowCount{Flow: f, Bytes: b})
	}
	sort.Slice(truth, func(i, j int) bool {
		if truth[i].Bytes != truth[j].Bytes {
			return truth[i].Bytes > truth[j].Bytes
		}
		return truth[i].Flow.Hash(0) < truth[j].Flow.Hash(0)
	})

	k := cfg.TopK
	if k > len(truth) {
		k = len(truth)
	}

	// Cache recall: how many of the true top-K the polled cache ever
	// reported across the control-plane rounds.
	res.CacheOccupied = poller.peakOcc
	hit := 0
	for _, fc := range truth[:k] {
		if poller.held[fc.Flow] {
			hit++
		}
	}
	if k > 0 {
		res.CacheRecallTopK = float64(hit) / float64(k)
	}

	// Sketch bias on the true top-K; estimates below truth violate the
	// count-min invariant and are counted, never averaged away.
	var overSum float64
	for _, fc := range truth[:k] {
		est := obs.sketch.Estimate(fc.Flow)
		if est < fc.Bytes {
			res.SketchUnderestimates++
			continue
		}
		overSum += float64(est-fc.Bytes) / float64(fc.Bytes)
	}
	if n := k - res.SketchUnderestimates; n > 0 {
		res.SketchOverestimatePct = 100 * overSum / float64(n)
	}

	// Ideal max-min over the observed flow set: one shared link, each
	// flow's demand its achieved mean rate. The water level is the fair
	// share an omniscient allocator would give the unconstrained flows.
	net := &maxmin.Network{
		Capacity: []float64{cfg.CoreBps},
		Routes:   make([][]int, len(truth)),
		Demand:   make([]float64, len(truth)),
	}
	secs := cfg.Duration.Seconds()
	for i, fc := range truth {
		net.Routes[i] = []int{0}
		net.Demand[i] = float64(fc.Bytes*8) / secs
	}
	rates, err := maxmin.Allocate(net)
	if err != nil {
		panic(fmt.Sprintf("experiments: backbone max-min: %v", err))
	}
	res.MaxMinFlows = len(rates)
	for i, r := range rates {
		res.MaxMinSumBps += r
		if r > res.MaxMinFairShareBps {
			res.MaxMinFairShareBps = r
		}
		if r >= net.Demand[i] {
			res.MaxMinSaturatedDemands++
		}
	}
}

// Render prints the backbone report section (deterministic: no wall-clock,
// no map iteration).
func (r BackboneResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Backbone tier %s — %s core, %s, %d standing flows\n",
		r.Config.Name, bpsLabel(r.Config.CoreBps), r.Config.Qdisc, r.Config.Flows)
	fmt.Fprintf(&sb, "  population: %d flows seen at core, %d started, %d finished, peak %d concurrent\n",
		r.FlowsSeen, r.Started, r.Finished, r.PeakActive)
	fmt.Fprintf(&sb, "  core: %d pkts tx, %.1f MB, %d drops, utilization %.1f%%\n",
		r.CoreTxPackets, float64(r.CoreTxBytes)/1e6, r.CoreDropPkts, r.UtilizationPct)
	if r.Config.ClosedLoop {
		fmt.Fprintf(&sb, "  loop: %d delivered, %.1f MB lost, %d CE, %d feedbacks, %d rate cuts\n",
			r.SinkPackets, float64(r.LostBytes)/1e6, r.CEMarks, r.Feedbacks, r.RateCuts)
	}
	if r.Config.Qdisc == Cebinae {
		fmt.Fprintf(&sb, "  cebinae: %d rotations, %d recomputes, %d delayed, %d ECN, LBF drops %d\n",
			r.CebStats.Rotations, r.CebStats.Recomputes, r.CebStats.Delayed, r.CebStats.ECNMarked, r.CebStats.LBFDrops)
	}
	fmt.Fprintf(&sb, "  hhcache %dx%d: top-%d recall %.3f, peak %d slots occupied\n",
		r.Config.CacheStages, r.Config.CacheSlots, r.Config.TopK, r.CacheRecallTopK, r.CacheOccupied)
	fmt.Fprintf(&sb, "  cmsketch %dx%d: +%.2f%% mean overestimate on top-%d, %d underestimates\n",
		r.Config.SketchRows, r.Config.SketchCols, r.SketchOverestimatePct, r.Config.TopK, r.SketchUnderestimates)
	fmt.Fprintf(&sb, "  maxmin: %d flows, fair share %s, sum %s, %d demand-limited\n",
		r.MaxMinFlows, bpsLabel(r.MaxMinFairShareBps), bpsLabel(r.MaxMinSumBps), r.MaxMinSaturatedDemands)
	fmt.Fprintf(&sb, "  events: %d\n", r.Events)
	return sb.String()
}

// bpsLabel formats a bit rate compactly and deterministically.
func bpsLabel(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2f Gbps", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2f Mbps", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2f kbps", bps/1e3)
	default:
		return fmt.Sprintf("%.0f bps", bps)
	}
}
