package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/fleet"
)

// The grid scenario family enumerates dumbbell cells over a parameter
// cross-product and reports one fairness row per cell. Two generators
// exist: the CCA tournament (every CCA pair × RTT ratio × buffer depth,
// after CoCo-Beholder's testbed matrices) and the buffer-depth fairness
// sweep (a fixed CC mix — canonically BBRv1 vs Cubic — across buffer
// sizes, after the BBR-fairness study's grid). Cells are independent
// simulations, so a grid fans out over the fleet worker pool one job per
// cell and reassembles deterministically by cell ID.

// GridCell is one independent dumbbell simulation within a grid.
type GridCell struct {
	ID       string
	Label    string
	Scenario Scenario
}

// GridCellResult is one cell's fairness row.
type GridCellResult struct {
	ID            string
	Label         string
	JFI           float64
	ThroughputBps float64
	GoodputBps    float64
	// GroupGoodputBps aggregates goodput per flow group in declaration
	// order — the per-CCA split a tournament cell reports.
	GroupGoodputBps []float64
}

// RunGridCell runs one cell.
func RunGridCell(c GridCell) GridCellResult {
	r := Run(c.Scenario)
	out := GridCellResult{
		ID: c.ID, Label: c.Label,
		JFI: r.JFI, ThroughputBps: r.ThroughputBps, GoodputBps: r.GoodputBps,
	}
	idx := 0
	for _, g := range c.Scenario.Groups {
		var sum float64
		for i := 0; i < g.Count; i++ {
			sum += r.Flows[idx].GoodputBps
			idx++
		}
		out.GroupGoodputBps = append(out.GroupGoodputBps, sum)
	}
	return out
}

// GridResult aggregates a grid run in cell order.
type GridResult struct {
	Name  string
	Cells []GridCellResult
}

// Report renders the grid in canonical byte-stable form: one row per
// cell, cells in generation order.
func (r GridResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid %s: %d cells\n", r.Name, len(r.Cells))
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-44s JFI=%.9f goodput=%14.6f", c.ID, c.JFI, c.GoodputBps)
		for _, g := range c.GroupGoodputBps {
			fmt.Fprintf(&b, " %14.6f", g)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RunGrid runs every cell sequentially.
func RunGrid(name string, cells []GridCell) GridResult {
	r := GridResult{Name: name}
	for _, c := range cells {
		r.Cells = append(r.Cells, RunGridCell(c))
	}
	return r
}

// GridJobs wraps the cells as fleet jobs (IDs prefixed for checkpoint
// namespacing); RenderGrid reassembles the stored results into the same
// report RunGrid would print.
func GridJobs(prefix string, cells []GridCell) []fleet.Job {
	jobs := make([]fleet.Job, len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = fleet.Job{
			ID:   prefix + c.ID,
			Desc: c.Label,
			Run:  func() (any, error) { return RunGridCell(c), nil },
		}
	}
	return jobs
}

// RenderGrid assembles a grid report from checkpointed cell results.
func RenderGrid(name, prefix string, cells []GridCell, get Getter) (string, error) {
	r := GridResult{Name: name}
	for _, c := range cells {
		cell, err := decodeJob[GridCellResult](get, prefix+c.ID)
		if err != nil {
			return "", err
		}
		r.Cells = append(r.Cells, cell)
	}
	return r.Report(), nil
}

// TournamentConfig generates the CCA tournament matrix: every unordered
// CCA pair (including self-pairs, the intra-CCA RTT-fairness baseline)
// shares a dumbbell at every RTT ratio × buffer depth × discipline.
type TournamentConfig struct {
	Name        string
	CCAs        []string
	FlowsPerCCA int
	// BottleneckBps / BaseRTT anchor the dumbbell; the second group's RTT
	// is BaseRTT × ratio.
	BottleneckBps float64
	BaseRTT       SimTime
	RTTRatios     []float64
	BufferBytes   []int
	Qdiscs        []QdiscKind
	Duration      SimTime
	// MinRTO clamps the senders' retransmission timers (0 = the runner's
	// 1 s RFC 6298 default; 200 ms approximates Linux).
	MinRTO SimTime
	Seed   uint64
	Shards int
}

// Cells enumerates the matrix in deterministic order: discipline, then
// pair (i ≤ j in CCAs order), then RTT ratio, then buffer depth.
func (c TournamentConfig) Cells() []GridCell {
	var cells []GridCell
	for _, q := range c.Qdiscs {
		for i := 0; i < len(c.CCAs); i++ {
			for j := i; j < len(c.CCAs); j++ {
				for _, ratio := range c.RTTRatios {
					for _, buf := range c.BufferBytes {
						//lint:ignore simtime RTT ratios scale bounded base RTTs (« 2^53 ns); sub-ns rounding of a config input is immaterial
						rtt2 := SimTime(float64(c.BaseRTT) * ratio)
						id := fmt.Sprintf("%s/%s-%s/r%g/b%d", q, c.CCAs[i], c.CCAs[j], ratio, buf)
						cells = append(cells, GridCell{
							ID:    id,
							Label: fmt.Sprintf("%s vs %s, RTT ×%g, %d B buffer, %s", c.CCAs[i], c.CCAs[j], ratio, buf, q),
							Scenario: Scenario{
								Name:          c.Name + "/" + id,
								BottleneckBps: c.BottleneckBps,
								BufferBytes:   buf,
								Groups: []FlowGroup{
									{CC: c.CCAs[i], Count: c.FlowsPerCCA, RTT: c.BaseRTT},
									{CC: c.CCAs[j], Count: c.FlowsPerCCA, RTT: rtt2},
								},
								Duration: c.Duration,
								Qdisc:    q,
								MinRTO:   c.MinRTO,
								Seed:     c.Seed,
								Shards:   c.Shards,
							},
						})
					}
				}
			}
		}
	}
	return cells
}

// BufferSweepConfig generates the buffer-depth fairness sweep: one fixed
// flow mix (canonically BBRv1 vs Cubic) re-run at every buffer depth ×
// discipline, reporting JFI per cell.
type BufferSweepConfig struct {
	Name          string
	Groups        []FlowGroup
	BottleneckBps float64
	BufferBytes   []int
	Qdiscs        []QdiscKind
	Duration      SimTime
	// MinRTO clamps the senders' retransmission timers (0 = the runner's
	// 1 s RFC 6298 default; 200 ms approximates Linux). The BBR-fairness
	// grid needs the Linux-like clamp — with 1 s stalls the buffer-depth
	// signature washes out.
	MinRTO SimTime
	Seed   uint64
	Shards int
}

// Cells enumerates the sweep in deterministic order: discipline, then
// buffer depth.
func (c BufferSweepConfig) Cells() []GridCell {
	var cells []GridCell
	for _, q := range c.Qdiscs {
		for _, buf := range c.BufferBytes {
			id := fmt.Sprintf("%s/b%d", q, buf)
			cells = append(cells, GridCell{
				ID:    id,
				Label: fmt.Sprintf("%d B buffer, %s", buf, q),
				Scenario: Scenario{
					Name:          c.Name + "/" + id,
					BottleneckBps: c.BottleneckBps,
					BufferBytes:   buf,
					Groups:        c.Groups,
					Duration:      c.Duration,
					Qdisc:         q,
					MinRTO:        c.MinRTO,
					Seed:          c.Seed,
					Shards:        c.Shards,
				},
			})
		}
	}
	return cells
}
