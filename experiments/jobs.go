package experiments

import (
	"encoding/json"
	"fmt"

	"cebinae/internal/fleet"
)

// This file enumerates the evaluation suite as fleet jobs so the whole
// report can run on a parallel worker pool. Every independent simulation
// (each Table-2 row, each figure, each extension×discipline cell) becomes
// one fleet.Job; a BenchSection then reassembles the checkpointed JSON
// values into the same report text the sequential harness printed. Jobs
// construct their own sim.Engine inside the closure, so results are
// independent of worker count and scheduling order.

// Getter fetches the stored JSON value of one job by ID, failing if the
// job failed or was never run.
type Getter func(jobID string) (json.RawMessage, error)

// BenchSection is one report section: the fleet jobs that measure it and
// the renderer that assembles their results into the section's text.
type BenchSection struct {
	ID     string
	Desc   string
	Jobs   []fleet.Job
	Render func(get Getter) (string, error)
}

// decodeJob fetches and unmarshals one job's stored value.
func decodeJob[T any](get Getter, id string) (T, error) {
	var v T
	raw, err := get(id)
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, fmt.Errorf("experiments: decode %s: %w", id, err)
	}
	return v, nil
}

// jobPrefix keys checkpoint IDs by scale, so a store written at one
// -scale is never silently reused by a resume at another.
func jobPrefix(scale Scale) string { return fmt.Sprintf("s%g/", float64(scale)) }

// singleJobSection wraps a one-simulation experiment.
func singleJobSection[T any](prefix, id, desc string, run func() T, render func(T) string) BenchSection {
	jobID := prefix + id
	return BenchSection{
		ID:   id,
		Desc: desc,
		Jobs: []fleet.Job{{ID: jobID, Desc: desc, Run: func() (any, error) { return run(), nil }}},
		Render: func(get Getter) (string, error) {
			v, err := decodeJob[T](get, jobID)
			if err != nil {
				return "", err
			}
			return render(v), nil
		},
	}
}

// perKindSection fans one experiment out over qdisc kinds, one job per
// kind, and renders the collected slice.
func perKindSection[T any](prefix, id, desc string, kinds []QdiscKind, run func(QdiscKind) T, render func([]T) string) BenchSection {
	jobs := make([]fleet.Job, len(kinds))
	for i, kind := range kinds {
		kind := kind
		jobs[i] = fleet.Job{
			ID:   fmt.Sprintf("%s%s/%s", prefix, id, kind),
			Desc: fmt.Sprintf("%s under %s", desc, kind),
			Run:  func() (any, error) { return run(kind), nil },
		}
	}
	return BenchSection{
		ID:   id,
		Desc: desc,
		Jobs: jobs,
		Render: func(get Getter) (string, error) {
			out := make([]T, len(kinds))
			for i, kind := range kinds {
				v, err := decodeJob[T](get, fmt.Sprintf("%s%s/%s", prefix, id, kind))
				if err != nil {
					return "", err
				}
				out[i] = v
			}
			return render(out), nil
		},
	}
}

// table2Section fans Table 2 out one job per configuration row (each row
// still measures its three disciplines, keeping the row a self-contained
// deterministic unit).
func table2Section(prefix string, scale Scale) BenchSection {
	cfgs := Table2Rows()
	jobs := make([]fleet.Job, len(cfgs))
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		jobs[i] = fleet.Job{
			ID:   fmt.Sprintf("%stable2/%02d", prefix, i),
			Desc: cfg.Label,
			Run:  func() (any, error) { return RunTable2Row(cfg, scale), nil },
		}
	}
	return BenchSection{
		ID:   "table2",
		Desc: "25-configuration sweep × {FIFO, FQ, Cebinae}",
		Jobs: jobs,
		Render: func(get Getter) (string, error) {
			rows := make([]Table2Row, len(cfgs))
			for i := range cfgs {
				row, err := decodeJob[Table2Row](get, fmt.Sprintf("%stable2/%02d", prefix, i))
				if err != nil {
					return "", err
				}
				rows[i] = row
			}
			return RenderTable2(rows), nil
		},
	}
}

// Fig13Panels bundles both accuracy panels into one JSON-marshalable
// job value.
type Fig13Panels struct {
	A []Fig13Point `json:"a"`
	B []Fig13Point `json:"b"`
}

// BenchSections enumerates the full evaluation (paper + extensions) in
// report order at the given scale.
func BenchSections(scale Scale) []BenchSection {
	ext3 := []QdiscKind{FIFO, FQ, Cebinae}
	pre := jobPrefix(scale)
	return []BenchSection{
		singleJobSection(pre, "fig1", "RTT unfairness time series (2 NewReno)",
			func() Fig1Result { return Fig1(scale) }, Fig1Result.Render),
		table2Section(pre, scale),
		singleJobSection(pre, "fig7", "16 Vegas vs 1 NewReno per-flow goodput",
			func() Fig7Result { return Fig7(scale) }, Fig7Result.Render),
		singleJobSection(pre, "fig8a", "128 NewReno vs 2 BBR goodput CDF",
			func() Fig8Result { return Fig8a(scale) }, Fig8Result.Render),
		singleJobSection(pre, "fig8b", "128 NewReno vs 4 Vegas goodput CDF",
			func() Fig8Result { return Fig8b(scale) }, Fig8Result.Render),
		singleJobSection(pre, "fig9", "RTT-asymmetry sweep (Cubic, 400 Mbps)",
			func() []Fig9Point { return Fig9(scale) }, RenderFig9),
		singleJobSection(pre, "fig10", "JFI time series with flow arrivals",
			func() Fig10Result { return Fig10(scale) }, Fig10Result.Render),
		singleJobSection(pre, "fig11", "parking-lot multi-bottleneck vs ideal max-min",
			func() Fig11Result { return Fig11(scale) }, Fig11Result.Render),
		singleJobSection(pre, "fig12", "threshold sensitivity sweep",
			func() Fig12Result { return Fig12(scale) }, Fig12Result.Render),
		singleJobSection(pre, "table3", "Tofino resource usage model",
			Table3, RenderTable3),
		singleJobSection(pre, "fig13", "heavy-hitter detection FPR/FNR",
			func() Fig13Panels {
				cfg := DefaultFig13Config(scale)
				return Fig13Panels{A: Fig13a(cfg), B: Fig13b(cfg)}
			},
			func(p Fig13Panels) string { return RenderFig13(p.A, p.B) }),
		perKindSection(pre, "ext-churn", "[extension] short-flow FCT under churn", ext3,
			func(k QdiscKind) ExtChurnResult { return ExtChurn(k, scale) }, RenderExtChurn),
		perKindSection(pre, "ext-udp", "[extension] blind-UDP containment", ext3,
			func(k QdiscKind) ExtBlindUDPResult { return ExtBlindUDP(k, scale) }, RenderExtBlindUDP),
		singleJobSection(pre, "ext-perflow", "[extension] §7 per-flow ⊤ ablation",
			func() ExtPerFlowResult { return ExtPerFlow(scale) }, RenderExtPerFlow),
		singleJobSection(pre, "ext-scalability", "[extension] Eq.1 scalability: AFQ vs Cebinae RTT sweep",
			func() []ScalabilityPoint { return ExtScalability(scale) }, RenderExtScalability),
		perKindSection(pre, "ext-strawman", "[extension] §3.2 strawman vs Cebinae redistribution",
			[]QdiscKind{FIFO, Strawman, Cebinae},
			func(k QdiscKind) ExtStrawmanResult { return ExtStrawman(k, scale) }, RenderExtStrawman),
		singleJobSection(pre, "backbone", "[extension] backbone tier: 1e5-flow trace replay through Cebinae @10G",
			func() BackboneResult { return RunBackbone(BackboneTier(100_000, scale)) }, BackboneResult.Render),
	}
}

// SectionJobs flattens the sections' jobs in order.
func SectionJobs(sections []BenchSection) []fleet.Job {
	var jobs []fleet.Job
	for _, s := range sections {
		jobs = append(jobs, s.Jobs...)
	}
	return jobs
}

// SummaryGetter adapts a fleet run summary into a Getter for section
// rendering.
func SummaryGetter(sum *fleet.Summary) Getter {
	return func(id string) (json.RawMessage, error) {
		r, ok := sum.Get(id)
		if !ok {
			return nil, fmt.Errorf("experiments: job %s was not run", id)
		}
		if !r.OK {
			return nil, fmt.Errorf("experiments: job %s failed after %d attempt(s): %s", id, r.Attempts, r.Err)
		}
		return r.Value, nil
	}
}
