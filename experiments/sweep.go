package experiments

import (
	"encoding/json"
	"fmt"
	"sort"

	"cebinae/internal/core"
	"cebinae/internal/fleet"
	"cebinae/internal/sim"
)

// A parameter sweep is the Cartesian product qdisc × scale × threshold
// run over one fixed scenario family (by default Fig. 12's 16 NewReno vs
// 1 Cubic contention). Thresholds parameterise Cebinae's δp = δf = τ and
// only that discipline consumes them, so non-Cebinae disciplines run one
// point per scale (recorded with ThresholdPct 0) instead of burning a
// whole threshold axis on identical simulations.

// SweepConfig declares the sweep grid and the scenario family it runs.
type SweepConfig struct {
	Qdiscs        []QdiscKind
	Scales        []Scale
	ThresholdPcts []float64 // δp=δf=τ in percent; applied to Cebinae only

	BottleneckBps float64
	BufferBytes   int
	Groups        []FlowGroup
	Seed          uint64
}

// DefaultSweepConfig is the Fig.12 scenario family under the full
// discipline set and the paper's threshold ladder.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Qdiscs:        []QdiscKind{FIFO, FQ, Cebinae},
		Scales:        []Scale{Quick},
		ThresholdPcts: []float64{1, 2, 5, 10, 25, 50, 75, 100},
		BottleneckBps: 100e6,
		BufferBytes:   850 * 1500,
		Groups: []FlowGroup{
			{CC: "newreno", Count: 16, RTT: ms(50)},
			{CC: "cubic", Count: 1, RTT: ms(50)},
		},
		Seed: 7,
	}
}

// SweepPoint identifies one grid cell.
type SweepPoint struct {
	Qdisc        QdiscKind `json:"qdisc"`
	Scale        float64   `json:"scale"`
	ThresholdPct float64   `json:"threshold_pct"`
}

// ID returns the point's stable job ID (also its JSONL checkpoint key).
func (p SweepPoint) ID() string {
	return fmt.Sprintf("sweep/%s/s%g/t%g", p.Qdisc, p.Scale, p.ThresholdPct)
}

// SweepResult is one measured grid cell — the sweep's JSONL value schema.
type SweepResult struct {
	SweepPoint
	DurationS     float64 `json:"duration_s"`
	ThroughputBps float64 `json:"throughput_bps"`
	GoodputBps    float64 `json:"goodput_bps"`
	JFI           float64 `json:"jfi"`
}

// Points enumerates the grid in deterministic order.
func (c SweepConfig) Points() []SweepPoint {
	var pts []SweepPoint
	for _, q := range c.Qdiscs {
		for _, s := range c.Scales {
			if q == Cebinae && len(c.ThresholdPcts) > 0 {
				for _, t := range c.ThresholdPcts {
					pts = append(pts, SweepPoint{Qdisc: q, Scale: float64(s), ThresholdPct: t})
				}
			} else {
				pts = append(pts, SweepPoint{Qdisc: q, Scale: float64(s), ThresholdPct: 0})
			}
		}
	}
	return pts
}

// Jobs wraps every grid point as a fleet job.
func (c SweepConfig) Jobs() []fleet.Job {
	pts := c.Points()
	jobs := make([]fleet.Job, len(pts))
	for i, pt := range pts {
		pt := pt
		jobs[i] = fleet.Job{
			ID:   pt.ID(),
			Desc: fmt.Sprintf("%s at scale %g, thresholds %g%%", pt.Qdisc, pt.Scale, pt.ThresholdPct),
			Run:  func() (any, error) { return RunSweepPoint(c, pt), nil },
		}
	}
	return jobs
}

// RunSweepPoint measures one grid cell with its own engine.
func RunSweepPoint(c SweepConfig, pt SweepPoint) SweepResult {
	dur := sim.Time(pt.Scale * 100e9)
	if dur < sim.Duration(2e9) {
		dur = sim.Duration(2e9)
	}
	s := Scenario{
		Name:          pt.ID(),
		BottleneckBps: c.BottleneckBps,
		BufferBytes:   c.BufferBytes,
		Groups:        c.Groups,
		Duration:      dur,
		Qdisc:         pt.Qdisc,
		Seed:          c.Seed,
	}
	if pt.Qdisc == Cebinae && pt.ThresholdPct > 0 {
		p := core.DefaultParams(s.BottleneckBps, s.BufferBytes, maxRTT(s.Groups))
		p.DeltaPort = pt.ThresholdPct / 100
		p.DeltaFlow = pt.ThresholdPct / 100
		p.Tau = pt.ThresholdPct / 100
		s.Params = &p
	}
	r := Run(s)
	return SweepResult{
		SweepPoint:    pt,
		DurationS:     dur.Seconds(),
		ThroughputBps: r.ThroughputBps,
		GoodputBps:    r.GoodputBps,
		JFI:           r.JFI,
	}
}

// DecodeSweepResults converts a fleet run's successful results back into
// sweep rows, sorted by (qdisc, scale, threshold) for stable output.
func DecodeSweepResults(results []fleet.Result) ([]SweepResult, error) {
	var out []SweepResult
	for _, r := range results {
		if !r.OK {
			continue
		}
		var sr SweepResult
		if err := json.Unmarshal(r.Value, &sr); err != nil {
			return nil, fmt.Errorf("experiments: decode sweep result %s: %w", r.ID, err)
		}
		out = append(out, sr)
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.Qdisc != b.Qdisc {
			return a.Qdisc < b.Qdisc
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		return a.ThresholdPct < b.ThresholdPct
	})
	return out, nil
}

// RenderSweep prints the measured grid as an aligned text table.
func RenderSweep(rows []SweepResult) string {
	var b []byte
	b = fmt.Appendf(b, "%-9s | %6s | %9s | %6s | %14s | %12s | %6s\n",
		"qdisc", "scale", "thresh[%]", "dur[s]", "tput[Mbps]", "gput[Mbps]", "JFI")
	for _, r := range rows {
		b = fmt.Appendf(b, "%-9s | %6g | %9g | %6g | %14.2f | %12.2f | %6.3f\n",
			r.Qdisc, r.Scale, r.ThresholdPct, r.DurationS,
			r.ThroughputBps/1e6, r.GoodputBps/1e6, r.JFI)
	}
	return string(b)
}
