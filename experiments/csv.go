package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exporters so the measured data can be re-plotted outside Go. Each
// writer emits a header row followed by one record per measurement.

// WriteTable2CSV emits one row per (configuration, discipline) pair.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "qdisc", "throughput_mbps", "goodput_mbps", "jfi"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, kind := range []QdiscKind{FIFO, FQ, Cebinae} {
			c := r.Cells[kind]
			rec := []string{
				r.Config.Label, string(kind),
				f(c.ThroughputBps / 1e6), f(c.GoodputBps / 1e6), f(c.JFI),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesCSV emits a wide time series: one column per named series.
func WriteSeriesCSV(w io.Writer, interval SimTime, names []string, series [][]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("experiments: %d names for %d series", len(names), len(series))
	}
	cw := csv.NewWriter(w)
	header := append([]string{"t_seconds"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		rec := make([]string, 0, len(series)+1)
		rec = append(rec, f(float64(interval)*float64(i+1)/1e9))
		for _, s := range series {
			if i < len(s) {
				rec = append(rec, f(s[i]))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFlowsCSV emits one row per flow of a scenario result.
func WriteFlowsCSV(w io.Writer, r Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"flow", "cc", "rtt_ms", "goodput_mbps"}); err != nil {
		return err
	}
	for _, fl := range r.Flows {
		rec := []string{
			strconv.Itoa(fl.Index), fl.CC,
			f(float64(fl.RTT) / 1e6), f(fl.GoodputBps / 1e6),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig13CSV emits one row per accuracy point.
func WriteFig13CSV(w io.Writer, pts []Fig13Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"stages", "slots", "interval_ms", "fpr", "fnr"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.Itoa(p.Stages), strconv.Itoa(p.Slots),
			f(float64(p.Interval) / 1e6), f(p.FPR), f(p.FNR),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV emits one row per sweep grid cell, in the order given
// (use DecodeSweepResults for the canonical qdisc/scale/threshold sort).
func WriteSweepCSV(w io.Writer, rows []SweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"qdisc", "scale", "threshold_pct", "duration_s", "throughput_mbps", "goodput_mbps", "jfi"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			string(r.Qdisc), f(r.Scale), f(r.ThresholdPct), f(r.DurationS),
			f(r.ThroughputBps / 1e6), f(r.GoodputBps / 1e6), f(r.JFI),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
