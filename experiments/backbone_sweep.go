package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cebinae/internal/fleet"
)

// The backbone sweep runs the replay scale tiers as a Cartesian grid —
// standing-flow population × core discipline — through the fleet
// orchestrator, the same checkpointed-JSONL shape as the dumbbell sweep.
// It answers the capacity-planning question the single tiers cannot: how
// Cebinae's loss/marking behaviour and the cache's recall move as the flow
// population grows past what the instrumentation was sized for.

// BackboneSweepPoint identifies one grid cell.
type BackboneSweepPoint struct {
	Flows int       `json:"flows"`
	Qdisc QdiscKind `json:"qdisc"`
	Scale float64   `json:"scale"`
}

// ID returns the point's stable job ID (also its JSONL checkpoint key).
func (p BackboneSweepPoint) ID() string {
	return fmt.Sprintf("backbone/%s/f%d/s%g", p.Qdisc, p.Flows, p.Scale)
}

// BackboneSweepResult is one measured grid cell — the backbone sweep's
// JSONL value schema.
type BackboneSweepResult struct {
	BackboneSweepPoint
	DurationS      float64 `json:"duration_s"`
	PeakActive     int     `json:"peak_active"`
	FlowsSeen      int     `json:"flows_seen"`
	UtilizationPct float64 `json:"utilization_pct"`
	CoreDropPkts   uint64  `json:"core_drop_pkts"`
	RateCuts       uint64  `json:"rate_cuts"`
	CacheRecall    float64 `json:"cache_recall_topk"`
	SketchOverPct  float64 `json:"sketch_over_pct"`
	FairShareBps   float64 `json:"fair_share_bps"`
	Events         uint64  `json:"events"`
}

// BackboneSweepJobs wraps every (flows, qdisc) cell as a fleet job at the
// given scale.
func BackboneSweepJobs(flows []int, qdiscs []QdiscKind, scale Scale) []fleet.Job {
	var jobs []fleet.Job
	for _, n := range flows {
		for _, q := range qdiscs {
			pt := BackboneSweepPoint{Flows: n, Qdisc: q, Scale: float64(scale)}
			jobs = append(jobs, fleet.Job{
				ID:   pt.ID(),
				Desc: fmt.Sprintf("backbone %s with %d standing flows at scale %g", pt.Qdisc, pt.Flows, pt.Scale),
				Run:  func() (any, error) { return RunBackboneSweepPoint(pt), nil },
			})
		}
	}
	return jobs
}

// RunBackboneSweepPoint measures one grid cell with its own cluster.
func RunBackboneSweepPoint(pt BackboneSweepPoint) BackboneSweepResult {
	cfg := BackboneTier(pt.Flows, Scale(pt.Scale))
	cfg.Qdisc = pt.Qdisc
	r := RunBackbone(cfg)
	return BackboneSweepResult{
		BackboneSweepPoint: pt,
		DurationS:          cfg.Duration.Seconds(),
		PeakActive:         r.PeakActive,
		FlowsSeen:          r.FlowsSeen,
		UtilizationPct:     r.UtilizationPct,
		CoreDropPkts:       r.CoreDropPkts,
		RateCuts:           r.RateCuts,
		CacheRecall:        r.CacheRecallTopK,
		SketchOverPct:      r.SketchOverestimatePct,
		FairShareBps:       r.MaxMinFairShareBps,
		Events:             r.Events,
	}
}

// DecodeBackboneSweep converts a fleet run's successful results back into
// backbone rows, sorted by (qdisc, flows) for stable output.
func DecodeBackboneSweep(results []fleet.Result) ([]BackboneSweepResult, error) {
	var out []BackboneSweepResult
	for _, r := range results {
		if !r.OK {
			continue
		}
		var br BackboneSweepResult
		if err := json.Unmarshal(r.Value, &br); err != nil {
			return nil, fmt.Errorf("experiments: decode backbone sweep result %s: %w", r.ID, err)
		}
		out = append(out, br)
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.Qdisc != b.Qdisc {
			return a.Qdisc < b.Qdisc
		}
		return a.Flows < b.Flows
	})
	return out, nil
}

// RenderBackboneSweep prints the measured grid as an aligned text table.
func RenderBackboneSweep(rows []BackboneSweepResult) string {
	var b []byte
	b = fmt.Appendf(b, "%-9s | %8s | %8s | %7s | %8s | %9s | %7s | %9s | %12s\n",
		"qdisc", "flows", "peak", "util[%]", "drops", "ratecuts", "recall", "over[%]", "fair[Mbps]")
	for _, r := range rows {
		b = fmt.Appendf(b, "%-9s | %8d | %8d | %7.1f | %8d | %9d | %7.3f | %9.2f | %12.3f\n",
			r.Qdisc, r.Flows, r.PeakActive, r.UtilizationPct, r.CoreDropPkts,
			r.RateCuts, r.CacheRecall, r.SketchOverPct, r.FairShareBps/1e6)
	}
	return string(b)
}

// WriteBackboneSweepCSV emits one row per backbone grid cell, in the order
// given (use DecodeBackboneSweep for the canonical qdisc/flows sort).
func WriteBackboneSweepCSV(w io.Writer, rows []BackboneSweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"qdisc", "flows", "scale", "duration_s", "peak_active", "flows_seen",
		"utilization_pct", "core_drop_pkts", "rate_cuts", "cache_recall_topk", "sketch_over_pct",
		"fair_share_bps", "events"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			string(r.Qdisc), strconv.Itoa(r.Flows), f(r.Scale), f(r.DurationS),
			strconv.Itoa(r.PeakActive), strconv.Itoa(r.FlowsSeen), f(r.UtilizationPct),
			strconv.FormatUint(r.CoreDropPkts, 10), strconv.FormatUint(r.RateCuts, 10),
			f(r.CacheRecall), f(r.SketchOverPct), f(r.FairShareBps), strconv.FormatUint(r.Events, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
