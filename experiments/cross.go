package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

// CrossConfig parameterises the cross-shard delivery scenario: a single
// a→b hop carrying hand-injected packets at exact instants. It is the
// smallest scenario that exercises a cut link end to end, so it doubles
// as the shard runner's minimal differential workload (the sharded
// delivery instants must match a single merged engine exactly) and as
// the "cross" scenario-file kind.
type CrossConfig struct {
	Name string
	// RateBps / Delay / BufferBytes describe the one link (both
	// directions are FIFO; the delay bounds the conservative lookahead
	// when the link is cut, so it must be positive).
	RateBps     float64
	Delay       SimTime
	BufferBytes int
	// Sends lists the exact injection instants at node a.
	Sends []SimTime
	// PacketBytes / PayloadBytes size each injected packet.
	PacketBytes  int
	PayloadBytes int
	// Until is the run horizon.
	Until  SimTime
	Shards int
}

// CanonicalCross is the cut-link scenario the shard tests pin: five
// packets straddling several conservative windows over a 1 Gbps, 1 ms
// hop.
func CanonicalCross(shards int) CrossConfig {
	return CrossConfig{
		Name:         "cross",
		RateBps:      1e9,
		Delay:        sim.Duration(1e6),
		BufferBytes:  1 << 20,
		Sends:        []SimTime{0, 5e5, 17e5, 32e5, 32e5 + 1},
		PacketBytes:  1500,
		PayloadBytes: 1448,
		Until:        sim.Duration(1e7),
		Shards:       shards,
	}
}

// CrossResult carries the delivery instants observed at b plus the event
// count — the whole observable surface of the scenario.
type CrossResult struct {
	Name       string
	Deliveries []SimTime
	Events     uint64
}

// Report renders the cross run in canonical byte-stable form.
func (r CrossResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cross %s: %d deliveries, events=%d\n", r.Name, len(r.Deliveries), r.Events)
	for i, t := range r.Deliveries {
		fmt.Fprintf(&b, "%4d %d\n", i, int64(t))
	}
	return b.String()
}

// crossSink records delivery times as observed by the destination
// engine's clock.
type crossSink struct {
	eng   *sim.Engine
	times []SimTime
}

func (s *crossSink) Deliver(p *packet.Packet) { s.times = append(s.times, s.eng.Now()) }

// RunCross executes the scenario; results are byte-identical at any
// shard count.
func RunCross(cfg CrossConfig) CrossResult {
	type topo struct {
		a    *netem.Node
		bID  packet.NodeID
		sink *crossSink
	}
	build := func(f netem.Fabric) topo {
		a := f.NodeOn(0, "a")
		b := f.NodeOn(f.Shards()-1, "b")
		da, db := f.Connect(a, b, netem.LinkConfig{RateBps: cfg.RateBps, Delay: cfg.Delay})
		da.SetQdisc(qdisc.NewFIFO(cfg.BufferBytes))
		db.SetQdisc(qdisc.NewFIFO(cfg.BufferBytes))
		a.AddRoute(b.ID, da)
		sink := &crossSink{eng: b.Engine()}
		b.Register(packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}, sink)
		return topo{a, b.ID, sink}
	}
	cl := newCluster(cfg.Shards, func(f netem.Fabric) { build(f) })
	t := build(cl)
	a, bID := t.a, t.bID
	for _, at := range cfg.Sends {
		at := at
		a.Engine().Schedule(at, func() {
			p := a.AllocPacket()
			p.Flow = packet.FlowKey{Src: a.ID, Dst: bID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
			p.Size = int32(cfg.PacketBytes)
			p.PayloadSize = int32(cfg.PayloadBytes)
			a.Inject(p)
		})
	}
	cl.Run(cfg.Until)
	return CrossResult{Name: cfg.Name, Deliveries: t.sink.times, Events: cl.Processed()}
}
