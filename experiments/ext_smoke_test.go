package experiments

import (
	"fmt"
	"testing"
)

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulations")
	}
	var churn []ExtChurnResult
	for _, k := range []QdiscKind{FIFO, Cebinae} {
		churn = append(churn, ExtChurn(k, Quick))
	}
	fmt.Print(RenderExtChurn(churn))
	var udp []ExtBlindUDPResult
	for _, k := range []QdiscKind{FIFO, Cebinae} {
		udp = append(udp, ExtBlindUDP(k, Quick))
	}
	fmt.Print(RenderExtBlindUDP(udp))
	fmt.Print(RenderExtPerFlow(ExtPerFlow(Quick)))
}
