package experiments

import (
	"fmt"
	"strings"

	"cebinae/internal/core"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/shard"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// The graph scenario family builds arbitrary switch/host topologies from
// data: named switches, explicit links with a qdisc per port, host groups
// attached by access links, and flow groups between them. It is the
// lowering target of the "graph" scenario-file kind, which is how
// workloads like the community NS-3 reproduction's multi-hop Cebinae
// topology (10 Gbps core, 40 senders in three groups) run without a
// recompile. Construction order follows the config's declaration order
// exactly, so node IDs — and everything derived from them — are identical
// at any shard count.

// PortQdisc configures one port's (device's) queueing discipline. The
// zero value selects a large drop-tail FIFO — the "every other port"
// default the hand-built scenarios use.
type PortQdisc struct {
	Kind        QdiscKind
	BufferBytes int
	// CebinaeRTT seeds DefaultParams for Cebinae ports (the max base RTT
	// the mechanism should assume at this port).
	CebinaeRTT SimTime
}

// GraphSwitch declares one named switch.
type GraphSwitch struct {
	Name string
}

// GraphLink declares a full-duplex switch-to-switch link; QdiscAB guards
// the A→B port and QdiscBA the B→A port.
type GraphLink struct {
	A, B    string
	RateBps float64
	Delay   SimTime
	QdiscAB PortQdisc
	QdiscBA PortQdisc
}

// GraphHostGroup declares Count hosts attached to one switch by identical
// access links. DownQdisc guards the switch→host port — where a downlink
// bottleneck lives; the host→switch port always gets the default FIFO.
type GraphHostGroup struct {
	Name      string
	Count     int
	Attach    string
	RateBps   float64
	Delay     SimTime
	DownQdisc PortQdisc
}

// GraphFlowGroup creates one TCP flow per host of the From group, each
// terminating at a host of the To group (host i sends to To-host
// i mod count(To), so many-to-one fan-in is the natural encoding).
type GraphFlowGroup struct {
	From, To string
	CC       string
	StartAt  SimTime
}

// GraphConfig is a complete data-driven scenario.
type GraphConfig struct {
	Name           string
	Switches       []GraphSwitch
	Links          []GraphLink
	Hosts          []GraphHostGroup
	Flows          []GraphFlowGroup
	Duration       SimTime
	WarmupFraction float64
	MinRTO         SimTime
	Seed           uint64
	Shards         int
}

// GraphFlowResult is one flow's measured outcome.
type GraphFlowResult struct {
	Index int
	// Group labels the flow "from→to"; Host is the sender's index within
	// the From group.
	Group      string
	Host       int
	CC         string
	GoodputBps float64
}

// GraphGroupResult aggregates one flow group.
type GraphGroupResult struct {
	Group      string
	Flows      int
	GoodputBps float64 // aggregate
	JFI        float64 // across the group's flows
}

// GraphResult aggregates a graph run.
type GraphResult struct {
	Name   string
	Flows  []GraphFlowResult
	Groups []GraphGroupResult
	JFI    float64 // across every flow
	Events uint64
}

// Report renders the graph run in canonical byte-stable form.
func (r GraphResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s: %d flows, events=%d, JFI=%.9f\n", r.Name, len(r.Flows), r.Events, r.JFI)
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "group %-16s %3d flows %14.6f bps JFI=%.9f\n", g.Group, g.Flows, g.GoodputBps, g.JFI)
	}
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "%4d %-16s #%-3d %-8s %14.6f\n", f.Index, f.Group, f.Host, f.CC, f.GoodputBps)
	}
	return b.String()
}

// buildPortQdisc constructs one port's discipline on the engine that owns
// the device.
func buildPortQdisc(cfg PortQdisc, rate float64, dev *netem.Device) netem.Qdisc {
	buf := cfg.BufferBytes
	if buf == 0 {
		buf = 64 << 20
	}
	switch cfg.Kind {
	case FQ:
		return qdisc.NewFQCoDel(dev.Node().Engine(), buf, 0, qdisc.DefaultCoDelParams())
	case Cebinae:
		rtt := cfg.CebinaeRTT
		if rtt == 0 {
			rtt = ms(40)
		}
		cq := core.New(dev.Node().Engine(), rate, buf, core.DefaultParams(rate, buf, rtt))
		cq.OnDrain = dev.Kick
		return cq
	default:
		return qdisc.NewFIFO(buf)
	}
}

// graphTopo is one constructed instance of a GraphConfig.
type graphTopo struct {
	switches []*netem.Node
	swIndex  map[string]int
	// hosts[g][i] is host i of group g; hostDev/swDev its access-link
	// device pair (host→switch, switch→host).
	hosts   [][]*netem.Node
	hostDev [][]*netem.Device
	swDev   [][]*netem.Device
	groupIx map[string]int
	// adj[s] lists (neighbor switch, egress device) in link declaration
	// order — the deterministic order BFS expands.
	adj [][]graphEdge
}

type graphEdge struct {
	to int
	// dev is the local egress toward `to`; rev is the opposite direction
	// (the device `to` uses to forward back), which route installation
	// needs when the BFS tree crosses this edge.
	dev, rev *netem.Device
}

// buildGraph constructs the topology on a fabric. Placement: switches are
// spread over the shards in declaration order (switch i on shard
// i·n/len(switches)); hosts colocate with their switch. The min-cut
// planner then refines this via the recording pass exactly as every other
// scenario builder.
func buildGraph(f netem.Fabric, cfg GraphConfig) *graphTopo {
	t := &graphTopo{
		swIndex: make(map[string]int, len(cfg.Switches)),
		groupIx: make(map[string]int, len(cfg.Hosts)),
	}
	n := f.Shards()
	shardOf := func(i int) int { return i * n / len(cfg.Switches) }
	for i, sw := range cfg.Switches {
		t.switches = append(t.switches, f.NodeOn(shardOf(i), sw.Name))
		t.swIndex[sw.Name] = i
	}
	t.adj = make([][]graphEdge, len(cfg.Switches))
	for _, l := range cfg.Links {
		ai, bi := t.swIndex[l.A], t.swIndex[l.B]
		da, db := f.Connect(t.switches[ai], t.switches[bi], netem.LinkConfig{RateBps: l.RateBps, Delay: l.Delay})
		da.SetQdisc(buildPortQdisc(l.QdiscAB, l.RateBps, da))
		db.SetQdisc(buildPortQdisc(l.QdiscBA, l.RateBps, db))
		t.adj[ai] = append(t.adj[ai], graphEdge{bi, da, db})
		t.adj[bi] = append(t.adj[bi], graphEdge{ai, db, da})
	}
	for gi, hg := range cfg.Hosts {
		t.groupIx[hg.Name] = gi
		si := t.swIndex[hg.Attach]
		var nodes []*netem.Node
		var hdevs, sdevs []*netem.Device
		for i := 0; i < hg.Count; i++ {
			h := f.NodeOn(shardOf(si), fmt.Sprintf("%s%d", hg.Name, i))
			hd, sd := f.Connect(h, t.switches[si], netem.LinkConfig{RateBps: hg.RateBps, Delay: hg.Delay})
			hd.SetQdisc(qdisc.NewFIFO(64 << 20))
			sd.SetQdisc(buildPortQdisc(hg.DownQdisc, hg.RateBps, sd))
			nodes = append(nodes, h)
			hdevs = append(hdevs, hd)
			sdevs = append(sdevs, sd)
		}
		t.hosts = append(t.hosts, nodes)
		t.hostDev = append(t.hostDev, hdevs)
		t.swDev = append(t.swDev, sdevs)
	}
	return t
}

// installRoutes wires every switch toward host h (group g, index i) along
// the BFS tree rooted at the host's attach switch, plus the last-hop
// switch→host route, plus a route from every other host (whose only
// egress is its access link). BFS expands neighbours in link declaration
// order, so next hops — and therefore packet paths — are deterministic
// and independent of shard count.
func (t *graphTopo) installRoutes(cfg GraphConfig) {
	for gi := range t.hosts {
		si := t.swIndex[cfg.Hosts[gi].Attach]
		for hi, h := range t.hosts[gi] {
			// BFS from the attach switch: parent[v] is the device v uses
			// to forward toward the attach switch (and so toward h).
			parent := make([]*netem.Device, len(t.switches))
			visited := make([]bool, len(t.switches))
			visited[si] = true
			queue := []int{si}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, e := range t.adj[v] {
					if !visited[e.to] {
						visited[e.to] = true
						parent[e.to] = e.rev
						queue = append(queue, e.to)
					}
				}
			}
			for v := range t.switches {
				if v == si {
					t.switches[v].AddRoute(h.ID, t.swDev[gi][hi])
				} else if parent[v] != nil {
					t.switches[v].AddRoute(h.ID, parent[v])
				}
			}
			for g2 := range t.hosts {
				for h2, other := range t.hosts[g2] {
					if other != h {
						other.AddRoute(h.ID, t.hostDev[g2][h2])
					}
				}
			}
		}
	}
}

// RunGraph builds and runs one graph scenario; results are byte-identical
// at any shard count.
//
// Unlike the fixed-shape scenarios, the graph family partitions by its
// declared placement (switch i on shard i·n/len, hosts colocated with
// their switch) rather than the min-cut auto-planner, and the shard count
// is clamped to the switch count. The auto-planner would often prefer
// cutting the (wider-delay) access links for a larger lookahead window,
// but a data-driven topology can attach many identical-delay access
// links to one switch, and dense synchronized workloads then produce
// cross-cut arrivals that tie with local traffic on both deadline and
// emission stamp — ordering freedom the conservative runner cannot
// resolve identically to a single engine. Cutting only the declared
// switch-to-switch links keeps every cut's delay distinct from the
// access paths that share its destination engine, which removes the tie
// class and preserves byte-identity at every shard count.
func RunGraph(cfg GraphConfig) GraphResult {
	if cfg.WarmupFraction == 0 {
		cfg.WarmupFraction = 0.2
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = Seconds(1)
	}
	shards := effectiveShards(cfg.Shards)
	if shards > len(cfg.Switches) {
		shards = len(cfg.Switches)
	}
	build := func(f netem.Fabric) *graphTopo { return buildGraph(f, cfg) }
	cl := shard.NewCluster(shards)
	t := build(cl)
	t.installRoutes(cfg)

	type flowEnd struct {
		s, r    *netem.Node
		group   string
		host    int
		cc      string
		startAt SimTime
	}
	var flows []flowEnd
	for _, fg := range cfg.Flows {
		from, to := t.groupIx[fg.From], t.groupIx[fg.To]
		label := fg.From + "->" + fg.To
		for i, s := range t.hosts[from] {
			r := t.hosts[to][i%len(t.hosts[to])]
			flows = append(flows, flowEnd{s, r, label, i, fg.CC, fg.StartAt})
		}
	}

	meters := make([]*metrics.FlowMeter, len(flows))
	for i, fl := range flows {
		cc, ok := tcp.NewCC(fl.cc)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown CC %q", fl.cc))
		}
		key := packet.FlowKey{
			Src: fl.s.ID, Dst: fl.r.ID,
			SrcPort: uint16(1000 + i), DstPort: uint16(5000 + i), Proto: packet.ProtoTCP,
		}
		tcp.NewConn(fl.s.Engine(), fl.s, tcp.Config{Key: key, CC: cc, StartAt: fl.startAt, Seed: cfg.Seed + uint64(i), MinRTO: cfg.MinRTO})
		recv := tcp.NewReceiver(fl.r.Engine(), fl.r, tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recv.GoodputAt = m.Record
		meters[i] = m
	}

	cl.Run(cfg.Duration)

	res := GraphResult{Name: cfg.Name, Events: cl.Processed()}
	//lint:ignore simtime warmup is a fraction of a bounded scenario duration (« 2^53 ns); sub-nanosecond rounding of a measurement window is immaterial
	warmup := sim.Time(float64(cfg.Duration) * cfg.WarmupFraction)
	rates := make([]float64, len(flows))
	for i, fl := range flows {
		from := warmup
		if fl.startAt > from {
			from = fl.startAt + (cfg.Duration-fl.startAt)/5
		}
		rates[i] = meters[i].RateOver(from, cfg.Duration)
		res.Flows = append(res.Flows, GraphFlowResult{
			Index: i, Group: fl.group, Host: fl.host, CC: fl.cc, GoodputBps: rates[i] * 8,
		})
	}
	res.JFI = metrics.JFI(rates)

	// Per-group aggregates in flow-group declaration order.
	idx := 0
	for _, fg := range cfg.Flows {
		n := len(t.hosts[t.groupIx[fg.From]])
		g := GraphGroupResult{Group: fg.From + "->" + fg.To, Flows: n}
		groupRates := rates[idx : idx+n]
		for _, r := range groupRates {
			g.GoodputBps += r * 8
		}
		g.JFI = metrics.JFI(groupRates)
		res.Groups = append(res.Groups, g)
		idx += n
	}
	return res
}
