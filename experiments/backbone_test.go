package experiments

import (
	"strings"
	"testing"
)

// backboneTestTier is a scaled-down tier for the differential and smoke
// tests: enough standing flows to exercise the arena across chunks and the
// stress instrumentation, small enough to run three shard variants in a
// normal test budget.
func backboneTestTier() BackboneConfig {
	cfg := BackboneTier(2000, Quick)
	cfg.Trace.Seed = 5
	return cfg
}

// TestBackboneShardDifferential is the backbone family's correctness gate:
// the same tier run at 1, 2, 3, and 4 shards must produce byte-identical
// rendered reports and identical event counts. The min-cut planner cuts
// the core link at two shards and the 200 µs access links beyond that
// (three shards co-locate src with dst and cut all three links; four give
// every node its own shard), so the replay data path and the closed-loop
// feedback path cross cut access links — the regime where same-nanosecond
// ties between injected arrivals and the core queue's own events are
// systematic and only the emission-stamped (time, emission, seq) order
// keeps the interleaving identical to a single merged engine.
func TestBackboneShardDifferential(t *testing.T) {
	cfg := backboneTestTier()
	cfg.Shards = 1
	want := RunBackbone(cfg)
	ref := want.Render()
	for _, n := range []int{2, 3, 4} {
		cfg.Shards = n
		got := RunBackbone(cfg)
		if got.Events != want.Events {
			t.Errorf("shards=%d: event count %d, want %d (single-engine)", n, got.Events, want.Events)
		}
		if r := got.Render(); r != ref {
			t.Errorf("shards=%d: report not byte-identical to single-engine run:\n--- shards=1 ---\n%s--- shards=%d ---\n%s", n, ref, n, r)
		}
	}
}

// TestBackboneSmoke checks the tier's substance on one run: the standing
// population is actually concurrent, the core actually congests, the closed
// loop actually reacts, and the cardinality instrumentation scores against
// real truth.
func TestBackboneSmoke(t *testing.T) {
	cfg := backboneTestTier()
	res := RunBackbone(cfg)

	if res.PeakActive < cfg.Flows {
		t.Errorf("peak concurrency %d below the standing population %d", res.PeakActive, cfg.Flows)
	}
	if res.FlowsSeen < cfg.Flows {
		t.Errorf("core saw %d flows, want at least the standing %d", res.FlowsSeen, cfg.Flows)
	}
	if res.UtilizationPct <= 0 || res.UtilizationPct > 100.5 {
		t.Errorf("implausible core utilization %.2f%%", res.UtilizationPct)
	}
	if res.SketchUnderestimates != 0 {
		t.Errorf("count-min undercounted %d of the top-%d flows", res.SketchUnderestimates, cfg.TopK)
	}
	if res.CacheRecallTopK < 0.5 {
		t.Errorf("polled cache recalled only %.3f of the true top-%d", res.CacheRecallTopK, cfg.TopK)
	}
	if res.MaxMinFlows != res.FlowsSeen {
		t.Errorf("max-min allocated %d flows, observer saw %d", res.MaxMinFlows, res.FlowsSeen)
	}
	if res.MaxMinSumBps > cfg.CoreBps*1.0001 {
		t.Errorf("max-min allocation %.0f bps exceeds core capacity %.0f", res.MaxMinSumBps, cfg.CoreBps)
	}
	if res.CebStats.Rotations == 0 {
		t.Error("Cebinae core never rotated")
	}
	out := res.Render()
	for _, want := range []string{"Backbone tier", "hhcache", "cmsketch", "maxmin", "events:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestBackbone100kTier runs the named 1e5 tier end to end — the scale claim
// behind the benchmark row, verified in-tree (skipped under -short).
func TestBackbone100kTier(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-flow tier skipped in short mode")
	}
	res := RunBackbone(BackboneTier(100_000, Quick))
	if res.PeakActive < 100_000 {
		t.Fatalf("peak concurrency %d, want >= 100000", res.PeakActive)
	}
	if res.Finished == 0 || res.SinkPackets == 0 {
		t.Fatalf("tier did not run to completion: %d finished, %d delivered", res.Finished, res.SinkPackets)
	}
	if res.RateCuts == 0 {
		t.Fatal("closed loop idle at 1e5 flows: no rate cuts")
	}
}
