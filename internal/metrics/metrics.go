// Package metrics provides the measurement machinery of the evaluation:
// Jain's Fairness Index, per-flow goodput/throughput meters, time series
// sampling, and CDFs, matching the metrics reported in the paper's §5.
package metrics

import (
	"math"
	"sort"
	"sync"

	"cebinae/internal/sim"
)

// JFI computes Jain's Fairness Index over the given values:
// (Σx)² / (n·Σx²). It is 1 for equal allocations and 1/n when a single
// flow takes everything. Values must be non-negative; an empty or all-zero
// input yields 0.
func JFI(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(values)) * sumSq)
}

// NormalizedJFI computes the max-min-relative JFI of §5.3: x_i = r_i / r̂_i,
// where r̂ is the ideal max-min allocation, then JFI over the x_i. The two
// slices must have equal length; ideal entries must be positive.
func NormalizedJFI(measured, ideal []float64) float64 {
	if len(measured) != len(ideal) || len(measured) == 0 {
		return 0
	}
	x := make([]float64, len(measured))
	for i := range measured {
		if ideal[i] <= 0 {
			return 0
		}
		x[i] = measured[i] / ideal[i]
	}
	return JFI(x)
}

// FlowMeter accumulates a single flow's byte deliveries and converts them
// to rates over arbitrary windows.
type FlowMeter struct {
	total   int64
	samples []sample // cumulative bytes at time t
}

type sample struct {
	t     sim.Time
	bytes int64 // cumulative
}

// Record adds newBytes delivered at time t. Calls must be time-ordered.
func (m *FlowMeter) Record(t sim.Time, newBytes int64) {
	m.total += newBytes
	m.samples = append(m.samples, sample{t, m.total})
}

// Total returns all bytes recorded.
func (m *FlowMeter) Total() int64 { return m.total }

// RateOver returns the average rate in bytes/second over [from, to].
func (m *FlowMeter) RateOver(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return float64(m.bytesAt(to)-m.bytesAt(from)) / (to - from).Seconds()
}

// bytesAt returns the cumulative bytes delivered up to and including t.
func (m *FlowMeter) bytesAt(t sim.Time) int64 {
	idx := sort.Search(len(m.samples), func(i int) bool { return m.samples[i].t > t })
	if idx == 0 {
		return 0
	}
	return m.samples[idx-1].bytes
}

// Series converts the meter into a per-interval rate series in
// bytes/second, covering [0, horizon) in steps of interval.
func (m *FlowMeter) Series(interval, horizon sim.Time) []float64 {
	if interval <= 0 || horizon <= 0 {
		return nil
	}
	n := int((horizon + interval - 1) / interval)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		from := sim.Time(i) * interval
		to := from + interval
		if to > horizon {
			to = horizon
		}
		out[i] = m.RateOver(from, to)
	}
	return out
}

// CDF returns the empirical distribution of values as sorted (value,
// cumulative-probability) points.
type CDFPoint struct {
	Value float64
	P     float64
}

// scratch pools the sort buffers CDF and Percentile use, so helpers called
// per-job in a sweep stop allocating (and re-sorting into) a fresh copy of
// their input every time. Buffers only live for the duration of one call.
var scratch = sync.Pool{New: func() any { return new([]float64) }}

// sortedScratch returns a pooled buffer holding a sorted copy of values.
// Callers must hand it back via scratch.Put when done.
func sortedScratch(values []float64) *[]float64 {
	bp := scratch.Get().(*[]float64)
	*bp = append((*bp)[:0], values...)
	sort.Float64s(*bp)
	return bp
}

// CDF computes the empirical CDF of values.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	bp := sortedScratch(values)
	out := CDFSorted(*bp)
	scratch.Put(bp)
	return out
}

// CDFSorted computes the empirical CDF of already-ascending values without
// copying or re-sorting them — use it when the caller just built a sorted
// slice (e.g. Result.SortedGoodputs).
func CDFSorted(sorted []float64) []CDFPoint {
	if len(sorted) == 0 {
		return nil
	}
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of values using
// nearest-rank on a sorted copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	bp := sortedScratch(values)
	s := *bp
	defer scratch.Put(bp)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
