package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"cebinae/internal/sim"
)

func TestJFIExtremes(t *testing.T) {
	if JFI([]float64{5, 5, 5, 5}) != 1 {
		t.Fatal("equal allocation must give JFI 1")
	}
	got := JFI([]float64{10, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single-flow capture of n=4 must give 1/n: %v", got)
	}
	if JFI(nil) != 0 || JFI([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

// TestJFIRange: JFI ∈ [1/n, 1] for any non-negative non-zero input, and is
// scale-invariant.
func TestJFIRange(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			vals[i] = float64(v)
			sum += vals[i]
		}
		if sum == 0 {
			return JFI(vals) == 0
		}
		j := JFI(vals)
		if j < 1/float64(len(vals))-1e-12 || j > 1+1e-12 {
			return false
		}
		scaled := make([]float64, len(vals))
		for i := range vals {
			scaled[i] = vals[i] * 1e6
		}
		return math.Abs(JFI(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedJFI(t *testing.T) {
	// Perfect tracking of an uneven ideal ⇒ 1.0.
	if got := NormalizedJFI([]float64{6.25, 25, 12.5}, []float64{6.25, 25, 12.5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect normalised JFI should be 1, got %v", got)
	}
	if NormalizedJFI([]float64{1}, []float64{1, 2}) != 0 {
		t.Fatal("length mismatch must give 0")
	}
	if NormalizedJFI([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero ideal must give 0")
	}
}

func TestFlowMeterRates(t *testing.T) {
	var m FlowMeter
	// 1000 bytes at t=1s, 2000 at t=2s, 3000 at t=3s.
	m.Record(sim.Duration(1e9), 1000)
	m.Record(sim.Duration(2e9), 2000)
	m.Record(sim.Duration(3e9), 3000)
	if m.Total() != 6000 {
		t.Fatalf("total = %d", m.Total())
	}
	// Over [0,3s]: 6000 bytes / 3 s.
	if got := m.RateOver(0, sim.Duration(3e9)); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("rate over full window = %v", got)
	}
	// Over (1s,3s]: 5000 bytes / 2s.
	if got := m.RateOver(sim.Duration(1e9), sim.Duration(3e9)); math.Abs(got-2500) > 1e-9 {
		t.Fatalf("rate over tail = %v", got)
	}
	if m.RateOver(sim.Duration(3e9), sim.Duration(3e9)) != 0 {
		t.Fatal("empty window must give 0")
	}
}

func TestFlowMeterSeries(t *testing.T) {
	var m FlowMeter
	m.Record(sim.Duration(0.5e9), 100)
	m.Record(sim.Duration(1.5e9), 300)
	s := m.Series(sim.Duration(1e9), sim.Duration(2e9))
	if len(s) != 2 {
		t.Fatalf("series length %d", len(s))
	}
	if math.Abs(s[0]-100) > 1e-9 || math.Abs(s[1]-300) > 1e-9 {
		t.Fatalf("series wrong: %v", s)
	}
	if m.Series(0, sim.Duration(1e9)) != nil {
		t.Fatal("invalid interval must give nil")
	}
}

// TestFlowMeterMonotonicity: cumulative bytes at increasing times never
// decrease, and rates over any window are non-negative.
func TestFlowMeterMonotonicity(t *testing.T) {
	f := func(deltas []uint8) bool {
		var m FlowMeter
		ts := sim.Time(0)
		for _, d := range deltas {
			ts += sim.Time(d)*1e6 + 1
			m.Record(ts, int64(d))
		}
		for w := sim.Time(0); w < ts; w += ts/7 + 1 {
			if m.RateOver(w, ts) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 || pts[0].Value != 1 || pts[2].Value != 3 {
		t.Fatalf("CDF not sorted: %+v", pts)
	}
	if pts[2].P != 1 {
		t.Fatalf("last point must have P=1: %+v", pts)
	}
	if math.Abs(pts[0].P-1.0/3) > 1e-12 {
		t.Fatalf("first point P wrong: %+v", pts)
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(vals, 50) != 5 {
		t.Fatalf("p50 = %v", Percentile(vals, 50))
	}
	if Percentile(vals, 0) != 1 || Percentile(vals, 100) != 10 {
		t.Fatal("extreme percentiles wrong")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}
