// Package cmsketch implements a count-min sketch over flow keys — the
// approximate per-flow byte counter AFQ uses in hardware (Sharma et al.,
// NSDI '18). Estimates never under-count; collisions only inflate, which
// for AFQ means colliding flows may be scheduled later than their fair
// slot (the inaccuracy the Cebinae paper contrasts with its collision-free
// two-group accounting).
package cmsketch

import (
	"cebinae/internal/packet"
)

// Sketch is a rows×cols count-min sketch of int64 counters.
type Sketch struct {
	rows  [][]int64
	seeds []uint64
	mask  uint64
}

// New builds a sketch with the given geometry; cols must be a power of two.
func New(rows, cols int) *Sketch {
	if rows <= 0 || cols <= 0 || cols&(cols-1) != 0 {
		panic("cmsketch: rows must be positive and cols a power of two")
	}
	s := &Sketch{mask: uint64(cols - 1)}
	for i := 0; i < rows; i++ {
		s.rows = append(s.rows, make([]int64, cols))
		s.seeds = append(s.seeds, 0xA24BAED4963EE407*uint64(i+1))
	}
	return s
}

// Add increments the flow's counters and returns the updated estimate
// (minimum across rows, post-increment).
func (s *Sketch) Add(flow packet.FlowKey, delta int64) int64 {
	est := int64(1<<63 - 1)
	for i := range s.rows {
		idx := flow.Hash(s.seeds[i]) & s.mask
		s.rows[i][idx] += delta
		if v := s.rows[i][idx]; v < est {
			est = v
		}
	}
	return est
}

// UpdateMax raises the flow's counters to at least v and returns the
// resulting estimate — the update rule AFQ's bid tracking uses.
func (s *Sketch) UpdateMax(flow packet.FlowKey, v int64) int64 {
	est := int64(1<<63 - 1)
	for i := range s.rows {
		idx := flow.Hash(s.seeds[i]) & s.mask
		if s.rows[i][idx] < v {
			s.rows[i][idx] = v
		}
		if cur := s.rows[i][idx]; cur < est {
			est = cur
		}
	}
	return est
}

// Estimate returns the current count estimate for the flow.
func (s *Sketch) Estimate(flow packet.FlowKey) int64 {
	est := int64(1<<63 - 1)
	for i := range s.rows {
		idx := flow.Hash(s.seeds[i]) & s.mask
		if v := s.rows[i][idx]; v < est {
			est = v
		}
	}
	return est
}

// SubtractFloor lowers every counter by delta, flooring at zero — AFQ's
// periodic aging so bids track the advancing round clock.
func (s *Sketch) SubtractFloor(delta int64) {
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] -= delta
			if s.rows[i][j] < 0 {
				s.rows[i][j] = 0
			}
		}
	}
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] = 0
		}
	}
}
