package cmsketch

import (
	"math"
	"sort"
	"testing"

	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// The scale tests load the sketch at backbone cardinality — 10⁵ distinct
// flows through 4×65536 counters — and check the two properties the
// backbone scoring relies on: the one-sided error guarantee holds for every
// single flow, and the overestimate bias on the heavy hitters stays small
// enough to rank them.

const scaleFlows = 100_000

func scaleKey(i int) packet.FlowKey {
	return packet.FlowKey{
		Src:     packet.NodeID(1 + i>>16),
		Dst:     2,
		SrcPort: uint16(i),
		DstPort: uint16(i*40503) | 1,
		Proto:   packet.ProtoTCP,
	}
}

// scaleTruth draws bounded-Pareto per-flow volumes with a seeded generator
// (the trace generator's skew shape, reproduced locally).
func scaleTruth(seed uint64) []int64 {
	rng := sim.NewRand(seed)
	truth := make([]int64, scaleFlows)
	ratio := math.Pow(700.0/(1<<24), 1.2)
	for i := range truth {
		u := rng.Float64()
		truth[i] = int64(700 * math.Pow(1-u*(1-ratio), -1/1.2))
	}
	return truth
}

// TestScaleNeverUndercounts: after 10⁵ skewed flows, Estimate must be >=
// the exact count for every one of them — the count-min invariant checked
// exhaustively at the cardinality the backbone tier runs at.
func TestScaleNeverUndercounts(t *testing.T) {
	truth := scaleTruth(3)
	s := New(4, 1<<16)
	for i, b := range truth {
		s.Add(scaleKey(i), b)
	}
	for i, b := range truth {
		if est := s.Estimate(scaleKey(i)); est < b {
			t.Fatalf("flow %d undercounted: estimate %d < true %d", i, est, b)
		}
	}
}

// TestScaleHeavyHitterBias: the mean relative overestimate across the true
// top-64 must stay within a few percent — collisions with 10⁵ mice may
// inflate a mouse badly, but the elephants' own mass dominates their
// counters, which is what makes sketch-ranked heavy hitters usable.
func TestScaleHeavyHitterBias(t *testing.T) {
	truth := scaleTruth(9)
	s := New(4, 1<<16)
	for i, b := range truth {
		s.Add(scaleKey(i), b)
	}
	order := make([]int, len(truth))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if truth[order[a]] != truth[order[b]] {
			return truth[order[a]] > truth[order[b]]
		}
		return order[a] < order[b]
	})
	const topK = 64
	var overSum float64
	for _, i := range order[:topK] {
		est := s.Estimate(scaleKey(i))
		if est < truth[i] {
			t.Fatalf("top-%d flow %d undercounted: %d < %d", topK, i, est, truth[i])
		}
		overSum += float64(est-truth[i]) / float64(truth[i])
	}
	if mean := overSum / topK; mean > 0.05 {
		t.Fatalf("mean relative overestimate on top-%d is %.4f, want <= 0.05", topK, mean)
	}
}

// TestScaleDeterminism: identical 10⁵-flow loads must produce identical
// estimates — the sketch has no hidden state or seed beyond its geometry.
func TestScaleDeterminism(t *testing.T) {
	load := func() *Sketch {
		truth := scaleTruth(5)
		s := New(4, 1<<15)
		for i, b := range truth {
			s.Add(scaleKey(i), b)
		}
		return s
	}
	a, b := load(), load()
	for i := 0; i < scaleFlows; i += 97 {
		if ea, eb := a.Estimate(scaleKey(i)), b.Estimate(scaleKey(i)); ea != eb {
			t.Fatalf("flow %d estimates diverge: %d vs %d", i, ea, eb)
		}
	}
}
