package cmsketch

import (
	"testing"
	"testing/quick"

	"cebinae/internal/packet"
)

func flow(i int) packet.FlowKey {
	return packet.FlowKey{Src: packet.NodeID(i), Dst: 7, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
}

func TestAddAndEstimate(t *testing.T) {
	s := New(4, 1024)
	s.Add(flow(1), 100)
	s.Add(flow(1), 50)
	if got := s.Estimate(flow(1)); got != 150 {
		t.Fatalf("estimate = %d, want 150", got)
	}
	if got := s.Estimate(flow(2)); got != 0 {
		t.Fatalf("fresh flow should estimate 0, got %d", got)
	}
}

// TestNeverUndercounts: count-min estimates are always ≥ the true count.
func TestNeverUndercounts(t *testing.T) {
	f := func(adds []uint8) bool {
		s := New(2, 16) // tiny: heavy collisions
		truth := map[int]int64{}
		for _, a := range adds {
			id := int(a % 64)
			s.Add(flow(id), int64(a)+1)
			truth[id] += int64(a) + 1
		}
		for id, want := range truth {
			if s.Estimate(flow(id)) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMax(t *testing.T) {
	s := New(4, 1024)
	s.UpdateMax(flow(1), 500)
	if got := s.Estimate(flow(1)); got != 500 {
		t.Fatalf("estimate = %d, want 500", got)
	}
	s.UpdateMax(flow(1), 300) // lower: must not decrease
	if got := s.Estimate(flow(1)); got != 500 {
		t.Fatalf("UpdateMax must be monotone: %d", got)
	}
	s.UpdateMax(flow(1), 800)
	if got := s.Estimate(flow(1)); got != 800 {
		t.Fatalf("estimate = %d, want 800", got)
	}
}

func TestSubtractFloor(t *testing.T) {
	s := New(2, 64)
	s.Add(flow(1), 100)
	s.Add(flow(2), 30)
	s.SubtractFloor(50)
	if got := s.Estimate(flow(1)); got != 50 {
		t.Fatalf("flow1 = %d, want 50", got)
	}
	if got := s.Estimate(flow(2)); got != 0 {
		t.Fatalf("flow2 should floor at 0, got %d", got)
	}
}

func TestReset(t *testing.T) {
	s := New(2, 64)
	s.Add(flow(1), 100)
	s.Reset()
	if s.Estimate(flow(1)) != 0 {
		t.Fatal("reset failed")
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 64}, {2, 0}, {2, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
}
