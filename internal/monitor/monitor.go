// Package monitor provides periodic samplers for simulation observability:
// queue depths, device throughput, and Cebinae control-plane state over
// time. Experiments use it for the time-series figures; it is also the
// debugging lens for new scenarios.
package monitor

import (
	"fmt"
	"strings"

	"cebinae/internal/core"
	"cebinae/internal/netem"
	"cebinae/internal/sim"
)

// Sample is one observation row.
type Sample struct {
	At sim.Time
	// QueueBytes / QueuePackets snapshot the watched qdisc.
	QueueBytes   int
	QueuePackets int
	// TxBps is the device's throughput since the previous sample.
	TxBps float64
	// DropPerSec is the device+qdisc drop rate since the previous sample.
	DropPerSec float64
	// Cebinae state (zero for other disciplines).
	Saturated bool
	TopFlows  int
	LBFDrops  uint64
	Delayed   uint64
}

// Monitor samples one device (and its qdisc) at a fixed interval.
type Monitor struct {
	eng      *sim.Engine
	dev      *netem.Device
	ceb      *core.Qdisc // nil unless the device runs Cebinae
	interval sim.Time

	lastTxBytes uint64
	lastDrops   uint64
	Samples     []Sample
	stopped     bool
	timer       sim.Timer
}

// monitorTick is the sampling-timer handler (named pointer type over
// Monitor: re-arming each period allocates nothing).
type monitorTick Monitor

func (h *monitorTick) OnEvent(any) { (*Monitor)(h).sample() }

// Watch starts sampling dev every interval. If the device's qdisc is a
// Cebinae instance its control-plane state is captured too.
func Watch(eng *sim.Engine, dev *netem.Device, interval sim.Time) *Monitor {
	m := &Monitor{eng: eng, dev: dev, interval: interval}
	if cq, ok := dev.Qdisc().(*core.Qdisc); ok {
		m.ceb = cq
	}
	// Pinned: sample instants are measurement epochs the fluid
	// fast-forward layer must stop at, so every sample reads counters
	// advanced exactly to its own instant.
	eng.ArmPinnedTimer(&m.timer, interval, (*monitorTick)(m), nil)
	return m
}

func (m *Monitor) sample() {
	if m.stopped {
		return
	}
	tx := m.dev.Stats.TxBytes
	drops := m.dev.Stats.DropPackets
	s := Sample{
		At:           m.eng.Now(),
		QueueBytes:   m.dev.Qdisc().BytesQueued(),
		QueuePackets: m.dev.Qdisc().Len(),
		TxBps:        float64(tx-m.lastTxBytes) * 8 / m.interval.Seconds(),
		DropPerSec:   float64(drops-m.lastDrops) / m.interval.Seconds(),
	}
	m.lastTxBytes = tx
	m.lastDrops = drops
	if m.ceb != nil {
		s.Saturated = m.ceb.Saturated()
		s.TopFlows = len(m.ceb.TopFlows())
		s.LBFDrops = m.ceb.Stats.LBFDrops
		s.Delayed = m.ceb.Stats.Delayed
	}
	m.Samples = append(m.Samples, s)
	m.eng.ArmPinnedTimer(&m.timer, m.interval, (*monitorTick)(m), nil)
}

// Stop ends sampling.
func (m *Monitor) Stop() { m.stopped = true }

// PeakQueueBytes returns the maximum observed backlog.
func (m *Monitor) PeakQueueBytes() int {
	peak := 0
	for _, s := range m.Samples {
		if s.QueueBytes > peak {
			peak = s.QueueBytes
		}
	}
	return peak
}

// MeanUtilisation returns average TxBps divided by the link rate.
func (m *Monitor) MeanUtilisation() float64 {
	if len(m.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range m.Samples {
		sum += s.TxBps
	}
	return sum / float64(len(m.Samples)) / m.dev.Rate()
}

// SaturatedFraction returns the fraction of samples in the saturated phase.
func (m *Monitor) SaturatedFraction() float64 {
	if len(m.Samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range m.Samples {
		if s.Saturated {
			n++
		}
	}
	return float64(n) / float64(len(m.Samples))
}

// Render prints the sample table.
func (m *Monitor) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s | %10s | %8s | %9s | %4s | %4s\n", "t", "tx[Mbps]", "queue[B]", "drops/s", "sat", "⊤")
	for _, s := range m.Samples {
		sat := " "
		if s.Saturated {
			sat = "*"
		}
		fmt.Fprintf(&b, "%10v | %10.2f | %8d | %9.1f | %4s | %4d\n",
			s.At, s.TxBps/1e6, s.QueueBytes, s.DropPerSec, sat, s.TopFlows)
	}
	return b.String()
}
