package monitor

import (
	"strings"
	"testing"

	"cebinae/internal/app"
	"cebinae/internal/core"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

func buildWatchedLink(useCebinae bool) (*sim.Engine, *netem.Node, *netem.Node, *netem.Device) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	rate := 50e6
	ab, ba := w.Connect(a, b, netem.LinkConfig{RateBps: rate, Delay: sim.Duration(1e6)})
	if useCebinae {
		cq := core.New(eng, rate, 128*1500, core.DefaultParams(rate, 128*1500, sim.Duration(20e6)))
		cq.OnDrain = ab.Kick
		ab.SetQdisc(cq)
	} else {
		ab.SetQdisc(qdisc.NewFIFO(128 * 1500))
	}
	ba.SetQdisc(qdisc.NewFIFO(1 << 20))
	a.AddRoute(b.ID, ab)
	b.AddRoute(a.ID, ba)
	return eng, a, b, ab
}

type sink struct{}

func (sink) Deliver(p *packet.Packet) {}

func TestMonitorSamplesThroughput(t *testing.T) {
	eng, a, b, dev := buildWatchedLink(false)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	b.Register(key, sink{})
	app.NewCBR(eng, a, key, 20e6, 0)
	m := Watch(eng, dev, sim.Duration(100e6))
	eng.Run(sim.Duration(2e9))

	if len(m.Samples) < 18 {
		t.Fatalf("expected ≈20 samples, got %d", len(m.Samples))
	}
	util := m.MeanUtilisation()
	if util < 0.35 || util > 0.45 {
		t.Fatalf("20 Mbps on 50 Mbps should be 40%% utilisation, got %.2f", util)
	}
	if !strings.Contains(m.Render(), "tx[Mbps]") {
		t.Fatal("renderer broken")
	}
}

func TestMonitorCapturesCebinaeState(t *testing.T) {
	eng, a, b, dev := buildWatchedLink(true)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	b.Register(key, sink{})
	app.NewCBR(eng, a, key, 60e6, 0) // overload
	m := Watch(eng, dev, sim.Duration(100e6))
	eng.Run(sim.Duration(2e9))

	if m.SaturatedFraction() == 0 {
		t.Fatal("overloaded Cebinae port should show saturated samples")
	}
	sawTop := false
	for _, s := range m.Samples {
		if s.TopFlows > 0 {
			sawTop = true
		}
	}
	if !sawTop {
		t.Fatal("⊤ classification never observed")
	}
	if m.PeakQueueBytes() == 0 {
		t.Fatal("queue depth never observed")
	}
}

func TestMonitorStop(t *testing.T) {
	eng, _, _, dev := buildWatchedLink(false)
	m := Watch(eng, dev, sim.Duration(100e6))
	eng.At(sim.Duration(500e6), m.Stop)
	eng.Run(sim.Duration(2e9))
	if len(m.Samples) > 6 {
		t.Fatalf("stop did not halt sampling: %d samples", len(m.Samples))
	}
}
