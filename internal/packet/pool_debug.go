//go:build packetdebug

package packet

import "fmt"

// poolDebug tracks which packets are sitting on the free list and panics
// on a double release — the classic pooling bug where a packet is freed at
// two ownership hand-off points (e.g. both a drop path and a delivery
// path). Enabled with `go build -tags packetdebug`; the release build's
// no-op twin lives in pool_nodebug.go.
type poolDebug struct {
	freed map[*Packet]bool
}

func (d *poolDebug) onGet(p *Packet) {
	delete(d.freed, p)
}

func (d *poolDebug) onPut(p *Packet) {
	if d.freed == nil {
		d.freed = make(map[*Packet]bool)
	}
	if d.freed[p] {
		panic(fmt.Sprintf("packet: double free of %v", p))
	}
	d.freed[p] = true
}
