package packet

// Pool is a free list of Packet structs owned by one simulation (one
// engine's goroutine), so it needs no locking — unlike sync.Pool there is
// no per-P caching or cross-goroutine contention, and recycled packets
// never migrate between concurrent simulations.
//
// Ownership protocol: a packet is drawn with Get when a sender builds it,
// travels through queues and links under single ownership, and is released
// with Put exactly once at the point it leaves the simulated network — on
// delivery to its endpoint, or on drop. Packets that are discarded inside a
// queue discipline (e.g. CoDel dequeue-time drops) may simply be abandoned
// to the garbage collector: Put is an optimisation, not an obligation, and
// packets built outside the pool may be Put into it.
//
// Building with -tags packetdebug enables a double-free detector that
// panics when a packet is released twice without an intervening Get.
type Pool struct {
	free  []*Packet
	debug poolDebug
	// Gets / Reuses count allocations served and how many were recycled
	// (Gets - Reuses packets were freshly allocated).
	Gets   uint64
	Reuses uint64
}

// Get returns a zeroed packet, reusing a released one when available. The
// SACK slice's backing array is retained across reuse (length reset to 0).
func (pl *Pool) Get() *Packet {
	pl.Gets++
	n := len(pl.free)
	if n == 0 {
		return &Packet{}
	}
	pl.Reuses++
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	pl.debug.onGet(p)
	sack := p.SACK[:0]
	*p = Packet{}
	p.SACK = sack
	return p
}

// Put releases p back to the pool. p must not be referenced by the caller
// afterwards; its fields keep their values until the packet is reused.
func (pl *Pool) Put(p *Packet) {
	pl.debug.onPut(p)
	pl.free = append(pl.free, p)
}

// FreeLen returns the number of packets currently on the free list.
func (pl *Pool) FreeLen() int { return len(pl.free) }
