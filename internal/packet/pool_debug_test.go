//go:build packetdebug

package packet

import "testing"

// TestPoolDoubleFreePanics verifies the packetdebug build's ownership
// checking: releasing the same packet twice must panic rather than silently
// corrupt the free list.
func TestPoolDoubleFreePanics(t *testing.T) {
	var pool Pool
	p := pool.Get()
	pool.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put must panic under the packetdebug tag")
		}
	}()
	pool.Put(p)
}
