// Package packet defines the packet and flow-identity model shared by every
// layer of the simulator: transport endpoints, network devices, queue
// disciplines, and the Cebinae data plane.
package packet

import (
	"fmt"

	"cebinae/internal/sim"
)

// NodeID identifies a node (host or switch) in the simulated network.
type NodeID int32

// Protocol numbers mirror their IANA values for familiarity.
type Protocol uint8

const (
	ProtoTCP Protocol = 6
	ProtoUDP Protocol = 17
)

// FlowKey is the canonical 5-tuple used for flow-level accounting. Addresses
// are node IDs; the simulator does not model IP addressing separately.
type FlowKey struct {
	Src     NodeID
	Dst     NodeID
	SrcPort uint16
	DstPort uint16
	Proto   Protocol
}

// Reverse returns the key of the opposite direction of the same conversation
// (used to route ACKs back to the sender's demux entry).
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%d->%d:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Hash returns a 64-bit mix of the flow key, suitable for hash-table
// placement (e.g., the heavy-hitter cache stages use seeded variants).
func (k FlowKey) Hash(seed uint64) uint64 {
	h := seed ^ 0xCBF29CE484222325
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001B3
		h ^= h >> 29
	}
	mix(uint64(uint32(k.Src)))
	mix(uint64(uint32(k.Dst)) << 1)
	mix(uint64(k.SrcPort)<<16 | uint64(k.DstPort))
	mix(uint64(k.Proto))
	return h
}

// TCP header flag bits.
const (
	FlagSYN uint8 = 1 << 0
	FlagACK uint8 = 1 << 1
	FlagFIN uint8 = 1 << 2
	FlagECE uint8 = 1 << 3 // ECN-Echo: receiver saw a CE mark
	FlagCWR uint8 = 1 << 4 // sender reduced its window in response to ECE
)

// ECN codepoints on the (simulated) IP header.
type ECN uint8

const (
	ECNNotECT ECN = 0 // transport is not ECN-capable
	ECNECT    ECN = 1 // ECN-capable transport
	ECNCE     ECN = 3 // congestion experienced (set by the network)
)

// Packet is one simulated datagram. Packets are passed by pointer and owned
// by exactly one queue or in-flight link at any instant.
type Packet struct {
	Flow FlowKey

	// Seq is the first payload byte carried; Ack is the cumulative ACK
	// (next byte expected). Both are byte offsets, as in TCP.
	Seq int64
	Ack int64

	Flags uint8
	ECN   ECN

	// SACK carries up to three selective-acknowledgement blocks on ACK
	// packets (RFC 2018), lowest first.
	SACK []SackBlock

	// PayloadSize is application bytes carried; Size is bytes on the wire
	// (payload plus fixed header overhead).
	PayloadSize int32
	Size        int32

	// SentAt is stamped by the sender when the packet first enters the
	// network; used for RTT sampling and latency accounting.
	SentAt sim.Time

	// EnqueuedAt is stamped by queue disciplines that need sojourn times
	// (CoDel) at enqueue.
	EnqueuedAt sim.Time

	// Retransmit marks a retransmitted data segment (excluded from goodput).
	Retransmit bool

	// DeliveredAtSend and DeliveredTimeAtSend snapshot the sender's delivery
	// counter when this packet was sent; they drive delivery-rate sampling
	// for BBR (after the style of Linux's rate-sample).
	DeliveredAtSend     int64
	DeliveredTimeAtSend sim.Time

	// AppLimitedAtSend records whether the sender was application-limited
	// when this packet left, so rate samples can be discounted.
	AppLimitedAtSend bool
}

// SackBlock is one received byte range [Start, End) beyond the cumulative
// ACK point.
type SackBlock struct {
	Start, End int64
}

// HeaderBytes is the fixed per-packet overhead (IP + TCP headers) the
// simulator charges on the wire.
const HeaderBytes = 52

// MSS is the default maximum segment (payload) size, chosen so that a full
// segment plus headers matches a 1500-byte MTU.
const MSS = 1500 - HeaderBytes

// IsData reports whether the packet carries payload bytes.
func (p *Packet) IsData() bool { return p.PayloadSize > 0 }

// HasFlag reports whether flag f is set.
func (p *Packet) HasFlag(f uint8) bool { return p.Flags&f != 0 }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%s seq=%d ack=%d len=%d flags=%08b}", p.Flow, p.Seq, p.Ack, p.PayloadSize, p.Flags)
}

// ShiftTime translates the packet's absolute timestamps forward by d.
// Used by the fluid fast-forward layer (internal/fluid): a packet frozen
// in a queue or on the wire across a clock skip must keep its distance to
// the clock so RTT samples and sojourn times are unperturbed. Zero-valued
// stamps are sentinels ("never stamped") and stay zero.
func (p *Packet) ShiftTime(d sim.Time) {
	if p.SentAt != 0 {
		p.SentAt += d
	}
	if p.EnqueuedAt != 0 {
		p.EnqueuedAt += d
	}
	if p.DeliveredTimeAtSend != 0 {
		p.DeliveredTimeAtSend += d
	}
}
