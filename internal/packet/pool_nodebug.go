//go:build !packetdebug

package packet

// poolDebug is a no-op in release builds; `go build -tags packetdebug`
// swaps in the double-free detector from pool_debug.go.
type poolDebug struct{}

func (poolDebug) onGet(*Packet) {}
func (poolDebug) onPut(*Packet) {}
