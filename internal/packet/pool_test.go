package packet

import "testing"

func TestPoolReuse(t *testing.T) {
	var pool Pool
	p := pool.Get()
	if pool.Gets != 1 || pool.Reuses != 0 {
		t.Fatalf("fresh pool counters: gets=%d reuses=%d", pool.Gets, pool.Reuses)
	}
	p.Seq = 42
	p.Size = 1500
	p.ECN = ECNCE
	p.SACK = append(p.SACK, SackBlock{Start: 1, End: 2})
	pool.Put(p)
	if pool.FreeLen() != 1 {
		t.Fatalf("free list length %d after Put, want 1", pool.FreeLen())
	}

	q := pool.Get()
	if q != p {
		t.Fatal("Get after Put must return the recycled packet")
	}
	if pool.Reuses != 1 {
		t.Fatalf("reuse counter %d, want 1", pool.Reuses)
	}
	if q.Seq != 0 || q.Size != 0 || q.ECN != ECNNotECT || len(q.SACK) != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
	if cap(q.SACK) == 0 {
		t.Fatal("recycled packet lost its SACK backing array")
	}
}

func TestPoolGetGrows(t *testing.T) {
	var pool Pool
	a, b := pool.Get(), pool.Get()
	if a == b {
		t.Fatal("distinct Gets from an empty pool must return distinct packets")
	}
	pool.Put(a)
	pool.Put(b)
	if pool.FreeLen() != 2 {
		t.Fatalf("free list length %d, want 2", pool.FreeLen())
	}
}
