//go:build packetdebug

package packet_test

import (
	"strings"
	"testing"

	"cebinae/internal/analysis/analysistest"
	"cebinae/internal/analysis/pktown"
	"cebinae/internal/packet"
)

// These tests pin the static pktown analyzer to the runtime packetdebug
// guard: a shape the runtime panics on must be flagged at lint time, and
// a shape the runtime accepts must stay diagnostic-free. The static side
// analyses textual twins of the executed functions over a stub packet
// package (pktown matches Pool.Put/Get structurally, so the stub stands
// in for this package).

const agreementStub = `package packet

type Packet struct{ Size int64 }

type Pool struct{ free []*Packet }

func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return p
	}
	return &Packet{}
}

func (pl *Pool) Put(p *Packet) { pl.free = append(pl.free, p) }
`

// doubleFree is the bug shape: the drop path releases but does not stop,
// so the delivery path releases again.
func doubleFree(pl *packet.Pool, p *packet.Packet, congested bool) {
	if congested {
		pl.Put(p)
	}
	pl.Put(p)
}

const doubleFreeSrc = `package a

import "packet"

func doubleFree(pl *packet.Pool, p *packet.Packet, congested bool) {
	if congested {
		pl.Put(p)
	}
	pl.Put(p)
}
`

// dropOrDeliver is the fixed shape: the drop path terminates.
func dropOrDeliver(pl *packet.Pool, p *packet.Packet, congested bool) int64 {
	if congested {
		pl.Put(p)
		return 0
	}
	n := int64(p.Size)
	pl.Put(p)
	return n
}

const dropOrDeliverSrc = `package a

import "packet"

func dropOrDeliver(pl *packet.Pool, p *packet.Packet, congested bool) int64 {
	if congested {
		pl.Put(p)
		return 0
	}
	n := int64(p.Size)
	pl.Put(p)
	return n
}
`

func runtimePanics(f func()) (panicked bool) {
	defer func() { panicked = recover() != nil }()
	f()
	return
}

func TestPktownAgreesWithRuntimeGuardOnDoubleFree(t *testing.T) {
	var pool packet.Pool
	if !runtimePanics(func() { doubleFree(&pool, pool.Get(), true) }) {
		t.Fatal("packetdebug guard did not panic on the double-free shape")
	}
	diags := analysistest.DiagnosticsForSource(t, pktown.Analyzer, "a", map[string]string{
		"a": doubleFreeSrc, "packet": agreementStub,
	})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "released twice") {
		t.Fatalf("pktown disagrees with the runtime guard: diagnostics %v", diags)
	}
}

func TestPktownAgreesWithRuntimeGuardOnCleanShape(t *testing.T) {
	var pool packet.Pool
	if runtimePanics(func() { dropOrDeliver(&pool, pool.Get(), true) }) {
		t.Fatal("packetdebug guard panicked on the clean shape")
	}
	if runtimePanics(func() { dropOrDeliver(&pool, pool.Get(), false) }) {
		t.Fatal("packetdebug guard panicked on the clean shape")
	}
	diags := analysistest.DiagnosticsForSource(t, pktown.Analyzer, "a", map[string]string{
		"a": dropOrDeliverSrc, "packet": agreementStub,
	})
	if len(diags) != 0 {
		t.Fatalf("pktown flags the shape the runtime guard accepts: %v", diags)
	}
}
