package packet

import (
	"testing"
	"testing/quick"
)

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 80 || r.DstPort != 1000 || r.Proto != ProtoTCP {
		t.Fatalf("reverse wrong: %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse must be identity")
	}
}

// TestReverseInvolution: Reverse is an involution for any key.
func TestReverseInvolution(t *testing.T) {
	f := func(src, dst int32, sp, dp uint16, proto uint8) bool {
		k := FlowKey{Src: NodeID(src), Dst: NodeID(dst), SrcPort: sp, DstPort: dp, Proto: Protocol(proto)}
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashSeedIndependence(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	if k.Hash(1) == k.Hash(2) {
		t.Fatal("different seeds should give different hashes (overwhelmingly)")
	}
	if k.Hash(1) != k.Hash(1) {
		t.Fatal("hash must be deterministic")
	}
}

func TestHashSpreads(t *testing.T) {
	// Sequentially numbered flows must not collide in low bits (they index
	// power-of-two hash tables).
	const mask = 4095
	counts := make(map[uint64]int)
	n := 4096
	for i := 0; i < n; i++ {
		k := FlowKey{Src: NodeID(i), Dst: NodeID(i + 1), SrcPort: uint16(i), DstPort: 80, Proto: ProtoTCP}
		counts[k.Hash(0)&mask]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 12 {
		t.Fatalf("hash clusters badly: max bucket %d for %d keys over %d buckets", max, n, mask+1)
	}
}

func TestPacketFlags(t *testing.T) {
	p := &Packet{Flags: FlagACK | FlagECE}
	if !p.HasFlag(FlagACK) || !p.HasFlag(FlagECE) || p.HasFlag(FlagSYN) {
		t.Fatal("flag accessors wrong")
	}
}

func TestIsData(t *testing.T) {
	if (&Packet{PayloadSize: 0}).IsData() {
		t.Fatal("ACK is not data")
	}
	if !(&Packet{PayloadSize: 1}).IsData() {
		t.Fatal("payload is data")
	}
}

func TestMSSMatchesMTU(t *testing.T) {
	if MSS+HeaderBytes != 1500 {
		t.Fatalf("MSS (%d) + headers (%d) should equal a 1500-byte MTU", MSS, HeaderBytes)
	}
}

func TestStringRendering(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	if k.String() == "" {
		t.Fatal("empty key string")
	}
	p := &Packet{Flow: k, Seq: 5, PayloadSize: 100}
	if p.String() == "" {
		t.Fatal("empty packet string")
	}
}
