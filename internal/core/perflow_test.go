package core_test

import (
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// runRTTPair runs two NewReno flows (10 ms vs 80 ms RTT) through Cebinae
// with a wide δf so both are classified ⊤, returning their tail goodputs.
func runRTTPair(t *testing.T, perFlow bool) (short, long float64) {
	t.Helper()
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	rate := 50e6
	buf := 420 * 1500
	params := core.DefaultParams(rate, buf, sim.Duration(80e6))
	params.DeltaFlow = 0.9 // both flows land in ⊤
	params.PerFlowTop = perFlow
	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       2,
		BottleneckBps:   rate,
		BottleneckDelay: sim.Duration(100e3),
		RTTs:            []sim.Time{sim.Duration(10e6), sim.Duration(80e6)},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
			cq := core.New(eng, rate, buf, params)
			cq.OnDrain = dev.Kick
			return cq
		},
		DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})
	meters := make([]*metrics.FlowMeter, 2)
	for i := 0; i < 2; i++ {
		key := packet.FlowKey{Src: d.Senders[i].ID, Dst: d.Receivers[i].ID, SrcPort: 1, DstPort: uint16(10 + i), Proto: packet.ProtoTCP}
		tcp.NewConn(eng, d.Senders[i], tcp.Config{Key: key})
		recv := tcp.NewReceiver(eng, d.Receivers[i], tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recv.GoodputAt = m.Record
		meters[i] = m
	}
	dur := sim.Duration(60e9)
	eng.Run(dur)
	return meters[0].RateOver(dur/2, dur) * 8, meters[1].RateOver(dur/2, dur) * 8
}

// TestPerFlowTopWorks: the extension must run correctly end to end and
// keep utilisation and fairness at least in the ballpark of the aggregate
// mode for a both-flows-⊤ workload.
func TestPerFlowTopWorks(t *testing.T) {
	s, l := runRTTPair(t, true)
	total := s + l
	if total < 0.5*50e6 {
		t.Fatalf("per-flow mode collapsed utilisation: %.1f Mbps", total/1e6)
	}
	jfi := metrics.JFI([]float64{s, l})
	t.Logf("per-flow: short=%.1f long=%.1f JFI=%.3f", s/1e6, l/1e6, jfi)
	if jfi < 0.55 {
		t.Fatalf("per-flow ⊤ isolation JFI %.3f too low", jfi)
	}
}

// TestPerFlowVsAggregateAblation: with both flows ⊤, the per-flow extension
// should isolate them from each other at least as well as the aggregate
// group (within tolerance — this is the §7 hypothesis, checked as a
// regression ablation).
func TestPerFlowVsAggregateAblation(t *testing.T) {
	sAgg, lAgg := runRTTPair(t, false)
	sPF, lPF := runRTTPair(t, true)
	jfiAgg := metrics.JFI([]float64{sAgg, lAgg})
	jfiPF := metrics.JFI([]float64{sPF, lPF})
	t.Logf("aggregate: short=%.1f long=%.1f JFI=%.3f | per-flow: short=%.1f long=%.1f JFI=%.3f",
		sAgg/1e6, lAgg/1e6, jfiAgg, sPF/1e6, lPF/1e6, jfiPF)
	if jfiPF < jfiAgg-0.15 {
		t.Fatalf("per-flow mode markedly worse than aggregate: %.3f vs %.3f", jfiPF, jfiAgg)
	}
}
