package core

// DebugHook, when set by tests, observes each recomputation.
var DebugHook func(util float64, entries int, saturated bool)

func debugRecompute(util float64, entries int, sat bool) {
	if DebugHook != nil {
		DebugHook(util, entries, sat)
	}
}

// DebugDropHook, when set by tests, observes each drop: kind is "buffer" or
// "lbf"; srcPort identifies the flow in the test rigs.
var DebugDropHook func(kind string, srcPort uint16)
