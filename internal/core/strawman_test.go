package core_test

import (
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// runUnfairStart builds the paper's §3.2 motivating situation: a
// loss-based Cubic flow has the link to itself for 10 s and converges
// high; then four delay-based Vegas flows join. Vegas backs off on the
// standing queue the incumbent maintains, so — exactly as §3.2 argues —
// the late flows "do not have a mechanism to claim their own fair share":
// the strawman merely freezes the unfair allocation, while Cebinae”s tax
// actively redistributes. Returns (incumbent, mean-late) tail goodputs.
func runUnfairStart(t *testing.T, kind string) (float64, float64) {
	t.Helper()
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	const rate = 50e6
	buf := 420 * 1500
	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       5,
		BottleneckBps:   rate,
		BottleneckDelay: sim.Duration(100e3),
		RTTs:            []sim.Time{sim.Duration(40e6)},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
			switch kind {
			case "strawman":
				return core.NewStrawman(eng, rate, buf, sim.Duration(100e6), 0.01)
			case "cebinae":
				cq := core.New(eng, rate, buf, core.DefaultParams(rate, buf, sim.Duration(40e6)))
				cq.OnDrain = dev.Kick
				return cq
			default:
				return qdisc.NewFIFO(buf)
			}
		},
		DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})
	meters := make([]*metrics.FlowMeter, 5)
	for i := 0; i < 5; i++ {
		name := "newreno"
		var start sim.Time
		if i == 0 {
			name = "cubic" // aggressive incumbent
		} else {
			name = "vegas" // meek latecomers
			start = sim.Duration(10e9)
		}
		cc, _ := tcp.NewCC(name)
		key := packet.FlowKey{Src: d.Senders[i].ID, Dst: d.Receivers[i].ID, SrcPort: 1, DstPort: uint16(30 + i), Proto: packet.ProtoTCP}
		tcp.NewConn(eng, d.Senders[i], tcp.Config{Key: key, CC: cc, StartAt: start, MinRTO: sim.Duration(1e9)})
		recv := tcp.NewReceiver(eng, d.Receivers[i], tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recv.GoodputAt = m.Record
		meters[i] = m
	}
	dur := sim.Duration(60e9)
	eng.Run(dur)
	agg := meters[0].RateOver(dur*2/3, dur) * 8
	var late float64
	for _, m := range meters[1:] {
		late += m.RateOver(dur*2/3, dur) * 8
	}
	return agg, late / 4
}

// TestStrawmanMechanismLimits: the token buckets engage and police while
// the port is saturated.
func TestStrawmanMechanismLimits(t *testing.T) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	src, dst := w.NewNode("src"), w.NewNode("dst")
	const rate = 50e6
	dev, rev := w.Connect(src, dst, netem.LinkConfig{RateBps: rate, Delay: sim.Duration(1e6)})
	s := core.NewStrawman(eng, rate, 8<<20, sim.Duration(100e6), 0.01)
	dev.SetQdisc(s)
	rev.SetQdisc(qdisc.NewFIFO(1 << 20))
	src.AddRoute(dst.ID, dev)
	key := packet.FlowKey{Src: src.ID, Dst: dst.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	var tick func()
	tick = func() {
		src.Inject(&packet.Packet{Flow: key, Size: 1500, PayloadSize: 1448})
		eng.Schedule(sim.Time(1500*8/(1.2*rate)*1e9), tick)
	}
	eng.Schedule(0, tick)
	eng.Run(sim.Duration(2e9))
	if !s.Limiting() {
		t.Fatal("overloaded strawman should be limiting")
	}
	if s.Stats.LBFDrops == 0 {
		t.Fatal("policing drops expected for a blind overload")
	}
}

// TestStrawmanVsCebinaeRedistribution reproduces the paper's §3.2
// argument: after an aggressive flow converges high, late-arriving flows
// under the strawman stay starved (it freezes the unfair allocation),
// while Cebinae's taxation redistributes toward them.
func TestStrawmanVsCebinaeRedistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulations")
	}
	aggS, lateS := runUnfairStart(t, "strawman")
	aggC, lateC := runUnfairStart(t, "cebinae")
	t.Logf("strawman: aggressive=%.1f late=%.1f Mbps | cebinae: aggressive=%.1f late=%.1f Mbps",
		aggS/1e6, lateS/1e6, aggC/1e6, lateC/1e6)

	// Cebinae must leave the late flows materially better off than the
	// strawman does, and cut the incumbent's capture deeper.
	if lateC < lateS*1.2 {
		t.Fatalf("Cebinae should redistribute more than the strawman: late %.2f vs %.2f Mbps",
			lateC/1e6, lateS/1e6)
	}
	if aggC > aggS {
		t.Fatalf("Cebinae should cut the incumbent below the strawman's freeze: %.2f vs %.2f Mbps",
			aggC/1e6, aggS/1e6)
	}
}
