// Package core implements Cebinae — the paper's contribution: a per-router
// mechanism that continuously pushes each saturated link's allocation
// towards max-min fairness by (1) detecting port saturation from egress byte
// counters, (2) classifying the locally-bottlenecked (maximal-rate) flows
// with a heavy-hitter cache, and (3) taxing those flows a fraction τ of
// their bandwidth through an approximated two-queue leaky-bucket filter,
// releasing headroom that unbottlenecked flows can claim.
//
// The implementation mirrors the paper's NS-3 traffic-control module: the
// data plane (LBF + counters) lives in a queue discipline attached to a
// simulated device, and the control-plane agent runs as periodic simulation
// events respecting the dT/vdT/L real-time schedule of Fig. 6.
package core

import (
	"fmt"

	"cebinae/internal/sim"
)

// Params are Cebinae's configurable parameters (paper Table 1).
type Params struct {
	// DeltaPort (δp) is the port-saturation threshold: a port is saturated
	// when its utilisation over the last recomputation period is at least
	// (1 − δp) of capacity.
	DeltaPort float64
	// DeltaFlow (δf) is the bottleneck-flow threshold: flows within δf of
	// the maximum flow's byte count are classified ⊤ (bottlenecked).
	DeltaFlow float64
	// Tau (τ) is the tax rate applied to the aggregate bottlenecked-flow
	// bandwidth each recomputation.
	Tau float64
	// P is the number of dT rounds between utilisation/rate
	// recomputations.
	P int
	// L is the control-plane reconfiguration deadline after each rotation.
	L sim.Time
	// DT is the physical-bucket (queue round) duration; must be a power of
	// two in nanoseconds and satisfy the buffer constraint of Eq. 2.
	DT sim.Time
	// VDT is the virtual-bucket duration (power of two, VDT < DT); it
	// bounds catch-up bursts within a round.
	VDT sim.Time
	// MarkECN makes the LBF set CE on ECN-capable packets that it delays
	// into the lower-priority queue (the paper's pre-loss congestion
	// signal for delay/ECN-based CCAs).
	MarkECN bool
	// PerFlowTop enables the §7 extension: each bottlenecked flow gets its
	// own taxed allowance instead of sharing one aggregate ⊤ allowance —
	// stronger isolation between ⊤ flows at the cost of the aggregate's
	// statistical multiplexing headroom.
	PerFlowTop bool

	// CacheStages and CacheSlots size the heavy-hitter flow cache.
	CacheStages int
	CacheSlots  int
}

// DefaultParams returns the paper's robust defaults (δp = δf = τ = 1%) with
// dT derived from the port's buffer and capacity per Eq. 2
// (dT ≥ buffer/BW + vdT + L) and P sized to cover maxRTT.
func DefaultParams(capacityBps float64, bufferBytes int, maxRTT sim.Time) Params {
	p := Params{
		DeltaPort:   0.01,
		DeltaFlow:   0.01,
		Tau:         0.01,
		L:           sim.Duration(20e3), // 20 µs
		VDT:         1 << 16,            // ~65.5 µs
		MarkECN:     true,
		CacheStages: 2,
		CacheSlots:  2048,
	}
	minDT := sim.Time(float64(bufferBytes*8)/capacityBps*1e9) + p.VDT + p.L
	p.DT = nextPow2(minDT)
	if p.DT < 1<<21 { // ≥ ~2 ms keeps rotation overhead sane
		p.DT = 1 << 21
	}
	p.P = int((maxRTT + p.DT - 1) / p.DT)
	if p.P < 1 {
		p.P = 1
	}
	return p
}

// Validate checks structural constraints (power-of-two buckets, Eq. 2 and
// the L ≤ dT − vdT scheduling bound).
func (p Params) Validate(capacityBps float64, bufferBytes int) error {
	if p.DT <= 0 || p.DT&(p.DT-1) != 0 {
		return fmt.Errorf("core: dT (%v) must be a positive power of two", p.DT)
	}
	if p.VDT <= 0 || p.VDT&(p.VDT-1) != 0 || p.VDT >= p.DT {
		return fmt.Errorf("core: vdT (%v) must be a positive power of two below dT (%v)", p.VDT, p.DT)
	}
	if p.L < 0 || p.L > p.DT-p.VDT {
		return fmt.Errorf("core: L (%v) must lie in [0, dT−vdT] = [0, %v]", p.L, p.DT-p.VDT)
	}
	if p.DeltaPort <= 0 || p.DeltaPort > 1 || p.DeltaFlow < 0 || p.DeltaFlow > 1 || p.Tau < 0 || p.Tau > 1 {
		return fmt.Errorf("core: thresholds must lie in (0,1]: δp=%v δf=%v τ=%v", p.DeltaPort, p.DeltaFlow, p.Tau)
	}
	if p.P < 1 {
		return fmt.Errorf("core: P (%d) must be ≥ 1", p.P)
	}
	// Eq. 2: (dT − (vdT + L)) · BW ≥ buffer.
	if got := (p.DT - p.VDT - p.L).Seconds() * capacityBps / 8; got < float64(bufferBytes) {
		return fmt.Errorf("core: Eq.2 violated: (dT−vdT−L)·BW = %.0f bytes < buffer %d bytes", got, bufferBytes)
	}
	if p.CacheStages < 1 || p.CacheSlots < 1 || p.CacheSlots&(p.CacheSlots-1) != 0 {
		return fmt.Errorf("core: cache must have ≥1 stages and power-of-two slots")
	}
	return nil
}

func nextPow2(v sim.Time) sim.Time {
	p := sim.Time(1)
	for p < v {
		p <<= 1
	}
	return p
}
