package core_test

import (
	"testing"
	"testing/quick"

	"cebinae/internal/core"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

// TestConservationInvariant: under arbitrary offered loads, every packet
// offered to the Cebinae qdisc is either transmitted, still queued, or
// counted in exactly one drop counter — and byte/length gauges end
// consistent. This is the data plane's bookkeeping safety net.
func TestConservationInvariant(t *testing.T) {
	f := func(seed uint64, ratePct8 uint8, nFlows8 uint8) bool {
		offeredPct := 20 + int(ratePct8)%200 // 20%–220% of capacity
		nFlows := 1 + int(nFlows8)%8

		eng := sim.NewEngine()
		w := netem.NewNetwork(eng)
		src, dst := w.NewNode("src"), w.NewNode("dst")
		const capacity = 100e6
		buf := 96 * 1500
		dev, rev := w.Connect(src, dst, netem.LinkConfig{RateBps: capacity, Delay: sim.Duration(1e6)})
		params := core.Params{
			DeltaPort: 0.01, DeltaFlow: 0.05, Tau: 0.02,
			P: 2, L: 1 << 14, DT: 1 << 24, VDT: 1 << 16,
			MarkECN: true, CacheStages: 2, CacheSlots: 128,
		}
		cq := core.New(eng, capacity, buf, params)
		cq.OnDrain = dev.Kick
		dev.SetQdisc(cq)
		rev.SetQdisc(qdisc.NewFIFO(1 << 20))
		src.AddRoute(dst.ID, dev)

		rng := sim.NewRand(seed)
		var offered uint64
		perFlow := float64(offeredPct) / 100 * capacity / float64(nFlows)
		for i := 0; i < nFlows; i++ {
			key := packet.FlowKey{Src: src.ID, Dst: dst.ID, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
			// Jittered CBR: break synchronisation between flows.
			var tick func()
			gap := sim.Time(1500 * 8 / perFlow * 1e9)
			tick = func() {
				src.Inject(&packet.Packet{Flow: key, Size: 1500, PayloadSize: 1448})
				offered++
				j := sim.Time(rng.Float64() * float64(gap) * 0.2)
				eng.Schedule(gap+j-gap/10, tick)
			}
			eng.At(sim.Time(rng.Intn(1000))*1000, tick)
		}
		eng.Run(sim.Duration(1e9))

		st := cq.Stats
		accounted := st.TxPackets + uint64(cq.Len()) + st.BufferDrops + st.LBFDrops
		if accounted != offered {
			t.Logf("seed=%d offered=%d accounted=%d (tx=%d len=%d bufD=%d lbfD=%d)",
				seed, offered, accounted, st.TxPackets, cq.Len(), st.BufferDrops, st.LBFDrops)
			return false
		}
		if cq.Len() < 0 || cq.BytesQueued() < 0 {
			return false
		}
		if cq.Len() == 0 && cq.BytesQueued() != 0 {
			return false
		}
		// Transmitted bytes can never exceed line rate × time (+1 MTU
		// serialisation slop).
		if float64(st.TxBytes) > capacity/8*1.0+1500 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationInvariantPerFlowMode: the same bookkeeping holds with
// the §7 per-flow-⊤ extension enabled.
func TestConservationInvariantPerFlowMode(t *testing.T) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	src, dst := w.NewNode("src"), w.NewNode("dst")
	const capacity = 100e6
	buf := 96 * 1500
	dev, rev := w.Connect(src, dst, netem.LinkConfig{RateBps: capacity, Delay: sim.Duration(1e6)})
	params := core.Params{
		DeltaPort: 0.01, DeltaFlow: 0.5, Tau: 0.05,
		P: 2, L: 1 << 14, DT: 1 << 24, VDT: 1 << 16,
		MarkECN: true, PerFlowTop: true, CacheStages: 2, CacheSlots: 128,
	}
	cq := core.New(eng, capacity, buf, params)
	cq.OnDrain = dev.Kick
	dev.SetQdisc(cq)
	rev.SetQdisc(qdisc.NewFIFO(1 << 20))
	src.AddRoute(dst.ID, dev)

	var offered uint64
	for i := 0; i < 3; i++ {
		key := packet.FlowKey{Src: src.ID, Dst: dst.ID, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
		rate := 45e6
		var tick func()
		gap := sim.Time(1500 * 8 / rate * 1e9)
		tick = func() {
			src.Inject(&packet.Packet{Flow: key, Size: 1500, PayloadSize: 1448})
			offered++
			eng.Schedule(gap, tick)
		}
		eng.At(sim.Time(i)*777, tick)
	}
	eng.Run(sim.Duration(2e9))

	st := cq.Stats
	accounted := st.TxPackets + uint64(cq.Len()) + st.BufferDrops + st.LBFDrops
	if accounted != offered {
		t.Fatalf("per-flow mode leaks packets: offered=%d accounted=%d (%+v len=%d)",
			offered, accounted, st, cq.Len())
	}
}
