package core

import (
	"cebinae/internal/packet"
)

// Per-flow ⊤ tracking is the extension the paper's §7 ("Providing provable
// convergence properties") sketches: instead of one aggregate allowance for
// the whole bottlenecked group, each ⊤ flow gets its own taxed allowance —
// trading the statistical-multiplexing headroom of the aggregate for
// stronger isolation between bottlenecked flows (the paper postulates this
// yields fair-queuing-equivalent convergence under eventual stability).
//
// Enabled with Params.PerFlowTop. The ⊥ group is unchanged.

// topFlowState is the LBF bank and allowance of one ⊤ flow.
type topFlowState struct {
	bytes float64 // bank within the current round
	rate  float64 // taxed allowance, bytes/second
}

// perFlowEnqueue classifies a ⊤ packet against its own flow's allowance.
// Mirrors the aggregate path of Enqueue; returns false when the packet must
// be dropped.
func (q *Qdisc) perFlowEnqueue(p *packet.Packet, totalAfter float64) bool {
	st := q.topState[p.Flow]
	if st == nil {
		// Freshly promoted flow with no installed state yet: treat as ⊥
		// for this packet (false negatives are tolerable — §4).
		return q.bottomEnqueue(p, totalAfter)
	}
	dtSec := q.params.DT.Seconds()
	agg := q.aggregateSize(st.rate, st.rate)
	after := st.bytes
	if after < agg {
		after = agg
	}
	after += float64(p.Size)

	pastHead := after - st.rate*dtSec
	pastTail := pastHead - st.rate*dtSec
	switch {
	case pastHead <= 0:
		q.totalBytes = totalAfter
		st.bytes = after
		q.push(q.headq, p)
	case pastTail <= 0:
		if q.params.MarkECN && p.ECN == packet.ECNECT {
			p.ECN = packet.ECNCE
			q.Stats.ECNMarked++
		}
		q.Stats.Delayed++
		q.totalBytes = totalAfter
		st.bytes = after
		q.push(1-q.headq, p)
	default:
		q.Stats.LBFDrops++
		if DebugDropHook != nil {
			DebugDropHook("lbf", p.Flow.SrcPort)
		}
		return false
	}
	return true
}

// bottomEnqueue runs the ⊥ group's aggregate admission (shared by the
// normal path and the per-flow fallback).
func (q *Qdisc) bottomEnqueue(p *packet.Packet, totalAfter float64) bool {
	dtSec := q.params.DT.Seconds()
	g := groupBottom
	rHead := q.qrate[q.headq][g]
	rTail := q.qrate[1-q.headq][g]
	agg := q.aggregateSize(rHead, rTail)
	after := q.groupBytes[g]
	if after < agg {
		after = agg
	}
	after += float64(p.Size)

	pastHead := after - rHead*dtSec
	pastTail := pastHead - rTail*dtSec
	switch {
	case pastHead <= 0:
		q.totalBytes = totalAfter
		q.groupBytes[g] = after
		q.push(q.headq, p)
	case pastTail <= 0:
		if q.params.MarkECN && p.ECN == packet.ECNECT {
			p.ECN = packet.ECNCE
			q.Stats.ECNMarked++
		}
		q.Stats.Delayed++
		q.totalBytes = totalAfter
		q.groupBytes[g] = after
		q.push(1-q.headq, p)
	default:
		q.Stats.LBFDrops++
		if DebugDropHook != nil {
			DebugDropHook("lbf", p.Flow.SrcPort)
		}
		return false
	}
	return true
}

// perFlowRotate retires one round of every ⊤ flow's allowance.
func (q *Qdisc) perFlowRotate(dtSec float64) {
	for _, st := range q.topState {
		st.bytes -= st.rate * dtSec
		if st.bytes < 0 {
			st.bytes = 0
		}
	}
}

// applyPerFlow installs per-flow allowances from a recomputation: each ⊤
// flow's taxed measured rate. Flows leaving ⊤ drop their state; arriving
// flows inherit a zeroed bank.
func (q *Qdisc) applyPerFlow(rates map[packet.FlowKey]float64) {
	next := make(map[packet.FlowKey]*topFlowState, len(rates))
	for f, r := range rates {
		if old, ok := q.topState[f]; ok {
			old.rate = r
			next[f] = old
		} else {
			next[f] = &topFlowState{rate: r}
		}
	}
	q.topState = next
}
