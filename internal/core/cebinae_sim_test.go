package core_test

import (
	"fmt"
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// runScenario runs a dumbbell with the given CCAs/RTTs under either Cebinae
// or FIFO at the bottleneck, returning per-flow goodput rates (bytes/sec)
// and the bottleneck qdisc (nil unless Cebinae).
func runScenario(t testing.TB, cebinae bool, ccs []string, rtts []sim.Time, rateBps float64, bufBytes int, dur sim.Time) ([]float64, *core.Qdisc) {
	t.Helper()
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	var cq *core.Qdisc
	maxRTT := rtts[0]
	for _, r := range rtts {
		if r > maxRTT {
			maxRTT = r
		}
	}
	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       len(ccs),
		BottleneckBps:   rateBps,
		BottleneckDelay: sim.Duration(100e3),
		RTTs:            rtts,
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
			if cebinae {
				cq = core.New(eng, rateBps, bufBytes, core.DefaultParams(rateBps, bufBytes, maxRTT))
				cq.OnDrain = dev.Kick
				return cq
			}
			return qdisc.NewFIFO(bufBytes)
		},
		DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})
	meters := make([]*metrics.FlowMeter, len(ccs))
	for i, name := range ccs {
		cc, ok := tcp.NewCC(name)
		if !ok {
			t.Fatalf("unknown CC %q", name)
		}
		key := packet.FlowKey{Src: d.Senders[i].ID, Dst: d.Receivers[i].ID, SrcPort: 1000, DstPort: uint16(5000 + i), Proto: packet.ProtoTCP}
		tcp.NewConn(eng, d.Senders[i], tcp.Config{Key: key, CC: cc})
		recv := tcp.NewReceiver(eng, d.Receivers[i], tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recv.GoodputAt = m.Record
		meters[i] = m
	}
	eng.Run(dur)
	rates := make([]float64, len(ccs))
	for i, m := range meters {
		rates[i] = m.RateOver(dur*2/3, dur) // converged tail
	}
	return rates, cq
}

// TestCebinaePassesTrafficWhenUnsaturated: a flow whose demand stays below
// the saturation threshold must pass through Cebinae untouched — no LBF
// drops, no phase change to saturated.
func TestCebinaePassesTrafficWhenUnsaturated(t *testing.T) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	rate := 50e6
	buf := 128 * 1500
	var cq *core.Qdisc
	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       1,
		BottleneckBps:   rate,
		BottleneckDelay: sim.Duration(100e3),
		RTTs:            []sim.Time{sim.Duration(20e6)},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
			cq = core.New(eng, rate, buf, core.DefaultParams(rate, buf, sim.Duration(20e6)))
			cq.OnDrain = dev.Kick
			return cq
		},
		DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})
	key := packet.FlowKey{Src: d.Senders[0].ID, Dst: d.Receivers[0].ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	// Cap the window so demand tops out at roughly half the link.
	tcp.NewConn(eng, d.Senders[0], tcp.Config{Key: key, MaxCwndBytes: 0.5 * rate / 8 * 0.0204})
	recv := tcp.NewReceiver(eng, d.Receivers[0], tcp.ReceiverConfig{Key: key})
	m := &metrics.FlowMeter{}
	recv.GoodputAt = m.Record
	dur := sim.Duration(10e9)
	eng.Run(dur)

	got := m.RateOver(dur/5, dur) * 8
	if got < 0.4*rate || got > 0.6*rate {
		t.Fatalf("capped flow got %.2f Mbps, want ≈ 25", got/1e6)
	}
	if cq.Stats.LBFDrops != 0 || cq.Stats.BufferDrops != 0 {
		t.Fatalf("unsaturated flow suffered drops: %+v", cq.Stats)
	}
	if cq.Saturated() {
		t.Fatalf("port wrongly classified saturated")
	}
}

// TestCebinaeHomogeneousEfficiency: paper Example (1) — identical flows on
// one bottleneck; Cebinae taxes everyone but utilisation must stay high
// (fluctuating around capacity, never collapsing).
func TestCebinaeHomogeneousEfficiency(t *testing.T) {
	ccs := make([]string, 9)
	for i := range ccs {
		ccs[i] = "newreno"
	}
	rates, cq := runScenario(t, true, ccs, []sim.Time{sim.Duration(40e6)}, 100e6, 420*1500, sim.Duration(30e9))
	var sum float64
	for _, r := range rates {
		sum += r * 8
	}
	t.Logf("aggregate=%.2f Mbps rates=%v JFI=%.3f stats=%+v", sum/1e6, mbps(rates), metrics.JFI(rates), cq.Stats)
	if sum < 0.80*100e6 {
		t.Fatalf("homogeneous aggregate %.2f Mbps too low under Cebinae", sum/1e6)
	}
	if jfi := metrics.JFI(rates); jfi < 0.9 {
		t.Fatalf("homogeneous JFI %.3f too low", jfi)
	}
}

// TestCebinaeImprovesVegasVsNewReno reproduces the Fig. 7 effect in
// miniature: Vegas flows starved by a NewReno flow under FIFO recover a
// much fairer share under Cebinae.
func TestCebinaeImprovesVegasVsNewReno(t *testing.T) {
	ccs := []string{"vegas", "vegas", "vegas", "vegas", "newreno"}
	rtts := []sim.Time{sim.Duration(40e6)}
	// Convergence takes tens of seconds (the paper runs 100 s); measure the
	// converged tail of a 60 s run.
	dur := sim.Duration(60e9)

	fifoRates, _ := runScenario(t, false, ccs, rtts, 50e6, 420*1500, dur)
	cebRates, cq := runScenario(t, true, ccs, rtts, 50e6, 420*1500, dur)

	fifoJFI := metrics.JFI(fifoRates)
	cebJFI := metrics.JFI(cebRates)
	t.Logf("FIFO rates=%v JFI=%.3f", mbps(fifoRates), fifoJFI)
	t.Logf("Cebinae rates=%v JFI=%.3f stats=%+v", mbps(cebRates), cebJFI, cq.Stats)
	if cebJFI < fifoJFI {
		t.Fatalf("Cebinae JFI %.3f did not improve on FIFO %.3f", cebJFI, fifoJFI)
	}
	if cebJFI < 0.8 {
		t.Fatalf("Cebinae JFI %.3f too low", cebJFI)
	}
}

func mbps(rates []float64) []string {
	out := make([]string, len(rates))
	for i, r := range rates {
		out[i] = fmt.Sprintf("%.2f", r*8/1e6)
	}
	return out
}
