package core

import (
	"cebinae/internal/hhcache"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Strawman implements the naïve design §3.2 introduces to motivate
// Cebinae: when a link saturates, impose a token-bucket rate limit on all
// flows at the maximal observed size; release the limits when aggregate
// demand drops below capacity. The paper gives two reasons it fails —
// (1) it can freeze an *already unfair* allocation forever (the {1,1,6,1,1}
// example: the starved flows have no mechanism to claim their share), and
// (2) a plain policing filter mishandles loss-insensitive algorithms.
// It is implemented here so the motivating comparison can be run (see the
// TestStrawmanFreezesUnfairness experiment and §3.2 of the paper).
type Strawman struct {
	eng         *sim.Engine
	capacityBps float64
	bufferBytes int

	// Interval is the detection/enforcement period; DeltaPort the
	// saturation threshold (as Cebinae's δp).
	Interval  sim.Time
	DeltaPort float64

	fifo        pktRing
	bytesQueued int

	limiting bool
	// buckets holds per-flow token buckets while limiting; all buckets
	// refill at the max flow's measured rate ("limits of the maximal
	// size").
	buckets    map[packet.FlowKey]*tokenBucket
	limitRate  float64 // bytes/second granted to every flow
	cache      *hhcache.Cache
	txBytes    uint64
	lastTx     uint64
	lastRefill sim.Time
	timer      sim.Timer

	Stats Stats
}

// strawmanControl is the control-loop timer handler.
type strawmanControl Strawman

func (h *strawmanControl) OnEvent(any) { (*Strawman)(h).control() }

type tokenBucket struct {
	tokens float64
	lastAt sim.Time
}

// NewStrawman builds the strawman qdisc and starts its control loop.
func NewStrawman(eng *sim.Engine, capacityBps float64, bufferBytes int, interval sim.Time, deltaPort float64) *Strawman {
	s := &Strawman{
		eng:         eng,
		capacityBps: capacityBps,
		bufferBytes: bufferBytes,
		Interval:    interval,
		DeltaPort:   deltaPort,
		buckets:     make(map[packet.FlowKey]*tokenBucket),
		cache:       hhcache.New(2, 2048),
	}
	eng.ArmTimer(&s.timer, interval, (*strawmanControl)(s), nil)
	return s
}

// Limiting reports whether the token-bucket limits are engaged.
func (s *Strawman) Limiting() bool { return s.limiting }

func (s *Strawman) control() {
	interval := s.Interval.Seconds()
	capBytes := s.capacityBps / 8
	delta := s.txBytes - s.lastTx
	s.lastTx = s.txBytes
	entries := s.cache.Poll()

	utilisation := float64(delta) / (capBytes * interval)
	if utilisation >= 1-s.DeltaPort && len(entries) > 0 {
		// Saturated: limit every flow at the maximal flow's measured rate.
		var maxBytes int64
		for _, e := range entries {
			if e.Bytes > maxBytes {
				maxBytes = e.Bytes
			}
		}
		if !s.limiting {
			s.Stats.PhaseChanges++
		}
		s.limiting = true
		s.limitRate = float64(maxBytes) / interval
		s.lastRefill = s.eng.Now()
	} else if utilisation < 1-s.DeltaPort && s.limiting {
		// Demand dropped below capacity: release the limits.
		s.limiting = false
		s.buckets = make(map[packet.FlowKey]*tokenBucket)
		s.Stats.PhaseChanges++
	}
	if s.limiting {
		s.Stats.SaturatedTime += s.Interval
	}
	s.eng.ArmTimer(&s.timer, s.Interval, (*strawmanControl)(s), nil)
}

// Enqueue polices against the per-flow bucket while limiting, then FIFOs.
func (s *Strawman) Enqueue(p *packet.Packet) bool {
	if s.bytesQueued+int(p.Size) > s.bufferBytes {
		s.Stats.BufferDrops++
		return false
	}
	if s.limiting && p.IsData() {
		now := s.eng.Now()
		b := s.buckets[p.Flow]
		if b == nil {
			// Burst allowance of one interval's worth.
			b = &tokenBucket{tokens: s.limitRate * s.Interval.Seconds(), lastAt: now}
			s.buckets[p.Flow] = b
		}
		// Lazy per-bucket refill.
		b.tokens += s.limitRate * (now - b.lastAt).Seconds()
		b.lastAt = now
		if cap := s.limitRate * s.Interval.Seconds(); b.tokens > cap {
			b.tokens = cap
		}
		if b.tokens < float64(p.Size) {
			s.Stats.LBFDrops++ // policing drop
			return false
		}
		b.tokens -= float64(p.Size)
	}
	s.bytesQueued += int(p.Size)
	s.Stats.Enqueued++
	s.fifo.push(p)
	return true
}

// Dequeue serves FIFO and performs egress accounting.
func (s *Strawman) Dequeue() *packet.Packet {
	p := s.fifo.pop()
	if p == nil {
		return nil
	}
	s.bytesQueued -= int(p.Size)
	s.txBytes += uint64(p.Size)
	s.Stats.TxPackets++
	s.Stats.TxBytes += uint64(p.Size)
	s.cache.Observe(p.Flow, int64(p.Size))
	return p
}

// Len returns the queued packet count.
func (s *Strawman) Len() int { return s.fifo.len() }

// BytesQueued returns the buffered byte total.
func (s *Strawman) BytesQueued() int { return s.bytesQueued }
