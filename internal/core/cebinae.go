package core

import (
	"fmt"
	"sort"

	"cebinae/internal/hhcache"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Flow groups: the LBF tracks exactly two (paper §4.3) — unbottlenecked (⊥)
// and bottlenecked (⊤).
const (
	groupBottom = 0 // ⊥
	groupTop    = 1 // ⊤
	numGroups   = 2
)

// Stats aggregates Cebinae data-plane and control-plane counters.
type Stats struct {
	Enqueued      uint64
	BufferDrops   uint64 // physical buffer exhaustion
	LBFDrops      uint64 // past-tail drops (rate enforcement)
	Delayed       uint64 // packets scheduled into ¬headq
	ECNMarked     uint64
	Rotations     uint64
	Recomputes    uint64
	PhaseChanges  uint64
	SaturatedTime sim.Time // cumulative time spent in the saturated phase
	TxPackets     uint64
	TxBytes       uint64
}

// Qdisc is Cebinae's per-port data plane plus its control-plane agent,
// packaged as a netem-compatible queue discipline. One Qdisc guards one
// egress port (device).
type Qdisc struct {
	eng         *sim.Engine
	params      Params
	capacityBps float64 // link rate, bits/second
	bufferBytes int

	// Two physical queues; headq indexes the high-priority one.
	queues      [2]pktRing
	headq       int
	bytesQueued int

	// LBF state (Fig. 5). Byte counters are float64 to carry fractional
	// rate×time products exactly.
	saturated     bool
	baseRoundTime sim.Time
	roundTime     sim.Time
	groupBytes    [numGroups]float64
	totalBytes    float64 // aggregate counter (phase-change filter, §4.3)
	// qrate[q][g] is the allocation (bytes/second) of group g in physical
	// queue q; a queue's rates are fixed while it drains.
	qrate [2][numGroups]float64

	// Bottlenecked-flow membership (the ⊤ match-action table).
	topSet map[packet.FlowKey]bool
	// topState holds per-⊤-flow banks/allowances when Params.PerFlowTop is
	// enabled (§7 extension).
	topState map[packet.FlowKey]*topFlowState

	// Egress-pipeline accounting.
	cache        *hhcache.Cache
	portTxBytes  uint64
	lastTxBytes  uint64 // snapshot at last recomputation
	roundsSoFar  int
	pendingRates *pendingConfig

	// rotTimer / cfgTimer drive the control loop: one ROTATE per dT and
	// one configuration window vdT+L after it (never overlapping, since
	// Params.Validate requires vdT+L < dT).
	rotTimer sim.Timer
	cfgTimer sim.Timer

	// OnDrain, when set, is invoked after rotations (which can un-gate the
	// future queue) so an idle device resumes transmission; wire it to the
	// owning netem Device's Kick.
	OnDrain func()

	// ConfigChanges counts applied shadow configurations that actually
	// altered the installed state (phase, ⊤ membership, or rates). The
	// fluid fast-forward layer watches it as a discontinuity signal: a
	// steady-state recompute re-deriving identical allocations is benign,
	// anything else forces packet-level re-detection. Kept outside Stats
	// so existing %+v report lines stay byte-identical.
	ConfigChanges uint64

	Stats Stats
}

// pendingConfig is the shadow copy the control plane computes during a
// recomputation and applies at the next configuration window.
type pendingConfig struct {
	saturated bool
	topSet    map[packet.FlowKey]bool
	rates     [numGroups]float64 // bytes/second
	topShare  float64            // ⊤ fraction of capacity (phase-entry split)
	// flowRates carries per-⊤-flow allowances in PerFlowTop mode.
	flowRates map[packet.FlowKey]float64
}

// New creates a Cebinae qdisc for a port of the given capacity and buffer
// and starts its control-plane agent on eng. It panics on invalid Params
// (use Params.Validate to check first).
func New(eng *sim.Engine, capacityBps float64, bufferBytes int, params Params) *Qdisc {
	if err := params.Validate(capacityBps, bufferBytes); err != nil {
		panic(err)
	}
	q := &Qdisc{
		eng:         eng,
		params:      params,
		capacityBps: capacityBps,
		bufferBytes: bufferBytes,
		topSet:      make(map[packet.FlowKey]bool),
		topState:    make(map[packet.FlowKey]*topFlowState),
		cache:       hhcache.New(params.CacheStages, params.CacheSlots),
	}
	capBytes := capacityBps / 8
	for i := 0; i < 2; i++ {
		q.qrate[i][groupBottom] = capBytes
		q.qrate[i][groupTop] = capBytes
	}
	// Bootstrap the rotation clock: the first ROTATE packet sets the time
	// origin (§4.3); here rotations land on multiples of dT.
	q.baseRoundTime = eng.Now() & ^(params.DT - 1)
	q.roundTime = q.baseRoundTime
	q.scheduleRotation()
	return q
}

// Params returns the configured parameters.
func (q *Qdisc) Params() Params { return q.params }

// Saturated reports the current phase.
func (q *Qdisc) Saturated() bool { return q.saturated }

// TopFlows returns a copy of the current bottlenecked (⊤) flow set in
// canonical 5-tuple order, so monitors and reports printing it emit
// identical lines on every run.
func (q *Qdisc) TopFlows() []packet.FlowKey {
	out := make([]packet.FlowKey, 0, len(q.topSet))
	for f := range q.topSet {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
	return out
}

// cebRotate / cebConfigure are the control loop's timer handlers: named
// pointer types over Qdisc, so the per-round rescheduling allocates no
// closures. The configure timer's payload carries the recompute flag
// (boolean boxing is allocation-free).
type (
	cebRotate    Qdisc
	cebConfigure Qdisc
)

func (h *cebRotate) OnEvent(any) { (*Qdisc)(h).rotate() }
func (h *cebConfigure) OnEvent(arg any) {
	(*Qdisc)(h).configure(arg.(bool))
}

// scheduleRotation arms the next ROTATE at the next dT boundary. The
// rotation is a pinned deadline: it is the mandatory discontinuity the
// fluid fast-forward layer must fall back to packet level for, so a
// clock skip can never jump across it (sim.Engine.FastForward).
func (q *Qdisc) scheduleRotation() {
	next := (q.eng.Now()/q.params.DT + 1) * q.params.DT
	q.eng.ArmPinnedTimerAt(&q.rotTimer, next, (*cebRotate)(q), nil)
}

// rotate is the ROTATE packet handler (Fig. 5 lines 9–13): retire the
// finished round's allowances, advance the round origin, and swap queue
// priorities. The configuration window follows vdT+L later.
func (q *Qdisc) rotate() {
	dtSec := q.params.DT.Seconds()
	last := q.qrate[q.headq]
	for g := 0; g < numGroups; g++ {
		q.groupBytes[g] -= last[g] * dtSec
		if q.groupBytes[g] < 0 {
			q.groupBytes[g] = 0
		}
	}
	q.totalBytes -= (q.capacityBps / 8) * dtSec
	if q.totalBytes < 0 {
		q.totalBytes = 0
	}
	if q.params.PerFlowTop {
		q.perFlowRotate(dtSec)
	}
	q.baseRoundTime += q.params.DT
	if q.roundTime < q.baseRoundTime {
		q.roundTime = q.baseRoundTime
	}
	q.headq ^= 1
	q.Stats.Rotations++
	q.roundsSoFar++

	if q.saturated {
		q.Stats.SaturatedTime += q.params.DT
	}

	recompute := q.roundsSoFar%q.params.P == 0
	// Pinned like the rotation: the configuration window must execute at
	// packet level at its exact instant.
	q.eng.ArmPinnedTimer(&q.cfgTimer, q.params.VDT+q.params.L, (*cebConfigure)(q), recompute)
	q.scheduleRotation()
	if q.OnDrain != nil {
		q.OnDrain()
	}
}

// configure is the control-plane configuration window (Fig. 6, solid red
// span): apply the shadow config computed at the previous recomputation,
// then — every P rounds — poll the data plane and compute the next one.
func (q *Qdisc) configure(recompute bool) {
	if q.pendingRates != nil {
		q.apply(q.pendingRates)
		q.pendingRates = nil
	}
	if recompute {
		q.pendingRates = q.recompute()
	}
	if q.OnDrain != nil {
		q.OnDrain() // a phase change may have un-gated the future queue
	}
}

// apply installs a shadow configuration: membership, the future queue's
// rates, and phase changes (all within the single-queue window, so no
// reordering — §4.3).
func (q *Qdisc) apply(cfg *pendingConfig) {
	wasSaturated := q.saturated
	if q.configDiffers(cfg) {
		q.ConfigChanges++
	}
	q.topSet = cfg.topSet
	if q.params.PerFlowTop {
		q.applyPerFlow(cfg.flowRates)
	}
	// Rates bind to the queue currently accumulating the *next* round.
	q.qrate[1-q.headq] = cfg.rates
	// The draining queue keeps serving at its fixed rates; on the very
	// first configuration after a phase change both queues adopt the new
	// rates (wholesale change, §4.3 "phase changes").
	if cfg.saturated != wasSaturated {
		q.qrate[q.headq] = cfg.rates
		q.Stats.PhaseChanges++
		q.saturated = cfg.saturated
		if cfg.saturated {
			// Entering saturation: split the aggregate counter between the
			// groups proportionally to their allocations (§4.3).
			q.groupBytes[groupTop] = q.totalBytes * cfg.topShare
			q.groupBytes[groupBottom] = q.totalBytes * (1 - cfg.topShare)
		}
	}
}

// configDiffers reports whether installing cfg would change the visible
// control state: the phase, the ⊤ membership, or the next round's rates.
// The membership check is a pure set-equality test, so map iteration
// order cannot affect the result.
func (q *Qdisc) configDiffers(cfg *pendingConfig) bool {
	if cfg.saturated != q.saturated || len(cfg.topSet) != len(q.topSet) {
		return true
	}
	for f := range cfg.topSet {
		if !q.topSet[f] {
			return true
		}
	}
	return cfg.rates != q.qrate[1-q.headq]
}

// recompute is the periodic (every P rounds) control-plane computation of
// Fig. 4: port saturation, ⊤ membership, and taxed rate allocations.
func (q *Qdisc) recompute() *pendingConfig {
	q.Stats.Recomputes++
	interval := (q.params.DT * sim.Time(q.params.P)).Seconds()
	capBytes := q.capacityBps / 8

	txDelta := q.portTxBytes - q.lastTxBytes
	q.lastTxBytes = q.portTxBytes
	entries := q.cache.Poll()

	utilisation := float64(txDelta) / (capBytes * interval)
	cfg := &pendingConfig{topSet: make(map[packet.FlowKey]bool)}
	debugRecompute(utilisation, len(entries), !(utilisation < 1-q.params.DeltaPort || len(entries) == 0))
	if utilisation < 1-q.params.DeltaPort || len(entries) == 0 {
		// Unsaturated: no flow is bottlenecked here; the single aggregate
		// group passes at full capacity.
		cfg.saturated = false
		cfg.rates = [numGroups]float64{capBytes, capBytes}
		cfg.topShare = 0
		return cfg
	}

	var maxBytes int64
	for _, e := range entries {
		if e.Bytes > maxBytes {
			maxBytes = e.Bytes
		}
	}
	threshold := float64(maxBytes) * (1 - q.params.DeltaFlow)
	var bottleneckBytes float64
	cfg.flowRates = make(map[packet.FlowKey]float64)
	for _, e := range entries {
		if float64(e.Bytes) >= threshold {
			cfg.topSet[e.Flow] = true
			bottleneckBytes += float64(e.Bytes)
			cfg.flowRates[e.Flow] = (1 - q.params.Tau) * float64(e.Bytes) / interval
		}
	}
	bottleneckBytes *= 1 - q.params.Tau

	topRate := bottleneckBytes / interval
	if topRate > capBytes {
		topRate = capBytes
	}
	botRate := capBytes - bottleneckBytes/interval
	if botRate < 0 {
		botRate = 0
	}
	cfg.saturated = true
	cfg.rates = [numGroups]float64{groupBottom: botRate, groupTop: topRate}
	cfg.topShare = topRate / capBytes
	return cfg
}

// advanceVirtualRound implements Fig. 5 lines 15–16: quantise time into vdT
// buckets, advancing the per-round clock.
func (q *Qdisc) advanceVirtualRound(now sim.Time) {
	if now >= q.roundTime+q.params.VDT {
		q.roundTime = now & ^(q.params.VDT - 1)
	}
}

// aggregateSize computes the paced allowance floor for group rates
// (rHead, rTail) at the current position within the round (Fig. 5 lines
// 17–22): credit accrues per virtual round instead of all at once, which
// bounds catch-up bursts.
func (q *Qdisc) aggregateSize(rHead, rTail float64) float64 {
	rel := (q.roundTime - q.baseRoundTime) / q.params.VDT
	perRound := q.params.DT / q.params.VDT
	vdtSec := q.params.VDT.Seconds()
	switch {
	case rel < perRound: // within headq's round
		return rHead * float64(rel) * vdtSec
	case rel < 2*perRound: // spilled into ¬headq's round
		return rHead*q.params.DT.Seconds() + float64(rel-perRound)*vdtSec*rTail
	default:
		// Should not happen (rotation keeps rel < 2·dT/vdT); saturate.
		return rHead*q.params.DT.Seconds() + rTail*q.params.DT.Seconds()
	}
}

// Enqueue classifies and admits/schedules/drops one packet (netem.Qdisc).
func (q *Qdisc) Enqueue(p *packet.Packet) bool {
	if q.bytesQueued+int(p.Size) > q.bufferBytes {
		q.Stats.BufferDrops++
		if DebugDropHook != nil {
			DebugDropHook("buffer", p.Flow.SrcPort)
		}
		return false
	}
	q.advanceVirtualRound(q.eng.Now())
	dtSec := q.params.DT.Seconds()
	capBytes := q.capacityBps / 8

	// Byte counters are charged only for *admitted* packets: a dropped
	// packet consumes no allowance. (Charging before the decision, as a
	// literal reading of Fig. 5 suggests, would let sustained overload pin
	// the counter past the drop threshold indefinitely — nothing forwarded
	// yet the bank never drains — collapsing the port into drop-all.)
	aggAll := q.aggregateSize(capBytes, capBytes)
	totalAfter := q.totalBytes
	if totalAfter < aggAll {
		totalAfter = aggAll
	}
	totalAfter += float64(p.Size)

	if !q.saturated {
		// Unsaturated phase: the aggregate filter at full capacity only
		// trips on bursts beyond two full rounds, which the buffer bound
		// (Eq. 2) makes unreachable before a physical drop; in practice
		// this is pass-through into the current queue.
		pastHead := totalAfter - capBytes*dtSec
		target := q.headq
		if pastHead > 0 {
			if pastHead-capBytes*dtSec > 0 {
				q.Stats.LBFDrops++
				if DebugDropHook != nil {
					DebugDropHook("lbf", p.Flow.SrcPort)
				}
				return false
			}
			target = 1 - q.headq
			q.Stats.Delayed++
		}
		q.totalBytes = totalAfter
		q.push(target, p)
		return true
	}

	if q.params.PerFlowTop {
		if q.topSet[p.Flow] {
			return q.perFlowEnqueue(p, totalAfter)
		}
		return q.bottomEnqueue(p, totalAfter)
	}

	g := groupBottom
	if q.topSet[p.Flow] {
		g = groupTop
	}
	rHead := q.qrate[q.headq][g]
	rTail := q.qrate[1-q.headq][g]
	agg := q.aggregateSize(rHead, rTail)
	groupAfter := q.groupBytes[g]
	if groupAfter < agg {
		groupAfter = agg
	}
	groupAfter += float64(p.Size)

	pastHead := groupAfter - rHead*dtSec
	pastTail := pastHead - rTail*dtSec
	switch {
	case pastHead <= 0:
		q.totalBytes = totalAfter
		q.groupBytes[g] = groupAfter
		q.push(q.headq, p)
	case pastTail <= 0:
		// Delayed into the lower-priority queue; optionally mark ECN as
		// the pre-loss congestion signal (Fig. 5 line 26).
		if q.params.MarkECN && p.ECN == packet.ECNECT {
			p.ECN = packet.ECNCE
			q.Stats.ECNMarked++
		}
		q.Stats.Delayed++
		q.totalBytes = totalAfter
		q.groupBytes[g] = groupAfter
		q.push(1-q.headq, p)
	default:
		q.Stats.LBFDrops++
		if DebugDropHook != nil {
			DebugDropHook("lbf", p.Flow.SrcPort)
		}
		return false
	}
	return true
}

func (q *Qdisc) push(target int, p *packet.Packet) {
	q.bytesQueued += int(p.Size)
	q.Stats.Enqueued++
	q.queues[target].push(p)
}

// Dequeue serves the current round's queue and performs the egress-pipeline
// accounting (port byte counter + heavy-hitter cache) on the transmitted
// packet.
//
// While the port is saturated, ¬headq is strictly gated until the next
// rotation: a packet scheduled into the future round must wait for that
// round, which is what actually caps a ⊤ group's forwarded rate at its
// allowance — and therefore what makes the τ tax compound across
// recomputations (measured rate ≈ allowance ⇒ next allowance ≈ (1−τ)·
// previous). A work-conserving dequeue would leak future-round packets
// early whenever headq drains and the tax would stall after one step. The
// idle time this introduces is the headroom Cebinae deliberately maintains
// for ⊥ flows to grow into. When unsaturated the discipline is work-
// conserving.
func (q *Qdisc) Dequeue() *packet.Packet {
	p := q.queues[q.headq].pop()
	if p == nil && !q.saturated {
		p = q.queues[1-q.headq].pop()
	}
	if p == nil {
		return nil
	}
	q.bytesQueued -= int(p.Size)
	q.portTxBytes += uint64(p.Size)
	q.Stats.TxPackets++
	q.Stats.TxBytes += uint64(p.Size)
	q.cache.Observe(p.Flow, int64(p.Size))
	return p
}

// Len returns the number of queued packets.
func (q *Qdisc) Len() int { return q.queues[0].len() + q.queues[1].len() }

// BytesQueued returns the buffered byte total.
func (q *Qdisc) BytesQueued() int { return q.bytesQueued }

func (q *Qdisc) String() string {
	return fmt.Sprintf("cebinae{sat=%v top=%d head=%d qlen=%d}", q.saturated, len(q.topSet), q.headq, q.Len())
}

// pktRing is a growable FIFO ring of packets (duplicated from
// internal/qdisc to keep the packages decoupled).
type pktRing struct {
	buf        []*packet.Packet
	head, tail int
	count      int
}

func (r *pktRing) len() int { return r.count }

func (r *pktRing) push(p *packet.Packet) {
	if r.count == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 16
		}
		buf := make([]*packet.Packet, size)
		for i := 0; i < r.count; i++ {
			buf[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = buf
		r.head = 0
		r.tail = r.count
	}
	r.buf[r.tail] = p
	r.tail = (r.tail + 1) % len(r.buf)
	r.count++
}

func (r *pktRing) pop() *packet.Packet {
	if r.count == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return p
}
