package core

import (
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Fluid fast-forward support: when the engine skips a quiescent stretch
// (internal/fluid), the Cebinae control plane keeps firing at its pinned
// rotation/configure deadlines, but no packets traverse the data plane in
// between. FluidAdvance replays the egress-pipeline accounting those
// packets would have performed, so the next recompute polls a
// heavy-hitter cache and port counter that look exactly like steady
// traffic; ShiftTime keeps the frozen queue contents self-consistent.

// FlowBytes is one flow's share of a fluid-advanced stretch, in wire
// bytes and packets. Callers pass a deterministically ordered slice.
type FlowBytes struct {
	Flow    packet.FlowKey
	Bytes   int64
	Packets uint64
}

// FluidAdvance credits one skipped stretch's worth of steady traffic
// through the qdisc as Enqueue and Dequeue would have, in aggregate:
// per-flow heavy-hitter observations, the port TX counter the
// utilisation test reads, TX stats, and the LBF byte banks (which the
// next rotation decays by a full round's allowance — without the credit
// they would under-run and distort the first packet-level round after
// re-entry). The control-plane clocks (baseRoundTime/roundTime) are not
// touched: rotations fire on their absolute schedule during skips.
func (q *Qdisc) FluidAdvance(flows []FlowBytes) {
	var total int64
	var pkts uint64
	for i := range flows {
		f := &flows[i]
		if f.Bytes <= 0 {
			continue
		}
		q.cache.Observe(f.Flow, f.Bytes)
		g := groupBottom
		if q.topSet[f.Flow] {
			g = groupTop
		}
		q.groupBytes[g] += float64(f.Bytes)
		if q.params.PerFlowTop && g == groupTop {
			if st := q.topState[f.Flow]; st != nil {
				st.bytes += float64(f.Bytes)
			}
		}
		total += f.Bytes
		pkts += f.Packets
	}
	q.totalBytes += float64(total)
	q.portTxBytes += uint64(total)
	q.Stats.TxBytes += uint64(total)
	q.Stats.TxPackets += pkts
	q.Stats.Enqueued += pkts
}

// ShiftTime translates the enqueue stamps of every buffered packet by d
// (fluid fast-forward re-entry). The LBF banks and round clocks are
// real-time anchored — baseRoundTime advances with the pinned rotations —
// so only the frozen packets themselves carry stale stamps.
func (q *Qdisc) ShiftTime(d sim.Time) {
	for i := range q.queues {
		r := &q.queues[i]
		for j := 0; j < r.count; j++ {
			r.buf[(r.head+j)%len(r.buf)].ShiftTime(d)
		}
	}
}
