package core_test

import (
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

func fluidKey(port uint16) packet.FlowKey {
	return packet.FlowKey{Src: 1, Dst: 2, SrcPort: port, DstPort: 80, Proto: packet.ProtoTCP}
}

// TestFluidAdvanceCreditsCounters: a fluid-advanced stretch must land in
// exactly the counters Enqueue+Dequeue would have fed — port TX, stats,
// and the heavy-hitter observations — and non-positive shares must be
// ignored entirely (a flow that moved nothing contributes neither bytes
// nor packets).
func TestFluidAdvanceCreditsCounters(t *testing.T) {
	eng := sim.NewEngine()
	q := core.New(eng, 100e6, 375000, core.DefaultParams(100e6, 375000, sim.Duration(40e6)))
	q.FluidAdvance([]core.FlowBytes{
		{Flow: fluidKey(1), Bytes: 1_500_000, Packets: 1000},
		{Flow: fluidKey(2), Bytes: 0, Packets: 7},
		{Flow: fluidKey(2), Bytes: -3, Packets: 9},
		{Flow: fluidKey(3), Bytes: 750_000, Packets: 500},
	})
	st := q.Stats
	if st.TxBytes != 2_250_000 || st.TxPackets != 1500 || st.Enqueued != 1500 {
		t.Fatalf("credited stats = tx %d B / %d pkts, enq %d; want 2250000 / 1500 / 1500",
			st.TxBytes, st.TxPackets, st.Enqueued)
	}
	// A second stretch accumulates rather than overwrites.
	q.FluidAdvance([]core.FlowBytes{{Flow: fluidKey(1), Bytes: 1500, Packets: 1}})
	if q.Stats.TxBytes != 2_251_500 || q.Stats.TxPackets != 1501 {
		t.Fatalf("second advance did not accumulate: %+v", q.Stats)
	}
	if len(q.TopFlows()) != 0 {
		t.Fatalf("fluid credit alone must not invent a ⊤ set: %v", q.TopFlows())
	}
}

// TestShiftTimeKeepsQueueConsistent: translating the frozen packets'
// enqueue stamps at fast-forward re-entry must leave the buffered
// contents intact — every packet still dequeues, in order, with byte
// gauges consistent.
func TestShiftTimeKeepsQueueConsistent(t *testing.T) {
	eng := sim.NewEngine()
	q := core.New(eng, 100e6, 375000, core.DefaultParams(100e6, 375000, sim.Duration(40e6)))
	const n = 8
	for i := 0; i < n; i++ {
		p := &packet.Packet{Flow: fluidKey(uint16(i % 2)), Size: 1500, PayloadSize: 1448}
		if !q.Enqueue(p) {
			t.Fatalf("enqueue %d refused with an empty buffer", i)
		}
	}
	if q.BytesQueued() != n*1500 {
		t.Fatalf("BytesQueued = %d, want %d", q.BytesQueued(), n*1500)
	}
	q.ShiftTime(sim.Duration(250e6))
	got := 0
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		got++
	}
	if got != n || q.Len() != 0 || q.BytesQueued() != 0 {
		t.Fatalf("after shift: dequeued %d of %d, len %d, bytes %d", got, n, q.Len(), q.BytesQueued())
	}
	if q.Params().DT == 0 {
		t.Fatal("Params lost the configured rotation period")
	}
	if q.String() == "" {
		t.Fatal("empty String()")
	}
}
