package core

import (
	"testing"
	"testing/quick"

	"cebinae/internal/sim"
)

func TestDefaultParamsValid(t *testing.T) {
	cases := []struct {
		bps    float64
		buffer int
		rtt    sim.Time
	}{
		{100e6, 250 * 1500, sim.Duration(28e6)},
		{100e6, 1700 * 1500, sim.Duration(200e6)},
		{1e9, 8500 * 1500, sim.Duration(100e6)},
		{10e9, 41667 * 1500, sim.Duration(50e6)},
		{400e6, 3 << 20, sim.Duration(256e6)},
	}
	for _, c := range cases {
		p := DefaultParams(c.bps, c.buffer, c.rtt)
		if err := p.Validate(c.bps, c.buffer); err != nil {
			t.Fatalf("DefaultParams(%v,%v,%v) invalid: %v", c.bps, c.buffer, c.rtt, err)
		}
		if p.DT*sim.Time(p.P) < c.rtt {
			t.Fatalf("P·dT (%v) must cover maxRTT (%v)", p.DT*sim.Time(p.P), c.rtt)
		}
	}
}

// TestDefaultParamsProperty: for arbitrary reasonable inputs the derived
// parameters always validate and satisfy Eq. 2.
func TestDefaultParamsProperty(t *testing.T) {
	f := func(bwMbps uint16, bufKB uint16, rttMS uint8) bool {
		bps := float64(bwMbps%10000+1) * 1e6
		buffer := (int(bufKB%60000) + 2) * 1024
		rtt := sim.Duration(1e6) * sim.Time(rttMS%250+1)
		p := DefaultParams(bps, buffer, rtt)
		return p.Validate(bps, buffer) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := DefaultParams(100e6, 250*1500, sim.Duration(28e6))
	check := func(name string, mutate func(p *Params)) {
		p := base
		mutate(&p)
		if err := p.Validate(100e6, 250*1500); err == nil {
			t.Fatalf("%s: expected validation error", name)
		}
	}
	check("non-pow2 dT", func(p *Params) { p.DT = p.DT + 1 })
	check("vdT >= dT", func(p *Params) { p.VDT = p.DT })
	check("negative L", func(p *Params) { p.L = -1 })
	check("L too large", func(p *Params) { p.L = p.DT })
	check("zero deltaPort", func(p *Params) { p.DeltaPort = 0 })
	check("tau > 1", func(p *Params) { p.Tau = 1.5 })
	check("zero P", func(p *Params) { p.P = 0 })
	check("dT below Eq.2", func(p *Params) { p.DT = 1 << 10; p.VDT = 1 << 8; p.L = 0 })
	check("bad cache slots", func(p *Params) { p.CacheSlots = 100 })
	check("no cache stages", func(p *Params) { p.CacheStages = 0 })
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on invalid params")
		}
	}()
	p := DefaultParams(100e6, 250*1500, sim.Duration(28e6))
	p.DT = 3 // not a power of two
	New(sim.NewEngine(), 100e6, 250*1500, p)
}
