package core_test

import (
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

// cbr injects fixed-size packets for one flow at a constant bit rate.
type cbr struct {
	eng   *sim.Engine
	node  *netem.Node
	key   packet.FlowKey
	bps   float64
	size  int32
	ecn   bool
	Sent  uint64
	event *sim.Event
}

func startCBR(eng *sim.Engine, node *netem.Node, key packet.FlowKey, bps float64, ecn bool) *cbr {
	c := &cbr{eng: eng, node: node, key: key, bps: bps, size: 1500, ecn: ecn}
	c.tick()
	return c
}

func (c *cbr) tick() {
	p := &packet.Packet{Flow: c.key, Size: c.size, PayloadSize: c.size - packet.HeaderBytes}
	if c.ecn {
		p.ECN = packet.ECNECT
	}
	c.node.Inject(p)
	c.Sent++
	gap := sim.Time(float64(c.size*8) / c.bps * 1e9)
	c.event = c.eng.Schedule(gap, c.tick)
}

func (c *cbr) stop() { c.eng.Cancel(c.event) }

// rig is a one-link testbed: src --[capacity, Cebinae]--> dst with counting
// sinks per flow.
type rig struct {
	eng   *sim.Engine
	src   *netem.Node
	dst   *netem.Node
	dev   *netem.Device
	ceb   *core.Qdisc
	rx    map[packet.FlowKey]*uint64
	rxAll uint64
}

type countSink struct {
	n   *uint64
	all *uint64
}

func (s countSink) Deliver(p *packet.Packet) { *s.n++; *s.all++ }

func buildRig(t *testing.T, capacityBps float64, buffer int, params core.Params) *rig {
	t.Helper()
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	src, dst := w.NewNode("src"), w.NewNode("dst")
	dev, rev := w.Connect(src, dst, netem.LinkConfig{RateBps: capacityBps, Delay: sim.Duration(100e3)})
	ceb := core.New(eng, capacityBps, buffer, params)
	dev.SetQdisc(ceb)
	ceb.OnDrain = dev.Kick
	rev.SetQdisc(qdisc.NewFIFO(1 << 20))
	src.AddRoute(dst.ID, dev)
	return &rig{eng: eng, src: src, dst: dst, dev: dev, ceb: ceb, rx: map[packet.FlowKey]*uint64{}}
}

func (r *rig) flowKey(i int) packet.FlowKey {
	key := packet.FlowKey{Src: r.src.ID, Dst: r.dst.ID, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
	if _, ok := r.rx[key]; !ok {
		var n uint64
		r.rx[key] = &n
		r.dst.Register(key, countSink{&n, &r.rxAll})
	}
	return key
}

// testParams builds small-round parameters for a fast 200 Mbps rig.
func testParams() core.Params {
	return core.Params{
		DeltaPort:   0.01,
		DeltaFlow:   0.01,
		Tau:         0.05,
		P:           2,
		L:           1 << 14, // ~16 µs
		DT:          1 << 22, // ~4.2 ms
		VDT:         1 << 16,
		MarkECN:     true,
		CacheStages: 2,
		CacheSlots:  256,
	}
}

const rigBps = 200e6
const rigBuffer = 64 * 1500 // well within Eq.2 for dT ≈ 4.2 ms at 200 Mbps

func TestUnsaturatedPassThrough(t *testing.T) {
	r := buildRig(t, rigBps, rigBuffer, testParams())
	// 40 Mbps on a 200 Mbps link: far below saturation.
	g := startCBR(r.eng, r.src, r.flowKey(1), 40e6, false)
	r.eng.Run(sim.Duration(1e9))
	g.stop()
	if r.ceb.Saturated() {
		t.Fatal("port must stay unsaturated at 20% load")
	}
	if got := len(r.ceb.TopFlows()); got != 0 {
		t.Fatalf("no flow may be classified ⊤ on an unsaturated port: %d", got)
	}
	if r.ceb.Stats.LBFDrops != 0 || r.ceb.Stats.BufferDrops != 0 {
		t.Fatalf("no drops expected: %+v", r.ceb.Stats)
	}
	if lost := g.Sent - r.rxAll; lost > 2 {
		t.Fatalf("pass-through lost %d packets", lost)
	}
}

func TestSaturationDetectionAndTopClassification(t *testing.T) {
	r := buildRig(t, rigBps, rigBuffer, testParams())
	big := r.flowKey(1)
	small := r.flowKey(2)
	startCBR(r.eng, r.src, big, 150e6, false)
	startCBR(r.eng, r.src, small, 60e6, false)
	// Blind CBR flows never "reclaim" released capacity the way TCP does,
	// so the saturated phase flaps as taxes bite and release; sample the ⊤
	// classification across rounds rather than at one instant.
	bigTop, smallTop, satSamples := 0, 0, 0
	for i := 1; i <= 100; i++ {
		r.eng.At(sim.Time(i)*sim.Duration(10e6), func() {
			if r.ceb.Saturated() {
				satSamples++
			}
			for _, f := range r.ceb.TopFlows() {
				if f == big {
					bigTop++
				}
				if f == small {
					smallTop++
				}
			}
		})
	}
	r.eng.Run(sim.Duration(1e9))
	if satSamples < 20 {
		t.Fatalf("210 Mbps offered on 200 Mbps must spend substantial time saturated: %d/100", satSamples)
	}
	if bigTop < 20 {
		t.Fatalf("the 150 Mbps flow must be classified ⊤ while saturated: %d/100", bigTop)
	}
	if smallTop > bigTop/4 {
		t.Fatalf("the 60 Mbps flow must (almost) never be ⊤: big=%d small=%d", bigTop, smallTop)
	}
}

func TestTieredFlowsBothTop(t *testing.T) {
	p := testParams()
	p.DeltaFlow = 0.1 // flows within 10% of max are ⊤
	r := buildRig(t, rigBps, rigBuffer, p)
	startCBR(r.eng, r.src, r.flowKey(1), 105e6, false)
	startCBR(r.eng, r.src, r.flowKey(2), 100e6, false)
	both, one := 0, 0
	for i := 1; i <= 100; i++ {
		r.eng.At(sim.Time(i)*sim.Duration(10e6), func() {
			switch len(r.ceb.TopFlows()) {
			case 2:
				both++
			case 1:
				one++
			}
		})
	}
	r.eng.Run(sim.Duration(1e9))
	if both < 10 || both < one {
		t.Fatalf("with δf=10%% the two near-equal flows should usually be ⊤ together: both=%d one=%d", both, one)
	}
}

// TestBlindOverloadIsPenalised: a single blind (non-congestion-controlled)
// CBR flow exceeding capacity is classified ⊤ and pays: LBF drops appear,
// the forwarded rate is held at or below capacity, and tax episodes pull
// the forwarded average visibly below the offered load (the paper notes
// blind UDP flows "waste bandwidth before being delayed and dropped").
func TestBlindOverloadIsPenalised(t *testing.T) {
	p := testParams()
	p.Tau = 0.10
	r := buildRig(t, rigBps, rigBuffer, p)
	g := startCBR(r.eng, r.src, r.flowKey(1), 220e6, false)
	dur := sim.Duration(1e9)
	r.eng.Run(dur)
	if r.ceb.Stats.LBFDrops+r.ceb.Stats.BufferDrops == 0 {
		t.Fatal("a blind overloading flow must suffer drops")
	}
	forwarded := float64(r.ceb.Stats.TxBytes) * 8 / dur.Seconds()
	if forwarded > rigBps*1.001 {
		t.Fatalf("forwarded %.1f Mbps exceeds capacity", forwarded/1e6)
	}
	offered := float64(g.Sent) * 1500 * 8 / dur.Seconds()
	if forwarded > 0.97*offered {
		t.Fatalf("taxes must visibly cut a blind flow: forwarded %.1f of offered %.1f Mbps", forwarded/1e6, offered/1e6)
	}
	if r.ceb.Stats.SaturatedTime == 0 {
		t.Fatal("the port must have entered the saturated phase")
	}
}

// TestBottomFlowsProtected: while a ⊤ flow is being taxed, the LBF itself
// must never drop a compliant ⊥ flow's packets (the "never make unfairness
// worse" goal). Shared-buffer tail drops caused by a blind ⊤ hog are a
// physical artifact the paper defers to admission control, so they are
// bounded but not required to be zero here.
func TestBottomFlowsProtected(t *testing.T) {
	lbfDrops := map[uint16]int{}
	core.DebugDropHook = func(kind string, port uint16) {
		if kind == "lbf" {
			lbfDrops[port]++
		}
	}
	defer func() { core.DebugDropHook = nil }()

	r := buildRig(t, rigBps, rigBuffer, testParams())
	startCBR(r.eng, r.src, r.flowKey(1), 190e6, false) // will be ⊤
	small := startCBR(r.eng, r.src, r.flowKey(2), 20e6, false)
	r.eng.Run(sim.Duration(2e9))
	if r.ceb.Stats.SaturatedTime == 0 {
		t.Fatal("the port must have spent time saturated")
	}
	if lbfDrops[2] != 0 {
		t.Fatalf("the LBF dropped %d packets of the compliant ⊥ flow", lbfDrops[2])
	}
	got := *r.rx[r.flowKey(2)]
	if frac := float64(got) / float64(small.Sent); frac < 0.75 {
		t.Fatalf("⊥ flow delivered only %.0f%% of its packets", frac*100)
	}
}

func TestECNMarkingOnDelayedPackets(t *testing.T) {
	r := buildRig(t, rigBps, rigBuffer, testParams())
	startCBR(r.eng, r.src, r.flowKey(1), 215e6, true) // ECT overload
	r.eng.Run(sim.Duration(1e9))
	if r.ceb.Stats.ECNMarked == 0 {
		t.Fatal("delayed ECT packets must be CE-marked")
	}
}

func TestECNMarkingDisabled(t *testing.T) {
	p := testParams()
	p.MarkECN = false
	r := buildRig(t, rigBps, rigBuffer, p)
	startCBR(r.eng, r.src, r.flowKey(1), 215e6, true)
	r.eng.Run(sim.Duration(1e9))
	if r.ceb.Stats.ECNMarked != 0 {
		t.Fatal("MarkECN=false must not mark")
	}
}

func TestBufferDropsAccounted(t *testing.T) {
	p := testParams()
	r := buildRig(t, rigBps, 8*1500, p) // tiny buffer
	startCBR(r.eng, r.src, r.flowKey(1), 400e6, false)
	r.eng.Run(sim.Duration(200e6))
	if r.ceb.Stats.BufferDrops == 0 {
		t.Fatal("2× overload into a tiny buffer must tail-drop")
	}
}

func TestRotationCadence(t *testing.T) {
	p := testParams()
	r := buildRig(t, rigBps, rigBuffer, p)
	startCBR(r.eng, r.src, r.flowKey(1), 100e6, false)
	dur := sim.Duration(1e9)
	r.eng.Run(dur)
	want := uint64(dur / p.DT)
	got := r.ceb.Stats.Rotations
	if got < want-2 || got > want+2 {
		t.Fatalf("rotations = %d, want ≈%d (one per dT)", got, want)
	}
	wantRe := want / uint64(p.P)
	if re := r.ceb.Stats.Recomputes; re < wantRe-2 || re > wantRe+2 {
		t.Fatalf("recomputes = %d, want ≈%d (every P rounds)", re, wantRe)
	}
}

func TestPhaseChangeOnLoadDrop(t *testing.T) {
	r := buildRig(t, rigBps, rigBuffer, testParams())
	g := startCBR(r.eng, r.src, r.flowKey(1), 210e6, false)
	r.eng.At(sim.Duration(500e6), func() { g.stop() })
	r.eng.Run(sim.Duration(1e9))
	if r.ceb.Saturated() {
		t.Fatal("port must return to unsaturated after load stops")
	}
	if r.ceb.Stats.PhaseChanges < 2 {
		t.Fatalf("expected ≥2 phase changes, got %d", r.ceb.Stats.PhaseChanges)
	}
	if got := len(r.ceb.TopFlows()); got != 0 {
		t.Fatalf("⊤ set must clear on desaturation: %d", got)
	}
}

// TestWorkConservingWhenUnsaturated: a bursty on/off flow below average
// saturation must not be throttled by the round structure.
func TestWorkConservingWhenUnsaturated(t *testing.T) {
	r := buildRig(t, rigBps, rigBuffer, testParams())
	key := r.flowKey(1)
	// 50 packets back-to-back every 50 ms ⇒ ~12 Mbps average, bursty.
	var burst func()
	burst = func() {
		for i := 0; i < 50; i++ {
			r.src.Inject(&packet.Packet{Flow: key, Size: 1500, PayloadSize: 1448})
		}
		r.eng.Schedule(sim.Duration(50e6), burst)
	}
	r.eng.Schedule(0, burst)
	r.eng.Run(sim.Duration(1e9))
	sent := uint64(20 * 50)
	if lost := sent - r.rxAll; lost > 2 {
		t.Fatalf("bursty unsaturated traffic lost %d of %d", lost, sent)
	}
}
