package core_test

import (
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// TestCebinaeECNPathWithDCTCP drives an ECN-capable DCTCP flow against a
// NewReno flow through Cebinae: the LBF's CE marks on delayed packets
// (Fig. 5 line 26) must reach the DCTCP sender as ECN echoes and modulate
// its window — the pre-loss congestion signal the paper adds for
// delay/ECN-based algorithms.
func TestCebinaeECNPathWithDCTCP(t *testing.T) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	rate := 50e6
	buf := 420 * 1500
	var cq *core.Qdisc
	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       2,
		BottleneckBps:   rate,
		BottleneckDelay: sim.Duration(100e3),
		RTTs:            []sim.Time{sim.Duration(20e6)},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc {
			cq = core.New(eng, rate, buf, core.DefaultParams(rate, buf, sim.Duration(20e6)))
			cq.OnDrain = dev.Kick
			return cq
		},
		DefaultQdisc: func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})

	conns := make([]*tcp.Conn, 2)
	meters := make([]*metrics.FlowMeter, 2)
	recvs := make([]*tcp.Receiver, 2)
	for i, name := range []string{"dctcp", "newreno"} {
		cc, _ := tcp.NewCC(name)
		key := packet.FlowKey{Src: d.Senders[i].ID, Dst: d.Receivers[i].ID, SrcPort: 1, DstPort: uint16(100 + i), Proto: packet.ProtoTCP}
		conns[i] = tcp.NewConn(eng, d.Senders[i], tcp.Config{Key: key, CC: cc, ECN: name == "dctcp"})
		recvs[i] = tcp.NewReceiver(eng, d.Receivers[i], tcp.ReceiverConfig{Key: key})
		m := &metrics.FlowMeter{}
		recvs[i].GoodputAt = m.Record
		meters[i] = m
	}
	dur := sim.Duration(30e9)
	eng.Run(dur)

	if cq.Stats.ECNMarked == 0 {
		t.Fatalf("Cebinae should CE-mark delayed ECT packets: %+v", cq.Stats)
	}
	if recvs[0].Stats.CEMarks == 0 {
		t.Fatal("CE marks must survive to the receiver")
	}
	if conns[0].Stats.ECEReductions == 0 {
		t.Fatal("ECN echoes must reach the DCTCP sender")
	}
	// Both flows must still make solid progress.
	for i, m := range meters {
		if gp := m.RateOver(dur/3, dur) * 8; gp < 0.1*rate {
			t.Fatalf("flow %d starved: %.2f Mbps", i, gp/1e6)
		}
	}
}

// TestDCTCPAlphaTracksMarking: with every ACK carrying ECE, α must converge
// towards 1; with none, towards 0.
func TestDCTCPAlphaTracksMarking(t *testing.T) {
	cc, _ := tcp.NewCC("dctcp")
	d := cc.(*tcp.DCTCP)
	// Drive the estimator through the public OnAck/OnECE hooks on a
	// detached connection.
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	n := w.NewNode("x")
	key := packet.FlowKey{Src: n.ID, Dst: 99, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	conn := tcp.NewConn(eng, n, tcp.Config{Key: key, CC: cc, ECN: true})
	_ = conn

	// All marked: alpha → 1.
	for i := 0; i < 400; i++ {
		d.OnECE(conn, tcp.RateSample{AckedBytes: 1448, Delivered: int64(i * 1448), InFlight: 1448})
	}
	if d.Alpha() < 0.9 {
		t.Fatalf("α should approach 1 under full marking: %v", d.Alpha())
	}
	// None marked: alpha decays toward 0.
	for i := 400; i < 1200; i++ {
		d.OnAck(conn, tcp.RateSample{AckedBytes: 1448, Delivered: int64(i * 1448), InFlight: 1448})
	}
	if d.Alpha() > 0.1 {
		t.Fatalf("α should decay without marking: %v", d.Alpha())
	}
}
