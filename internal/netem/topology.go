package netem

import (
	"fmt"

	"cebinae/internal/sim"
)

// Dumbbell is the canonical single-bottleneck topology used by most of the
// paper's experiments: N senders on the left, N receivers on the right, two
// switches in the middle, and one shared bottleneck link between them.
//
//	s0 ─┐                     ┌─ r0
//	s1 ─┤                     ├─ r1
//	 …  ├─ SW1 ══bottleneck══ SW2 ┤ …
//	sN ─┘                     └─ rN
type Dumbbell struct {
	Net       *Network
	Senders   []*Node
	Receivers []*Node
	SW1, SW2  *Node
	// Bottleneck is the SW1→SW2 device (the direction data flows); its
	// qdisc is the system under test.
	Bottleneck *Device
	// BottleneckRev carries ACKs SW2→SW1.
	BottleneckRev *Device
}

// DumbbellConfig parameterises BuildDumbbell.
type DumbbellConfig struct {
	FlowCount int
	// BottleneckBps is the shared link's rate in bits per second.
	BottleneckBps float64
	// BottleneckDelay is the one-way propagation delay of the shared link.
	BottleneckDelay sim.Time
	// RTTs lists the target base round-trip time per flow; the builder
	// derives each sender's access-link delay so the end-to-end base RTT
	// matches. If a single element is given it applies to every flow.
	RTTs []sim.Time
	// AccessBps is the edge link rate (default: 10× bottleneck, so edges
	// never bottleneck).
	AccessBps float64
	// BottleneckQdisc builds the qdisc for the SW1→SW2 device.
	BottleneckQdisc func(dev *Device) Qdisc
	// DefaultQdisc builds qdiscs for every other device; when nil a large
	// drop-tail FIFO should be installed by the caller.
	DefaultQdisc func() Qdisc
}

// RTTForFlow returns the configured base RTT for flow i.
func (c *DumbbellConfig) RTTForFlow(i int) sim.Time {
	if len(c.RTTs) == 1 {
		return c.RTTs[0]
	}
	return c.RTTs[i]
}

// BuildDumbbell constructs the topology and installs routes.
func BuildDumbbell(w *Network, cfg DumbbellConfig) *Dumbbell {
	if cfg.FlowCount <= 0 {
		panic("netem: dumbbell needs at least one flow")
	}
	if len(cfg.RTTs) != 1 && len(cfg.RTTs) != cfg.FlowCount {
		panic(fmt.Sprintf("netem: %d RTTs for %d flows", len(cfg.RTTs), cfg.FlowCount))
	}
	access := cfg.AccessBps
	if access == 0 {
		access = 10 * cfg.BottleneckBps
	}

	d := &Dumbbell{Net: w}
	d.SW1 = w.NewNode("sw1")
	d.SW2 = w.NewNode("sw2")

	btl, btlRev := w.Connect(d.SW1, d.SW2, LinkConfig{RateBps: cfg.BottleneckBps, Delay: cfg.BottleneckDelay})
	d.Bottleneck, d.BottleneckRev = btl, btlRev
	btl.SetQdisc(cfg.BottleneckQdisc(btl))
	btlRev.SetQdisc(cfg.DefaultQdisc())

	for i := 0; i < cfg.FlowCount; i++ {
		rtt := cfg.RTTForFlow(i)
		// Base RTT = 2*(senderAccess + bottleneck + receiverAccess). The
		// receiver access delay is held tiny; the sender access link makes
		// up the remainder.
		recvDelay := sim.Time(0)
		sendDelay := rtt/2 - cfg.BottleneckDelay - recvDelay
		if sendDelay < 0 {
			sendDelay = 0
		}

		s := w.NewNode(fmt.Sprintf("s%d", i))
		r := w.NewNode(fmt.Sprintf("r%d", i))
		sDev, sw1Dev := w.Connect(s, d.SW1, LinkConfig{RateBps: access, Delay: sendDelay})
		sw2Dev, rDev := w.Connect(d.SW2, r, LinkConfig{RateBps: access, Delay: recvDelay})
		for _, dev := range []*Device{sDev, sw1Dev, sw2Dev, rDev} {
			dev.SetQdisc(cfg.DefaultQdisc())
		}

		// Routing: sender → everything right of SW1 via its access link;
		// receiver side symmetric for ACKs.
		s.AddRoute(r.ID, sDev)
		d.SW1.AddRoute(r.ID, btl)
		d.SW2.AddRoute(r.ID, sw2Dev)
		r.AddRoute(s.ID, rDev)
		d.SW2.AddRoute(s.ID, btlRev)
		d.SW1.AddRoute(s.ID, sw1Dev)

		d.Senders = append(d.Senders, s)
		d.Receivers = append(d.Receivers, r)
	}
	return d
}

// ParkingLot is the multi-bottleneck chain of §5.3 / Fig. 11: long flows
// traverse every hop of a switch chain while per-hop cross traffic contends
// at each inter-switch link.
//
//	long senders ─ SW0 ══ℓ1══ SW1 ══ℓ2══ SW2 ══ℓ3══ SW3 ─ long receivers
//	                │cross1↑↓        │cross2↑↓       │cross3↑↓
type ParkingLot struct {
	Net      *Network
	Switches []*Node
	// LongSenders/LongReceivers carry the end-to-end flows.
	LongSenders   []*Node
	LongReceivers []*Node
	// CrossSenders[h]/CrossReceivers[h] attach at hop h (contending on the
	// link Switches[h] → Switches[h+1]).
	CrossSenders   [][]*Node
	CrossReceivers [][]*Node
	// Bottlenecks[h] is the device for the h-th inter-switch link.
	Bottlenecks []*Device
}

// ParkingLotConfig parameterises BuildParkingLot.
type ParkingLotConfig struct {
	Hops          int // number of inter-switch (bottleneck) links
	LongFlows     int
	CrossPerHop   []int // cross flows entering at each hop; len == Hops
	BottleneckBps float64
	LinkDelay     sim.Time // per inter-switch link, one way
	AccessBps     float64
	AccessDelay   sim.Time
	// BottleneckQdisc builds the qdisc for each inter-switch (forward)
	// device; DefaultQdisc covers everything else.
	BottleneckQdisc func(dev *Device) Qdisc
	DefaultQdisc    func() Qdisc
}

// BuildParkingLot constructs the chain topology with routes.
func BuildParkingLot(w *Network, cfg ParkingLotConfig) *ParkingLot {
	if cfg.Hops < 1 || len(cfg.CrossPerHop) != cfg.Hops {
		panic("netem: parking lot misconfigured")
	}
	access := cfg.AccessBps
	if access == 0 {
		access = 10 * cfg.BottleneckBps
	}

	pl := &ParkingLot{Net: w}
	for i := 0; i <= cfg.Hops; i++ {
		pl.Switches = append(pl.Switches, w.NewNode(fmt.Sprintf("sw%d", i)))
	}
	fwd := make([]*Device, cfg.Hops)
	rev := make([]*Device, cfg.Hops)
	for h := 0; h < cfg.Hops; h++ {
		f, r := w.Connect(pl.Switches[h], pl.Switches[h+1], LinkConfig{RateBps: cfg.BottleneckBps, Delay: cfg.LinkDelay})
		f.SetQdisc(cfg.BottleneckQdisc(f))
		r.SetQdisc(cfg.DefaultQdisc())
		fwd[h], rev[h] = f, r
	}
	pl.Bottlenecks = fwd

	attachHost := func(name string, sw *Node) (*Node, *Device, *Device) {
		h := w.NewNode(name)
		hd, swd := w.Connect(h, sw, LinkConfig{RateBps: access, Delay: cfg.AccessDelay})
		hd.SetQdisc(cfg.DefaultQdisc())
		swd.SetQdisc(cfg.DefaultQdisc())
		return h, hd, swd
	}

	addFlowPath := func(s *Node, sDev *Device, sSw int, r *Node, rDev *Device, rSw int, swToS, swToR *Device) {
		// forward: s → … → r
		s.AddRoute(r.ID, sDev)
		for h := sSw; h < rSw; h++ {
			pl.Switches[h].AddRoute(r.ID, fwd[h])
		}
		pl.Switches[rSw].AddRoute(r.ID, swToR)
		// reverse: r → … → s
		r.AddRoute(s.ID, rDev)
		for h := rSw; h > sSw; h-- {
			pl.Switches[h].AddRoute(s.ID, rev[h-1])
		}
		pl.Switches[sSw].AddRoute(s.ID, swToS)
	}

	for i := 0; i < cfg.LongFlows; i++ {
		s, sDev, sw0Dev := attachHost(fmt.Sprintf("L%ds", i), pl.Switches[0])
		r, rDev, swNDev := attachHost(fmt.Sprintf("L%dr", i), pl.Switches[cfg.Hops])
		addFlowPath(s, sDev, 0, r, rDev, cfg.Hops, sw0Dev, swNDev)
		pl.LongSenders = append(pl.LongSenders, s)
		pl.LongReceivers = append(pl.LongReceivers, r)
	}

	pl.CrossSenders = make([][]*Node, cfg.Hops)
	pl.CrossReceivers = make([][]*Node, cfg.Hops)
	for h := 0; h < cfg.Hops; h++ {
		for c := 0; c < cfg.CrossPerHop[h]; c++ {
			s, sDev, swADev := attachHost(fmt.Sprintf("X%d_%ds", h, c), pl.Switches[h])
			r, rDev, swBDev := attachHost(fmt.Sprintf("X%d_%dr", h, c), pl.Switches[h+1])
			addFlowPath(s, sDev, h, r, rDev, h+1, swADev, swBDev)
			pl.CrossSenders[h] = append(pl.CrossSenders[h], s)
			pl.CrossReceivers[h] = append(pl.CrossReceivers[h], r)
		}
	}
	return pl
}
