package netem

import (
	"fmt"

	"cebinae/internal/sim"
)

// Dumbbell is the canonical single-bottleneck topology used by most of the
// paper's experiments: N senders on the left, N receivers on the right, two
// switches in the middle, and one shared bottleneck link between them.
//
//	s0 ─┐                     ┌─ r0
//	s1 ─┤                     ├─ r1
//	 …  ├─ SW1 ══bottleneck══ SW2 ┤ …
//	sN ─┘                     └─ rN
type Dumbbell struct {
	// Net is the network holding SW1 and the senders (the whole topology
	// on a single-Network fabric).
	Net       *Network
	Senders   []*Node
	Receivers []*Node
	SW1, SW2  *Node
	// Bottleneck is the SW1→SW2 device (the direction data flows); its
	// qdisc is the system under test.
	Bottleneck *Device
	// BottleneckRev carries ACKs SW2→SW1.
	BottleneckRev *Device
}

// DumbbellConfig parameterises BuildDumbbell.
type DumbbellConfig struct {
	FlowCount int
	// BottleneckBps is the shared link's rate in bits per second.
	BottleneckBps float64
	// BottleneckDelay is the one-way propagation delay of the shared link.
	BottleneckDelay sim.Time
	// RTTs lists the target base round-trip time per flow; the builder
	// derives each sender's access-link delay so the end-to-end base RTT
	// matches. If a single element is given it applies to every flow.
	RTTs []sim.Time
	// AccessBps is the edge link rate (default: 10× bottleneck, so edges
	// never bottleneck).
	AccessBps float64
	// BottleneckQdisc builds the qdisc for the SW1→SW2 device.
	BottleneckQdisc func(dev *Device) Qdisc
	// DefaultQdisc builds qdiscs for every other device; when nil a large
	// drop-tail FIFO should be installed by the caller.
	DefaultQdisc func() Qdisc
}

// RTTForFlow returns the configured base RTT for flow i.
func (c *DumbbellConfig) RTTForFlow(i int) sim.Time {
	if len(c.RTTs) == 1 {
		return c.RTTs[0]
	}
	return c.RTTs[i]
}

// BuildDumbbell constructs the topology on a single network and installs
// routes.
func BuildDumbbell(w *Network, cfg DumbbellConfig) *Dumbbell {
	return BuildDumbbellOn(w, cfg)
}

// BuildDumbbellOn constructs the dumbbell on an arbitrary fabric.
//
// Partition plan: a dumbbell has exactly one shardable boundary — the
// bottleneck link. Receivers stay in their switch's region because their
// access delay is zero (a zero-delay cut would leave no lookahead), and
// senders stay in SW1's region because same-RTT senders have identical
// access delays: splitting them across regions would make exact
// same-nanosecond arrival ties at SW1 likely, which is precisely where a
// conservative parallel run could order events differently from the
// single-engine run. So region 0 is SW1 plus every sender, the last
// region is SW2 plus every receiver, and the only cut link is the
// bottleneck itself (lookahead = BottleneckDelay). Any fabric with more
// than two shards leaves the middle shards idle.
func BuildDumbbellOn(f Fabric, cfg DumbbellConfig) *Dumbbell {
	if cfg.FlowCount <= 0 {
		panic("netem: dumbbell needs at least one flow")
	}
	if len(cfg.RTTs) != 1 && len(cfg.RTTs) != cfg.FlowCount {
		panic(fmt.Sprintf("netem: %d RTTs for %d flows", len(cfg.RTTs), cfg.FlowCount))
	}
	access := cfg.AccessBps
	if access == 0 {
		access = 10 * cfg.BottleneckBps
	}
	left, right := 0, f.Shards()-1

	d := &Dumbbell{}
	d.SW1 = f.NodeOn(left, "sw1")
	d.SW2 = f.NodeOn(right, "sw2")
	d.Net = d.SW1.Network()

	btl, btlRev := f.Connect(d.SW1, d.SW2, LinkConfig{RateBps: cfg.BottleneckBps, Delay: cfg.BottleneckDelay})
	d.Bottleneck, d.BottleneckRev = btl, btlRev
	btl.SetQdisc(cfg.BottleneckQdisc(btl))
	btlRev.SetQdisc(cfg.DefaultQdisc())

	for i := 0; i < cfg.FlowCount; i++ {
		rtt := cfg.RTTForFlow(i)
		// Base RTT = 2*(senderAccess + bottleneck + receiverAccess). The
		// receiver access delay is held tiny; the sender access link makes
		// up the remainder.
		recvDelay := sim.Time(0)
		sendDelay := rtt/2 - cfg.BottleneckDelay - recvDelay
		if sendDelay < 0 {
			sendDelay = 0
		}

		s := f.NodeOn(left, fmt.Sprintf("s%d", i))
		r := f.NodeOn(right, fmt.Sprintf("r%d", i))
		sDev, sw1Dev := f.Connect(s, d.SW1, LinkConfig{RateBps: access, Delay: sendDelay})
		sw2Dev, rDev := f.Connect(d.SW2, r, LinkConfig{RateBps: access, Delay: recvDelay})
		for _, dev := range []*Device{sDev, sw1Dev, sw2Dev, rDev} {
			dev.SetQdisc(cfg.DefaultQdisc())
		}

		// Routing: sender → everything right of SW1 via its access link;
		// receiver side symmetric for ACKs.
		s.AddRoute(r.ID, sDev)
		d.SW1.AddRoute(r.ID, btl)
		d.SW2.AddRoute(r.ID, sw2Dev)
		r.AddRoute(s.ID, rDev)
		d.SW2.AddRoute(s.ID, btlRev)
		d.SW1.AddRoute(s.ID, sw1Dev)

		d.Senders = append(d.Senders, s)
		d.Receivers = append(d.Receivers, r)
	}
	return d
}

// ParkingLot is the multi-bottleneck chain of §5.3 / Fig. 11: long flows
// traverse every hop of a switch chain while per-hop cross traffic contends
// at each inter-switch link.
//
//	long senders ─ SW0 ══ℓ1══ SW1 ══ℓ2══ SW2 ══ℓ3══ SW3 ─ long receivers
//	                │cross1↑↓        │cross2↑↓       │cross3↑↓
type ParkingLot struct {
	// Net is the network holding the first switch (the whole topology on
	// a single-Network fabric).
	Net      *Network
	Switches []*Node
	// LongSenders/LongReceivers carry the end-to-end flows.
	LongSenders   []*Node
	LongReceivers []*Node
	// CrossSenders[h]/CrossReceivers[h] attach at hop h (contending on the
	// link Switches[h] → Switches[h+1]).
	CrossSenders   [][]*Node
	CrossReceivers [][]*Node
	// Bottlenecks[h] is the device for the h-th inter-switch link.
	Bottlenecks []*Device
}

// ParkingLotConfig parameterises BuildParkingLot.
type ParkingLotConfig struct {
	Hops          int // number of inter-switch (bottleneck) links
	LongFlows     int
	CrossPerHop   []int // cross flows entering at each hop; len == Hops
	BottleneckBps float64
	LinkDelay     sim.Time // per inter-switch link, one way
	AccessBps     float64
	AccessDelay   sim.Time
	// BottleneckQdisc builds the qdisc for each inter-switch (forward)
	// device; DefaultQdisc covers everything else.
	BottleneckQdisc func(dev *Device) Qdisc
	DefaultQdisc    func() Qdisc
}

// BuildParkingLot constructs the chain topology on a single network with
// routes.
func BuildParkingLot(w *Network, cfg ParkingLotConfig) *ParkingLot {
	return BuildParkingLotOn(w, cfg)
}

// BuildParkingLotOn constructs the chain on an arbitrary fabric.
//
// Partition plan: the switch chain is split into contiguous blocks (switch
// h goes to shard h·n/(hops+1)) and every host is colocated with the
// switch it attaches to, so the only cut links are inter-switch bottleneck
// links (lookahead = LinkDelay). This is the topology where sharding pays
// off: with hops+1 switches a fabric can use up to hops+1 shards, each
// carrying one bottleneck's worth of work.
func BuildParkingLotOn(f Fabric, cfg ParkingLotConfig) *ParkingLot {
	if cfg.Hops < 1 || len(cfg.CrossPerHop) != cfg.Hops {
		panic("netem: parking lot misconfigured")
	}
	access := cfg.AccessBps
	if access == 0 {
		access = 10 * cfg.BottleneckBps
	}
	n := f.Shards()
	shardOf := func(sw int) int { return sw * n / (cfg.Hops + 1) }

	pl := &ParkingLot{}
	for i := 0; i <= cfg.Hops; i++ {
		pl.Switches = append(pl.Switches, f.NodeOn(shardOf(i), fmt.Sprintf("sw%d", i)))
	}
	pl.Net = pl.Switches[0].Network()
	fwd := make([]*Device, cfg.Hops)
	rev := make([]*Device, cfg.Hops)
	for h := 0; h < cfg.Hops; h++ {
		fd, rd := f.Connect(pl.Switches[h], pl.Switches[h+1], LinkConfig{RateBps: cfg.BottleneckBps, Delay: cfg.LinkDelay})
		fd.SetQdisc(cfg.BottleneckQdisc(fd))
		rd.SetQdisc(cfg.DefaultQdisc())
		fwd[h], rev[h] = fd, rd
	}
	pl.Bottlenecks = fwd

	attachHost := func(name string, sw int) (*Node, *Device, *Device) {
		h := f.NodeOn(shardOf(sw), name)
		hd, swd := f.Connect(h, pl.Switches[sw], LinkConfig{RateBps: access, Delay: cfg.AccessDelay})
		hd.SetQdisc(cfg.DefaultQdisc())
		swd.SetQdisc(cfg.DefaultQdisc())
		return h, hd, swd
	}

	addFlowPath := func(s *Node, sDev *Device, sSw int, r *Node, rDev *Device, rSw int, swToS, swToR *Device) {
		// forward: s → … → r
		s.AddRoute(r.ID, sDev)
		for h := sSw; h < rSw; h++ {
			pl.Switches[h].AddRoute(r.ID, fwd[h])
		}
		pl.Switches[rSw].AddRoute(r.ID, swToR)
		// reverse: r → … → s
		r.AddRoute(s.ID, rDev)
		for h := rSw; h > sSw; h-- {
			pl.Switches[h].AddRoute(s.ID, rev[h-1])
		}
		pl.Switches[sSw].AddRoute(s.ID, swToS)
	}

	for i := 0; i < cfg.LongFlows; i++ {
		s, sDev, sw0Dev := attachHost(fmt.Sprintf("L%ds", i), 0)
		r, rDev, swNDev := attachHost(fmt.Sprintf("L%dr", i), cfg.Hops)
		addFlowPath(s, sDev, 0, r, rDev, cfg.Hops, sw0Dev, swNDev)
		pl.LongSenders = append(pl.LongSenders, s)
		pl.LongReceivers = append(pl.LongReceivers, r)
	}

	pl.CrossSenders = make([][]*Node, cfg.Hops)
	pl.CrossReceivers = make([][]*Node, cfg.Hops)
	for h := 0; h < cfg.Hops; h++ {
		for c := 0; c < cfg.CrossPerHop[h]; c++ {
			s, sDev, swADev := attachHost(fmt.Sprintf("X%d_%ds", h, c), h)
			r, rDev, swBDev := attachHost(fmt.Sprintf("X%d_%dr", h, c), h+1)
			addFlowPath(s, sDev, h, r, rDev, h+1, swADev, swBDev)
			pl.CrossSenders[h] = append(pl.CrossSenders[h], s)
			pl.CrossReceivers[h] = append(pl.CrossReceivers[h], r)
		}
	}
	return pl
}
