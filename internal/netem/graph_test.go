package netem

import (
	"testing"

	"cebinae/internal/sim"
)

// TestRecorderCapturesGraph: the Recorder must report the caller-chosen
// shard count, capture every NodeOn/Connect in construction order with
// hints and link parameters intact, and still delegate to the inner
// fabric so the builder's wiring (routes, qdiscs) works during the
// recording pass.
func TestRecorderCapturesGraph(t *testing.T) {
	inner := NewNetwork(sim.NewEngine())
	r := NewRecorder(inner, 3)
	if r.Shards() != 3 {
		t.Fatalf("recorder reports %d shards, want 3", r.Shards())
	}

	a := r.NodeOn(0, "a")
	b := r.NodeOn(r.Shards()-1, "b")
	da, db := r.Connect(a, b, LinkConfig{RateBps: 1e9, Delay: sim.Time(4e6)})
	if da == nil || db == nil {
		t.Fatal("recorder did not delegate Connect to the inner fabric")
	}
	a.AddRoute(b.ID, da) // the real builder wires routes; delegation must support it

	g := r.Graph
	if len(g.Nodes) != 2 || len(g.Links) != 1 {
		t.Fatalf("recorded %d nodes / %d links, want 2 / 1", len(g.Nodes), len(g.Links))
	}
	if g.Nodes[0].Name != "a" || g.Nodes[0].Hint != 0 || g.Nodes[1].Name != "b" || g.Nodes[1].Hint != 2 {
		t.Fatalf("recorded nodes %+v", g.Nodes)
	}
	l := g.Links[0]
	if l.A != 0 || l.B != 1 || l.Delay != sim.Time(4e6) || l.RateBps != 1e9 {
		t.Fatalf("recorded link %+v", l)
	}
}
