package netem

import "cebinae/internal/sim"

// Graph is the topology skeleton a builder constructs — nodes in creation
// order and the links between them — captured by a Recorder so a
// partitioner (internal/shard) can choose cut links automatically instead
// of relying on the builder's hand-written shard hints. Node identity is
// the creation index, which is the same quantity a sharded fabric's
// global node counter preserves, so an assignment computed over a Graph
// applies positionally to any later build of the same topology.
type Graph struct {
	Nodes []GraphNode
	Links []GraphLink
}

// GraphNode records one NodeOn call.
type GraphNode struct {
	Name string
	// Hint is the shard the builder asked for. Auto-partitioning ignores
	// it; it is kept for diagnostics (comparing the computed plan against
	// the hand-written one).
	Hint int
}

// GraphLink records one Connect call between the nodes at creation
// indices A and B.
type GraphLink struct {
	A, B    int
	Delay   sim.Time
	RateBps float64
}

// Recorder is a Fabric decorator: it delegates every construction call to
// an inner fabric (typically a throwaway single Network) while capturing
// the topology Graph. It reports a caller-chosen shard count so builders
// that derive NodeOn hints from Shards() make exactly the calls they
// would make against a real sharded fabric — the recording pass must
// trace the same construction order the real pass will.
type Recorder struct {
	inner  Fabric
	shards int
	Graph  Graph
	index  map[*Node]int
}

// NewRecorder wraps inner, reporting `shards` from Shards().
func NewRecorder(inner Fabric, shards int) *Recorder {
	return &Recorder{inner: inner, shards: shards, index: make(map[*Node]int)}
}

// Shards implements Fabric with the recorded-for shard count.
func (r *Recorder) Shards() int { return r.shards }

// NodeOn implements Fabric, recording the node before delegating.
func (r *Recorder) NodeOn(shard int, name string) *Node {
	n := r.inner.NodeOn(shard, name)
	r.index[n] = len(r.Graph.Nodes)
	r.Graph.Nodes = append(r.Graph.Nodes, GraphNode{Name: name, Hint: shard})
	return n
}

// Connect implements Fabric, recording the link before delegating.
func (r *Recorder) Connect(a, b *Node, cfg LinkConfig) (*Device, *Device) {
	r.Graph.Links = append(r.Graph.Links, GraphLink{
		A: r.index[a], B: r.index[b], Delay: cfg.Delay, RateBps: cfg.RateBps,
	})
	return r.inner.Connect(a, b, cfg)
}

var _ Fabric = (*Recorder)(nil)
