package netem

// Fabric abstracts where topology nodes live: a single Network puts every
// node on one engine; a sharded cluster (internal/shard) partitions nodes
// across several engines and turns links between partitions into cut
// links. Topology builders written against Fabric make the same NodeOn /
// Connect calls in the same order regardless of the partition count, so
// node IDs — and everything derived from them: flow keys, per-connection
// RNG seeds — are identical at any shard count. That construction-order
// identity is the foundation of the byte-identical guarantee the sharded
// runner makes.
type Fabric interface {
	// Shards returns the partition count (1 for a plain Network).
	Shards() int
	// NodeOn creates a node on partition `shard` (clamped to the valid
	// range; ignored by single-Network fabrics).
	NodeOn(shard int, name string) *Node
	// Connect builds a full-duplex link between a and b. When the nodes
	// live on different partitions the fabric installs a cut-link pair
	// (two ConnectHalf devices bridged by handoff queues) instead of
	// local peers; cut links require a positive delay, which bounds the
	// conservative lookahead.
	Connect(a, b *Node, cfg LinkConfig) (*Device, *Device)
}

// Shards implements Fabric for a plain Network: one partition.
func (w *Network) Shards() int { return 1 }

// NodeOn implements Fabric for a plain Network; the shard hint is
// ignored.
func (w *Network) NodeOn(_ int, name string) *Node { return w.NewNode(name) }

var _ Fabric = (*Network)(nil)
