package netem

import "cebinae/internal/sim"

// TimeShifter is implemented by queue disciplines (and other components)
// that hold absolute virtual-time state which must translate forward when
// the fluid fast-forward layer (internal/fluid) skips the clock.
type TimeShifter interface {
	ShiftTime(d sim.Time)
}

// ShiftTime translates the device's frozen absolute-time state by d: the
// packet currently serialising on the wire and the attached qdisc's
// buffered state, when the qdisc holds any (FIFO/FQ-CoDel/Cebinae all
// implement TimeShifter). The transmit-completion event itself is shifted
// by the engine (sim.Engine.FastForward); this covers only what the
// engine cannot see.
func (d *Device) ShiftTime(delta sim.Time) {
	if d.txPacket != nil {
		d.txPacket.ShiftTime(delta)
	}
	if s, ok := d.qdisc.(TimeShifter); ok {
		s.ShiftTime(delta)
	}
}
