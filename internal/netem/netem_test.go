package netem

import (
	"testing"

	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

type sink struct {
	got []*packet.Packet
	at  []sim.Time
	eng *sim.Engine
}

func (s *sink) Deliver(p *packet.Packet) {
	s.got = append(s.got, p)
	s.at = append(s.at, s.eng.Now())
}

func fifoFactory() Qdisc { return qdisc.NewFIFO(1 << 20) }

func TestPointToPointLatencyAndSerialisation(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a := w.NewNode("a")
	b := w.NewNode("b")
	// 8 Mbps, 10 ms: a 1000-byte packet serialises in 1 ms.
	da, db := w.Connect(a, b, LinkConfig{RateBps: 8e6, Delay: sim.Duration(10e6)})
	da.SetQdisc(fifoFactory())
	db.SetQdisc(fifoFactory())
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	s := &sink{eng: eng}
	b.Register(key, s)
	a.AddRoute(b.ID, da)

	a.Inject(&packet.Packet{Flow: key, Size: 1000, PayloadSize: 948})
	eng.RunAll()
	if len(s.got) != 1 {
		t.Fatalf("expected delivery, got %d", len(s.got))
	}
	want := sim.Duration(1e6) + sim.Duration(10e6)
	if s.at[0] != want {
		t.Fatalf("arrival at %v, want %v", s.at[0], want)
	}
}

func TestBackToBackSerialisation(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, b, LinkConfig{RateBps: 8e6, Delay: 0})
	da.SetQdisc(fifoFactory())
	db.SetQdisc(fifoFactory())
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	s := &sink{eng: eng}
	b.Register(key, s)
	a.AddRoute(b.ID, da)

	for i := 0; i < 3; i++ {
		a.Inject(&packet.Packet{Flow: key, Size: 1000, PayloadSize: 948})
	}
	eng.RunAll()
	if len(s.got) != 3 {
		t.Fatalf("deliveries: %d", len(s.got))
	}
	// Packets serialise back to back: 1 ms, 2 ms, 3 ms.
	for i, at := range s.at {
		want := sim.Duration(1e6) * sim.Time(i+1)
		if at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
	}
	if da.Stats.TxPackets != 3 || da.Stats.TxBytes != 3000 {
		t.Fatalf("tx stats wrong: %+v", da.Stats)
	}
}

func TestForwarding(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a, r, b := w.NewNode("a"), w.NewNode("r"), w.NewNode("b")
	ar, ra := w.Connect(a, r, LinkConfig{RateBps: 1e9, Delay: 1000})
	rb, br := w.Connect(r, b, LinkConfig{RateBps: 1e9, Delay: 1000})
	for _, d := range []*Device{ar, ra, rb, br} {
		d.SetQdisc(fifoFactory())
	}
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	s := &sink{eng: eng}
	b.Register(key, s)
	a.AddRoute(b.ID, ar)
	r.AddRoute(b.ID, rb)

	a.Inject(&packet.Packet{Flow: key, Size: 100, PayloadSize: 48})
	eng.RunAll()
	if len(s.got) != 1 {
		t.Fatalf("multi-hop delivery failed")
	}
}

func TestUnroutableCounted(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a := w.NewNode("a")
	key := packet.FlowKey{Src: a.ID, Dst: 99, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	a.Inject(&packet.Packet{Flow: key, Size: 100})
	if a.Unroutable != 1 {
		t.Fatalf("unroutable packets must be counted: %d", a.Unroutable)
	}
}

func TestUnregisteredEndpointCounted(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, b, LinkConfig{RateBps: 1e9, Delay: 0})
	da.SetQdisc(fifoFactory())
	db.SetQdisc(fifoFactory())
	a.AddRoute(b.ID, da)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	a.Inject(&packet.Packet{Flow: key, Size: 100})
	eng.RunAll()
	if b.Unroutable != 1 {
		t.Fatalf("unregistered endpoint should count: %d", b.Unroutable)
	}
}

func TestDropStatsOnQdiscRefusal(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, b, LinkConfig{RateBps: 8e3, Delay: 0}) // slow: 1 pkt/s
	da.SetQdisc(qdisc.NewFIFO(1000))
	db.SetQdisc(fifoFactory())
	a.AddRoute(b.ID, da)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	for i := 0; i < 5; i++ {
		a.Inject(&packet.Packet{Flow: key, Size: 600})
	}
	if da.Stats.DropPackets == 0 {
		t.Fatal("tail drops must be counted on the device")
	}
}

func TestBuildDumbbellShape(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	d := BuildDumbbell(w, DumbbellConfig{
		FlowCount:       3,
		BottleneckBps:   10e6,
		BottleneckDelay: sim.Duration(1e6),
		RTTs:            []sim.Time{sim.Duration(10e6), sim.Duration(20e6), sim.Duration(40e6)},
		BottleneckQdisc: func(dev *Device) Qdisc { return qdisc.NewFIFO(1 << 20) },
		DefaultQdisc:    fifoFactory,
	})
	if len(d.Senders) != 3 || len(d.Receivers) != 3 {
		t.Fatal("wrong host count")
	}
	if d.Bottleneck.Rate() != 10e6 {
		t.Fatal("bottleneck rate wrong")
	}
}

// TestDumbbellRTTs verifies the per-flow base RTT engineering by measuring
// a ping (packet + reply) through otherwise idle links.
func TestDumbbellRTTs(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	rtts := []sim.Time{sim.Duration(10e6), sim.Duration(40e6)}
	d := BuildDumbbell(w, DumbbellConfig{
		FlowCount:       2,
		BottleneckBps:   1e9,
		BottleneckDelay: sim.Duration(500e3),
		RTTs:            rtts,
		AccessBps:       10e9,
		BottleneckQdisc: func(dev *Device) Qdisc { return qdisc.NewFIFO(1 << 20) },
		DefaultQdisc:    fifoFactory,
	})
	for i := 0; i < 2; i++ {
		i := i
		key := packet.FlowKey{Src: d.Senders[i].ID, Dst: d.Receivers[i].ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
		// Echo endpoint: reply with a same-size packet.
		recvNode := d.Receivers[i]
		recvNode.Register(key, endpointFunc(func(p *packet.Packet) {
			recvNode.Inject(&packet.Packet{Flow: key.Reverse(), Size: p.Size, Flags: packet.FlagACK})
		}))
		s := &sink{eng: eng}
		d.Senders[i].Register(key.Reverse(), s)
		d.Senders[i].Inject(&packet.Packet{Flow: key, Size: 100, PayloadSize: 48})
		eng.RunAll()
		if len(s.got) != 1 {
			t.Fatalf("flow %d: no echo", i)
		}
		rtt := s.at[0]
		// Allow serialisation slop (two hops of 100 B at ≥1 Gbps ≈ µs).
		if diff := rtt - rtts[i]; diff < 0 || diff > sim.Duration(1e5) {
			t.Fatalf("flow %d base RTT = %v, want ≈%v", i, rtt, rtts[i])
		}
		eng = sim.NewEngine() // isolate; rebuild below unnecessary
		break                 // measuring flow 0 precisely suffices; flow 1 covered by symmetry of builder math
	}
}

type endpointFunc func(p *packet.Packet)

func (f endpointFunc) Deliver(p *packet.Packet) { f(p) }

func TestBuildParkingLotShapeAndRouting(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	pl := BuildParkingLot(w, ParkingLotConfig{
		Hops:            3,
		LongFlows:       2,
		CrossPerHop:     []int{1, 2, 1},
		BottleneckBps:   10e6,
		LinkDelay:       sim.Duration(1e6),
		AccessDelay:     sim.Duration(1e6),
		BottleneckQdisc: func(dev *Device) Qdisc { return qdisc.NewFIFO(1 << 20) },
		DefaultQdisc:    fifoFactory,
	})
	if len(pl.Switches) != 4 || len(pl.Bottlenecks) != 3 {
		t.Fatal("chain shape wrong")
	}
	// Long flow end-to-end data + reverse ACK delivery.
	key := packet.FlowKey{Src: pl.LongSenders[0].ID, Dst: pl.LongReceivers[0].ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	s := &sink{eng: eng}
	pl.LongReceivers[0].Register(key, s)
	rs := &sink{eng: eng}
	pl.LongSenders[0].Register(key.Reverse(), rs)
	pl.LongSenders[0].Inject(&packet.Packet{Flow: key, Size: 100, PayloadSize: 48})
	eng.RunAll()
	if len(s.got) != 1 {
		t.Fatal("long flow forward path broken")
	}
	pl.LongReceivers[0].Inject(&packet.Packet{Flow: key.Reverse(), Size: 52, Flags: packet.FlagACK})
	eng.RunAll()
	if len(rs.got) != 1 {
		t.Fatal("long flow reverse path broken")
	}
	// Cross flow at hop 2.
	ck := packet.FlowKey{Src: pl.CrossSenders[1][0].ID, Dst: pl.CrossReceivers[1][0].ID, SrcPort: 3, DstPort: 4, Proto: packet.ProtoTCP}
	cs := &sink{eng: eng}
	pl.CrossReceivers[1][0].Register(ck, cs)
	pl.CrossSenders[1][0].Inject(&packet.Packet{Flow: ck, Size: 100, PayloadSize: 48})
	eng.RunAll()
	if len(cs.got) != 1 {
		t.Fatal("cross flow path broken")
	}
	// Cross traffic at hop 2 must traverse bottleneck 1 only.
	if pl.Bottlenecks[1].Stats.TxPackets == 0 {
		t.Fatal("cross flow should use its hop's bottleneck")
	}
	if pl.Bottlenecks[0].Stats.TxPackets != 1 || pl.Bottlenecks[2].Stats.TxPackets != 1 {
		t.Fatalf("long flow should cross every hop exactly once: %d/%d",
			pl.Bottlenecks[0].Stats.TxPackets, pl.Bottlenecks[2].Stats.TxPackets)
	}
}

func TestKickRestartsIdleDevice(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, b, LinkConfig{RateBps: 8e6, Delay: 0})
	db.SetQdisc(fifoFactory())
	// A gating qdisc that refuses dequeues until opened.
	g := &gatedQdisc{inner: qdisc.NewFIFO(1 << 20)}
	da.SetQdisc(g)
	a.AddRoute(b.ID, da)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	s := &sink{eng: eng}
	b.Register(key, s)

	a.Inject(&packet.Packet{Flow: key, Size: 1000, PayloadSize: 948})
	eng.RunAll()
	if len(s.got) != 0 {
		t.Fatal("gated packet leaked")
	}
	g.open = true
	da.Kick()
	eng.RunAll()
	if len(s.got) != 1 {
		t.Fatal("Kick must restart an idle transmitter")
	}
}

type gatedQdisc struct {
	inner *qdisc.FIFO
	open  bool
}

func (g *gatedQdisc) Enqueue(p *packet.Packet) bool { return g.inner.Enqueue(p) }
func (g *gatedQdisc) Dequeue() *packet.Packet {
	if !g.open {
		return nil
	}
	return g.inner.Dequeue()
}
func (g *gatedQdisc) Len() int         { return g.inner.Len() }
func (g *gatedQdisc) BytesQueued() int { return g.inner.BytesQueued() }

func TestRegisterDefaultCatchAll(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, b, LinkConfig{RateBps: 8e6, Delay: 0})
	da.SetQdisc(fifoFactory())
	db.SetQdisc(fifoFactory())
	a.AddRoute(b.ID, da)

	exact := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	other := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 3, DstPort: 4, Proto: packet.ProtoTCP}
	se := &sink{eng: eng}
	sd := &sink{eng: eng}
	b.Register(exact, se)
	b.RegisterDefault(sd)

	a.Inject(&packet.Packet{Flow: exact, Size: 1000, PayloadSize: 948})
	a.Inject(&packet.Packet{Flow: other, Size: 1000, PayloadSize: 948})
	eng.RunAll()

	if len(se.got) != 1 {
		t.Fatalf("exact endpoint got %d packets, want 1 (Register must win over RegisterDefault)", len(se.got))
	}
	if len(sd.got) != 1 {
		t.Fatalf("default endpoint got %d packets, want 1", len(sd.got))
	}
	if sd.got[0].Flow != other {
		t.Fatalf("default endpoint saw %v, want %v", sd.got[0].Flow, other)
	}
	if b.Unroutable != 0 {
		t.Fatalf("catch-all deliveries counted as unroutable: %d", b.Unroutable)
	}
}

func TestNoDefaultEndpointStillUnroutable(t *testing.T) {
	eng := sim.NewEngine()
	w := NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, b, LinkConfig{RateBps: 8e6, Delay: 0})
	da.SetQdisc(fifoFactory())
	db.SetQdisc(fifoFactory())
	a.AddRoute(b.ID, da)

	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 9, DstPort: 9, Proto: packet.ProtoTCP}
	a.Inject(&packet.Packet{Flow: key, Size: 1000, PayloadSize: 948})
	eng.RunAll()
	if b.Unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1", b.Unroutable)
	}
}
