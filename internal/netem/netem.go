// Package netem provides the simulated network substrate: nodes, full-duplex
// point-to-point links, store-and-forward devices with pluggable queue
// disciplines, static routing, and topology builders for the scenarios the
// Cebinae paper evaluates (dumbbell and parking-lot).
//
// The model mirrors the role NS-3's NetDevice + traffic-control layer plays
// in the paper's simulations: a device serialises packets onto its link at a
// configured rate, and a Qdisc decides admission, ordering, and drops.
package netem

import (
	"fmt"

	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Qdisc is the queueing discipline attached to a device. Implementations
// live in internal/qdisc and internal/core (the Cebinae LBF); the interface
// is structural so those packages need not import netem.
//
// Enqueue returns false when the packet was dropped (tail drop, AQM drop, or
// Cebinae past-tail drop). Dequeue returns nil when no packet is ready.
type Qdisc interface {
	// Enqueue admits p into the discipline.
	//
	//pktown:enqueues p on success the discipline owns the packet until Dequeue hands it back; on failure the caller keeps ownership and must release it
	Enqueue(p *packet.Packet) bool
	// Dequeue surrenders the next packet to the caller.
	//
	//pktown:fresh return a dequeued packet leaves the discipline's custody and the caller owns it
	Dequeue() *packet.Packet
	Len() int
	BytesQueued() int
}

// Endpoint is a transport-layer consumer registered on a host node.
type Endpoint interface {
	// Deliver presents an arriving packet to the transport.
	//
	//pktown:borrows p the node retains ownership; Deliver must not stash the pointer past its return
	Deliver(p *packet.Packet)
}

// Handoff receives packets leaving the transmit side of a cut link — a
// link whose peer device lives in a different Network (and typically on a
// different engine). Instead of scheduling the peer's arrival event
// directly, the device passes each serialised packet to the handoff with
// the time its last bit left the device (sent) and its computed arrival
// time; the remote runner delivers it by calling InjectArrivalFrom on the
// opposite half, carrying `sent` so the arrival sorts among same-instant
// remote events exactly where a single merged engine would have placed
// it. The handoff takes ownership of the packet: it must copy what it
// needs and release the packet to the source network's pool before
// returning.
type Handoff interface {
	// Handoff transfers p to the remote runner.
	//
	//pktown:consumes p the handoff takes ownership — it copies what it needs and releases the packet to the source pool before returning
	Handoff(p *packet.Packet, sent, arrival sim.Time)
}

// DeviceStats aggregates transmit-side counters for throughput accounting.
type DeviceStats struct {
	TxPackets   uint64
	TxBytes     uint64
	RxPackets   uint64
	RxBytes     uint64
	DropPackets uint64
	DropBytes   uint64
}

// Device is one direction-capable attachment point of a node to a link. A
// full-duplex link is a pair of peered devices, each with its own qdisc and
// transmitter.
type Device struct {
	Name  string
	node  *Node
	peer  *Device
	rate  float64  // link rate in bits per second
	delay sim.Time // one-way propagation delay

	qdisc Qdisc
	busy  bool

	// handoff, when non-nil, marks this device as the local half of a cut
	// link: completed transmissions are handed to it instead of being
	// scheduled as arrival events on a peer.
	handoff Handoff

	// txEvent is the device's persistent transmit-completion event: a
	// device serialises at most one packet at a time, so one caller-owned
	// event (rescheduled in place) replaces a per-packet allocation.
	// txPacket is the packet currently on the wire.
	txEvent  sim.Event
	txPacket *packet.Packet

	// serialiseSize/serialiseTime memoise the last packet size's
	// serialisation delay. Traffic on a device is dominated by long runs
	// of equal-sized packets (full segments one way, bare ACKs the other),
	// so the memo removes the per-packet float division while staying
	// bit-identical to computing the delay fresh each time (a precomputed
	// ns-per-byte multiplier rounds differently and would perturb runs).
	serialiseSize int32
	serialiseTime sim.Time

	Stats DeviceStats

	// OnTransmit, when non-nil, observes every packet at the instant its
	// serialisation completes (used by monitors).
	OnTransmit func(p *packet.Packet)
}

// Rate returns the link rate in bits per second.
func (d *Device) Rate() float64 { return d.rate }

// Delay returns the one-way propagation delay.
func (d *Device) Delay() sim.Time { return d.delay }

// Qdisc returns the attached queue discipline.
func (d *Device) Qdisc() Qdisc { return d.qdisc }

// Busy reports whether a packet is currently being serialised onto the
// link. While true, NextHandoffBound is the exact completion instant.
func (d *Device) Busy() bool { return d.busy }

// SetQdisc replaces the queue discipline. Must be called before traffic
// flows through the device.
func (d *Device) SetQdisc(q Qdisc) { d.qdisc = q }

// Node returns the owning node.
func (d *Device) Node() *Node { return d.node }

// Send admits a packet to the device's qdisc and kicks the transmitter.
// Refused packets are released back to the network's pool.
func (d *Device) Send(p *packet.Packet) {
	if !d.qdisc.Enqueue(p) {
		d.Stats.DropPackets++
		d.Stats.DropBytes += uint64(p.Size)
		d.node.net.pool.Put(p)
		return
	}
	if !d.busy {
		d.transmitNext()
	}
}

// transmitNext pulls the next packet from the qdisc and serialises it onto
// the link. The device stays busy until the qdisc runs dry. Serialisation
// completion is the device's persistent txEvent — no allocation per packet.
func (d *Device) transmitNext() {
	p := d.qdisc.Dequeue()
	if p == nil {
		d.busy = false
		return
	}
	d.busy = true
	if p.Size != d.serialiseSize {
		d.serialiseSize = p.Size
		d.serialiseTime = sim.Time(float64(p.Size*8) / d.rate * 1e9)
	}
	d.txPacket = p
	d.node.net.Engine.ScheduleOwned(&d.txEvent, d.serialiseTime, (*deviceTxDone)(d), nil)
}

// deviceTxDone is the Device's transmit-completion event handler view.
type deviceTxDone Device

// OnEvent fires when the head packet's last bit leaves the device: account
// it, hand it to the propagation leg towards the peer (a pooled typed
// event — the receive side of the hop), and start on the next packet.
func (t *deviceTxDone) OnEvent(any) {
	d := (*Device)(t)
	p := d.txPacket
	d.txPacket = nil
	d.Stats.TxPackets++
	d.Stats.TxBytes += uint64(p.Size)
	if d.OnTransmit != nil {
		d.OnTransmit(p)
	}
	if d.handoff != nil {
		now := d.node.net.Engine.Now()
		d.handoff.Handoff(p, now, now+d.delay)
	} else {
		d.node.net.Engine.ScheduleCall(d.delay, (*deviceArrival)(d.peer), p)
	}
	d.transmitNext()
}

// deviceArrival is the Device's propagation-arrival event handler view.
type deviceArrival Device

func (r *deviceArrival) OnEvent(arg any) {
	(*Device)(r).receive(arg.(*packet.Packet))
}

// InjectArrivalAt schedules p's arrival on this device at absolute virtual
// time t — the receive leg of a cut link. It is the cross-engine
// equivalent of the pooled propagation event a local transmit completion
// schedules, so a sharded run dispatches exactly one arrival event per
// hop, like the single-engine run. p must be owned by this device's
// network (drawn from its pool or handed over for good).
func (d *Device) InjectArrivalAt(t sim.Time, p *packet.Packet) {
	d.node.net.Engine.AtCall(t, (*deviceArrival)(d), p)
}

// InjectArrivalFrom schedules p's arrival at absolute virtual time t,
// ordered among same-instant local events by the time the remote half
// emitted it (sent) — the stamp a single merged engine would have given
// the propagation event it scheduled at transmit completion. Sharded
// runners use this instead of InjectArrivalAt so cuts through
// dense-traffic links (same-nanosecond arrival collisions) stay
// byte-identical to the single-engine run.
func (d *Device) InjectArrivalFrom(t, sent sim.Time, p *packet.Packet) {
	d.node.net.Engine.AtCallFrom(t, sent, (*deviceArrival)(d), p)
}

// NextHandoffBound returns a lower bound on the virtual time at which
// this device could next complete a transmission. While a packet is on
// the wire that is its completion instant; a quiescent transmitter can
// only start again in response to a future event on its engine (a Send
// or Kick happens inside some dispatch), so the engine's next-event
// bound applies. Conservative-parallel runners evaluate this at a
// window barrier — when every event up to the horizon has fired — to
// prove a cut link idle and widen the next lookahead window beyond the
// link's propagation delay.
func (d *Device) NextHandoffBound() sim.Time {
	if d.busy {
		return d.txEvent.At()
	}
	return d.node.net.Engine.NextEventTime()
}

// Kick restarts the transmitter if it is idle and the qdisc has become
// non-empty without an Enqueue through Send (used by qdiscs that release
// previously gated packets, such as the Cebinae LBF on queue rotation).
func (d *Device) Kick() {
	if !d.busy && d.qdisc.Len() > 0 {
		d.transmitNext()
	}
}

func (d *Device) receive(p *packet.Packet) {
	d.Stats.RxPackets++
	d.Stats.RxBytes += uint64(p.Size)
	d.node.receive(p)
}

// Node is a host or switch. Hosts carry transport endpoints; switches only
// forward. Forwarding uses a static next-hop table keyed by destination.
type Node struct {
	ID   packet.NodeID
	Name string

	net     *Network
	devices []*Device
	routes  map[packet.NodeID]*Device
	demux   map[packet.FlowKey]Endpoint

	// defaultEp, when non-nil, receives packets addressed to this node
	// whose flow key has no demux entry — the catch-all a replay sink
	// registers so a million concurrent flows do not need a million demux
	// entries. Exact-key endpoints always win over the catch-all.
	defaultEp Endpoint

	// Unroutable counts packets discarded because the node had no route to
	// their destination or no endpoint registered for their flow key.
	Unroutable uint64
}

// Devices returns the node's attachment points in creation order.
func (n *Node) Devices() []*Device { return n.devices }

// Network returns the owning network.
func (n *Node) Network() *Network { return n.net }

// Engine returns the engine the node's network runs on. In a sharded run
// every consumer of a node (transport endpoints, qdiscs, samplers) must
// schedule on this engine, not on some global one.
func (n *Node) Engine() *sim.Engine { return n.net.Engine }

// AddRoute installs dev as the next hop towards dst.
func (n *Node) AddRoute(dst packet.NodeID, dev *Device) {
	n.routes[dst] = dev
}

// Register attaches a transport endpoint for the given (receive-side) key.
func (n *Node) Register(key packet.FlowKey, ep Endpoint) {
	n.demux[key] = ep
}

// RegisterDefault attaches a catch-all endpoint that receives every packet
// addressed to this node with no exact demux match. Per-key endpoints
// registered with Register keep priority. Packets consumed by the default
// endpoint do not count as Unroutable.
func (n *Node) RegisterDefault(ep Endpoint) {
	n.defaultEp = ep
}

// AllocPacket draws a zeroed packet from the network's free list. Senders
// that build one packet per transmission use this instead of a fresh
// allocation; the packet returns to the pool when the network releases it
// (endpoint delivery or drop).
func (n *Node) AllocPacket() *packet.Packet { return n.net.pool.Get() }

// Inject routes a locally generated packet out of the proper device.
func (n *Node) Inject(p *packet.Packet) {
	dev, ok := n.routes[p.Flow.Dst]
	if !ok {
		n.Unroutable++
		n.net.pool.Put(p)
		return
	}
	dev.Send(p)
}

// InjectAt injects p at absolute virtual time t (clamped to now) via a
// pooled typed event — the allocation-free equivalent of
// eng.At(t, func() { n.Inject(p) }), used by senders that delay
// transmissions (host-processing jitter).
func (n *Node) InjectAt(t sim.Time, p *packet.Packet) {
	n.net.Engine.AtCall(t, (*nodeInject)(n), p)
}

// nodeInject is the Node's deferred-injection event handler view.
type nodeInject Node

func (n *nodeInject) OnEvent(arg any) {
	(*Node)(n).Inject(arg.(*packet.Packet))
}

func (n *Node) receive(p *packet.Packet) {
	if p.Flow.Dst == n.ID {
		if ep, ok := n.demux[p.Flow]; ok {
			// The endpoint consumes the packet synchronously; once
			// Deliver returns the packet has left the network.
			ep.Deliver(p)
			n.net.pool.Put(p)
			return
		}
		if n.defaultEp != nil {
			n.defaultEp.Deliver(p)
			n.net.pool.Put(p)
			return
		}
		n.Unroutable++
		n.net.pool.Put(p)
		return
	}
	n.Inject(p) // forward
}

// Network owns the engine, nodes, links, and packet free list of one
// simulation. The pool is engine-scoped: simulations are single-goroutine,
// so recycling needs no synchronisation.
type Network struct {
	Engine *sim.Engine
	nodes  []*Node
	pool   packet.Pool
}

// Pool exposes the network's packet free list (diagnostics and benchmarks).
func (w *Network) Pool() *packet.Pool { return &w.pool }

// NewNetwork creates an empty network bound to eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{Engine: eng}
}

// NewNode adds a node with a unique ID.
func (w *Network) NewNode(name string) *Node {
	return w.NewNodeWithID(packet.NodeID(len(w.nodes)+1), name)
}

// NewNodeWithID adds a node with a caller-chosen ID. Sharded fabrics
// allocate IDs from one cluster-global counter so a partitioned topology
// numbers its nodes — and therefore its flow keys and per-connection RNG
// seeds — exactly like the single-network build.
func (w *Network) NewNodeWithID(id packet.NodeID, name string) *Node {
	n := &Node{
		ID:     id,
		Name:   name,
		net:    w,
		routes: make(map[packet.NodeID]*Device),
		demux:  make(map[packet.FlowKey]Endpoint),
	}
	w.nodes = append(w.nodes, n)
	return n
}

// Nodes returns all nodes in creation order.
func (w *Network) Nodes() []*Node { return w.nodes }

// LinkConfig describes one full-duplex point-to-point link.
type LinkConfig struct {
	RateBps float64  // bits per second, both directions
	Delay   sim.Time // one-way propagation delay
	// QdiscFactory builds the qdisc for each direction's device; when nil a
	// large drop-tail FIFO is installed by the caller.
	QdiscFactory func() Qdisc
}

// Connect creates a full-duplex link between a and b, returning the two
// directional devices (a→b, b→a). Qdiscs must be set by the caller (via
// cfg.QdiscFactory or SetQdisc) before traffic flows.
func (w *Network) Connect(a, b *Node, cfg LinkConfig) (*Device, *Device) {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("netem: non-positive link rate %v", cfg.RateBps))
	}
	da := &Device{Name: fmt.Sprintf("%s->%s", a.Name, b.Name), node: a, rate: cfg.RateBps, delay: cfg.Delay}
	db := &Device{Name: fmt.Sprintf("%s->%s", b.Name, a.Name), node: b, rate: cfg.RateBps, delay: cfg.Delay}
	da.peer, db.peer = db, da
	if cfg.QdiscFactory != nil {
		da.qdisc = cfg.QdiscFactory()
		db.qdisc = cfg.QdiscFactory()
	}
	a.devices = append(a.devices, da)
	b.devices = append(b.devices, db)
	return da, db
}

// ConnectHalf creates the local half of a full-duplex link whose other
// half lives in a different Network — one direction of a cut link in a
// sharded run. peerName is the remote node's name (used only for the
// device name, which matches what Connect would have produced). Outbound
// packets serialise through the qdisc and transmitter exactly as on a
// local link and are then passed to h with their arrival time.
func (w *Network) ConnectHalf(a *Node, peerName string, cfg LinkConfig, h Handoff) *Device {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("netem: non-positive link rate %v", cfg.RateBps))
	}
	d := &Device{Name: fmt.Sprintf("%s->%s", a.Name, peerName), node: a, rate: cfg.RateBps, delay: cfg.Delay, handoff: h}
	if cfg.QdiscFactory != nil {
		d.qdisc = cfg.QdiscFactory()
	}
	a.devices = append(a.devices, d)
	return d
}
