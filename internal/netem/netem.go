// Package netem provides the simulated network substrate: nodes, full-duplex
// point-to-point links, store-and-forward devices with pluggable queue
// disciplines, static routing, and topology builders for the scenarios the
// Cebinae paper evaluates (dumbbell and parking-lot).
//
// The model mirrors the role NS-3's NetDevice + traffic-control layer plays
// in the paper's simulations: a device serialises packets onto its link at a
// configured rate, and a Qdisc decides admission, ordering, and drops.
package netem

import (
	"fmt"

	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Qdisc is the queueing discipline attached to a device. Implementations
// live in internal/qdisc and internal/core (the Cebinae LBF); the interface
// is structural so those packages need not import netem.
//
// Enqueue returns false when the packet was dropped (tail drop, AQM drop, or
// Cebinae past-tail drop). Dequeue returns nil when no packet is ready.
type Qdisc interface {
	Enqueue(p *packet.Packet) bool
	Dequeue() *packet.Packet
	Len() int
	BytesQueued() int
}

// Endpoint is a transport-layer consumer registered on a host node.
type Endpoint interface {
	Deliver(p *packet.Packet)
}

// DeviceStats aggregates transmit-side counters for throughput accounting.
type DeviceStats struct {
	TxPackets   uint64
	TxBytes     uint64
	RxPackets   uint64
	RxBytes     uint64
	DropPackets uint64
	DropBytes   uint64
}

// Device is one direction-capable attachment point of a node to a link. A
// full-duplex link is a pair of peered devices, each with its own qdisc and
// transmitter.
type Device struct {
	Name  string
	node  *Node
	peer  *Device
	rate  float64  // link rate in bits per second
	delay sim.Time // one-way propagation delay

	qdisc Qdisc
	busy  bool

	Stats DeviceStats

	// OnTransmit, when non-nil, observes every packet at the instant its
	// serialisation completes (used by monitors).
	OnTransmit func(p *packet.Packet)
}

// Rate returns the link rate in bits per second.
func (d *Device) Rate() float64 { return d.rate }

// Delay returns the one-way propagation delay.
func (d *Device) Delay() sim.Time { return d.delay }

// Qdisc returns the attached queue discipline.
func (d *Device) Qdisc() Qdisc { return d.qdisc }

// SetQdisc replaces the queue discipline. Must be called before traffic
// flows through the device.
func (d *Device) SetQdisc(q Qdisc) { d.qdisc = q }

// Node returns the owning node.
func (d *Device) Node() *Node { return d.node }

// Send admits a packet to the device's qdisc and kicks the transmitter.
func (d *Device) Send(p *packet.Packet) {
	if !d.qdisc.Enqueue(p) {
		d.Stats.DropPackets++
		d.Stats.DropBytes += uint64(p.Size)
		return
	}
	if !d.busy {
		d.transmitNext()
	}
}

// transmitNext pulls the next packet from the qdisc and serialises it onto
// the link. The device stays busy until the qdisc runs dry.
func (d *Device) transmitNext() {
	p := d.qdisc.Dequeue()
	if p == nil {
		d.busy = false
		return
	}
	d.busy = true
	eng := d.node.net.Engine
	serialise := sim.Time(float64(p.Size*8) / d.rate * 1e9)
	eng.Schedule(serialise, func() {
		d.Stats.TxPackets++
		d.Stats.TxBytes += uint64(p.Size)
		if d.OnTransmit != nil {
			d.OnTransmit(p)
		}
		peer := d.peer
		eng.Schedule(d.delay, func() { peer.receive(p) })
		d.transmitNext()
	})
}

// Kick restarts the transmitter if it is idle and the qdisc has become
// non-empty without an Enqueue through Send (used by qdiscs that release
// previously gated packets, such as the Cebinae LBF on queue rotation).
func (d *Device) Kick() {
	if !d.busy && d.qdisc.Len() > 0 {
		d.transmitNext()
	}
}

func (d *Device) receive(p *packet.Packet) {
	d.Stats.RxPackets++
	d.Stats.RxBytes += uint64(p.Size)
	d.node.receive(p)
}

// Node is a host or switch. Hosts carry transport endpoints; switches only
// forward. Forwarding uses a static next-hop table keyed by destination.
type Node struct {
	ID   packet.NodeID
	Name string

	net     *Network
	devices []*Device
	routes  map[packet.NodeID]*Device
	demux   map[packet.FlowKey]Endpoint

	// OnUnroutable observes packets with no route / no endpoint (default:
	// counted and discarded).
	Unroutable uint64
}

// Devices returns the node's attachment points in creation order.
func (n *Node) Devices() []*Device { return n.devices }

// AddRoute installs dev as the next hop towards dst.
func (n *Node) AddRoute(dst packet.NodeID, dev *Device) {
	n.routes[dst] = dev
}

// Register attaches a transport endpoint for the given (receive-side) key.
func (n *Node) Register(key packet.FlowKey, ep Endpoint) {
	n.demux[key] = ep
}

// Inject routes a locally generated packet out of the proper device.
func (n *Node) Inject(p *packet.Packet) {
	dev, ok := n.routes[p.Flow.Dst]
	if !ok {
		n.Unroutable++
		return
	}
	dev.Send(p)
}

func (n *Node) receive(p *packet.Packet) {
	if p.Flow.Dst == n.ID {
		if ep, ok := n.demux[p.Flow]; ok {
			ep.Deliver(p)
			return
		}
		n.Unroutable++
		return
	}
	n.Inject(p) // forward
}

// Network owns the engine, nodes, and links of one simulation.
type Network struct {
	Engine *sim.Engine
	nodes  []*Node
}

// NewNetwork creates an empty network bound to eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{Engine: eng}
}

// NewNode adds a node with a unique ID.
func (w *Network) NewNode(name string) *Node {
	n := &Node{
		ID:     packet.NodeID(len(w.nodes) + 1),
		Name:   name,
		net:    w,
		routes: make(map[packet.NodeID]*Device),
		demux:  make(map[packet.FlowKey]Endpoint),
	}
	w.nodes = append(w.nodes, n)
	return n
}

// Nodes returns all nodes in creation order.
func (w *Network) Nodes() []*Node { return w.nodes }

// LinkConfig describes one full-duplex point-to-point link.
type LinkConfig struct {
	RateBps float64  // bits per second, both directions
	Delay   sim.Time // one-way propagation delay
	// QdiscFactory builds the qdisc for each direction's device; when nil a
	// large drop-tail FIFO is installed by the caller.
	QdiscFactory func() Qdisc
}

// Connect creates a full-duplex link between a and b, returning the two
// directional devices (a→b, b→a). Qdiscs must be set by the caller (via
// cfg.QdiscFactory or SetQdisc) before traffic flows.
func (w *Network) Connect(a, b *Node, cfg LinkConfig) (*Device, *Device) {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("netem: non-positive link rate %v", cfg.RateBps))
	}
	da := &Device{Name: fmt.Sprintf("%s->%s", a.Name, b.Name), node: a, rate: cfg.RateBps, delay: cfg.Delay}
	db := &Device{Name: fmt.Sprintf("%s->%s", b.Name, a.Name), node: b, rate: cfg.RateBps, delay: cfg.Delay}
	da.peer, db.peer = db, da
	if cfg.QdiscFactory != nil {
		da.qdisc = cfg.QdiscFactory()
		db.qdisc = cfg.QdiscFactory()
	}
	a.devices = append(a.devices, da)
	b.devices = append(b.devices, db)
	return da, db
}
