package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: pos %d got %d", i, v)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var seen []Time
	e.Schedule(100, func() { seen = append(seen, e.Now()) })
	e.Schedule(250, func() { seen = append(seen, e.Now()) })
	end := e.Run(1000)
	if seen[0] != 100 || seen[1] != 250 {
		t.Fatalf("clock wrong during dispatch: %v", seen)
	}
	if end != 1000 || e.Now() != 1000 {
		t.Fatalf("Run should settle at the horizon: end=%v now=%v", end, e.Now())
	}
}

func TestRunHorizonExclusivity(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(500, func() { fired++ })
	e.At(501, func() { fired++ })
	e.Run(500)
	if fired != 1 {
		t.Fatalf("events at the horizon fire, later ones don't: fired=%d", fired)
	}
	e.Run(501)
	if fired != 2 {
		t.Fatalf("resumed run must fire the remaining event: fired=%d", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event should report cancelled")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(Time(i*10), func() { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunAll()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v want %v", order, want)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Fatalf("Stop should halt dispatch: count=%d", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("stopped engine keeps pending events: %d", e.Pending())
	}
}

func TestReentrantScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			e.Schedule(1, rec)
		}
	}
	e.Schedule(0, rec)
	e.RunAll()
	if depth != 50 {
		t.Fatalf("re-entrant scheduling broken: depth=%d", depth)
	}
	if e.Now() != 49 {
		t.Fatalf("clock should be 49, got %v", e.Now())
	}
}

func TestPastScheduleClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		fired := false
		e.At(5, func() { fired = true }) // in the past
		e.Schedule(-3, func() {})
		_ = fired
	})
	e.RunAll()
	if e.Now() != 100 {
		t.Fatalf("past events must clamp to now, clock=%v", e.Now())
	}
}

func TestDurationConversions(t *testing.T) {
	if Duration(time.Second) != 1e9 {
		t.Fatal("Duration conversion wrong")
	}
	if Time(1500e6).Seconds() != 1.5 {
		t.Fatal("Seconds conversion wrong")
	}
	if Time(250).Std() != 250*time.Nanosecond {
		t.Fatal("Std conversion wrong")
	}
}

// TestEventOrderProperty: for any set of delays, events fire in
// nondecreasing time order with ties in schedule order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i, at := i, Time(d)
			e.At(at, func() { fired = append(fired, firing{e.Now(), i}) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRand(124)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds should diverge, %d collisions", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %v", v)
		}
		if v := r.ExpFloat64(); v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(99)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("exponential mean should be ≈1, got %v", mean)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce a stuck stream")
	}
}
