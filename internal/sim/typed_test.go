package sim

import "testing"

type recorder struct {
	eng   *Engine
	fired []any
	times []Time
}

func (r *recorder) OnEvent(arg any) {
	r.fired = append(r.fired, arg)
	r.times = append(r.times, r.eng.Now())
}

// TestScheduleCallOrder interleaves typed and closure events at the same
// instant and checks the shared (time, seq) FIFO order holds across both
// kinds.
func TestScheduleCallOrder(t *testing.T) {
	eng := NewEngine()
	var order []string
	hook := func(tag string) func() {
		return func() { order = append(order, tag) }
	}
	mark := &marker{order: &order}
	eng.ScheduleCall(5, mark, "typed-1")
	eng.Schedule(5, hook("closure"))
	eng.ScheduleCall(5, mark, "typed-2")
	eng.ScheduleCall(3, mark, "early")
	eng.RunAll()
	want := []string{"early", "typed-1", "closure", "typed-2"}
	if len(order) != len(want) {
		t.Fatalf("dispatch order: got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order: got %v, want %v", order, want)
		}
	}
}

type marker struct{ order *[]string }

func (m *marker) OnEvent(arg any) { *m.order = append(*m.order, arg.(string)) }

// TestAtCallClampsPast mirrors At's semantics: an absolute time in the past
// fires immediately (clamped to now), not at a negative delay.
func TestAtCallClampsPast(t *testing.T) {
	eng := NewEngine()
	r := &recorder{eng: eng}
	eng.Schedule(10, func() { eng.AtCall(5, r, "late") })
	eng.RunAll()
	if len(r.fired) != 1 || r.times[0] != 10 {
		t.Fatalf("past AtCall should fire at now: fired=%v times=%v", r.fired, r.times)
	}
}

// TestScheduleOwned exercises the caller-owned persistent event: reusable
// after firing, cancellable, and double-schedule panics.
func TestScheduleOwned(t *testing.T) {
	eng := NewEngine()
	r := &recorder{eng: eng}
	var ev Event
	if !ev.Cancelled() {
		t.Fatal("zero-value Event must read as not queued")
	}
	eng.ScheduleOwned(&ev, 1, r, 1)
	if ev.Cancelled() {
		t.Fatal("scheduled owned event must read as queued")
	}
	eng.RunAll()
	if !ev.Cancelled() {
		t.Fatal("fired owned event must read as not queued")
	}
	eng.ScheduleOwned(&ev, 1, r, 2) // reuse after firing
	eng.RunAll()
	if len(r.fired) != 2 || r.fired[1] != 2 {
		t.Fatalf("owned event reuse: fired=%v", r.fired)
	}

	eng.ScheduleOwned(&ev, 1, r, 3)
	eng.Cancel(&ev)
	eng.RunAll()
	if len(r.fired) != 2 {
		t.Fatal("cancelled owned event must not fire")
	}
	eng.ScheduleOwned(&ev, 1, r, 4) // reuse after cancel
	defer func() {
		if recover() == nil {
			t.Fatal("double ScheduleOwned must panic")
		}
	}()
	eng.ScheduleOwned(&ev, 2, r, 5)
}

// TestPooledRecycling checks that ScheduleCall events actually return to the
// engine free list and that a handler rescheduling itself from inside
// OnEvent reuses storage rather than growing it.
func TestPooledRecycling(t *testing.T) {
	eng := NewEngine()
	r := &recorder{eng: eng}
	for i := 0; i < 3; i++ {
		eng.ScheduleCall(Time(i), r, i)
	}
	eng.RunAll()
	if n := len(eng.free); n != 3 {
		t.Fatalf("free list holds %d events after drain, want 3", n)
	}
	// Self-rescheduling loop: the whole run should consume exactly the
	// free-listed events, allocating none beyond them.
	l := &selfLoop{eng: eng, remaining: 1000}
	eng.ScheduleCall(1, l, nil)
	eng.RunAll()
	if n := len(eng.free); n != 3 {
		t.Fatalf("free list holds %d events after loop, want 3 (steady-state reuse)", n)
	}
}

type selfLoop struct {
	eng       *Engine
	remaining int
}

func (l *selfLoop) OnEvent(any) {
	l.remaining--
	if l.remaining > 0 {
		l.eng.ScheduleCall(1, l, nil)
	}
}

// TestClosureHandleNotRecycled pins the ABA guard: a closure event's handle
// stays valid (and inert) after it fires — Cancel on it must not corrupt a
// later-scheduled event.
func TestClosureHandleNotRecycled(t *testing.T) {
	eng := NewEngine()
	fired := 0
	h := eng.Schedule(1, func() { fired++ })
	eng.RunAll()
	if !h.Cancelled() {
		t.Fatal("fired closure event handle must read as done")
	}
	eng.Schedule(1, func() { fired++ })
	eng.Cancel(h) // stale handle: must be a no-op
	eng.RunAll()
	if fired != 2 {
		t.Fatalf("stale Cancel disturbed a live event: fired=%d, want 2", fired)
	}
}
