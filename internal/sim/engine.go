// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in scheduling order (FIFO tie-breaking), which makes runs fully
// deterministic for a fixed seed and workload.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to the engine's resolution.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Std converts a virtual time offset into a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled event is a no-op.
type Event struct {
	at       Time
	seq      uint64
	index    int // position in the heap, -1 once removed
	callback func()
}

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 }

// Engine is a discrete-event scheduler. It is not safe for concurrent use;
// simulations are single-goroutine by design.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// Processed counts events dispatched since construction.
	Processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (relative to the current virtual time).
// A negative delay is treated as zero.
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// ScheduleStd runs fn after a standard library duration.
func (e *Engine) ScheduleStd(d time.Duration, fn func()) *Event {
	return e.Schedule(Duration(d), fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, callback: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. It is safe to call with nil or with an
// event that has already fired.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index == -1 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Stop makes Run return after the currently dispatching event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return e.queue.Len() }

// Run dispatches events in time order until the queue empties, the clock
// would pass `until`, or Stop is called. It returns the virtual time at
// which it stopped. Events scheduled exactly at `until` do fire.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for e.queue.Len() > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		next.index = -1
		e.now = next.at
		e.Processed++
		next.callback()
	}
	// Settle the clock at the horizon when the queue drained early — except
	// for RunAll's open horizon, where the clock stays at the last event.
	if e.now < until && !e.stopped && until != MaxTime {
		e.now = until
	}
	return e.now
}

// RunAll dispatches every event until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(MaxTime) }

// eventQueue is a binary min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
