// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock with nanosecond resolution and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in scheduling order (FIFO tie-breaking), which makes runs fully
// deterministic for a fixed seed and workload.
//
// Four scheduling surfaces share one totally-ordered event stream:
//
//   - Schedule / ScheduleStd / At take a func() and return an *Event handle
//     that can be cancelled. Convenient, but each call allocates the event
//     (and usually a closure), so this is the cold-path API.
//   - ScheduleCall / AtCall take a Handler interface plus a payload and
//     return nothing; the event structs behind them are recycled on a
//     per-engine free list, so steady-state scheduling is allocation-free.
//   - ScheduleOwned goes one step further for strictly sequential streams
//     (a device's transmit completions): the caller embeds one Event and
//     reuses it for every occurrence. It cannot be re-armed while pending.
//   - ArmTimer / ArmTimerAt / StopTimer drive a caller-embedded Timer: the
//     cancellable, reschedulable-in-place surface for deadlines that are
//     usually re-armed or stopped before they fire (RTO, pacing, delayed
//     ACK, control loops). Far-future timers park in a hierarchical timing
//     wheel where stop/re-arm is O(1); see timer.go.
//
// Choosing a surface: one-shot cold-path setup code → Schedule/At;
// self-perpetuating streams with a payload → ScheduleCall; a strictly
// sequential stream owned by one struct → ScheduleOwned; anything that
// needs cancellation or re-arming on the hot path → a Timer.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to the engine's resolution.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Std converts a virtual time offset into a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Handler receives typed fast-path events. Implementations are typically
// small named types over the receiver struct (so one struct can register
// several distinct handlers without closures).
type Handler interface {
	// OnEvent is invoked when the event fires, with the payload it was
	// scheduled with.
	OnEvent(arg any)
}

// eventKind discriminates how an event's memory is managed and dispatched.
type eventKind uint8

const (
	// kindClosure events carry a func() and were handed out as handles;
	// they are garbage collected, never recycled (the caller may still
	// hold the pointer after the event fires).
	kindClosure eventKind = iota
	// kindPooled events carry a Handler, expose no handle, and return to
	// the engine's free list the moment they fire or are cancelled.
	kindPooled
	// kindOwned events are embedded in a caller's struct and rescheduled
	// in place (ScheduleOwned); the engine never frees or recycles them.
	kindOwned
	// kindTimer events are the heap residency of a caller-embedded Timer
	// (timer.go); arg back-points to the Timer, which carries the handler.
	kindTimer
)

// Event is a scheduled callback. Events created by Schedule/At are handles
// that can be cancelled before they fire; cancelling an already-fired or
// already-cancelled event is a no-op. The zero Event is an idle caller-owned
// event ready for ScheduleOwned.
type Event struct {
	at Time
	// schedAt is the virtual time at which the event was scheduled. It is
	// the middle key of the dispatch order (see eventLess): for locally
	// scheduled events it equals Now() at scheduling time, which is
	// non-decreasing in seq, so it never perturbs single-engine order.
	// Its purpose is cross-engine injection (AtCallFrom): an event
	// injected by a conservative-parallel runner carries the virtual time
	// the *source* engine emitted it, which slots it among same-instant
	// local events exactly where a single merged engine would have.
	schedAt Time
	seq     uint64
	// pos is the event's heap position plus one; 0 means not queued
	// (fired, cancelled, or never scheduled). The +1 offset makes the
	// zero Event value valid as an idle ScheduleOwned event.
	pos  int32
	kind eventKind
	// pinned marks a control-plane event whose deadline is an absolute
	// commitment: FastForward refuses to skip across it and never shifts
	// it. Pinned timers also bypass the timing wheel (fastforward.go), so
	// every pinned deadline is visible on the heap for NextPinnedTime.
	pinned bool

	callback func()  // kindClosure
	handler  Handler // kindPooled, kindOwned
	arg      any
}

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event is not pending: it has been cancelled,
// has already fired, or was never scheduled.
func (e *Event) Cancelled() bool { return e.pos == 0 }

// Engine is a discrete-event scheduler. It is not safe for concurrent use;
// simulations are single-goroutine by design.
type Engine struct {
	now     Time
	seq     uint64
	queue   []*Event // 4-ary min-heap ordered by (at, seq)
	free    []*Event // recycled kindPooled events
	wheel   timerWheel
	stopped bool
	// horizon is the `until` of the innermost Run in progress (MaxTime for
	// RunAll); FastForward callers use it to cap a skip at the horizon.
	horizon Time
	// Processed counts events dispatched since construction.
	Processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.wheel.earliest = MaxTime
	e.wheel.overflowMin = MaxTime
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (relative to the current virtual time).
// A negative delay is treated as zero.
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// ScheduleStd runs fn after a standard library duration.
func (e *Engine) ScheduleStd(d time.Duration, fn func()) *Event {
	return e.Schedule(Duration(d), fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant.
//
// Each call allocates its Event, and deliberately so: the returned handle
// may be retained by the caller indefinitely, so a fired or cancelled
// closure event can never be proven unreferenced and must not be drawn
// from (or returned to) the pooled free list. Recycling one would alias a
// stale handle onto a later event: Cancel on the old handle would then
// silently kill the new unrelated event (the classic ABA hazard —
// distinguishing the two incarnations would need a generation counter in
// the handle, i.e. a different API). Callers on a hot schedule/cancel
// path should embed a Timer instead (ArmTimer), which is allocation-free
// because the caller owns the memory. The closure path's per-op cost is
// pinned by TestScheduleCancelAllocs in the benchkit package.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, schedAt: e.now, seq: e.seq, kind: kindClosure, callback: fn}
	e.seq++
	e.heapPush(ev)
	return ev
}

// AtPinned is At with the event marked pinned: FastForward treats its
// deadline as a hard epoch boundary (see fastforward.go). Used for
// control-plane moments that must be observed at their exact instant even
// across fluid skips — e.g. a measurement-window boundary.
func (e *Engine) AtPinned(t Time, fn func()) *Event {
	ev := e.At(t, fn)
	ev.pinned = true
	return ev
}

// ScheduleCall runs h.OnEvent(arg) after delay d. It is the fast-path
// equivalent of Schedule: no handle is returned and the event struct is
// drawn from (and returned to) a per-engine free list, so a steady stream
// of calls performs no allocation.
func (e *Engine) ScheduleCall(d Time, h Handler, arg any) {
	if d < 0 {
		d = 0
	}
	e.AtCall(e.now+d, h, arg)
}

// AtCall runs h.OnEvent(arg) at absolute virtual time t (clamped to now),
// with the same pooling as ScheduleCall.
func (e *Engine) AtCall(t Time, h Handler, arg any) {
	if t < e.now {
		t = e.now
	}
	e.atCallFrom(t, e.now, h, arg)
}

// AtCallFrom runs h.OnEvent(arg) at absolute virtual time t, ordered among
// same-instant events as if it had been scheduled when the clock read
// `from` — which may be in this engine's past. It exists for
// cross-engine injection by conservative-parallel runners
// (internal/shard): a packet handed across a cut link was emitted by the
// source engine at virtual time `from` and arrives at t; carrying `from`
// as the event's scheduling stamp makes the merged dispatch order at
// instant t byte-identical to a single engine that had scheduled the
// arrival during its own dispatch at `from`. Same pooling as AtCall.
// Panics if from > t (an arrival cannot precede its emission).
func (e *Engine) AtCallFrom(t, from Time, h Handler, arg any) {
	if from > t {
		panic("sim: AtCallFrom with scheduling stamp after the deadline")
	}
	if t < e.now {
		t = e.now
	}
	e.atCallFrom(t, from, h, arg)
}

func (e *Engine) atCallFrom(t, from Time, h Handler, arg any) {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.schedAt = from
	ev.seq = e.seq
	ev.kind = kindPooled
	ev.handler = h
	ev.arg = arg
	e.seq++
	e.heapPush(ev)
}

// ScheduleOwned schedules ev — a caller-owned Event, typically embedded in
// a long-lived struct — to run h.OnEvent(arg) after delay d. The event must
// not currently be pending. Reusing one Event for a strictly sequential
// stream of occurrences (e.g. a device's transmit completions) costs no
// allocation at all.
func (e *Engine) ScheduleOwned(ev *Event, d Time, h Handler, arg any) {
	if ev.pos != 0 {
		panic("sim: ScheduleOwned on an event that is still pending")
	}
	if d < 0 {
		d = 0
	}
	ev.at = e.now + d
	ev.schedAt = e.now
	ev.seq = e.seq
	ev.kind = kindOwned
	ev.handler = h
	ev.arg = arg
	e.seq++
	e.heapPush(ev)
}

// Cancel removes a pending event. It is safe to call with nil or with an
// event that has already fired.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.pos == 0 {
		return
	}
	e.heapRemove(int(ev.pos) - 1)
	if ev.kind == kindPooled {
		e.recycle(ev)
	}
}

// recycle clears a pooled event's references and returns it to the free
// list.
func (e *Engine) recycle(ev *Event) {
	ev.handler = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// Stop makes Run return after the currently dispatching event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events waiting to fire, including timers
// parked in the timing wheel.
func (e *Engine) Pending() int { return len(e.queue) + e.wheel.count }

// NextEventTime returns a lower bound on the time of the engine's next
// pending event, or MaxTime when nothing is pending. The heap top is
// exact; wheel-resident timers contribute the start of their earliest
// occupied slot, which is at or before any parked deadline — so the
// returned value never overshoots a real event. Conservative-parallel
// runners use it to bound how soon a quiescent engine could emit
// anything new.
func (e *Engine) NextEventTime() Time {
	t := MaxTime
	if len(e.queue) > 0 {
		t = e.queue[0].at
	}
	if e.wheel.count > 0 && e.wheel.earliest < t {
		t = e.wheel.earliest
	}
	return t
}

// Run dispatches events in time order until the queue empties, the clock
// would pass `until`, or Stop is called. It returns the virtual time at
// which it stopped. Events scheduled exactly at `until` do fire. A
// horizon already in the past is a no-op: the clock never moves
// backward.
func (e *Engine) Run(until Time) Time {
	if until < e.now {
		return e.now
	}
	e.stopped = false
	e.horizon = until
	for !e.stopped {
		// The heap top is only authoritative once every wheel slot that
		// could hold an earlier (or same-instant, earlier-seq) timer has
		// been flushed into the heap. The fast path is one comparison
		// against the wheel's earliest-slot lower bound.
		if e.wheel.count > 0 {
			h := until
			if len(e.queue) > 0 && e.queue[0].at < h {
				h = e.queue[0].at
			}
			if e.wheel.earliest <= h {
				// Flush only the earliest slot(s): staying lazy keeps
				// later timers in the wheel where cancellation is O(1).
				e.advanceWheel(e.wheel.earliest)
				continue
			}
		}
		if len(e.queue) == 0 {
			break
		}
		next := e.queue[0]
		if next.at > until {
			e.now = until
			return e.now
		}
		e.heapPopMin()
		e.now = next.at
		e.Processed++
		switch next.kind {
		case kindClosure:
			next.callback()
		case kindPooled:
			h, arg := next.handler, next.arg
			// Recycle before dispatch so a handler that reschedules
			// (the common self-perpetuating pattern) reuses this very
			// event.
			e.recycle(next)
			h.OnEvent(arg)
		case kindTimer:
			tm := next.arg.(*Timer)
			// Mark idle before dispatch so the handler can re-arm the
			// timer in place (the self-perpetuating tick pattern).
			tm.state = timerIdle
			h, arg := tm.h, tm.arg
			tm.arg = nil // drop the payload reference until re-armed
			h.OnEvent(arg)
		default: // kindOwned
			h, arg := next.handler, next.arg
			next.arg = nil // drop the payload reference until rescheduled
			h.OnEvent(arg)
		}
	}
	// Settle the clock at the horizon when the queue drained early — except
	// for RunAll's open horizon, where the clock stays at the last event.
	if e.now < until && !e.stopped && until != MaxTime {
		e.now = until
	}
	return e.now
}

// RunAll dispatches every event until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(MaxTime) }

// RunUntil is the windowed-stepping entry point used by conservative
// parallel runners (internal/shard): it advances the clock to exactly t,
// dispatching every event with at <= t, and may be called repeatedly with
// increasing horizons. Between calls the engine is quiescent — events
// injected from outside (cross-shard arrivals via AtCallFrom) are merged
// into the queue and dispatched in (time, emission time, seq) order
// exactly as if they had been scheduled locally by a single merged
// engine, which is what makes a sharded run reproduce the single-engine
// event stream.
func (e *Engine) RunUntil(t Time) Time { return e.Run(t) }

// ---------------------------------------------------------------------------
// Inlined 4-ary min-heap over (at, schedAt, seq).
//
// A 4-ary layout halves the tree depth of a binary heap, and inlining it
// over []*Event (instead of container/heap's interface dispatch and `any`
// boxing) keeps push/pop monomorphic and allocation-free. FIFO tie-breaking
// for same-instant events falls out of comparing the monotonically
// increasing seq; the schedAt middle key is a no-op for locally scheduled
// events (it is non-decreasing in seq) and exists so cross-engine
// injections (AtCallFrom) sort by emission time first — see the Event
// field comment.
// ---------------------------------------------------------------------------

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.seq < b.seq
}

// heapPush appends ev and sifts it up to its position.
func (e *Engine) heapPush(ev *Event) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue)-1, ev)
}

// heapPopMin removes the root (callers read e.queue[0] first). The popped
// event's pos is zeroed before removal so callbacks observe it as fired.
func (e *Engine) heapPopMin() {
	q := e.queue
	n := len(q) - 1
	q[0].pos = 0
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
}

// heapRemove removes the event at heap index i (used by Cancel).
func (e *Engine) heapRemove(i int) {
	q := e.queue
	n := len(q) - 1
	q[i].pos = 0
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if i == n {
		return
	}
	e.siftDown(i, last)
	if int(last.pos)-1 == i {
		e.siftUp(i, last)
	}
}

// siftUp places ev at index i, moving it towards the root while it sorts
// before its parent. ev itself is written exactly once, at its final slot.
func (e *Engine) siftUp(i int, ev *Event) {
	q := e.queue
	for i > 0 {
		parent := (i - 1) >> 2
		p := q[parent]
		if !eventLess(ev, p) {
			break
		}
		q[i] = p
		p.pos = int32(i + 1)
		i = parent
	}
	q[i] = ev
	ev.pos = int32(i + 1)
}

// siftDown places ev at index i, moving it towards the leaves while any of
// its (up to four) children sorts before it.
func (e *Engine) siftDown(i int, ev *Event) {
	q := e.queue
	n := len(q)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		minEv := q[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(q[c], minEv) {
				min, minEv = c, q[c]
			}
		}
		if !eventLess(minEv, ev) {
			break
		}
		q[i] = minEv
		minEv.pos = int32(i + 1)
		i = min
	}
	q[i] = ev
	ev.pos = int32(i + 1)
}
