package sim

import "math"

// Rand is a small deterministic pseudo-random generator (xorshift64*) used
// throughout the simulator so that runs are reproducible from a seed and
// independent of the Go runtime's global RNG.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	// Inverse transform sampling; guard against log(0).
	u := r.Float64()
	if u >= 1 {
		u = 0.9999999999999999
	}
	return -math.Log(1 - u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
