package sim

import (
	"testing"
	"time"
)

type surfHandler struct{ n *int }

func (h surfHandler) OnEvent(any) { *h.n++ }

// TestConvenienceSurfaces exercises the thin wrappers around the core
// scheduling paths: std-duration scheduling, absolute pinned closures,
// the next-event lower bound, and the RunUntil alias.
func TestConvenienceSurfaces(t *testing.T) {
	if s := Time(1.5e9).String(); s != "1.500000s" {
		t.Fatalf("Time.String = %q", s)
	}
	eng := NewEngine()
	if got := eng.NextEventTime(); got != MaxTime {
		t.Fatalf("idle NextEventTime = %v, want MaxTime", got)
	}
	fired := 0
	ev := eng.ScheduleStd(2*time.Millisecond, func() { fired++ })
	if ev.At() != Duration(2e6) {
		t.Fatalf("ScheduleStd deadline = %v, want 2ms", ev.At())
	}
	pinned := eng.AtPinned(Duration(5e6), func() { fired++ })
	if !pinned.pinned {
		t.Fatal("AtPinned event not marked pinned")
	}
	if got := eng.NextEventTime(); got != Duration(2e6) {
		t.Fatalf("NextEventTime = %v, want the 2ms closure", got)
	}
	if end := eng.RunUntil(Duration(10e6)); end != Duration(10e6) || fired != 2 {
		t.Fatalf("RunUntil ended at %v with %d firings, want 10ms and 2", end, fired)
	}
	if got := eng.NextEventTime(); got != MaxTime {
		t.Fatalf("drained NextEventTime = %v, want MaxTime", got)
	}
}

// TestAtCallFromStampAndClamp: a cross-engine injection dispatches like a
// local event, negative fast-path delays clamp to now, and a scheduling
// stamp after the deadline is a caller bug that must panic.
func TestAtCallFromStampAndClamp(t *testing.T) {
	eng := NewEngine()
	n := 0
	h := surfHandler{&n}
	eng.AtCallFrom(Duration(1e6), Duration(1e3), h, nil)
	eng.ScheduleCall(-5, h, nil)
	eng.RunAll()
	if n != 2 {
		t.Fatalf("dispatched %d events, want 2", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AtCallFrom(from > t) did not panic")
		}
	}()
	eng.AtCallFrom(1, 2, h, nil)
}

// TestArmPinnedTimerSurface: the relative pinned arm lands on the pinned
// deadline index, and a negative relative arm clamps to the current
// instant.
func TestArmPinnedTimerSurface(t *testing.T) {
	eng := NewEngine()
	n := 0
	h := surfHandler{&n}
	var tm, tm2 Timer
	eng.ArmPinnedTimer(&tm, Duration(3e6), h, nil)
	if got := eng.NextPinnedTime(); got != Duration(3e6) {
		t.Fatalf("NextPinnedTime = %v, want 3ms", got)
	}
	eng.ArmTimer(&tm2, -1, h, nil)
	eng.RunAll()
	if n != 2 {
		t.Fatalf("fired %d timers, want 2", n)
	}
}
