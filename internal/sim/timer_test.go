package sim

import (
	"fmt"
	"testing"
)

// timerRecorder appends its arg (an int id) to a shared log.
type timerRecorder struct {
	log *[]string
	eng *Engine
}

func (r *timerRecorder) OnEvent(arg any) {
	*r.log = append(*r.log, fmt.Sprintf("%d@%d", arg, r.eng.Now()))
}

func TestTimerFireAndReuse(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	var tm Timer
	if tm.Pending() {
		t.Fatal("zero Timer must be idle")
	}
	eng.ArmTimer(&tm, 10, r, 1)
	if !tm.Pending() || tm.Deadline() != 10 {
		t.Fatalf("armed timer: pending=%v deadline=%v", tm.Pending(), tm.Deadline())
	}
	eng.RunAll()
	if !tm.Pending() == false && len(log) != 1 {
		t.Fatalf("log=%v", log)
	}
	eng.ArmTimer(&tm, 5, r, 2) // reuse after firing
	eng.RunAll()
	if fmt.Sprint(log) != "[1@10 2@15]" {
		t.Fatalf("log=%v", log)
	}
}

func TestTimerStopAndRearm(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	var tm Timer
	eng.ArmTimer(&tm, 10, r, 1)
	if !eng.StopTimer(&tm) {
		t.Fatal("StopTimer on a pending timer must report true")
	}
	if eng.StopTimer(&tm) {
		t.Fatal("StopTimer on an idle timer must report false")
	}
	eng.RunAll()
	if len(log) != 0 {
		t.Fatalf("stopped timer fired: %v", log)
	}
	// Re-arm in place without an explicit stop: only the last deadline
	// fires.
	eng.ArmTimer(&tm, 10, r, 2)
	eng.ArmTimer(&tm, 20, r, 3)
	eng.RunAll()
	if fmt.Sprint(log) != "[3@20]" {
		t.Fatalf("log=%v", log)
	}
}

// TestTimerSeqTieBreak pins the determinism contract: a timer armed by the
// n-th scheduling call fires exactly where the n-th closure Schedule would
// have, including at equal instants.
func TestTimerSeqTieBreak(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	var early, late Timer
	eng.ArmTimerAt(&early, 100, r, 1)                              // seq 0
	eng.Schedule(100, func() { log = append(log, "closure@100") }) // seq 1
	eng.ArmTimerAt(&late, 100, r, 2)                               // seq 2
	eng.ScheduleCall(100, r, 3)                                    // seq 3
	eng.RunAll()
	want := "[1@100 closure@100 2@100 3@100]"
	if fmt.Sprint(log) != want {
		t.Fatalf("log=%v want %v", log, want)
	}
}

// TestTimerRearmInHandler exercises the self-perpetuating tick pattern.
type tickHandler struct {
	eng  *Engine
	tm   *Timer
	n    int
	seen []Time
}

func (h *tickHandler) OnEvent(any) {
	h.seen = append(h.seen, h.eng.Now())
	h.n--
	if h.n > 0 {
		h.eng.ArmTimer(h.tm, 7, h, nil)
	}
}

func TestTimerRearmInHandler(t *testing.T) {
	eng := NewEngine()
	var tm Timer
	h := &tickHandler{eng: eng, tm: &tm, n: 4}
	eng.ArmTimer(&tm, 7, h, nil)
	eng.RunAll()
	if len(h.seen) != 4 || h.seen[0] != 7 || h.seen[1] != 14 || h.seen[2] != 21 || h.seen[3] != 28 {
		t.Fatalf("ticks=%v", h.seen)
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending=%d", eng.Pending())
	}
}

// TestTimerWheelLevels arms timers across every wheel level (and the
// overflow list) and checks they all fire, in order, at their exact
// deadlines.
func TestTimerWheelLevels(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	delays := []Time{
		1,     // below level 0: straight to heap
		40e3,  // level 0 (~16 µs slots)
		3e6,   // level 1
		150e6, // level 2
		9e9,   // level 3
		500e9, // level 4
		40e12, // level 5
		5e15,  // beyond the wheel: overflow list (~58 days)
	}
	timers := make([]Timer, len(delays))
	for i, d := range delays {
		eng.ArmTimer(&timers[i], d, r, i)
	}
	if eng.Pending() != len(delays) {
		t.Fatalf("pending=%d want %d", eng.Pending(), len(delays))
	}
	eng.RunAll()
	want := "[0@1 1@40000 2@3000000 3@150000000 4@9000000000 5@500000000000 6@40000000000000 7@5000000000000000]"
	if fmt.Sprint(log) != want {
		t.Fatalf("log=%v", log)
	}
}

// TestTimerStopAcrossLevels stops one parked timer per wheel level and
// verifies none fire and the wheel empties.
func TestTimerStopAcrossLevels(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	delays := []Time{1, 40e3, 3e6, 150e6, 9e9, 500e9, 40e12, 5e15}
	timers := make([]Timer, len(delays))
	for i, d := range delays {
		eng.ArmTimer(&timers[i], d, r, i)
	}
	for i := range timers {
		if !eng.StopTimer(&timers[i]) {
			t.Fatalf("timer %d not pending", i)
		}
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending=%d after stopping all", eng.Pending())
	}
	eng.RunAll()
	if len(log) != 0 {
		t.Fatalf("stopped timers fired: %v", log)
	}
}

// TestTimerRunHorizon checks Run(until) semantics with parked timers: the
// clock settles at the horizon and the timer fires on a later Run.
func TestTimerRunHorizon(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	var tm Timer
	eng.ArmTimer(&tm, Time(300e6), r, 1)
	if got := eng.Run(Time(100e6)); got != Time(100e6) {
		t.Fatalf("Run returned %v", got)
	}
	if len(log) != 0 || !tm.Pending() {
		t.Fatalf("timer fired early: %v pending=%v", log, tm.Pending())
	}
	eng.Run(Time(400e6))
	if fmt.Sprint(log) != "[1@300000000]" {
		t.Fatalf("log=%v", log)
	}
}

// TestTimerArmPast clamps to the current instant, like At.
func TestTimerArmPast(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	var tm Timer
	eng.Schedule(100, func() {
		eng.ArmTimerAt(&tm, 5, r, 1) // in the past
	})
	eng.RunAll()
	if fmt.Sprint(log) != "[1@100]" {
		t.Fatalf("log=%v", log)
	}
}

// ---------------------------------------------------------------------------
// Differential fuzz: an identical randomized schedule/cancel/re-arm script
// is applied to two engines — one through the Timer/wheel surface, one
// through the closure heap surface — and both must dispatch the identical
// event sequence. Both consume one seq per arm, so equal-instant
// tie-breaking must match exactly.
// ---------------------------------------------------------------------------

type diffDriver struct {
	useTimers bool
	eng       *Engine
	rng       *Rand
	timers    []Timer
	handles   []*Event
	fired     *[]string
	handlers  []diffFire
	opsLeft   int
}

type diffFire struct {
	d  *diffDriver
	id int
}

func (f *diffFire) OnEvent(any) {
	*f.d.fired = append(*f.d.fired, fmt.Sprintf("%d@%d", f.id, f.d.eng.Now()))
}

// step is the op-script event: at each step the driver applies one random
// arm/stop to a random timer slot, then reschedules itself. Both engines
// share the rng *sequence* (fresh generator per run, same seed).
func (d *diffDriver) OnEvent(any) {
	if d.opsLeft <= 0 {
		return
	}
	d.opsLeft--
	slot := d.rng.Intn(len(d.timers))
	op := d.rng.Intn(4)
	// Delays spread across wheel levels: from sub-slot to level-4 range.
	exp := d.rng.Intn(36)
	delay := Time(1 + d.rng.Intn(1<<uint(exp)))
	switch {
	case op <= 1: // arm / re-arm
		if d.useTimers {
			d.eng.ArmTimer(&d.timers[slot], delay, &d.handlers[slot], nil)
		} else {
			if h := d.handles[slot]; h != nil && !h.Cancelled() {
				d.eng.Cancel(h)
			}
			f := &d.handlers[slot]
			d.handles[slot] = d.eng.Schedule(delay, func() { f.OnEvent(nil) })
		}
	case op == 2: // stop
		if d.useTimers {
			d.eng.StopTimer(&d.timers[slot])
		} else {
			if h := d.handles[slot]; h != nil {
				d.eng.Cancel(h)
				d.handles[slot] = nil
			}
		}
	default: // let time pass (no-op: the step advance below is the pass)
	}
	d.eng.ScheduleCall(Time(1+d.rng.Intn(1<<uint(d.rng.Intn(32)))), d, nil)
}

func runTimerDiff(seed uint64, useTimers bool, steps, slots int) []string {
	eng := NewEngine()
	var fired []string
	d := &diffDriver{
		useTimers: useTimers,
		eng:       eng,
		rng:       NewRand(seed),
		timers:    make([]Timer, slots),
		handles:   make([]*Event, slots),
		fired:     &fired,
		opsLeft:   steps,
	}
	d.handlers = make([]diffFire, slots)
	for i := range d.handlers {
		d.handlers[i] = diffFire{d: d, id: i}
	}
	eng.ScheduleCall(0, d, nil)
	eng.RunAll()
	return fired
}

func TestTimerHeapDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		heap := runTimerDiff(seed, false, 400, 8)
		wheel := runTimerDiff(seed, true, 400, 8)
		if fmt.Sprint(heap) != fmt.Sprint(wheel) {
			t.Fatalf("seed %d: wheel and heap schedules diverge\nheap:  %v\nwheel: %v", seed, heap, wheel)
		}
		if seed == 1 && len(heap) == 0 {
			t.Fatal("differential script fired nothing; widen the op mix")
		}
	}
}

func FuzzTimerHeapEquivalence(f *testing.F) {
	f.Add(uint64(7), uint16(300))
	f.Add(uint64(42), uint16(800))
	f.Fuzz(func(t *testing.T, seed uint64, steps16 uint16) {
		steps := int(steps16)%1000 + 10
		heap := runTimerDiff(seed, false, steps, 6)
		wheel := runTimerDiff(seed, true, steps, 6)
		if fmt.Sprint(heap) != fmt.Sprint(wheel) {
			t.Fatalf("seed %d steps %d: diverged\nheap:  %v\nwheel: %v", seed, steps, heap, wheel)
		}
	})
}

// TestTimerAllocs pins the allocation-free contract: arm, stop, re-arm,
// and fire cycles on an embedded timer allocate nothing.
func TestTimerAllocs(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}
	var tm Timer
	h := Handler(r)
	// Warm: the first fire may grow the log slice.
	eng.ArmTimer(&tm, Time(250e6), h, nil)
	eng.StopTimer(&tm)

	allocs := testing.AllocsPerRun(1000, func() {
		eng.ArmTimer(&tm, Time(250e6), h, nil) // parks in the wheel
		eng.ArmTimer(&tm, Time(90e6), h, nil)  // re-arm across levels
		eng.ArmTimer(&tm, Time(5e3), h, nil)   // re-arm into the heap
		eng.StopTimer(&tm)
	})
	if allocs != 0 {
		t.Fatalf("timer arm/re-arm/stop allocates %v per cycle; want 0", allocs)
	}

	// A firing cycle (arm → dispatch → re-arm from the handler) is also
	// allocation-free once the engine's heap has warmed.
	th := &tickHandler{eng: eng, tm: &tm}
	allocs = testing.AllocsPerRun(1000, func() {
		th.n = 2
		th.seen = th.seen[:0]
		eng.ArmTimer(&tm, 7, th, nil)
		eng.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("timer fire cycle allocates %v; want 0", allocs)
	}
}
