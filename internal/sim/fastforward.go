package sim

// Fast-forward: the engine-level primitive behind the hybrid fluid/packet
// mode (internal/fluid). A skip is a freeze-and-shift: the clock jumps
// forward by d and every *non-pinned* pending event — heap events, wheel
// timers, overflow timers — moves with it, keeping its distance to the
// clock and its dispatch order (a uniform shift of (at, schedAt) preserves
// the (at, schedAt, seq) total order among shifted events). The frozen
// packet-level state thus re-enters at the far side of the skip exactly as
// it left: in-flight transmissions, RTOs, pacing gaps, delayed ACKs all
// resume with identical relative timing. Pinned events are the epoch
// boundaries: they keep their absolute deadlines, bound every skip
// (FastForward panics rather than hop one), and fire on schedule.
//
// Event payloads may carry absolute timestamps (a packet's SentAt, a
// delivery-rate stamp); the caller passes shiftArg to translate those
// forward so the frozen state stays self-consistent. Component-held
// absolute state (TCP connection stamps, CoDel deadlines, …) is shifted by
// the caller through per-component ShiftTime methods — the engine only
// owns the event stream.

// NextPinnedTime returns the earliest deadline among pending pinned
// events, or MaxTime when none is pinned. Pinned timers never park in the
// timing wheel (placeTimer), so a heap scan sees every one of them.
func (e *Engine) NextPinnedTime() Time {
	t := MaxTime
	for _, ev := range e.queue {
		if ev.pinned && ev.at < t {
			t = ev.at
		}
	}
	return t
}

// Horizon returns the `until` of the Run call currently in progress
// (MaxTime under RunAll). Fast-forward controllers cap skips at it so a
// windowed RunUntil driver never observes a clock past its window.
func (e *Engine) Horizon() Time { return e.horizon }

// FastForward advances the clock by d in one step, shifting every
// non-pinned pending event with it. It must be called from within a
// dispatching handler (or between Run windows); the caller is responsible
// for having advanced all frozen component state across the skip. shiftArg
// (optional) is invoked once per shifted event whose payload is non-nil —
// for timer events the timer's payload, not the *Timer itself — so
// payload-held absolute timestamps can be translated by +d.
//
// Panics if a pinned event lies strictly inside the skipped interval: the
// caller must bound d by NextPinnedTime()-Now(). A pinned deadline exactly
// at the skip target is legal and fires immediately after the skip.
func (e *Engine) FastForward(d Time, shiftArg func(arg any)) {
	if d < 0 {
		panic("sim: FastForward with negative delta")
	}
	if d == 0 {
		return
	}
	target := e.now + d

	// Heap events: shift everything non-pinned, verify everything pinned.
	for _, ev := range e.queue {
		if ev.pinned {
			if ev.at < target {
				panic("sim: FastForward across a pinned event")
			}
			continue
		}
		ev.at += d
		ev.schedAt += d
		if shiftArg != nil {
			arg := ev.arg
			if ev.kind == kindTimer {
				arg = ev.arg.(*Timer).arg
			}
			if arg != nil {
				shiftArg(arg)
			}
		}
	}
	// The relative order of shifted events is preserved, but pinned events
	// keep their absolute keys, so the mixed heap must be rebuilt.
	e.heapInit()

	// Wheel and overflow timers: unchain every parked timer, shift it,
	// and re-place it against the (unchanged, monotone) slot cursors.
	w := &e.wheel
	if w.count > 0 {
		var flushed *Timer
		for l := 0; l < wheelLevels; l++ {
			if w.occ[l] == 0 {
				continue
			}
			for idx := 0; idx < wheelSlots; idx++ {
				for t := w.slot[l][idx]; t != nil; {
					nx := t.next
					t.next, t.prev = flushed, nil
					flushed = t
					t = nx
				}
				w.slot[l][idx] = nil
			}
			w.occ[l] = 0
		}
		for t := w.overflow; t != nil; {
			nx := t.next
			t.next, t.prev = flushed, nil
			flushed = t
			t = nx
		}
		w.overflow = nil
		w.overflowMin = MaxTime
		w.count = 0
		for flushed != nil {
			t := flushed
			flushed = t.next
			t.next = nil
			t.ev.at += d
			t.ev.schedAt += d
			if shiftArg != nil && t.arg != nil {
				shiftArg(t.arg)
			}
			t.state = timerIdle
			e.placeTimer(t)
		}
		w.earliest = w.scanEarliest()
	}

	e.now = target
}

// heapInit restores the heap invariant over the whole queue after a bulk
// key mutation (FastForward). O(n).
func (e *Engine) heapInit() {
	q := e.queue
	for i := (len(q) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i, q[i])
	}
}
