package sim

import (
	"fmt"
	"testing"
)

// TestPinnedPlacementInvisible: with fast-forward never invoked, arming a
// timer pinned instead of unpinned must not change the dispatch order —
// pinned timers skip the wheel, but wheel placement is invisible to the
// (at, schedAt, seq) event stream.
func TestPinnedPlacementInvisible(t *testing.T) {
	run := func(pin bool) []string {
		eng := NewEngine()
		var log []string
		r := &timerRecorder{log: &log, eng: eng}
		// A mix of deadlines spanning heap-imminent and wheel-parked
		// ranges, including exact ties.
		deadlines := []Time{5, 1 << 20, 5, 1 << 20, 300, 1 << 15, 1 << 20}
		timers := make([]Timer, len(deadlines))
		for i, at := range deadlines {
			if pin && i%2 == 0 {
				eng.ArmPinnedTimerAt(&timers[i], at, r, i)
			} else {
				eng.ArmTimerAt(&timers[i], at, r, i)
			}
		}
		eng.RunAll()
		return log
	}
	plain, pinned := run(false), run(true)
	if fmt.Sprint(plain) != fmt.Sprint(pinned) {
		t.Fatalf("pinned placement changed dispatch order:\nplain  %v\npinned %v", plain, pinned)
	}
}

func TestNextPinnedTime(t *testing.T) {
	eng := NewEngine()
	r := &timerRecorder{log: new([]string), eng: eng}
	if got := eng.NextPinnedTime(); got != MaxTime {
		t.Fatalf("empty engine NextPinnedTime = %v", got)
	}
	var a, b, c Timer
	eng.ArmTimerAt(&a, 50, r, 0) // unpinned: invisible
	eng.ArmPinnedTimerAt(&b, 200, r, 1)
	eng.ArmPinnedTimerAt(&c, 120, r, 2)
	if got := eng.NextPinnedTime(); got != 120 {
		t.Fatalf("NextPinnedTime = %v, want 120", got)
	}
	// Re-arming a pinned timer unpinned clears the mark.
	eng.ArmTimerAt(&c, 120, r, 2)
	if got := eng.NextPinnedTime(); got != 200 {
		t.Fatalf("after unpinning: NextPinnedTime = %v, want 200", got)
	}
	if eng.StopTimer(&b); eng.NextPinnedTime() != MaxTime {
		t.Fatalf("after stop: NextPinnedTime = %v, want MaxTime", eng.NextPinnedTime())
	}
}

// TestFastForwardShiftsEverything: heap events, wheel timers, and
// overflow timers all move by the skip delta; the pinned bound fires at
// its absolute deadline.
func TestFastForwardShiftsEverything(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}

	const skip = Time(1e9)
	var heapT, wheelT, overflowT, pinnedT Timer
	eng.ArmTimerAt(&heapT, 100, r, 0)            // imminent: heap-resident
	eng.ArmTimerAt(&wheelT, 1<<21, r, 1)         // wheel-parked
	eng.ArmTimerAt(&overflowT, Time(1)<<45, r, 2) // beyond the wheel window
	eng.ArmPinnedTimerAt(&pinnedT, skip, r, 3)   // exactly at the skip target: legal
	eng.At(7, func() { log = append(log, fmt.Sprintf("closure@%d", eng.Now())) })

	eng.FastForward(skip, nil)
	if eng.Now() != skip {
		t.Fatalf("clock = %v, want %v", eng.Now(), skip)
	}
	eng.RunAll()
	want := fmt.Sprintf("[3@%d closure@%d 0@%d 1@%d 2@%d]",
		skip, skip+7, skip+100, skip+Time(1<<21), skip+Time(1)<<45)
	if fmt.Sprint(log) != want {
		t.Fatalf("log = %v\nwant  %v", log, want)
	}
}

// TestFastForwardPreservesRelativeOrder: a deterministic pseudo-random
// mix of timers and events fired with and without a mid-stream skip must
// produce the same sequence of (id, time-since-start-minus-skips).
func TestFastForwardPreservesRelativeOrder(t *testing.T) {
	build := func(eng *Engine, log *[]string) {
		r := &timerRecorder{log: log, eng: eng}
		rng := NewRand(42)
		timers := make([]Timer, 64)
		for i := range timers {
			at := Time(rng.Intn(1 << 24))
			eng.ArmTimerAt(&timers[i], at, r, i)
		}
		eng.RunAll()
	}
	var plain []string
	build(NewEngine(), &plain)

	var skipped []string
	eng := NewEngine()
	r := &timerRecorder{log: &skipped, eng: eng}
	rng := NewRand(42)
	timers := make([]Timer, 64)
	for i := range timers {
		at := Time(rng.Intn(1 << 24))
		eng.ArmTimerAt(&timers[i], at, r, i)
	}
	const skip = Time(5e8)
	eng.FastForward(skip, nil)
	eng.RunAll()
	// Un-shift the recorded fire times for comparison.
	for i, s := range skipped {
		var id int
		var at Time
		fmt.Sscanf(s, "%d@%d", &id, &at)
		skipped[i] = fmt.Sprintf("%d@%d", id, at-skip)
	}
	if fmt.Sprint(plain) != fmt.Sprint(skipped) {
		t.Fatalf("skip perturbed relative order:\nplain   %v\nskipped %v", plain, skipped)
	}
}

func TestFastForwardPanicsAcrossPinned(t *testing.T) {
	eng := NewEngine()
	r := &timerRecorder{log: new([]string), eng: eng}
	var tm Timer
	eng.ArmPinnedTimerAt(&tm, 500, r, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("FastForward across a pinned event must panic")
		}
	}()
	eng.FastForward(501, nil)
}

// TestFastForwardShiftArg: payload timestamps are handed to the shift
// callback exactly once per shifted event, including wheel-parked timers
// and pooled typed events — but not for pinned events.
func TestFastForwardShiftArg(t *testing.T) {
	eng := NewEngine()
	r := &timerRecorder{log: new([]string), eng: eng}
	type stamp struct{ at Time }
	a, b, c := &stamp{10}, &stamp{20}, &stamp{30}
	var near, far, pin Timer
	eng.ArmTimerAt(&near, 100, r, a)    // heap
	eng.ArmTimerAt(&far, 1<<22, r, b)   // wheel
	eng.ArmPinnedTimerAt(&pin, 1e6, r, c) // pinned: not shifted
	eng.AtCall(50, r, a)                // pooled event sharing payload a

	const skip = Time(1e6)
	shifts := map[*stamp]int{}
	eng.FastForward(skip, func(arg any) {
		s := arg.(*stamp)
		s.at += skip
		shifts[s]++
	})
	if shifts[a] != 2 || shifts[b] != 1 || shifts[c] != 0 {
		t.Fatalf("shift counts: a=%d b=%d c=%d, want 2/1/0", shifts[a], shifts[b], shifts[c])
	}
	if a.at != 10+2*skip || b.at != 20+skip || c.at != 30 {
		t.Fatalf("stamps: a=%d b=%d c=%d", a.at, b.at, c.at)
	}
}

// TestFastForwardArmedTimerReentry: the armed-but-skipped timer edge
// case. A wheel-parked timer carried across a skip must remain fully
// operational: stoppable in O(1), re-armable, and it fires at the shifted
// deadline if left alone.
func TestFastForwardArmedTimerReentry(t *testing.T) {
	eng := NewEngine()
	var log []string
	r := &timerRecorder{log: &log, eng: eng}

	var rto, stopped Timer
	eng.ArmTimerAt(&rto, 1<<20, r, 0)
	eng.ArmTimerAt(&stopped, 1<<21, r, 1)
	eng.FastForward(3e5, nil)

	if !rto.Pending() || !stopped.Pending() {
		t.Fatal("armed timers must stay pending across a skip")
	}
	if !eng.StopTimer(&stopped) {
		t.Fatal("StopTimer after a skip must still unlink")
	}
	// Re-arm the survivor to a nearer deadline, as an RTO handler would.
	eng.ArmTimer(&rto, 10, r, 2)
	eng.RunAll()
	want := fmt.Sprintf("[2@%d]", Time(3e5)+10)
	if fmt.Sprint(log) != want {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

func TestFastForwardZeroAndHorizon(t *testing.T) {
	eng := NewEngine()
	eng.FastForward(0, nil) // no-op
	if eng.Now() != 0 {
		t.Fatalf("zero skip moved the clock to %v", eng.Now())
	}
	done := false
	eng.At(10, func() {
		if eng.Horizon() != 1000 {
			t.Errorf("Horizon inside Run = %v, want 1000", eng.Horizon())
		}
		done = true
	})
	eng.Run(1000)
	if !done {
		t.Fatal("event did not fire")
	}
}
