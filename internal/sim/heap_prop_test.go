package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refScheduler is a reference implementation of the engine's ordering
// contract — a container/heap binary min-heap over (time, seq), the exact
// structure the engine used before the inlined 4-ary heap — driven through
// the same schedule/cancel/dispatch scripts as the real engine to prove the
// replacement preserves dispatch order, including same-instant FIFO
// tie-breaking.
type refScheduler struct {
	now   Time
	seq   uint64
	queue refQueue
}

type refEvent struct {
	at    Time
	seq   uint64
	index int
	id    int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func (r *refScheduler) schedule(d Time, id int) *refEvent {
	if d < 0 {
		d = 0
	}
	ev := &refEvent{at: r.now + d, seq: r.seq, id: id}
	r.seq++
	heap.Push(&r.queue, ev)
	return ev
}

func (r *refScheduler) cancel(ev *refEvent) {
	if ev == nil || ev.index == -1 {
		return
	}
	heap.Remove(&r.queue, ev.index)
	ev.index = -1
}

func (r *refScheduler) drain() []int {
	var order []int
	for r.queue.Len() > 0 {
		ev := heap.Pop(&r.queue).(*refEvent)
		ev.index = -1
		r.now = ev.at
		order = append(order, ev.id)
	}
	return order
}

// op scripts one generator step. Encodings (from fuzz bytes or the PRNG):
// schedule with a small delay (dense ties on purpose), or cancel one of the
// still-pending events.
type op struct {
	cancel bool
	delay  Time   // schedule: delay in [0, 16)
	victim uint32 // cancel: index into pending handles
}

// runScript drives the engine and the reference through the same script and
// compares full dispatch order.
func runScript(t *testing.T, ops []op) {
	t.Helper()
	eng := NewEngine()
	ref := &refScheduler{}

	var got []int
	var engEvents []*Event
	var refEvents []*refEvent
	for i, o := range ops {
		if o.cancel {
			if len(engEvents) == 0 {
				continue
			}
			v := int(o.victim) % len(engEvents)
			eng.Cancel(engEvents[v])
			ref.cancel(refEvents[v])
			continue
		}
		id := i
		engEvents = append(engEvents, eng.Schedule(o.delay, func() { got = append(got, id) }))
		refEvents = append(refEvents, ref.schedule(o.delay, id))
	}
	eng.RunAll()
	want := ref.drain()

	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, reference dispatched %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dispatch order diverges at %d: engine fired %d, reference %d\ngot  %v\nwant %v",
				i, got[i], want[i], got, want)
		}
	}
}

// TestHeapMatchesReference drives many random schedule/cancel scripts with
// heavy same-instant collision pressure through both heaps.
func TestHeapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCEB14AE))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(400)
		ops := make([]op, n)
		for i := range ops {
			if rng.Intn(4) == 0 {
				ops[i] = op{cancel: true, victim: rng.Uint32()}
			} else {
				ops[i] = op{delay: Time(rng.Intn(16))}
			}
		}
		runScript(t, ops)
	}
}

// TestHeapMatchesReferenceNested extends the property to events scheduled
// from inside callbacks (the engine's real usage pattern): every firing may
// schedule follow-ups, deterministically derived from its id.
func TestHeapMatchesReferenceNested(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		eng := NewEngine()
		ref := &refScheduler{}
		var got, want []int

		// Engine side: callbacks reschedule one or two children.
		next := 0
		var fire func(id int)
		spawn := func(id int, d Time) {
			eng.Schedule(d, func() { fire(id) })
		}
		fire = func(id int) {
			got = append(got, id)
			if id < 2000 {
				spawn(next+1000, Time(id%7))
				if id%3 == 0 {
					spawn(next + 2000, Time(id % 5))
				}
				next++
			}
		}
		for i := 0; i < 50; i++ {
			spawn(i, Time((int(seed)*i)%11))
		}
		eng.RunAll()

		// Reference side: identical logic over the reference heap.
		refNext := 0
		for i := 0; i < 50; i++ {
			ref.schedule(Time((int(seed)*i)%11), i)
		}
		for ref.queue.Len() > 0 {
			ev := heap.Pop(&ref.queue).(*refEvent)
			ev.index = -1
			ref.now = ev.at
			want = append(want, ev.id)
			if ev.id < 2000 {
				ref.schedule(Time(ev.id%7), refNext+1000)
				if ev.id%3 == 0 {
					ref.schedule(Time(ev.id%5), refNext+2000)
				}
				refNext++
			}
		}

		if len(got) != len(want) {
			t.Fatalf("seed %d: %d vs %d events", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: order diverges at %d (%d vs %d)", seed, i, got[i], want[i])
			}
		}
	}
}

// FuzzHeapDispatchOrder fuzzes raw op scripts through both heaps. Three
// bytes per op: kind, delay/victim low, victim high.
func FuzzHeapDispatchOrder(f *testing.F) {
	f.Add([]byte{0, 5, 0, 0, 5, 0, 1, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0})
	f.Add([]byte{0, 3, 0, 1, 0, 0, 0, 3, 0, 1, 0, 1, 0, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ops []op
		for i := 0; i+2 < len(data) && len(ops) < 2048; i += 3 {
			if data[i]%4 == 3 {
				ops = append(ops, op{cancel: true, victim: uint32(data[i+1]) | uint32(data[i+2])<<8})
			} else {
				ops = append(ops, op{delay: Time(data[i+1] % 16)})
			}
		}
		runScript(t, ops)
	})
}
