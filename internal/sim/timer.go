package sim

import "math/bits"

// Timer is a caller-embedded, cancellable, reschedulable timer — the
// fourth scheduling surface (see the package comment). It exists for the
// RTO pattern: timers that are re-armed or stopped far more often than
// they fire (retransmission, pacing, delayed ACK, control loops). The
// zero Timer is ready to use; embed one per logical timer in the owning
// struct and arm it with Engine.ArmTimer. Arming, stopping, and re-arming
// never allocate.
//
// Behind the API the engine parks far-future timers in a hierarchical
// timing wheel (Varghese–Lauck), where stop and re-arm are O(1) list
// unlinks instead of heap removals. As the clock approaches a timer's
// deadline its wheel slot is flushed into the main event heap, so firing
// order is governed by exactly the same (time, schedule time, seq)
// comparison as every other event: a Timer armed by the n-th scheduling
// call fires precisely where the n-th Schedule/ScheduleCall would have —
// wheel placement is invisible to the event stream.
type Timer struct {
	// ev is the timer's residency in the engine's heap while it is within
	// the imminent horizon; ev.arg permanently back-points to the Timer.
	ev  Event
	h   Handler
	arg any

	state uint8
	level uint8 // wheel level while state == timerInWheel
	// pinned mirrors ev.pinned for the armed incarnation (set by
	// ArmPinnedTimer/ArmPinnedTimerAt, cleared by the regular arms).
	// Pinned timers never park in the wheel — see placeTimer.
	pinned bool

	// next/prev link the timer into its wheel bucket or the overflow list.
	next, prev *Timer
}

// Timer states.
const (
	timerIdle uint8 = iota
	timerInHeap
	timerInWheel
	timerInOverflow
)

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.state != timerIdle }

// Deadline returns the virtual time the timer is (or was last) armed for.
func (t *Timer) Deadline() Time { return t.ev.at }

// ArmTimer arms t to run h.OnEvent(arg) after delay d, replacing any
// pending deadline (re-arming in place is the expected idiom; no Stop is
// needed first). A negative delay fires at the current instant.
func (e *Engine) ArmTimer(t *Timer, d Time, h Handler, arg any) {
	if d < 0 {
		d = 0
	}
	e.ArmTimerAt(t, e.now+d, h, arg)
}

// ArmTimerAt arms t for absolute virtual time at (clamped to now), with
// the same re-arm semantics as ArmTimer.
func (e *Engine) ArmTimerAt(t *Timer, at Time, h Handler, arg any) {
	e.armTimerAt(t, at, h, arg, false)
}

// ArmPinnedTimer arms t like ArmTimer but marks the deadline pinned: a
// hard epoch boundary that FastForward never shifts and never skips
// across (see fastforward.go). Use it for control-plane cadences that
// must fire at their absolute instant even while the data plane is being
// fluid-advanced: Cebinae rotation/configure, monitor sampling, traffic
// phase transitions, flow starts. A later regular ArmTimer on the same
// Timer clears the mark. With fast-forward never invoked, a pinned timer
// fires exactly where the unpinned arm would have: placement (wheel vs
// heap) is invisible to the (at, schedAt, seq) dispatch order.
func (e *Engine) ArmPinnedTimer(t *Timer, d Time, h Handler, arg any) {
	if d < 0 {
		d = 0
	}
	e.armTimerAt(t, e.now+d, h, arg, true)
}

// ArmPinnedTimerAt is ArmTimerAt with the pinned mark (see ArmPinnedTimer).
func (e *Engine) ArmPinnedTimerAt(t *Timer, at Time, h Handler, arg any) {
	e.armTimerAt(t, at, h, arg, true)
}

func (e *Engine) armTimerAt(t *Timer, at Time, h Handler, arg any, pinned bool) {
	if t.state != timerIdle {
		e.StopTimer(t)
	}
	if at < e.now {
		at = e.now
	}
	t.ev.at = at
	t.ev.schedAt = e.now
	t.ev.seq = e.seq
	t.ev.kind = kindTimer
	t.ev.pinned = pinned
	t.pinned = pinned
	if t.ev.arg == nil {
		t.ev.arg = t
	}
	t.h = h
	t.arg = arg
	e.seq++
	e.placeTimer(t)
}

// StopTimer cancels a pending timer. It reports whether the timer was
// pending; stopping an idle timer is a no-op. A wheel-resident timer —
// the common case for timers stopped long before their deadline — is
// unlinked in O(1).
func (e *Engine) StopTimer(t *Timer) bool {
	switch t.state {
	case timerInHeap:
		if t.ev.pos != 0 {
			e.heapRemove(int(t.ev.pos) - 1)
		}
	case timerInWheel:
		w := &e.wheel
		shift := wheelTickBits + uint(t.level)*wheelSlotBits
		idx := (int64(t.ev.at) >> shift) & (wheelSlots - 1)
		e.unlinkTimer(t, &w.slot[t.level][idx])
		if w.slot[t.level][idx] == nil {
			w.occ[t.level] &^= 1 << uint(idx)
		}
		w.count--
	case timerInOverflow:
		e.unlinkTimer(t, &e.wheel.overflow)
		if e.wheel.overflow == nil {
			e.wheel.overflowMin = MaxTime
		}
		e.wheel.count--
	default:
		return false
	}
	t.state = timerIdle
	t.arg = nil
	return true
}

// unlinkTimer removes t from the doubly-linked bucket whose head is
// *head.
func (e *Engine) unlinkTimer(t *Timer, head **Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		*head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev = nil, nil
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel.
//
// Six levels of 64 slots each; the level-0 slot spans 2^14 ns (≈16 µs) and
// each level is 64× coarser than the previous, so the wheel addresses
// ≈13 days of virtual time (beyond that, timers wait on an overflow list).
// Slots are doubly-linked intrusive lists with a per-level occupancy
// bitmap, so advancing the wheel skips empty slots with bit arithmetic
// instead of scanning.
//
// Slot indices are absolute: slot s at level l covers virtual times
// [s<<shift, (s+1)<<shift) with shift = 14 + 6l, and next[l] is the first
// index not yet flushed. The engine flushes every slot whose start lies at
// or before the time of the event it is about to dispatch; flushed timers
// either cascade into finer levels or — once imminent — enter the main
// event heap carrying the (at, seq) assigned when they were armed, which
// is what makes wheel scheduling byte-identical to heap scheduling.
// ---------------------------------------------------------------------------

const (
	wheelLevels   = 6
	wheelSlotBits = 6
	wheelSlots    = 1 << wheelSlotBits
	wheelTickBits = 14
	wheelTopShift = wheelTickBits + (wheelLevels-1)*wheelSlotBits
)

type timerWheel struct {
	// next[l] is the absolute index of the first unflushed slot at level l.
	next [wheelLevels]int64
	// occ[l] has bit (s & 63) set iff slot s's bucket is non-empty.
	occ  [wheelLevels]uint64
	slot [wheelLevels][wheelSlots]*Timer

	// overflow holds timers beyond the top level's window; overflowMin is
	// a lower bound on their earliest deadline.
	overflow    *Timer
	overflowMin Time

	// count is the number of parked timers (wheel + overflow).
	count int
	// earliest is a lower bound on the start of the first occupied slot
	// (MaxTime when the wheel is empty); the engine's per-dispatch fast
	// path is a single comparison against it.
	earliest Time
}

// placeTimer parks an armed timer at the finest level whose window can
// address its deadline, or pushes it straight onto the heap when the
// deadline is imminent (inside an already-flushed slot).
func (e *Engine) placeTimer(t *Timer) {
	if t.pinned {
		// Pinned deadlines stay on the heap so NextPinnedTime can see
		// every one of them with a single heap scan; the wheel would hide
		// them behind a slot-start lower bound. Dispatch order is
		// unchanged — wheel placement is invisible to the event stream.
		t.state = timerInHeap
		e.heapPush(&t.ev)
		return
	}
	w := &e.wheel
	at := int64(t.ev.at)
	for l := 0; l < wheelLevels; l++ {
		shift := wheelTickBits + uint(l)*wheelSlotBits
		s := at >> shift
		if s < w.next[l] {
			break // slot already flushed: imminent, heap it
		}
		if s < w.next[l]+wheelSlots {
			idx := s & (wheelSlots - 1)
			head := &w.slot[l][idx]
			t.next = *head
			t.prev = nil
			if *head != nil {
				(*head).prev = t
			}
			*head = t
			w.occ[l] |= 1 << uint(idx)
			t.state = timerInWheel
			t.level = uint8(l)
			w.count++
			if start := Time(s << shift); start < w.earliest {
				w.earliest = start
			}
			return
		}
	}
	if at>>wheelTopShift >= w.next[wheelLevels-1]+wheelSlots {
		// Beyond the top level's window (≈13 days out): overflow list.
		t.next = w.overflow
		t.prev = nil
		if w.overflow != nil {
			w.overflow.prev = t
		}
		w.overflow = t
		t.state = timerInOverflow
		w.count++
		if t.ev.at < w.overflowMin {
			w.overflowMin = t.ev.at
		}
		if t.ev.at < w.earliest {
			w.earliest = t.ev.at
		}
		return
	}
	t.state = timerInHeap
	e.heapPush(&t.ev)
}

// advanceWheel flushes every slot whose start lies at or before h.
// Flushed timers re-place themselves: into a finer level, or into the
// event heap once imminent. On return every parked timer's slot starts
// strictly after h, so the heap top is authoritative for all events up to
// and including h.
func (e *Engine) advanceWheel(h Time) {
	w := &e.wheel
	var flushed *Timer
	for l := 0; l < wheelLevels; l++ {
		shift := wheelTickBits + uint(l)*wheelSlotBits
		target := int64(h) >> shift
		if w.next[l] > target {
			continue
		}
		if w.occ[l] != 0 {
			span := target - w.next[l]
			mask := ^uint64(0)
			if span < wheelSlots-1 {
				run := ^uint64(0) >> uint(63-span)
				mask = bits.RotateLeft64(run, int(w.next[l]&(wheelSlots-1)))
			}
			m := w.occ[l] & mask
			w.occ[l] &^= m
			for m != 0 {
				idx := bits.TrailingZeros64(m)
				m &= m - 1
				for t := w.slot[l][idx]; t != nil; {
					nx := t.next
					t.next, t.prev = flushed, nil
					flushed = t
					t = nx
				}
				w.slot[l][idx] = nil
			}
		}
		w.next[l] = target + 1
	}
	// The top-level cursor may have advanced into the overflow list's
	// range: pull newly addressable timers back in.
	if w.overflow != nil && int64(w.overflowMin)>>wheelTopShift < w.next[wheelLevels-1]+wheelSlots {
		rest, restMin := (*Timer)(nil), MaxTime
		for t := w.overflow; t != nil; {
			nx := t.next
			if int64(t.ev.at)>>wheelTopShift < w.next[wheelLevels-1]+wheelSlots {
				t.next, t.prev = flushed, nil
				flushed = t
			} else {
				t.next, t.prev = rest, nil
				if rest != nil {
					rest.prev = t
				}
				if t.ev.at < restMin {
					restMin = t.ev.at
				}
				rest = t
			}
			t = nx
		}
		w.overflow, w.overflowMin = rest, restMin
	}
	for flushed != nil {
		t := flushed
		flushed = t.next
		t.next = nil
		w.count--
		t.state = timerIdle
		e.placeTimer(t)
	}
	w.earliest = w.scanEarliest()
}

// scanEarliest recomputes the earliest lower bound from the occupancy
// bitmaps and the overflow list.
func (w *timerWheel) scanEarliest() Time {
	earliest := MaxTime
	for l := 0; l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		shift := wheelTickBits + uint(l)*wheelSlotBits
		// Occupied slots all lie in [next, next+63]; rotate the bitmap so
		// bit 0 is the cursor and the lowest set bit is the distance to
		// the first occupied slot.
		rot := bits.RotateLeft64(w.occ[l], -int(w.next[l]&(wheelSlots-1)))
		s := w.next[l] + int64(bits.TrailingZeros64(rot))
		if start := Time(s << shift); start < earliest {
			earliest = start
		}
	}
	if w.overflow != nil && w.overflowMin < earliest {
		earliest = w.overflowMin
	}
	return earliest
}
