package shard

import (
	"sort"

	"cebinae/internal/netem"
	"cebinae/internal/sim"
)

// Plan is a computed node-to-shard assignment for a recorded topology.
type Plan struct {
	// Shards is the effective partition count. It can be lower than the
	// requested count when the topology cannot be split that far (for
	// example when zero-delay links glue nodes together — a cut link
	// needs positive delay).
	Shards int
	// Assign maps node creation order to shard index. Shard indices are
	// dense, 0-based, and ordered by each partition's smallest node
	// ordinal, so the plan is a pure function of the graph.
	Assign []int
	// Lookahead is the minimum propagation delay over the plan's cut
	// links — the conservative window width a cluster built from this
	// plan runs with. MaxTime when the plan cuts nothing (Shards == 1).
	Lookahead sim.Time
}

// AutoPlan records the topology `build` constructs and returns a
// partition plan for `shards` shards. The recording pass runs the full
// builder against a throwaway single-engine network (construction only —
// nothing is simulated), so the plan applies positionally to a second,
// real build of the same topology on NewClusterWithPlan. The recorder
// reports `shards` from Shards() so builders that derive their hand
// hints from the fabric's shard count trace exactly the construction
// order the real pass will.
func AutoPlan(shards int, build func(netem.Fabric)) Plan {
	rec := netem.NewRecorder(netem.NewNetwork(sim.NewEngine()), shards)
	build(rec)
	return PlanGraph(rec.Graph, shards)
}

// PlanGraph partitions a topology graph into `shards` regions connected
// only by cut links, maximising the conservative lookahead window and
// balancing estimated event load:
//
//  1. Threshold contraction. The lookahead of any partition is the
//     minimum delay over its cut links, so the widest achievable window
//     W is the largest link delay such that contracting every link with
//     delay < W still leaves at least `shards` components. Every edge
//     that survives as a candidate cut then has delay >= W by
//     construction, and merging components never reintroduces a
//     narrower cut.
//  2. Load-balanced merging. Components merge down to exactly `shards`
//     regions. Each node's event-load proxy is the sum of its incident
//     link rates (events per simulated second scale with the bits a
//     node moves). The lightest component repeatedly merges into the
//     neighbour it shares the most link capacity with — co-locating
//     chatter, subject to a balance cap of 1.25x the ideal per-shard
//     load — falling back to the lightest component under the cap, then
//     the lightest overall. All ties break on the smallest node
//     ordinal, so the result is a deterministic function of the graph.
//
// Requests beyond what the topology supports degrade: shards is clamped
// to the node count and to the component count reachable with
// positive-delay cuts.
func PlanGraph(g netem.Graph, shards int) Plan {
	n := len(g.Nodes)
	assign := make([]int, n)
	if shards > n {
		shards = n
	}
	if shards <= 1 || n == 0 {
		return Plan{Shards: 1, Assign: assign, Lookahead: sim.MaxTime}
	}

	// Candidate thresholds: the distinct positive link delays, ascending.
	delays := make([]sim.Time, 0, len(g.Links))
	for _, l := range g.Links {
		if l.Delay > 0 {
			delays = append(delays, l.Delay)
		}
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	delays = dedupTimes(delays)
	if len(delays) == 0 {
		return Plan{Shards: 1, Assign: assign, Lookahead: sim.MaxTime}
	}

	// The component count after contraction is non-increasing in W, so
	// the widest feasible window is the last candidate that still leaves
	// enough components. If even the narrowest candidate cannot reach
	// the requested count (zero-delay links glue too much together),
	// degrade to what it can.
	if c := componentsUnder(g, delays[0]); c < shards {
		shards = c
		if shards <= 1 {
			return Plan{Shards: 1, Assign: assign, Lookahead: sim.MaxTime}
		}
	}
	w := delays[0]
	for _, d := range delays[1:] {
		if componentsUnder(g, d) >= shards {
			w = d
		} else {
			break
		}
	}

	comp := contract(g, w)
	mergeComponents(g, comp, shards)

	// Renumber surviving components 0..shards-1 by smallest node ordinal
	// (node 0's region is shard 0), then compute the achieved lookahead.
	order := make([]int, 0, shards)
	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	for i := 0; i < n; i++ {
		r := comp.find(i)
		if seen[r] < 0 {
			seen[r] = len(order)
			order = append(order, r)
		}
		assign[i] = seen[r]
	}
	look := sim.MaxTime
	for _, l := range g.Links {
		if assign[l.A] != assign[l.B] && l.Delay < look {
			look = l.Delay
		}
	}
	return Plan{Shards: len(order), Assign: assign, Lookahead: look}
}

func dedupTimes(s []sim.Time) []sim.Time {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// unionFind is a plain union-by-index disjoint-set over node ordinals.
// Union keeps the smaller root, so a set's representative is always its
// smallest member — the tie-break every later stage keys on.
type unionFind []int

func newUnionFind(n int) unionFind {
	uf := make(unionFind, n)
	for i := range uf {
		uf[i] = i
	}
	return uf
}

func (uf unionFind) find(i int) int {
	for uf[i] != i {
		uf[i] = uf[uf[i]]
		i = uf[i]
	}
	return i
}

func (uf unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	uf[rb] = ra
}

// contract unions the endpoints of every link with delay below w.
func contract(g netem.Graph, w sim.Time) unionFind {
	uf := newUnionFind(len(g.Nodes))
	for _, l := range g.Links {
		if l.Delay < w {
			uf.union(l.A, l.B)
		}
	}
	return uf
}

// componentsUnder counts components after contracting links with delay
// below w.
func componentsUnder(g netem.Graph, w sim.Time) int {
	uf := contract(g, w)
	count := 0
	for i := range uf {
		if uf.find(i) == i {
			count++
		}
	}
	return count
}

// mergeComponents reduces comp's component count to k by repeatedly
// merging the lightest component away (see PlanGraph). Any merge is
// safe for the lookahead: inter-component links all carry delay >= w by
// the contraction invariant, and unioning components only removes links
// from the cut set.
func mergeComponents(g netem.Graph, comp unionFind, k int) {
	n := len(g.Nodes)
	// Compact component ids in order of smallest member.
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	var roots []int
	for i := 0; i < n; i++ {
		r := comp.find(i)
		if id[r] < 0 {
			id[r] = len(roots)
			roots = append(roots, r)
		}
		id[i] = id[r]
	}
	m := len(roots)
	if m <= k {
		return
	}

	// Load proxy per component and pairwise shared capacity.
	load := make([]float64, m)
	adj := make([][]float64, m)
	for i := range adj {
		adj[i] = make([]float64, m)
	}
	var total float64
	for _, l := range g.Links {
		a, b := id[l.A], id[l.B]
		load[a] += l.RateBps
		load[b] += l.RateBps
		total += 2 * l.RateBps
		if a != b {
			adj[a][b] += l.RateBps
			adj[b][a] += l.RateBps
		}
	}
	loadCap := total / float64(k) * 1.25
	alive := m

	for alive > k {
		// The lightest living component; ties go to the lowest slot,
		// which is the one whose original smallest member is lowest —
		// deterministic either way.
		s := -1
		for i := 0; i < m; i++ {
			if roots[i] < 0 {
				continue
			}
			if s < 0 || load[i] < load[s] {
				s = i
			}
		}
		// Its target: most-shared-capacity neighbour under the balance
		// cap, else the lightest other component under the cap, else the
		// lightest other component outright.
		t, bestShared := -1, 0.0
		for i := 0; i < m; i++ {
			if i == s || roots[i] < 0 || adj[s][i] <= 0 || load[s]+load[i] > loadCap {
				continue
			}
			if t < 0 || adj[s][i] > bestShared {
				t, bestShared = i, adj[s][i]
			}
		}
		if t < 0 {
			for i := 0; i < m; i++ {
				if i == s || roots[i] < 0 || load[s]+load[i] > loadCap {
					continue
				}
				if t < 0 || load[i] < load[t] {
					t = i
				}
			}
		}
		if t < 0 {
			for i := 0; i < m; i++ {
				if i == s || roots[i] < 0 {
					continue
				}
				if t < 0 || load[i] < load[t] {
					t = i
				}
			}
		}
		// Fold s into t everywhere; keep t's slot, retire s's.
		comp.union(roots[s], roots[t])
		load[t] += load[s]
		for i := 0; i < m; i++ {
			if i == t {
				continue
			}
			adj[t][i] += adj[s][i]
			adj[i][t] += adj[i][s]
			adj[s][i], adj[i][s] = 0, 0
		}
		adj[t][t] = 0
		roots[s] = -1
		alive--
	}
}
