package shard

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

// drainArrivals empties q through the production drainInto path and
// returns the records' arrival times in drain order.
func drainArrivals(q *spsc) []sim.Time {
	var pend []pendingArrival
	q.drainInto(&pend, 0)
	out := make([]sim.Time, len(pend))
	for i := range pend {
		out[i] = pend[i].rec.arrival
	}
	return out
}

// TestSPSCFIFOAndOverflow pushes well past the ring capacity and checks
// that drain returns every record in push order — the overflow spill must
// not reorder relative to the ring — and that the queue is empty and
// reusable afterwards.
func TestSPSCFIFOAndOverflow(t *testing.T) {
	var q spsc
	const n = ringSize*3 + 17
	for i := 0; i < n; i++ {
		var r record
		r.arrival = sim.Time(i)
		q.push(&r)
	}
	got := drainArrivals(&q)
	if len(got) != n {
		t.Fatalf("drained %d records, pushed %d", len(got), n)
	}
	for i, v := range got {
		if v != sim.Time(i) {
			t.Fatalf("record %d has arrival %d, want %d (FIFO violated)", i, v, i)
		}
	}
	if rest := drainArrivals(&q); len(rest) != 0 {
		t.Fatalf("drain of empty queue yielded %v", rest)
	}
	if !q.empty() {
		t.Fatal("queue not empty after full drain")
	}

	// Wraparound: the ring indices are now past ringSize; a second batch
	// must still come out in order.
	for i := 0; i < 5; i++ {
		var r record
		r.arrival = sim.Time(100 + i)
		q.push(&r)
	}
	if q.peekArrival() != 100 {
		t.Fatalf("peekArrival %d, want 100", q.peekArrival())
	}
	got = drainArrivals(&q)
	if len(got) != 5 || got[0] != 100 || got[4] != 104 {
		t.Fatalf("post-drain reuse broken: %v", got)
	}
}

// TestSPSCBarrierHandoff drives the queue under its real concurrency
// contract — producer pushes during a window, consumer drains only after
// a happens-before edge (a channel send standing in for the barrier) —
// across enough rounds to exercise ring wraparound and overflow spill.
// `make race` runs this under the race detector.
func TestSPSCBarrierHandoff(t *testing.T) {
	var q spsc
	rounds := []int{1, ringSize - 1, ringSize, ringSize + 7, 3, ringSize * 2}
	barrier := make(chan int)
	ack := make(chan struct{})
	go func() {
		next := sim.Time(0)
		for _, n := range rounds {
			for i := 0; i < n; i++ {
				var r record
				r.arrival = next
				next++
				q.push(&r)
			}
			// The two channel operations are the barrier: the producer stays
			// quiescent until the consumer's drain has completed, exactly as
			// shard workers do between windows.
			barrier <- n
			<-ack
		}
		close(barrier)
	}()
	want := sim.Time(0)
	var pend []pendingArrival
	for n := range barrier {
		pend = pend[:0]
		q.drainInto(&pend, 0)
		for i := range pend {
			if pend[i].rec.arrival != want {
				t.Fatalf("arrival %d, want %d", pend[i].rec.arrival, want)
			}
			want++
		}
		if len(pend) != n {
			t.Fatalf("round drained %d records, want %d", len(pend), n)
		}
		ack <- struct{}{}
	}
}

// TestRecordCaptureRestoreSACK round-trips a packet with SACK blocks
// through a handoff record: the destination packet must carry equal
// blocks without sharing the source's backing array, and oversized SACK
// lists must survive via the overflow path.
func TestRecordCaptureRestoreSACK(t *testing.T) {
	for _, nblocks := range []int{0, 3, 5} {
		src := &packet.Packet{Size: 1500, PayloadSize: 1448}
		for i := 0; i < nblocks; i++ {
			src.SACK = append(src.SACK, packet.SackBlock{Start: int64(10 * i), End: int64(10*i + 5)})
		}
		var r record
		r.capture(src, 40, 42)
		srcBlocks := src.SACK
		for i := range srcBlocks {
			srcBlocks[i] = packet.SackBlock{} // scribble: the record must not alias
		}
		dst := &packet.Packet{SACK: make([]packet.SackBlock, 0, 4)}
		r.restore(dst)
		if r.sent != 40 || r.arrival != 42 || dst.Size != 1500 || dst.PayloadSize != 1448 {
			t.Fatalf("nblocks=%d: restored packet %+v, sent %d, arrival %d", nblocks, dst, r.sent, r.arrival)
		}
		if len(dst.SACK) != nblocks {
			t.Fatalf("nblocks=%d: restored %d SACK blocks", nblocks, len(dst.SACK))
		}
		for i, b := range dst.SACK {
			if b.Start != int64(10*i) || b.End != int64(10*i+5) {
				t.Fatalf("nblocks=%d: block %d = %+v after source scribble", nblocks, i, b)
			}
		}
	}
}

// countEndpoint records delivery times as observed by the destination
// engine's clock.
type countEndpoint struct {
	eng   *sim.Engine
	times []sim.Time
}

func (e *countEndpoint) Deliver(p *packet.Packet) { e.times = append(e.times, e.eng.Now()) }

// crossTopo is one a→b hop built either on a plain Network (fabric with
// one shard) or a 2-shard cluster (the link becomes a cut link).
func crossTopo(f netem.Fabric) (a *netem.Node, sink *countEndpoint) {
	a = f.NodeOn(0, "a")
	b := f.NodeOn(f.Shards()-1, "b")
	da, db := f.Connect(a, b, netem.LinkConfig{RateBps: 1e9, Delay: sim.Time(1e6)})
	da.SetQdisc(qdisc.NewFIFO(1 << 20))
	db.SetQdisc(qdisc.NewFIFO(1 << 20))
	a.AddRoute(b.ID, da)
	sink = &countEndpoint{eng: b.Engine()}
	b.Register(packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}, sink)
	return a, sink
}

func injectAt(a *netem.Node, at sim.Time) {
	a.Engine().Schedule(at, func() {
		p := a.AllocPacket()
		p.Flow = packet.FlowKey{Src: a.ID, Dst: a.ID + 1, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
		p.Size = 1500
		p.PayloadSize = 1448
		a.Inject(p)
	})
}

// TestCrossShardDeliveryMatchesSingleEngine sends packets across a cut
// link at times straddling several 1 ms windows and requires the
// destination to observe exactly the delivery instants and event count of
// the identical single-network run.
func TestCrossShardDeliveryMatchesSingleEngine(t *testing.T) {
	sends := []sim.Time{0, 5e5, 17e5, 32e5, 32e5 + 1}
	until := sim.Time(1e7)

	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	refA, refSink := crossTopo(w)
	for _, at := range sends {
		injectAt(refA, at)
	}
	eng.RunUntil(until)

	cl := NewCluster(2)
	a, sink := crossTopo(cl)
	for _, at := range sends {
		injectAt(a, at)
	}
	cl.Run(until)

	if len(sink.times) != len(sends) {
		t.Fatalf("cluster delivered %d packets, want %d", len(sink.times), len(sends))
	}
	for i := range refSink.times {
		if sink.times[i] != refSink.times[i] {
			t.Errorf("packet %d delivered at %d, single-engine at %d", i, sink.times[i], refSink.times[i])
		}
	}
	if cl.Processed() != eng.Processed {
		t.Errorf("cluster processed %d events, single engine %d", cl.Processed(), eng.Processed)
	}
	for _, s := range cl.shards {
		if now := s.Engine.Now(); now != until {
			t.Errorf("shard settled at %d, want %d", now, until)
		}
	}
}

// TestCrossShardOverflowWindowMatchesSingleEngine blasts several times
// the handoff ring's capacity across a cut link inside a single
// conservative window, forcing the overflow spill on the live concurrent
// path (not just the unit-level queue test). Delivery instants, counts,
// and the event total must still match the single-engine run exactly;
// `make race` runs this under the race detector, which would flag any
// push/drain overlap on the unsynchronised queue.
func TestCrossShardOverflowWindowMatchesSingleEngine(t *testing.T) {
	const n = ringSize*2 + 50
	until := sim.Time(1e7)
	// 100 Gbps serialises a 1500 B packet in 120 ns, so all n transmit
	// completions (and handoffs) land inside the first 1 ms window.
	build := func(f netem.Fabric) (*netem.Node, *countEndpoint) {
		a := f.NodeOn(0, "a")
		b := f.NodeOn(f.Shards()-1, "b")
		da, db := f.Connect(a, b, netem.LinkConfig{RateBps: 1e11, Delay: sim.Time(1e6)})
		da.SetQdisc(qdisc.NewFIFO(64 << 20))
		db.SetQdisc(qdisc.NewFIFO(64 << 20))
		a.AddRoute(b.ID, da)
		sink := &countEndpoint{eng: b.Engine()}
		b.Register(packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}, sink)
		return a, sink
	}

	eng := sim.NewEngine()
	refA, refSink := build(netem.NewNetwork(eng))
	for i := 0; i < n; i++ {
		injectAt(refA, sim.Time(i))
	}
	eng.RunUntil(until)

	cl := NewCluster(2)
	a, sink := build(cl)
	for i := 0; i < n; i++ {
		injectAt(a, sim.Time(i))
	}
	cl.Run(until)

	if len(refSink.times) != n {
		t.Fatalf("single engine delivered %d packets, want %d", len(refSink.times), n)
	}
	if len(sink.times) != n {
		t.Fatalf("cluster delivered %d packets, want %d (overflow lost or duplicated records)", len(sink.times), n)
	}
	for i := range refSink.times {
		if sink.times[i] != refSink.times[i] {
			t.Fatalf("packet %d delivered at %d, single-engine at %d", i, sink.times[i], refSink.times[i])
		}
	}
	if cl.Processed() != eng.Processed {
		t.Errorf("cluster processed %d events, single engine %d", cl.Processed(), eng.Processed)
	}
}

// TestRunResumesAndNeverRewinds: a second Run call with a later horizon
// continues the window schedule (matching one uninterrupted single-engine
// run), and a stale horizon is a no-op rather than rewinding shard
// clocks.
func TestRunResumesAndNeverRewinds(t *testing.T) {
	sends := []sim.Time{0, 5e5, 17e5, 32e5, 48e5 + 3}
	mid, until := sim.Time(41e5), sim.Time(1e7)

	eng := sim.NewEngine()
	refA, refSink := crossTopo(netem.NewNetwork(eng))
	for _, at := range sends {
		injectAt(refA, at)
	}
	eng.RunUntil(until)

	cl := NewCluster(2)
	a, sink := crossTopo(cl)
	for _, at := range sends {
		injectAt(a, at)
	}
	cl.Run(mid)
	cl.Run(until)
	cl.Run(mid) // stale horizon: must not move anything backward
	for i, s := range cl.shards {
		if now := s.Engine.Now(); now != until {
			t.Errorf("shard %d clock at %d after stale Run, want %d", i, now, until)
		}
	}

	if len(sink.times) != len(sends) {
		t.Fatalf("resumed cluster delivered %d packets, want %d", len(sink.times), len(sends))
	}
	for i := range refSink.times {
		if sink.times[i] != refSink.times[i] {
			t.Errorf("packet %d delivered at %d, single-engine at %d", i, sink.times[i], refSink.times[i])
		}
	}
	if cl.Processed() != eng.Processed {
		t.Errorf("resumed cluster processed %d events, single engine %d", cl.Processed(), eng.Processed)
	}
}

// TestAdaptiveWindowsSkipQuiescence: with traffic that dies out early in a
// long run, adaptive lookahead must (a) deliver the exact instants and
// event count of the fixed-window run — widening is an optimisation, never
// a semantics change — and (b) run materially fewer barriers than the
// fixed schedule, with the savings visible in Stats.Widened.
func TestAdaptiveWindowsSkipQuiescence(t *testing.T) {
	sends := []sim.Time{0, 5e5, 17e5, 32e5, 32e5 + 1}
	until := sim.Time(1e8) // 100 fixed windows at the 1 ms cut delay

	fixed := NewCluster(2)
	fixed.SetAdaptive(false)
	fa, fsink := crossTopo(fixed)
	for _, at := range sends {
		injectAt(fa, at)
	}
	fixed.Run(until)
	if fixed.Stats.Windows != 100 {
		t.Fatalf("fixed run took %d windows, want 100", fixed.Stats.Windows)
	}
	if fixed.Stats.Widened != 0 {
		t.Fatalf("fixed run widened %d windows", fixed.Stats.Widened)
	}

	ad := NewCluster(2)
	// A deterministic fake clock (the shard package may not read the wall
	// clock itself): each phase samples it at the first and last worker
	// join, so every window adds a positive stall reading.
	var ticks int64
	ad.Instrument(func() int64 { ticks++; return ticks })
	aa, asink := crossTopo(ad)
	for _, at := range sends {
		injectAt(aa, at)
	}
	ad.Run(until)
	if ticks == 0 || ad.Stats.BarrierStallNs <= 0 {
		t.Errorf("instrumented clock saw %d samples, stall %d ns — barrier timing not recorded", ticks, ad.Stats.BarrierStallNs)
	}

	if len(asink.times) != len(fsink.times) {
		t.Fatalf("adaptive delivered %d packets, fixed %d", len(asink.times), len(fsink.times))
	}
	for i := range fsink.times {
		if asink.times[i] != fsink.times[i] {
			t.Errorf("packet %d delivered at %d adaptive, %d fixed", i, asink.times[i], fsink.times[i])
		}
	}
	if ad.Processed() != fixed.Processed() {
		t.Errorf("adaptive processed %d events, fixed %d", ad.Processed(), fixed.Processed())
	}
	for i, s := range ad.shards {
		if now := s.Engine.Now(); now != until {
			t.Errorf("adaptive shard %d settled at %d, want %d", i, now, until)
		}
	}
	// Traffic is dead after ~5 ms of the 100 ms horizon; the adaptive run
	// should cross the remaining quiescence in a handful of wide windows.
	if ad.Stats.Windows >= fixed.Stats.Windows/2 {
		t.Errorf("adaptive run took %d windows vs %d fixed — widening is not engaging", ad.Stats.Windows, fixed.Stats.Windows)
	}
	if ad.Stats.Widened == 0 {
		t.Error("adaptive run reports zero widened windows")
	}
	t.Logf("windows: fixed %d, adaptive %d (%d widened)", fixed.Stats.Windows, ad.Stats.Windows, ad.Stats.Widened)
}

// batchSender injects `batch` packets every `every` nanoseconds via the
// pooled typed-event path, so the traffic source itself is allocation-free
// at steady state and any measured growth belongs to the shard runtime.
type batchSender struct {
	src   *netem.Node
	key   packet.FlowKey
	batch int
	every sim.Time
}

func (s *batchSender) OnEvent(any) {
	for i := 0; i < s.batch; i++ {
		p := s.src.AllocPacket()
		p.Flow = s.key
		p.Size = 1500
		p.PayloadSize = 1448
		s.src.Inject(p)
	}
	s.src.Engine().ScheduleCall(s.every, s, nil)
}

// quietEndpoint counts deliveries without recording them, so the sink
// cannot contribute slice growth to the allocation measurement.
type quietEndpoint struct{ n int }

func (e *quietEndpoint) Deliver(p *packet.Packet) { e.n++ }

// TestWindowSteadyStateAllocs pins the conservative runner's per-window
// cost: once scratch buffers have grown, barriers, inbound drains, and
// handoffs — including spills past the SPSC ring into the pooled overflow
// slice — must not allocate. Each burst overflows the ring (ringSize+200
// packets inside one window at 100 Gbps), so the overflow slice and the
// per-window drain scratch are both on the measured path; the regression
// this guards is per-window churn, where allocs/op scales with
// windows × shards instead of staying O(shards) setup.
func TestWindowSteadyStateAllocs(t *testing.T) {
	cl := NewCluster(2)
	cl.SetAdaptive(false)
	a := cl.NodeOn(0, "a")
	c := cl.NodeOn(1, "c")
	// 100 Gbps serialises each burst in ~134 µs, inside one 1 ms window.
	da, db := cl.Connect(a, c, netem.LinkConfig{RateBps: 1e11, Delay: sim.Time(1e6)})
	da.SetQdisc(qdisc.NewFIFO(64 << 20))
	db.SetQdisc(qdisc.NewFIFO(64 << 20))
	a.AddRoute(c.ID, da)
	key := packet.FlowKey{Src: a.ID, Dst: c.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	sink := &quietEndpoint{}
	c.Register(key, sink)
	s := &batchSender{src: a, key: key, batch: ringSize + 200, every: sim.Time(2e6)}
	a.Engine().ScheduleCall(1, s, nil)

	// Warmup: grow the packet pools, drain scratch, and overflow spill to
	// their standing sizes.
	cl.Run(sim.Time(20e6))

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	w0 := cl.Stats.Windows
	cl.Run(sim.Time(220e6))
	runtime.ReadMemStats(&m1)

	windows := cl.Stats.Windows - w0
	if windows < 100 {
		t.Fatalf("measured only %d windows, want ≥ 100", windows)
	}
	allocs := m1.Mallocs - m0.Mallocs
	t.Logf("%d allocations over %d windows (%.3f/window)", allocs, windows, float64(allocs)/float64(windows))
	// Budget: the Run call itself spawns one goroutine and channel per
	// shard, and the runtime makes a handful of incidental allocations;
	// anything proportional to windows is a leak.
	if limit := windows/10 + 64; allocs > limit {
		t.Fatalf("%d allocations over %d steady-state windows (%.2f/window) — per-window scratch is not being reused",
			allocs, windows, float64(allocs)/float64(windows))
	}
	if sink.n == 0 {
		t.Fatal("sink saw no traffic; the measurement ran idle")
	}
}

// TestLookahead pins the window width to the minimum cut-link delay, and
// MaxTime when nothing is cut.
func TestLookahead(t *testing.T) {
	cl := NewCluster(3)
	if w := cl.Lookahead(); w != sim.MaxTime {
		t.Fatalf("empty cluster lookahead %d, want MaxTime", w)
	}
	a := cl.NodeOn(0, "a")
	b := cl.NodeOn(1, "b")
	c := cl.NodeOn(2, "c")
	cl.Connect(a, b, netem.LinkConfig{RateBps: 1e9, Delay: sim.Time(5e6)})
	cl.Connect(b, c, netem.LinkConfig{RateBps: 1e9, Delay: sim.Time(3e6)})
	if w := cl.Lookahead(); w != sim.Time(3e6) {
		t.Fatalf("lookahead %d, want 3e6 (minimum over cut links)", w)
	}
	// Same-shard links don't constrain the window.
	d := cl.NodeOn(0, "d")
	cl.Connect(a, d, netem.LinkConfig{RateBps: 1e9, Delay: 1})
	if w := cl.Lookahead(); w != sim.Time(3e6) {
		t.Fatalf("lookahead %d after local link, want 3e6", w)
	}
}

// TestZeroDelayCutPanics: a zero-delay cut link would collapse the
// conservative window to nothing, so Connect must refuse it loudly.
func TestZeroDelayCutPanics(t *testing.T) {
	cl := NewCluster(2)
	a := cl.NodeOn(0, "a")
	b := cl.NodeOn(1, "b")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("zero-delay cut link accepted")
		}
		if !strings.Contains(fmt.Sprint(r), "positive propagation delay") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	cl.Connect(a, b, netem.LinkConfig{RateBps: 1e9})
}

// TestWorkerPanicReraisedOnCaller: a panic inside a shard's window must
// surface on the goroutine that called Run — that is where the fleet
// orchestrator's per-job recovery lives — after the barrier joins.
func TestWorkerPanicReraisedOnCaller(t *testing.T) {
	cl := NewCluster(2)
	a, _ := crossTopo(cl)
	_ = a
	cl.Shard(1).Engine.Schedule(sim.Time(25e5), func() { panic("boom") })
	defer func() {
		if r := recover(); fmt.Sprint(r) != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	cl.Run(sim.Time(1e7))
	t.Fatal("Run returned despite shard panic")
}

// TestNodeOnClampsAndNumbersGlobally: shard hints outside the valid range
// clamp instead of crashing a builder, and node IDs are one global
// sequence in call order regardless of placement.
func TestNodeOnClampsAndNumbersGlobally(t *testing.T) {
	cl := NewCluster(2)
	n1 := cl.NodeOn(-3, "n1")
	n2 := cl.NodeOn(99, "n2")
	n3 := cl.NodeOn(1, "n3")
	if n1.Network() != cl.Shard(0).Net {
		t.Error("negative shard hint not clamped to shard 0")
	}
	if n2.Network() != cl.Shard(1).Net {
		t.Error("oversized shard hint not clamped to the last shard")
	}
	for i, n := range []*netem.Node{n1, n2, n3} {
		if n.ID != packet.NodeID(i+1) {
			t.Errorf("node %d has ID %d, want %d (global sequence)", i, n.ID, i+1)
		}
	}
}
