package shard

import (
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// record is one packet in flight across a shard boundary. Packet pools
// are per-shard and unsynchronised, so the packet's bytes are copied out
// of the source pool at handoff and copied into the destination pool at
// injection. SACK blocks are captured in a fixed inline buffer —
// receivers emit at most three blocks (RFC 2018) — so the steady-state
// record is pointer-free and handoff performs no allocation.
type record struct {
	// sent is the virtual time the packet's last bit left the source
	// device; arrival is sent plus the link's propagation delay. Both
	// ride across the boundary: arrival places the injected event on the
	// destination's clock, sent orders it among same-instant destination
	// events exactly where a single merged engine would have (see
	// sim.Engine.AtCallFrom).
	sent    sim.Time
	arrival sim.Time
	pkt     packet.Packet
	sack    [3]packet.SackBlock
	nsack   int
	// sackOverflow holds blocks beyond the inline buffer; nil in any
	// realistic run.
	sackOverflow []packet.SackBlock
}

// capture fills the record from p without retaining any of p's memory.
func (r *record) capture(p *packet.Packet, sent, arrival sim.Time) {
	r.sent = sent
	r.arrival = arrival
	r.pkt = *p
	r.pkt.SACK = nil
	r.nsack = len(p.SACK)
	if r.nsack <= len(r.sack) {
		copy(r.sack[:], p.SACK)
	} else {
		r.sackOverflow = append([]packet.SackBlock(nil), p.SACK...)
	}
}

// restore copies the record into q, a packet drawn from the destination
// shard's pool, preserving q's retained SACK backing array.
func (r *record) restore(q *packet.Packet) {
	sack := q.SACK[:0]
	*q = r.pkt
	if r.nsack <= len(r.sack) {
		q.SACK = append(sack, r.sack[:r.nsack]...)
	} else {
		q.SACK = append(sack, r.sackOverflow...)
	}
}

// ringSize bounds the lock-free part of each cut-link queue. A window's
// worth of full-size packets at typical bottleneck rates fits easily;
// bursts beyond it spill to the producer-owned overflow slice, so the
// queue never blocks and never drops.
const ringSize = 512

// spsc is a bounded single-producer single-consumer queue of handoff
// records with an unbounded overflow. The producer is the source shard's
// goroutine, which pushes only during run phases; the consumer is the
// destination shard's goroutine, which drains only during drain phases.
// Cluster.Run's barrier separates the two phases — every push
// happens-before every subsequent drain via the worker channels — so no
// field needs atomics; `make race` exercises the full path to keep that
// honest.
type spsc struct {
	buf      [ringSize]record
	head     uint64 // next slot to consume
	tail     uint64 // next slot to produce
	overflow []record
}

// push appends r (producer side). FIFO order is preserved across the
// ring/overflow split: once a window spills to overflow the ring is full
// and stays full until the barrier drain, so every ring entry predates
// every overflow entry.
func (q *spsc) push(r *record) {
	t := q.tail
	if t-q.head < ringSize {
		q.buf[t%ringSize] = *r
		q.tail = t + 1
		return
	}
	q.overflow = append(q.overflow, *r)
}

// empty reports whether the queue holds no records (consumer side).
func (q *spsc) empty() bool {
	return q.head == q.tail && len(q.overflow) == 0
}

// peekArrival returns the earliest queued arrival time (consumer side).
// Per-link FIFO order is arrival order — every record on one link shares
// the link's delay — so the head record is the earliest; ring entries
// always predate overflow entries. Returns MaxTime when empty.
func (q *spsc) peekArrival() sim.Time {
	if q.head != q.tail {
		return q.buf[q.head%ringSize].arrival
	}
	if len(q.overflow) > 0 {
		return q.overflow[0].arrival
	}
	return sim.MaxTime
}

// drainInto moves every queued record in FIFO order into *dst, tagging
// each with the inbound-link ordinal (consumer side, drain phases only).
// Appending into the shard's reusable pending slice — instead of handing
// records to a closure — keeps the per-window drain allocation-free once
// the slice has grown to the steady-state window population.
func (q *spsc) drainInto(dst *[]pendingArrival, link int) {
	h, t := q.head, q.tail
	for ; h < t; h++ {
		r := &q.buf[h%ringSize]
		*dst = append(*dst, pendingArrival{rec: *r, link: link})
		*r = record{}
	}
	q.head = h
	for i := range q.overflow {
		*dst = append(*dst, pendingArrival{rec: q.overflow[i], link: link})
		q.overflow[i] = record{}
	}
	q.overflow = q.overflow[:0]
}
