package shard

import (
	"reflect"
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

// graphOf builds a Graph with n anonymous nodes and the given links.
func graphOf(n int, links ...netem.GraphLink) netem.Graph {
	g := netem.Graph{Nodes: make([]netem.GraphNode, n)}
	g.Links = links
	return g
}

// backboneGraph is the RunBackbone chain: src—sw1═core═sw2—dst with fast
// wide access links (200 µs, 40 Gbps) around a slow core (2 ms, 10 Gbps).
func backboneGraph() netem.Graph {
	return graphOf(4,
		netem.GraphLink{A: 0, B: 1, Delay: sim.Time(200e3), RateBps: 40e9},
		netem.GraphLink{A: 1, B: 2, Delay: sim.Time(2e6), RateBps: 10e9},
		netem.GraphLink{A: 2, B: 3, Delay: sim.Time(200e3), RateBps: 40e9},
	)
}

// checkPlanInvariants asserts the properties every plan must satisfy
// regardless of topology: whole-node assignment over dense shard indices
// ordered by smallest member, effective count within the request, and a
// Lookahead that equals the minimum delay over the actual cut links (so
// no cut link is ever narrower than the window the cluster will run).
func checkPlanInvariants(t *testing.T, g netem.Graph, requested int, p Plan) {
	t.Helper()
	if len(p.Assign) != len(g.Nodes) {
		t.Fatalf("plan assigns %d nodes, graph has %d", len(p.Assign), len(g.Nodes))
	}
	if p.Shards < 1 || p.Shards > requested {
		t.Fatalf("plan has %d shards, requested %d", p.Shards, requested)
	}
	// Dense indices, ordered by smallest member: walking nodes in creation
	// order, shard s must first appear only after shard s-1 has.
	next := 0
	for i, s := range p.Assign {
		if s < 0 || s >= p.Shards {
			t.Fatalf("node %d assigned to shard %d of %d", i, s, p.Shards)
		}
		if s == next {
			next++
		} else if s > next {
			t.Fatalf("node %d introduces shard %d before shard %d has appeared", i, s, next)
		}
	}
	if next != p.Shards && len(g.Nodes) > 0 {
		t.Fatalf("only %d of %d shards are populated", next, p.Shards)
	}
	// Lookahead is exactly the narrowest cut link; an uncut plan reports
	// MaxTime.
	minCut := sim.MaxTime
	for _, l := range g.Links {
		if p.Assign[l.A] != p.Assign[l.B] {
			if l.Delay <= 0 {
				t.Fatalf("plan cuts zero-delay link %d—%d", l.A, l.B)
			}
			if l.Delay < minCut {
				minCut = l.Delay
			}
		}
	}
	if p.Lookahead != minCut {
		t.Fatalf("plan lookahead %d, narrowest cut link %d", p.Lookahead, minCut)
	}
	if p.Shards == 1 && p.Lookahead != sim.MaxTime {
		t.Fatalf("single-shard plan has finite lookahead %d", p.Lookahead)
	}
}

// TestPlanGraphInvariants sweeps shard requests over several topology
// shapes and checks every structural plan property, plus determinism:
// the plan is a pure function of the graph.
func TestPlanGraphInvariants(t *testing.T) {
	star := graphOf(5,
		netem.GraphLink{A: 0, B: 1, Delay: sim.Time(1e6), RateBps: 1e9},
		netem.GraphLink{A: 0, B: 2, Delay: sim.Time(2e6), RateBps: 1e9},
		netem.GraphLink{A: 0, B: 3, Delay: sim.Time(3e6), RateBps: 1e9},
		netem.GraphLink{A: 0, B: 4, Delay: sim.Time(4e6), RateBps: 1e9},
	)
	ring := graphOf(6,
		netem.GraphLink{A: 0, B: 1, Delay: sim.Time(5e6), RateBps: 1e9},
		netem.GraphLink{A: 1, B: 2, Delay: sim.Time(5e6), RateBps: 1e9},
		netem.GraphLink{A: 2, B: 3, Delay: sim.Time(5e6), RateBps: 1e9},
		netem.GraphLink{A: 3, B: 4, Delay: sim.Time(5e6), RateBps: 1e9},
		netem.GraphLink{A: 4, B: 5, Delay: sim.Time(5e6), RateBps: 1e9},
		netem.GraphLink{A: 5, B: 0, Delay: sim.Time(5e6), RateBps: 1e9},
	)
	glued := graphOf(4,
		netem.GraphLink{A: 0, B: 1, Delay: 0, RateBps: 1e9},
		netem.GraphLink{A: 1, B: 2, Delay: 0, RateBps: 1e9},
		netem.GraphLink{A: 2, B: 3, Delay: sim.Time(1e6), RateBps: 1e9},
	)
	disconnected := graphOf(3)
	for name, g := range map[string]netem.Graph{
		"backbone": backboneGraph(), "star": star, "ring": ring,
		"glued": glued, "disconnected": disconnected, "empty": graphOf(0),
	} {
		for req := 1; req <= 6; req++ {
			p := PlanGraph(g, req)
			checkPlanInvariants(t, g, req, p)
			if again := PlanGraph(g, req); !reflect.DeepEqual(p, again) {
				t.Errorf("%s/k=%d: PlanGraph is not deterministic: %+v vs %+v", name, req, p, again)
			}
		}
	}
}

// TestPlanGraphMaximisesLookahead pins the threshold-contraction choice on
// the backbone shape: at two shards the planner must cut only the 2 ms
// core (the widest possible window, 10x the access delay), and only when
// pushed to three shards may it fall back to cutting the 200 µs access
// links — with src and dst folded together by load balancing.
func TestPlanGraphMaximisesLookahead(t *testing.T) {
	g := backboneGraph()

	p2 := PlanGraph(g, 2)
	if want := []int{0, 0, 1, 1}; !reflect.DeepEqual(p2.Assign, want) {
		t.Fatalf("k=2 assignment %v, want %v (cut the core only)", p2.Assign, want)
	}
	if p2.Lookahead != sim.Time(2e6) {
		t.Fatalf("k=2 lookahead %d, want the core's 2e6", p2.Lookahead)
	}

	p3 := PlanGraph(g, 3)
	if want := []int{0, 1, 2, 0}; !reflect.DeepEqual(p3.Assign, want) {
		t.Fatalf("k=3 assignment %v, want %v (src+dst share the lightest shard)", p3.Assign, want)
	}
	if p3.Lookahead != sim.Time(200e3) {
		t.Fatalf("k=3 lookahead %d, want the access links' 200e3", p3.Lookahead)
	}

	p4 := PlanGraph(g, 4)
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(p4.Assign, want) {
		t.Fatalf("k=4 assignment %v, want %v", p4.Assign, want)
	}
}

// TestPlanGraphDegrades: requests the topology cannot honour clamp instead
// of failing — more shards than nodes, and zero-delay links that glue
// nodes into inseparable regions (a cut link needs positive delay).
func TestPlanGraphDegrades(t *testing.T) {
	pair := graphOf(2, netem.GraphLink{A: 0, B: 1, Delay: sim.Time(1e6), RateBps: 1e9})
	if p := PlanGraph(pair, 5); p.Shards != 2 {
		t.Fatalf("2-node graph at k=5 planned %d shards, want 2", p.Shards)
	}

	// Two zero-delay-glued triangles joined by one positive link: at most
	// two regions exist no matter the request.
	var glued netem.Graph
	glued.Nodes = make([]netem.GraphNode, 6)
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		for i := 0; i < 3; i++ {
			glued.Links = append(glued.Links, netem.GraphLink{A: tri[i], B: tri[(i+1)%3], Delay: 0, RateBps: 1e9})
		}
	}
	glued.Links = append(glued.Links, netem.GraphLink{A: 2, B: 3, Delay: sim.Time(7e5), RateBps: 1e9})
	p := PlanGraph(glued, 4)
	if p.Shards != 2 {
		t.Fatalf("glued triangles at k=4 planned %d shards, want 2", p.Shards)
	}
	if want := []int{0, 0, 0, 1, 1, 1}; !reflect.DeepEqual(p.Assign, want) {
		t.Fatalf("glued triangles assignment %v, want %v", p.Assign, want)
	}
	if p.Lookahead != sim.Time(7e5) {
		t.Fatalf("glued triangles lookahead %d, want 7e5", p.Lookahead)
	}

	// All links zero-delay: nothing is cuttable; the plan collapses to one
	// shard rather than cutting a link the runner cannot window over.
	allZero := graphOf(3,
		netem.GraphLink{A: 0, B: 1, Delay: 0, RateBps: 1e9},
		netem.GraphLink{A: 1, B: 2, Delay: 0, RateBps: 1e9},
	)
	if p := PlanGraph(allZero, 3); p.Shards != 1 || p.Lookahead != sim.MaxTime {
		t.Fatalf("zero-delay graph planned %d shards, lookahead %d", p.Shards, p.Lookahead)
	}
}

// TestAutoPlanRecordsBuilder: AutoPlan's recording pass must capture
// exactly the topology the builder constructs — the plan it returns equals
// PlanGraph over the hand-written Graph — and a cluster built from the
// plan runs with the plan's lookahead.
func TestAutoPlanRecordsBuilder(t *testing.T) {
	build := func(f netem.Fabric) {
		a := f.NodeOn(0, "a")
		b := f.NodeOn(f.Shards()-1, "b")
		da, db := f.Connect(a, b, netem.LinkConfig{RateBps: 1e9, Delay: sim.Time(1e6)})
		da.SetQdisc(qdisc.NewFIFO(1 << 20))
		db.SetQdisc(qdisc.NewFIFO(1 << 20))
	}
	p := AutoPlan(2, build)
	want := PlanGraph(graphOf(2, netem.GraphLink{A: 0, B: 1, Delay: sim.Time(1e6), RateBps: 1e9}), 2)
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("AutoPlan %+v, hand graph plans %+v", p, want)
	}
	if again := AutoPlan(2, build); !reflect.DeepEqual(p, again) {
		t.Fatalf("AutoPlan is not deterministic: %+v vs %+v", p, again)
	}

	cl := NewClusterWithPlan(p)
	build(cl)
	if w := cl.Lookahead(); w != p.Lookahead {
		t.Fatalf("cluster lookahead %d, plan promised %d", w, p.Lookahead)
	}
}
