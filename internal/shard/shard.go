// Package shard runs one netem topology across several sim.Engine
// instances — one goroutine per shard — using conservative time-window
// synchronisation (a barrier-synchronised variant of the classical
// CMB/null-message family of parallel discrete-event schemes).
//
// A Cluster is a netem.Fabric: topology builders place nodes on shards
// and every link between shards becomes a cut link — a pair of
// netem.ConnectHalf devices bridged by bounded SPSC handoff queues. The
// cluster's lookahead W is the minimum propagation delay over all cut
// links. Execution proceeds in windows of width W: every shard dispatches
// its local events up to the window horizon, the cluster barriers, each
// shard drains its inbound handoff queues (injecting cross-shard arrivals
// in (time, link, FIFO) order), and the next window begins. A packet
// whose transmission completes at time t inside a window arrives at
// t+delay ≥ t+W, which is strictly beyond the window horizon — so every
// cross-shard arrival is injected at a barrier before the window that
// dispatches it, and no shard ever sees an event "from the past".
//
// Byte-identical results. Node IDs are allocated from one cluster-global
// counter in builder call order, so flow keys, RNG seeds, and connection
// state match the single-engine build exactly. Each hop costs exactly one
// arrival event in both modes (a pooled propagation event locally, an
// injected AtCall across a cut), so engine event counts match. The one
// residual freedom is the engine's FIFO tie-break for events at the exact
// same nanosecond: an injected arrival acquires its sequence number at
// the barrier rather than at the remote transmit completion. The topology
// builders choose partitions where same-instant ties between a cut
// arrival and an interacting local event are not systematically produced
// (see BuildDumbbellOn / BuildParkingLotOn), and the experiments package
// locks the guarantee down with differential tests that require
// byte-identical reports at 1, 2, and 4 shards.
package shard

import (
	"fmt"
	"sort"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Shard is one partition: an engine, its network (with a private packet
// pool), and the cut links that terminate here.
type Shard struct {
	Engine *sim.Engine
	Net    *netem.Network

	inbound []*cutLink
	pending []pendingArrival
}

// Cluster partitions one simulated topology across n engines. It
// implements netem.Fabric, so netem's topology builders run on it
// unchanged. Construction (NodeOn/Connect) and Run must be called from a
// single goroutine; Run spawns and joins the per-shard workers itself.
type Cluster struct {
	shards []*Shard
	links  []*cutLink
	nodes  int
}

// NewCluster returns a cluster of n empty shards (n >= 1). A 1-shard
// cluster is exactly a single-engine simulation: no cut links, no
// barriers, no extra goroutines.
func NewCluster(n int) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("shard: cluster needs at least one shard, got %d", n))
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		eng := sim.NewEngine()
		c.shards = append(c.shards, &Shard{Engine: eng, Net: netem.NewNetwork(eng)})
	}
	return c
}

// Shards returns the partition count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns partition i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// NodeOn creates a node on partition `shard` (clamped to the valid
// range). IDs come from a cluster-global counter in call order, so the
// node numbering is identical to the same builder running on a plain
// Network.
func (c *Cluster) NodeOn(shard int, name string) *netem.Node {
	if shard < 0 {
		shard = 0
	}
	if shard >= len(c.shards) {
		shard = len(c.shards) - 1
	}
	c.nodes++
	return c.shards[shard].Net.NewNodeWithID(packet.NodeID(c.nodes), name)
}

// Connect links a and b: a local peered pair when both live on the same
// shard, a cut-link pair (two half devices bridged by handoff queues)
// otherwise. Cut links must have positive delay — the conservative
// lookahead is the minimum latency over all cut links, and a zero-delay
// cut would leave no window to parallelise.
func (c *Cluster) Connect(a, b *netem.Node, cfg netem.LinkConfig) (*netem.Device, *netem.Device) {
	sa, sb := c.shardOf(a), c.shardOf(b)
	if sa == sb {
		return c.shards[sa].Net.Connect(a, b, cfg)
	}
	if cfg.Delay <= 0 {
		panic(fmt.Sprintf("shard: cut link %s<->%s needs positive propagation delay (the conservative lookahead is the minimum cut-link latency)", a.Name, b.Name))
	}
	ab := &cutLink{src: c.shards[sa], dst: c.shards[sb], delay: cfg.Delay}
	ba := &cutLink{src: c.shards[sb], dst: c.shards[sa], delay: cfg.Delay}
	da := c.shards[sa].Net.ConnectHalf(a, b.Name, cfg, ab)
	db := c.shards[sb].Net.ConnectHalf(b, a.Name, cfg, ba)
	ab.dstDev, ba.dstDev = db, da
	c.links = append(c.links, ab, ba)
	c.shards[sb].inbound = append(c.shards[sb].inbound, ab)
	c.shards[sa].inbound = append(c.shards[sa].inbound, ba)
	return da, db
}

var _ netem.Fabric = (*Cluster)(nil)

func (c *Cluster) shardOf(n *netem.Node) int {
	for i, s := range c.shards {
		if s.Net == n.Network() {
			return i
		}
	}
	panic(fmt.Sprintf("shard: node %s does not belong to this cluster", n.Name))
}

// Lookahead returns the conservative window width: the minimum
// propagation delay over all cut links (MaxTime when nothing is cut).
func (c *Cluster) Lookahead() sim.Time {
	w := sim.MaxTime
	for _, l := range c.links {
		if l.delay < w {
			w = l.delay
		}
	}
	return w
}

// Processed sums dispatched events across all shard engines — comparable
// with a single engine's Processed counter for the same scenario.
func (c *Cluster) Processed() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.Engine.Processed
	}
	return n
}

// Run advances every shard to `until` in barrier-synchronised windows of
// the cluster lookahead. With no cut links (one shard, or a topology that
// never crossed partitions) it degenerates to plain sequential Run calls.
// A panic on any shard is re-raised on the caller's goroutine after the
// in-flight window joins, so the fleet orchestrator's per-job recovery
// still contains it.
func (c *Cluster) Run(until sim.Time) {
	if len(c.links) == 0 {
		for _, s := range c.shards {
			s.Engine.RunUntil(until)
		}
		return
	}
	w := c.Lookahead()
	done := make(chan any, len(c.shards))
	cmds := make([]chan sim.Time, len(c.shards))
	for i, s := range c.shards {
		ch := make(chan sim.Time)
		cmds[i] = ch
		go func(s *Shard, cmds <-chan sim.Time) {
			for h := range cmds {
				done <- s.step(h)
			}
		}(s, ch)
	}
	defer func() {
		for _, ch := range cmds {
			close(ch)
		}
	}()
	// The window schedule is a pure function of (lookahead, until), so it
	// is identical across runs of the same configuration.
	next := sim.Time(0)
	for {
		if until-next <= w {
			next = until
		} else {
			next += w
		}
		for _, ch := range cmds {
			ch <- next
		}
		var failure any
		for range c.shards {
			if r := <-done; r != nil && failure == nil {
				failure = r
			}
		}
		if failure != nil {
			panic(failure)
		}
		if next >= until {
			return
		}
	}
}

// step is one shard's window: drain and inject the arrivals other shards
// handed off, then dispatch local events up to the horizon. Runs on the
// shard's worker goroutine; a panic is returned, not propagated, so the
// barrier always completes.
func (s *Shard) step(h sim.Time) (failure any) {
	defer func() { failure = recover() }()
	s.drainInbound()
	s.Engine.RunUntil(h)
	return nil
}

// pendingArrival is one drained handoff record plus the inbound-slot
// ordinal used as the deterministic tie-break for same-instant arrivals
// from different links.
type pendingArrival struct {
	rec  record
	link int
}

// drainInbound empties every inbound queue and injects the packets as
// arrival events, ordered by (arrival time, inbound link, per-link FIFO).
// The sort only matters for exact same-nanosecond ties — everything else
// is ordered by the engine's time comparison — and makes that order a
// deterministic function of the topology rather than of scheduling.
func (s *Shard) drainInbound() {
	s.pending = s.pending[:0]
	for li, l := range s.inbound {
		li := li
		l.q.drain(func(r *record) {
			s.pending = append(s.pending, pendingArrival{rec: *r, link: li})
		})
	}
	sort.SliceStable(s.pending, func(i, j int) bool {
		a, b := &s.pending[i], &s.pending[j]
		if a.rec.arrival != b.rec.arrival {
			return a.rec.arrival < b.rec.arrival
		}
		return a.link < b.link
	})
	for i := range s.pending {
		e := &s.pending[i]
		p := s.Net.Pool().Get()
		e.rec.restore(p)
		s.inbound[e.link].dstDev.InjectArrivalAt(e.rec.arrival, p)
	}
}

// cutLink is one direction of a severed inter-shard link: the source
// half-device's Handoff target and the queue the destination drains at
// barriers.
type cutLink struct {
	src, dst *Shard
	dstDev   *netem.Device
	delay    sim.Time
	q        spsc
}

// Handoff runs on the source shard's goroutine at transmit completion:
// copy the packet into a pool-free record, release the source packet, and
// queue the record for the destination's next barrier drain.
func (l *cutLink) Handoff(p *packet.Packet, arrival sim.Time) {
	var r record
	r.capture(p, arrival)
	l.src.Net.Pool().Put(p)
	l.q.push(&r)
}
