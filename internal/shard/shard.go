// Package shard runs one netem topology across several sim.Engine
// instances — one goroutine per shard — using conservative time-window
// synchronisation (a barrier-synchronised variant of the classical
// CMB/null-message family of parallel discrete-event schemes).
//
// A Cluster is a netem.Fabric: topology builders place nodes on shards
// and every link between shards becomes a cut link — a pair of
// netem.ConnectHalf devices bridged by bounded SPSC handoff queues. The
// cluster's lookahead W is the minimum propagation delay over all cut
// links. Execution proceeds in windows of width W, each split into two
// barrier-separated phases: first every shard drains its inbound handoff
// queues (injecting cross-shard arrivals in (time, link, FIFO) order),
// the cluster barriers, then every shard dispatches its local events up
// to the window horizon and the cluster barriers again. Draining never
// pushes, so during a drain phase every producer is quiescent and the
// barrier's happens-before edge makes the plain (atomics-free) handoff
// queues safe — no push ever overlaps a drain. A packet whose
// transmission completes at time t inside a window arrives at t+delay ≥
// t+W, which is strictly beyond the window horizon — so every
// cross-shard arrival is injected in the drain phase of a window before
// the one that dispatches it, and no shard ever sees an event "from the
// past".
//
// Byte-identical results. Node IDs are allocated from one cluster-global
// counter in builder call order, so flow keys, RNG seeds, and connection
// state match the single-engine build exactly. Each hop costs exactly one
// arrival event in both modes (a pooled propagation event locally, an
// injected AtCallFrom across a cut), so engine event counts match.
// Cross-shard arrivals carry the virtual time their last bit left the
// source device, and the destination engine orders events by
// (time, emission time, seq) — so a same-nanosecond tie between an
// injected arrival and a local event resolves exactly as it would on a
// single merged engine, where the arrival's propagation event was
// scheduled at transmit completion. That makes even dense-traffic links
// (access links at backbone flow counts) safe to cut. The residual
// freedom is the coincidence class where both the instant and the
// emission time collide across shards; there the drain order
// (arrival, emission, inbound link) decides, deterministically for a
// fixed topology. The experiments package locks the guarantee down with
// differential tests that require byte-identical reports at 1, 2, 3, and
// 4 shards, hand-placed and auto-partitioned.
//
// Partitioning is either hand-placed (builders pass shard hints to
// NodeOn) or automatic: PlanGraph computes a min-cut partition of the
// recorded topology graph that maximises the lookahead window and
// balances estimated event load, and NewClusterWithPlan overrides the
// builder's hints with it (see partition.go).
//
// Windows widen adaptively: at each barrier the cluster bounds, per cut
// link, the earliest instant the source device could complete another
// transmission (in-flight serialisation, pending local events, queued
// inbound arrivals) and extends the window to just short of the earliest
// possible cross-shard arrival when that beats horizon+W. Quiescent
// stretches then cost barriers proportional to actual traffic, not to
// elapsed virtual time. SetAdaptive(false) restores fixed-width windows.
package shard

import (
	"fmt"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Shard is one partition: an engine, its network (with a private packet
// pool), and the cut links that terminate here.
type Shard struct {
	Engine *sim.Engine
	Net    *netem.Network

	inbound []*cutLink
	pending []pendingArrival
}

// Cluster partitions one simulated topology across n engines. It
// implements netem.Fabric, so netem's topology builders run on it
// unchanged. Construction (NodeOn/Connect) and Run must be called from a
// single goroutine; Run spawns and joins the per-shard workers itself.
type Cluster struct {
	shards []*Shard
	links  []*cutLink
	nodes  int
	// plan, when non-nil, overrides NodeOn's shard hint: the i-th created
	// node lands on plan[i] (see NewClusterWithPlan).
	plan []int
	// horizon is the furthest time Run has advanced to; a later Run call
	// resumes the window schedule from here instead of replaying it.
	horizon sim.Time
	// fixed disables adaptive window widening (SetAdaptive).
	fixed bool
	// wake is nextHorizon's per-shard scratch.
	wake []sim.Time
	// now, when non-nil, is the wall-clock source for barrier-stall
	// accounting (Instrument). The simulation itself never reads it.
	now func() int64

	// Stats accumulates window-scheduling telemetry across Run calls.
	Stats RunStats
}

// RunStats is the cluster's window-scheduling telemetry.
type RunStats struct {
	// Windows counts barrier-synchronised windows executed.
	Windows uint64
	// Widened counts windows whose horizon the adaptive lookahead pushed
	// beyond the classic horizon+W.
	Widened uint64
	// BarrierStallNs sums, over every barrier phase, the wall-clock gap
	// between the first and the last shard reaching the barrier — the
	// time imbalanced shards sit idle. Zero unless Instrument installed
	// a clock.
	BarrierStallNs int64
}

// NewCluster returns a cluster of n empty shards (n >= 1). A 1-shard
// cluster is exactly a single-engine simulation: no cut links, no
// barriers, no extra goroutines.
func NewCluster(n int) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("shard: cluster needs at least one shard, got %d", n))
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		eng := sim.NewEngine()
		c.shards = append(c.shards, &Shard{Engine: eng, Net: netem.NewNetwork(eng)})
	}
	return c
}

// NewClusterWithPlan returns a cluster that places nodes according to an
// automatically computed partition plan (PlanGraph / AutoPlan): the i-th
// NodeOn call lands on plan.Assign[i] regardless of the builder's shard
// hint. The builder must make exactly the construction calls the plan
// was recorded from.
func NewClusterWithPlan(plan Plan) *Cluster {
	c := NewCluster(plan.Shards)
	c.plan = plan.Assign
	return c
}

// SetAdaptive toggles adaptive window widening (on by default). Fixed
// windows exist for measurement and for differential tests that pin both
// schedules to the same byte-identical result.
func (c *Cluster) SetAdaptive(on bool) { c.fixed = !on }

// Instrument installs a wall-clock source (typically
// time.Now().UnixNano from the measurement harness — the simulation
// packages themselves never read wall clocks) enabling barrier-stall
// accounting in Stats. Pass nil to disable.
func (c *Cluster) Instrument(now func() int64) { c.now = now }

// Shards returns the partition count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns partition i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// NodeOn creates a node on partition `shard` (clamped to the valid
// range). IDs come from a cluster-global counter in call order, so the
// node numbering is identical to the same builder running on a plain
// Network. On a plan-backed cluster (NewClusterWithPlan) the plan's
// assignment for this creation ordinal wins over the hint.
func (c *Cluster) NodeOn(shard int, name string) *netem.Node {
	if c.plan != nil && c.nodes < len(c.plan) {
		shard = c.plan[c.nodes]
	}
	if shard < 0 {
		shard = 0
	}
	if shard >= len(c.shards) {
		shard = len(c.shards) - 1
	}
	c.nodes++
	return c.shards[shard].Net.NewNodeWithID(packet.NodeID(c.nodes), name)
}

// Connect links a and b: a local peered pair when both live on the same
// shard, a cut-link pair (two half devices bridged by handoff queues)
// otherwise. Cut links must have positive delay — the conservative
// lookahead is the minimum latency over all cut links, and a zero-delay
// cut would leave no window to parallelise.
func (c *Cluster) Connect(a, b *netem.Node, cfg netem.LinkConfig) (*netem.Device, *netem.Device) {
	sa, sb := c.shardOf(a), c.shardOf(b)
	if sa == sb {
		return c.shards[sa].Net.Connect(a, b, cfg)
	}
	if cfg.Delay <= 0 {
		panic(fmt.Sprintf("shard: cut link %s<->%s needs positive propagation delay (the conservative lookahead is the minimum cut-link latency)", a.Name, b.Name))
	}
	ab := &cutLink{src: c.shards[sa], dst: c.shards[sb], srcIdx: sa, delay: cfg.Delay}
	ba := &cutLink{src: c.shards[sb], dst: c.shards[sa], srcIdx: sb, delay: cfg.Delay}
	da := c.shards[sa].Net.ConnectHalf(a, b.Name, cfg, ab)
	db := c.shards[sb].Net.ConnectHalf(b, a.Name, cfg, ba)
	ab.srcDev, ba.srcDev = da, db
	ab.dstDev, ba.dstDev = db, da
	c.links = append(c.links, ab, ba)
	c.shards[sb].inbound = append(c.shards[sb].inbound, ab)
	c.shards[sa].inbound = append(c.shards[sa].inbound, ba)
	return da, db
}

var _ netem.Fabric = (*Cluster)(nil)

func (c *Cluster) shardOf(n *netem.Node) int {
	for i, s := range c.shards {
		if s.Net == n.Network() {
			return i
		}
	}
	panic(fmt.Sprintf("shard: node %s does not belong to this cluster", n.Name))
}

// Lookahead returns the conservative window width: the minimum
// propagation delay over all cut links (MaxTime when nothing is cut).
func (c *Cluster) Lookahead() sim.Time {
	w := sim.MaxTime
	for _, l := range c.links {
		if l.delay < w {
			w = l.delay
		}
	}
	return w
}

// Processed sums dispatched events across all shard engines — comparable
// with a single engine's Processed counter for the same scenario.
func (c *Cluster) Processed() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.Engine.Processed
	}
	return n
}

// cmd is one phase issued to a shard worker: a drain phase (run == false,
// empty the inbound handoff queues) or a run phase (run == true, dispatch
// local events up to horizon h). The two phases never overlap across
// shards — Cluster.Run barriers between them — which is what makes the
// unsynchronised handoff queues safe.
type cmd struct {
	run bool
	h   sim.Time
}

// Run advances every shard to `until` in barrier-synchronised windows of
// the cluster lookahead, each window a drain phase then a run phase (see
// the package doc). Calls with increasing horizons resume the window
// schedule where the previous call left off; a horizon at or below the
// previous one is a no-op — the cluster clock never moves backward. With
// no cut links (one shard, or a topology that never crossed partitions)
// it degenerates to plain sequential Run calls. A panic on any shard is
// re-raised on the caller's goroutine after the in-flight phase joins,
// so the fleet orchestrator's per-job recovery still contains it.
func (c *Cluster) Run(until sim.Time) {
	if until <= c.horizon {
		return
	}
	if len(c.links) == 0 {
		for _, s := range c.shards {
			s.Engine.RunUntil(until)
		}
		c.horizon = until
		return
	}
	w := c.Lookahead()
	done := make(chan any, len(c.shards))
	cmds := make([]chan cmd, len(c.shards))
	for i, s := range c.shards {
		ch := make(chan cmd)
		cmds[i] = ch
		go func(s *Shard, cmds <-chan cmd) {
			for p := range cmds {
				done <- s.step(p)
			}
		}(s, ch)
	}
	defer func() {
		for _, ch := range cmds {
			close(ch)
		}
	}()
	// The window schedule is a pure function of (lookahead, horizon,
	// until) and of the simulation state at each barrier, so it is
	// identical across runs of the same configuration.
	next := c.horizon
	for {
		next = c.nextHorizon(next, until, w)
		// Drain phase: every producer is draining (never pushing), so the
		// consumers' reads of the handoff queues cannot race. Arrivals
		// handed off in the previous run phase land strictly beyond that
		// window's horizon, so injecting them here is never "in the past".
		c.phase(cmds, done, cmd{})
		// Run phase: every shard dispatches up to the window horizon,
		// pushing cross-shard handoffs for the next drain phase.
		c.phase(cmds, done, cmd{run: true, h: next})
		c.Stats.Windows++
		c.horizon = next
		if next >= until {
			return
		}
	}
}

// satAdd adds a non-negative delta to a time, saturating at MaxTime.
func satAdd(t, d sim.Time) sim.Time {
	if s := t + d; s >= t {
		return s
	}
	return sim.MaxTime
}

// nextHorizon picks the next window horizon with the cluster quiescent at
// `from` (every event up to `from` dispatched, workers parked at the
// barrier, so reading shard state here is race-free). The classic
// conservative choice is from+w — any transmission completing inside the
// window lands at least the minimum cut delay beyond its send time. When
// every cut link can prove its next possible handoff lies further out —
// no packet mid-serialisation, no pending local event, no queued inbound
// arrival that could wake the source shard any earlier — the window
// widens to just short of the earliest possible cross-shard arrival.
// Either way every arrival generated inside the window lands strictly
// beyond it, preserving the "never inject into the past" invariant.
func (c *Cluster) nextHorizon(from, until, w sim.Time) sim.Time {
	next := satAdd(from, w)
	if next > until {
		next = until
	}
	if c.fixed {
		return next
	}
	// wake[i] bounds shard i's next dispatch: its engine's next pending
	// event or the earliest queued cross-shard arrival about to be
	// injected into it at the next drain phase.
	if c.wake == nil {
		c.wake = make([]sim.Time, len(c.shards))
	}
	for i, s := range c.shards {
		wk := s.Engine.NextEventTime()
		for _, l := range s.inbound {
			if a := l.q.peekArrival(); a < wk {
				wk = a
			}
		}
		c.wake[i] = wk
	}
	// bound: no cross-shard arrival generated after `from` can precede it.
	// A busy device's next handoff is exactly its in-flight completion
	// (later sends queue behind it); an idle device can only start
	// transmitting inside some future dispatch on its shard.
	bound := sim.MaxTime
	for _, l := range c.links {
		hb := c.wake[l.srcIdx]
		if l.srcDev.Busy() {
			hb = l.srcDev.NextHandoffBound()
		}
		if b := satAdd(hb, l.delay); b < bound {
			bound = b
		}
	}
	if cand := bound - 1; cand > next {
		if cand > until {
			cand = until
		}
		if cand > next {
			next = cand
			c.Stats.Widened++
		}
	}
	return next
}

// phase issues one command to every worker and joins the barrier,
// re-raising the first shard failure on the caller's goroutine. With an
// instrumentation clock installed it charges the wall-clock spread
// between the first and last worker completion to BarrierStallNs.
func (c *Cluster) phase(cmds []chan cmd, done <-chan any, p cmd) {
	for _, ch := range cmds {
		ch <- p
	}
	var failure any
	var first int64
	for i := range c.shards {
		if r := <-done; r != nil && failure == nil {
			failure = r
		}
		if c.now != nil {
			switch i {
			case 0:
				first = c.now()
			case len(c.shards) - 1:
				c.Stats.BarrierStallNs += c.now() - first
			}
		}
	}
	if failure != nil {
		panic(failure)
	}
}

// step executes one phase on the shard's worker goroutine; a panic is
// returned, not propagated, so the barrier always completes.
func (s *Shard) step(p cmd) (failure any) {
	defer func() { failure = recover() }()
	if p.run {
		s.Engine.RunUntil(p.h)
	} else {
		s.drainInbound()
	}
	return nil
}

// pendingArrival is one drained handoff record plus the inbound-slot
// ordinal used as the deterministic tie-break for same-instant arrivals
// from different links.
type pendingArrival struct {
	rec  record
	link int
}

// drainInbound empties every inbound queue and injects the packets as
// arrival events, ordered by (arrival, emission, inbound link, per-link
// FIFO). Injection in that order assigns ascending local sequence
// numbers, so the destination engine's (time, emission time, seq)
// dispatch order reproduces the single-engine order for every
// same-instant tie except the exact (arrival, emission) double
// coincidence across links, which the link ordinal breaks
// deterministically. The sort is an in-place stable insertion sort —
// per-link runs arrive already ordered, so it is near-linear and, like
// the drain itself, allocation-free at steady state (closures and
// sort.SliceStable's reflection both cost per-window allocations at
// every barrier; see TestWindowSteadyStateAllocs).
func (s *Shard) drainInbound() {
	s.pending = s.pending[:0]
	for li := range s.inbound {
		s.inbound[li].q.drainInto(&s.pending, li)
	}
	p := s.pending
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && arrivalLess(&p[j], &p[j-1]); j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
	for i := range p {
		e := &p[i]
		pkt := s.Net.Pool().Get()
		e.rec.restore(pkt)
		s.inbound[e.link].dstDev.InjectArrivalFrom(e.rec.arrival, e.rec.sent, pkt)
	}
}

// arrivalLess is drainInbound's strict (arrival, emission, link) order.
func arrivalLess(a, b *pendingArrival) bool {
	if a.rec.arrival != b.rec.arrival {
		return a.rec.arrival < b.rec.arrival
	}
	if a.rec.sent != b.rec.sent {
		return a.rec.sent < b.rec.sent
	}
	return a.link < b.link
}

// cutLink is one direction of a severed inter-shard link: the source
// half-device's Handoff target and the queue the destination drains in
// drain phases.
type cutLink struct {
	src, dst *Shard
	srcIdx   int // source shard's index (nextHorizon's wake lookup)
	srcDev   *netem.Device
	dstDev   *netem.Device
	delay    sim.Time
	q        spsc
}

// Handoff runs on the source shard's goroutine at transmit completion
// (a run phase): copy the packet into a pool-free record, release the
// source packet, and queue the record for the destination's next drain
// phase.
func (l *cutLink) Handoff(p *packet.Packet, sent, arrival sim.Time) {
	var r record
	r.capture(p, sent, arrival)
	l.src.Net.Pool().Put(p)
	l.q.push(&r)
}
