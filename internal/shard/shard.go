// Package shard runs one netem topology across several sim.Engine
// instances — one goroutine per shard — using conservative time-window
// synchronisation (a barrier-synchronised variant of the classical
// CMB/null-message family of parallel discrete-event schemes).
//
// A Cluster is a netem.Fabric: topology builders place nodes on shards
// and every link between shards becomes a cut link — a pair of
// netem.ConnectHalf devices bridged by bounded SPSC handoff queues. The
// cluster's lookahead W is the minimum propagation delay over all cut
// links. Execution proceeds in windows of width W, each split into two
// barrier-separated phases: first every shard drains its inbound handoff
// queues (injecting cross-shard arrivals in (time, link, FIFO) order),
// the cluster barriers, then every shard dispatches its local events up
// to the window horizon and the cluster barriers again. Draining never
// pushes, so during a drain phase every producer is quiescent and the
// barrier's happens-before edge makes the plain (atomics-free) handoff
// queues safe — no push ever overlaps a drain. A packet whose
// transmission completes at time t inside a window arrives at t+delay ≥
// t+W, which is strictly beyond the window horizon — so every
// cross-shard arrival is injected in the drain phase of a window before
// the one that dispatches it, and no shard ever sees an event "from the
// past".
//
// Byte-identical results. Node IDs are allocated from one cluster-global
// counter in builder call order, so flow keys, RNG seeds, and connection
// state match the single-engine build exactly. Each hop costs exactly one
// arrival event in both modes (a pooled propagation event locally, an
// injected AtCall across a cut), so engine event counts match. The one
// residual freedom is the engine's FIFO tie-break for events at the exact
// same nanosecond: an injected arrival acquires its sequence number at
// the barrier rather than at the remote transmit completion. The topology
// builders choose partitions where same-instant ties between a cut
// arrival and an interacting local event are not systematically produced
// (see BuildDumbbellOn / BuildParkingLotOn), and the experiments package
// locks the guarantee down with differential tests that require
// byte-identical reports at 1, 2, and 4 shards.
package shard

import (
	"fmt"
	"sort"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Shard is one partition: an engine, its network (with a private packet
// pool), and the cut links that terminate here.
type Shard struct {
	Engine *sim.Engine
	Net    *netem.Network

	inbound []*cutLink
	pending []pendingArrival
}

// Cluster partitions one simulated topology across n engines. It
// implements netem.Fabric, so netem's topology builders run on it
// unchanged. Construction (NodeOn/Connect) and Run must be called from a
// single goroutine; Run spawns and joins the per-shard workers itself.
type Cluster struct {
	shards []*Shard
	links  []*cutLink
	nodes  int
	// horizon is the furthest time Run has advanced to; a later Run call
	// resumes the window schedule from here instead of replaying it.
	horizon sim.Time
}

// NewCluster returns a cluster of n empty shards (n >= 1). A 1-shard
// cluster is exactly a single-engine simulation: no cut links, no
// barriers, no extra goroutines.
func NewCluster(n int) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("shard: cluster needs at least one shard, got %d", n))
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		eng := sim.NewEngine()
		c.shards = append(c.shards, &Shard{Engine: eng, Net: netem.NewNetwork(eng)})
	}
	return c
}

// Shards returns the partition count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns partition i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// NodeOn creates a node on partition `shard` (clamped to the valid
// range). IDs come from a cluster-global counter in call order, so the
// node numbering is identical to the same builder running on a plain
// Network.
func (c *Cluster) NodeOn(shard int, name string) *netem.Node {
	if shard < 0 {
		shard = 0
	}
	if shard >= len(c.shards) {
		shard = len(c.shards) - 1
	}
	c.nodes++
	return c.shards[shard].Net.NewNodeWithID(packet.NodeID(c.nodes), name)
}

// Connect links a and b: a local peered pair when both live on the same
// shard, a cut-link pair (two half devices bridged by handoff queues)
// otherwise. Cut links must have positive delay — the conservative
// lookahead is the minimum latency over all cut links, and a zero-delay
// cut would leave no window to parallelise.
func (c *Cluster) Connect(a, b *netem.Node, cfg netem.LinkConfig) (*netem.Device, *netem.Device) {
	sa, sb := c.shardOf(a), c.shardOf(b)
	if sa == sb {
		return c.shards[sa].Net.Connect(a, b, cfg)
	}
	if cfg.Delay <= 0 {
		panic(fmt.Sprintf("shard: cut link %s<->%s needs positive propagation delay (the conservative lookahead is the minimum cut-link latency)", a.Name, b.Name))
	}
	ab := &cutLink{src: c.shards[sa], dst: c.shards[sb], delay: cfg.Delay}
	ba := &cutLink{src: c.shards[sb], dst: c.shards[sa], delay: cfg.Delay}
	da := c.shards[sa].Net.ConnectHalf(a, b.Name, cfg, ab)
	db := c.shards[sb].Net.ConnectHalf(b, a.Name, cfg, ba)
	ab.dstDev, ba.dstDev = db, da
	c.links = append(c.links, ab, ba)
	c.shards[sb].inbound = append(c.shards[sb].inbound, ab)
	c.shards[sa].inbound = append(c.shards[sa].inbound, ba)
	return da, db
}

var _ netem.Fabric = (*Cluster)(nil)

func (c *Cluster) shardOf(n *netem.Node) int {
	for i, s := range c.shards {
		if s.Net == n.Network() {
			return i
		}
	}
	panic(fmt.Sprintf("shard: node %s does not belong to this cluster", n.Name))
}

// Lookahead returns the conservative window width: the minimum
// propagation delay over all cut links (MaxTime when nothing is cut).
func (c *Cluster) Lookahead() sim.Time {
	w := sim.MaxTime
	for _, l := range c.links {
		if l.delay < w {
			w = l.delay
		}
	}
	return w
}

// Processed sums dispatched events across all shard engines — comparable
// with a single engine's Processed counter for the same scenario.
func (c *Cluster) Processed() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.Engine.Processed
	}
	return n
}

// cmd is one phase issued to a shard worker: a drain phase (run == false,
// empty the inbound handoff queues) or a run phase (run == true, dispatch
// local events up to horizon h). The two phases never overlap across
// shards — Cluster.Run barriers between them — which is what makes the
// unsynchronised handoff queues safe.
type cmd struct {
	run bool
	h   sim.Time
}

// Run advances every shard to `until` in barrier-synchronised windows of
// the cluster lookahead, each window a drain phase then a run phase (see
// the package doc). Calls with increasing horizons resume the window
// schedule where the previous call left off; a horizon at or below the
// previous one is a no-op — the cluster clock never moves backward. With
// no cut links (one shard, or a topology that never crossed partitions)
// it degenerates to plain sequential Run calls. A panic on any shard is
// re-raised on the caller's goroutine after the in-flight phase joins,
// so the fleet orchestrator's per-job recovery still contains it.
func (c *Cluster) Run(until sim.Time) {
	if until <= c.horizon {
		return
	}
	if len(c.links) == 0 {
		for _, s := range c.shards {
			s.Engine.RunUntil(until)
		}
		c.horizon = until
		return
	}
	w := c.Lookahead()
	done := make(chan any, len(c.shards))
	cmds := make([]chan cmd, len(c.shards))
	for i, s := range c.shards {
		ch := make(chan cmd)
		cmds[i] = ch
		go func(s *Shard, cmds <-chan cmd) {
			for p := range cmds {
				done <- s.step(p)
			}
		}(s, ch)
	}
	defer func() {
		for _, ch := range cmds {
			close(ch)
		}
	}()
	// The window schedule is a pure function of (lookahead, horizon,
	// until), so it is identical across runs of the same configuration.
	next := c.horizon
	for {
		if until-next <= w {
			next = until
		} else {
			next += w
		}
		// Drain phase: every producer is draining (never pushing), so the
		// consumers' reads of the handoff queues cannot race. Arrivals
		// handed off in the previous run phase land strictly beyond that
		// window's horizon, so injecting them here is never "in the past".
		c.phase(cmds, done, cmd{})
		// Run phase: every shard dispatches up to the window horizon,
		// pushing cross-shard handoffs for the next drain phase.
		c.phase(cmds, done, cmd{run: true, h: next})
		c.horizon = next
		if next >= until {
			return
		}
	}
}

// phase issues one command to every worker and joins the barrier,
// re-raising the first shard failure on the caller's goroutine.
func (c *Cluster) phase(cmds []chan cmd, done <-chan any, p cmd) {
	for _, ch := range cmds {
		ch <- p
	}
	var failure any
	for range c.shards {
		if r := <-done; r != nil && failure == nil {
			failure = r
		}
	}
	if failure != nil {
		panic(failure)
	}
}

// step executes one phase on the shard's worker goroutine; a panic is
// returned, not propagated, so the barrier always completes.
func (s *Shard) step(p cmd) (failure any) {
	defer func() { failure = recover() }()
	if p.run {
		s.Engine.RunUntil(p.h)
	} else {
		s.drainInbound()
	}
	return nil
}

// pendingArrival is one drained handoff record plus the inbound-slot
// ordinal used as the deterministic tie-break for same-instant arrivals
// from different links.
type pendingArrival struct {
	rec  record
	link int
}

// drainInbound empties every inbound queue and injects the packets as
// arrival events, ordered by (arrival time, inbound link, per-link FIFO).
// The sort only matters for exact same-nanosecond ties — everything else
// is ordered by the engine's time comparison — and makes that order a
// deterministic function of the topology rather than of scheduling.
func (s *Shard) drainInbound() {
	s.pending = s.pending[:0]
	for li, l := range s.inbound {
		li := li
		l.q.drain(func(r *record) {
			s.pending = append(s.pending, pendingArrival{rec: *r, link: li})
		})
	}
	sort.SliceStable(s.pending, func(i, j int) bool {
		a, b := &s.pending[i], &s.pending[j]
		if a.rec.arrival != b.rec.arrival {
			return a.rec.arrival < b.rec.arrival
		}
		return a.link < b.link
	})
	for i := range s.pending {
		e := &s.pending[i]
		p := s.Net.Pool().Get()
		e.rec.restore(p)
		s.inbound[e.link].dstDev.InjectArrivalAt(e.rec.arrival, p)
	}
}

// cutLink is one direction of a severed inter-shard link: the source
// half-device's Handoff target and the queue the destination drains in
// drain phases.
type cutLink struct {
	src, dst *Shard
	dstDev   *netem.Device
	delay    sim.Time
	q        spsc
}

// Handoff runs on the source shard's goroutine at transmit completion
// (a run phase): copy the packet into a pool-free record, release the
// source packet, and queue the record for the destination's next drain
// phase.
func (l *cutLink) Handoff(p *packet.Packet, arrival sim.Time) {
	var r record
	r.capture(p, arrival)
	l.src.Net.Pool().Put(p)
	l.q.push(&r)
}
