package scenario

import (
	"testing"
	"time"

	"cebinae/experiments"
)

// These tests pin the format's core contract: a canonical spec file
// compiles to the same construction as the hand-built Go scenario it
// mirrors, so the two produce byte-identical reports — at one shard and
// under the min-cut auto-partitioner alike. Any drift between the
// declarative and programmatic paths (defaulting, unit parsing,
// lowering, construction order) breaks these bytes.

func mustLoad(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := Load(scenarioPath(t, name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func compileAt(t *testing.T, s *Spec, shards int) *Compiled {
	t.Helper()
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	c.SetShards(shards)
	return c
}

var differentialShardCounts = []int{1, experiments.ShardAuto}

// TestDifferentialDumbbell compares dumbbell.json against the hand-built
// determinism scenario (the experiments package's own differential
// workload).
func TestDifferentialDumbbell(t *testing.T) {
	spec := mustLoad(t, "dumbbell.json")
	for _, shards := range differentialShardCounts {
		goBuilt := experiments.Scenario{
			Name:          "determinism",
			BottleneckBps: 50e6,
			BufferBytes:   1 << 20,
			Groups: []experiments.FlowGroup{
				{CC: "newreno", Count: 3, RTT: experiments.Millis(20)},
				{CC: "cubic", Count: 2, RTT: experiments.Millis(60)},
				{CC: "newreno", Count: 1, RTT: experiments.Millis(40), StartAt: experiments.Seconds(1)},
			},
			Duration:       experiments.Seconds(4),
			Qdisc:          experiments.Cebinae,
			Seed:           7,
			SampleInterval: experiments.Millis(200),
			Shards:         shards,
		}
		want := experiments.Run(goBuilt).Report()
		got := compileAt(t, spec, shards).RunReport()
		if got != want {
			t.Errorf("shards=%d: spec-compiled report differs from Go-built\n--- go\n%s--- spec\n%s", shards, want, got)
		}
	}
}

// TestDifferentialChain compares chain.json against
// experiments.CanonicalChain.
func TestDifferentialChain(t *testing.T) {
	spec := mustLoad(t, "chain.json")
	for _, shards := range differentialShardCounts {
		goBuilt := experiments.CanonicalChain(experiments.Cebinae, experiments.Seconds(2), shards)
		want := experiments.RunChain(goBuilt).Report()
		got := compileAt(t, spec, shards).RunReport()
		if got != want {
			t.Errorf("shards=%d: spec-compiled report differs from Go-built\n--- go\n%s--- spec\n%s", shards, want, got)
		}
	}
}

// TestDifferentialCross compares cross.json against
// experiments.CanonicalCross.
func TestDifferentialCross(t *testing.T) {
	spec := mustLoad(t, "cross.json")
	for _, shards := range differentialShardCounts {
		want := experiments.RunCross(experiments.CanonicalCross(shards)).Report()
		got := compileAt(t, spec, shards).RunReport()
		if got != want {
			t.Errorf("shards=%d: spec-compiled report differs from Go-built\n--- go\n%s--- spec\n%s", shards, want, got)
		}
	}
}

// TestDifferentialBackbone compares backbone-1e5.json against
// experiments.BackboneTier(100000, ·). The shipped file declares the
// full 400 ms horizon; the test dials both sides to the quick scale so
// the comparison still exercises the exact compile path within the test
// budget.
// TestDifferentialMultihopShards pins shard-identity for the graph
// family on the shipped multihop topology — the dense (10 Gbps core,
// µs-scale paths, synchronized senders) workload where the runner must
// cut only the declared switch links: cutting the forty identical-delay
// access links instead creates same-(deadline, emission-stamp) ties the
// conservative runner cannot order like a single engine. The shipped
// 2 s horizon is dialed down to keep the test in budget; explicit shard
// counts matter here because "auto" degrades to 1 on single-core
// machines.
func TestDifferentialMultihopShards(t *testing.T) {
	spec := mustLoad(t, "multihop.json")
	spec.Graph.Duration = dur(300 * time.Millisecond)
	want := compileAt(t, spec, 1).RunReport()
	for _, shards := range []int{2, 4, experiments.ShardAuto} {
		got := compileAt(t, spec, shards).RunReport()
		if got != want {
			t.Errorf("shards=%d: report differs from single-engine run\n--- 1\n%s--- %d\n%s", shards, want, shards, got)
		}
	}
}

func TestDifferentialBackbone(t *testing.T) {
	spec := mustLoad(t, "backbone-1e5.json")
	spec.Backbone.Scale = "quick"
	for _, shards := range differentialShardCounts {
		goBuilt := experiments.BackboneTier(100000, experiments.Quick)
		goBuilt.Shards = shards
		want := experiments.RunBackbone(goBuilt).Render()
		got := compileAt(t, spec, shards).RunReport()
		if got != want {
			t.Errorf("shards=%d: spec-compiled report differs from Go-built\n--- go\n%s--- spec\n%s", shards, want, got)
		}
	}
}
