package scenario

import (
	"fmt"
	"strings"
	"time"

	"cebinae/internal/tcp"
)

// Validation walks a parsed spec and reports the first defect with a
// path-qualified message ("scenario: graph.links[2].b: ..."), so a bad
// file points at the exact field. The diagnostics are part of the
// format's contract — golden tests pin their text.

// kinds maps each scenario kind to the qdisc names its lowering supports.
var kinds = map[string][]string{
	"dumbbell":     {"afq", "cebinae", "fifo", "fq", "pcq", "strawman"},
	"chain":        {"cebinae", "fifo", "fq"},
	"cross":        nil, // both ports are always FIFO
	"backbone":     {"cebinae", "fifo"},
	"graph":        {"cebinae", "fifo", "fq"},
	"tournament":   {"afq", "cebinae", "fifo", "fq", "pcq", "strawman"},
	"buffer_sweep": {"afq", "cebinae", "fifo", "fq", "pcq", "strawman"},
}

// kindOrder lists the kinds in the order diagnostics enumerate them.
var kindOrder = []string{"dumbbell", "chain", "cross", "backbone", "graph", "tournament", "buffer_sweep"}

func vErr(path, format string, args ...any) error {
	return fmt.Errorf("scenario: %s: %s", path, fmt.Sprintf(format, args...))
}

func checkCC(path, cc string) error {
	if _, ok := tcp.NewCC(cc); !ok {
		return vErr(path, "unknown CC %q (known: %s)", cc, strings.Join(tcp.CCNames(), ", "))
	}
	return nil
}

func checkQdisc(path, kind, q string) error {
	known := kinds[kind]
	for _, k := range known {
		if q == k {
			return nil
		}
	}
	return vErr(path, "unknown qdisc %q (known: %s)", q, strings.Join(known, ", "))
}

func checkPositiveRate(path string, r Rate) error {
	if r <= 0 {
		return vErr(path, "rate must be positive, got %v", float64(r))
	}
	return nil
}

func checkPositiveDur(path string, d Dur) error {
	if d <= 0 {
		return vErr(path, "duration must be positive, got %v", time.Duration(d))
	}
	return nil
}

func checkNonNegativeDur(path string, d Dur) error {
	if d < 0 {
		return vErr(path, "duration must not be negative, got %v", time.Duration(d))
	}
	return nil
}

func checkGroups(path string, groups []GroupSpec) error {
	if len(groups) == 0 {
		return vErr(path, "at least one flow group required")
	}
	for i, g := range groups {
		p := fmt.Sprintf("%s[%d]", path, i)
		if err := checkCC(p+".cc", g.CC); err != nil {
			return err
		}
		if g.Count <= 0 {
			return vErr(p+".count", "must be positive, got %d", g.Count)
		}
		if err := checkPositiveDur(p+".rtt", g.RTT); err != nil {
			return err
		}
		if err := checkNonNegativeDur(p+".start_at", g.StartAt); err != nil {
			return err
		}
	}
	return nil
}

func checkPortQdisc(path, kind string, q *PortQdiscSpec) error {
	if q == nil {
		return nil
	}
	if err := checkQdisc(path+".kind", kind, q.Kind); err != nil {
		return err
	}
	if q.BufferBytes < 0 {
		return vErr(path+".buffer_bytes", "must not be negative, got %d", q.BufferBytes)
	}
	return checkNonNegativeDur(path+".cebinae_rtt", q.CebinaeRTT)
}

// Validate checks a parsed spec and returns the first defect found, or
// nil. Parse calls it; it is exported for callers that build specs
// programmatically.
func Validate(s *Spec) error {
	if s.Version != Version {
		return fmt.Errorf("scenario: unsupported version %d (want %d)", s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: name: required")
	}
	if _, ok := kinds[s.Kind]; !ok {
		return fmt.Errorf("scenario: kind: unknown scenario kind %q (known: %s)", s.Kind, strings.Join(kindOrder, ", "))
	}
	sections := map[string]bool{
		"dumbbell":     s.Dumbbell != nil,
		"chain":        s.Chain != nil,
		"cross":        s.Cross != nil,
		"backbone":     s.Backbone != nil,
		"graph":        s.Graph != nil,
		"tournament":   s.Tournament != nil,
		"buffer_sweep": s.BufferSweep != nil,
	}
	if !sections[s.Kind] {
		return fmt.Errorf("scenario: %s: kind %q requires a %q section", s.Kind, s.Kind, s.Kind)
	}
	for _, k := range kindOrder {
		if k != s.Kind && sections[k] {
			return fmt.Errorf("scenario: %s: section does not match kind %q", k, s.Kind)
		}
	}
	switch s.Kind {
	case "dumbbell":
		return validateDumbbell(s.Dumbbell)
	case "chain":
		return validateChain(s.Chain)
	case "cross":
		return validateCross(s.Cross)
	case "backbone":
		return validateBackbone(s.Backbone)
	case "graph":
		return validateGraph(s.Graph)
	case "tournament":
		return validateTournament(s.Tournament)
	default:
		return validateBufferSweep(s.BufferSweep)
	}
}

func validateDumbbell(d *DumbbellSpec) error {
	if err := checkPositiveRate("dumbbell.rate", d.Rate); err != nil {
		return err
	}
	if d.BufferBytes <= 0 {
		return vErr("dumbbell.buffer_bytes", "must be positive, got %d", d.BufferBytes)
	}
	if err := checkGroups("dumbbell.groups", d.Groups); err != nil {
		return err
	}
	if err := checkPositiveDur("dumbbell.duration", d.Duration); err != nil {
		return err
	}
	if err := checkQdisc("dumbbell.qdisc", "dumbbell", d.Qdisc); err != nil {
		return err
	}
	if d.Tau != nil && (*d.Tau <= 0 || *d.Tau >= 1) {
		return vErr("dumbbell.tau", "must be in (0, 1), got %v", *d.Tau)
	}
	if d.WarmupFraction < 0 || d.WarmupFraction >= 1 {
		return vErr("dumbbell.warmup_fraction", "must be in [0, 1), got %v", d.WarmupFraction)
	}
	if err := checkNonNegativeDur("dumbbell.min_rto", d.MinRTO); err != nil {
		return err
	}
	return checkNonNegativeDur("dumbbell.sample_interval", d.SampleInterval)
}

func validateChain(c *ChainSpec) error {
	if c.Hops <= 0 {
		return vErr("chain.hops", "must be positive, got %d", c.Hops)
	}
	if c.LongFlows < 0 {
		return vErr("chain.long_flows", "must not be negative, got %d", c.LongFlows)
	}
	if len(c.CrossPerHop) != c.Hops {
		return vErr("chain.cross_per_hop", "wants one entry per hop (%d), got %d", c.Hops, len(c.CrossPerHop))
	}
	for i, n := range c.CrossPerHop {
		if n < 0 {
			return vErr(fmt.Sprintf("chain.cross_per_hop[%d]", i), "must not be negative, got %d", n)
		}
	}
	if c.LongFlows > 0 {
		if err := checkCC("chain.long_cc", c.LongCC); err != nil {
			return err
		}
	}
	if len(c.CrossCCs) != c.Hops {
		return vErr("chain.cross_ccs", "wants one entry per hop (%d), got %d", c.Hops, len(c.CrossCCs))
	}
	for i, cc := range c.CrossCCs {
		if err := checkCC(fmt.Sprintf("chain.cross_ccs[%d]", i), cc); err != nil {
			return err
		}
	}
	if err := checkPositiveRate("chain.rate", c.Rate); err != nil {
		return err
	}
	if c.BufferBytes <= 0 {
		return vErr("chain.buffer_bytes", "must be positive, got %d", c.BufferBytes)
	}
	if err := checkPositiveDur("chain.link_delay", c.LinkDelay); err != nil {
		return err
	}
	if err := checkPositiveDur("chain.access_delay", c.AccessDelay); err != nil {
		return err
	}
	if err := checkQdisc("chain.qdisc", "chain", c.Qdisc); err != nil {
		return err
	}
	if err := checkNonNegativeDur("chain.cebinae_rtt", c.CebinaeRTT); err != nil {
		return err
	}
	return checkPositiveDur("chain.duration", c.Duration)
}

func validateCross(c *CrossSpec) error {
	if err := checkPositiveRate("cross.rate", c.Rate); err != nil {
		return err
	}
	if err := checkPositiveDur("cross.delay", c.Delay); err != nil {
		return err
	}
	if c.BufferBytes <= 0 {
		return vErr("cross.buffer_bytes", "must be positive, got %d", c.BufferBytes)
	}
	if len(c.Sends) == 0 {
		return vErr("cross.sends", "at least one injection instant required")
	}
	for i, at := range c.Sends {
		if err := checkNonNegativeDur(fmt.Sprintf("cross.sends[%d]", i), at); err != nil {
			return err
		}
	}
	if c.PacketBytes <= 0 {
		return vErr("cross.packet_bytes", "must be positive, got %d", c.PacketBytes)
	}
	if c.PayloadBytes < 0 || c.PayloadBytes > c.PacketBytes {
		return vErr("cross.payload_bytes", "must be in [0, packet_bytes], got %d", c.PayloadBytes)
	}
	return checkPositiveDur("cross.until", c.Until)
}

func validateBackbone(b *BackboneSpec) error {
	if b.Flows <= 0 {
		return vErr("backbone.flows", "must be positive, got %d", b.Flows)
	}
	switch b.Scale {
	case "quick", "medium", "full":
	default:
		return vErr("backbone.scale", "unknown scale %q (known: quick, medium, full)", b.Scale)
	}
	if b.Qdisc != "" {
		return checkQdisc("backbone.qdisc", "backbone", b.Qdisc)
	}
	return nil
}

func validateGraph(g *GraphSpec) error {
	if len(g.Switches) == 0 {
		return vErr("graph.switches", "at least one switch required")
	}
	switches := map[string]bool{}
	for i, sw := range g.Switches {
		p := fmt.Sprintf("graph.switches[%d].name", i)
		if sw.Name == "" {
			return vErr(p, "required")
		}
		if switches[sw.Name] {
			return vErr(p, "duplicate switch %q", sw.Name)
		}
		switches[sw.Name] = true
	}
	for i, l := range g.Links {
		p := fmt.Sprintf("graph.links[%d]", i)
		if !switches[l.A] {
			return vErr(p+".a", "unknown switch %q", l.A)
		}
		if !switches[l.B] {
			return vErr(p+".b", "unknown switch %q", l.B)
		}
		if l.A == l.B {
			return vErr(p, "self-link on switch %q", l.A)
		}
		if err := checkPositiveRate(p+".rate", l.Rate); err != nil {
			return err
		}
		if err := checkPositiveDur(p+".delay", l.Delay); err != nil {
			return err
		}
		if err := checkPortQdisc(p+".qdisc_ab", "graph", l.QdiscAB); err != nil {
			return err
		}
		if err := checkPortQdisc(p+".qdisc_ba", "graph", l.QdiscBA); err != nil {
			return err
		}
	}
	if len(g.Hosts) == 0 {
		return vErr("graph.hosts", "at least one host group required")
	}
	hosts := map[string]bool{}
	for i, h := range g.Hosts {
		p := fmt.Sprintf("graph.hosts[%d]", i)
		if h.Name == "" {
			return vErr(p+".name", "required")
		}
		if hosts[h.Name] {
			return vErr(p+".name", "duplicate host group %q", h.Name)
		}
		hosts[h.Name] = true
		if h.Count <= 0 {
			return vErr(p+".count", "must be positive, got %d", h.Count)
		}
		if !switches[h.Attach] {
			return vErr(p+".attach", "unknown switch %q", h.Attach)
		}
		if err := checkPositiveRate(p+".rate", h.Rate); err != nil {
			return err
		}
		if err := checkPositiveDur(p+".delay", h.Delay); err != nil {
			return err
		}
		if err := checkPortQdisc(p+".down_qdisc", "graph", h.DownQdisc); err != nil {
			return err
		}
	}
	if len(g.Flows) == 0 {
		return vErr("graph.flows", "at least one flow group required")
	}
	for i, f := range g.Flows {
		p := fmt.Sprintf("graph.flows[%d]", i)
		if !hosts[f.From] {
			return vErr(p+".from", "unknown host group %q", f.From)
		}
		if !hosts[f.To] {
			return vErr(p+".to", "unknown host group %q", f.To)
		}
		if err := checkCC(p+".cc", f.CC); err != nil {
			return err
		}
		if err := checkNonNegativeDur(p+".start_at", f.StartAt); err != nil {
			return err
		}
	}
	if g.WarmupFraction < 0 || g.WarmupFraction >= 1 {
		return vErr("graph.warmup_fraction", "must be in [0, 1), got %v", g.WarmupFraction)
	}
	if err := checkNonNegativeDur("graph.min_rto", g.MinRTO); err != nil {
		return err
	}
	return checkPositiveDur("graph.duration", g.Duration)
}

func validateTournament(t *TournamentSpec) error {
	if len(t.CCAs) == 0 {
		return vErr("tournament.ccas", "at least one CCA required")
	}
	for i, cc := range t.CCAs {
		if err := checkCC(fmt.Sprintf("tournament.ccas[%d]", i), cc); err != nil {
			return err
		}
	}
	if t.FlowsPerCCA <= 0 {
		return vErr("tournament.flows_per_cca", "must be positive, got %d", t.FlowsPerCCA)
	}
	if err := checkPositiveRate("tournament.rate", t.Rate); err != nil {
		return err
	}
	if err := checkPositiveDur("tournament.base_rtt", t.BaseRTT); err != nil {
		return err
	}
	if len(t.RTTRatios) == 0 {
		return vErr("tournament.rtt_ratios", "at least one ratio required")
	}
	for i, r := range t.RTTRatios {
		if r <= 0 {
			return vErr(fmt.Sprintf("tournament.rtt_ratios[%d]", i), "must be positive, got %v", r)
		}
	}
	if err := checkBufList("tournament.buffer_bytes", t.BufferBytes); err != nil {
		return err
	}
	if err := checkQdiscList("tournament.qdiscs", "tournament", t.Qdiscs); err != nil {
		return err
	}
	if err := checkNonNegativeDur("tournament.min_rto", t.MinRTO); err != nil {
		return err
	}
	return checkPositiveDur("tournament.duration", t.Duration)
}

func validateBufferSweep(b *BufferSweepSpec) error {
	if err := checkGroups("buffer_sweep.groups", b.Groups); err != nil {
		return err
	}
	if err := checkPositiveRate("buffer_sweep.rate", b.Rate); err != nil {
		return err
	}
	if err := checkBufList("buffer_sweep.buffer_bytes", b.BufferBytes); err != nil {
		return err
	}
	if err := checkQdiscList("buffer_sweep.qdiscs", "buffer_sweep", b.Qdiscs); err != nil {
		return err
	}
	if err := checkNonNegativeDur("buffer_sweep.min_rto", b.MinRTO); err != nil {
		return err
	}
	return checkPositiveDur("buffer_sweep.duration", b.Duration)
}

func checkBufList(path string, bufs []int) error {
	if len(bufs) == 0 {
		return vErr(path, "at least one buffer depth required")
	}
	for i, b := range bufs {
		if b <= 0 {
			return vErr(fmt.Sprintf("%s[%d]", path, i), "must be positive, got %d", b)
		}
	}
	return nil
}

func checkQdiscList(path, kind string, qs []string) error {
	if len(qs) == 0 {
		return vErr(path, "at least one qdisc required")
	}
	for i, q := range qs {
		if err := checkQdisc(fmt.Sprintf("%s[%d]", path, i), kind, q); err != nil {
			return err
		}
	}
	return nil
}
