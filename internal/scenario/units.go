package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cebinae/experiments"
)

// The spec's scalar vocabulary. Each type accepts the human form a config
// author writes ("10G", "40ms", "auto") alongside the raw number, and
// marshals back to one canonical rendering, so parse → emit → parse is
// the identity and canonical files are byte-stable under Emit.

// Rate is a bit rate in bits per second. JSON forms: a number (bps) or a
// string with a K/M/G decimal suffix ("100M", "2.5G"). Emission prefers
// the largest suffix that reproduces the value exactly and falls back to
// the plain number otherwise.
type Rate float64

var rateUnits = []struct {
	suffix string
	mult   float64
}{{"G", 1e9}, {"M", 1e6}, {"K", 1e3}}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Rate) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := ParseRate(s)
		if err != nil {
			return err
		}
		*r = v
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("rate wants a number or a suffixed string like \"100M\", got %s", strings.TrimSpace(string(b)))
	}
	*r = Rate(v)
	return nil
}

// ParseRate parses the string form of a Rate.
func ParseRate(s string) (Rate, error) {
	num, mult := s, 1.0
	for _, u := range rateUnits {
		if strings.HasSuffix(s, u.suffix) {
			num, mult = strings.TrimSuffix(s, u.suffix), u.mult
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("rate wants a number or a suffixed string like \"100M\", got %q", s)
	}
	return Rate(v * mult), nil
}

// MarshalJSON implements json.Marshaler.
func (r Rate) MarshalJSON() ([]byte, error) {
	v := float64(r)
	for _, u := range rateUnits {
		m := v / u.mult
		// Only use the suffix when the division is exact under round-trip,
		// so emitted files reload to the identical value.
		if m >= 1 && m == float64(int64(m)) && m*u.mult == v {
			return json.Marshal(strconv.FormatFloat(m, 'g', -1, 64) + u.suffix)
		}
	}
	return json.Marshal(v)
}

// Dur is a simulated duration. JSON forms: a Go duration string ("40ms",
// "1.5s") or a number of nanoseconds. Emission uses time.Duration's
// string form, which ParseDuration reads back exactly.
type Dur int64

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dur) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("duration wants a Go duration string like \"40ms\" or nanoseconds, got %q", s)
		}
		*d = Dur(v)
		return nil
	}
	var v int64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("duration wants a Go duration string like \"40ms\" or nanoseconds, got %s", strings.TrimSpace(string(b)))
	}
	*d = Dur(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Time converts to the simulator clock.
func (d Dur) Time() experiments.SimTime { return experiments.SimTime(d) }

// Shards is a shard count: a positive integer, the string "auto"
// (machine-sized via the min-cut planner), or absent (0, the package
// default — a single engine unless the CLI overrides).
type Shards int

// UnmarshalJSON implements json.Unmarshaler.
func (n *Shards) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := experiments.ParseShards(s)
		if err != nil {
			return fmt.Errorf("shards wants a positive integer or \"auto\", got %q", s)
		}
		*n = Shards(v)
		return nil
	}
	var v int
	if err := json.Unmarshal(b, &v); err != nil || v < 1 {
		return fmt.Errorf("shards wants a positive integer or \"auto\", got %s", strings.TrimSpace(string(b)))
	}
	*n = Shards(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (n Shards) MarshalJSON() ([]byte, error) {
	if int(n) == experiments.ShardAuto {
		return json.Marshal("auto")
	}
	return json.Marshal(int(n))
}
