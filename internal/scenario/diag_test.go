package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiagnosticsGolden pins the exact error text of the validation and
// parse diagnostics against golden files — the messages are part of the
// format's contract (tooling and humans grep for them), so wording
// changes must be deliberate. Each testdata/diag/<case>.json has a
// <case>.err holding the expected Parse error; -update rewrites the
// goldens.
func TestDiagnosticsGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "diag", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no diagnostic fixtures found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(strings.TrimSuffix(filepath.Base(path), ".json"), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			_, perr := Parse(data)
			if perr == nil {
				t.Fatalf("fixture unexpectedly valid")
			}
			golden := strings.TrimSuffix(path, ".json") + ".err"
			if *update {
				if err := os.WriteFile(golden, []byte(perr.Error()+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got := perr.Error() + "\n"; got != string(want) {
				t.Errorf("diagnostic drifted\ngot:  %swant: %s", got, want)
			}
		})
	}
}
