package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the canonical scenario files from their Go declarations")

func dur(d time.Duration) Dur { return Dur(d) }

func fptr(v float64) *float64 { return &v }

// canonicalSpecs declares the shipped scenario files. The files under
// scenarios/ are generated from these literals (go test -run
// TestCanonicalFiles -update), so the byte-identity contract has a
// single source of truth: the round-trip test pins file bytes ==
// Emit(literal), and the differential tests pin the literals' compiled
// runs against the hand-built Go scenarios.
func canonicalSpecs() map[string]*Spec {
	return map[string]*Spec{
		// The experiments determinism dumbbell: mixed CC and RTT groups
		// through the Cebinae bottleneck with sampling on.
		"dumbbell.json": {
			Version: 1, Name: "determinism", Kind: "dumbbell", Seed: 7,
			Dumbbell: &DumbbellSpec{
				Rate:        50e6,
				BufferBytes: 1 << 20,
				Groups: []GroupSpec{
					{CC: "newreno", Count: 3, RTT: dur(20 * time.Millisecond)},
					{CC: "cubic", Count: 2, RTT: dur(60 * time.Millisecond)},
					{CC: "newreno", Count: 1, RTT: dur(40 * time.Millisecond), StartAt: dur(time.Second)},
				},
				Duration:       dur(4 * time.Second),
				Qdisc:          "cebinae",
				SampleInterval: dur(200 * time.Millisecond),
			},
		},
		// The Fig.-11 parking lot under Cebinae (experiments.CanonicalChain).
		"chain.json": {
			Version: 1, Name: "chain/cebinae", Kind: "chain",
			Chain: &ChainSpec{
				Hops: 3, LongFlows: 8, CrossPerHop: []int{2, 8, 4},
				LongCC: "newreno", CrossCCs: []string{"bic", "vegas", "cubic"},
				Rate: 100e6, BufferBytes: 850 * 1500,
				LinkDelay: dur(5 * time.Millisecond), AccessDelay: dur(5 * time.Millisecond),
				Qdisc: "cebinae", CebinaeRTT: dur(120 * time.Millisecond),
				Duration: dur(2 * time.Second),
			},
		},
		// The cut-link delivery pin (experiments.CanonicalCross).
		"cross.json": {
			Version: 1, Name: "cross", Kind: "cross",
			Cross: &CrossSpec{
				Rate: 1e9, Delay: Dur(1e6), BufferBytes: 1 << 20,
				Sends:       []Dur{0, 5e5, 17e5, 32e5, 32e5 + 1},
				PacketBytes: 1500, PayloadBytes: 1448,
				Until: Dur(1e7),
			},
		},
		// The 100k-standing-flow backbone tier (experiments.BackboneTier).
		"backbone-1e5.json": {
			Version: 1, Name: "backbone-100k", Kind: "backbone",
			Backbone: &BackboneSpec{Flows: 100000, Scale: "full"},
		},
		// The community NS-3 reproduction's multi-hop topology: a 10 Gbps
		// T1–T2 core, 1 Gbps everywhere else, S1 (10 senders at T1) and
		// S3 (10 at T2) converging on receiver R1, S2 (20 at T1) fanning
		// out to 20 R2 receivers — Cebinae guards T2's congested egress
		// ports.
		"multihop.json": {
			Version: 1, Name: "multihop", Kind: "graph", Seed: 1,
			Graph: &GraphSpec{
				Switches: []SwitchSpec{{Name: "t1"}, {Name: "t2"}},
				Links: []LinkSpec{{
					A: "t1", B: "t2", Rate: 10e9, Delay: dur(10 * time.Microsecond),
					QdiscAB: &PortQdiscSpec{Kind: "cebinae", BufferBytes: 8 << 20, CebinaeRTT: dur(time.Millisecond)},
				}},
				Hosts: []HostGroupSpec{
					{Name: "s1", Count: 10, Attach: "t1", Rate: 1e9, Delay: dur(50 * time.Microsecond)},
					{Name: "s2", Count: 20, Attach: "t1", Rate: 1e9, Delay: dur(50 * time.Microsecond)},
					{Name: "s3", Count: 10, Attach: "t2", Rate: 1e9, Delay: dur(50 * time.Microsecond)},
					{Name: "r1", Count: 1, Attach: "t2", Rate: 1e9, Delay: dur(50 * time.Microsecond),
						DownQdisc: &PortQdiscSpec{Kind: "cebinae", BufferBytes: 4 << 20, CebinaeRTT: dur(time.Millisecond)}},
					{Name: "r2", Count: 20, Attach: "t2", Rate: 1e9, Delay: dur(50 * time.Microsecond)},
				},
				Flows: []FlowGroupSpec{
					{From: "s1", To: "r1", CC: "newreno"},
					{From: "s2", To: "r2", CC: "newreno"},
					{From: "s3", To: "r1", CC: "newreno"},
				},
				Duration: dur(2 * time.Second),
				// Sub-millisecond paths: the RFC 6298 1 s floor would turn
				// the synchronized start-up loss into run-length stalls.
				MinRTO: dur(10 * time.Millisecond),
			},
		},
		// The CCA tournament matrix: every unordered pair from a
		// three-CCA field, at equal and 2× RTTs, shallow and deep
		// buffers, under FIFO and Cebinae.
		"tournament.json": {
			Version: 1, Name: "cca-tournament", Kind: "tournament", Seed: 11,
			Tournament: &TournamentSpec{
				CCAs:        []string{"newreno", "cubic", "bbr"},
				FlowsPerCCA: 2,
				Rate:        20e6,
				BaseRTT:     dur(20 * time.Millisecond),
				RTTRatios:   []float64{1, 2},
				BufferBytes: []int{37500, 300000},
				Qdiscs:      []string{"fifo", "cebinae"},
				Duration:    dur(time.Second),
				MinRTO:      dur(200 * time.Millisecond),
			},
		},
		// The BBRv1-vs-Cubic buffer-depth fairness sweep: the
		// BBR-fairness study's grid shape — BBR starves Cubic in shallow
		// buffers and cedes share as the buffer deepens — with Cebinae
		// run alongside FIFO at every depth.
		"bbr-buffer-sweep.json": {
			Version: 1, Name: "bbr-buffer-sweep", Kind: "buffer_sweep", Seed: 5,
			BufferSweep: &BufferSweepSpec{
				Groups: []GroupSpec{
					{CC: "bbr", Count: 2, RTT: dur(40 * time.Millisecond)},
					{CC: "cubic", Count: 2, RTT: dur(40 * time.Millisecond)},
				},
				Rate:        50e6,
				BufferBytes: []int{31250, 125000, 500000, 2000000},
				Qdiscs:      []string{"fifo", "cebinae"},
				Duration:    dur(6 * time.Second),
				MinRTO:      dur(200 * time.Millisecond),
			},
		},
	}
}

func scenarioPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "scenarios", name)
}

// TestCanonicalFiles pins the shipped scenario files three ways: the
// bytes on disk are exactly Emit of the Go declaration (canonical form),
// loading them yields a spec deeply equal to the declaration, and
// therefore Emit ∘ Load is the identity on every shipped file.
func TestCanonicalFiles(t *testing.T) {
	for name, want := range canonicalSpecs() {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			path := scenarioPath(t, name)
			canon, err := Emit(want)
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := os.WriteFile(path, canon, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing canonical file (run with -update to generate): %v", err)
			}
			if !bytes.Equal(data, canon) {
				t.Errorf("%s is not canonical: bytes differ from Emit of the Go declaration (run with -update)", name)
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s loads to a different spec than its Go declaration:\ngot  %+v\nwant %+v", name, got, want)
			}
		})
	}
}

// TestEmitLoadIdentity is the stand-alone round-trip law on every file
// in scenarios/ (shipped or user-added): Emit(Load(file)) == file.
func TestEmitLoadIdentity(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario files found: %v", err)
	}
	for _, path := range paths {
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		data, _ := os.ReadFile(path)
		emitted, err := Emit(s)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if !bytes.Equal(emitted, data) {
			t.Errorf("%s: Emit(Load(file)) != file", path)
		}
	}
}
