package scenario

import (
	"strings"
	"testing"

	"cebinae/experiments"
)

// cellByID indexes a grid run's cells.
func cellByID(t *testing.T, r experiments.GridResult, id string) experiments.GridCellResult {
	t.Helper()
	for _, c := range r.Cells {
		if c.ID == id {
			return c
		}
	}
	t.Fatalf("no cell %q in grid %s", id, r.Name)
	return experiments.GridCellResult{}
}

// TestTournamentConformance pins the CCA tournament matrix compiled from
// its shipped spec: the full grid is deterministic — two complete runs
// produce byte-identical reports, so every cell's per-pair JFI is
// reproducible — and the matrix enumerates exactly the declared
// cross-product.
func TestTournamentConformance(t *testing.T) {
	spec := mustLoad(t, "tournament.json")
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 qdiscs × 6 unordered pairs from 3 CCAs × 2 ratios × 2 buffers.
	if len(c.Grid) != 48 {
		t.Fatalf("tournament enumerates %d cells, want 48", len(c.Grid))
	}
	first := experiments.RunGrid(spec.Name, c.Grid)
	second := experiments.RunGrid(spec.Name, c.Grid)
	if first.Report() != second.Report() {
		t.Errorf("tournament is not deterministic across two runs\n--- first\n%s--- second\n%s", first.Report(), second.Report())
	}
	for _, cell := range first.Cells {
		if cell.JFI <= 0 || cell.JFI > 1 {
			t.Errorf("cell %s: JFI %v out of range", cell.ID, cell.JFI)
		}
		if len(cell.GroupGoodputBps) != 2 {
			t.Errorf("cell %s: want 2 per-CCA goodput groups, got %d", cell.ID, len(cell.GroupGoodputBps))
		}
	}
}

// TestBufferSweepConformance pins the BBRv1-vs-Cubic buffer-depth sweep
// compiled from its shipped spec against the BBR-fairness study's
// qualitative signature under FIFO: in shallow buffers BBR's probing
// floor starves Cubic, in deep buffers Cubic's queue occupancy starves
// BBR, and fairness improves with depth. Cebinae is asserted ≥ FIFO JFI
// at the shallow and mid-deep depths — the regimes where FIFO's
// unfairness comes from queue-occupancy asymmetry, which Cebinae's
// leaf tax targets.
func TestBufferSweepConformance(t *testing.T) {
	spec := mustLoad(t, "bbr-buffer-sweep.json")
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Grid) != 8 {
		t.Fatalf("sweep enumerates %d cells, want 8", len(c.Grid))
	}
	r := experiments.RunGrid(spec.Name, c.Grid)

	// Determinism spot-check on the two assertion-bearing FIFO cells.
	for _, id := range []string{"fifo/b31250", "fifo/b2000000"} {
		var cell experiments.GridCell
		for _, gc := range c.Grid {
			if gc.ID == id {
				cell = gc
			}
		}
		a, b := experiments.RunGridCell(cell), experiments.RunGridCell(cell)
		if a.JFI != b.JFI || a.GoodputBps != b.GoodputBps {
			t.Errorf("cell %s: not deterministic across two runs (JFI %v vs %v)", id, a.JFI, b.JFI)
		}
	}

	// Groups are declared [bbr, cubic].
	bbr := func(cell experiments.GridCellResult) float64 { return cell.GroupGoodputBps[0] }
	cubic := func(cell experiments.GridCellResult) float64 { return cell.GroupGoodputBps[1] }

	shallow := cellByID(t, r, "fifo/b31250")
	deepest := cellByID(t, r, "fifo/b2000000")
	if bbr(shallow) < 2*cubic(shallow) {
		t.Errorf("shallow FIFO should starve Cubic under BBR: bbr=%.0f cubic=%.0f", bbr(shallow), cubic(shallow))
	}
	if cubic(deepest) < 2*bbr(deepest) {
		t.Errorf("deep FIFO should starve BBR under Cubic: bbr=%.0f cubic=%.0f", bbr(deepest), cubic(deepest))
	}
	if deepest.JFI <= shallow.JFI {
		t.Errorf("FIFO fairness should improve with depth: JFI(deep)=%.4f <= JFI(shallow)=%.4f", deepest.JFI, shallow.JFI)
	}
	for _, depth := range []string{"b31250", "b500000"} {
		fifo := cellByID(t, r, "fifo/"+depth)
		ceb := cellByID(t, r, "cebinae/"+depth)
		if ceb.JFI < fifo.JFI {
			t.Errorf("%s: Cebinae JFI %.4f < FIFO JFI %.4f", depth, ceb.JFI, fifo.JFI)
		}
	}

	// The report names cells by ID; sanity-pin the rendering so sweep
	// output stays greppable.
	if !strings.Contains(r.Report(), "fifo/b31250") {
		t.Errorf("sweep report missing cell IDs:\n%s", r.Report())
	}
}
