package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cebinae/experiments"
)

// tinySpecs declares one fast spec per kind, sized so running each twice
// (once through the fleet jobs, once directly) stays in the tens of
// milliseconds.
func tinySpecs() []*Spec {
	return []*Spec{
		{
			Version: 1, Name: "tiny-dumbbell", Kind: "dumbbell", Seed: 3,
			Dumbbell: &DumbbellSpec{
				Rate: 20e6, BufferBytes: 100 * 1500,
				Groups:   []GroupSpec{{CC: "newreno", Count: 2, RTT: dur(10 * time.Millisecond)}},
				Duration: dur(300 * time.Millisecond), Qdisc: "fifo",
			},
		},
		{
			Version: 1, Name: "tiny-chain", Kind: "chain", Seed: 3,
			Chain: &ChainSpec{
				Hops: 1, LongFlows: 1, CrossPerHop: []int{1},
				LongCC: "newreno", CrossCCs: []string{"cubic"},
				Rate: 50e6, BufferBytes: 100 * 1500,
				LinkDelay: dur(time.Millisecond), AccessDelay: dur(time.Millisecond),
				Qdisc: "fifo", Duration: dur(300 * time.Millisecond),
			},
		},
		{
			Version: 1, Name: "tiny-cross", Kind: "cross",
			Cross: &CrossSpec{
				Rate: 1e9, Delay: Dur(1e6), BufferBytes: 1 << 20,
				Sends: []Dur{0, 5e5}, PacketBytes: 1500, PayloadBytes: 1448,
				Until: Dur(1e7),
			},
		},
		{
			Version: 1, Name: "tiny-backbone", Kind: "backbone",
			Backbone: &BackboneSpec{Flows: 1000, Scale: "quick", Qdisc: "fifo"},
		},
		{
			Version: 1, Name: "tiny-graph", Kind: "graph", Seed: 3,
			Graph: &GraphSpec{
				Switches: []SwitchSpec{{Name: "a"}, {Name: "b"}},
				Links:    []LinkSpec{{A: "a", B: "b", Rate: 100e6, Delay: dur(time.Millisecond)}},
				Hosts: []HostGroupSpec{
					{Name: "src", Count: 2, Attach: "a", Rate: 200e6, Delay: dur(time.Millisecond)},
					{Name: "dst", Count: 1, Attach: "b", Rate: 200e6, Delay: dur(time.Millisecond),
						DownQdisc: &PortQdiscSpec{Kind: "cebinae", BufferBytes: 1 << 20, CebinaeRTT: dur(10 * time.Millisecond)}},
				},
				Flows:    []FlowGroupSpec{{From: "src", To: "dst", CC: "newreno"}},
				Duration: dur(300 * time.Millisecond),
				MinRTO:   dur(10 * time.Millisecond),
			},
		},
		{
			Version: 1, Name: "tiny-sweep", Kind: "buffer_sweep", Seed: 3,
			BufferSweep: &BufferSweepSpec{
				Groups:      []GroupSpec{{CC: "newreno", Count: 2, RTT: dur(10 * time.Millisecond)}},
				Rate:        20e6,
				BufferBytes: []int{37500},
				Qdiscs:      []string{"fifo"},
				Duration:    dur(300 * time.Millisecond),
				MinRTO:      dur(200 * time.Millisecond),
			},
		},
	}
}

// runJobsGetter executes every fleet job a compiled scenario produces and
// returns a Getter over the marshalled results — the same shape the
// checkpoint store hands Render in the CLIs.
func runJobsGetter(t *testing.T, c *Compiled, prefix string) experiments.Getter {
	t.Helper()
	values := map[string]json.RawMessage{}
	for _, job := range c.Jobs(prefix) {
		if job.ID == "" || job.Desc == "" {
			t.Errorf("job missing ID/Desc: %+v", job)
		}
		v, err := job.Run()
		if err != nil {
			t.Fatalf("job %s: %v", job.ID, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("job %s: marshal: %v", job.ID, err)
		}
		values[job.ID] = raw
	}
	return func(id string) (json.RawMessage, error) {
		raw, ok := values[id]
		if !ok {
			t.Fatalf("render asked for unknown job %s", id)
		}
		return raw, nil
	}
}

// TestJobsRenderMatchesRunReport is the fleet-path contract for every
// scenario kind: running the compiled scenario through its checkpointable
// jobs and reassembling the report with Render produces exactly the bytes
// RunReport prints from a direct sequential run.
func TestJobsRenderMatchesRunReport(t *testing.T) {
	for _, spec := range tinySpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			c.SetShards(1)
			direct := c.RunReport()
			got, err := c.Render("t/", runJobsGetter(t, c, "t/"))
			if err != nil {
				t.Fatal(err)
			}
			if got != direct {
				t.Errorf("fleet-rendered report differs from direct run\n--- jobs\n%s--- direct\n%s", got, direct)
			}
		})
	}
}

// TestSectionWrapsJobsAndRender pins the bench-report packaging: the
// section is named scenario/<name>, carries the same jobs, and its Render
// closure reproduces the direct report.
func TestSectionWrapsJobsAndRender(t *testing.T) {
	spec := tinySpecs()[2] // cross: the cheapest kind
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	sec := c.Section("p/")
	if sec.ID != "scenario/tiny-cross" {
		t.Errorf("section ID = %q", sec.ID)
	}
	if !strings.Contains(sec.Desc, "cross") {
		t.Errorf("section Desc = %q", sec.Desc)
	}
	if len(sec.Jobs) != 1 || !strings.HasPrefix(sec.Jobs[0].ID, "p/scenario/") {
		t.Fatalf("section jobs = %+v", sec.Jobs)
	}
	got, err := sec.Render(runJobsGetter(t, c, "p/"))
	if err != nil {
		t.Fatal(err)
	}
	if got != c.RunReport() {
		t.Errorf("section render differs from direct run")
	}
}

// TestSetShardsCoversEveryKind pins the override the CLIs' explicit
// -shards flag applies, for each compiled representation.
func TestSetShardsCoversEveryKind(t *testing.T) {
	for _, spec := range tinySpecs() {
		c, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		c.SetShards(2)
		var got int
		switch {
		case c.Dumbbell != nil:
			got = c.Dumbbell.Shards
		case c.Chain != nil:
			got = c.Chain.Shards
		case c.Cross != nil:
			got = c.Cross.Shards
		case c.Backbone != nil:
			got = c.Backbone.Shards
		case c.Graph != nil:
			got = c.Graph.Shards
		default:
			for _, cell := range c.Grid {
				if cell.Scenario.Shards != 2 {
					t.Errorf("%s: grid cell %s shards = %d", spec.Name, cell.ID, cell.Scenario.Shards)
				}
			}
			continue
		}
		if got != 2 {
			t.Errorf("%s: shards = %d after SetShards(2)", spec.Name, got)
		}
	}
}

// TestRenderDecodeFailures pins the decode error paths: a getter that
// fails and a getter that returns malformed JSON both surface as errors,
// not panics or empty reports.
func TestRenderDecodeFailures(t *testing.T) {
	c, err := Compile(tinySpecs()[2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Render("", func(id string) (json.RawMessage, error) {
		return nil, strings.NewReader("").UnreadRune()
	}); err == nil {
		t.Error("getter failure not propagated")
	}
	if _, err := c.Render("", func(id string) (json.RawMessage, error) {
		return json.RawMessage(`{"bad":`), nil
	}); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Errorf("malformed value: got %v", err)
	}
}
