package scenario

import (
	"strings"
	"testing"
	"time"
)

// mutate deep-copies a canonical spec through the emit/parse round-trip
// (so table rows can't corrupt the shared literals), applies the edit,
// and returns the result unvalidated.
func mutate(t *testing.T, file string, edit func(*Spec)) *Spec {
	t.Helper()
	base, ok := canonicalSpecs()[file]
	if !ok {
		t.Fatalf("no canonical spec %s", file)
	}
	data, err := Emit(base)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	edit(s)
	return s
}

// TestValidateBranches walks every per-kind validator branch the golden
// diagnostics don't already pin: each row breaks one field of a canonical
// spec and asserts the path-qualified message names it.
func TestValidateBranches(t *testing.T) {
	rows := []struct {
		name string
		file string
		edit func(*Spec)
		want string
	}{
		{"name required", "cross.json", func(s *Spec) { s.Name = "" }, "scenario: name: required"},
		{"unknown kind", "cross.json", func(s *Spec) { s.Kind = "mesh" }, "unknown scenario kind"},
		{"missing section", "cross.json", func(s *Spec) { s.Cross = nil }, `requires a "cross" section`},
		{"mismatched section", "cross.json", func(s *Spec) { s.Chain = &ChainSpec{} }, `section does not match kind "cross"`},

		{"dumbbell buffer", "dumbbell.json", func(s *Spec) { s.Dumbbell.BufferBytes = 0 }, "dumbbell.buffer_bytes"},
		{"dumbbell no groups", "dumbbell.json", func(s *Spec) { s.Dumbbell.Groups = nil }, "dumbbell.groups: at least one"},
		{"dumbbell group count", "dumbbell.json", func(s *Spec) { s.Dumbbell.Groups[0].Count = 0 }, "dumbbell.groups[0].count"},
		{"dumbbell group start", "dumbbell.json", func(s *Spec) { s.Dumbbell.Groups[2].StartAt = -1 }, "dumbbell.groups[2].start_at"},
		{"dumbbell duration", "dumbbell.json", func(s *Spec) { s.Dumbbell.Duration = 0 }, "dumbbell.duration"},
		{"dumbbell tau", "dumbbell.json", func(s *Spec) { s.Dumbbell.Tau = fptr(1.5) }, "dumbbell.tau"},
		{"dumbbell warmup", "dumbbell.json", func(s *Spec) { s.Dumbbell.WarmupFraction = 1 }, "dumbbell.warmup_fraction"},
		{"dumbbell min_rto", "dumbbell.json", func(s *Spec) { s.Dumbbell.MinRTO = -1 }, "dumbbell.min_rto"},
		{"dumbbell sample", "dumbbell.json", func(s *Spec) { s.Dumbbell.SampleInterval = -1 }, "dumbbell.sample_interval"},

		{"chain hops", "chain.json", func(s *Spec) { s.Chain.Hops = 0 }, "chain.hops"},
		{"chain long flows", "chain.json", func(s *Spec) { s.Chain.LongFlows = -1 }, "chain.long_flows"},
		{"chain cross arity", "chain.json", func(s *Spec) { s.Chain.CrossPerHop = []int{1} }, "chain.cross_per_hop: wants one entry per hop"},
		{"chain cross negative", "chain.json", func(s *Spec) { s.Chain.CrossPerHop[1] = -1 }, "chain.cross_per_hop[1]"},
		{"chain long cc", "chain.json", func(s *Spec) { s.Chain.LongCC = "reno" }, "chain.long_cc"},
		{"chain cross cc arity", "chain.json", func(s *Spec) { s.Chain.CrossCCs = s.Chain.CrossCCs[:2] }, "chain.cross_ccs: wants one entry per hop"},
		{"chain cross cc", "chain.json", func(s *Spec) { s.Chain.CrossCCs[2] = "reno" }, "chain.cross_ccs[2]"},
		{"chain rate", "chain.json", func(s *Spec) { s.Chain.Rate = 0 }, "chain.rate"},
		{"chain buffer", "chain.json", func(s *Spec) { s.Chain.BufferBytes = 0 }, "chain.buffer_bytes"},
		{"chain link delay", "chain.json", func(s *Spec) { s.Chain.LinkDelay = 0 }, "chain.link_delay"},
		{"chain access delay", "chain.json", func(s *Spec) { s.Chain.AccessDelay = 0 }, "chain.access_delay"},
		{"chain cebinae rtt", "chain.json", func(s *Spec) { s.Chain.CebinaeRTT = -1 }, "chain.cebinae_rtt"},
		{"chain duration", "chain.json", func(s *Spec) { s.Chain.Duration = 0 }, "chain.duration"},

		{"cross rate", "cross.json", func(s *Spec) { s.Cross.Rate = -1 }, "cross.rate"},
		{"cross delay", "cross.json", func(s *Spec) { s.Cross.Delay = 0 }, "cross.delay"},
		{"cross buffer", "cross.json", func(s *Spec) { s.Cross.BufferBytes = 0 }, "cross.buffer_bytes"},
		{"cross no sends", "cross.json", func(s *Spec) { s.Cross.Sends = nil }, "cross.sends: at least one"},
		{"cross send negative", "cross.json", func(s *Spec) { s.Cross.Sends[1] = -1 }, "cross.sends[1]"},
		{"cross packet", "cross.json", func(s *Spec) { s.Cross.PacketBytes = 0 }, "cross.packet_bytes"},
		{"cross payload", "cross.json", func(s *Spec) { s.Cross.PayloadBytes = 9000 }, "cross.payload_bytes"},
		{"cross until", "cross.json", func(s *Spec) { s.Cross.Until = 0 }, "cross.until"},

		{"backbone flows", "backbone-1e5.json", func(s *Spec) { s.Backbone.Flows = 0 }, "backbone.flows"},
		{"backbone scale", "backbone-1e5.json", func(s *Spec) { s.Backbone.Scale = "huge" }, "backbone.scale"},
		{"backbone qdisc", "backbone-1e5.json", func(s *Spec) { s.Backbone.Qdisc = "fq" }, "backbone.qdisc"},

		{"graph no switches", "multihop.json", func(s *Spec) { s.Graph.Switches = nil }, "graph.switches: at least one"},
		{"graph switch name", "multihop.json", func(s *Spec) { s.Graph.Switches[0].Name = "" }, "graph.switches[0].name"},
		{"graph dup switch", "multihop.json", func(s *Spec) { s.Graph.Switches[1].Name = "t1" }, "duplicate switch"},
		{"graph link a", "multihop.json", func(s *Spec) { s.Graph.Links[0].A = "t9" }, "graph.links[0].a"},
		{"graph self link", "multihop.json", func(s *Spec) { s.Graph.Links[0].B = "t1" }, "self-link"},
		{"graph link rate", "multihop.json", func(s *Spec) { s.Graph.Links[0].Rate = 0 }, "graph.links[0].rate"},
		{"graph link delay", "multihop.json", func(s *Spec) { s.Graph.Links[0].Delay = 0 }, "graph.links[0].delay"},
		{"graph port qdisc", "multihop.json", func(s *Spec) { s.Graph.Links[0].QdiscAB.Kind = "pcq" }, "graph.links[0].qdisc_ab.kind"},
		{"graph port buffer", "multihop.json", func(s *Spec) { s.Graph.Links[0].QdiscAB.BufferBytes = -1 }, "graph.links[0].qdisc_ab.buffer_bytes"},
		{"graph port rtt", "multihop.json", func(s *Spec) { s.Graph.Links[0].QdiscAB.CebinaeRTT = -1 }, "graph.links[0].qdisc_ab.cebinae_rtt"},
		{"graph no hosts", "multihop.json", func(s *Spec) { s.Graph.Hosts = nil }, "graph.hosts: at least one"},
		{"graph host name", "multihop.json", func(s *Spec) { s.Graph.Hosts[0].Name = "" }, "graph.hosts[0].name"},
		{"graph dup host", "multihop.json", func(s *Spec) { s.Graph.Hosts[1].Name = "s1" }, "duplicate host group"},
		{"graph host count", "multihop.json", func(s *Spec) { s.Graph.Hosts[0].Count = 0 }, "graph.hosts[0].count"},
		{"graph host attach", "multihop.json", func(s *Spec) { s.Graph.Hosts[0].Attach = "t9" }, "graph.hosts[0].attach"},
		{"graph host rate", "multihop.json", func(s *Spec) { s.Graph.Hosts[0].Rate = 0 }, "graph.hosts[0].rate"},
		{"graph host delay", "multihop.json", func(s *Spec) { s.Graph.Hosts[0].Delay = 0 }, "graph.hosts[0].delay"},
		{"graph down qdisc", "multihop.json", func(s *Spec) { s.Graph.Hosts[3].DownQdisc.Kind = "afq" }, "graph.hosts[3].down_qdisc.kind"},
		{"graph no flows", "multihop.json", func(s *Spec) { s.Graph.Flows = nil }, "graph.flows: at least one"},
		{"graph flow from", "multihop.json", func(s *Spec) { s.Graph.Flows[0].From = "s9" }, "graph.flows[0].from"},
		{"graph flow to", "multihop.json", func(s *Spec) { s.Graph.Flows[0].To = "r9" }, "graph.flows[0].to"},
		{"graph flow cc", "multihop.json", func(s *Spec) { s.Graph.Flows[0].CC = "reno" }, "graph.flows[0].cc"},
		{"graph flow start", "multihop.json", func(s *Spec) { s.Graph.Flows[0].StartAt = -1 }, "graph.flows[0].start_at"},
		{"graph warmup", "multihop.json", func(s *Spec) { s.Graph.WarmupFraction = -0.1 }, "graph.warmup_fraction"},
		{"graph min_rto", "multihop.json", func(s *Spec) { s.Graph.MinRTO = -1 }, "graph.min_rto"},
		{"graph duration", "multihop.json", func(s *Spec) { s.Graph.Duration = 0 }, "graph.duration"},

		{"tournament no ccas", "tournament.json", func(s *Spec) { s.Tournament.CCAs = nil }, "tournament.ccas: at least one"},
		{"tournament cca", "tournament.json", func(s *Spec) { s.Tournament.CCAs[1] = "reno" }, "tournament.ccas[1]"},
		{"tournament flows", "tournament.json", func(s *Spec) { s.Tournament.FlowsPerCCA = 0 }, "tournament.flows_per_cca"},
		{"tournament rate", "tournament.json", func(s *Spec) { s.Tournament.Rate = 0 }, "tournament.rate"},
		{"tournament base rtt", "tournament.json", func(s *Spec) { s.Tournament.BaseRTT = 0 }, "tournament.base_rtt"},
		{"tournament no ratios", "tournament.json", func(s *Spec) { s.Tournament.RTTRatios = nil }, "tournament.rtt_ratios: at least one"},
		{"tournament ratio", "tournament.json", func(s *Spec) { s.Tournament.RTTRatios[0] = 0 }, "tournament.rtt_ratios[0]"},
		{"tournament no buffers", "tournament.json", func(s *Spec) { s.Tournament.BufferBytes = nil }, "tournament.buffer_bytes: at least one"},
		{"tournament buffer", "tournament.json", func(s *Spec) { s.Tournament.BufferBytes[1] = -4 }, "tournament.buffer_bytes[1]"},
		{"tournament no qdiscs", "tournament.json", func(s *Spec) { s.Tournament.Qdiscs = nil }, "tournament.qdiscs: at least one"},
		{"tournament qdisc", "tournament.json", func(s *Spec) { s.Tournament.Qdiscs[0] = "red" }, "tournament.qdiscs[0]"},
		{"tournament min_rto", "tournament.json", func(s *Spec) { s.Tournament.MinRTO = -1 }, "tournament.min_rto"},
		{"tournament duration", "tournament.json", func(s *Spec) { s.Tournament.Duration = 0 }, "tournament.duration"},

		{"sweep groups", "bbr-buffer-sweep.json", func(s *Spec) { s.BufferSweep.Groups = nil }, "buffer_sweep.groups: at least one"},
		{"sweep group rtt", "bbr-buffer-sweep.json", func(s *Spec) { s.BufferSweep.Groups[0].RTT = 0 }, "buffer_sweep.groups[0].rtt"},
		{"sweep rate", "bbr-buffer-sweep.json", func(s *Spec) { s.BufferSweep.Rate = 0 }, "buffer_sweep.rate"},
		{"sweep buffers", "bbr-buffer-sweep.json", func(s *Spec) { s.BufferSweep.BufferBytes = nil }, "buffer_sweep.buffer_bytes: at least one"},
		{"sweep qdisc", "bbr-buffer-sweep.json", func(s *Spec) { s.BufferSweep.Qdiscs[1] = "red" }, "buffer_sweep.qdiscs[1]"},
		{"sweep min_rto", "bbr-buffer-sweep.json", func(s *Spec) { s.BufferSweep.MinRTO = -1 }, "buffer_sweep.min_rto"},
		{"sweep duration", "bbr-buffer-sweep.json", func(s *Spec) { s.BufferSweep.Duration = 0 }, "buffer_sweep.duration"},
	}
	for _, row := range rows {
		row := row
		t.Run(row.name, func(t *testing.T) {
			s := mutate(t, row.file, row.edit)
			err := Validate(s)
			if err == nil {
				t.Fatalf("validate accepted the broken spec")
			}
			if !strings.Contains(err.Error(), row.want) {
				t.Errorf("error %q does not mention %q", err.Error(), row.want)
			}
			if _, cerr := Compile(s); cerr == nil {
				t.Errorf("compile accepted the broken spec")
			}
		})
	}
}

// TestValidateAcceptsEdgeValues pins a few boundary values the error rows
// sit next to: zero start times, a 200 ms MinRTO, and a warmup of 0.
func TestValidateAcceptsEdgeValues(t *testing.T) {
	s := mutate(t, "dumbbell.json", func(s *Spec) {
		s.Dumbbell.Groups[0].StartAt = 0
		s.Dumbbell.MinRTO = Dur(200 * time.Millisecond)
		s.Dumbbell.WarmupFraction = 0
		s.Dumbbell.Tau = fptr(0.05)
	})
	if err := Validate(s); err != nil {
		t.Errorf("boundary values rejected: %v", err)
	}
}
