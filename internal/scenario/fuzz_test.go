package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioLoad pins the loader's two safety properties on arbitrary
// input: it never panics (errors are the only failure mode), and any
// input it accepts survives parse → emit → parse to a deeply-equal spec
// (no accepted spec is lossy or non-canonical enough to change meaning
// when rewritten).
func FuzzScenarioLoad(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	for _, path := range paths {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"version":1,"name":"x","kind":"cross","cross":{"rate":"1G","delay":"1ms","buffer_bytes":1,"sends":[0],"packet_bytes":100,"payload_bytes":0,"until":"1ms"}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"name":"y","kind":"dumbbell","dumbbell":{"rate":-1}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"version":1,"name":"z","kind":"graph","graph":{"switches":[{"name":"a"}],"links":[{"a":"a","b":"ghost","rate":1,"delay":1}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := Emit(s)
		if err != nil {
			t.Fatalf("accepted spec fails to emit: %v", err)
		}
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("emitted spec fails to reload: %v\nemitted:\n%s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip changed the spec\nfirst:  %+v\nsecond: %+v\nemitted:\n%s", s, s2, out)
		}
	})
}
