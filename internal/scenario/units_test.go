package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"cebinae/experiments"
)

// TestRateForms pins the scalar vocabulary: every accepted JSON form of a
// Rate and the canonical spelling Emit chooses for it.
func TestRateForms(t *testing.T) {
	cases := []struct {
		in   string
		want Rate
		out  string // canonical marshalled form
	}{
		{`"10G"`, 10e9, `"10G"`},
		{`"2.5G"`, 2.5e9, `"2500M"`}, // 2500M is the largest exact integer suffix
		{`"100M"`, 100e6, `"100M"`},
		{`"64K"`, 64e3, `"64K"`},
		{`50000000`, 50e6, `"50M"`},
		{`1234.5`, 1234.5, `1234.5`}, // no exact suffix: plain number survives
	}
	for _, c := range cases {
		var r Rate
		if err := json.Unmarshal([]byte(c.in), &r); err != nil {
			t.Errorf("unmarshal %s: %v", c.in, err)
			continue
		}
		if r != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, float64(r), float64(c.want))
		}
		out, err := json.Marshal(r)
		if err != nil {
			t.Errorf("marshal %v: %v", float64(r), err)
			continue
		}
		if string(out) != c.out {
			t.Errorf("marshal %v = %s, want %s", float64(r), out, c.out)
		}
	}
	for _, bad := range []string{`"10Q"`, `"fast"`, `true`, `{}`} {
		var r Rate
		if err := json.Unmarshal([]byte(bad), &r); err == nil {
			t.Errorf("unmarshal %s: want error, got %v", bad, float64(r))
		}
	}
}

// TestDurForms pins duration decoding and its error text.
func TestDurForms(t *testing.T) {
	var d Dur
	if err := json.Unmarshal([]byte(`"40ms"`), &d); err != nil || d != 40e6 {
		t.Errorf(`"40ms" = %d, err %v`, d, err)
	}
	if err := json.Unmarshal([]byte(`1500000`), &d); err != nil || d != 1500000 {
		t.Errorf("1500000 = %d, err %v", d, err)
	}
	for _, bad := range []string{`"soon"`, `true`, `1.5`} {
		if err := json.Unmarshal([]byte(bad), &d); err == nil {
			t.Errorf("unmarshal %s: want error", bad)
		}
	}
}

// TestShardsForms pins the shard-count spellings: "auto" round-trips
// through the ShardAuto sentinel, counts stay numeric, and zero,
// negatives, and junk are rejected at decode time.
func TestShardsForms(t *testing.T) {
	var n Shards
	if err := json.Unmarshal([]byte(`"auto"`), &n); err != nil || int(n) != experiments.ShardAuto {
		t.Errorf(`"auto" = %d, err %v`, n, err)
	}
	if out, err := json.Marshal(n); err != nil || string(out) != `"auto"` {
		t.Errorf("marshal auto = %s, err %v", out, err)
	}
	if err := json.Unmarshal([]byte(`4`), &n); err != nil || n != 4 {
		t.Errorf("4 = %d, err %v", n, err)
	}
	if out, err := json.Marshal(n); err != nil || string(out) != `4` {
		t.Errorf("marshal 4 = %s, err %v", out, err)
	}
	for _, bad := range []string{`0`, `-2`, `"many"`, `true`} {
		if err := json.Unmarshal([]byte(bad), &n); err == nil {
			t.Errorf("unmarshal %s: want error", bad)
		}
	}
}

// TestLoadAndParseErrors pins the non-golden error paths: a missing file,
// trailing JSON documents, and the file-path suffix on Load diagnostics.
func TestLoadAndParseErrors(t *testing.T) {
	if _, err := Load("testdata/does-not-exist.json"); err == nil || !strings.HasPrefix(err.Error(), "scenario: ") {
		t.Errorf("missing file: got %v", err)
	}
	if _, err := Parse([]byte(`{"version":1} {"version":1}`)); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Errorf("trailing data: got %v", err)
	}
	if _, err := Load("testdata/diag/bad_version.json"); err == nil || !strings.Contains(err.Error(), "(in ") {
		t.Errorf("load of bad spec should name the file: got %v", err)
	}
}
