// Package scenario defines the declarative workload format: a versioned,
// validated JSON spec that lowers onto the experiments builders, so new
// topologies and CCA mixes are data files instead of recompiles. The
// format's correctness contract is byte-identity — a canonical spec file
// compiles to the same construction, and therefore the same report bytes,
// as the hand-built Go scenario it mirrors, at any shard count. Loading
// is stdlib-only (encoding/json with unknown fields rejected), emission
// is canonical (Emit ∘ Load is the identity on canonical files), and
// both directions are fuzzed.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Version is the current (and only) spec format version.
const Version = 1

// Spec is one scenario file: common identity plus exactly one populated
// kind section matching Kind.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Kind selects the scenario family: dumbbell, chain, cross, backbone,
	// graph, tournament, or buffer_sweep.
	Kind   string `json:"kind"`
	Seed   uint64 `json:"seed,omitempty"`
	Shards Shards `json:"shards,omitempty"`

	Dumbbell    *DumbbellSpec    `json:"dumbbell,omitempty"`
	Chain       *ChainSpec       `json:"chain,omitempty"`
	Cross       *CrossSpec       `json:"cross,omitempty"`
	Backbone    *BackboneSpec    `json:"backbone,omitempty"`
	Graph       *GraphSpec       `json:"graph,omitempty"`
	Tournament  *TournamentSpec  `json:"tournament,omitempty"`
	BufferSweep *BufferSweepSpec `json:"buffer_sweep,omitempty"`
}

// GroupSpec declares a homogeneous flow group in a dumbbell-family
// scenario.
type GroupSpec struct {
	CC      string `json:"cc"`
	Count   int    `json:"count"`
	RTT     Dur    `json:"rtt"`
	StartAt Dur    `json:"start_at,omitempty"`
}

// DumbbellSpec is the single-bottleneck scenario (experiments.Scenario).
type DumbbellSpec struct {
	Rate        Rate        `json:"rate"`
	BufferBytes int         `json:"buffer_bytes"`
	Groups      []GroupSpec `json:"groups"`
	Duration    Dur         `json:"duration"`
	Qdisc       string      `json:"qdisc"`
	// Tau overrides Cebinae's τ (nil = DefaultParams' 0.01).
	Tau            *float64 `json:"tau,omitempty"`
	MinRTO         Dur      `json:"min_rto,omitempty"`
	WarmupFraction float64  `json:"warmup_fraction,omitempty"`
	SampleInterval Dur      `json:"sample_interval,omitempty"`
}

// ChainSpec is the multi-bottleneck parking lot
// (experiments.ChainConfig).
type ChainSpec struct {
	Hops        int      `json:"hops"`
	LongFlows   int      `json:"long_flows"`
	CrossPerHop []int    `json:"cross_per_hop"`
	LongCC      string   `json:"long_cc"`
	CrossCCs    []string `json:"cross_ccs"`
	Rate        Rate     `json:"rate"`
	BufferBytes int      `json:"buffer_bytes"`
	LinkDelay   Dur      `json:"link_delay"`
	AccessDelay Dur      `json:"access_delay"`
	Qdisc       string   `json:"qdisc"`
	CebinaeRTT  Dur      `json:"cebinae_rtt,omitempty"`
	Duration    Dur      `json:"duration"`
}

// CrossSpec is the cut-link delivery scenario (experiments.CrossConfig).
type CrossSpec struct {
	Rate         Rate  `json:"rate"`
	Delay        Dur   `json:"delay"`
	BufferBytes  int   `json:"buffer_bytes"`
	Sends        []Dur `json:"sends"`
	PacketBytes  int   `json:"packet_bytes"`
	PayloadBytes int   `json:"payload_bytes"`
	Until        Dur   `json:"until"`
}

// BackboneSpec is the trace-replay backbone tier
// (experiments.BackboneTier): the standing-flow population plus the run
// scale, with an optional core-discipline override.
type BackboneSpec struct {
	Flows int `json:"flows"`
	// Scale is quick, medium, or full.
	Scale string `json:"scale"`
	Qdisc string `json:"qdisc,omitempty"`
}

// PortQdiscSpec configures one port's discipline in a graph scenario.
type PortQdiscSpec struct {
	Kind        string `json:"kind"`
	BufferBytes int    `json:"buffer_bytes,omitempty"`
	CebinaeRTT  Dur    `json:"cebinae_rtt,omitempty"`
}

// SwitchSpec declares one named switch.
type SwitchSpec struct {
	Name string `json:"name"`
}

// LinkSpec declares a full-duplex switch-to-switch link with an optional
// qdisc per direction (a→b and b→a ports).
type LinkSpec struct {
	A       string         `json:"a"`
	B       string         `json:"b"`
	Rate    Rate           `json:"rate"`
	Delay   Dur            `json:"delay"`
	QdiscAB *PortQdiscSpec `json:"qdisc_ab,omitempty"`
	QdiscBA *PortQdiscSpec `json:"qdisc_ba,omitempty"`
}

// HostGroupSpec declares hosts attached to one switch; DownQdisc guards
// the switch→host port.
type HostGroupSpec struct {
	Name      string         `json:"name"`
	Count     int            `json:"count"`
	Attach    string         `json:"attach"`
	Rate      Rate           `json:"rate"`
	Delay     Dur            `json:"delay"`
	DownQdisc *PortQdiscSpec `json:"down_qdisc,omitempty"`
}

// FlowGroupSpec declares one flow per sender host of From toward To.
type FlowGroupSpec struct {
	From    string `json:"from"`
	To      string `json:"to"`
	CC      string `json:"cc"`
	StartAt Dur    `json:"start_at,omitempty"`
}

// GraphSpec is the generic switch/host topology
// (experiments.GraphConfig).
type GraphSpec struct {
	Switches       []SwitchSpec    `json:"switches"`
	Links          []LinkSpec      `json:"links"`
	Hosts          []HostGroupSpec `json:"hosts"`
	Flows          []FlowGroupSpec `json:"flows"`
	Duration       Dur             `json:"duration"`
	WarmupFraction float64         `json:"warmup_fraction,omitempty"`
	MinRTO         Dur             `json:"min_rto,omitempty"`
}

// TournamentSpec is the CCA tournament matrix
// (experiments.TournamentConfig): every unordered CCA pair × RTT ratio ×
// buffer depth × discipline.
type TournamentSpec struct {
	CCAs        []string  `json:"ccas"`
	FlowsPerCCA int       `json:"flows_per_cca"`
	Rate        Rate      `json:"rate"`
	BaseRTT     Dur       `json:"base_rtt"`
	RTTRatios   []float64 `json:"rtt_ratios"`
	BufferBytes []int     `json:"buffer_bytes"`
	Qdiscs      []string  `json:"qdiscs"`
	Duration    Dur       `json:"duration"`
	MinRTO      Dur       `json:"min_rto,omitempty"`
}

// BufferSweepSpec is the buffer-depth fairness sweep
// (experiments.BufferSweepConfig): one fixed CC mix across buffer depths
// and disciplines.
type BufferSweepSpec struct {
	Groups      []GroupSpec `json:"groups"`
	Rate        Rate        `json:"rate"`
	BufferBytes []int       `json:"buffer_bytes"`
	Qdiscs      []string    `json:"qdiscs"`
	Duration    Dur         `json:"duration"`
	MinRTO      Dur         `json:"min_rto,omitempty"`
}

// Parse decodes and validates a spec from bytes. Unknown fields are
// rejected, so typos surface as errors instead of silently-defaulted
// knobs.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %s", jsonErr(err))
	}
	// A spec is one JSON object; trailing content is a second document.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after spec object")
	}
	if err := Validate(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// jsonErr strips the decoder's position-free wrapping down to a stable
// message the diagnostics goldens can pin.
func jsonErr(err error) string {
	return strings.TrimPrefix(err.Error(), "json: ")
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Emit renders a spec in canonical form: two-space indentation, fields
// in declaration order, scalar types in their preferred spellings, and a
// trailing newline. Canonical files are stored in this form, so
// Emit(Load(file)) == file byte-for-byte.
func Emit(s *Spec) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: emit: %w", err)
	}
	return append(b, '\n'), nil
}
