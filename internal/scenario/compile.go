package scenario

import (
	"encoding/json"
	"fmt"

	"cebinae/experiments"
	"cebinae/internal/fleet"
)

// The compiler lowers a validated spec onto the experiments builders.
// Lowering is a pure data mapping — no construction happens until the
// compiled scenario runs — and it targets the exact config structs the
// hand-built Go scenarios use, which is what makes the byte-identity
// differential tests possible: a canonical spec and its Go twin hand the
// runner the same struct, so every downstream byte matches.

// Compiled is a lowered spec: exactly one config pointer (or the Grid
// slice) is populated, matching Spec.Kind.
type Compiled struct {
	Spec     *Spec
	Dumbbell *experiments.Scenario
	Chain    *experiments.ChainConfig
	Cross    *experiments.CrossConfig
	Backbone *experiments.BackboneConfig
	Graph    *experiments.GraphConfig
	// Grid holds the enumerated cells for tournament and buffer_sweep
	// specs, in canonical generation order.
	Grid []experiments.GridCell
}

func qdiscKinds(names []string) []experiments.QdiscKind {
	out := make([]experiments.QdiscKind, len(names))
	for i, n := range names {
		out[i] = experiments.QdiscKind(n)
	}
	return out
}

func lowerGroups(groups []GroupSpec) []experiments.FlowGroup {
	out := make([]experiments.FlowGroup, len(groups))
	for i, g := range groups {
		out[i] = experiments.FlowGroup{CC: g.CC, Count: g.Count, RTT: g.RTT.Time(), StartAt: g.StartAt.Time()}
	}
	return out
}

func lowerPortQdisc(q *PortQdiscSpec) experiments.PortQdisc {
	if q == nil {
		return experiments.PortQdisc{}
	}
	return experiments.PortQdisc{
		Kind:        experiments.QdiscKind(q.Kind),
		BufferBytes: q.BufferBytes,
		CebinaeRTT:  q.CebinaeRTT.Time(),
	}
}

// Compile lowers a validated spec. It validates first, so callers that
// assemble specs programmatically get the same diagnostics as Load.
func Compile(s *Spec) (*Compiled, error) {
	if err := Validate(s); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: s}
	shards := int(s.Shards)
	switch s.Kind {
	case "dumbbell":
		d := s.Dumbbell
		sc := experiments.Scenario{
			Name:           s.Name,
			BottleneckBps:  float64(d.Rate),
			BufferBytes:    d.BufferBytes,
			Groups:         lowerGroups(d.Groups),
			Duration:       d.Duration.Time(),
			Qdisc:          experiments.QdiscKind(d.Qdisc),
			MinRTO:         d.MinRTO.Time(),
			WarmupFraction: d.WarmupFraction,
			Seed:           s.Seed,
			SampleInterval: d.SampleInterval.Time(),
			Shards:         shards,
		}
		if d.Tau != nil {
			p := experiments.DefaultCebinaeParams(sc)
			p.Tau = *d.Tau
			sc.Params = &p
		}
		c.Dumbbell = &sc
	case "chain":
		ch := s.Chain
		c.Chain = &experiments.ChainConfig{
			Name:          s.Name,
			Hops:          ch.Hops,
			LongFlows:     ch.LongFlows,
			CrossPerHop:   ch.CrossPerHop,
			LongCC:        ch.LongCC,
			CrossCCs:      ch.CrossCCs,
			BottleneckBps: float64(ch.Rate),
			BufferBytes:   ch.BufferBytes,
			LinkDelay:     ch.LinkDelay.Time(),
			AccessDelay:   ch.AccessDelay.Time(),
			Qdisc:         experiments.QdiscKind(ch.Qdisc),
			CebinaeRTT:    ch.CebinaeRTT.Time(),
			Duration:      ch.Duration.Time(),
			Seed:          s.Seed,
			Shards:        shards,
		}
	case "cross":
		cr := s.Cross
		sends := make([]experiments.SimTime, len(cr.Sends))
		for i, at := range cr.Sends {
			sends[i] = at.Time()
		}
		c.Cross = &experiments.CrossConfig{
			Name:         s.Name,
			RateBps:      float64(cr.Rate),
			Delay:        cr.Delay.Time(),
			BufferBytes:  cr.BufferBytes,
			Sends:        sends,
			PacketBytes:  cr.PacketBytes,
			PayloadBytes: cr.PayloadBytes,
			Until:        cr.Until.Time(),
			Shards:       shards,
		}
	case "backbone":
		b := s.Backbone
		scale := map[string]experiments.Scale{
			"quick": experiments.Quick, "medium": experiments.Medium, "full": experiments.Full,
		}[b.Scale]
		cfg := experiments.BackboneTier(b.Flows, scale)
		if b.Qdisc != "" {
			cfg.Qdisc = experiments.QdiscKind(b.Qdisc)
		}
		cfg.Shards = shards
		c.Backbone = &cfg
	case "graph":
		g := s.Graph
		gc := experiments.GraphConfig{
			Name:           s.Name,
			Duration:       g.Duration.Time(),
			WarmupFraction: g.WarmupFraction,
			MinRTO:         g.MinRTO.Time(),
			Seed:           s.Seed,
			Shards:         shards,
		}
		for _, sw := range g.Switches {
			gc.Switches = append(gc.Switches, experiments.GraphSwitch{Name: sw.Name})
		}
		for _, l := range g.Links {
			gc.Links = append(gc.Links, experiments.GraphLink{
				A: l.A, B: l.B, RateBps: float64(l.Rate), Delay: l.Delay.Time(),
				QdiscAB: lowerPortQdisc(l.QdiscAB), QdiscBA: lowerPortQdisc(l.QdiscBA),
			})
		}
		for _, h := range g.Hosts {
			gc.Hosts = append(gc.Hosts, experiments.GraphHostGroup{
				Name: h.Name, Count: h.Count, Attach: h.Attach,
				RateBps: float64(h.Rate), Delay: h.Delay.Time(),
				DownQdisc: lowerPortQdisc(h.DownQdisc),
			})
		}
		for _, f := range g.Flows {
			gc.Flows = append(gc.Flows, experiments.GraphFlowGroup{
				From: f.From, To: f.To, CC: f.CC, StartAt: f.StartAt.Time(),
			})
		}
		c.Graph = &gc
	case "tournament":
		t := s.Tournament
		c.Grid = experiments.TournamentConfig{
			Name:          s.Name,
			CCAs:          t.CCAs,
			FlowsPerCCA:   t.FlowsPerCCA,
			BottleneckBps: float64(t.Rate),
			BaseRTT:       t.BaseRTT.Time(),
			RTTRatios:     t.RTTRatios,
			BufferBytes:   t.BufferBytes,
			Qdiscs:        qdiscKinds(t.Qdiscs),
			Duration:      t.Duration.Time(),
			MinRTO:        t.MinRTO.Time(),
			Seed:          s.Seed,
			Shards:        shards,
		}.Cells()
	default: // buffer_sweep
		b := s.BufferSweep
		c.Grid = experiments.BufferSweepConfig{
			Name:          s.Name,
			Groups:        lowerGroups(b.Groups),
			BottleneckBps: float64(b.Rate),
			BufferBytes:   b.BufferBytes,
			Qdiscs:        qdiscKinds(b.Qdiscs),
			Duration:      b.Duration.Time(),
			MinRTO:        b.MinRTO.Time(),
			Seed:          s.Seed,
			Shards:        shards,
		}.Cells()
	}
	return c, nil
}

// SetShards overrides the compiled scenario's shard count (the CLIs'
// explicit -shards flag wins over the spec's hint).
func (c *Compiled) SetShards(n int) {
	switch {
	case c.Dumbbell != nil:
		c.Dumbbell.Shards = n
	case c.Chain != nil:
		c.Chain.Shards = n
	case c.Cross != nil:
		c.Cross.Shards = n
	case c.Backbone != nil:
		c.Backbone.Shards = n
	case c.Graph != nil:
		c.Graph.Shards = n
	default:
		for i := range c.Grid {
			c.Grid[i].Scenario.Shards = n
		}
	}
}

// RunReport runs the compiled scenario sequentially and returns its
// canonical report text.
func (c *Compiled) RunReport() string {
	switch {
	case c.Dumbbell != nil:
		return experiments.Run(*c.Dumbbell).Report()
	case c.Chain != nil:
		return experiments.RunChain(*c.Chain).Report()
	case c.Cross != nil:
		return experiments.RunCross(*c.Cross).Report()
	case c.Backbone != nil:
		return experiments.RunBackbone(*c.Backbone).Render()
	case c.Graph != nil:
		return experiments.RunGraph(*c.Graph).Report()
	default:
		return experiments.RunGrid(c.Spec.Name, c.Grid).Report()
	}
}

// jobID namespaces a compiled scenario's checkpoint keys.
func (c *Compiled) jobID(prefix string) string { return prefix + "scenario/" + c.Spec.Name }

// Jobs wraps the compiled scenario as fleet jobs: one per grid cell, or
// a single job for the other kinds.
func (c *Compiled) Jobs(prefix string) []fleet.Job {
	id := c.jobID(prefix)
	if c.Grid != nil {
		return experiments.GridJobs(id+"/", c.Grid)
	}
	run := func() (any, error) {
		switch {
		case c.Dumbbell != nil:
			return experiments.Run(*c.Dumbbell), nil
		case c.Chain != nil:
			return experiments.RunChain(*c.Chain), nil
		case c.Cross != nil:
			return experiments.RunCross(*c.Cross), nil
		case c.Backbone != nil:
			return experiments.RunBackbone(*c.Backbone), nil
		default:
			return experiments.RunGraph(*c.Graph), nil
		}
	}
	return []fleet.Job{{ID: id, Desc: c.Spec.Kind + " scenario " + c.Spec.Name, Run: run}}
}

// decode unmarshals one checkpointed job value.
func decode[T any](get experiments.Getter, id string) (T, error) {
	var v T
	raw, err := get(id)
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, fmt.Errorf("scenario: decode %s: %w", id, err)
	}
	return v, nil
}

// Render reassembles the checkpointed job values written by Jobs into
// the same report RunReport would print.
func (c *Compiled) Render(prefix string, get experiments.Getter) (string, error) {
	id := c.jobID(prefix)
	if c.Grid != nil {
		return experiments.RenderGrid(c.Spec.Name, id+"/", c.Grid, get)
	}
	switch {
	case c.Dumbbell != nil:
		r, err := decode[experiments.Result](get, id)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	case c.Chain != nil:
		r, err := decode[experiments.ChainResult](get, id)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	case c.Cross != nil:
		r, err := decode[experiments.CrossResult](get, id)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	case c.Backbone != nil:
		r, err := decode[experiments.BackboneResult](get, id)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	default:
		r, err := decode[experiments.GraphResult](get, id)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	}
}

// Section packages the compiled scenario as one bench-report section.
func (c *Compiled) Section(prefix string) experiments.BenchSection {
	return experiments.BenchSection{
		ID:     "scenario/" + c.Spec.Name,
		Desc:   c.Spec.Kind + " scenario " + c.Spec.Name,
		Jobs:   c.Jobs(prefix),
		Render: func(get experiments.Getter) (string, error) { return c.Render(prefix, get) },
	}
}
