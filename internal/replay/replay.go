// Package replay turns trace-generator flow schedules into live packet
// arrivals at a netem topology — the scale tier between the offline trace
// evaluation (feed trace.Pkt records straight into a sketch) and full TCP
// (a congestion-control state machine per flow). A replay.Source drives
// 10⁵–10⁶ concurrent flows through real devices, queues, and a Cebinae
// switch with a compact per-flow record: an embedded wheel timer, a packet
// countdown, and a pacing gap — no scoreboard, no SACK state, no
// per-flow goroutines or closures.
//
// Flow records live in a chunked arena. Embedded sim.Timers are
// intrusively linked into the engine's timing wheel, so records must have
// stable addresses: the arena allocates fixed-size chunks that are never
// moved or freed, and finished flows recycle their slot through a free
// list. The steady-state send path — timer fires, pooled packet filled and
// injected, timer re-armed — allocates nothing.
//
// With Config.ClosedLoop set, the source reacts to congestion feedback
// from a replay.Sink at the far end: the sink watches sequence numbers and
// ECN CE marks, and on loss or marking sends a rate-limited feedback
// packet back through the network (a real packet on the reverse route, so
// sharded runs stay deterministic — feedback crosses cut links through the
// same handoff machinery as data). The source doubles the flow's pacing
// gap on each feedback and decays it multiplicatively back toward the
// schedule rate, a deliberately minimal AIMD-flavoured loop: enough for
// Cebinae's tax to actually slow elephants down, cheap enough to run a
// million times over.
package replay

import (
	"fmt"
	"sort"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
	"cebinae/internal/trace"
)

// Arena geometry: fixed chunks keep flow records at stable addresses (the
// embedded timers are intrusively linked into the engine's wheel).
const (
	chunkShift = 9
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// minCutGap is the smallest pacing gap a congestion cut enforces; it gives
// schedule-rate-unlimited flows (gap 0) a real gap to double from.
const minCutGap = sim.Time(1000) // 1 µs

// Config parameterises a Source.
type Config struct {
	// To is the destination node ID every flow is rewritten towards. The
	// schedule's synthetic node IDs are replaced with (source node, To);
	// its port pairs — unique per flow — are kept, so flow identity
	// survives the rewrite.
	To packet.NodeID
	// PacketBytes is the wire size of every emitted packet (default 700,
	// matching trace.DefaultConfig's MeanPacketBytes). Must exceed
	// packet.HeaderBytes.
	PacketBytes int
	// ClosedLoop enables rate reaction to Sink feedback: each feedback
	// packet doubles the flow's pacing gap (bounded by MaxBackoff), and
	// every subsequent send decays the gap back toward the schedule rate.
	ClosedLoop bool
	// ECN marks emitted packets ECT so an ECN-enabled qdisc can CE-mark
	// instead of dropping.
	ECN bool
	// MaxBackoff bounds the closed-loop slowdown: the pacing gap never
	// exceeds the schedule gap shifted left by MaxBackoff (default 6,
	// i.e. at most 64× slower than scheduled).
	MaxBackoff uint
	// RTTSpread models per-flow RTT diversity in the pacing cadence:
	// each flow's schedule gap is scaled by a deterministic factor in
	// [1−RTTSpread, 1+RTTSpread] hashed from its own flow record, so a
	// backbone population paces at individually offset cadences instead
	// of all sharing the chain RTT. The factor is a pure function of
	// flow identity — independent of shard count, placement, and
	// admission order — so sharded runs stay byte-identical. Must be in
	// [0, 1); zero keeps uniform schedule-rate pacing.
	RTTSpread float64
}

// rttSpreadSeed salts the per-flow jitter hash so the pacing factor is
// uncorrelated with other uses of the flow-key hash (sketch rows, cache
// stages, scoring tiebreaks).
const rttSpreadSeed = 0x52545453 // "RTTS"

// SourceStats aggregates sender-side counters.
type SourceStats struct {
	Started     uint64 // flows started
	Finished    uint64 // flows that emitted their full schedule
	Active      int    // flows currently in flight
	PeakActive  int    // high-water mark of Active
	SentPackets uint64
	SentBytes   uint64
	Feedbacks   uint64 // congestion feedback packets accepted
	RateCuts    uint64 // pacing-gap doublings applied
}

// flowState is the compact per-flow record. The embedded Timer is
// intrusively linked into the engine's timing wheel, so flowStates live in
// the arena (stable addresses) and are recycled, never moved.
type flowState struct {
	timer   sim.Timer
	src     *Source
	key     packet.FlowKey
	left    int32 // packets still to send
	slot    int32 // arena ordinal, for the free list
	active  bool
	gap     sim.Time // current pacing gap
	baseGap sim.Time // schedule-rate gap
	maxGap  sim.Time // backoff ceiling
	seq     int64    // next byte offset on the wire
}

type chunk [chunkSize]flowState

// Source replays a flow schedule from a netem node. It is single-engine
// state: construct it on the node's engine goroutine before the run starts
// and read Stats after the run.
type Source struct {
	node     *netem.Node
	eng      *sim.Engine
	cfg      Config
	schedule []trace.FlowSpec
	next     int // first schedule entry not yet started

	startTimer sim.Timer

	chunks []*chunk
	free   []int32
	used   int

	// index maps a flow's forward key to its arena slot while the flow is
	// active — only maintained in closed-loop mode, where feedback
	// packets must find their flow.
	index map[packet.FlowKey]int32

	Stats SourceStats
}

// NewSource attaches a replay sender to node, driving the given schedule
// (as produced by trace.Flows: time-sorted by At). In closed-loop mode the
// source registers itself as the node's default endpoint to receive
// feedback packets.
func NewSource(node *netem.Node, schedule []trace.FlowSpec, cfg Config) *Source {
	if cfg.PacketBytes == 0 {
		cfg.PacketBytes = 700
	}
	if cfg.PacketBytes <= packet.HeaderBytes {
		panic(fmt.Sprintf("replay: PacketBytes %d must exceed the %d-byte header", cfg.PacketBytes, packet.HeaderBytes))
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 6
	}
	if cfg.MaxBackoff > 20 {
		cfg.MaxBackoff = 20
	}
	if cfg.To == 0 {
		panic("replay: Config.To must name the destination node")
	}
	if cfg.RTTSpread < 0 || cfg.RTTSpread >= 1 {
		panic(fmt.Sprintf("replay: RTTSpread %v outside [0, 1)", cfg.RTTSpread))
	}
	if !sort.SliceIsSorted(schedule, func(i, j int) bool { return schedule[i].At < schedule[j].At }) {
		panic("replay: schedule must be sorted by arrival time (as trace.Flows produces)")
	}
	s := &Source{node: node, eng: node.Engine(), cfg: cfg, schedule: schedule}
	if cfg.ClosedLoop {
		s.index = make(map[packet.FlowKey]int32)
		node.RegisterDefault(s)
	}
	if len(schedule) > 0 {
		// Flow admission is a traffic discontinuity: pinned so a fluid
		// fast-forward skip can never jump across an arrival instant.
		s.eng.ArmPinnedTimerAt(&s.startTimer, schedule[0].At, (*sourceStart)(s), nil)
	}
	return s
}

// alloc hands out a flow record with a stable address: recycled from the
// free list, or carved from the arena (growing it a chunk at a time).
func (s *Source) alloc() *flowState {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return s.at(slot)
	}
	if s.used == len(s.chunks)*chunkSize {
		s.chunks = append(s.chunks, new(chunk))
	}
	slot := int32(s.used)
	s.used++
	fs := s.at(slot)
	fs.slot = slot
	return fs
}

func (s *Source) at(slot int32) *flowState {
	return &s.chunks[slot>>chunkShift][slot&chunkMask]
}

// sourceStart is the Source's flow-admission event handler view.
type sourceStart Source

// OnEvent starts every schedule entry that has come due and re-arms for
// the next arrival instant.
func (h *sourceStart) OnEvent(any) {
	s := (*Source)(h)
	now := s.eng.Now()
	for s.next < len(s.schedule) && s.schedule[s.next].At <= now {
		s.start(&s.schedule[s.next])
		s.next++
	}
	if s.next < len(s.schedule) {
		s.eng.ArmPinnedTimerAt(&s.startTimer, s.schedule[s.next].At, h, nil)
	}
}

func (s *Source) start(spec *trace.FlowSpec) {
	fs := s.alloc()
	fs.src = s
	fs.key = packet.FlowKey{
		Src:     s.node.ID,
		Dst:     s.cfg.To,
		SrcPort: spec.Key.SrcPort,
		DstPort: spec.Key.DstPort,
		Proto:   spec.Key.Proto,
	}
	npkts := int32(spec.Bytes/int64(s.cfg.PacketBytes)) + 1
	fs.left = npkts
	fs.seq = 0
	fs.active = true
	fs.baseGap = spec.Lifetime / sim.Time(npkts)
	if s.cfg.RTTSpread > 0 {
		// Integer parts-per-million keeps the jitter exact and free of
		// float rounding: factor = 1 − spread + hash-offset within the
		// 2·spread span, applied to the schedule gap.
		span := uint64(2 * s.cfg.RTTSpread * 1e6)
		off := spec.Key.Hash(rttSpreadSeed) % (span + 1)
		ppm := 1_000_000 - span/2 + off
		fs.baseGap = fs.baseGap * sim.Time(ppm) / 1_000_000
	}
	fs.gap = fs.baseGap
	fs.maxGap = fs.baseGap << s.cfg.MaxBackoff
	if floor := minCutGap << s.cfg.MaxBackoff; fs.maxGap < floor {
		fs.maxGap = floor
	}
	s.Stats.Started++
	s.Stats.Active++
	if s.Stats.Active > s.Stats.PeakActive {
		s.Stats.PeakActive = s.Stats.Active
	}
	if s.index != nil {
		s.index[fs.key] = fs.slot
	}
	// The first packet goes out through the pacing timer at delay 0 — the
	// same virtual instant, but after the whole admission burst has run.
	// A standing population of 10⁵ flows is therefore 10⁵ live records
	// with 10⁵ armed wheel timers before the first byte moves, not an
	// interleaving of admissions and single-packet retirements.
	s.eng.ArmTimer(&fs.timer, 0, tickHandler, fs)
}

// flowTick is the shared per-flow pacing-timer handler; the timer's arg
// carries the flow record, so one stateless handler serves the whole
// arena.
type flowTick struct{}

func (flowTick) OnEvent(arg any) { arg.(*flowState).send() }

var tickHandler flowTick

// send emits one packet and re-arms the pacing timer — the zero-alloc
// steady-state path (pooled packet, embedded timer, pointer-typed arg).
func (fs *flowState) send() {
	s := fs.src
	p := s.node.AllocPacket()
	p.Flow = fs.key
	p.Seq = fs.seq
	p.Size = int32(s.cfg.PacketBytes)
	p.PayloadSize = p.Size - packet.HeaderBytes
	p.SentAt = s.eng.Now()
	if s.cfg.ECN {
		p.ECN = packet.ECNECT
	}
	fs.seq += int64(p.Size)
	fs.left--
	last := fs.left == 0
	if last {
		p.Flags |= packet.FlagFIN
	}
	s.node.Inject(p)
	s.Stats.SentPackets++
	s.Stats.SentBytes += uint64(s.cfg.PacketBytes)
	if last {
		s.finish(fs)
		return
	}
	if fs.gap > fs.baseGap {
		// Multiplicative decay back toward the schedule rate.
		fs.gap = fs.baseGap + (fs.gap-fs.baseGap)*7/8
	}
	s.eng.ArmTimer(&fs.timer, fs.gap, tickHandler, fs)
}

func (s *Source) finish(fs *flowState) {
	if s.index != nil {
		delete(s.index, fs.key)
	}
	fs.active = false
	s.Stats.Finished++
	s.Stats.Active--
	s.free = append(s.free, fs.slot)
}

// Deliver receives congestion feedback from the far-end Sink (the source
// is its node's default endpoint in closed-loop mode): double the flow's
// pacing gap, bounded by its backoff ceiling. The packet stays owned by
// the network; Deliver only reads it.
func (s *Source) Deliver(p *packet.Packet) {
	if !p.HasFlag(packet.FlagACK) {
		return
	}
	forward := p.Flow.Reverse()
	slot, ok := s.index[forward]
	if !ok {
		return // flow already finished
	}
	fs := s.at(slot)
	if !fs.active || fs.key != forward {
		return // slot recycled since the feedback was sent
	}
	s.Stats.Feedbacks++
	g := fs.gap * 2
	if g < minCutGap {
		g = minCutGap
	}
	if g > fs.maxGap {
		g = fs.maxGap
	}
	if g > fs.gap {
		s.Stats.RateCuts++
	}
	fs.gap = g
}

// Done reports whether the source has started every schedule entry and
// every started flow has finished.
func (s *Source) Done() bool {
	return s.next == len(s.schedule) && s.Stats.Active == 0
}

// ResidentChunks reports the arena footprint (chunks × chunkSize records),
// for memory accounting in benchmarks.
func (s *Source) ResidentChunks() int { return len(s.chunks) }
