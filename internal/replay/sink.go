package replay

import (
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// SinkConfig parameterises a Sink.
type SinkConfig struct {
	// ClosedLoop enables per-flow sequence tracking and congestion
	// feedback to the Source. Off, the sink only counts packets and CE
	// marks — the lean mode for open-loop million-flow runs, which keeps
	// the sink O(1) in flow count.
	ClosedLoop bool
	// FeedbackMinGap rate-limits feedback to one packet per flow per gap
	// (default 1 ms) so a burst of drops costs one reverse-path packet,
	// not one per loss.
	FeedbackMinGap sim.Time
}

// SinkStats aggregates receiver-side counters.
type SinkStats struct {
	Packets   uint64
	Bytes     uint64
	CEMarks   uint64
	Finished  uint64 // FIN packets seen
	LostBytes uint64 // sequence holes observed (closed-loop mode only)
	Feedbacks uint64 // feedback packets sent (closed-loop mode only)
}

// sinkFlow is the receiver's per-flow view in closed-loop mode: the next
// expected byte and the last feedback instant.
type sinkFlow struct {
	expect       int64
	lastFeedback sim.Time
}

// Sink terminates replay flows as the catch-all endpoint of a node: no
// per-flow demux entries, one Deliver for every arriving packet. In
// closed-loop mode it watches for sequence holes (drops upstream) and CE
// marks and answers congestion with a rate-limited feedback packet on the
// reverse route — a real packet, so it behaves identically across shard
// cuts.
type Sink struct {
	node *netem.Node
	eng  *sim.Engine
	cfg  SinkConfig

	flows map[packet.FlowKey]sinkFlow

	Stats SinkStats
}

// NewSink attaches a replay receiver to node as its default endpoint.
func NewSink(node *netem.Node, cfg SinkConfig) *Sink {
	if cfg.FeedbackMinGap == 0 {
		cfg.FeedbackMinGap = sim.Time(1e6) // 1 ms
	}
	k := &Sink{node: node, eng: node.Engine(), cfg: cfg}
	if cfg.ClosedLoop {
		k.flows = make(map[packet.FlowKey]sinkFlow)
	}
	node.RegisterDefault(k)
	return k
}

// Deliver consumes one arriving packet. The packet remains owned by the
// network (the node returns it to the pool when Deliver returns).
func (k *Sink) Deliver(p *packet.Packet) {
	k.Stats.Packets++
	k.Stats.Bytes += uint64(p.Size)
	congested := false
	if p.ECN == packet.ECNCE {
		k.Stats.CEMarks++
		congested = true
	}
	fin := p.HasFlag(packet.FlagFIN)
	if fin {
		k.Stats.Finished++
	}
	if k.flows == nil {
		return
	}
	sf := k.flows[p.Flow]
	if p.Seq > sf.expect {
		// A sequence hole: bytes dropped somewhere upstream.
		k.Stats.LostBytes += uint64(p.Seq - sf.expect)
		congested = true
	}
	if next := p.Seq + int64(p.Size); next > sf.expect {
		sf.expect = next
	}
	if congested {
		now := k.eng.Now()
		if sf.lastFeedback == 0 || now-sf.lastFeedback >= k.cfg.FeedbackMinGap {
			sf.lastFeedback = now
			k.feedback(p)
		}
	}
	if fin {
		delete(k.flows, p.Flow)
		return
	}
	k.flows[p.Flow] = sf
}

// feedback sends one congestion notification back to the source: a bare
// header on the reverse route, ACK-flagged so the Source recognises it,
// ECE-flagged when echoing a CE mark.
func (k *Sink) feedback(data *packet.Packet) {
	fb := k.node.AllocPacket()
	fb.Flow = data.Flow.Reverse()
	fb.Flags = packet.FlagACK
	if data.ECN == packet.ECNCE {
		fb.Flags |= packet.FlagECE
	}
	fb.Ack = data.Seq + int64(data.Size)
	fb.Size = packet.HeaderBytes
	fb.PayloadSize = 0
	fb.SentAt = k.eng.Now()
	k.Stats.Feedbacks++
	k.node.Inject(fb)
}

// ShiftTime translates the per-flow feedback rate-limiter stamps by d
// (fluid fast-forward re-entry), preserving each flow's distance to its
// next permitted feedback. Zero means "never sent" and stays zero. The
// map mutation is uniform across entries, so iteration order is
// immaterial.
func (k *Sink) ShiftTime(d sim.Time) {
	for key, sf := range k.flows {
		if sf.lastFeedback != 0 {
			sf.lastFeedback += d
			k.flows[key] = sf
		}
	}
}
