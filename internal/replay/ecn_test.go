package replay

// The ECN-vs-drop differential pins the CE leg of the closed loop: under
// a Cebinae core in ECN mode the leaky-bucket filter marks ECT packets
// CE instead of waiting for losses, the sink echoes each mark as
// ECE-flagged feedback, and the source cuts its pacing rate — so the
// loop reacts *before* the queue overflows and the run sheds fewer
// packets than the identical drop-only run, whose only congestion signal
// is a sequence hole after the fact.

import (
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/sim"
	"cebinae/internal/trace"
)

// runECNChain drives the shared trace schedule through a chain whose
// bottleneck is a Cebinae core with ECN marking on or off.
func runECNChain(t *testing.T, markECN bool) (SourceStats, SinkStats, core.Stats) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Duration = sim.Time(100e6)
	cfg.FlowsPerMinute = 120000
	cfg.MaxFlowBytes = 1 << 22
	cfg.LifetimeScale = 10
	cfg.StandingFlows = 1000
	cfg.Seed = 11
	schedule := trace.Flows(cfg)

	const bottleneckBps, bufBytes = 20e6, 64 * 1500
	c := buildChain(bottleneckBps, bufBytes)
	rtt := 2 * (sim.Time(2e6) + 2*sim.Time(200e3))
	params := core.DefaultParams(bottleneckBps, bufBytes, rtt)
	params.MarkECN = markECN
	cq := core.New(c.eng, bottleneckBps, bufBytes, params)
	cq.OnDrain = c.bottleneck.Kick
	c.bottleneck.SetQdisc(cq)

	src := NewSource(c.src, schedule, Config{To: c.dst.ID, ClosedLoop: true, ECN: true})
	sink := NewSink(c.dst, SinkConfig{ClosedLoop: true})
	c.eng.RunUntil(sim.Time(300e6))
	return src.Stats, sink.Stats, cq.Stats
}

func TestClosedLoopECNVersusDrop(t *testing.T) {
	ecnSrc, ecnSink, ecnCore := runECNChain(t, true)
	dropSrc, dropSink, dropCore := runECNChain(t, false)

	// The ECN leg must actually fire: marks at the core, echoes at the
	// sink, rate cuts at the source.
	if ecnCore.ECNMarked == 0 {
		t.Fatal("Cebinae ECN mode marked nothing; the cell is not congested enough to test")
	}
	if ecnSink.CEMarks == 0 {
		t.Fatal("CE marks never reached the sink")
	}
	if ecnSink.Feedbacks == 0 || ecnSrc.Feedbacks == 0 || ecnSrc.RateCuts == 0 {
		t.Fatalf("CE echo did not close the loop: sink sent %d, source accepted %d, cut %d",
			ecnSink.Feedbacks, ecnSrc.Feedbacks, ecnSrc.RateCuts)
	}

	// Drop-only control: no marks anywhere, reaction only via holes.
	if dropCore.ECNMarked != 0 || dropSink.CEMarks != 0 {
		t.Fatalf("drop-only run saw CE marks: core %d, sink %d", dropCore.ECNMarked, dropSink.CEMarks)
	}
	if dropSrc.RateCuts == 0 {
		t.Fatal("drop-only control never reacted; the comparison needs contention")
	}

	// Marking is an additional, pre-loss signal: the ECN run must brake
	// harder (more feedback accepted, more pacing cuts), emit fewer
	// packets into the congested core, and never lose more than the
	// drop-only control. (The absolute drop counts are dominated by the
	// t=0 standing-burst overflow, which no feedback loop can prevent —
	// the differential is in the reaction, not the transient.)
	ecnDrops := ecnCore.BufferDrops + ecnCore.LBFDrops
	dropDrops := dropCore.BufferDrops + dropCore.LBFDrops
	if dropDrops == 0 {
		t.Fatal("drop-only control saw no drops; the comparison needs contention")
	}
	if ecnDrops > dropDrops {
		t.Fatalf("ECN mode increased losses: %d drops with marking vs %d without", ecnDrops, dropDrops)
	}
	if ecnSrc.Feedbacks <= dropSrc.Feedbacks || ecnSrc.RateCuts <= dropSrc.RateCuts {
		t.Fatalf("CE marks added no feedback over holes alone: %d/%d feedbacks, %d/%d cuts",
			ecnSrc.Feedbacks, dropSrc.Feedbacks, ecnSrc.RateCuts, dropSrc.RateCuts)
	}
	if ecnSrc.SentPackets >= dropSrc.SentPackets {
		t.Fatalf("earlier braking did not slow the source: %d packets sent with ECN vs %d without",
			ecnSrc.SentPackets, dropSrc.SentPackets)
	}
}
