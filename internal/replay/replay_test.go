package replay

import (
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/trace"
)

// chain is a src—sw1—sw2—dst path with the sw1→sw2 hop as the bottleneck,
// routed in both directions so closed-loop feedback can flow back.
type chain struct {
	eng                *sim.Engine
	net                *netem.Network
	src, sw1, sw2, dst *netem.Node
	bottleneck         *netem.Device
}

func buildChain(bottleneckBps float64, bufBytes int) *chain {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	c := &chain{eng: eng, net: w}
	c.src = w.NewNode("src")
	c.sw1 = w.NewNode("sw1")
	c.sw2 = w.NewNode("sw2")
	c.dst = w.NewNode("dst")
	fifo := func(limit int) func() netem.Qdisc {
		return func() netem.Qdisc { return qdisc.NewFIFO(limit) }
	}
	access := netem.LinkConfig{RateBps: 50 * bottleneckBps, Delay: sim.Time(200e3), QdiscFactory: fifo(1 << 22)}
	core := netem.LinkConfig{RateBps: bottleneckBps, Delay: sim.Time(2e6), QdiscFactory: fifo(bufBytes)}
	sa, as := w.Connect(c.src, c.sw1, access)
	bb, bb2 := w.Connect(c.sw1, c.sw2, core)
	sd, ds := w.Connect(c.sw2, c.dst, access)
	c.bottleneck = bb
	c.src.AddRoute(c.dst.ID, sa)
	c.sw1.AddRoute(c.dst.ID, bb)
	c.sw2.AddRoute(c.dst.ID, sd)
	c.dst.AddRoute(c.src.ID, ds)
	c.sw2.AddRoute(c.src.ID, bb2)
	c.sw1.AddRoute(c.src.ID, as)
	return c
}

// spec builds a FlowSpec with a unique port pair derived from id.
func spec(id uint32, at sim.Time, bytes int64, lifetime sim.Time) trace.FlowSpec {
	return trace.FlowSpec{
		At:       at,
		Bytes:    bytes,
		Lifetime: lifetime,
		Key:      packet.FlowKey{SrcPort: uint16(id >> 8), DstPort: uint16(id * 40503), Proto: packet.ProtoTCP},
	}
}

func TestOpenLoopDeliversSchedule(t *testing.T) {
	c := buildChain(100e6, 1<<20)
	schedule := []trace.FlowSpec{
		spec(1, 0, 50_000, sim.Time(20e6)),
		spec(2, sim.Time(1e6), 200_000, sim.Time(50e6)),
		spec(3, sim.Time(5e6), 7_000, sim.Time(5e6)),
	}
	src := NewSource(c.src, schedule, Config{To: c.dst.ID})
	sink := NewSink(c.dst, SinkConfig{})
	c.eng.RunUntil(sim.Time(200e6))

	if !src.Done() {
		t.Fatalf("source not done: %+v", src.Stats)
	}
	if src.Stats.Started != 3 || src.Stats.Finished != 3 {
		t.Fatalf("flow accounting wrong: %+v", src.Stats)
	}
	// Uncongested path: every packet sent is delivered.
	if sink.Stats.Packets != src.Stats.SentPackets {
		t.Fatalf("delivered %d of %d packets on an uncongested path", sink.Stats.Packets, src.Stats.SentPackets)
	}
	if sink.Stats.Finished != 3 {
		t.Fatalf("sink saw %d FINs, want 3", sink.Stats.Finished)
	}
	// Packet counts must match the trace expansion: Bytes/PacketBytes+1.
	want := uint64(0)
	for _, s := range schedule {
		want += uint64(s.Bytes/700) + 1
	}
	if src.Stats.SentPackets != want {
		t.Fatalf("sent %d packets, schedule expands to %d", src.Stats.SentPackets, want)
	}
	if c.src.Unroutable != 0 || c.dst.Unroutable != 0 {
		t.Fatalf("unroutable packets: src=%d dst=%d", c.src.Unroutable, c.dst.Unroutable)
	}
}

func runScheduleFromTrace(t *testing.T, closed bool) (SourceStats, SinkStats, netem.DeviceStats) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Duration = sim.Time(100e6)
	cfg.FlowsPerMinute = 120000
	cfg.MaxFlowBytes = 1 << 22
	cfg.LifetimeScale = 10
	cfg.StandingFlows = 1000
	cfg.Seed = 11
	schedule := trace.Flows(cfg)

	c := buildChain(20e6, 64*1500) // narrow core: drops guaranteed
	src := NewSource(c.src, schedule, Config{To: c.dst.ID, ClosedLoop: closed})
	sink := NewSink(c.dst, SinkConfig{ClosedLoop: closed})
	c.eng.RunUntil(sim.Time(300e6))
	return src.Stats, sink.Stats, c.bottleneck.Stats
}

func TestReplayDeterministic(t *testing.T) {
	for _, closed := range []bool{false, true} {
		a1, k1, d1 := runScheduleFromTrace(t, closed)
		a2, k2, d2 := runScheduleFromTrace(t, closed)
		if a1 != a2 || k1 != k2 || d1 != d2 {
			t.Fatalf("closed=%v: replay non-deterministic:\n%+v\n%+v", closed, a1, a2)
		}
	}
}

func TestClosedLoopReactsToCongestion(t *testing.T) {
	_, _, openDev := runScheduleFromTrace(t, false)
	srcStats, sinkStats, closedDev := runScheduleFromTrace(t, true)

	if openDev.DropPackets == 0 {
		t.Fatal("test needs a congested bottleneck but the open-loop run saw no drops")
	}
	if sinkStats.LostBytes == 0 {
		t.Fatal("closed-loop sink observed no sequence holes despite drops")
	}
	if sinkStats.Feedbacks == 0 || srcStats.Feedbacks == 0 {
		t.Fatalf("no feedback flowed: sink sent %d, source accepted %d", sinkStats.Feedbacks, srcStats.Feedbacks)
	}
	if srcStats.RateCuts == 0 {
		t.Fatal("feedback arrived but no pacing gaps were cut")
	}
	// Backing off must shrink the drop rate relative to blind replay.
	openRate := float64(openDev.DropPackets) / float64(openDev.DropPackets+openDev.TxPackets)
	closedRate := float64(closedDev.DropPackets) / float64(closedDev.DropPackets+closedDev.TxPackets)
	if closedRate >= openRate {
		t.Fatalf("closed loop did not reduce drops: open %.4f vs closed %.4f", openRate, closedRate)
	}
}

func TestArenaRecyclesSlots(t *testing.T) {
	c := buildChain(1e9, 1<<22)
	// Many sequential short flows: each finishes before the next starts,
	// so the arena should stay at one chunk no matter how many flows run.
	var schedule []trace.FlowSpec
	for i := 0; i < 4*chunkSize; i++ {
		schedule = append(schedule, spec(uint32(i+1), sim.Time(i)*sim.Time(100e3), 1400, sim.Time(10e3)))
	}
	src := NewSource(c.src, schedule, Config{To: c.dst.ID})
	NewSink(c.dst, SinkConfig{})
	c.eng.RunUntil(sim.Time(1e9))
	if !src.Done() {
		t.Fatalf("source not done: %+v", src.Stats)
	}
	if src.Stats.PeakActive > 4 {
		t.Fatalf("sequential flows overlapped: peak active %d", src.Stats.PeakActive)
	}
	if src.ResidentChunks() != 1 {
		t.Fatalf("arena grew to %d chunks for a peak of %d active flows", src.ResidentChunks(), src.Stats.PeakActive)
	}
}

func TestStartBurstAdmitsAllDueFlows(t *testing.T) {
	c := buildChain(1e9, 1<<22)
	// All flows due at the same instant (a standing population).
	var schedule []trace.FlowSpec
	for i := 0; i < 100; i++ {
		schedule = append(schedule, spec(uint32(i+1), 0, 10_000, sim.Time(50e6)))
	}
	src := NewSource(c.src, schedule, Config{To: c.dst.ID})
	NewSink(c.dst, SinkConfig{})
	c.eng.RunUntil(1)
	if src.Stats.Started != 100 {
		t.Fatalf("standing flows admitted lazily: %d of 100 started at t=0", src.Stats.Started)
	}
	if src.Stats.PeakActive != 100 {
		t.Fatalf("peak active %d, want 100", src.Stats.PeakActive)
	}
}

func TestSendSteadyStateZeroAlloc(t *testing.T) {
	c := buildChain(1e9, 1<<22)
	// One long flow paced at ~70 µs/packet for the whole measurement.
	schedule := []trace.FlowSpec{spec(1, 0, 200e6, sim.Time(20e9))}
	src := NewSource(c.src, schedule, Config{To: c.dst.ID})
	NewSink(c.dst, SinkConfig{})
	// Warm up: grow the event heap, the packet pool, and the arena.
	c.eng.RunUntil(sim.Time(50e6))
	var horizon = sim.Time(50e6)
	allocs := testing.AllocsPerRun(100, func() {
		horizon += sim.Time(1e6)
		c.eng.RunUntil(horizon)
	})
	if allocs != 0 {
		t.Fatalf("steady-state send path allocates: %v allocs per 1 ms window", allocs)
	}
	if src.Stats.SentPackets == 0 {
		t.Fatal("no packets sent during measurement")
	}
}

// TestRTTSpreadJitter checks the per-flow pacing jitter: identically
// scheduled flows get distinct gaps scattered within the configured
// spread, as a pure function of each flow's record (two runs agree
// exactly), while a zero spread keeps the uniform schedule pacing.
func TestRTTSpreadJitter(t *testing.T) {
	const n = 64
	gather := func(spread float64) []sim.Time {
		c := buildChain(1e9, 1<<22)
		var schedule []trace.FlowSpec
		for i := 0; i < n; i++ {
			schedule = append(schedule, spec(uint32(i+1), 0, 10_000, sim.Time(50e6)))
		}
		src := NewSource(c.src, schedule, Config{To: c.dst.ID, RTTSpread: spread})
		NewSink(c.dst, SinkConfig{})
		c.eng.RunUntil(1)
		gaps := make([]sim.Time, n)
		for i := range gaps {
			gaps[i] = src.at(int32(i)).baseGap
		}
		return gaps
	}

	uniform := gather(0)
	for _, g := range uniform {
		if g != uniform[0] {
			t.Fatalf("zero spread produced non-uniform gaps: %v", uniform)
		}
	}
	base := float64(uniform[0])

	jittered := gather(0.3)
	distinct := map[sim.Time]bool{}
	for i, g := range jittered {
		if f := float64(g) / base; f < 0.7 || f > 1.3 {
			t.Fatalf("flow %d gap %v is %.3f× the schedule gap, outside ±30%%", i, g, f)
		}
		distinct[g] = true
	}
	if len(distinct) < n/4 {
		t.Fatalf("jitter barely scattered the population: %d distinct gaps over %d flows", len(distinct), n)
	}
	if again := gather(0.3); !slicesEqual(jittered, again) {
		t.Fatalf("jitter not deterministic:\n%v\n%v", jittered, again)
	}
}

func slicesEqual(a, b []sim.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConfigPanics(t *testing.T) {
	c := buildChain(1e9, 1<<22)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("missing To", func() { NewSource(c.src, nil, Config{}) })
	expectPanic("tiny packets", func() { NewSource(c.src, nil, Config{To: c.dst.ID, PacketBytes: 10}) })
	expectPanic("unsorted schedule", func() {
		NewSource(c.src, []trace.FlowSpec{spec(1, 100, 1000, 10), spec(2, 50, 1000, 10)}, Config{To: c.dst.ID})
	})
	expectPanic("spread ≥ 1", func() { NewSource(c.src, nil, Config{To: c.dst.ID, RTTSpread: 1}) })
	expectPanic("negative spread", func() { NewSource(c.src, nil, Config{To: c.dst.ID, RTTSpread: -0.1}) })
}
