package replay

// The differential test validates the replay abstraction against the exact
// substrate it substitutes for: full TCP senders over the same topology and
// the same flow mix must see statistically matched switch-side arrivals.
// This is the DiffServ experimental-vs-simulated methodology in miniature —
// the lightweight model earns its place by agreeing with the heavyweight
// one where they overlap, so the backbone tiers (where TCP is unaffordable)
// inherit credibility from the small scale (where it is not).

import (
	"testing"

	"cebinae/internal/packet"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
	"cebinae/internal/trace"
)

// diffFlows is the shared flow mix: two elephants among a crowd of mice,
// staggered starts, all sized to finish within the window at fair share.
var diffFlows = []struct {
	port  uint32
	bytes int64
	start sim.Time
}{
	{1, 6e6, 0},
	{2, 6e6, sim.Time(10e6)},
	{3, 400e3, sim.Time(20e6)},
	{4, 400e3, sim.Time(120e6)},
	{5, 400e3, sim.Time(320e6)},
	{6, 400e3, sim.Time(520e6)},
}

const (
	diffBottleneckBps = 100e6
	diffBufBytes      = 64 * 1500
	diffHorizon       = sim.Time(2e9)
)

// coreMix tallies per-flow bytes observed leaving the bottleneck — the
// switch-side arrival statistic both senders are compared on.
type coreMix struct {
	bytes map[uint16]uint64 // by source port
	total uint64
}

func (m *coreMix) observe(p *packet.Packet) {
	if p.PayloadSize > 0 && p.Flow.SrcPort != 0 {
		m.bytes[p.Flow.SrcPort] += uint64(p.Size)
		m.total += uint64(p.Size)
	}
}

func (m *coreMix) elephantShare() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.bytes[1]+m.bytes[2]) / float64(m.total)
}

func runDiffTCP(t *testing.T) (*coreMix, uint64) {
	t.Helper()
	c := buildChain(diffBottleneckBps, diffBufBytes)
	mix := &coreMix{bytes: map[uint16]uint64{}}
	c.bottleneck.OnTransmit = mix.observe
	for i, f := range diffFlows {
		key := packet.FlowKey{Src: c.src.ID, Dst: c.dst.ID, SrcPort: uint16(f.port), DstPort: 9000 + uint16(f.port), Proto: packet.ProtoTCP}
		cc, ok := tcp.NewCC("newreno")
		if !ok {
			t.Fatal("newreno not registered")
		}
		tcp.NewConn(c.eng, c.src, tcp.Config{Key: key, CC: cc, DataLimit: f.bytes, StartAt: f.start, Seed: uint64(i + 1)})
		tcp.NewReceiver(c.eng, c.dst, tcp.ReceiverConfig{Key: key})
	}
	c.eng.RunUntil(diffHorizon)
	return mix, c.bottleneck.Stats.DropPackets
}

func runDiffReplay(t *testing.T) (*coreMix, uint64) {
	t.Helper()
	c := buildChain(diffBottleneckBps, diffBufBytes)
	mix := &coreMix{bytes: map[uint16]uint64{}}
	c.bottleneck.OnTransmit = mix.observe
	// Schedule each flow above its fair share — TCP probes past capacity
	// and the replay schedule must too, or the bottleneck never fills.
	// The closed loop, not the schedule, is what keeps the mix honest
	// under the resulting contention.
	fairBps := diffBottleneckBps / 2
	var schedule []trace.FlowSpec
	for _, f := range diffFlows {
		schedule = append(schedule, trace.FlowSpec{
			At:       f.start,
			Bytes:    f.bytes,
			Lifetime: sim.Time(float64(f.bytes*8) / fairBps * 1e9),
			Key:      packet.FlowKey{SrcPort: uint16(f.port), DstPort: 9000 + uint16(f.port), Proto: packet.ProtoTCP},
		})
	}
	NewSource(c.src, schedule, Config{To: c.dst.ID, ClosedLoop: true, PacketBytes: 1500})
	NewSink(c.dst, SinkConfig{ClosedLoop: true})
	c.eng.RunUntil(diffHorizon)
	return mix, c.bottleneck.Stats.DropPackets
}

func TestReplayMatchesTCPAtTheSwitch(t *testing.T) {
	tcpMix, tcpDrops := runDiffTCP(t)
	repMix, repDrops := runDiffReplay(t)

	if tcpMix.total == 0 || repMix.total == 0 {
		t.Fatalf("empty runs: tcp=%d replay=%d", tcpMix.total, repMix.total)
	}
	// Both senders must actually stress the bottleneck (drops observed).
	if tcpDrops == 0 {
		t.Fatal("TCP run saw no drops; the comparison needs contention")
	}
	if repDrops == 0 {
		t.Fatal("replay run saw no drops; the comparison needs contention")
	}
	// Aggregate bytes through the switch agree within 25%.
	ratio := float64(repMix.total) / float64(tcpMix.total)
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("switch-side volume mismatch: replay/TCP = %.3f (tcp=%d replay=%d)", ratio, tcpMix.total, repMix.total)
	}
	// The elephant/mice byte mix agrees within 15 points.
	ts, rs := tcpMix.elephantShare(), repMix.elephantShare()
	if d := ts - rs; d < -0.15 || d > 0.15 {
		t.Fatalf("elephant byte share diverges: tcp %.3f vs replay %.3f", ts, rs)
	}
	// Every flow the TCP run carried shows up in the replay run too.
	for port := range tcpMix.bytes {
		if repMix.bytes[port] == 0 {
			t.Fatalf("flow on port %d missing from replay run", port)
		}
	}
}
