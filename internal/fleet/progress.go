package fleet

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// tracker serialises live progress output from concurrent workers. Lines
// go to the configured writer as jobs finish; they are scheduling-order
// dependent by nature, which is why they belong on stderr while rendered
// reports stay deterministic.
type tracker struct {
	mu       sync.Mutex
	w        io.Writer
	total    int
	finished int
	executed int // excludes cached results (their wall time is unknown)
	start    time.Time
}

func newTracker(w io.Writer, total int) *tracker {
	return &tracker{w: w, total: total, start: time.Now()}
}

// done reports one finished job: status, wall time, and an ETA projected
// from the mean wall time of the jobs executed so far.
func (t *tracker) done(r Result) {
	if t.w == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished++
	status := "ok"
	switch {
	case r.Cached:
		status = "cached"
	case !r.OK:
		status = "FAILED: " + r.Err
	}
	if r.Cached {
		fmt.Fprintf(t.w, "[%*d/%d] %-28s %s\n", digits(t.total), t.finished, t.total, r.ID, status)
		return
	}
	t.executed++
	elapsed := time.Since(t.start)
	eta := "?"
	if t.executed > 0 && t.finished < t.total {
		perJob := elapsed / time.Duration(t.executed)
		eta = (perJob * time.Duration(t.total-t.finished)).Round(time.Second).String()
	}
	fmt.Fprintf(t.w, "[%*d/%d] %-28s %s (%v; elapsed %v, eta %s)\n",
		digits(t.total), t.finished, t.total, r.ID, status,
		r.Wall.Round(time.Millisecond), elapsed.Round(time.Second), eta)
}

// finish prints the closing summary with the sequential-vs-parallel
// speedup (summed job wall time over elapsed wall time).
func (t *tracker) finish(s *Summary) {
	if t.w == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "fleet: %d jobs (%d cached, %d failed) in %v; %v of job work — %.2fx vs sequential\n",
		len(s.Results), s.Cached, s.Failed,
		s.Elapsed.Round(time.Millisecond), s.Work.Round(time.Millisecond), s.Speedup())
}

func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}
