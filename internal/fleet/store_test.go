package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func TestStoreRoundtripAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}

	var ran atomic.Int32
	counted := func(id string, v int) Job {
		return Job{ID: id, Run: func() (any, error) { ran.Add(1); return v, nil }}
	}
	jobs := []Job{counted("a", 1), counted("b", 2), counted("c", 3)}
	if _, err := Run(jobs[:2], Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 {
		t.Fatalf("first pass ran %d jobs, want 2", ran.Load())
	}

	// Re-open: the two completed IDs must be skipped, only c runs.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("reloaded %d results, want 2", st2.Len())
	}
	sum, err := Run(jobs, Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("resume re-ran completed jobs: %d total executions, want 3", ran.Load())
	}
	if sum.Cached != 2 || len(sum.Results) != 3 {
		t.Fatalf("cached=%d results=%d", sum.Cached, len(sum.Results))
	}
	r, _ := sum.Get("a")
	if !r.Cached || !r.OK {
		t.Fatalf("a should be served from the store: %+v", r)
	}
	var v int
	if err := json.Unmarshal(r.Value, &v); err != nil || v != 1 {
		t.Fatalf("cached value roundtrip: %v %v", v, err)
	}
}

func TestStoreToleratesTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	whole := `{"id":"done","ok":true,"attempts":1,"value":7}` + "\n"
	partial := `{"id":"killed-mid-append","ok":tr`
	if err := os.WriteFile(path, []byte(whole+partial), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatalf("truncated final line should be forgiven: %v", err)
	}
	defer st.Close()
	if st.Len() != 1 {
		t.Fatalf("loaded %d results, want 1", st.Len())
	}
	if _, found := st.Get("done"); !found {
		t.Fatal("intact line lost")
	}

	// The torn tail must have been truncated away, so this append starts a
	// fresh line rather than concatenating onto the partial record — which
	// would silently lose the append on the next load, then turn into
	// mid-file corruption once anything else landed after it.
	if err := st.Append(Result{ID: "after-tear", OK: true, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("store unreadable after append-over-torn-tail: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("reloaded %d results, want 2 (torn tail mishandled)", st2.Len())
	}
	if _, found := st2.Get("after-tear"); !found {
		t.Fatal("record appended after a torn tail was lost on reload")
	}
}

func TestStoreRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	data := "not json at all\n" + `{"id":"later","ok":true,"attempts":1}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption accepted: %v", err)
	}
}

func TestFailedJobsAreCheckpointedAndSkippedOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	bad := Job{ID: "bad", Run: func() (any, error) { calls.Add(1); panic("boom") }}
	if _, err := Run([]Job{bad}, Options{Store: st, Attempts: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sum, err := Run([]Job{bad}, Options{Store: st2, Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("recorded failure re-ran on resume (%d calls, want 2)", calls.Load())
	}
	if sum.Failed != 1 || sum.Cached != 1 {
		t.Fatalf("failed=%d cached=%d, want 1/1", sum.Failed, sum.Cached)
	}
}
