package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestParallelismDoesNotChangeResults runs the same deterministic job set
// at parallelism 1 and 8 into two stores and asserts the sorted JSONL
// files are byte-identical — the contract cebinae-bench's -p flag relies
// on for byte-identical reports.
func TestParallelismDoesNotChangeResults(t *testing.T) {
	mkJobs := func() []Job {
		jobs := make([]Job, 40)
		for i := range jobs {
			i := i
			jobs[i] = Job{
				ID: fmt.Sprintf("sim/%02d", i),
				Run: func() (any, error) {
					// A small deterministic "simulation": an LCG-driven
					// accumulation seeded by the job index, including a
					// deterministic failure mode.
					if i%13 == 7 {
						return nil, fmt.Errorf("scenario %d diverged", i)
					}
					state := uint64(i)*2862933555777941757 + 3037000493
					var acc float64
					for k := 0; k < 10000; k++ {
						state = state*6364136223846793005 + 1442695040888963407
						acc += float64(state%1000) / 1000
					}
					return map[string]any{"index": i, "mean": acc / 10000}, nil
				},
			}
		}
		return jobs
	}

	sortedLines := func(path string) []byte {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
		sort.Slice(lines, func(i, k int) bool { return bytes.Compare(lines[i], lines[k]) < 0 })
		return bytes.Join(lines, []byte("\n"))
	}

	dir := t.TempDir()
	paths := map[int]string{1: filepath.Join(dir, "p1.jsonl"), 8: filepath.Join(dir, "p8.jsonl")}
	for p, path := range paths {
		st, err := OpenStore(path)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := Run(mkJobs(), Options{Parallelism: p, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		st.Close()
		if len(sum.Results) != 40 {
			t.Fatalf("p=%d recorded %d results", p, len(sum.Results))
		}
	}

	p1, p8 := sortedLines(paths[1]), sortedLines(paths[8])
	if !bytes.Equal(p1, p8) {
		t.Fatalf("sorted JSONL stores differ between p=1 and p=8:\n--- p1 ---\n%s\n--- p8 ---\n%s", p1, p8)
	}
}
