// Package fleet is a deterministic job orchestrator for independent
// simulation experiments. A sweep of scenarios (Table 2's 25×3 grid, a
// parameter Cartesian product, a figure suite) is expressed as a slice of
// Jobs and fanned out over a bounded worker pool. The runner provides:
//
//   - per-job panic recovery with bounded retry, so one diverging
//     simulation cannot kill the remaining jobs of a sweep;
//   - a wall-clock watchdog per job, so a runaway simulation is marked
//     failed instead of hanging the pool;
//   - an optional checkpointed JSONL result store (one line per completed
//     job, atomic append) — re-running against the same store skips
//     already-completed job IDs, giving crash/kill resume for free;
//   - live progress reporting (done/total, ETA, per-job wall time) and a
//     final summary sorted by job ID, so summaries are byte-identical
//     regardless of scheduling order.
//
// Each job constructs its own simulation engine inside its closure, so
// per-job determinism is preserved by construction: the same job set run
// at parallelism 1 and parallelism N produces identical per-job results.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Job is one independent unit of work. Run must be self-contained: it may
// not share mutable state with other jobs (each should build its own
// engine/meters), and its returned value must be JSON-marshalable so it
// can be checkpointed and later re-decoded.
type Job struct {
	ID   string
	Desc string
	Run  func() (any, error)
}

// Result is one job's recorded outcome — exactly the JSONL line the store
// persists. Only deterministic fields are serialised: wall time and cache
// provenance vary run-to-run and are reported out of band.
type Result struct {
	ID       string          `json:"id"`
	OK       bool            `json:"ok"`
	Attempts int             `json:"attempts"`
	Err      string          `json:"err,omitempty"`
	Value    json.RawMessage `json:"value,omitempty"`

	// Wall is the job's total wall-clock time across attempts (zero for
	// results loaded from a store).
	Wall time.Duration `json:"-"`
	// Cached marks results that were skipped because the store already
	// held them.
	Cached bool `json:"-"`
}

// Options configures a Run.
type Options struct {
	// Parallelism is the worker count; <= 0 selects runtime.GOMAXPROCS(0).
	Parallelism int
	// CoresPerJob declares how many cores each job uses internally (a
	// sharded simulation runs one goroutine per shard). The effective
	// worker count is divided by it so sweeps and intra-job sharding
	// compose instead of oversubscribing the machine; <= 1 means
	// single-threaded jobs and leaves Parallelism untouched.
	CoresPerJob int
	// Attempts bounds how many times a panicking job is tried before it
	// is recorded as failed; <= 0 selects 2 (one retry). Ordinary errors
	// are deterministic outcomes and are recorded without retry.
	Attempts int
	// Timeout is the per-job wall-clock watchdog; <= 0 disables it. A
	// job that exceeds it is recorded as failed and its goroutine is
	// abandoned (Go cannot kill it), so the pool keeps draining.
	Timeout time.Duration
	// Store, when non-nil, checkpoints each completed job as a JSONL
	// line and skips job IDs it already holds.
	Store *Store
	// Progress, when non-nil, receives one live line per completed job
	// plus a closing summary line (conventionally os.Stderr, keeping
	// stdout reports deterministic).
	Progress io.Writer
}

// Summary aggregates a Run.
type Summary struct {
	// Results holds one entry per job, sorted by job ID — identical
	// content regardless of worker count or scheduling order.
	Results []Result
	Failed  int // jobs recorded with OK == false
	Cached  int // jobs skipped via the store
	Elapsed time.Duration
	// Work is the summed wall time of the jobs executed this run; the
	// ratio Work/Elapsed is the speedup over a sequential pass.
	Work time.Duration
}

// Speedup returns Work/Elapsed — how much wall time the pool saved over
// running the same jobs sequentially (≈1 at Parallelism 1).
func (s *Summary) Speedup() float64 {
	if s.Elapsed <= 0 {
		return 1
	}
	return float64(s.Work) / float64(s.Elapsed)
}

// Get returns the recorded result for a job ID.
func (s *Summary) Get(id string) (Result, bool) {
	i := sort.Search(len(s.Results), func(i int) bool { return s.Results[i].ID >= id })
	if i < len(s.Results) && s.Results[i].ID == id {
		return s.Results[i], true
	}
	return Result{}, false
}

// DefaultParallelism is the worker count used when Options.Parallelism
// is unset.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Run executes the jobs over the worker pool and returns the summary. It
// fails fast on malformed input (duplicate or empty job IDs) and on store
// write errors; individual job failures are recorded, not returned.
func Run(jobs []Job, opts Options) (*Summary, error) {
	if err := validate(jobs); err != nil {
		return nil, err
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.CoresPerJob > 1 {
		workers = max(1, workers/opts.CoresPerJob)
	}
	attempts := opts.Attempts
	if attempts <= 0 {
		attempts = 2
	}

	start := time.Now()
	sum := &Summary{Results: make([]Result, 0, len(jobs))}
	tr := newTracker(opts.Progress, len(jobs))

	// Partition into cached (already in the store) and pending.
	var pending []Job
	for _, j := range jobs {
		if opts.Store != nil {
			if r, ok := opts.Store.Get(j.ID); ok {
				r.Cached = true
				sum.Results = append(sum.Results, r)
				sum.Cached++
				if !r.OK {
					sum.Failed++
				}
				tr.done(r)
				continue
			}
		}
		pending = append(pending, j)
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		storeErr error
	)
	feed := make(chan Job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range feed {
				r := execute(j, attempts, opts.Timeout)
				mu.Lock()
				if opts.Store != nil && storeErr == nil {
					if err := opts.Store.Append(r); err != nil {
						storeErr = err
					}
				}
				sum.Results = append(sum.Results, r)
				sum.Work += r.Wall
				if !r.OK {
					sum.Failed++
				}
				mu.Unlock()
				tr.done(r)
			}
		}()
	}
	for _, j := range pending {
		feed <- j
	}
	close(feed)
	wg.Wait()

	if storeErr != nil {
		return nil, fmt.Errorf("fleet: checkpoint store: %w", storeErr)
	}
	sum.Elapsed = time.Since(start)
	sort.Slice(sum.Results, func(i, k int) bool { return sum.Results[i].ID < sum.Results[k].ID })
	tr.finish(sum)
	return sum, nil
}

func validate(jobs []Job) error {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		switch {
		case j.ID == "":
			return fmt.Errorf("fleet: job with empty ID (desc %q)", j.Desc)
		case j.Run == nil:
			return fmt.Errorf("fleet: job %s has no Run closure", j.ID)
		case seen[j.ID]:
			return fmt.Errorf("fleet: duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// execute runs one job to a recorded Result: panics are retried up to the
// attempt budget, ordinary errors and timeouts are recorded immediately.
func execute(j Job, attempts int, timeout time.Duration) (res Result) {
	res = Result{ID: j.ID}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()
	for try := 1; try <= attempts; try++ {
		res.Attempts = try
		o := invoke(j, timeout)
		switch {
		case o.timedOut:
			res.Err = fmt.Sprintf("watchdog: exceeded %v (runaway goroutine abandoned)", timeout)
			return res
		case o.panicked:
			res.Err = o.err.Error()
			continue // the one retryable failure mode
		case o.err != nil:
			res.Err = o.err.Error()
			return res
		default:
			value, err := json.Marshal(o.value)
			if err != nil {
				res.Err = fmt.Sprintf("result not JSON-marshalable: %v", err)
				return res
			}
			res.OK, res.Err, res.Value = true, "", value
			return res
		}
	}
	return res
}

type outcome struct {
	value    any
	err      error
	panicked bool
	timedOut bool
}

// invoke runs the job closure in its own goroutine so a watchdog timer
// can abandon it. The channel is buffered: an abandoned job's eventual
// send must not block its goroutine forever.
func invoke(j Job, timeout time.Duration) outcome {
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v", r), panicked: true}
			}
		}()
		v, err := j.Run()
		ch <- outcome{value: v, err: err}
	}()
	if timeout <= 0 {
		return <-ch
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o
	case <-timer.C:
		return outcome{timedOut: true}
	}
}
