package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func ok(id string, v any) Job {
	return Job{ID: id, Run: func() (any, error) { return v, nil }}
}

func TestRunCollectsSortedResults(t *testing.T) {
	jobs := []Job{ok("c", 3), ok("a", 1), ok("b", 2)}
	sum, err := Run(jobs, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 3 || sum.Failed != 0 {
		t.Fatalf("got %d results, %d failed", len(sum.Results), sum.Failed)
	}
	for i, want := range []string{"a", "b", "c"} {
		if sum.Results[i].ID != want {
			t.Errorf("result %d = %s, want %s", i, sum.Results[i].ID, want)
		}
	}
	r, found := sum.Get("b")
	if !found || !r.OK {
		t.Fatalf("Get(b) = %+v, %v", r, found)
	}
	var v int
	if err := json.Unmarshal(r.Value, &v); err != nil || v != 2 {
		t.Fatalf("value roundtrip: %v %v", v, err)
	}
}

func TestPanicRetriedThenRecordedOnce(t *testing.T) {
	var calls atomic.Int32
	flaky := Job{ID: "flaky", Run: func() (any, error) {
		if calls.Add(1) < 3 {
			panic("diverging simulation")
		}
		return "converged", nil
	}}
	sum, err := Run([]Job{flaky}, Options{Parallelism: 4, Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 1 {
		t.Fatalf("recorded %d results, want exactly 1", len(sum.Results))
	}
	r := sum.Results[0]
	if !r.OK || r.Attempts != 3 || r.Err != "" {
		t.Fatalf("want success on attempt 3, got %+v", r)
	}
	if calls.Load() != 3 {
		t.Fatalf("job ran %d times, want 3", calls.Load())
	}
}

func TestAlwaysPanickingJobFailsWithoutKillingOthers(t *testing.T) {
	jobs := []Job{
		ok("steady-1", 1.0),
		{ID: "crasher", Run: func() (any, error) { panic("division by zero flow count") }},
		ok("steady-2", 2.0),
	}
	sum, err := Run(jobs, Options{Parallelism: 3, Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("failed = %d, want 1", sum.Failed)
	}
	r, _ := sum.Get("crasher")
	if r.OK || r.Attempts != 2 || !strings.Contains(r.Err, "division by zero flow count") {
		t.Fatalf("crasher result %+v", r)
	}
	for _, id := range []string{"steady-1", "steady-2"} {
		if r, _ := sum.Get(id); !r.OK {
			t.Errorf("%s did not complete: %+v", id, r)
		}
	}
}

func TestPlainErrorNotRetried(t *testing.T) {
	var calls atomic.Int32
	j := Job{ID: "erroring", Run: func() (any, error) {
		calls.Add(1)
		return nil, errors.New("unknown CC kangaroo")
	}}
	sum, err := Run([]Job{j}, Options{Attempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.OK || r.Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("plain error should record once: %+v (calls %d)", r, calls.Load())
	}
}

func TestWatchdogMarksRunawayFailed(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{
		{ID: "runaway", Run: func() (any, error) { <-release; return nil, nil }},
		ok("quick", 1),
	}
	start := time.Now()
	sum, err := Run(jobs, Options{Parallelism: 2, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("pool hung on the runaway job")
	}
	r, _ := sum.Get("runaway")
	if r.OK || !strings.Contains(r.Err, "watchdog") {
		t.Fatalf("runaway result %+v", r)
	}
	if r, _ := sum.Get("quick"); !r.OK {
		t.Fatalf("quick job result %+v", r)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run([]Job{ok("x", 1), ok("x", 2)}, Options{}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Run([]Job{ok("", 1)}, Options{}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := Run([]Job{{ID: "norun"}}, Options{}); err == nil {
		t.Error("nil Run accepted")
	}
}

func TestUnmarshalableResultRecordedAsFailure(t *testing.T) {
	j := Job{ID: "chan", Run: func() (any, error) { return make(chan int), nil }}
	sum, err := Run([]Job{j}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := sum.Results[0]; r.OK || !strings.Contains(r.Err, "JSON") {
		t.Fatalf("got %+v", r)
	}
}

func TestProgressReportsEveryJob(t *testing.T) {
	var buf strings.Builder
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = ok(fmt.Sprintf("job-%02d", i), i)
	}
	if _, err := Run(jobs, Options{Parallelism: 4, Progress: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "\n"); n != len(jobs)+1 { // one per job + summary
		t.Fatalf("progress lines = %d, want %d:\n%s", n, len(jobs)+1, out)
	}
	if !strings.Contains(out, "[12/12]") || !strings.Contains(out, "vs sequential") {
		t.Fatalf("progress output missing counters/summary:\n%s", out)
	}
}

// TestCoresPerJobDividesWorkers pins the core-budget composition rule:
// with CoresPerJob = Parallelism the pool collapses to one worker, so
// jobs never overlap — a sharded job's internal goroutines get the cores
// a second concurrent job would otherwise steal. CoresPerJob beyond the
// worker count still leaves one worker (the pool must always drain).
func TestCoresPerJobDividesWorkers(t *testing.T) {
	for _, tc := range []struct{ parallelism, cores int }{
		{4, 4},  // exact division -> 1 worker
		{2, 8},  // over-budget -> floor at 1 worker
		{1, 3},  // already sequential
	} {
		var inFlight, overlaps atomic.Int32
		jobs := make([]Job, 6)
		for i := range jobs {
			jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func() (any, error) {
				if inFlight.Add(1) > 1 {
					overlaps.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
				inFlight.Add(-1)
				return nil, nil
			}}
		}
		sum, err := Run(jobs, Options{Parallelism: tc.parallelism, CoresPerJob: tc.cores})
		if err != nil {
			t.Fatal(err)
		}
		if len(sum.Results) != len(jobs) || sum.Failed != 0 {
			t.Fatalf("P=%d cores=%d: %d results, %d failed", tc.parallelism, tc.cores, len(sum.Results), sum.Failed)
		}
		if n := overlaps.Load(); n != 0 {
			t.Errorf("P=%d cores=%d: %d jobs observed running concurrently, want sequential", tc.parallelism, tc.cores, n)
		}
	}
}
