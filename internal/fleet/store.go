package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Store is a checkpointed JSONL result log: one JSON-encoded Result per
// line, written with a single O_APPEND write so concurrent workers never
// interleave partial lines. Opening an existing store loads its completed
// job IDs; a Run configured with the store skips those IDs, which is what
// makes a killed sweep resumable.
type Store struct {
	path string

	mu   sync.Mutex
	f    *os.File
	done map[string]Result
}

// OpenStore opens (creating if absent) the JSONL store at path and loads
// the results it already holds. A partial final line — the signature of a
// kill mid-append on filesystems without atomic O_APPEND semantics — is
// tolerated: it is dropped and the file truncated back to its last
// complete line, so later appends start fresh instead of concatenating
// onto the torn tail. Corruption anywhere else is an error.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, done: make(map[string]Result)}
	tornTail := int64(-1)
	if data, err := os.ReadFile(path); err == nil {
		valid, err := s.load(data)
		if err != nil {
			return nil, err
		}
		if valid < int64(len(data)) {
			tornTail = valid
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("fleet: open store: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: open store: %w", err)
	}
	if tornTail >= 0 {
		if err := f.Truncate(tornTail); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: store %s: drop torn tail: %w", path, err)
		}
	}
	s.f = f
	return s, nil
}

// load indexes the well-formed prefix of data and returns its length in
// bytes; anything past it is a torn final append for the caller to
// truncate. A line is only durable once its newline hit the disk, so an
// unterminated tail is dropped even when it happens to parse.
func (s *Store) load(data []byte) (int64, error) {
	lineno := 0
	off, valid := 0, 0
	var pendingErr error
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		line := bytes.TrimSpace(data[off : off+nl])
		off += nl + 1
		lineno++
		if len(line) == 0 {
			if pendingErr == nil {
				valid = off
			}
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return 0, pendingErr
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			pendingErr = fmt.Errorf("fleet: store %s: corrupt line %d: %v", s.path, lineno, err)
			continue
		}
		if r.ID == "" {
			pendingErr = fmt.Errorf("fleet: store %s: line %d has no job id", s.path, lineno)
			continue
		}
		s.done[r.ID] = r
		valid = off
	}
	return int64(valid), nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of completed results held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Get returns the stored result for a job ID, if present.
func (s *Store) Get(id string) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.done[id]
	return r, ok
}

// Results returns all stored results, sorted by job ID so callers that
// iterate or print them observe one order regardless of completion
// interleaving or map iteration.
func (s *Store) Results() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Result, 0, len(s.done))
	for _, r := range s.done {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Append checkpoints one result as a single appended line.
func (s *Store) Append(r Result) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("fleet: store %s: marshal %s: %w", s.path, r.ID, err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("fleet: store %s is closed", s.path)
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("fleet: store %s: append %s: %w", s.path, r.ID, err)
	}
	s.done[r.ID] = r
	return nil
}

// Close flushes and closes the underlying file. The store's in-memory
// index remains readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
