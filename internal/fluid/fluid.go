// Package fluid implements the hybrid fluid/packet fast-forward layer: a
// per-link fluid approximation the engine switches to when flow rates are
// provably quiescent, with automatic fallback to packet level on any
// discontinuity.
//
// The mechanism is freeze-and-shift. A Controller samples per-device
// transmit rates, per-flow goodput rates, and queue occupancies on a
// pinned periodic tick. Once every watched signal has been stable for K
// consecutive windows and no discontinuity counter (drops, CE marks,
// phase changes, retransmissions) has moved, the controller arms: it
// freezes the measured rates and starts skipping. Each skip jumps the
// clock to the next pinned control-plane deadline (Cebinae rotation or
// configure window, a monitor sample, a flow start, the measurement
// epoch, …), capped by MaxSkip and the run horizon, using
// sim.Engine.FastForward — every non-pinned pending event (in-flight
// transmissions, RTOs, pacing, delayed ACKs) shifts with the clock, so
// the frozen packet-level state re-enters the far side of the skip
// byte-consistently. Across the skipped stretch the controller advances
// the observable counters in closed form: device TX/RX stats, per-flow
// goodput meters, and — for a Cebinae port — the heavy-hitter cache, port
// byte counter, and LBF banks the next recompute will poll
// (core.Qdisc.FluidAdvance).
//
// Fallback is automatic and conservative. Pinned events execute at packet
// level at their exact instants (a rotation is a mandatory
// discontinuity: it is never skipped across). After each hop the
// controller re-checks: if any discontinuity counter moved, or any frozen
// queue's occupancy changed (the signature of a pinned traffic event —
// a flow arrival, an ON/OFF transition — injecting packets), it disarms
// on the spot, having skipped zero time past the perturbation, and
// resumes packet-level sampling until quiescence is re-proven.
package fluid

import (
	"cebinae/internal/core"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Config tunes the quiescence detector and the skip policy. The zero
// value selects the defaults given on each field.
type Config struct {
	// Window is the sampling window W (default 10 ms): rates and
	// occupancies are observed once per window.
	Window sim.Time
	// Stable is K, the consecutive stable windows required to arm
	// (default 5).
	Stable int
	// RateTol is the relative stability band on per-window byte deltas
	// (default 0.01): a signal is stable when max-min across the K
	// windows is within max(RateTol·mean, AbsTol).
	RateTol float64
	// AbsTol is the absolute band floor in bytes per window (default
	// 3000, two full-size packets of per-window quantisation).
	AbsTol int64
	// QueueTol is the absolute occupancy band in bytes (default 9000,
	// six full-size packets): queue depth may breathe by this much
	// across the K windows and still count as quiescent.
	QueueTol int
	// MaxSkip caps one hop (default 250 ms), bounding how stale the
	// closed-form counters can get between pinned deadlines.
	MaxSkip sim.Time
	// UtilCap is the utilisation fraction at which a contested link
	// (WatchDeviceContested) blocks arming (default 0.95). At capacity,
	// the flows' shares are contest-determined: rates flat across K
	// windows may be the cruise phase of a probing limit cycle (BBR gain
	// cycling, AIMD plateaus between losses) whose period exceeds the
	// detection span, and freezing such a share extrapolates a transient.
	// Below the cap the allocation is pinned by upstream limits and
	// momentary stability is trustworthy.
	UtilCap float64
	// Resample, when positive, forces a disarm after that much
	// cumulative skipped time, so rates are re-measured at packet level
	// even on a run with no discontinuities (default 0: no forced
	// resample — a frozen equilibrium cannot drift on its own).
	Resample sim.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = sim.Duration(10e6) // 10 ms
	}
	if c.Stable <= 0 {
		c.Stable = 5
	}
	if c.RateTol <= 0 {
		c.RateTol = 0.01
	}
	if c.AbsTol <= 0 {
		c.AbsTol = 3000
	}
	if c.QueueTol <= 0 {
		c.QueueTol = 9000
	}
	if c.MaxSkip <= 0 {
		c.MaxSkip = sim.Duration(250e6) // 250 ms
	}
	if c.UtilCap <= 0 {
		c.UtilCap = 0.95
	}
	return c
}

// Stats summarises a controller's activity for reports and the
// error-bound discussion: SkippedTime/Skips give the speedup side;
// Arms/Disarms tell how often quiescence was proven and lost.
type Stats struct {
	// Windows counts packet-level sampling windows observed.
	Windows uint64
	// Arms counts transitions into fluid mode; Disarms counts falls back
	// to packet level (forced or discontinuity-triggered).
	Arms    uint64
	Disarms uint64
	// Skips counts executed hops; SkippedTime is their total span.
	Skips       uint64
	SkippedTime sim.Time
	// ForcedOff reports a permanent ForceOff.
	ForcedOff bool
}

// history is a fixed ring of the last K per-window observations of one
// counter signal.
type history struct {
	vals  []int64
	n     int // filled entries
	next  int // ring cursor
	total int64
}

func (h *history) reset() { h.n, h.next, h.total = 0, 0, 0 }

func (h *history) push(v int64) {
	if h.n == len(h.vals) {
		h.total -= h.vals[h.next]
	} else {
		h.n++
	}
	h.vals[h.next] = v
	h.total += v
	h.next = (h.next + 1) % len(h.vals)
}

func (h *history) full() bool { return h.n == len(h.vals) }

// stable reports whether the ring is full and max-min fits the band.
func (h *history) stable(relTol float64, absTol int64) bool {
	if !h.full() {
		return false
	}
	lo, hi := h.vals[0], h.vals[0]
	for _, v := range h.vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	band := int64(relTol * float64(h.total) / float64(h.n))
	if band < absTol {
		band = absTol
	}
	return hi-lo <= band
}

// mean returns the average per-window value.
func (h *history) mean() float64 { return float64(h.total) / float64(h.n) }

// spread returns max-min across the ring (only meaningful when full).
func (h *history) spread() int64 {
	lo, hi := h.vals[0], h.vals[0]
	for _, v := range h.vals[1:h.n] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// watchedDevice tracks one netem device: its TX byte rate is a stability
// signal, and all four stats counters are fluid-advanced during skips.
type watchedDevice struct {
	dev *netem.Device

	// contested marks a link shared by multiple watched flows: running
	// at ≥ UtilCap of capacity vetoes arming (see Config.UtilCap).
	contested bool

	// Per-window delta rings over the last K windows; txB gates
	// stability, the companions exist so arm-time rates come from the
	// same stable span (not from transient windows before it).
	histTxB, histTxP, histRxB, histRxP history
	// last* are the counter values at the previous sampling tick.
	lastTxB, lastTxP, lastRxB, lastRxP uint64

	// occAtArm freezes the qdisc occupancy when arming; any change while
	// armed is a discontinuity (a pinned traffic event moved packets).
	occAtArm int
	// occHist holds the last K occupancy samples; a transiently deep
	// queue ages out of the band after K quiet windows.
	occHist history

	// rate* are the frozen per-second rates while armed; rem* carry the
	// fractional remainders of closed-form advancement so long runs of
	// skips lose no bytes to rounding.
	rateTxB, rateTxP, rateRxB, rateRxP float64
	remTxB, remTxP, remRxB, remRxP     float64
}

// watchedFlow tracks one flow's cumulative byte counter (typically a
// metrics.FlowMeter total): a stability signal, advanced through record
// during skips so rate series and goodput windows stay exact at every
// pinned epoch.
type watchedFlow struct {
	// Key identifies the flow for the Cebinae heavy-hitter feed; zero
	// when the flow is not tied to a Cebinae port.
	key    packet.FlowKey
	total  func() int64
	record func(t sim.Time, bytes int64)
	// activeFrom is the flow's start instant: once it has passed, the
	// flow must show positive throughput for the network to arm — a
	// started flow moving no bytes is a stall (every sender parked in
	// RTO after a synchronised loss burst), not quiescence, and freezing
	// it would skip the entire recovery.
	activeFrom sim.Time
	// pinFloor, when positive, is the goodput rate (bytes/second) this
	// flow must sustain for the network to count as quiescent: the rate
	// its topology provably pins it at (a dedicated access link). Below
	// the floor the flow is in a transient — ramping, draining, probing
	// — whose momentary flatness must not arm the fluid model. +Inf
	// marks a flow with no pinning evidence at all: permanently
	// unprovable, so the controller never arms.
	pinFloor float64

	hist history
	last int64
	rate float64 // frozen bytes/second while armed
	rem  float64
}

// Controller is the per-engine fluid fast-forward state machine. Not
// safe for concurrent use (single-goroutine, like the engine).
type Controller struct {
	eng *sim.Engine
	cfg Config

	devices []*watchedDevice
	flows   []*watchedFlow

	// ceb, when non-nil, receives closed-form egress accounting during
	// skips; cebWire converts flow goodput rates to wire rates.
	ceb     *core.Qdisc
	cebWire float64

	// discos are discontinuity counters (drops, CE marks, retransmits,
	// phase/config changes…): any delta resets detection or disarms.
	discos    []func() uint64
	discoLast []uint64

	shifters []netem.TimeShifter

	tick       sim.Timer
	armed      bool
	armedSpan  sim.Time // cumulative skipped time since the last arm
	off        bool
	started    bool
	shiftDelta sim.Time // current skip's delta, for the shiftArg closure

	stats Stats
}

// New returns a controller bound to eng. Wire up watches and shifters,
// then call Start.
func New(eng *sim.Engine, cfg Config) *Controller {
	c := &Controller{eng: eng, cfg: cfg.withDefaults()}
	return c
}

// WatchDevice adds dev as a stability signal and advancement target, and
// registers its drop counter as a discontinuity and the device (wire +
// qdisc state) as a time shifter.
func (c *Controller) WatchDevice(dev *netem.Device) {
	wd := &watchedDevice{dev: dev}
	for _, h := range []*history{&wd.histTxB, &wd.histTxP, &wd.histRxB, &wd.histRxP, &wd.occHist} {
		h.vals = make([]int64, c.cfg.Stable)
	}
	c.devices = append(c.devices, wd)
	c.WatchCounter(func() uint64 { return dev.Stats.DropPackets })
	c.AddShifter(dev)
}

// WatchDeviceContested is WatchDevice for a link that multiple watched
// flows contend for (a dumbbell bottleneck): on top of the stability
// band, the link may not arm while carrying ≥ UtilCap of its capacity.
// A contested link at capacity has contest-determined shares — flat
// rates across the K-window span can be the cruise stretch of a probing
// limit cycle longer than the span, which is exactly the state a frozen
// fluid model would distort. Single-flow edges legitimately running at
// their line rate (access-limited cells) stay plain WatchDevice.
func (c *Controller) WatchDeviceContested(dev *netem.Device) {
	c.WatchDevice(dev)
	c.devices[len(c.devices)-1].contested = true
}

// WatchFlow adds one flow's cumulative byte counter (total) as a
// stability signal; during skips record(t, bytes) is invoked at every hop
// target with the closed-form byte credit. key is used for the Cebinae
// heavy-hitter feed when WatchCebinae is also configured. activeFrom is
// the flow's start instant: after it, the flow must carry bytes for the
// network to count as quiescent (an all-zero stall blocks arming).
func (c *Controller) WatchFlow(key packet.FlowKey, activeFrom sim.Time, total func() int64, record func(t sim.Time, bytes int64)) {
	wf := &watchedFlow{key: key, activeFrom: activeFrom, total: total, record: record}
	wf.hist.vals = make([]int64, c.cfg.Stable)
	c.flows = append(c.flows, wf)
}

// WatchFlowPinned is WatchFlow for a flow whose stationary rate is known
// from topology — pinned by a dedicated access link below its bottleneck
// share. Quiescence additionally requires the flow's measured rate to
// sit at or above floor (bytes/second): momentary flatness below the
// pinned rate is a transient of the congestion dynamics (slow-start
// ramps, post-loss drains, BBR cruise phases between probes), exactly
// the state a frozen fluid model would extrapolate wrongly. Passing
// math.Inf(1) declares the flow has no pinning evidence at all, making
// the network permanently unprovable — the wiring idiom for multi-flow
// cells whose shares are contest-determined end to end.
func (c *Controller) WatchFlowPinned(key packet.FlowKey, activeFrom sim.Time, total func() int64, record func(t sim.Time, bytes int64), floor float64) {
	c.WatchFlow(key, activeFrom, total, record)
	c.flows[len(c.flows)-1].pinFloor = floor
}

// WatchCebinae routes closed-form egress accounting into a Cebinae port
// during skips: every watched flow's frozen goodput rate, scaled by
// wireFactor (wire bytes per goodput byte, e.g. MTU/MSS for TCP), is fed
// to the port's heavy-hitter cache and byte counters so control-plane
// recomputes across skipped stretches see steady traffic. The port's
// drop/mark/phase/config counters join the discontinuity set and its
// frozen queues the shifter set.
func (c *Controller) WatchCebinae(q *core.Qdisc, wireFactor float64) {
	c.ceb = q
	if wireFactor <= 0 {
		wireFactor = 1
	}
	c.cebWire = wireFactor
	c.WatchCounter(func() uint64 { return q.Stats.BufferDrops + q.Stats.LBFDrops + q.Stats.ECNMarked })
	c.WatchCounter(func() uint64 { return q.Stats.PhaseChanges + q.ConfigChanges })
	c.AddShifter(q)
}

// WatchCounter registers a discontinuity counter: while sampling, any
// change resets the stability histories; while armed, any change disarms
// at the current instant.
func (c *Controller) WatchCounter(fn func() uint64) {
	c.discos = append(c.discos, fn)
	c.discoLast = append(c.discoLast, 0)
}

// AddShifter registers a component holding absolute-time state the
// engine cannot see (connections, devices, sinks); each skip calls
// ShiftTime(delta) on it.
func (c *Controller) AddShifter(s netem.TimeShifter) {
	c.shifters = append(c.shifters, s)
}

// Start begins sampling. The tick is pinned: it is itself an epoch
// boundary, so a skip initiated elsewhere could never jump across a
// scheduled sample.
func (c *Controller) Start() {
	if c.started || c.off {
		return
	}
	c.started = true
	for i, fn := range c.discos {
		c.discoLast[i] = fn()
	}
	c.syncCounters()
	c.eng.ArmPinnedTimer(&c.tick, c.cfg.Window, (*fluidTick)(c), nil)
}

// ForceOff permanently disables the controller: an immediate fall back
// to packet level (if armed) and no further sampling. Used when the
// run's configuration turns out not to support fluid mode (e.g. the
// scenario was re-planned onto multiple shards mid-setup) and by tests.
func (c *Controller) ForceOff() {
	if c.off {
		return
	}
	c.off = true
	c.stats.ForcedOff = true
	if c.armed {
		c.disarm()
	}
	c.eng.StopTimer(&c.tick)
}

// Armed reports whether the controller is currently in fluid mode.
func (c *Controller) Armed() bool { return c.armed }

// Stats returns activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// fluidTick is the controller's timer handler view.
type fluidTick Controller

func (h *fluidTick) OnEvent(any) { (*Controller)(h).onTick() }

func (c *Controller) onTick() {
	if c.off {
		return
	}
	if c.armed {
		c.armedTick()
		return
	}
	c.sampleTick()
}

// discoDelta reports whether any discontinuity counter moved since the
// last check, updating the snapshots.
func (c *Controller) discoDelta() bool {
	moved := false
	for i, fn := range c.discos {
		if v := fn(); v != c.discoLast[i] {
			c.discoLast[i] = v
			moved = true
		}
	}
	return moved
}

// syncCounters re-bases every per-window delta source at the current
// counter values (after construction, a disarm, or a history reset).
func (c *Controller) syncCounters() {
	for _, wd := range c.devices {
		st := &wd.dev.Stats
		wd.lastTxB, wd.lastTxP = st.TxBytes, st.TxPackets
		wd.lastRxB, wd.lastRxP = st.RxBytes, st.RxPackets
	}
	for _, wf := range c.flows {
		wf.last = wf.total()
	}
}

// resetDetection clears all stability histories and re-bases counters.
func (c *Controller) resetDetection() {
	for _, wd := range c.devices {
		wd.histTxB.reset()
		wd.histTxP.reset()
		wd.histRxB.reset()
		wd.histRxP.reset()
		wd.occHist.reset()
	}
	for _, wf := range c.flows {
		wf.hist.reset()
	}
	c.syncCounters()
}

// sampleTick observes one packet-level window and arms when everything
// has been stable for K windows.
func (c *Controller) sampleTick() {
	c.stats.Windows++
	if c.discoDelta() {
		c.resetDetection()
		c.rearm(c.cfg.Window)
		return
	}
	stable := true
	for _, wd := range c.devices {
		st := &wd.dev.Stats
		// All four rings advance every window, but only TX bytes and
		// occupancy gate stability: the companion counters are
		// functionally dependent on them in steady state, and their
		// rings exist so arm-time rates come from the same stable span.
		wd.histTxB.push(int64(st.TxBytes - wd.lastTxB))
		wd.histTxP.push(int64(st.TxPackets - wd.lastTxP))
		wd.histRxB.push(int64(st.RxBytes - wd.lastRxB))
		wd.histRxP.push(int64(st.RxPackets - wd.lastRxP))
		wd.lastTxB, wd.lastTxP = st.TxBytes, st.TxPackets
		wd.lastRxB, wd.lastRxP = st.RxBytes, st.RxPackets
		wd.occHist.push(int64(wd.dev.Qdisc().BytesQueued()))
		if !wd.histTxB.stable(c.cfg.RateTol, c.cfg.AbsTol) ||
			wd.occHist.spread() > int64(c.cfg.QueueTol) {
			stable = false
		}
		if wd.contested && wd.histTxB.full() {
			capPerWindow := wd.dev.Rate() / 8 * c.cfg.Window.Seconds()
			if wd.histTxB.mean() >= c.cfg.UtilCap*capPerWindow {
				stable = false
			}
		}
	}
	for _, wf := range c.flows {
		v := wf.total()
		wf.hist.push(v - wf.last)
		wf.last = v
		if !wf.hist.stable(c.cfg.RateTol, c.cfg.AbsTol) {
			stable = false
		}
		// Positivity guard: a flow past its start that moved nothing all
		// window long is stalled, and a stall is not a steady state.
		if c.eng.Now() >= wf.activeFrom && wf.hist.total <= 0 {
			stable = false
		}
		// Pinned-rate guard: a flow below the rate its topology pins it
		// at is in a transient, however flat its last K windows look.
		if wf.pinFloor > 0 && wf.hist.full() &&
			wf.hist.mean() < wf.pinFloor*c.cfg.Window.Seconds() {
			stable = false
		}
	}
	if !stable {
		c.rearm(c.cfg.Window)
		return
	}
	c.arm()
	// Skip immediately: the first hop starts at this very sample epoch.
	c.armedTick()
}

// arm freezes the measured rates and enters fluid mode.
func (c *Controller) arm() {
	winSec := c.cfg.Window.Seconds()
	for _, wd := range c.devices {
		wd.rateTxB = wd.histTxB.mean() / winSec
		wd.rateTxP = wd.histTxP.mean() / winSec
		wd.rateRxB = wd.histRxB.mean() / winSec
		wd.rateRxP = wd.histRxP.mean() / winSec
		wd.remTxB, wd.remTxP, wd.remRxB, wd.remRxP = 0, 0, 0, 0
		wd.occAtArm = wd.dev.Qdisc().BytesQueued()
	}
	for _, wf := range c.flows {
		wf.rate = wf.hist.mean() / winSec
		wf.rem = 0
	}
	c.armed = true
	c.armedSpan = 0
	c.stats.Arms++
}

// disarm falls back to packet level and restarts detection from scratch.
func (c *Controller) disarm() {
	c.armed = false
	c.stats.Disarms++
	c.resetDetection()
}

// armedTick re-validates quiescence at the current instant and, when it
// holds, executes the next hop.
func (c *Controller) armedTick() {
	if c.discoDelta() || c.occPerturbed() || (c.cfg.Resample > 0 && c.armedSpan >= c.cfg.Resample) {
		c.disarm()
		c.rearm(c.cfg.Window)
		return
	}
	now := c.eng.Now()
	if now >= c.eng.Horizon() {
		// The run is over (events at exactly the horizon still
		// dispatch); re-arming at d=0 here would tick forever.
		return
	}
	target := now + c.cfg.MaxSkip
	if p := c.eng.NextPinnedTime(); p < target {
		target = p
	}
	if h := c.eng.Horizon(); h < target {
		target = h
	}
	if target <= now {
		// A pinned event at this instant has not dispatched yet; it
		// sorts before our re-armed tick (smaller seq), so the next tick
		// at this same instant makes progress.
		c.rearm(0)
		return
	}
	c.skip(target - now)
	// Hop again as soon as the control plane at the target instant (if
	// any) has run.
	c.rearm(0)
}

// occPerturbed reports whether any frozen queue's occupancy moved while
// armed — the signature of a pinned traffic event injecting or a control
// event releasing packets.
func (c *Controller) occPerturbed() bool {
	for _, wd := range c.devices {
		if wd.dev.Qdisc().BytesQueued() != wd.occAtArm {
			return true
		}
	}
	return false
}

// rearm schedules the next tick d from now (pinned, like Start).
func (c *Controller) rearm(d sim.Time) {
	if !c.off {
		c.eng.ArmPinnedTimer(&c.tick, d, (*fluidTick)(c), nil)
	}
}

// shiftArg translates packet payloads of shifted events (in-flight
// arrivals and transmissions).
type shiftArg Controller

func (s *shiftArg) apply(arg any) {
	if p, ok := arg.(*packet.Packet); ok {
		p.ShiftTime((*Controller)(s).shiftDelta)
	}
}

// skip executes one hop of d: jump the clock, shift frozen state, and
// advance counters in closed form at the frozen rates.
func (c *Controller) skip(d sim.Time) {
	c.shiftDelta = d
	c.eng.FastForward(d, (*shiftArg)(c).apply)
	for _, s := range c.shifters {
		s.ShiftTime(d)
	}
	sec := d.Seconds()
	for _, wd := range c.devices {
		st := &wd.dev.Stats
		st.TxBytes += creditU(wd.rateTxB*sec, &wd.remTxB)
		st.TxPackets += creditU(wd.rateTxP*sec, &wd.remTxP)
		st.RxBytes += creditU(wd.rateRxB*sec, &wd.remRxB)
		st.RxPackets += creditU(wd.rateRxP*sec, &wd.remRxP)
	}
	target := c.eng.Now()
	for _, wf := range c.flows {
		n := credit(wf.rate*sec, &wf.rem)
		if wf.record != nil {
			wf.record(target, n)
		}
	}
	if c.ceb != nil {
		c.feedCebinae(sec)
	}
	// Flow totals are not re-based here: the next disarm re-bases every
	// counter (syncCounters), so whether record feeds the underlying
	// total or a separate series, the first post-disarm window measures
	// only real packet-level bytes.
	c.armedSpan += d
	c.stats.Skips++
	c.stats.SkippedTime += d
}

// feedCebinae credits the skipped stretch's wire traffic to the Cebinae
// port in the watched flows' (deterministic) registration order.
func (c *Controller) feedCebinae(sec float64) {
	fb := make([]core.FlowBytes, 0, len(c.flows))
	wirePkt := float64(packet.MSS + packet.HeaderBytes)
	for _, wf := range c.flows {
		wire := wf.rate * c.cebWire * sec
		if wire <= 0 {
			continue
		}
		fb = append(fb, core.FlowBytes{
			Flow:    wf.key,
			Bytes:   int64(wire),
			Packets: uint64(wire / wirePkt),
		})
	}
	c.ceb.FluidAdvance(fb)
}

// credit converts a fractional byte amount into an integer credit,
// carrying the remainder so repeated skips lose nothing to rounding.
func credit(v float64, rem *float64) int64 {
	v += *rem
	n := int64(v)
	*rem = v - float64(n)
	return n
}

func creditU(v float64, rem *float64) uint64 {
	v += *rem
	n := uint64(v)
	*rem = v - float64(n)
	return n
}
