package fluid

import (
	"testing"

	"cebinae/internal/app"
	"cebinae/internal/core"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

// buildCebinaeLink is buildCBRLink with the forward qdisc swapped for a
// live Cebinae port, so the controller's egress feed (WatchCebinae →
// FluidAdvance) is exercised against real rotations — which are pinned
// deadlines every skip chain must stop at.
func buildCebinaeLink() (*sim.Engine, *netem.Device, *core.Qdisc, packet.FlowKey) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	ab, ba := w.Connect(a, b, netem.LinkConfig{RateBps: 50e6, Delay: sim.Duration(1e6)})
	cq := core.New(eng, 50e6, 128*1500, core.DefaultParams(50e6, 128*1500, sim.Duration(2e6)))
	cq.OnDrain = ab.Kick
	ab.SetQdisc(cq)
	ba.SetQdisc(qdisc.NewFIFO(1 << 20))
	a.AddRoute(b.ID, ab)
	b.AddRoute(a.ID, ba)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	b.Register(key, sink{})
	app.NewCBR(eng, a, key, 20e6, 0)
	return eng, ab, cq, key
}

// TestWatchCebinae: with a Cebinae port on the watched link, skips must
// still engage between the pinned rotation deadlines, and the port's
// counters — fed in closed form by FluidAdvance during skips — must end
// within 1% of the exact packet-level run's.
func TestWatchCebinae(t *testing.T) {
	engExact, _, cqExact, _ := buildCebinaeLink()
	engExact.Run(horizon)
	exactTx := cqExact.Stats.TxBytes
	if exactTx == 0 {
		t.Fatal("baseline moved no bytes")
	}

	eng, dev, cq, key := buildCebinaeLink()
	c := New(eng, Config{})
	c.WatchDevice(dev)
	// The flow total is the device's wire-byte counter, so the Cebinae
	// feed needs no goodput→wire scaling: wireFactor 1.
	c.WatchFlow(key, 0, func() int64 { return int64(dev.Stats.TxBytes) }, nil)
	c.WatchCebinae(cq, 1)
	c.Start()
	eng.Run(horizon)

	st := c.Stats()
	if st.Arms == 0 || st.Skips == 0 {
		t.Fatalf("controller never armed/skipped with a Cebinae port watched: %+v", st)
	}
	if st.SkippedTime < horizon/4 {
		t.Fatalf("too little skipped: %v of %v", st.SkippedTime, horizon)
	}
	ffTx := cq.Stats.TxBytes
	diff := float64(ffTx) - float64(exactTx)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(exactTx) > 0.01 {
		t.Fatalf("Cebinae port TxBytes error > 1%%: fluid=%d exact=%d", ffTx, exactTx)
	}
	if cq.Stats.Enqueued == 0 || cq.Stats.TxPackets == 0 {
		t.Fatalf("fluid feed left packet counters empty: %+v", cq.Stats)
	}
}
