package fluid

import (
	"testing"

	"cebinae/internal/app"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

type sink struct{}

func (sink) Deliver(p *packet.Packet) {}

// buildCBRLink wires a one-way 20 Mbps CBR flow over a 50 Mbps FIFO link
// — the canonical quiescent workload: constant rate, near-empty queue.
func buildCBRLink() (*sim.Engine, *netem.Device) {
	return buildCBRLinkAt(20e6)
}

// buildCBRLinkAt is buildCBRLink at an arbitrary offered rate.
func buildCBRLinkAt(rateBps float64) (*sim.Engine, *netem.Device) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	ab, ba := w.Connect(a, b, netem.LinkConfig{RateBps: 50e6, Delay: sim.Duration(1e6)})
	ab.SetQdisc(qdisc.NewFIFO(128 * 1500))
	ba.SetQdisc(qdisc.NewFIFO(1 << 20))
	a.AddRoute(b.ID, ab)
	b.AddRoute(a.ID, ba)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	b.Register(key, sink{})
	app.NewCBR(eng, a, key, rateBps, 0)
	return eng, ab
}

const horizon = sim.Time(2e9) // 2 s

func TestFastForwardSkipsAndFidelity(t *testing.T) {
	// Exact packet-level baseline.
	engExact, devExact := buildCBRLink()
	engExact.Run(horizon)
	exactTx := devExact.Stats.TxBytes
	exactEvents := engExact.Processed
	if exactTx == 0 {
		t.Fatal("baseline moved no bytes")
	}

	// Fluid run over the same scenario.
	eng, dev := buildCBRLink()
	c := New(eng, Config{})
	c.WatchDevice(dev)
	c.Start()
	eng.Run(horizon)

	st := c.Stats()
	if st.Arms == 0 || st.Skips == 0 {
		t.Fatalf("controller never armed/skipped: %+v", st)
	}
	if st.SkippedTime < horizon/2 {
		t.Fatalf("expected most of the run skipped, got %v of %v", st.SkippedTime, horizon)
	}
	if eng.Now() != horizon {
		t.Fatalf("clock did not reach horizon: %v", eng.Now())
	}
	if eng.Processed >= exactEvents {
		t.Fatalf("fluid run dispatched %d events, baseline %d — no work saved",
			eng.Processed, exactEvents)
	}
	ffTx := dev.Stats.TxBytes
	diff := float64(ffTx) - float64(exactTx)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(exactTx) > 0.01 {
		t.Fatalf("TxBytes error > 1%%: fluid=%d exact=%d", ffTx, exactTx)
	}
}

func TestFastForwardDeterministic(t *testing.T) {
	run := func() (uint64, Stats) {
		eng, dev := buildCBRLink()
		c := New(eng, Config{})
		c.WatchDevice(dev)
		c.Start()
		eng.Run(horizon)
		return dev.Stats.TxBytes, c.Stats()
	}
	tx1, st1 := run()
	tx2, st2 := run()
	if tx1 != tx2 || st1 != st2 {
		t.Fatalf("fluid runs diverged: tx %d vs %d, stats %+v vs %+v", tx1, tx2, st1, st2)
	}
}

func TestDiscontinuityDisarms(t *testing.T) {
	eng, dev := buildCBRLink()
	c := New(eng, Config{})
	c.WatchDevice(dev)
	var bumps uint64
	c.WatchCounter(func() uint64 { return bumps })
	// A pinned event mid-run models a control-plane discontinuity: the
	// skip chain must stop exactly at it, and the counter delta must
	// force a fall back to packet-level sampling.
	eng.AtPinned(sim.Duration(900e6), func() { bumps++ })
	c.Start()
	eng.Run(horizon)

	st := c.Stats()
	if st.Disarms == 0 {
		t.Fatalf("discontinuity did not disarm: %+v", st)
	}
	if st.Arms < 2 {
		t.Fatalf("controller should re-arm after quiescence is re-proven: %+v", st)
	}
}

func TestForceOff(t *testing.T) {
	eng, dev := buildCBRLink()
	c := New(eng, Config{})
	c.WatchDevice(dev)
	eng.AtPinned(sim.Duration(500e6), func() { c.ForceOff() })
	c.Start()
	eng.Run(horizon)

	st := c.Stats()
	if !st.ForcedOff {
		t.Fatal("ForcedOff not recorded")
	}
	if c.Armed() {
		t.Fatal("still armed after ForceOff")
	}
	if st.SkippedTime > sim.Duration(500e6) {
		t.Fatalf("skipped past the ForceOff point: %v", st.SkippedTime)
	}
	// The run continues at packet level after ForceOff, so the second
	// half still moves real bytes.
	if dev.Stats.TxBytes < uint64(20e6/8) { // ≥1 s worth at 20 Mbps
		t.Fatalf("too few bytes after forced fall-back: %d", dev.Stats.TxBytes)
	}
}

// TestContestedSaturationGuard: a link marked contested must refuse to
// arm while carrying ≥ UtilCap of its capacity — even under a perfectly
// stable load — because at capacity the shares are contest-determined
// and momentary stability can be a probing limit cycle's cruise phase.
// The same load on an uncontested watch arms, proving the guard (not
// the workload) is what blocked it.
func TestContestedSaturationGuard(t *testing.T) {
	run := func(contested bool) Stats {
		eng, dev := buildCBRLinkAt(48.5e6) // 97% of the 50 Mbps line
		c := New(eng, Config{})
		if contested {
			c.WatchDeviceContested(dev)
		} else {
			c.WatchDevice(dev)
		}
		c.Start()
		eng.Run(horizon)
		return c.Stats()
	}
	if st := run(true); st.Arms != 0 || st.Skips != 0 {
		t.Fatalf("contested link at 97%% utilisation armed: %+v", st)
	}
	if st := run(false); st.Arms == 0 {
		t.Fatalf("uncontested control never armed — guard test proves nothing: %+v", st)
	}
}

func TestWatchFlowStability(t *testing.T) {
	eng, dev := buildCBRLink()
	c := New(eng, Config{})
	c.WatchDevice(dev)
	var credited int64
	c.WatchFlow(packet.FlowKey{}, 0, func() int64 { return int64(dev.Stats.TxBytes) },
		func(at sim.Time, bytes int64) { credited += bytes })
	c.Start()
	eng.Run(horizon)

	st := c.Stats()
	if st.Skips == 0 {
		t.Fatalf("flow watch prevented arming: %+v", st)
	}
	if credited == 0 {
		t.Fatal("record never received fluid credit")
	}
	// The credit must equal the frozen rate × skipped time to within
	// per-skip rounding (the remainder carry loses < 1 byte overall).
	perSec := float64(credited) / st.SkippedTime.Seconds()
	if perSec < 20e6/8*0.99 || perSec > 20e6/8*1.01 {
		t.Fatalf("fluid credit rate %.0f B/s, want ≈ %.0f", perSec, 20e6/8)
	}
}
