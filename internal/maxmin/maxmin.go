// Package maxmin computes ideal max-min fair allocations via the classic
// water-filling algorithm (paper §3.1) and verifies allocations against the
// bottleneck-link characterisation of Definition 2. The experiments use it
// to produce the ideal allocation {r̂ᵢ} that Fig. 11's normalised JFI is
// measured against.
package maxmin

import (
	"fmt"
	"math"
)

// Network describes link capacities and flow routes for the allocator.
type Network struct {
	// Capacity[l] is the capacity of link l (any consistent unit).
	Capacity []float64
	// Routes[f] lists the link indices flow f traverses.
	Routes [][]int
	// Demand[f] optionally caps flow f's rate (0 or +Inf = unbounded).
	Demand []float64
	// Weight[f] optionally sets flow f's weight for *weighted* max-min
	// fairness (the WFQ generalisation the paper's footnote 2 mentions):
	// unconstrained flows grow proportionally to their weights. Empty or
	// non-positive entries default to 1.
	Weight []float64
}

// Validate checks indices and shapes.
func (n *Network) Validate() error {
	if len(n.Demand) != 0 && len(n.Demand) != len(n.Routes) {
		return fmt.Errorf("maxmin: %d demands for %d flows", len(n.Demand), len(n.Routes))
	}
	for f, route := range n.Routes {
		if len(route) == 0 {
			return fmt.Errorf("maxmin: flow %d has an empty route", f)
		}
		for _, l := range route {
			if l < 0 || l >= len(n.Capacity) {
				return fmt.Errorf("maxmin: flow %d references link %d of %d", f, l, len(n.Capacity))
			}
		}
	}
	for l, c := range n.Capacity {
		if c <= 0 {
			return fmt.Errorf("maxmin: link %d capacity %v must be positive", l, c)
		}
	}
	return nil
}

func (n *Network) demand(f int) float64 {
	if len(n.Demand) == 0 || n.Demand[f] <= 0 {
		return math.Inf(1)
	}
	return n.Demand[f]
}

func (n *Network) weight(f int) float64 {
	if len(n.Weight) == 0 || f >= len(n.Weight) || n.Weight[f] <= 0 {
		return 1
	}
	return n.Weight[f]
}

// Allocate runs progressive water-filling and returns the unique max-min
// fair rate vector.
func Allocate(n *Network) ([]float64, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nf := len(n.Routes)
	rates := make([]float64, nf)
	frozen := make([]bool, nf)
	remaining := append([]float64(nil), n.Capacity...)

	active := make([][]int, len(n.Capacity)) // flows per link, unfrozen
	for f, route := range n.Routes {
		for _, l := range route {
			active[l] = append(active[l], f)
		}
	}

	weightUnfrozen := func(l int) float64 {
		var w float64
		for _, f := range active[l] {
			if !frozen[f] {
				w += n.weight(f)
			}
		}
		return w
	}

	for left := nf; left > 0; {
		// Water level rises uniformly; each unfrozen flow f receives
		// weight(f)·increment. The binding constraint is the smallest of
		// (a) each link's capacity over its unfrozen weight sum and (b)
		// each unfrozen flow's demand headroom per unit weight.
		increment := math.Inf(1)
		for l := range n.Capacity {
			if w := weightUnfrozen(l); w > 0 {
				if share := remaining[l] / w; share < increment {
					increment = share
				}
			}
		}
		for f := 0; f < nf; f++ {
			if !frozen[f] {
				if headroom := (n.demand(f) - rates[f]) / n.weight(f); headroom < increment {
					increment = headroom
				}
			}
		}
		if math.IsInf(increment, 1) || increment < 0 {
			return nil, fmt.Errorf("maxmin: no binding constraint (increment %v)", increment)
		}

		// Raise all unfrozen flows and charge their links.
		for f := 0; f < nf; f++ {
			if frozen[f] {
				continue
			}
			delta := increment * n.weight(f)
			rates[f] += delta
			for _, l := range n.Routes[f] {
				remaining[l] -= delta
			}
		}
		// Freeze flows on saturated links or at their demand.
		const eps = 1e-9
		for f := 0; f < nf; f++ {
			if frozen[f] {
				continue
			}
			done := rates[f] >= n.demand(f)-eps
			if !done {
				for _, l := range n.Routes[f] {
					if remaining[l] <= eps*n.Capacity[l] {
						done = true
						break
					}
				}
			}
			if done {
				frozen[f] = true
				left--
			}
		}
	}
	return rates, nil
}

// VerifyDefinition2 checks an allocation against Definition 2: every flow
// must have a bottleneck link that is saturated and on which the flow's
// weight-normalised rate is maximal (within tolerance tol, relative to
// link capacity). With unit weights this is exactly the paper's statement.
func VerifyDefinition2(n *Network, rates []float64, tol float64) error {
	if len(rates) != len(n.Routes) {
		return fmt.Errorf("maxmin: %d rates for %d flows", len(rates), len(n.Routes))
	}
	load := make([]float64, len(n.Capacity))
	maxOnLink := make([]float64, len(n.Capacity))
	for f, route := range n.Routes {
		norm := rates[f] / n.weight(f)
		for _, l := range route {
			load[l] += rates[f]
			if norm > maxOnLink[l] {
				maxOnLink[l] = norm
			}
		}
	}
	for f, route := range n.Routes {
		if rates[f] >= n.demand(f)-tol {
			continue // demand-bounded flows need no bottleneck
		}
		ok := false
		norm := rates[f] / n.weight(f)
		for _, l := range route {
			saturated := load[l] >= n.Capacity[l]*(1-tol)
			largest := norm >= maxOnLink[l]*(1-tol)
			if saturated && largest {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("maxmin: flow %d (rate %v) has no bottleneck link", f, rates[f])
		}
	}
	return nil
}
