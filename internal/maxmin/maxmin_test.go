package maxmin

import (
	"math"
	"testing"
	"testing/quick"

	"cebinae/internal/sim"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6*math.Max(1, math.Abs(b)) }

func TestSingleLinkEqualShare(t *testing.T) {
	n := &Network{Capacity: []float64{100}, Routes: [][]int{{0}, {0}, {0}, {0}}}
	rates, err := Allocate(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rates {
		if !almostEq(r, 25) {
			t.Fatalf("equal share violated: %v", rates)
		}
	}
	if err := VerifyDefinition2(n, rates, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestDemandBounded(t *testing.T) {
	n := &Network{
		Capacity: []float64{100},
		Routes:   [][]int{{0}, {0}},
		Demand:   []float64{10, 0},
	}
	rates, err := Allocate(n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rates[0], 10) || !almostEq(rates[1], 90) {
		t.Fatalf("demand-bounded allocation wrong: %v", rates)
	}
}

// TestPaperFig2b reproduces the paper's Figure 2b example: ℓ-chain where
// A (via ℓ1,ℓ3,ℓ4) shares with B (ℓ1,ℓ2) and C (ℓ2,ℓ5); capacities
// ℓ1=20, ℓ2=10, ℓ3=20, ℓ4=20, ℓ5=2. Expected: C=2 (ℓ5), B=8 (ℓ2),
// A=12 (ℓ1).
func TestPaperFig2b(t *testing.T) {
	n := &Network{
		Capacity: []float64{20, 10, 20, 20, 2},
		Routes: [][]int{
			{0, 2, 3}, // A
			{0, 1},    // B
			{1, 4},    // C
		},
	}
	rates, err := Allocate(n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rates[2], 2) || !almostEq(rates[1], 8) || !almostEq(rates[0], 12) {
		t.Fatalf("Fig.2b allocation wrong: %v", rates)
	}
	if err := VerifyDefinition2(n, rates, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestParkingLotIdeal reproduces the Fig. 11 topology's ideal allocation:
// 8 long flows over 3 links of 100, cross traffic 2/8/4 per hop. Water
// filling: hop 2 (8 long + 8 cross = 16 flows) binds at 6.25; then Bic get
// (100−50)/2 = 25 and Cubic (100−50)/4 = 12.5.
func TestParkingLotIdeal(t *testing.T) {
	n := &Network{Capacity: []float64{100, 100, 100}}
	for i := 0; i < 8; i++ {
		n.Routes = append(n.Routes, []int{0, 1, 2})
	}
	for i := 0; i < 2; i++ {
		n.Routes = append(n.Routes, []int{0})
	}
	for i := 0; i < 8; i++ {
		n.Routes = append(n.Routes, []int{1})
	}
	for i := 0; i < 4; i++ {
		n.Routes = append(n.Routes, []int{2})
	}
	rates, err := Allocate(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !almostEq(rates[i], 6.25) {
			t.Fatalf("long flow %d: %v", i, rates[i])
		}
	}
	for i := 8; i < 10; i++ {
		if !almostEq(rates[i], 25) {
			t.Fatalf("bic flow %d: %v", i, rates[i])
		}
	}
	for i := 10; i < 18; i++ {
		if !almostEq(rates[i], 6.25) {
			t.Fatalf("vegas flow %d: %v", i, rates[i])
		}
	}
	for i := 18; i < 22; i++ {
		if !almostEq(rates[i], 12.5) {
			t.Fatalf("cubic flow %d: %v", i, rates[i])
		}
	}
	if err := VerifyDefinition2(n, rates, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	cases := []*Network{
		{Capacity: []float64{10}, Routes: [][]int{{1}}},                         // bad link index
		{Capacity: []float64{10}, Routes: [][]int{{}}},                          // empty route
		{Capacity: []float64{0}, Routes: [][]int{{0}}},                          // zero capacity
		{Capacity: []float64{1}, Routes: [][]int{{0}}, Demand: []float64{1, 2}}, // shape
	}
	for i, n := range cases {
		if _, err := Allocate(n); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

// TestWaterFillingInvariants: for random single-path topologies the
// allocation must (a) respect every capacity, (b) satisfy Definition 2,
// (c) be Pareto-efficient in the sense that every link is either saturated
// or all its flows are demand-bounded.
func TestWaterFillingInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		nLinks := 1 + rng.Intn(6)
		nFlows := 1 + rng.Intn(10)
		n := &Network{}
		for i := 0; i < nLinks; i++ {
			n.Capacity = append(n.Capacity, 1+rng.Float64()*99)
		}
		for i := 0; i < nFlows; i++ {
			hops := 1 + rng.Intn(nLinks)
			perm := rng.Perm(nLinks)
			n.Routes = append(n.Routes, perm[:hops])
		}
		rates, err := Allocate(n)
		if err != nil {
			return false
		}
		load := make([]float64, nLinks)
		for fi, route := range n.Routes {
			if rates[fi] < 0 {
				return false
			}
			for _, l := range route {
				load[l] += rates[fi]
			}
		}
		for l := range load {
			if load[l] > n.Capacity[l]*(1+1e-9) {
				return false
			}
		}
		return VerifyDefinition2(n, rates, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxMinUniqueDefinition1: perturbing any flow up in a verified
// allocation must violate some capacity or require a smaller flow to give
// way (spot-check of Definition 1 on the Fig. 2b example).
func TestMaxMinUniqueDefinition1(t *testing.T) {
	n := &Network{
		Capacity: []float64{20, 10, 20, 20, 2},
		Routes:   [][]int{{0, 2, 3}, {0, 1}, {1, 4}},
	}
	rates, _ := Allocate(n)
	// Raising C (the smallest flow) is impossible without violating ℓ5.
	load5 := rates[2]
	if load5+0.001 <= 2 {
		t.Fatalf("C should be pinned at ℓ5's capacity: %v", rates)
	}
}

// TestWeightedSingleLink: weights 1:3 split a single link 25/75 (the WFQ
// generalisation of footnote 2).
func TestWeightedSingleLink(t *testing.T) {
	n := &Network{
		Capacity: []float64{100},
		Routes:   [][]int{{0}, {0}},
		Weight:   []float64{1, 3},
	}
	rates, err := Allocate(n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rates[0], 25) || !almostEq(rates[1], 75) {
		t.Fatalf("weighted split wrong: %v", rates)
	}
	if err := VerifyDefinition2(n, rates, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedWithDemand: a weighted flow capped by demand releases its
// unused share to the others.
func TestWeightedWithDemand(t *testing.T) {
	n := &Network{
		Capacity: []float64{100},
		Routes:   [][]int{{0}, {0}, {0}},
		Weight:   []float64{2, 1, 1},
		Demand:   []float64{10, 0, 0},
	}
	rates, err := Allocate(n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rates[0], 10) || !almostEq(rates[1], 45) || !almostEq(rates[2], 45) {
		t.Fatalf("weighted+demand allocation wrong: %v", rates)
	}
}

// TestWeightedDefaultsToUnit: absent/invalid weights behave as 1.
func TestWeightedDefaultsToUnit(t *testing.T) {
	n := &Network{
		Capacity: []float64{90},
		Routes:   [][]int{{0}, {0}, {0}},
		Weight:   []float64{0, -5, 1},
	}
	rates, err := Allocate(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rates {
		if !almostEq(r, 30) {
			t.Fatalf("unit-weight fallback wrong: %v", rates)
		}
	}
}
