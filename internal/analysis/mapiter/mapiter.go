// Package mapiter flags `range` loops over maps whose bodies perform
// order-sensitive work. Go randomises map iteration order per range
// statement, so any of the following inside a map range is a
// nondeterminism bug unless a total order is imposed elsewhere:
//
//   - scheduling simulator events (event sequence numbers embed arrival
//     order, so two runs diverge even at equal timestamps);
//   - writing output (reports, CSV, trace lines);
//   - accumulating into an outer slice that is never deterministically
//     sorted afterwards in the same function;
//   - selecting a winner / folding into an outer scalar whose result can
//     depend on visit order (the historical FQ-CoDel drop-victim bug:
//     "pick the fattest flow" with ties broken by map order).
//
// All four hazard classes are followed through helpers: a call inside the
// range body that resolves to a function, method, or function-literal
// binding declared in the same package has its body scanned (transitively,
// memoized, cycle-safe), so hiding eng.Schedule — or an append to a
// captured slice — one hop down does not silence the diagnostic. The
// report names the helper chain. Accumulation and selection hazards in a
// helper body are writes to variables declared *outside* the helper
// (captured or package-level) fed by the helper's parameters, and are
// reported only when the call site actually passes loop-derived values;
// an accumulation is forgiven when the caller deterministically sorts the
// target slice after the loop, exactly like the direct case.
//
// The analyzer recognises the collect-then-sort idiom (append inside the
// loop, sort.*/slices.* on the same slice after it) and does not flag it.
// Loops whose selection is genuinely order-free because the comparison is
// a total order must say so with a `//lint:ignore mapiter <reason>`
// directive — the annotation is the reviewable artifact.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"cebinae/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag map-range loops that schedule events, write output, or accumulate/select " +
		"order-sensitively without a deterministic sort",
	Run: run,
}

// scheduleMethods are sim.Engine scheduling entry points whose call order
// is observable (FIFO tie-breaking at equal timestamps). "At" is matched
// only on receivers from package sim to avoid colliding with accessors.
var scheduleMethods = map[string]bool{
	"Schedule":      true,
	"ScheduleStd":   true,
	"ScheduleCall":  true,
	"ScheduleOwned": true,
	"AtCall":        true,
	"ArmTimer":      true,
	"ArmTimerAt":    true,
	"RunUntil":      true,
}

// writerMethods are method names that emit output in call order.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

var fmtPrinters = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

func run(pass *analysis.Pass) error {
	h := newHelperScanner(pass)
	for _, f := range pass.Files {
		// enclosing tracks the innermost function body so the
		// collect-then-sort idiom can look downstream of the loop.
		var funcBodies []*ast.BlockStmt
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcBodies = append(funcBodies, n.Body)
					ast.Inspect(n.Body, visit)
					funcBodies = funcBodies[:len(funcBodies)-1]
				}
				return false
			case *ast.FuncLit:
				funcBodies = append(funcBodies, n.Body)
				ast.Inspect(n.Body, visit)
				funcBodies = funcBodies[:len(funcBodies)-1]
				return false
			case *ast.RangeStmt:
				if isMapRange(pass, n) && len(funcBodies) > 0 {
					checkMapRange(pass, h, n, funcBodies[len(funcBodies)-1])
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *analysis.Pass, h *helperScanner, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	loopVars := rangeVarObjects(pass, rs)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, h, rs, n, loopVars, funcBody)
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, loopVars, funcBody)
		}
		return true
	})
}

// rangeVarObjects returns the objects of the loop's key/value variables.
func rangeVarObjects(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

func checkCall(pass *analysis.Pass, h *helperScanner, rs *ast.RangeStmt, call *ast.CallExpr, loopVars map[types.Object]bool, funcBody *ast.BlockStmt) {
	if hz := directHazard(pass, call); hz != nil {
		report(pass, rs, "", hz)
		return
	}
	// Not itself a hazard: if the callee is a helper declared in this
	// package, the hazard may be one hop (or several) down — the loop body
	// still drives it in iteration order.
	hz := h.classify(h.callee(call))
	if hz == nil {
		return
	}
	switch hz.kind {
	case hazardAccumulate, hazardSelect:
		// Parameter-fed hazards matter only when the call actually feeds
		// loop-derived values in; a loop-invariant argument produces the
		// same contents regardless of visit order.
		if !callArgsUse(pass, call, loopVars) {
			return
		}
		if hz.kind == hazardAccumulate && sortedAfter(pass, rs, funcBody, hz.target) {
			return
		}
	}
	report(pass, rs, calleeName(call), hz)
}

// report emits the diagnostic for a hazard reached from a map range,
// optionally through a named helper.
func report(pass *analysis.Pass, rs *ast.RangeStmt, helper string, hz *helperHazard) {
	path := hz.path
	if helper != "" {
		path = helper + " → " + path
	}
	switch hz.kind {
	case hazardSchedule:
		pass.Reportf(rs.Pos(), "map range schedules events via %s in iteration order; event sequence numbers will differ between runs", path)
	case hazardOutput:
		pass.Reportf(rs.Pos(), "map range writes output via %s in iteration order; iterate a sorted copy of the keys", path)
	case hazardAccumulate:
		pass.Reportf(rs.Pos(), "map range accumulates into %s via %s in iteration order without a deterministic sort afterwards", hz.target.Name(), path)
	default:
		pass.Reportf(rs.Pos(), "map range selects into %s via %s in iteration order; impose a total order (deterministic tie-break) and annotate, or sort the keys", hz.target.Name(), path)
	}
}

// hazardKind classifies why driving a call from a map range is
// order-sensitive.
type hazardKind int

const (
	hazardSchedule   hazardKind = iota // scheduling call — event order observable
	hazardOutput                       // output writer — byte order observable
	hazardAccumulate                   // append to a variable outside the helper
	hazardSelect                       // plain assignment to a variable outside the helper
)

// helperHazard classifies what a call (or a helper's body, transitively)
// does that makes driving it from a map range order-sensitive.
type helperHazard struct {
	kind   hazardKind
	path   string       // the offending call, prefixed by the helper chain
	target types.Object // accumulate/select: the written outer variable
}

// directHazard reports whether call is itself a scheduling or output
// call — the same recognitions checkCall has always applied, factored so
// helper bodies are scanned with identical rules.
func directHazard(pass *analysis.Pass, call *ast.CallExpr) *helperHazard {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	// Package-level selectors: fmt printers are hazards; any other
	// package-level call is judged by its own body (if in this package)
	// rather than its name.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && fmtPrinters[name] {
				return &helperHazard{kind: hazardOutput, path: "fmt." + name}
			}
			return nil
		}
	}
	if writerMethods[name] {
		return &helperHazard{kind: hazardOutput, path: name}
	}
	if scheduleMethods[name] || (name == "At" && receiverFromSim(pass, sel)) {
		return &helperHazard{kind: hazardSchedule, path: name}
	}
	return nil
}

// callArgsUse reports whether any argument of call mentions one of objs.
func callArgsUse(pass *analysis.Pass, call *ast.CallExpr, objs map[types.Object]bool) bool {
	for _, a := range call.Args {
		if usesAny(pass, a, objs) {
			return true
		}
	}
	return false
}

// helperBody is a scannable helper: a declared function/method or a
// function literal bound once to a variable. extent is the source range
// within which the helper's own declarations (params, locals) live — a
// written variable declared outside it is captured or package-level
// state, the raw material of accumulation/selection hazards.
type helperBody struct {
	body       *ast.BlockStmt
	start, end token.Pos
	params     map[types.Object]bool
}

// helperScanner resolves calls to functions, methods, and function-literal
// bindings declared in the package under analysis and classifies their
// bodies — transitively and memoized — so a hazard buried in a helper is
// attributed to the map range that drives it. Self- and mutual recursion
// terminate via the in-progress memo entry (a cycle with no hazard on it
// is clean).
type helperScanner struct {
	pass  *analysis.Pass
	decls map[types.Object]*helperBody
	memo  map[types.Object]*helperHazard
}

func newHelperScanner(pass *analysis.Pass) *helperScanner {
	h := &helperScanner{
		pass:  pass,
		decls: make(map[types.Object]*helperBody),
		memo:  make(map[types.Object]*helperHazard),
	}
	rebound := make(map[types.Object]bool)
	bind := func(nameID *ast.Ident, lit *ast.FuncLit) {
		obj := pass.ObjectOf(nameID)
		if obj == nil {
			return
		}
		if _, dup := h.decls[obj]; dup {
			// A variable holding different literals at different times has
			// no single body to scan; drop it.
			rebound[obj] = true
			return
		}
		h.decls[obj] = &helperBody{
			body:   lit.Body,
			start:  lit.Pos(),
			end:    lit.End(),
			params: paramObjects(pass, lit.Type),
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					h.decls[obj] = &helperBody{
						body:   fd.Body,
						start:  fd.Pos(),
						end:    fd.End(),
						params: paramObjects(pass, fd.Type),
					}
				}
			}
		}
		// Function-literal bindings: add := func(...) {...}, at any depth.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
						bind(id, lit)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if lit, ok := n.Values[i].(*ast.FuncLit); ok {
							bind(name, lit)
						}
					}
				}
			}
			return true
		})
	}
	for obj := range rebound {
		delete(h.decls, obj)
	}
	return h
}

// paramObjects collects the objects of a function type's parameters.
func paramObjects(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.ObjectOf(name); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// callee resolves the object a call expression invokes: a plain
// identifier (top-level function) or a selector (method or qualified
// function). Builtins, conversions, and function-typed values resolve to
// objects with no recorded declaration and classify as clean.
func (h *helperScanner) callee(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return h.pass.ObjectOf(fun)
	case *ast.SelectorExpr:
		return h.pass.ObjectOf(fun.Sel)
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "?"
}

// classify returns the hazard a call to obj reaches, or nil when its body
// (and everything it calls in this package) is order-free.
func (h *helperScanner) classify(obj types.Object) *helperHazard {
	if obj == nil {
		return nil
	}
	if res, seen := h.memo[obj]; seen {
		return res
	}
	hb := h.decls[obj]
	if hb == nil {
		h.memo[obj] = nil
		return nil
	}
	// In-progress marker: recursion into a cycle sees "clean", which is
	// correct — any hazard on the cycle is found by the outermost scan.
	h.memo[obj] = nil
	var found *helperHazard
	ast.Inspect(hb.body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if hz := directHazard(h.pass, n); hz != nil {
				found = hz
				return false
			}
			sub := h.classify(h.callee(n))
			if sub == nil {
				return true
			}
			switch sub.kind {
			case hazardAccumulate, hazardSelect:
				// A parameter-fed hazard propagates only when this helper
				// feeds its own parameters in, and the written variable
				// outlives this helper too — a target local to this frame
				// is rebuilt per call and carries no cross-iteration state.
				if !callArgsUse(h.pass, n, hb.params) || !hb.outside(sub.target) {
					return true
				}
			}
			found = &helperHazard{kind: sub.kind, path: calleeName(n) + " → " + sub.path, target: sub.target}
			return false
		case *ast.AssignStmt:
			found = h.classifyAssign(n, hb)
			return found == nil
		}
		return true
	})
	h.memo[obj] = found
	return found
}

// classifyAssign recognises accumulation and selection hazards inside a
// helper body: writes to a variable declared outside the helper whose
// value derives from the helper's parameters.
func (h *helperScanner) classifyAssign(as *ast.AssignStmt, hb *helperBody) *helperHazard {
	if as.Tok == token.DEFINE {
		return nil
	}
	for i, lhs := range as.Lhs {
		obj := rootObject(h.pass, lhs)
		if obj == nil || !hb.outside(obj) {
			continue
		}
		// Keyed writes (m[k] = v) are per-key independent, as in the
		// direct case.
		if _, ok := lhs.(*ast.IndexExpr); ok {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(h.pass, call) {
			if callArgsUse(h.pass, call, hb.params) {
				return &helperHazard{kind: hazardAccumulate, path: "append", target: obj}
			}
			continue
		}
		if as.Tok == token.ASSIGN && usesAny(h.pass, rhs, hb.params) {
			return &helperHazard{kind: hazardSelect, path: "assignment", target: obj}
		}
	}
	return nil
}

// outside reports whether obj is declared outside the helper's extent.
func (hb *helperBody) outside(obj types.Object) bool {
	return obj != nil && (obj.Pos() < hb.start || obj.Pos() > hb.end)
}

// receiverFromSim reports whether sel's receiver type is declared in a
// package named "sim" (the engine, whose At is a scheduling call).
func receiverFromSim(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "sim"
}

func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, loopVars map[types.Object]bool, funcBody *ast.BlockStmt) {
	if as.Tok == token.DEFINE {
		return
	}
	for i, lhs := range as.Lhs {
		obj := rootObject(pass, lhs)
		if obj == nil || loopVars[obj] || !declaredOutside(obj, rs) {
			continue
		}
		// Writes through an index expression (next[k] = v) are per-key
		// independent; only scalar/slice targets are order hazards.
		if _, ok := lhs.(*ast.IndexExpr); ok {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			if !sortedAfter(pass, rs, funcBody, obj) {
				pass.Reportf(rs.Pos(),
					"map range accumulates into %s in iteration order without a deterministic sort afterwards", obj.Name())
			}
			continue
		}
		if as.Tok != token.ASSIGN {
			// Op-assignments: integer accumulation is commutative and
			// exact; float / string accumulation is order-sensitive.
			if bt, ok := obj.Type().Underlying().(*types.Basic); ok && bt.Info()&types.IsInteger != 0 {
				continue
			}
			pass.Reportf(rs.Pos(),
				"map range folds into %s (%s) in iteration order; float/string accumulation is order-sensitive", obj.Name(), obj.Type())
			continue
		}
		// Plain assignment: a selection whose result may depend on which
		// entry was visited last (the FQ-CoDel drop-victim shape) — only
		// when the assigned value derives from the loop variables.
		if usesAny(pass, rhs, loopVars) {
			pass.Reportf(rs.Pos(),
				"map range selects into %s in iteration order; impose a total order (deterministic tie-break) and annotate, or sort the keys", obj.Name())
		}
	}
}

// rootObject resolves the base identifier of an assignable expression
// (x, x.f.g → x). Index expressions return nil via the caller's filter.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func usesAny(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, somewhere after the range statement in the
// enclosing function body, obj is passed to a sort.* or slices.* call
// (including inside the comparison closure of sort.Slice) — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesAny(pass, arg, map[types.Object]bool{obj: true}) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
