// Package mapiter_clean holds the order-free map-iteration idioms the
// analyzer must accept.
package mapiter_clean

import (
	"sort"

	"sim"
)

type flowKey struct{ src, dst int }

type state struct {
	rate  float64
	bytes float64
}

// Collect-then-sort restores a total order before anyone observes it.
func sortedKeys(m map[flowKey]int) []flowKey {
	out := make([]flowKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].src != out[j].src {
			return out[i].src < out[j].src
		}
		return out[i].dst < out[j].dst
	})
	return out
}

// Per-key writes into another map are independent of visit order.
func rekey(rates map[flowKey]float64, old map[flowKey]*state) map[flowKey]*state {
	next := make(map[flowKey]*state, len(rates))
	for f, r := range rates {
		if st, ok := old[f]; ok {
			st.rate = r
			next[f] = st
		} else {
			next[f] = &state{rate: r}
		}
	}
	return next
}

// Mutating each entry through the value pointer is per-entry independent.
func decay(states map[flowKey]*state, dt float64) {
	for _, st := range states {
		st.bytes -= st.rate * dt
		if st.bytes < 0 {
			st.bytes = 0
		}
	}
}

// Integer accumulation is commutative and exact: order cannot matter.
func totalBytes(counts map[flowKey]int64) int64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	return total
}

// Stopping timers in a map range is fine: StopTimer consumes no sequence
// number (unlike ArmTimer), so visit order leaves no trace in the event
// stream.
func stopAll(eng *sim.Engine, timers map[flowKey]*sim.Timer) {
	for _, t := range timers {
		eng.StopTimer(t)
	}
}

// Helpers whose bodies are order-free must not be flagged when called
// from a map range — stopping a timer consumes no sequence number.
func stop(eng *sim.Engine, t *sim.Timer) {
	eng.StopTimer(t)
}

func stopAllViaHelper(eng *sim.Engine, timers map[flowKey]*sim.Timer) {
	for _, t := range timers {
		stop(eng, t)
	}
}

// Mutually recursive helpers with no hazard anywhere on the cycle: the
// scanner's memoization must terminate and classify both as clean.
func evenDecay(st *state, n int) {
	if n > 0 {
		oddDecay(st, n-1)
	}
}

func oddDecay(st *state, n int) {
	st.bytes *= 0.5
	if n > 0 {
		evenDecay(st, n-1)
	}
}

func decayAll(states map[flowKey]*state) {
	for _, st := range states {
		evenDecay(st, 4)
	}
}

// Deleting while ranging is sanctioned Go and per-key independent.
func prune(counts map[flowKey]int64) {
	for k, n := range counts {
		if n == 0 {
			delete(counts, k)
		}
	}
}

// Captured-slice accumulation through a closure is forgiven when the
// caller restores a total order after the loop, exactly like the inline
// collect-then-sort idiom.
func keysViaClosureSorted(m map[flowKey]int) []flowKey {
	var out []flowKey
	add := func(k flowKey) { out = append(out, k) }
	for k := range m {
		add(k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].src != out[j].src {
			return out[i].src < out[j].src
		}
		return out[i].dst < out[j].dst
	})
	return out
}

// An integer counter bumped through a closure is commutative; no order
// leaks into the result.
func countViaHelper(m map[flowKey]int) int {
	n := 0
	bump := func() { n++ }
	for range m {
		bump()
	}
	return n
}

// A closure fed only loop-invariant values produces the same contents
// regardless of visit order.
func padTo(m map[flowKey]int) []string {
	var out []string
	add := func(s string) { out = append(out, s) }
	for range m {
		add("pad")
	}
	return out
}
