// Package sim is a fixture stub of the engine's scheduling surface; the
// analyzer matches scheduling calls by method name and receiver package
// name, so this stub stands in for cebinae/internal/sim.
package sim

type Time int64

type Handler interface{ OnEvent(arg any) }

type Engine struct{ now Time }

func (e *Engine) Now() Time                             { return e.now }
func (e *Engine) Schedule(d Time, f func())             {}
func (e *Engine) At(t Time, f func())                   {}
func (e *Engine) ScheduleCall(d Time, h Handler, a any) {}
func (e *Engine) RunUntil(t Time)                       {}

type Timer struct{ armed bool }

func (e *Engine) ArmTimer(t *Timer, d Time, h Handler, a any)    {}
func (e *Engine) ArmTimerAt(t *Timer, at Time, h Handler, a any) {}
func (e *Engine) StopTimer(t *Timer) bool                        { return t.armed }
