// Package mapiter_bad reproduces the order-sensitive map-iteration shapes
// the analyzer must reject — including the historical FQ-CoDel
// drop-victim bug (PR 1): pick-the-fattest-flow over a map range with
// ties falling to whatever entry the runtime happened to visit last.
package mapiter_bad

import (
	"fmt"
	"io"

	"sim"
)

type flowKey struct{ src, dst int }

type fqFlow struct {
	bytes   int
	backlog int
}

// The PR-1 bug: equal backlogs are the common case with homogeneous
// flows, and without a deterministic tie-break the victim — and therefore
// the whole packet future — depends on map iteration order.
func fattestFlow(flows map[flowKey]*fqFlow) *fqFlow {
	var fat *fqFlow
	for _, fl := range flows { // want `map range selects into fat in iteration order`
		if fat == nil || fl.bytes > fat.bytes {
			fat = fl
		}
	}
	return fat
}

// Scheduling from a map range embeds the visit order in event sequence
// numbers: two runs produce different tie-breaks at equal timestamps.
func kickAll(eng *sim.Engine, waiters map[flowKey]func()) {
	for _, w := range waiters { // want `map range schedules events via Schedule in iteration order`
		eng.Schedule(sim.Time(1), w)
	}
}

// At on a sim.Engine receiver is a scheduling call too ("At" alone is too
// common a name, so the analyzer requires the sim receiver for it).
func armAll(eng *sim.Engine, deadlines map[flowKey]sim.Time) {
	for _, d := range deadlines { // want `map range schedules events via At in iteration order`
		eng.At(d, func() {})
	}
}

// Arming timers from a map range is scheduling too: each ArmTimer
// consumes a sequence number, so visit order leaks into equal-instant
// tie-breaking exactly as Schedule's does.
func armTimers(eng *sim.Engine, timers map[flowKey]*sim.Timer, h sim.Handler) {
	for _, t := range timers { // want `map range schedules events via ArmTimer in iteration order`
		eng.ArmTimer(t, sim.Time(1), h, nil)
	}
}

// Report lines written in map order differ between runs byte-for-byte.
func dumpCounts(w io.Writer, counts map[flowKey]int) {
	for k, n := range counts { // want `map range writes output via fmt\.Fprintf in iteration order`
		fmt.Fprintf(w, "%v %d\n", k, n)
	}
}

// Accumulating into an outer slice with no sort downstream leaves the
// caller holding a randomly-ordered result.
func keys(m map[flowKey]int) []flowKey {
	var out []flowKey
	for k := range m { // want `map range accumulates into out in iteration order without a deterministic sort`
		out = append(out, k)
	}
	return out
}

// Float accumulation is order-sensitive in the last ulp; summing rates in
// map order makes reports flap across runs.
func totalRate(rates map[flowKey]float64) float64 {
	var total float64
	for _, r := range rates { // want `map range folds into total \(float64\) in iteration order`
		total += r
	}
	return total
}

// kick is an innocent-looking helper whose body schedules; calling it
// from a map range is the same bug as calling Schedule inline, one hop
// removed.
func kick(eng *sim.Engine, w func()) {
	eng.Schedule(sim.Time(1), w)
}

func kickAllViaHelper(eng *sim.Engine, waiters map[flowKey]func()) {
	for _, w := range waiters { // want `map range schedules events via kick → Schedule in iteration order`
		kick(eng, w)
	}
}

// The hazard can hide arbitrarily deep: wake → kick → Schedule. The
// analyzer follows same-package helper chains and names the path.
func wake(eng *sim.Engine, w func()) {
	kick(eng, w)
}

func kickAllTwoDeep(eng *sim.Engine, waiters map[flowKey]func()) {
	for _, w := range waiters { // want `map range schedules events via wake → kick → Schedule in iteration order`
		wake(eng, w)
	}
}

// Methods are helpers too: a reporter whose emit writes output.
type reporter struct{ w io.Writer }

func (r *reporter) emit(k flowKey, n int) {
	fmt.Fprintf(r.w, "%v %d\n", k, n)
}

func dumpViaMethod(r *reporter, counts map[flowKey]int) {
	for k, n := range counts { // want `map range writes output via emit → fmt\.Fprintf in iteration order`
		r.emit(k, n)
	}
}

// A replay-shaped flow record: the timer is embedded in the arena record,
// not heap-allocated per arm.
type replayFlow struct {
	timer sim.Timer
	gap   sim.Time
}

// Ranging over a map-of-flows index and arming each record's embedded
// timer leaks visit order into the wheel's equal-instant tie-breaking —
// the million-flow version of armTimers above.
func paceAll(eng *sim.Engine, flows map[flowKey]*replayFlow, h sim.Handler) {
	for _, fl := range flows { // want `map range schedules events via ArmTimer in iteration order`
		eng.ArmTimer(&fl.timer, fl.gap, h, fl)
	}
}

// A function-literal helper appending to a captured slice is the
// accumulation hazard one hop down: the closure writes `out` in whatever
// order the loop visits.
func keysViaClosure(m map[flowKey]int) []flowKey {
	var out []flowKey
	add := func(k flowKey) { out = append(out, k) }
	for k := range m { // want `map range accumulates into out via add → append in iteration order without a deterministic sort`
		add(k)
	}
	return out
}

// A named helper folding a winner into package state is the selection bug
// hidden behind a call.
var bestFlow *fqFlow

func consider(fl *fqFlow) {
	if bestFlow == nil || fl.bytes > bestFlow.bytes {
		bestFlow = fl
	}
}

func pickViaHelper(flows map[flowKey]*fqFlow) *fqFlow {
	for _, fl := range flows { // want `map range selects into bestFlow via consider → assignment in iteration order`
		consider(fl)
	}
	return bestFlow
}
