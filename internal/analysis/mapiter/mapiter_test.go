package mapiter_test

import (
	"testing"

	"cebinae/internal/analysis/analysistest"
	"cebinae/internal/analysis/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer,
		"mapiter_bad",
		"mapiter_clean",
	)
}
