package analysis

import "strings"

// A Policy binds an analyzer to the set of packages it polices. The
// selector sees full import paths ("cebinae/internal/sim").
type Policy struct {
	Analyzer *Analyzer
	// Polices reports whether the package at path is checked.
	Polices func(path string) bool
}

// The simulation core: every package whose code runs inside the simulated
// world, where wall-clock time and ambient randomness must never leak.
// internal/fleet is deliberately absent — it is the wall-clock side of the
// system (progress/ETA display, per-job watchdog timeouts, worker
// scheduling) and owns the real clock by design; determinism there is
// guaranteed by sorting job results, which mapiter still polices.
// internal/analysis (this tooling) and internal/benchkit (the benchmark
// harness, which times real executions) are likewise host-side.
var simulationPackages = []string{
	"cebinae/internal/sim",
	"cebinae/internal/netem",
	"cebinae/internal/tcp",
	"cebinae/internal/qdisc",
	"cebinae/internal/shard",
	"cebinae/internal/app",
	"cebinae/internal/cmsketch",
	"cebinae/internal/maxmin",
	"cebinae/internal/packet",
	"cebinae/internal/core",
	"cebinae/internal/hhcache",
	"cebinae/internal/trace",
	"cebinae/internal/replay",
	"cebinae/internal/monitor",
	"cebinae/internal/metrics",
	"cebinae/internal/scenario",
}

func inSimulationCore(path string) bool {
	for _, p := range simulationPackages {
		if path == p {
			return true
		}
	}
	return false
}

// moduleWide polices every package of this module, including cmd/ and
// experiments/ — report and CSV emission live there, and output written in
// map order is exactly the nondeterminism the fleet's byte-identity
// promise forbids.
func moduleWide(path string) bool {
	return path == "cebinae" || strings.HasPrefix(path, "cebinae/")
}

// Policies returns the analyzer→package bindings cebinae-vet and the
// repo-gate test enforce. The analyzers are passed in by the caller
// (cmd/cebinae-vet) to keep this package free of import cycles with its
// sub-packages.
func Policies(detsource, mapiter, pktown, simtime *Analyzer) []Policy {
	return []Policy{
		// Wall-clock and ambient randomness are forbidden only inside the
		// simulated world; cmd/ and experiments/ legitimately measure real
		// elapsed time around whole runs.
		{Analyzer: detsource, Polices: inSimulationCore},
		// Map-iteration-order hazards are forbidden everywhere: the bug
		// class corrupts reports and schedules alike.
		{Analyzer: mapiter, Polices: moduleWide},
		// Packet-pool ownership applies wherever pooled packets flow.
		{Analyzer: pktown, Polices: moduleWide},
		// sim.Time hygiene applies module-wide too; conversions at the
		// experiment boundary (building a duration from a float rate) are
		// allowed by the analyzer itself.
		{Analyzer: simtime, Polices: moduleWide},
	}
}
