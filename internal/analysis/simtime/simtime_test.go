package simtime_test

import (
	"testing"

	"cebinae/internal/analysis/analysistest"
	"cebinae/internal/analysis/simtime"
)

func TestSimTime(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer,
		"simtime_bad",
		"simtime_clean",
	)
}
