// Package simtime_bad reproduces the lossy sim.Time arithmetic the
// analyzer must reject: nanosecond counts routed through float64 and
// back, and truncations into types that cannot hold a timestamp.
package simtime_bad

import "sim"

// Halving a timestamp through float64 silently rounds above 2^53 ns and
// is never necessary: integer division is exact.
func halfway(t sim.Time) sim.Time {
	return sim.Time(float64(t) * 0.5) // want `sim\.Time computed from a float derived from sim\.Time`
}

// Scaling an interval via Seconds() and back is the same round-trip in
// disguise.
func scaled(interval sim.Time, factor float64) sim.Time {
	return sim.Time(interval.Seconds() * factor * 1e9) // want `sim\.Time computed from a float derived from sim\.Time`
}

// A jitter window derived from a Time-typed config field round-trips too.
func jitter(window sim.Time, u float64) sim.Time {
	return sim.Time(u * float64(window)) // want `sim\.Time computed from a float derived from sim\.Time`
}

// int32 holds ~2.1 s of nanoseconds; any longer simulation overflows.
func truncate(t sim.Time) int32 {
	return int32(t) // want `sim\.Time truncated to int32`
}

func toFloat32(t sim.Time) float32 {
	return float32(t) // want `sim\.Time truncated to float32`
}
