// Package simtime_clean holds the sanctioned sim.Time arithmetic:
// integer math on nanoseconds, one-way conversions at the boundaries, and
// justified round-trips carrying a lint directive.
package simtime_clean

import "sim"

// Integer arithmetic on nanosecond counts is exact.
func halfway(t sim.Time) sim.Time { return t / 2 }

// Entering the time world from a float rate is a one-way boundary
// conversion: no Time value feeds the float expression.
func serialise(bytes int64, rateBps float64) sim.Time {
	return sim.Time(float64(bytes*8) / rateBps * 1e9)
}

// Leaving the time world for reporting is likewise one-way.
func report(t sim.Time) float64 { return float64(t) / 1e9 }

// Widening conversions lose nothing.
func widen(t sim.Time) int64 { return int64(t) }

// Conversions from integers are exact.
func fromIndex(i int) sim.Time { return sim.Time(i) }

// A justified round-trip: the CoDel control law needs a square root, and
// the magnitude is bounded by the interval parameter (~1e8 ns « 2^53).
func controlLaw(interval sim.Time, count float64) sim.Time {
	//lint:ignore simtime interval is bounded well below 2^53 ns and the control law requires sqrt
	return sim.Time(float64(interval) / count)
}
