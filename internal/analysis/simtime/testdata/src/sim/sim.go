// Package sim is a fixture stub of the virtual-clock type; the analyzer
// matches the named type Time in a package named "sim", so this stands in
// for cebinae/internal/sim.
package sim

type Time int64

func (t Time) Seconds() float64 { return float64(t) / 1e9 }
