// Package simtime enforces nanosecond-time hygiene on sim.Time
// arithmetic. sim.Time is an int64 nanosecond count; routing it through
// float64 and back silently rounds once values exceed 2^53 ns (~104
// days) and, worse, turns exact integer comparisons into last-ulp
// lotteries in hot paths. The analyzer flags:
//
//   - round-trips: a conversion sim.Time(e) where the float expression e
//     itself derives from a sim.Time (via float64(t)/float32(t) or
//     t.Seconds()) — rewrite with integer arithmetic, or annotate with
//     //lint:ignore simtime <why the magnitude is safe>;
//   - truncations: converting a sim.Time to a narrower numeric type
//     (int8/16/32, uint8/16/32, float32) that cannot hold a nanosecond
//     timestamp.
//
// One-way boundary conversions (float64(t) for reporting, sim.Time(f)
// where f is built from rates or scales with no Time inside) are allowed:
// they are how durations legitimately enter and leave the float world.
package simtime

import (
	"go/ast"
	"go/types"

	"cebinae/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "forbid float64 round-trips and narrowing truncation on sim.Time " +
		"(nanosecond int64) arithmetic",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target := tv.Type
			arg := call.Args[0]
			argType := pass.TypeOf(arg)
			if argType == nil {
				return true
			}
			if isSimTime(target) && isFloat(argType) && derivesFromSimTime(pass, arg) {
				pass.Reportf(call.Pos(),
					"sim.Time computed from a float derived from sim.Time (lossy round-trip); use integer arithmetic on the nanosecond values")
			}
			if isSimTime(argType) && isNarrow(target) {
				pass.Reportf(call.Pos(),
					"sim.Time truncated to %s; a nanosecond timestamp does not fit", target)
			}
			return true
		})
	}
	return nil
}

// isSimTime matches the named type Time declared in a package named
// "sim" (the real engine package, or a fixture stub).
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isNarrow matches numeric types too small for an int64 nanosecond count.
func isNarrow(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Int32,
		types.Uint8, types.Uint16, types.Uint32,
		types.Float32:
		return true
	}
	return false
}

// derivesFromSimTime reports whether e contains a conversion of a
// sim.Time to a float, or a t.Seconds() call on a sim.Time — i.e. the
// float being converted back carries time information.
func derivesFromSimTime(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// float64(t) / float32(t) conversion of a sim.Time.
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if isFloat(tv.Type) && typeIsSimTime(pass, call.Args[0]) {
				found = true
				return false
			}
		}
		// t.Seconds() on a sim.Time receiver.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Seconds" && typeIsSimTime(pass, sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

func typeIsSimTime(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	return t != nil && isSimTime(t)
}
