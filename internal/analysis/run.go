package analysis

import (
	"go/token"
	"sort"
)

// Run applies each analyzer to each package it polices (per the selector
// in its Policy) and returns the surviving diagnostics, sorted by file
// position. Ignore directives are honoured here — malformed directives
// (missing reason) come back as diagnostics of the "lintdirective"
// pseudo-analyzer, and a directive that suppresses nothing for any
// analyzer that ran on its package comes back as "unused-directive", so
// stale exemptions fail the gate exactly like missing ones.
//
// Packages are processed in dependency order (imports before importers,
// lexicographic among independents): each analyzer owns one Summaries
// store for the whole Run, and summary-based analyzers like pktown rely
// on callee packages being summarised before their callers.
func Run(pkgs []*Package, policies []Policy) ([]Diagnostic, error) {
	var all []Diagnostic
	summaries := make(map[*Analyzer]*Summaries, len(policies))
	for _, pol := range policies {
		summaries[pol.Analyzer] = NewSummaries()
	}
	for _, pkg := range dependencyOrder(pkgs) {
		// Directive scan happens once per package, shared by analyzers.
		var directives []*ignoreDirective
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(pkg.Fset, f, func(pos token.Pos, msg string) {
				all = append(all, Diagnostic{
					Pos:      pkg.Fset.Position(pos),
					Analyzer: "lintdirective",
					Message:  msg,
				})
			})...)
		}
		ran := make(map[string]bool, len(policies))
		for _, pol := range policies {
			if !pol.Polices(pkg.Path) {
				continue
			}
			ran[pol.Analyzer.Name] = true
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  pol.Analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Summaries: summaries[pol.Analyzer],
				diags:     &raw,
			}
			if err := pol.Analyzer.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range raw {
				if !suppressed(d, directives) {
					all = append(all, d)
				}
			}
		}
		// A directive that suppressed nothing is stale — unless it names
		// only analyzers that did not run on this package (their policies
		// decide scope; a fixture run with a single analyzer must not
		// flag directives for the others).
		for _, dir := range directives {
			if dir.used || !dir.coversAny(ran) {
				continue
			}
			all = append(all, Diagnostic{
				Pos:      pkg.Fset.Position(dir.pos),
				Analyzer: "unused-directive",
				Message:  "directive suppresses no diagnostic; delete it (a stale exemption must not outlive the code it excused)",
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// dependencyOrder returns pkgs sorted so every package follows the
// packages it imports (restricted to the analysed set). Ties and
// independent subgraphs resolve lexicographically by import path, so the
// order — and therefore every summary-based analyzer's view — is
// deterministic. The loader guarantees the module graph is acyclic.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(pkgs))
	visited := make(map[string]bool, len(pkgs))
	var visit func(path string)
	visit = func(path string) {
		if visited[path] {
			return
		}
		visited[path] = true
		p := byPath[path]
		if p.Types != nil {
			imps := make([]string, 0, len(p.Types.Imports()))
			for _, imp := range p.Types.Imports() {
				if _, ok := byPath[imp.Path()]; ok {
					imps = append(imps, imp.Path())
				}
			}
			sort.Strings(imps)
			for _, imp := range imps {
				visit(imp)
			}
		}
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}
