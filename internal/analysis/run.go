package analysis

import (
	"go/token"
	"sort"
)

// Run applies each analyzer to each package it polices (per the selector
// in its Policy) and returns the surviving diagnostics, sorted by file
// position. Ignore directives are honoured here — malformed directives
// (missing reason) come back as diagnostics of the "lintdirective"
// pseudo-analyzer so they fail the gate too.
func Run(pkgs []*Package, policies []Policy) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		// Directive scan happens once per package, shared by analyzers.
		var directives []*ignoreDirective
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(pkg.Fset, f, func(pos token.Pos, msg string) {
				all = append(all, Diagnostic{
					Pos:      pkg.Fset.Position(pos),
					Analyzer: "lintdirective",
					Message:  msg,
				})
			})...)
		}
		for _, pol := range policies {
			if !pol.Polices(pkg.Path) {
				continue
			}
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  pol.Analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			if err := pol.Analyzer.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range raw {
				if !suppressed(d, directives) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}
