package analysistest_test

import (
	"go/ast"
	"testing"

	"cebinae/internal/analysis"
	"cebinae/internal/analysis/analysistest"
)

// selftest is a minimal analyzer — it flags every call to a function
// literally named "bad" — used to exercise the fixture runner itself:
// want-comment parsing, diagnostic matching, fixture import resolution
// (both a sibling stub package and the standard library), and ignore
// directives.
var selftest = &analysis.Analyzer{
	Name: "selftest",
	Doc:  "flag calls to functions named bad (fixture-runner self-test)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
				case *ast.SelectorExpr:
					if fun.Sel.Name == "bad" || fun.Sel.Name == "Bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

func TestFixtureRunner(t *testing.T) {
	analysistest.Run(t, selftest, "selftest")
}
