// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations embedded in the fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest (which this build
// environment does not vendor).
//
// Fixtures live under <package dir>/testdata/src/<name>/ and are plain Go
// files. A line expecting a diagnostic carries a trailing comment:
//
//	m[k] = v // want `regexp matching the message`
//
// Multiple `want` strings on one line expect multiple diagnostics.
// Fixture imports resolve first against sibling fixture packages in
// testdata/src, then against the real build (standard library and module
// packages) via `go list -export` compiler export data, so fixtures can
// import "time" or stub a "packet" package as needed. Ignore directives
// (//lint:ignore) are honoured, so fixtures can also assert suppression.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"cebinae/internal/analysis"
)

// Run analyses each named fixture package under dir/testdata/src with a
// and reports mismatches between produced and expected diagnostics on t.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, name := range fixtures {
		runOne(t, a, name)
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	ld := &loader{
		root: filepath.Join("testdata", "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loaded),
	}
	pkg, err := ld.load(fixture)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}

	diags, err := analysis.Run([]*analysis.Package{{
		Path:  fixture,
		Dir:   filepath.Join(ld.root, fixture),
		Fset:  ld.fset,
		Files: pkg.files,
		Types: pkg.types,
		Info:  pkg.info,
	}}, []analysis.Policy{{Analyzer: a, Polices: func(string) bool { return true }}})
	if err != nil {
		t.Fatalf("fixture %s: running %s: %v", fixture, a.Name, err)
	}

	wants := collectWants(t, ld.fset, pkg.files)
	for _, d := range diags {
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("fixture %s: unexpected diagnostic at %s:%d: %s", fixture, key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("fixture %s: missing diagnostic at %s:%d matching %q", fixture, key.file, key.line, w)
			}
		}
	}
}

// DiagnosticsForSource type-checks a set of in-memory packages (import
// path → single-file Go source), runs a over the package named target,
// and returns the diagnostics. Imports resolve first against srcs, then
// against the real build. Tests use it for diagnostics that cannot be
// matched by `// want` comments — those reported at a comment's own
// position (directive grammar errors) — and for pinning analyzers to
// runtime guards over sources shared with the executable test.
func DiagnosticsForSource(t *testing.T, a *analysis.Analyzer, target string, srcs map[string]string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := make(map[string]*loaded)
	var load func(path string) (*loaded, error)
	load = func(path string) (*loaded, error) {
		if p, ok := pkgs[path]; ok {
			return p, nil
		}
		src, ok := srcs[path]
		if !ok {
			return nil, fmt.Errorf("no source for %s", path)
		}
		f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if _, ok := srcs[ipath]; ok {
				p, err := load(ipath)
				if err != nil {
					return nil, err
				}
				return p.types, nil
			}
			return realImporter().Import(ipath)
		})}
		tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", path, err)
		}
		p := &loaded{files: []*ast.File{f}, types: tpkg, info: info}
		pkgs[path] = p
		return p, nil
	}
	p, err := load(target)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Package{{
		Path:  target,
		Fset:  fset,
		Files: p.files,
		Types: p.types,
		Info:  p.info,
	}}, []analysis.Policy{{Analyzer: a, Polices: func(string) bool { return true }}})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

type posKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

// collectWants parses `// want ...` comments into per-line expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[posKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := posKey{filepath.Base(pos.Filename), pos.Line}
					wants[key] = append(wants[key], rx)
				}
			}
		}
	}
	return wants
}

// loader type-checks fixture packages, resolving imports against sibling
// fixtures first and the real build second.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loaded
}

type loaded struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: &fixtureImporter{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &loaded{files: files, types: tpkg, info: info}
	l.pkgs[path] = p
	return p, nil
}

type fixtureImporter struct{ l *loader }

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(fi.l.root, path)); err == nil {
		p, err := fi.l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return realImporter().Import(path)
}

// realImporter resolves standard-library (and module) imports from
// compiler export data, shelling out to `go list -export` once per
// distinct path and caching across all tests in the process.
var (
	realOnce sync.Once
	realImp  types.Importer
)

func realImporter() types.Importer {
	realOnce.Do(func() {
		var mu sync.Mutex
		exports := make(map[string]string)
		realImp = importer.ForCompiler(token.NewFileSet(), "gc", func(path string) (io.ReadCloser, error) {
			mu.Lock()
			file, ok := exports[path]
			mu.Unlock()
			if !ok {
				out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
				if err != nil {
					return nil, fmt.Errorf("go list -export %s: %v", path, err)
				}
				file = strings.TrimSpace(string(out))
				if file == "" {
					return nil, fmt.Errorf("no export data for %s", path)
				}
				mu.Lock()
				exports[path] = file
				mu.Unlock()
			}
			return os.Open(file)
		})
	})
	return realImp
}
