// Package stub is imported by the selftest fixture to exercise
// sibling-fixture import resolution in the runner's loader.
package stub

func Bad() {}

func Value() int { return 42 }
