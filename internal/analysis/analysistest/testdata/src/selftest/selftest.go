// Package selftest exercises the fixture runner: diagnostics with and
// without want expectations, imports of the standard library and of a
// sibling fixture package, and directive suppression.
package selftest

import (
	"fmt"

	"stub"
)

func bad() {}

func callsBad() {
	bad() // want `call to bad`
}

func callsStub() string {
	stub.Bad() // want `call to bad`
	return fmt.Sprintf("%d", stub.Value())
}

func suppressedCall() {
	//lint:ignore selftest exercising directive suppression in the runner
	bad()
}

func fine() { callsBad() }
