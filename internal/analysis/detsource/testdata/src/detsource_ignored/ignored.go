// Package detsource_ignored exercises the justification directives: a
// reasoned //lint:ignore on the same or preceding line suppresses the
// finding. (Reasonless directives are rejected by the framework; see
// internal/analysis TestMalformedDirective.)
package detsource_ignored

import "time"

// The directive on the preceding line suppresses the finding.
func legitimatelyHostSide() time.Time {
	//lint:ignore detsource this helper runs on the host side of a test harness, never inside the simulated world
	return time.Now()
}

func sameLine() time.Time {
	return time.Now() //lint:ignore detsource host-side helper, never called from event handlers
}

// A directive for a different analyzer does not suppress this one.
func wrongAnalyzer() time.Time {
	//lint:ignore mapiter reason that does not apply here
	return time.Now() // want `wall-clock time\.Now in simulation code`
}
