// Package detsource_bad reproduces the wall-clock / global-randomness
// shapes the analyzer must reject: exactly the `time.Now()`-in-internal/sim
// insertion the CI gate exists to catch.
package detsource_bad

import (
	"math/rand"
	"time"
)

type engine struct{ now int64 }

func (e *engine) step() time.Time {
	e.now++
	return time.Now() // want `wall-clock time\.Now in simulation code`
}

func jitter() time.Duration {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in simulation code`
	return time.Duration(rand.Int63n(1000)) // want `global randomness rand\.Int63n in simulation code`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since in simulation code`
}

func pick(n int) int {
	return rand.Intn(n) // want `global randomness rand\.Intn in simulation code`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global randomness rand\.Shuffle in simulation code`
}

// Replay-shaped pacing: jittering a per-flow send gap from the global
// source makes two runs of the same schedule diverge packet by packet.
func paceGap(base int64) int64 {
	return base + rand.Int63n(base/8+1) // want `global randomness rand\.Int63n in simulation code`
}
