// Package detsource_clean holds the allowed shapes: virtual time from the
// engine's own counter, randomness from explicitly seeded generators, and
// package time used only for conversions and constants.
package detsource_clean

import (
	"math/rand"
	"time"
)

type engine struct{ now int64 }

func (e *engine) Now() int64 { return e.now }

// Duration-style conversion of a constant: no clock is read.
func resolution() int64 { return int64(50 * time.Microsecond) }

// An explicitly seeded generator is deterministic and allowed; methods on
// the generator value are not package-level globals.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(3, func(i, j int) {})
	return rng.Float64()
}

// A timer deadline derived from the engine's virtual clock reads no wall
// time: the RTO idiom of the sim's Timer surface (arm relative to Now,
// back off deterministically) is exactly the allowed shape.
type timer struct{ deadline int64 }

func (e *engine) armTimer(t *timer, d int64) { t.deadline = e.Now() + d }

func rearmBackoff(e *engine, t *timer, rto int64, backoff uint) {
	e.armTimer(t, rto<<backoff)
}

// Zipf over a seeded source is the sanctioned heavy-tail sampler.
func zipf(seed int64) uint64 {
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.1, 1, 1<<20)
	return z.Uint64()
}
