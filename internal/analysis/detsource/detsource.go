// Package detsource forbids wall-clock time and ambient randomness inside
// the simulation core.
//
// Simulated time advances only through the engine clock (sim.Engine.Now);
// randomness enters only through an explicitly seeded generator (sim.Rand,
// or math/rand.New over a fixed source). A single time.Now() or global
// rand.Intn() buried in a hot path silently breaks the reproducibility
// that the differential shard tests and the fleet's byte-identical
// reports depend on — this analyzer makes that class uncompilable at the
// `make lint` gate rather than detectable after the fact.
package detsource

import (
	"go/ast"
	"go/types"

	"cebinae/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc: "forbid wall-clock time and global/unseeded randomness in simulation code; " +
		"virtual time comes from sim.Engine.Now and randomness from a seeded generator",
	Run: run,
}

// forbiddenTime lists package time functions that read the host clock or
// arm host-runtime timers. Pure conversions and constants (time.Duration,
// time.Millisecond, time.Unix construction from explicit numbers) are fine.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRand lists the constructors of math/rand{,/v2} that take an
// explicit source or seed; every other package-level function uses the
// process-global generator and is forbidden.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only package-qualified references: x must name a package,
			// so method calls on a *rand.Rand value never match.
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isPkg := pass.ObjectOf(id).(*types.PkgName); !isPkg {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in simulation code; use the engine clock (sim.Engine.Now / Schedule)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global randomness rand.%s in simulation code; use sim.Rand or rand.New with an explicit seed",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
