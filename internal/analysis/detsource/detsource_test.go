package detsource_test

import (
	"testing"

	"cebinae/internal/analysis/analysistest"
	"cebinae/internal/analysis/detsource"
)

func TestDetSource(t *testing.T) {
	analysistest.Run(t, detsource.Analyzer,
		"detsource_bad",
		"detsource_clean",
		"detsource_ignored",
	)
}
