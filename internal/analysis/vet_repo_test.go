package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"cebinae/internal/analysis"
	"cebinae/internal/analysis/detsource"
	"cebinae/internal/analysis/mapiter"
	"cebinae/internal/analysis/pktown"
	"cebinae/internal/analysis/simtime"
)

// TestRepositoryIsVetClean is the live gate: the four invariant analyzers
// must come back empty over the whole module (the same run `make lint`
// performs). If this fails, either fix the finding or annotate it with a
// justified //lint:ignore — see STATIC_ANALYSIS.md.
//
// It doubles as an integration test of the loader: every package of the
// module is parsed and type-checked against `go list -export` data.
func TestRepositoryIsVetClean(t *testing.T) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate repository root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile))) // internal/analysis -> repo root

	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; expected the whole module", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, analysis.Policies(
		detsource.Analyzer, mapiter.Analyzer, pktown.Analyzer, simtime.Analyzer))
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
