package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, e.g. "./...") and returns those belonging to the enclosing module.
// Dependencies — including the standard library — are resolved from
// compiler export data produced by `go list -export`, so loading works
// without network access and without golang.org/x/tools.
//
// Only non-test files are loaded: the analyzers police the simulator
// itself, and `go list -export` compiles exactly that build.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var module []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			pkg := p
			module = append(module, &pkg)
		}
	}
	sort.Slice(module, func(i, j int) bool { return module[i].ImportPath < module[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range module {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", lp.ImportPath)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
