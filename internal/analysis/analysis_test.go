package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ignoreDirective, []string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var malformed []string
	dirs := parseDirectives(fset, f, func(pos token.Pos, msg string) {
		malformed = append(malformed, msg)
	})
	return fset, dirs, malformed
}

func TestDirectiveParsing(t *testing.T) {
	src := `package p

//lint:ignore detsource host-side only
var a int

//lint:ignore detsource,mapiter shared justification
var b int

//lint:file-ignore simtime generated file, magnitudes proven elsewhere
var c int
`
	_, dirs, malformed := parseSrc(t, src)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3", len(dirs))
	}
	if !dirs[0].covers("detsource") || dirs[0].covers("mapiter") {
		t.Errorf("directive 0 coverage wrong: %+v", dirs[0])
	}
	if !dirs[1].covers("detsource") || !dirs[1].covers("mapiter") {
		t.Errorf("comma-separated directive should cover both analyzers: %+v", dirs[1])
	}
	if !dirs[2].file || !dirs[2].covers("simtime") {
		t.Errorf("file-ignore not parsed as file-wide: %+v", dirs[2])
	}
}

func TestMalformedDirective(t *testing.T) {
	// A directive without a reason must be rejected: every exemption is
	// required to carry its justification.
	src := `package p

//lint:ignore detsource
var a int
`
	_, dirs, malformed := parseSrc(t, src)
	if len(dirs) != 0 {
		t.Fatalf("malformed directive was accepted: %+v", dirs[0])
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0], "reason is mandatory") {
		t.Fatalf("want one 'reason is mandatory' report, got %v", malformed)
	}
}

func TestSuppression(t *testing.T) {
	src := `package p

//lint:ignore detsource justified
var a int

//lint:file-ignore mapiter whole file justified
var b int
`
	fset, dirs, _ := parseSrc(t, src)
	_ = fset
	diag := func(analyzer string, line int) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "x.go", Line: line}, Analyzer: analyzer, Message: "m"}
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{diag("detsource", 4), true},  // line after the directive
		{diag("detsource", 3), true},  // same line as the directive
		{diag("detsource", 5), false}, // out of range
		{diag("simtime", 4), false},   // different analyzer
		{diag("mapiter", 99), true},   // file-ignore covers everything
	}
	for i, c := range cases {
		if got := suppressed(c.d, dirs); got != c.want {
			t.Errorf("case %d (%s line %d): suppressed=%v, want %v", i, c.d.Analyzer, c.d.Pos.Line, got, c.want)
		}
	}
}
