package pktown_test

import (
	"strings"
	"testing"

	"cebinae/internal/analysis/analysistest"
	"cebinae/internal/analysis/pktown"
)

// The //pktown: grammar errors are reported at the directive comment
// itself, where a fixture `// want` comment cannot sit (one line holds
// one line-comment), so the grammar is exercised here over in-memory
// sources instead.

const directivePacketStub = `package packet

type Packet struct{ Size int64 }

type Pool struct{ free []*Packet }

func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return p
	}
	return &Packet{}
}

func (pl *Pool) Put(p *Packet) { pl.free = append(pl.free, p) }
`

func pktownDiags(t *testing.T, src string) []string {
	t.Helper()
	diags := analysistest.DiagnosticsForSource(t, pktown.Analyzer, "d", map[string]string{
		"d":      src,
		"packet": directivePacketStub,
	})
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

func TestDirectiveGrammarErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the single expected diagnostic
	}{
		{
			name: "missing reason",
			src: `package d

import "packet"

//pktown:consumes p
func f(pl *packet.Pool, p *packet.Packet) { pl.Put(p) }
`,
			want: "malformed //pktown: directive",
		},
		{
			name: "unknown mode",
			src: `package d

import "packet"

//pktown:devours p the vocabulary is fixed
func f(pl *packet.Pool, p *packet.Packet) { pl.Put(p) }
`,
			want: `unknown //pktown: mode "devours"`,
		},
		{
			name: "target is not a packet parameter",
			src: `package d

import "packet"

//pktown:borrows q no parameter of that name exists
func f(p *packet.Packet) int64 { return p.Size }
`,
			want: `//pktown:borrows target "q" is not a *packet.Packet parameter`,
		},
		{
			name: "fresh without packet result",
			src: `package d

import "packet"

//pktown:fresh return this function returns an int
func f(p *packet.Packet) int64 { return p.Size }
`,
			want: "//pktown:fresh on a function with no *packet.Packet result",
		},
		{
			name: "fresh target must be return",
			src: `package d

import "packet"

//pktown:fresh p fresh applies only to the result
func f(p *packet.Packet) *packet.Packet { return p }
`,
			want: `//pktown:fresh target must be`,
		},
		{
			name: "misplaced directive",
			src: `package d

import "packet"

func f(p *packet.Packet) int64 {
	//pktown:borrows p a directive inside a body attaches to nothing
	return p.Size
}
`,
			want: "misplaced //pktown: directive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msgs := pktownDiags(t, tc.src)
			if len(msgs) != 1 {
				t.Fatalf("got %d diagnostics, want 1: %v", len(msgs), msgs)
			}
			if !strings.Contains(msgs[0], tc.want) {
				t.Errorf("diagnostic %q does not contain %q", msgs[0], tc.want)
			}
		})
	}
}

// TestDirectiveOverridesInference checks that an annotation beats the
// analyzer's own conclusion about a function: a helper that stores its
// argument, annotated `borrows`, must not kill the caller's packet.
func TestDirectiveOverridesInference(t *testing.T) {
	src := `package d

import "packet"

var park *packet.Packet

// stash looks like a store, but the annotation pins it as a borrow (the
// stored pointer is cleared again before return).
//
//pktown:borrows p the stash is transient and cleared before return
func stash(p *packet.Packet) {
	park = p
	park = nil
}

func caller(pl *packet.Pool, p *packet.Packet) int64 {
	stash(p)
	n := p.Size
	pl.Put(p)
	return n
}
`
	if msgs := pktownDiags(t, src); len(msgs) != 0 {
		t.Fatalf("annotated borrow still produced diagnostics: %v", msgs)
	}
}
