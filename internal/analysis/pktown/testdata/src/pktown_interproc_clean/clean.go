// Package pktown_interproc_clean holds the sanctioned interprocedural
// ownership idioms: borrowing helpers, store-then-hands-off, fresh
// returns, and the annotated-interface enqueue/dequeue contracts. None of
// these may produce a diagnostic.
package pktown_interproc_clean

import "packet"

// ---- borrow: the helper only reads, the caller keeps ownership ---------

func size(p *packet.Packet) int64 { return p.Size }

func borrowThenRelease(pl *packet.Pool, p *packet.Packet) int64 {
	n := size(p)
	pl.Put(p)
	return n
}

// ---- consume helper used once ------------------------------------------

func release(pl *packet.Pool, p *packet.Packet) { pl.Put(p) }

func deliverViaHelper(pl *packet.Pool, p *packet.Packet) int64 {
	n := p.Size // accounting precedes the hand-off
	release(pl, p)
	return n
}

// ---- store idiom: account first, then hand off to the ring -------------

type ring struct {
	buf  []*packet.Packet
	head int
}

func (r *ring) push(p *packet.Packet) {
	r.buf[r.head%len(r.buf)] = p
	r.head++
}

func account(r *ring, p *packet.Packet) int64 {
	n := p.Size
	r.push(p)
	return n
}

// ---- fresh return: ownership flows out through the result --------------

func alloc(pl *packet.Pool, sz int64) *packet.Packet {
	p := pl.Get()
	p.Size = sz
	return p
}

func allocUseRelease(pl *packet.Pool) int64 {
	p := alloc(pl, 64)
	n := p.Size
	pl.Put(p)
	return n
}

// ---- annotated interface contracts -------------------------------------

type qdisc interface {
	// Enqueue admits p.
	//
	//pktown:enqueues p on success the discipline owns the packet; on failure the caller keeps it
	Enqueue(p *packet.Packet) bool
	// Dequeue surrenders the next packet.
	//
	//pktown:fresh return a dequeued packet belongs to the caller
	Dequeue() *packet.Packet
}

// send shows the sanctioned failure-path release: on the failed branch
// the caller still owns p (it may account and release); on success the
// discipline owns it and p is not touched again.
func send(q qdisc, pl *packet.Pool, p *packet.Packet, drops *int64) {
	if !q.Enqueue(p) {
		*drops += p.Size
		pl.Put(p)
	}
}

// drain shows the nil-checked dequeue loop: every popped packet is
// released before the next iteration, and the nil arm exits cleanly.
func drain(q qdisc, pl *packet.Pool) int64 {
	var total int64
	for {
		p := q.Dequeue()
		if p == nil {
			return total
		}
		total += p.Size
		pl.Put(p)
	}
}
