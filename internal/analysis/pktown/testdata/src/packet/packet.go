// Package packet is a fixture stub of the pooled-packet surface; the
// analyzer matches Pool.Put by method name, receiver type name, and
// package name, so this stub stands in for cebinae/internal/packet.
package packet

type Packet struct {
	Size int64
	SACK []int64
}

type Pool struct{ free []*Packet }

func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return p
	}
	return &Packet{}
}

func (pl *Pool) Put(p *Packet) { pl.free = append(pl.free, p) }
