// Package pktown_clean holds the sanctioned ownership patterns: release
// exactly once at the point the packet leaves the simulated network, with
// control flow that provably cannot revisit it.
package pktown_clean

import "packet"

// Release on the drop path, then leave: the terminating return keeps the
// released state from reaching the delivery path.
func deliverOrDrop(pl *packet.Pool, p *packet.Packet, congested bool) int64 {
	if congested {
		pl.Put(p)
		return 0
	}
	return p.Size
}

// Reading before releasing is the normal delivery sequence.
func deliver(pl *packet.Pool, p *packet.Packet) int64 {
	size := p.Size
	pl.Put(p)
	return size
}

// Reassignment transfers in a fresh packet: the old released state must
// not stick to the variable.
func recycle(pl *packet.Pool, p *packet.Packet) int64 {
	pl.Put(p)
	p = pl.Get()
	size := p.Size
	pl.Put(p)
	return size
}

// Per-iteration get/put pairs never carry a released packet across
// iterations.
func pump(pl *packet.Pool, n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		p := pl.Get()
		p.Size = int64(i)
		total += p.Size
		pl.Put(p)
	}
	return total
}

// A switch where every releasing arm terminates.
func classify(pl *packet.Pool, p *packet.Packet, kind int) int64 {
	switch kind {
	case 0:
		pl.Put(p)
		return 0
	case 1:
		pl.Put(p)
		return 1
	}
	return p.Size
}
