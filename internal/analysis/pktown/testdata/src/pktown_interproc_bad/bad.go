// Package pktown_interproc_bad reproduces the ownership bugs that only
// become visible across a function boundary: the hazardous hand-off is
// inside a helper, so the caller-side misuse can only be caught by a
// summary of what the helper does with its parameters. Every diagnostic
// names the call chain that carried the packet away.
package pktown_interproc_bad

import "packet"

// ---- shard-SPSC shape: a ring push helper stores its argument ----------

type ring struct {
	buf  []*packet.Packet
	head int
}

// push parks p in the ring — after it returns the consumer side may
// already be freeing the packet. Its summary is `stores p`.
func (r *ring) push(p *packet.Packet) {
	r.buf[r.head%len(r.buf)] = p
	r.head++
}

// useAfterPush mirrors the sharded runner's SPSC hand-off bug: byte
// accounting reads the packet after the ring already owns it.
func useAfterPush(r *ring, p *packet.Packet) int64 {
	r.push(p)
	return p.Size // want `packet "p" used after hand-off to "push" at .* \(push → an element store\)`
}

// forward adds a second link to the chain; the diagnostic must name the
// whole path from call site to the store.
func forward(r *ring, p *packet.Packet) {
	r.push(p)
}

func useAfterForward(r *ring, p *packet.Packet) int64 {
	forward(r, p)
	return p.Size // want `packet "p" used after hand-off to "forward" at .* \(forward → push → an element store\)`
}

// ---- qdisc drop-path shape: double consume through a helper ------------

// drop releases the packet on behalf of the caller; its summary is
// `consumes p`.
func drop(pl *packet.Pool, p *packet.Packet) {
	pl.Put(p)
}

// dropTwice repeats the drop-path bug: the helper already gave the packet
// back to the pool, so the second Put is a double free.
func dropTwice(pl *packet.Pool, p *packet.Packet) {
	drop(pl, p)
	pl.Put(p) // want `packet "p" released twice \(already handed off to "drop" at .* via drop → Pool\.Put\)`
}

// useAfterDrop reads a field of a packet a helper has already released.
func useAfterDrop(pl *packet.Pool, p *packet.Packet) int64 {
	drop(pl, p)
	return p.Size // want `packet "p" used after hand-off to "drop" at .* \(drop → Pool\.Put\)`
}

// ---- leaks -------------------------------------------------------------

// branchLeak obtains a fresh packet but the early-exit arm returns
// without releasing, returning, or storing it.
func branchLeak(pl *packet.Pool, fail bool) int64 {
	p := pl.Get() // want `packet "p" obtained from Pool\.Get is leaked: the return at line \d+ neither releases, returns, nor stores it`
	if fail {
		return 0
	}
	size := p.Size
	pl.Put(p)
	return size
}

// fallThroughLeak drops ownership on the floor at the end of the function.
func fallThroughLeak(pl *packet.Pool, sink *int64) {
	p := pl.Get() // want `packet "p" obtained from Pool\.Get is leaked: the fall-through at the end of fallThroughLeak neither releases, returns, nor stores it`
	*sink += p.Size
}

// discardedGet never even binds the fresh packet.
func discardedGet(pl *packet.Pool) {
	pl.Get() // want `discarded result of "Get" carries ownership of a pooled packet`
}
