// Package pktown_bad reproduces the pooled-packet ownership bugs the
// analyzer must reject — the same shapes the runtime packetdebug guard
// (internal/packet/pool_debug.go) panics on, but caught on every path at
// lint time instead of only on executed paths under -tags packetdebug.
package pktown_bad

import "packet"

// The classic double free from the pool_debug comment: the packet is
// released at two ownership hand-off points, a drop path and a delivery
// path, because the drop branch forgets to stop the flow of control.
func deliverOrDrop(pl *packet.Pool, p *packet.Packet, congested bool) {
	if congested {
		pl.Put(p) // drop path releases ...
	}
	pl.Put(p) // want `packet "p" released twice`
}

// Reading a field after release races with the packet's reuse: by the
// time Size is read the pool may have handed p to another sender.
func useAfterRelease(pl *packet.Pool, p *packet.Packet) int64 {
	pl.Put(p)
	return p.Size // want `packet "p" used after release`
}

// A release that survives to the next loop iteration is a double free
// even though no single iteration releases twice.
func loopCarried(pl *packet.Pool, p *packet.Packet, n int) {
	for i := 0; i < n; i++ {
		pl.Put(p) // want `packet "p" released twice`
	}
}

// Merging across a branch: only one arm releases, but the join still must
// not touch the packet.
func branchMerge(pl *packet.Pool, p *packet.Packet, drop bool) int64 {
	if drop {
		pl.Put(p)
	} else {
		p.Size = 0
	}
	return p.Size // want `packet "p" used after release`
}
