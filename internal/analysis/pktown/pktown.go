// Package pktown checks the ownership protocol of pooled packets
// (internal/packet.Pool) across function boundaries. Ownership is
// single-holder: a packet obtained from Pool.Get is owned by exactly one
// variable until it is released (Pool.Put), stored (into a field, slice,
// channel, or a sink that keeps it), or returned to the caller. The
// analyzer is the static complement of the runtime `packetdebug`
// double-free detector — the runtime guard only fires on paths a test
// happens to execute, while this analyzer inspects every path in the
// source, including the cross-function hand-offs (shard SPSC rings,
// qdisc backlogs, netem transmit) the old intra-procedural version was
// blind to.
//
// The analysis is summary-based and interprocedural: a bottom-up pass
// over the package-local call graph (Tarjan SCCs, fixpoint within each
// cycle) computes a FuncSummary for every function — each *packet.Packet
// parameter classified consumes / stores / enqueues / borrows, each
// result fresh or borrowed — and call sites are then checked against
// callee summaries. Summaries cross package boundaries through the
// framework's Summaries store (run.go visits packages in dependency
// order), keyed by "pkgpath.Recv.Name" strings. Interface methods have
// no body to infer from; known-sink interfaces carry explicit
// `//pktown:` annotations (see summary.go) with mandatory reasons.
//
// Diagnostics: use-after-release and double release (as before),
// use-after-hand-off and double-consume across a call (naming the call
// chain that takes ownership), and leaks — a fresh packet that on some
// path is neither released, returned, nor stored.
//
// Within a function the walk is path-aware along statement lists: branch
// states are merged as may-facts at joins unless the branch terminates;
// loop bodies are analysed twice so hazards that survive to the next
// iteration are caught; `if p == nil` prunes ownership obligations on
// the nil branch (the Dequeue-empty idiom); rebinding a variable
// transfers in fresh ownership (and leaks the old packet if it was still
// owned). Function literals are analysed with their own state; capturing
// an owned packet discharges the obligation to the closure.
package pktown

import (
	"go/ast"
	"go/token"
	"go/types"

	"cebinae/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "pktown",
	Doc: "forbid use-after-release, use-after-hand-off, double release and " +
		"leaks of pooled packets (internal/packet.Pool ownership protocol, " +
		"checked interprocedurally via function summaries)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		decls:     make(map[types.Object]*ast.FuncDecl),
		summaries: make(map[types.Object]*FuncSummary),
		reported:  make(map[token.Pos]bool),
	}
	c.annotated, c.annotatedOrder = collectAnnotations(pass)

	// Gather package-local function declarations in source order.
	var order []types.Object
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.ObjectOf(fd.Name)
			if obj == nil {
				continue
			}
			c.decls[obj] = fd
			order = append(order, obj)
		}
	}

	// Phase 1: bottom-up summaries. Tarjan emits SCCs callees-first, so
	// by the time a function is summarised its non-recursive callees are
	// final; within an SCC we iterate to a fixpoint (modes only grow, so
	// it terminates).
	for _, scc := range tarjanSCCs(order, c.callEdges()) {
		for changed := true; changed; {
			changed = false
			for _, obj := range scc {
				sum := c.analyzeFunc(c.decls[obj], obj, false)
				if !sum.equal(c.summaries[obj]) {
					c.summaries[obj] = sum
					changed = true
				}
			}
		}
	}

	// Phase 2: report, with every summary fixed.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					c.analyzeFunc(d, pass.ObjectOf(d.Name), true)
				}
			case *ast.GenDecl:
				// Package var initialisers may contain function literals.
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						c.analyzeLit(lit, true)
						return false
					}
					return true
				})
			}
		}
	}

	// Publish summaries for importing packages, in source order (the
	// store is a map, but funcKey/Store must not run in map-range order —
	// mapiter polices this package too). Annotations on interface methods
	// are included — they are the contract callers in other packages
	// check against.
	for _, obj := range order {
		if sum := c.summaries[obj]; !sum.empty() {
			if fn, ok := obj.(*types.Func); ok {
				pass.Summaries.Store(funcKey(fn), sum)
			}
		}
	}
	for _, obj := range c.annotatedOrder {
		if c.decls[obj] != nil {
			continue // FuncDecl annotations are already merged into summaries
		}
		if sum := c.annotated[obj]; !sum.empty() {
			if fn, ok := obj.(*types.Func); ok {
				pass.Summaries.Store(funcKey(fn), sum)
			}
		}
	}
	return nil
}

type checker struct {
	pass           *analysis.Pass
	decls          map[types.Object]*ast.FuncDecl
	summaries      map[types.Object]*FuncSummary // inferred (annotation overlaid)
	annotated      map[types.Object]*FuncSummary // //pktown: contracts
	annotatedOrder []types.Object                // annotation targets in source order
	reported       map[token.Pos]bool            // dedupe across loop passes
	frame          *frame                        // function being analysed
}

// frame is the per-function analysis context.
type frame struct {
	name     string
	report   bool
	paramIdx map[types.Object]int // *packet.Packet parameters by index
	results  []types.Object       // named results (for bare returns), nil entries for unnamed
	sum      *FuncSummary         // summary under construction
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.frame != nil && !c.frame.report {
		return
	}
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// analyzeFunc walks one function, returning its summary. With report set
// it emits diagnostics; summaries must already be at fixpoint then.
func (c *checker) analyzeFunc(decl *ast.FuncDecl, obj types.Object, report bool) *FuncSummary {
	fr := &frame{
		name:     decl.Name.Name,
		report:   report,
		paramIdx: make(map[types.Object]int),
		sum:      &FuncSummary{},
	}
	idx := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			names := field.Names
			if len(names) == 0 {
				idx++
				continue
			}
			for _, name := range names {
				if o := c.pass.ObjectOf(name); o != nil && isPacketPtr(o.Type()) {
					fr.paramIdx[o] = idx
				}
				idx++
			}
		}
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			if len(field.Names) == 0 {
				fr.results = append(fr.results, nil)
				continue
			}
			for _, name := range field.Names {
				fr.results = append(fr.results, c.pass.ObjectOf(name))
			}
		}
	}
	prev := c.frame
	c.frame = fr
	st := newState()
	exits := c.walkStmts(decl.Body.List, st)
	if !exits {
		c.leakAll(st, "the fall-through at the end of "+fr.name)
	}
	c.frame = prev

	// Annotations on the declaration override inference.
	if ann := c.annotated[obj]; ann != nil {
		for i, p := range ann.Params {
			if fr.sum.Params == nil {
				fr.sum.Params = make(map[int]ParamSummary)
			}
			fr.sum.Params[i] = p
		}
		for i, chain := range ann.Fresh {
			fr.sum.setFresh(i, chain)
		}
	}
	return fr.sum
}

// analyzeLit walks a function literal with its own frame and state.
// The literal's summary is not recorded anywhere — literals are not
// addressable by callers — but its body is checked with the same rules.
func (c *checker) analyzeLit(lit *ast.FuncLit, report bool) {
	fr := &frame{
		name:     "the function literal",
		report:   report,
		paramIdx: make(map[types.Object]int),
		sum:      &FuncSummary{},
	}
	idx := 0
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			names := field.Names
			if len(names) == 0 {
				idx++
				continue
			}
			for _, name := range names {
				if o := c.pass.ObjectOf(name); o != nil && isPacketPtr(o.Type()) {
					fr.paramIdx[o] = idx
				}
				idx++
			}
		}
	}
	if lit.Type.Results != nil {
		for _, field := range lit.Type.Results.List {
			if len(field.Names) == 0 {
				fr.results = append(fr.results, nil)
				continue
			}
			for _, name := range field.Names {
				fr.results = append(fr.results, c.pass.ObjectOf(name))
			}
		}
	}
	prev := c.frame
	c.frame = fr
	st := newState()
	exits := c.walkStmts(lit.Body.List, st)
	if !exits {
		c.leakAll(st, "the fall-through at the end of "+fr.name)
	}
	c.frame = prev
}

// callEdges builds the package-local call graph: an edge from each
// declared function to every declared function its body mentions.
func (c *checker) callEdges() map[types.Object][]types.Object {
	edges := make(map[types.Object][]types.Object, len(c.decls))
	for obj, decl := range c.decls {
		seen := make(map[types.Object]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee := c.pass.ObjectOf(id)
			if callee == nil || callee == obj || seen[callee] {
				return true
			}
			if _, isDecl := c.decls[callee]; isDecl {
				seen[callee] = true
				edges[obj] = append(edges[obj], callee)
			}
			return true
		})
	}
	return edges
}

// tarjanSCCs returns the strongly connected components of the call graph
// in reverse topological order (callees before callers). Nodes are
// visited in the given (source) order, so the output is deterministic.
func tarjanSCCs(nodes []types.Object, edges map[types.Object][]types.Object) [][]types.Object {
	index := make(map[types.Object]int, len(nodes))
	low := make(map[types.Object]int, len(nodes))
	onStack := make(map[types.Object]bool, len(nodes))
	var stack []types.Object
	var sccs [][]types.Object
	next := 0

	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			// Restore deterministic source order within the component.
			for i, j := 0, len(scc)-1; i < j; i, j = i+1, j-1 {
				scc[i], scc[j] = scc[j], scc[i]
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// summaryFor resolves the ownership contract of a callee: local inferred
// summaries first (annotation already overlaid), then local annotations
// (interface methods declared in this package), then the cross-package
// store.
func (c *checker) summaryFor(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	if obj, ok := c.objFor(fn); ok {
		if s := c.summaries[obj]; s != nil {
			return s
		}
		if s := c.annotated[obj]; s != nil {
			return s
		}
	}
	if v, ok := c.pass.Summaries.Lookup(funcKey(fn)); ok {
		if s, ok := v.(*FuncSummary); ok {
			return s
		}
	}
	return nil
}

func (c *checker) objFor(fn *types.Func) (types.Object, bool) {
	if fn.Pkg() == c.pass.Pkg {
		return fn, true
	}
	return nil, false
}
