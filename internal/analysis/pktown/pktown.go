// Package pktown checks the ownership protocol of pooled packets
// (internal/packet.Pool): once a packet is released with Pool.Put it must
// not be read again, and it must not be released twice. This is the
// static complement of the runtime `packetdebug` double-free detector —
// the runtime guard only fires on paths a test happens to execute, while
// this analyzer inspects every path in the source.
//
// The analysis is intra-procedural and path-aware along statement lists:
// a release inside an if/switch arm is merged as "may be released" after
// the branch unless that arm terminates (return/break/continue/panic);
// loop bodies are analysed twice so a release that survives to the next
// iteration is caught; an assignment to the packet variable (p =
// pool.Get(), p = nil) clears its released state. Releases inside
// function literals are checked within the literal only.
package pktown

import (
	"go/ast"
	"go/token"
	"go/types"

	"cebinae/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "pktown",
	Doc: "forbid use-after-release and double release of pooled packets " +
		"(internal/packet.Pool ownership protocol)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.walkStmts(n.Body.List, released{})
				}
				return false
			case *ast.FuncLit:
				// Top-level literals (package var initialisers); literals
				// inside functions are handled by walkStmts.
				c.walkStmts(n.Body.List, released{})
				return false
			}
			return true
		})
	}
	return nil
}

// released maps a packet variable to the position where it was returned
// to the pool on some path reaching the current statement.
type released map[types.Object]token.Pos

func (r released) clone() released {
	out := make(released, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

type checker struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool // dedupe across the second loop pass
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// walkStmts analyses one statement list, mutating st in place, and
// reports whether the list always terminates abruptly (so a release made
// inside it never reaches the code after the enclosing branch).
func (c *checker) walkStmts(list []ast.Stmt, st released) bool {
	for _, s := range list {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st released) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				// Rebinding the variable transfers in fresh ownership.
				delete(st, c.pass.ObjectOf(id))
			} else {
				// p.f = v or q[i] = v reads the base object.
				c.checkExpr(lhs, st)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, st)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.checkExpr(s.Cond, st)
		thenSt := st.clone()
		thenExits := c.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseExits := false
		if s.Else != nil {
			elseExits = c.walkStmt(s.Else, elseSt)
		}
		merge(st, thenSt, thenExits)
		merge(st, elseSt, elseExits)
		return thenExits && elseExits && s.Else != nil
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, st)
		}
		c.loopBody(s.Body, s.Post, st)
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		c.loopBody(s.Body, nil, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		c.walkBranches(s, st)
	case *ast.DeferStmt:
		c.checkExpr(s.Call, st)
	case *ast.GoStmt:
		c.checkExpr(s.Call, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, st)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, st)
		c.checkExpr(s.Value, st)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	}
	return false
}

// loopBody analyses a loop body twice: the second pass starts from the
// first pass's exit state, so `pool.Put(p)` with p live across
// iterations is reported as a double release.
func (c *checker) loopBody(body *ast.BlockStmt, post ast.Stmt, st released) {
	first := st.clone()
	c.walkStmts(body.List, first)
	if post != nil {
		c.walkStmt(post, first)
	}
	second := first.clone()
	c.walkStmts(body.List, second)
	if post != nil {
		c.walkStmt(post, second)
	}
	merge(st, second, false)
}

// walkBranches handles switch/type-switch/select: every clause starts
// from the pre-branch state; non-terminating clauses merge back.
func (c *checker) walkBranches(s ast.Stmt, st released) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	for _, cl := range body.List {
		clSt := st.clone()
		var exits bool
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.checkExpr(e, clSt)
			}
			exits = c.walkStmts(cl.Body, clSt)
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, clSt)
			}
			exits = c.walkStmts(cl.Body, clSt)
		}
		merge(st, clSt, exits)
	}
}

// merge folds branch releases into the fall-through state. Terminating
// branches contribute nothing: their releases cannot reach the join.
func merge(into, branch released, branchExits bool) {
	if branchExits {
		return
	}
	for k, v := range branch {
		if _, ok := into[k]; !ok {
			into[k] = v
		}
	}
}

// checkExpr reports reads of released packets within e, records releases,
// and descends into function literals with a fresh state.
func (c *checker) checkExpr(e ast.Expr, st released) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(n.Body.List, released{})
			return false
		case *ast.CallExpr:
			if obj := c.releaseArg(n); obj != nil {
				// Receiver and other arguments are still plain reads.
				c.checkExpr(n.Fun, st)
				if pos, ok := st[obj]; ok {
					c.reportf(n.Pos(), "packet %q released twice (already released at %s)",
						obj.Name(), c.pass.Fset.Position(pos))
				}
				st[obj] = n.Pos()
				return false
			}
		case *ast.Ident:
			obj := c.pass.ObjectOf(n)
			if pos, ok := st[obj]; ok {
				c.reportf(n.Pos(), "packet %q used after release to the pool (released at %s)",
					n.Name, c.pass.Fset.Position(pos))
			}
		}
		return true
	})
}

// releaseArg returns the packet variable being released if call is
// pool.Put(p) on an internal/packet.Pool (matched by type: a method named
// Put whose receiver is type Pool in a package named "packet"), else nil.
func (c *checker) releaseArg(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil
	}
	fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "packet" {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.ObjectOf(id)
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}
