package pktown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ---- abstract state -----------------------------------------------------

// dk says how a packet variable's ownership left this function.
type dk uint8

const (
	dkReleased dk = iota // Pool.Put
	dkHandoff            // passed to a consuming/storing callee
	dkStored             // directly stored into a field/slice/channel
)

// deadInfo: the variable must not be used again; pos/who/chain say why.
type deadInfo struct {
	kind  dk
	pos   token.Pos
	who   string // `"push"` (callee) or "a channel send" (direct store)
	chain string // "push → an append" — the call chain taking ownership
}

// ownInfo: the variable holds a fresh packet this function must release,
// return, or store on every path.
type ownInfo struct {
	pos token.Pos // acquisition site (reported on leak)
	src string    // "Pool.Get" or `"Dequeue"`
}

type ownState struct {
	dead  map[types.Object]*deadInfo
	owned map[types.Object]*ownInfo
}

func newState() *ownState {
	return &ownState{dead: make(map[types.Object]*deadInfo), owned: make(map[types.Object]*ownInfo)}
}

func (s *ownState) clone() *ownState {
	out := newState()
	for k, v := range s.dead {
		out.dead[k] = v
	}
	for k, v := range s.owned {
		out.owned[k] = v
	}
	return out
}

func (s *ownState) reset() {
	clear(s.dead)
	clear(s.owned)
}

// union folds another path's facts in: dead is may-dead (any path
// suffices), owned is may-still-owned (a leak on any path is a leak).
// First writer wins so diagnostics are stable in walk order.
func (s *ownState) union(o *ownState) {
	for k, v := range o.dead {
		if _, ok := s.dead[k]; !ok {
			s.dead[k] = v
		}
	}
	for k, v := range o.owned {
		if _, ok := s.owned[k]; !ok {
			s.owned[k] = v
		}
	}
}

// ---- statement walk -----------------------------------------------------

// walkStmts analyses one statement list, mutating st in place, and
// reports whether the list always terminates abruptly (so facts
// established inside it never reach the code after the enclosing branch).
func (c *checker) walkStmts(list []ast.Stmt, st *ownState) bool {
	for _, s := range list {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st *ownState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, st)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if _, isB := c.pass.ObjectOf(id).(*types.Builtin); isB && id.Name == "panic" {
					return true
				}
			}
			if fresh := c.freshResults(call); len(fresh) > 0 {
				c.reportf(call.Pos(), "discarded result of %s carries ownership of a pooled packet; release, store, or return it (leak)",
					c.calleeLabel(call))
			}
		}
	case *ast.AssignStmt:
		c.walkAssign(s, st)
	case *ast.ReturnStmt:
		c.walkReturn(s, st)
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.IfStmt:
		return c.walkIf(s, st)
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, st)
		}
		c.loopBody(s.Body, s.Post, st)
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		if s.Tok == token.DEFINE {
			for _, kv := range []ast.Expr{s.Key, s.Value} {
				if id, ok := kv.(*ast.Ident); ok {
					if obj := c.pass.ObjectOf(id); obj != nil {
						delete(st.dead, obj)
						delete(st.owned, obj)
					}
				}
			}
		}
		c.loopBody(s.Body, nil, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkBranches(s, st)
	case *ast.DeferStmt:
		c.checkCall(s.Call, st, true)
	case *ast.GoStmt:
		c.checkCall(s.Call, st, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					for i := range vs.Names {
						c.assignOne(vs.Names[i], vs.Values[i], st)
					}
				} else {
					for _, v := range vs.Values {
						c.checkExpr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, st)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, st)
		if obj := c.trackedArg(s.Value); obj != nil {
			c.noteRead(s.Value.Pos(), obj, st)
			c.storeEvent(obj, s.Value.Pos(), "a channel send", st)
		} else {
			c.checkExpr(s.Value, st)
		}
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	}
	return false
}

// walkIf is branch-aware: the post-if state is recomposed from the
// surviving branch out-states only, so a branch that discharges an
// obligation (Put, store) is honoured at the join. Two conditions get
// special treatment: `if p == nil` prunes ownership on the nil arm (the
// Dequeue-empty idiom), and `if q.Enqueue(p)` / `if !q.Enqueue(p)`
// transfers ownership only on the success arm (the qdisc admission
// idiom, driven by a //pktown:enqueues summary).
func (c *checker) walkIf(s *ast.IfStmt, st *ownState) bool {
	if s.Init != nil {
		c.walkStmt(s.Init, st)
	}
	enq := c.enqueueCond(s.Cond, st)
	if enq == nil {
		c.checkExpr(s.Cond, st)
	}
	nm := c.nilCond(s.Cond)

	thenSt := st.clone()
	elseSt := st.clone() // also the fall-through state when there is no else
	if enq != nil {
		succSt := thenSt
		if enq.neg {
			succSt = elseSt
		}
		c.handoffEvent(enq.obj, enq.pos, ModeStores, enq.who, enq.chain, succSt, false)
	}
	if nm != nil {
		nilSt := thenSt
		if !nm.eq {
			nilSt = elseSt
		}
		delete(nilSt.owned, nm.obj) // nil ⇒ there is no packet to own
	}
	thenExits := c.walkStmts(s.Body.List, thenSt)
	elseExits := false
	if s.Else != nil {
		elseExits = c.walkStmt(s.Else, elseSt)
	}
	st.reset()
	if !thenExits {
		st.union(thenSt)
	}
	if !elseExits {
		st.union(elseSt)
	}
	return thenExits && elseExits && s.Else != nil
}

func (c *checker) walkAssign(s *ast.AssignStmt, st *ownState) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Op-assign (+= …) reads both sides and rebinds nothing.
		for _, e := range s.Rhs {
			c.checkExpr(e, st)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, st)
		}
		return
	}
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		// Tuple: a, b := f() — bind fresh results positionally.
		var fresh map[int]string
		call, isCall := unparen(s.Rhs[0]).(*ast.CallExpr)
		if isCall {
			fresh = c.freshResults(call)
		}
		c.checkExpr(s.Rhs[0], st)
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				c.checkExpr(lhs, st)
				continue
			}
			obj := c.pass.ObjectOf(id)
			if obj == nil {
				continue // blank identifier
			}
			c.rebind(obj, id.Pos(), st)
			if src, ok := fresh[i]; ok && isPacketVar(obj) {
				st.owned[obj] = &ownInfo{pos: call.Pos(), src: src}
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		c.assignOne(lhs, rhs, st)
	}
}

// assignOne handles a single lhs ← rhs pair, recognising the ownership
// idioms: binding a fresh result, transferring via alias, storing a
// tracked packet into a field/element, and plain rebinding.
func (c *checker) assignOne(lhs, rhs ast.Expr, st *ownState) {
	id, isIdent := lhs.(*ast.Ident)
	if isIdent {
		lobj := c.pass.ObjectOf(id)
		if lobj == nil { // blank identifier
			if rhs != nil {
				c.checkExpr(rhs, st)
			}
			return
		}
		// q := p — alias transfer: q inherits p's ownership and fate.
		if robj := c.trackedArg(rhs); robj != nil && robj != lobj {
			c.noteRead(rhs.Pos(), robj, st)
			c.rebind(lobj, id.Pos(), st)
			if oi, ok := st.owned[robj]; ok {
				st.owned[lobj] = oi
				delete(st.owned, robj)
			}
			if di, ok := st.dead[robj]; ok {
				st.dead[lobj] = di
			}
			return
		}
		// p := pool.Get() / p := q.Dequeue() — fresh ownership in.
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && isPacketVar(lobj) {
			if fresh := c.freshResults(call); fresh != nil {
				if src, ok := fresh[0]; ok {
					c.checkExpr(rhs, st)
					c.rebind(lobj, id.Pos(), st)
					st.owned[lobj] = &ownInfo{pos: call.Pos(), src: src}
					return
				}
			}
		}
		if rhs != nil {
			c.checkExpr(rhs, st)
		}
		c.rebind(lobj, id.Pos(), st)
		return
	}
	// x.f = p / s[i] = p / *q = p — the packet escapes into the target.
	if robj := c.trackedArg(rhs); robj != nil && isStoreTarget(lhs) {
		c.noteRead(rhs.Pos(), robj, st)
		c.storeEvent(robj, rhs.Pos(), storeNoun(lhs), st)
		c.checkExpr(lhs, st)
		return
	}
	if rhs != nil {
		c.checkExpr(rhs, st)
	}
	c.checkExpr(lhs, st)
}

func (c *checker) walkReturn(s *ast.ReturnStmt, st *ownState) {
	// return q.Enqueue(p) — the bool result forwards the admission
	// condition, so this function enqueues p rather than stores it.
	if len(s.Results) == 1 {
		if enq := c.enqueueCond(s.Results[0], st); enq != nil {
			if i, ok := c.frame.paramIdx[enq.obj]; ok {
				c.frame.sum.setParam(i, ModeEnqueues, enq.chain)
			}
			delete(st.owned, enq.obj)
			c.leakAll(st, c.pathAt(s.Pos()))
			return
		}
	}
	for i, e := range s.Results {
		c.checkExpr(e, st)
		if id, ok := unparen(e).(*ast.Ident); ok {
			obj := c.pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if oi, ok := st.owned[obj]; ok {
				delete(st.owned, obj)
				c.frame.sum.setFresh(i, oi.src)
			}
			continue
		}
		if call, ok := unparen(e).(*ast.CallExpr); ok {
			if fresh := c.freshResults(call); fresh != nil {
				if len(s.Results) == 1 {
					for ri, src := range fresh {
						c.frame.sum.setFresh(ri, src)
					}
				} else if src, ok := fresh[0]; ok {
					c.frame.sum.setFresh(i, src)
				}
			}
		}
	}
	if len(s.Results) == 0 {
		// Bare return: named results carry ownership out.
		for i, robj := range c.frame.results {
			if robj == nil {
				continue
			}
			if oi, ok := st.owned[robj]; ok {
				delete(st.owned, robj)
				c.frame.sum.setFresh(i, oi.src)
			}
		}
	}
	c.leakAll(st, c.pathAt(s.Pos()))
}

func (c *checker) pathAt(pos token.Pos) string {
	return fmt.Sprintf("the return at line %d", c.pass.Fset.Position(pos).Line)
}

// leakAll reports every packet still owned when a path leaves the
// function: it was neither released, returned, nor stored.
func (c *checker) leakAll(st *ownState, path string) {
	for obj, oi := range st.owned {
		c.reportf(oi.pos, "packet %q obtained from %s is leaked: %s neither releases, returns, nor stores it",
			obj.Name(), oi.src, path)
	}
}

// loopBody analyses a loop body twice: the second pass starts from the
// first pass's exit state, so a hazard that survives to the next
// iteration (release of a loop-carried packet, a leaked re-Get) is
// caught. The post-loop state keeps the pre-loop facts — the loop may
// run zero times.
func (c *checker) loopBody(body *ast.BlockStmt, post ast.Stmt, st *ownState) {
	first := st.clone()
	c.walkStmts(body.List, first)
	if post != nil {
		c.walkStmt(post, first)
	}
	second := first.clone()
	c.walkStmts(body.List, second)
	if post != nil {
		c.walkStmt(post, second)
	}
	st.union(second)
}

// walkBranches handles switch/type-switch/select: every clause starts
// from the pre-branch state; the post state is recomposed from the
// surviving clause out-states, plus the pre state when no default clause
// guarantees a branch is taken. Reports termination when every clause
// exits and a default exists.
func (c *checker) walkBranches(s ast.Stmt, st *ownState) bool {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	pre := st.clone()
	st.reset()
	hasDefault := false
	allExit := len(body.List) > 0
	for _, cl := range body.List {
		clSt := pre.clone()
		var exits bool
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.checkExpr(e, clSt)
			}
			exits = c.walkStmts(cl.Body, clSt)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.walkStmt(cl.Comm, clSt)
			}
			exits = c.walkStmts(cl.Body, clSt)
		}
		if !exits {
			st.union(clSt)
			allExit = false
		}
	}
	if !hasDefault {
		st.union(pre)
	}
	return allExit && hasDefault
}

// ---- expression walk ----------------------------------------------------

// checkExpr reports reads of dead packets within e, applies ownership
// events from calls, composite literals, address-taking and function
// literals, and descends everywhere else.
func (c *checker) checkExpr(e ast.Expr, st *ownState) {
	if e == nil {
		return
	}
	var pending []func() // store events applied after the read checks
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.captureLit(n, st)
			c.analyzeLit(n, c.frame.report)
			return false
		case *ast.CallExpr:
			c.checkCall(n, st, false)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := c.trackedArg(n.X); obj != nil {
					// Address taken: the packet is reachable through the
					// alias; stop tracking the variable entirely.
					c.noteRead(n.X.Pos(), obj, st)
					delete(st.owned, obj)
					delete(st.dead, obj)
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := c.trackedArg(v); obj != nil {
					obj, pos := obj, v.Pos()
					pending = append(pending, func() {
						c.storeEvent(obj, pos, "a composite literal", st)
					})
				}
			}
		case *ast.Ident:
			if obj := c.pass.ObjectOf(n); obj != nil {
				c.noteRead(n.Pos(), obj, st)
			}
		}
		return true
	})
	for _, f := range pending {
		f()
	}
}

// captureLit discharges ownership of every packet the literal captures:
// the closure is now responsible for (or a co-owner of) the packet, and
// intra-closure checks take over.
func (c *checker) captureLit(lit *ast.FuncLit, st *ownState) {
	if len(st.owned) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.ObjectOf(id); obj != nil {
				delete(st.owned, obj)
			}
		}
		return true
	})
}

// checkCall applies the callee's ownership contract to each argument:
// Pool.Put releases, summarised callees consume/store/enqueue/borrow,
// packets passed as interface values to module code escape, and builtin
// append stores. deferred calls discharge obligations without killing
// the variable (the defer runs at function exit).
func (c *checker) checkCall(call *ast.CallExpr, st *ownState, deferred bool) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := c.pass.ObjectOf(id).(*types.Builtin); isB {
			if id.Name == "append" && len(call.Args) > 0 {
				c.checkExpr(call.Args[0], st)
				for _, a := range call.Args[1:] {
					if obj := c.trackedArg(a); obj != nil {
						c.noteRead(a.Pos(), obj, st)
						c.storeEvent(obj, a.Pos(), "an append", st)
					} else {
						c.checkExpr(a, st)
					}
				}
				return
			}
			for _, a := range call.Args {
				c.checkExpr(a, st)
			}
			return
		}
	}
	if obj := c.releaseArg(call); obj != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			c.checkExpr(sel.X, st)
		}
		c.releaseEvent(obj, call.Pos(), st, deferred)
		return
	}

	fn := c.calleeFunc(call)
	sum := c.summaryFor(fn)
	sig, _ := c.pass.TypeOf(call.Fun).(*types.Signature)
	switch f := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		c.checkExpr(f.X, st)
	case *ast.Ident:
		// Plain function name; nothing to read.
	default:
		c.checkExpr(call.Fun, st)
	}
	name := c.calleeLabel(call)
	for i, a := range call.Args {
		obj := c.trackedArg(a)
		if obj == nil {
			c.checkExpr(a, st)
			continue
		}
		pi, ptype := paramAt(sig, i)
		mode, chain := ModeBorrows, ""
		if sum != nil {
			if ps, ok := sum.Params[pi]; ok {
				mode, chain = ps.Mode, composeChain(fn.Name(), ps.Chain)
			}
		}
		if mode == ModeBorrows && ptype != nil && types.IsInterface(ptype) && inModule(fn) {
			// Handing a packet to module code through an interface-typed
			// parameter (sim.ScheduleCall payloads, event args) parks it
			// where the analyzer cannot follow: treat as an escape.
			mode, chain = ModeStores, "escapes via an interface-typed parameter"
		}
		switch mode {
		case ModeBorrows:
			c.noteRead(a.Pos(), obj, st)
		case ModeEnqueues:
			// Outside the recognised if/return forms the success branch
			// is unknown: conservatively the packet may be stored.
			c.handoffEvent(obj, call.Pos(), ModeStores, name, chain, st, deferred)
		default:
			c.handoffEvent(obj, call.Pos(), mode, name, chain, st, deferred)
		}
	}
}

// ---- events and reports -------------------------------------------------

// noteRead reports a use of a dead packet variable.
func (c *checker) noteRead(pos token.Pos, obj types.Object, st *ownState) {
	di, ok := st.dead[obj]
	if !ok {
		return
	}
	switch di.kind {
	case dkReleased:
		c.reportf(pos, "packet %q used after release to the pool (released at %s)",
			obj.Name(), c.pass.Fset.Position(di.pos))
	case dkHandoff:
		c.reportf(pos, "packet %q used after hand-off to %s at %s (%s)",
			obj.Name(), di.who, c.pass.Fset.Position(di.pos), di.chain)
	default:
		c.reportf(pos, "packet %q used after being stored (%s at %s)",
			obj.Name(), di.who, c.pass.Fset.Position(di.pos))
	}
}

// releaseEvent handles pool.Put(p).
func (c *checker) releaseEvent(obj types.Object, pos token.Pos, st *ownState, deferred bool) {
	if di, ok := st.dead[obj]; ok {
		switch di.kind {
		case dkReleased:
			c.reportf(pos, "packet %q released twice (already released at %s)",
				obj.Name(), c.pass.Fset.Position(di.pos))
		case dkHandoff:
			c.reportf(pos, "packet %q released twice (already handed off to %s at %s via %s)",
				obj.Name(), di.who, c.pass.Fset.Position(di.pos), di.chain)
		default:
			c.reportf(pos, "packet %q released after being stored (%s at %s)",
				obj.Name(), di.who, c.pass.Fset.Position(di.pos))
		}
	}
	delete(st.owned, obj)
	if !deferred {
		if _, ok := st.dead[obj]; !ok {
			st.dead[obj] = &deadInfo{kind: dkReleased, pos: pos}
		}
	}
	if i, ok := c.frame.paramIdx[obj]; ok {
		c.frame.sum.setParam(i, ModeConsumes, "Pool.Put")
	}
}

// handoffEvent handles passing obj to a callee that consumes or stores
// it (per summary), recording the summary event when obj is a parameter.
func (c *checker) handoffEvent(obj types.Object, pos token.Pos, mode ParamMode, who, chain string, st *ownState, deferred bool) {
	if di, ok := st.dead[obj]; ok {
		switch di.kind {
		case dkReleased:
			c.reportf(pos, "packet %q handed off to %s after release to the pool (released at %s)",
				obj.Name(), who, c.pass.Fset.Position(di.pos))
		case dkHandoff:
			c.reportf(pos, "packet %q handed off twice (to %s, but already handed off to %s at %s)",
				obj.Name(), who, di.who, c.pass.Fset.Position(di.pos))
		default:
			c.reportf(pos, "packet %q handed off to %s after being stored (%s at %s)",
				obj.Name(), who, di.who, c.pass.Fset.Position(di.pos))
		}
	}
	delete(st.owned, obj)
	if !deferred {
		if _, ok := st.dead[obj]; !ok {
			st.dead[obj] = &deadInfo{kind: dkHandoff, pos: pos, who: who, chain: chain}
		}
	}
	if i, ok := c.frame.paramIdx[obj]; ok {
		c.frame.sum.setParam(i, mode, chain)
	}
}

// storeEvent handles a direct escape: field/element assignment, channel
// send, append, composite literal.
func (c *checker) storeEvent(obj types.Object, pos token.Pos, noun string, st *ownState) {
	delete(st.owned, obj)
	if _, ok := st.dead[obj]; !ok {
		st.dead[obj] = &deadInfo{kind: dkStored, pos: pos, who: noun}
	}
	if i, ok := c.frame.paramIdx[obj]; ok {
		c.frame.sum.setParam(i, ModeStores, noun)
	}
}

// rebind clears a variable's state on assignment; overwriting a
// still-owned packet is a leak.
func (c *checker) rebind(obj types.Object, pos token.Pos, st *ownState) {
	if oi, ok := st.owned[obj]; ok {
		c.reportf(pos, "packet %q obtained from %s at %s is overwritten before being released, returned, or stored (leak)",
			obj.Name(), oi.src, c.pass.Fset.Position(oi.pos))
		delete(st.owned, obj)
	}
	delete(st.dead, obj)
}

// ---- condition idioms ---------------------------------------------------

type enqMatch struct {
	obj   types.Object
	pos   token.Pos
	who   string
	chain string
	neg   bool
}

// enqueueCond matches `q.Enqueue(p)` / `!q.Enqueue(p)` where the callee
// summary says the packet parameter is enqueues-mode. On a match it
// performs the non-transferring reads (receiver, other args, p itself)
// and returns the transfer for the caller to apply to the success branch.
func (c *checker) enqueueCond(cond ast.Expr, st *ownState) *enqMatch {
	e := unparen(cond)
	neg := false
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		neg = true
		e = unparen(u.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := c.calleeFunc(call)
	sum := c.summaryFor(fn)
	if sum == nil {
		return nil
	}
	sig, _ := c.pass.TypeOf(call.Fun).(*types.Signature)
	for i, a := range call.Args {
		pi, _ := paramAt(sig, i)
		ps, ok := sum.Params[pi]
		if !ok || ps.Mode != ModeEnqueues {
			continue
		}
		obj := c.trackedArg(a)
		if obj == nil {
			continue
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			c.checkExpr(sel.X, st)
		}
		for j, b := range call.Args {
			if j != i {
				c.checkExpr(b, st)
			}
		}
		c.noteRead(a.Pos(), obj, st)
		return &enqMatch{
			obj:   obj,
			pos:   call.Pos(),
			who:   fmt.Sprintf("%q", fn.Name()),
			chain: composeChain(fn.Name(), ps.Chain),
			neg:   neg,
		}
	}
	return nil
}

type nilMatch struct {
	obj types.Object
	eq  bool // p == nil (true) vs p != nil (false)
}

// nilCond matches `p == nil` / `p != nil` on a tracked packet variable.
func (c *checker) nilCond(cond ast.Expr) *nilMatch {
	b, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return nil
	}
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		obj := c.trackedArg(pair[0])
		if obj == nil {
			continue
		}
		if id, ok := unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
			return &nilMatch{obj: obj, eq: b.Op == token.EQL}
		}
	}
	return nil
}

// ---- resolution helpers -------------------------------------------------

// trackedArg returns the object when e is a plain identifier naming a
// *packet.Packet variable.
func (c *checker) trackedArg(e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.ObjectOf(id)
	if v, ok := obj.(*types.Var); ok && isPacketPtr(v.Type()) {
		return obj
	}
	return nil
}

func isPacketVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && isPacketPtr(v.Type())
}

// releaseArg returns the packet variable being released if call is
// pool.Put(p) on an internal/packet.Pool, else nil.
func (c *checker) releaseArg(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil
	}
	fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || !poolMethod(fn, "Put") {
		return nil
	}
	return c.trackedArg(call.Args[0])
}

// isPoolGet matches pool.Get().
func (c *checker) isPoolGet(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" || len(call.Args) != 0 {
		return false
	}
	fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
	return ok && poolMethod(fn, "Get")
}

// freshResults returns result index → provenance for calls whose results
// carry ownership to the caller, or nil.
func (c *checker) freshResults(call *ast.CallExpr) map[int]string {
	if c.isPoolGet(call) {
		return map[int]string{0: "Pool.Get"}
	}
	fn := c.calleeFunc(call)
	sum := c.summaryFor(fn)
	if sum == nil || len(sum.Fresh) == 0 {
		return nil
	}
	out := make(map[int]string, len(sum.Fresh))
	for i := range sum.Fresh {
		out[i] = fmt.Sprintf("%q", fn.Name())
	}
	return out
}

func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.ObjectOf(f).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.ObjectOf(f.Sel).(*types.Func)
		return fn
	}
	return nil
}

// calleeLabel names the callee for diagnostics, quoted.
func (c *checker) calleeLabel(call *ast.CallExpr) string {
	if fn := c.calleeFunc(call); fn != nil {
		return fmt.Sprintf("%q", fn.Name())
	}
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fmt.Sprintf("%q", f.Name)
	case *ast.SelectorExpr:
		return fmt.Sprintf("%q", f.Sel.Name)
	}
	return "the call"
}

// paramAt maps argument index i to the parameter index and type,
// accounting for variadics.
func paramAt(sig *types.Signature, i int) (int, types.Type) {
	if sig == nil || sig.Params().Len() == 0 {
		return i, nil
	}
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		t := sig.Params().At(n - 1).Type()
		if s, ok := t.(*types.Slice); ok {
			t = s.Elem()
		}
		return n - 1, t
	}
	if i < n {
		return i, sig.Params().At(i).Type()
	}
	return i, nil
}

func isStoreTarget(e ast.Expr) bool {
	switch e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func storeNoun(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a field store"
	case *ast.IndexExpr:
		return "an element store"
	}
	return "a pointer store"
}

func composeChain(callee, sub string) string {
	if sub == "" {
		return callee
	}
	return callee + " → " + sub
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
