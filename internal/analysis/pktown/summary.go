package pktown

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"cebinae/internal/analysis"
)

// ParamMode classifies what a function does with a *packet.Packet
// parameter. The modes form a join lattice ordered by how much of the
// caller's ownership the callee takes: summaries merge by max, and a
// larger mode always implies the caller must not touch the packet after
// the call (except Borrows, and Enqueues only on the success branch).
type ParamMode uint8

const (
	// ModeBorrows: the callee only reads the packet; the caller keeps
	// ownership. The default for unknown callees.
	ModeBorrows ParamMode = iota
	// ModeEnqueues: the callee stores the packet iff its (single, bool)
	// result is true — the qdisc admission idiom. On the false branch the
	// caller still owns the packet and must dispose of it.
	ModeEnqueues
	// ModeStores: the packet escapes into a field, slice, channel or
	// interface value on some path; the caller must not use it again.
	ModeStores
	// ModeConsumes: the callee releases the packet to the pool (or
	// forwards it to a consuming callee) on some path.
	ModeConsumes
)

func (m ParamMode) String() string {
	switch m {
	case ModeEnqueues:
		return "enqueues"
	case ModeStores:
		return "stores"
	case ModeConsumes:
		return "consumes"
	}
	return "borrows"
}

// A ParamSummary is one parameter's classification plus the call chain
// that justifies it, for diagnostics ("push → an append").
type ParamSummary struct {
	Mode  ParamMode
	Chain string
}

// A FuncSummary is the ownership contract of one function: parameter
// modes by flattened parameter index (only *packet.Packet parameters
// appear) and result freshness by result index (only results that carry
// ownership to the caller appear; absent means borrowed).
type FuncSummary struct {
	Params map[int]ParamSummary
	Fresh  map[int]string // result index → provenance chain
}

func (s *FuncSummary) empty() bool {
	return s == nil || (len(s.Params) == 0 && len(s.Fresh) == 0)
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	if s.empty() || o.empty() {
		return s.empty() == o.empty()
	}
	if len(s.Params) != len(o.Params) || len(s.Fresh) != len(o.Fresh) {
		return false
	}
	for i, p := range s.Params {
		if o.Params[i] != p {
			return false
		}
	}
	for i, c := range s.Fresh {
		if o.Fresh[i] != c {
			return false
		}
	}
	return true
}

// setParam raises parameter i to mode (modes only grow during the SCC
// fixpoint, which guarantees termination). The first chain that
// establishes a mode is kept so diagnostics are stable.
func (s *FuncSummary) setParam(i int, mode ParamMode, chain string) {
	if s.Params == nil {
		s.Params = make(map[int]ParamSummary)
	}
	if prev, ok := s.Params[i]; ok && prev.Mode >= mode {
		return
	}
	s.Params[i] = ParamSummary{Mode: mode, Chain: chain}
}

func (s *FuncSummary) setFresh(i int, chain string) {
	if s.Fresh == nil {
		s.Fresh = make(map[int]string)
	}
	if _, ok := s.Fresh[i]; !ok {
		s.Fresh[i] = chain
	}
}

// funcKey is the stable cross-package identity of a function:
// "pkgpath.Recv.Name" (receiver pointerness stripped, interface methods
// keyed by the interface type). types.Object identity cannot serve here —
// the object a caller package sees through export data differs from the
// one the declaring package was checked with — but this string does not.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(fn.Pkg().Path())
	b.WriteByte('.')
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok {
			b.WriteString(n.Obj().Name())
		} else {
			b.WriteString(rt.String())
		}
		b.WriteByte('.')
	}
	b.WriteString(fn.Name())
	return b.String()
}

// isPacketPtr reports whether t is *packet.Packet (matched by type and
// package name so the analyzer works against both the real
// internal/packet and the fixture stub).
func isPacketPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Packet" && obj.Pkg() != nil && obj.Pkg().Name() == "packet"
}

// poolMethod reports whether fn is the named method on
// internal/packet.Pool.
func poolMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	n, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Name() == "packet"
}

// inModule reports whether fn is declared in this module (or a fixture
// package): the interface-parameter escape rule applies only to our own
// sinks (sim.ScheduleCall and friends), never to fmt and the like.
func inModule(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return !strings.Contains(path, ".") || path == "cebinae" || strings.HasPrefix(path, "cebinae/")
}

// ---- //pktown: directives ----------------------------------------------
//
//	//pktown:consumes <param> <reason>
//	//pktown:stores   <param> <reason>
//	//pktown:enqueues <param> <reason>
//	//pktown:borrows  <param> <reason>
//	//pktown:fresh    return  <reason>
//
// placed in the doc comment of a function declaration or an interface
// method. The reason is mandatory, mirroring //lint:ignore. Annotations
// override inference and are the only way to give an interface method a
// non-default contract (interface bodies cannot be inferred).

// collectAnnotations parses every //pktown: comment in the package,
// attaches well-formed ones to their function or interface method, and
// reports malformed or misplaced ones. It returns summaries keyed by the
// declaring object plus the targets in source order (for deterministic
// export).
func collectAnnotations(pass *analysis.Pass) (map[types.Object]*FuncSummary, []types.Object) {
	out := make(map[types.Object]*FuncSummary)
	var order []types.Object
	handled := make(map[*ast.Comment]bool)

	attach := func(doc *ast.CommentGroup, obj types.Object, params *ast.FieldList, results *ast.FieldList) {
		if doc == nil || obj == nil {
			return
		}
		for _, cm := range doc.List {
			rest, ok := strings.CutPrefix(cm.Text, "//pktown:")
			if !ok {
				continue
			}
			handled[cm] = true
			fields := strings.Fields(rest)
			if len(fields) < 3 {
				pass.Reportf(cm.Pos(), "malformed //pktown: directive: need `//pktown:<mode> <param|return> <reason>` (the reason is mandatory)")
				continue
			}
			mode, target := fields[0], fields[1]
			sum := out[obj]
			if sum == nil {
				sum = &FuncSummary{}
				out[obj] = sum
				order = append(order, obj)
			}
			switch mode {
			case "fresh":
				if target != "return" {
					pass.Reportf(cm.Pos(), "//pktown:fresh target must be `return`, got %q", target)
					continue
				}
				idx, ok := packetResultIndex(pass, results)
				if !ok {
					pass.Reportf(cm.Pos(), "//pktown:fresh on a function with no *packet.Packet result")
					continue
				}
				sum.setFresh(idx, "//pktown:fresh")
			case "consumes", "stores", "enqueues", "borrows":
				idx, ok := packetParamIndex(pass, params, target)
				if !ok {
					pass.Reportf(cm.Pos(), "//pktown:%s target %q is not a *packet.Packet parameter of this function", mode, target)
					continue
				}
				m := map[string]ParamMode{
					"consumes": ModeConsumes, "stores": ModeStores,
					"enqueues": ModeEnqueues, "borrows": ModeBorrows,
				}[mode]
				// setParam keeps the max mode; force the annotated one.
				if sum.Params == nil {
					sum.Params = make(map[int]ParamSummary)
				}
				sum.Params[idx] = ParamSummary{Mode: m, Chain: "//pktown:" + mode}
			default:
				pass.Reportf(cm.Pos(), "unknown //pktown: mode %q (want consumes, stores, enqueues, borrows, or fresh)", mode)
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				attach(n.Doc, pass.ObjectOf(n.Name), n.Type.Params, n.Type.Results)
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					if len(m.Names) != 1 {
						continue // embedded interface
					}
					ft, ok := m.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					attach(m.Doc, pass.ObjectOf(m.Names[0]), ft.Params, ft.Results)
				}
			}
			return true
		})
		// Anything left over sits on a comment the attachment walk never
		// reached: a misplaced directive that silently binds to nothing.
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if strings.HasPrefix(cm.Text, "//pktown:") && !handled[cm] {
					pass.Reportf(cm.Pos(), "misplaced //pktown: directive: it must be in the doc comment of a function declaration or interface method")
				}
			}
		}
	}
	return out, order
}

// packetParamIndex resolves a parameter name from a directive to its
// flattened index, requiring the parameter to be *packet.Packet.
func packetParamIndex(pass *analysis.Pass, params *ast.FieldList, name string) (int, bool) {
	if params == nil {
		return 0, false
	}
	idx := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies an index
		}
		for i := 0; i < n; i++ {
			if i < len(field.Names) && field.Names[i].Name == name {
				if t := pass.TypeOf(field.Type); t != nil && isPacketPtr(t) {
					return idx, true
				}
				return 0, false
			}
			idx++
		}
	}
	return 0, false
}

// packetResultIndex returns the index of the first *packet.Packet result.
func packetResultIndex(pass *analysis.Pass, results *ast.FieldList) (int, bool) {
	if results == nil {
		return 0, false
	}
	idx := 0
	for _, field := range results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if t := pass.TypeOf(field.Type); t != nil && isPacketPtr(t) {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// describeMode renders a summary entry for a diagnostic chain.
func describeChain(callee string, chain string) string {
	if chain == "" {
		return fmt.Sprintf("%q", callee)
	}
	return fmt.Sprintf("%s → %s", callee, chain)
}
