package pktown_test

import (
	"testing"

	"cebinae/internal/analysis/analysistest"
	"cebinae/internal/analysis/pktown"
)

func TestPktOwn(t *testing.T) {
	analysistest.Run(t, pktown.Analyzer,
		"pktown_bad",
		"pktown_clean",
		"pktown_interproc_bad",
		"pktown_interproc_clean",
	)
}
