// Package analysis is a self-contained static-analysis framework for the
// cebinae repository, mirroring the golang.org/x/tools/go/analysis API
// surface (Analyzer, Pass, Diagnostic) on the standard library alone — the
// build environment vendors no third-party modules, so the framework loads
// packages via `go list -export` and type-checks them with go/types.
//
// The analyzers under internal/analysis/... encode this codebase's
// determinism and ownership invariants (see STATIC_ANALYSIS.md):
//
//   - detsource: no wall-clock or global randomness in simulation code
//   - mapiter:   no order-sensitive work driven by map iteration
//   - pktown:    no use-after-release / double release of pooled packets
//   - simtime:   no lossy float64 round-trips on sim.Time arithmetic
//
// Violations that are deliberate carry a justification directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. A directive
// without a reason is itself a diagnostic: every exemption must say why it
// is safe. `//lint:file-ignore <analyzer> <reason>` exempts a whole file.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. Run inspects a single package
// through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. It is called once per package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Summaries is the analyzer's cross-package fact store: one instance
	// per analyzer per Run, shared across every package the analyzer
	// polices. Run visits packages in dependency order, so by the time a
	// package is analysed the summaries of everything it imports are
	// already present. May be nil when the driver provides no store.
	Summaries *Summaries

	diags *[]Diagnostic
}

// Summaries carries analyzer-defined facts about functions across package
// boundaries. Keys are stable strings (pktown uses "pkgpath.Recv.Method")
// rather than types.Object: the object for a function differs between the
// source-checked package that declares it and the export-data import seen
// by its callers, but the key does not.
type Summaries struct {
	m map[string]any
}

// NewSummaries returns an empty store.
func NewSummaries() *Summaries { return &Summaries{m: make(map[string]any)} }

// Lookup returns the fact stored under key, if any.
func (s *Summaries) Lookup(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	v, ok := s.m[key]
	return v, ok
}

// Store records a fact under key, replacing any previous value.
func (s *Summaries) Store(key string, v any) {
	if s == nil {
		return
	}
	s.m[key] = v
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by identifier id, consulting both
// definitions and uses, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// A Diagnostic is one finding, located by file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// ignoreDirective is a parsed //lint:ignore or //lint:file-ignore comment.
type ignoreDirective struct {
	analyzers []string // analyzer names, or ["all"]
	reason    string
	line      int
	fname     string
	file      bool // file-ignore: applies to the whole file
	pos       token.Pos
	used      bool // suppressed at least one diagnostic this Run
}

// coversAny reports whether the directive names any analyzer in ran.
func (d *ignoreDirective) coversAny(ran map[string]bool) bool {
	for name := range ran {
		if d.covers(name) {
			return true
		}
	}
	return false
}

func (d *ignoreDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// parseDirectives extracts lint directives from a file's comments. A
// malformed directive (no analyzer list or no reason) is reported through
// report so that unjustified exemptions cannot land silently.
func parseDirectives(fset *token.FileSet, f *ast.File, report func(pos token.Pos, msg string)) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, fileWide := directiveText(c.Text)
			if text == "" {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) < 2 {
				report(c.Pos(), "malformed lint directive: need `//lint:ignore <analyzer> <reason>` (the reason is mandatory)")
				continue
			}
			out = append(out, &ignoreDirective{
				analyzers: strings.Split(fields[0], ","),
				reason:    strings.Join(fields[1:], " "),
				line:      fset.Position(c.Pos()).Line,
				fname:     fset.Position(c.Pos()).Filename,
				file:      fileWide,
				pos:       c.Pos(),
			})
		}
	}
	return out
}

// directiveText returns the payload after the directive marker and whether
// it is file-wide; both empty/false for ordinary comments.
func directiveText(comment string) (string, bool) {
	if rest, ok := strings.CutPrefix(comment, "//lint:ignore "); ok {
		return strings.TrimSpace(rest), false
	}
	if rest, ok := strings.CutPrefix(comment, "//lint:file-ignore "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// suppressed reports whether diagnostic d is covered by a directive: a
// file-ignore for its analyzer, or a line directive on the same line or
// the line immediately above. A directive that fires is marked used, so
// Run can flag the ones that suppress nothing (unused-directive).
func suppressed(d Diagnostic, directives []*ignoreDirective) bool {
	for _, dir := range directives {
		if !dir.covers(d.Analyzer) || dir.fname != d.Pos.Filename {
			continue
		}
		if dir.file || dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			dir.used = true
			return true
		}
	}
	return false
}
