package analysis

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// mustParse type-checks a dependency-free source string into a *Package.
func mustParse(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func policeAll(string) bool { return true }

func TestRunPropagatesAnalyzerError(t *testing.T) {
	pkg := mustParse(t, "package p\n")
	boom := errors.New("boom")
	a := &Analyzer{Name: "failing", Run: func(*Pass) error { return boom }}
	_, err := Run([]*Package{pkg}, []Policy{{Analyzer: a, Polices: policeAll}})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
}

func TestRunSkipsUnpolicedPackages(t *testing.T) {
	pkg := mustParse(t, "package p\n")
	ran := false
	a := &Analyzer{Name: "never", Run: func(*Pass) error { ran = true; return nil }}
	diags, err := Run([]*Package{pkg}, []Policy{{Analyzer: a, Polices: func(string) bool { return false }}})
	if err != nil || len(diags) != 0 || ran {
		t.Fatalf("unpoliced package was analysed: diags=%v err=%v ran=%v", diags, err, ran)
	}
}

func TestRunReportsMalformedDirectives(t *testing.T) {
	pkg := mustParse(t, "package p\n\n//lint:ignore detsource\nvar x int\n")
	a := &Analyzer{Name: "noop", Run: func(*Pass) error { return nil }}
	diags, err := Run([]*Package{pkg}, []Policy{{Analyzer: a, Polices: policeAll}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" {
		t.Fatalf("want one lintdirective diagnostic, got %v", diags)
	}
	if s := diags[0].String(); !strings.Contains(s, "[lintdirective]") || !strings.Contains(s, "p.go") {
		t.Fatalf("Diagnostic.String missing position or analyzer tag: %q", s)
	}
}

func TestRunSortsDiagnostics(t *testing.T) {
	pkg := mustParse(t, "package p\n\nvar a int\nvar b int\n")
	a := &Analyzer{Name: "everyvar", Run: func(p *Pass) error {
		// Report in reverse declaration order; Run must sort by position.
		decls := p.Files[0].Decls
		for i := len(decls) - 1; i >= 0; i-- {
			p.Reportf(decls[i].Pos(), "decl")
		}
		return nil
	}}
	diags, err := Run([]*Package{pkg}, []Policy{{Analyzer: a, Polices: policeAll}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Pos.Line > diags[1].Pos.Line {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}

func TestRunFlagsUnusedDirectives(t *testing.T) {
	pkg := mustParse(t, `package p

//lint:ignore everyvar nothing here actually fires
var a int
`)
	a := &Analyzer{Name: "everyvar", Run: func(*Pass) error { return nil }}
	diags, err := Run([]*Package{pkg}, []Policy{{Analyzer: a, Polices: policeAll}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "unused-directive" {
		t.Fatalf("want one unused-directive diagnostic, got %v", diags)
	}
	if diags[0].Pos.Line != 3 {
		t.Fatalf("unused-directive should point at the directive line, got %v", diags[0].Pos)
	}
}

func TestRunUnusedDirectiveSkipsAnalyzersThatDidNotRun(t *testing.T) {
	// A directive for an analyzer whose policy excludes this package (or
	// that is absent from the run entirely, as in single-analyzer fixture
	// runs) must not be flagged: only its own policy can judge it.
	pkg := mustParse(t, `package p

//lint:ignore otheranalyzer justified elsewhere
var a int
`)
	a := &Analyzer{Name: "everyvar", Run: func(*Pass) error { return nil }}
	diags, err := Run([]*Package{pkg}, []Policy{{Analyzer: a, Polices: policeAll}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("directive for non-running analyzer was flagged: %v", diags)
	}
}

func TestRunDependencyOrderSharesSummaries(t *testing.T) {
	// Two dependency-free packages: order falls back to lexicographic, and
	// both passes see the same Summaries store.
	pa := mustParse(t, "package p\n")
	pa.Path = "m/a"
	pb := mustParse(t, "package p\n")
	pb.Path = "m/b"
	var order []*token.FileSet
	var stores []*Summaries
	a := &Analyzer{Name: "probe", Run: func(p *Pass) error {
		order = append(order, p.Fset)
		stores = append(stores, p.Summaries)
		return nil
	}}
	// Feed packages in reverse-lexicographic order; Run must resort.
	if _, err := Run([]*Package{pb, pa}, []Policy{{Analyzer: a, Polices: policeAll}}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != pa.Fset || order[1] != pb.Fset {
		t.Fatalf("packages not processed in lexicographic path order")
	}
	if stores[0] == nil || stores[0] != stores[1] {
		t.Fatalf("analyzer did not get one shared Summaries store across packages")
	}
}

func TestRunAppliesIgnoreDirectives(t *testing.T) {
	pkg := mustParse(t, `package p

//lint:ignore everyvar justified for the test
var a int
var b int
`)
	a := &Analyzer{Name: "everyvar", Run: func(p *Pass) error {
		for _, d := range p.Files[0].Decls {
			if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				p.Reportf(gd.Pos(), "var decl")
			}
		}
		return nil
	}}
	diags, err := Run([]*Package{pkg}, []Policy{{Analyzer: a, Polices: policeAll}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Pos.Line != 5 {
		t.Fatalf("directive should suppress only the annotated line; got %v", diags)
	}
}
