package benchkit

import (
	"flag"
	"fmt"
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

func BenchmarkEngineDispatch(b *testing.B)        { EngineDispatch(b) }
func BenchmarkEngineDispatchClosure(b *testing.B) { EngineDispatchClosure(b) }
func BenchmarkEngineScheduleCancel(b *testing.B)  { EngineScheduleCancel(b) }
func BenchmarkTimerChurn(b *testing.B)            { TimerChurn(b) }
func BenchmarkNetemForward(b *testing.B)          { NetemForward(b) }
func BenchmarkDumbbellE2E(b *testing.B)           { DumbbellE2E(b) }

func BenchmarkChainE2E(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), ChainE2EShards(shards))
	}
}

// TestEngineDispatchZeroAlloc pins the tentpole invariant: the typed
// fast-path schedule+dispatch cycle performs no allocation at steady state.
func TestEngineDispatchZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	l := &dispatchLoop{eng: eng}
	// Warm: the first ScheduleCall allocates the one event the loop reuses.
	l.remaining = 2
	eng.ScheduleCall(1, l, nil)
	eng.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		l.remaining = 10
		eng.ScheduleCall(1, l, nil)
		eng.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("typed dispatch cycle allocates %.1f objects/run, want 0", allocs)
	}
}

// TestScheduleCancelAllocs pins the closure schedule+cancel cycle at
// exactly one allocation: the Event handle itself. This cost is accepted,
// not an oversight — the handle Schedule returns may be retained by the
// caller forever, so a fired or cancelled closure event can never be
// proven unreferenced; recycling one would let a stale handle's Cancel
// kill an unrelated later event (the ABA hazard sim.Engine.At documents).
// Hot-path callers avoid the alloc by embedding a sim.Timer instead, which
// TestTimerChurnZeroAlloc pins at zero.
func TestScheduleCancelAllocs(t *testing.T) {
	eng := sim.NewEngine()
	fn := func() {}
	ev := eng.Schedule(1, fn)
	allocs := testing.AllocsPerRun(1000, func() {
		eng.Cancel(ev)
		ev = eng.Schedule(1, fn)
	})
	if allocs != 1 {
		t.Fatalf("closure schedule+cancel allocates %.1f objects/op, want exactly 1 (the Event handle)", allocs)
	}
}

// TestTimerChurnZeroAlloc pins the Timer surface: re-arming a standing
// population of wheel-resident timers allocates nothing.
func TestTimerChurnZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	h := timerNopHandler{}
	const depth = 64
	var tms [depth]sim.Timer
	for i := range tms {
		eng.ArmTimer(&tms[i], sim.Time(i+1)*sim.Time(1e6), h, nil)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		slot := i % depth
		i++
		eng.ArmTimer(&tms[slot], sim.Time(slot+1)*sim.Time(1e6), h, nil)
	})
	if allocs != 0 {
		t.Fatalf("timer re-arm churn allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTCPRTTZeroAlloc pins the full transport timer plane: at steady
// state, a round-trip's worth of simulated TCP — pacing and RTO timer
// re-arms, delayed-ACK arms/cancels, SACK scoreboard updates, sent-record
// recycling — runs without allocating.
func TestTCPRTTZeroAlloc(t *testing.T) {
	const rtt = sim.Time(20e6)
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	d := netem.BuildDumbbell(w, netem.DumbbellConfig{
		FlowCount:       1,
		BottleneckBps:   100e6,
		BottleneckDelay: sim.Time(0.1e6),
		RTTs:            []sim.Time{rtt},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc { return qdisc.NewFIFO(450 * 1500) },
		DefaultQdisc:    func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})
	key := packet.FlowKey{Src: d.Senders[0].ID, Dst: d.Receivers[0].ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	tcp.NewConn(eng, d.Senders[0], tcp.Config{Key: key})
	tcp.NewReceiver(eng, d.Receivers[0], tcp.ReceiverConfig{Key: key, DelAckCount: 2})
	// Warm well past slow start so pools, rings, and the scoreboard have
	// reached their steady-state sizes.
	horizon := sim.Time(2e9)
	eng.Run(horizon)
	allocs := testing.AllocsPerRun(20, func() {
		horizon += rtt
		eng.Run(horizon)
	})
	if allocs != 0 {
		t.Fatalf("one RTT of steady-state TCP allocates %.1f objects, want 0", allocs)
	}
}

// qdisc, persistent transmit event, and pooled propagation event together
// move a packet across a hop without allocating.
func TestNetemForwardZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, c := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, c, netem.LinkConfig{RateBps: 1e9, Delay: 1000})
	da.SetQdisc(qdisc.NewFIFO(1 << 20))
	db.SetQdisc(qdisc.NewFIFO(1 << 20))
	key := packet.FlowKey{Src: a.ID, Dst: c.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	c.Register(key, nullEndpoint{})
	a.AddRoute(c.ID, da)
	forward := func() {
		p := a.AllocPacket()
		p.Flow = key
		p.Size = 1500
		p.PayloadSize = 1448
		a.Inject(p)
		eng.RunAll()
	}
	forward() // warm pool + free lists
	allocs := testing.AllocsPerRun(100, forward)
	if allocs != 0 {
		t.Fatalf("forwarding hot path allocates %.1f objects/run, want 0", allocs)
	}
	if reuses := w.Pool().Reuses; reuses == 0 {
		t.Fatal("packet pool never recycled a packet")
	}
}

func BenchmarkBackbone(b *testing.B) { Backbone(b) }

// TestBackboneSteadyStateAllocs pins the benchmark rig's send path at full
// population: once the 10^5-flow admission burst has run, advancing the
// closed-loop replay costs effectively nothing per packet — the residue is
// flow churn (free-list growth, feedback-index resizing), amortised well
// below one allocation per hundred packets. (The replay package pins the
// per-packet path at exactly zero on a single flow; this covers the same
// path at the cardinality the Backbone benchmark reports.)
func TestBackboneSteadyStateAllocs(t *testing.T) {
	rig := newBackboneRig()
	source := rig.attach(backboneSchedule())
	// Warm a quarter of the horizon: the admission burst is behind, the
	// packet pool and event heap have reached congestion-depth sizes, and
	// early flow retirements have grown the free list.
	horizon := sim.Time(10e6)
	rig.eng.RunUntil(horizon)
	if source.Stats.PeakActive < backboneFlows {
		t.Fatalf("admission burst left %d of %d flows live", source.Stats.PeakActive, backboneFlows)
	}
	before := source.Stats.SentPackets
	allocs := testing.AllocsPerRun(5, func() {
		horizon += sim.Time(1e6)
		rig.eng.RunUntil(horizon)
	})
	perWindow := float64(source.Stats.SentPackets-before) / 6 // warmup run + 5 measured
	if perWindow == 0 {
		t.Fatal("no packets moved during measurement")
	}
	if perPkt := allocs / perWindow; perPkt > 0.01 {
		t.Fatalf("backbone steady state allocates %.4f objects/packet (%.1f per 1 ms window, %.0f packets), want <= 0.01",
			perPkt, allocs, perWindow)
	}
}

// TestRunSuiteSmoke drives the CLI's snapshot entry point (RunAll →
// testing.Benchmark over every default spec, then the grid speedup
// attachment) at one iteration per benchmark, so the suite plumbing is
// exercised by `go test` and not only by `cebinae-bench -benchjson`.
// Timing from a single iteration is meaningless and not asserted; the
// FastForward row's error metric is timing-independent and must hold the
// differential gate's bound even here.
func TestRunSuiteSmoke(t *testing.T) {
	bt := flag.Lookup("test.benchtime")
	if bt == nil {
		t.Fatal("test.benchtime flag not registered")
	}
	prev := bt.Value.String()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := flag.Set("test.benchtime", prev); err != nil {
			t.Errorf("restoring test.benchtime: %v", err)
		}
	}()

	results := RunAll()
	if want := len(Specs()); len(results) != want {
		t.Fatalf("RunAll returned %d results, want %d", len(results), want)
	}
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %v", r.Name, r.NsPerOp)
		}
		byName[r.Name] = r
	}
	ff, ok := byName["FastForward"]
	if !ok {
		t.Fatal("suite missing the FastForward row")
	}
	for _, m := range []string{"speedup", "eventsx", "errpct"} {
		if _, ok := ff.Metrics[m]; !ok {
			t.Errorf("FastForward row missing %q metric", m)
		}
	}
	if err := ff.Metrics["errpct"]; err > 1 {
		t.Errorf("FastForward errpct %.3f above the 1%% differential bound", err)
	}
}

// TestResultOfCarriesMetrics: b.ReportMetric extras must survive the
// flattening into the BENCH_baseline.json row shape.
func TestResultOfCarriesMetrics(t *testing.T) {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Sink++
		}
		b.ReportMetric(12345, "flows/s")
		b.ReportMetric(96, "B/flow")
	})
	res := resultOf("probe", r)
	if res.Name != "probe" || res.Metrics["flows/s"] != 12345 || res.Metrics["B/flow"] != 96 {
		t.Fatalf("metrics lost in flattening: %+v", res)
	}
}
