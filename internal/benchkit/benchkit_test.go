package benchkit

import (
	"fmt"
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

func BenchmarkEngineDispatch(b *testing.B)        { EngineDispatch(b) }
func BenchmarkEngineDispatchClosure(b *testing.B) { EngineDispatchClosure(b) }
func BenchmarkEngineScheduleCancel(b *testing.B)  { EngineScheduleCancel(b) }
func BenchmarkNetemForward(b *testing.B)          { NetemForward(b) }
func BenchmarkDumbbellE2E(b *testing.B)           { DumbbellE2E(b) }

func BenchmarkChainE2E(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), ChainE2EShards(shards))
	}
}

// TestEngineDispatchZeroAlloc pins the tentpole invariant: the typed
// fast-path schedule+dispatch cycle performs no allocation at steady state.
func TestEngineDispatchZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	l := &dispatchLoop{eng: eng}
	// Warm: the first ScheduleCall allocates the one event the loop reuses.
	l.remaining = 2
	eng.ScheduleCall(1, l, nil)
	eng.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		l.remaining = 10
		eng.ScheduleCall(1, l, nil)
		eng.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("typed dispatch cycle allocates %.1f objects/run, want 0", allocs)
	}
}

// TestNetemForwardZeroAlloc pins the forwarding hot path: packet pool,
// qdisc, persistent transmit event, and pooled propagation event together
// move a packet across a hop without allocating.
func TestNetemForwardZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, c := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, c, netem.LinkConfig{RateBps: 1e9, Delay: 1000})
	da.SetQdisc(qdisc.NewFIFO(1 << 20))
	db.SetQdisc(qdisc.NewFIFO(1 << 20))
	key := packet.FlowKey{Src: a.ID, Dst: c.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	c.Register(key, nullEndpoint{})
	a.AddRoute(c.ID, da)
	forward := func() {
		p := a.AllocPacket()
		p.Flow = key
		p.Size = 1500
		p.PayloadSize = 1448
		a.Inject(p)
		eng.RunAll()
	}
	forward() // warm pool + free lists
	allocs := testing.AllocsPerRun(100, forward)
	if allocs != 0 {
		t.Fatalf("forwarding hot path allocates %.1f objects/run, want 0", allocs)
	}
	if reuses := w.Pool().Reuses; reuses == 0 {
		t.Fatal("packet pool never recycled a packet")
	}
}
