package benchkit

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// TestShardSpeedupSmoke is the CI scaling gate: on a multi-core host the
// auto-partitioned 2-shard chain run must not be materially slower than
// the single-engine run (wall clock ≤ 1.15x). It is not a benchmark — the
// bound is deliberately loose so scheduler noise on shared CI runners
// cannot flake it — but it catches the failure mode perf counters alone
// miss: a barrier or partitioning regression that makes sharding a net
// loss. Timing tests are noise-prone by nature, so it only runs when
// CEBINAE_SPEEDUP_SMOKE=1 (the dedicated CI step sets it).
func TestShardSpeedupSmoke(t *testing.T) {
	if os.Getenv("CEBINAE_SPEEDUP_SMOKE") == "" {
		t.Skip("set CEBINAE_SPEEDUP_SMOKE=1 to run the wall-clock scaling smoke")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("needs >= 2 cores; sharding cannot beat serial on one")
	}

	// Best-of-3 per configuration: the minimum is the run least disturbed
	// by the host, which is the quantity the bound is about.
	wall := func(shards int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			cl := runChain(shards)
			if d := time.Since(start); d < best {
				best = d
			}
			Sink = int(cl.Processed())
		}
		return best
	}
	wall(2) // warm build cache, pools, and the OS scheduler before timing
	serial := wall(1)
	sharded := wall(2)
	ratio := float64(sharded) / float64(serial)
	t.Logf("chain spec: shards=1 %v, shards=2 %v (ratio %.3f)", serial, sharded, ratio)
	if ratio > 1.15 {
		t.Fatalf("shards=2 took %.3fx the serial wall clock (limit 1.15x) — sharding is a net loss", ratio)
	}
}
