package benchkit

import (
	"runtime"
	"strings"
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/shard"
)

// TestProcsLadder: powers of two, ascending, starting at 1, capped at 8
// and at the machine's core count.
func TestProcsLadder(t *testing.T) {
	ladder := ProcsLadder()
	if len(ladder) == 0 || ladder[0] != 1 {
		t.Fatalf("ladder %v must start at 1", ladder)
	}
	for i, p := range ladder {
		if p > 8 || p > runtime.NumCPU() {
			t.Errorf("ladder entry %d exceeds the cap: %v", p, ladder)
		}
		if i > 0 && p != ladder[i-1]*2 {
			t.Errorf("ladder %v is not successive doubling", ladder)
		}
	}
}

// TestGridSpecsShape: one uniquely named cell per (family, shards, procs)
// point, and every grid name parses back into the family/shards=/procs=
// scheme attachSpeedups keys on.
func TestGridSpecsShape(t *testing.T) {
	specs := GridSpecs()
	want := len(ProcsLadder()) * len(gridShards) * 2
	if len(specs) != want {
		t.Fatalf("%d grid specs, want %d", len(specs), want)
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate grid spec %q", s.Name)
		}
		seen[s.Name] = true
		if s.Fn == nil {
			t.Errorf("grid spec %q has no body", s.Name)
		}
		if !strings.Contains(s.Name, "/shards=") || !strings.Contains(s.Name, "/procs=") {
			t.Errorf("grid spec %q does not follow the family/shards=N/procs=P scheme", s.Name)
		}
	}
	if !seen[gridName("ChainE2E", 1, 1)] || !seen[gridName("Dumbbell4", 4, 1)] {
		t.Errorf("expected baseline cells missing from %v", specs)
	}
}

// TestSuiteSpecNames: the full suite embeds the grid after the serial
// entries, and the heavy tier stays out of the default list.
func TestSuiteSpecNames(t *testing.T) {
	names := make(map[string]bool)
	for _, s := range Specs() {
		if names[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"EngineDispatch", "Backbone", ChainSpecName(1), ChainSpecName(4), gridName("ChainE2E", 2, 1)} {
		if !names[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
	if names["BackboneHeavy"] {
		t.Error("heavy tier leaked into the default suite")
	}
	heavy := HeavySpecs()
	if len(heavy) != 1 || heavy[0].Name != "BackboneHeavy" || heavy[0].Fn == nil {
		t.Errorf("heavy specs %+v, want the BackboneHeavy entry", heavy)
	}
}

// TestAttachSpeedups: the metric is the same-procs shards=1 ns/op over
// this row's, attached only where both rows exist and measured.
func TestAttachSpeedups(t *testing.T) {
	results := []Result{
		{Name: gridName("ChainE2E", 1, 1), NsPerOp: 100},
		{Name: gridName("ChainE2E", 2, 1), NsPerOp: 50},
		{Name: gridName("ChainE2E", 4, 1), NsPerOp: 25},
		{Name: gridName("Dumbbell4", 2, 1), NsPerOp: 80}, // no shards=1 base row
		{Name: "Backbone", NsPerOp: 10},
	}
	attachSpeedups(results)
	if got := results[1].Metrics["speedup"]; got != 2 {
		t.Errorf("shards=2 speedup %v, want 2", got)
	}
	if got := results[2].Metrics["speedup"]; got != 4 {
		t.Errorf("shards=4 speedup %v, want 4", got)
	}
	if results[3].Metrics != nil {
		t.Errorf("baseless Dumbbell4 row gained metrics %v", results[3].Metrics)
	}
	if results[0].Metrics != nil || results[4].Metrics != nil {
		t.Error("speedup attached to a base or non-grid row")
	}
}

// TestDumbbell4AutoPlanFindsFourRegions pins the grid topology's design
// point: the min-cut planner must split the 12-flow dumbbell into four
// regions by cutting the ~20 ms sender access links — the configuration
// the Dumbbell4 cells claim to measure.
func TestDumbbell4AutoPlanFindsFourRegions(t *testing.T) {
	p := shard.AutoPlan(4, func(f netem.Fabric) { buildDumbbell4(f) })
	if p.Shards != 4 {
		t.Fatalf("planner found %d regions, want 4", p.Shards)
	}
	if p.Lookahead < 1e7 {
		t.Fatalf("lookahead %d; cutting sender access links should buy ~2e7", p.Lookahead)
	}
}

// TestRunChainShardedMatchesSerial covers the shared chain body: the
// 2-shard auto-partitioned run must process exactly the events of the
// single-engine run (the full byte-identity differential lives in
// experiments/; this pins the benchmark harness wiring itself).
func TestRunChainShardedMatchesSerial(t *testing.T) {
	serial := runChain(1)
	sharded := runChain(2)
	if serial.Processed() == 0 {
		t.Fatal("serial chain run processed no events")
	}
	if sharded.Processed() != serial.Processed() {
		t.Fatalf("2-shard chain processed %d events, serial %d", sharded.Processed(), serial.Processed())
	}
	if sharded.Stats.Windows == 0 {
		t.Fatal("sharded run recorded no windows")
	}
}

// TestReportClusterMetrics: the barrier metrics ride along as
// b.ReportMetric extras, and a windowless (single-engine) run reports
// nothing.
func TestReportClusterMetrics(t *testing.T) {
	r := testing.Benchmark(func(b *testing.B) {
		reportClusterMetrics(b, shard.RunStats{Windows: 10, BarrierStallNs: 1500})
	})
	if got := r.Extra["stall-ns/window"]; got != 150 {
		t.Errorf("stall-ns/window %v, want 150", got)
	}
	if _, ok := r.Extra["windows/op"]; !ok {
		t.Error("windows/op metric missing")
	}
	r = testing.Benchmark(func(b *testing.B) {
		reportClusterMetrics(b, shard.RunStats{})
	})
	if len(r.Extra) != 0 {
		t.Errorf("windowless run reported %v", r.Extra)
	}
}

// TestWithProcs: the wrapper pins GOMAXPROCS for the body and restores
// the previous value afterwards.
func TestWithProcs(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	saw := 0
	testing.Benchmark(withProcs(1, func(b *testing.B) {
		saw = runtime.GOMAXPROCS(0)
	}))
	if saw != 1 {
		t.Errorf("body ran at GOMAXPROCS %d, want 1", saw)
	}
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Errorf("GOMAXPROCS left at %d, was %d", after, before)
	}
}
