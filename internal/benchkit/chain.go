package benchkit

import (
	"fmt"
	"testing"
	"time"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/shard"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// wallNow is the wall-clock source injected into instrumented clusters.
// The shard package cannot read the real clock itself (the detsource
// analyzer polices it); benchkit is host-side and times real executions.
func wallNow() int64 { return time.Now().UnixNano() }

// buildChain constructs the chain benchmark's topology: a 3-hop
// parking-lot chain, 6 long + 24 cross flows over three 100 Mbps
// bottlenecks. Shared by the real build and the partition planner's
// recording pass.
func buildChain(f netem.Fabric) *netem.ParkingLot {
	return netem.BuildParkingLotOn(f, netem.ParkingLotConfig{
		Hops:            3,
		LongFlows:       6,
		CrossPerHop:     []int{8, 8, 8},
		BottleneckBps:   100e6,
		LinkDelay:       sim.Time(5e6),
		AccessDelay:     sim.Time(5e6),
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc { return qdisc.NewFIFO(850 * 1500) },
		DefaultQdisc:    func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})
}

// newCluster builds a cluster for `build`'s topology: single-engine for
// one shard, min-cut auto-partitioned beyond (the same path the
// experiments package runs, so the measured numbers are the shipped
// configuration, not a hand tuning).
func newCluster(shards int, build func(netem.Fabric)) *shard.Cluster {
	if shards <= 1 {
		return shard.NewCluster(1)
	}
	return shard.NewClusterWithPlan(shard.AutoPlan(shards, build))
}

// chainE2E measures the sharded multi-bottleneck scenario end to end: 2
// simulated seconds per op, auto-partitioned across `shards` engines.
// The 1- and 4-shard entries bracket the conservative parallel runner's
// speedup; the differential tests in the experiments package pin the
// configurations to byte-identical results, so the delta between entries
// is pure wall clock. Custom metrics: stall-ns/window (mean wall-clock
// gap at each barrier between the first and last shard finishing) and
// windows/op (how many barriers the adaptive lookahead actually ran).
func chainE2E(b *testing.B, shards int) {
	b.ReportAllocs()
	var stats shard.RunStats
	for i := 0; i < b.N; i++ {
		cl := runChain(shards)
		stats.Windows += cl.Stats.Windows
		stats.Widened += cl.Stats.Widened
		stats.BarrierStallNs += cl.Stats.BarrierStallNs
		Sink = int(cl.Processed())
	}
	reportClusterMetrics(b, stats)
}

// runChain executes one op of the chain spec — build, attach the 30 TCP
// flows, run 2 simulated seconds — and returns the finished cluster. The
// benchmark loop and the CI speedup smoke share this body so they time
// the same work.
func runChain(shards int) *shard.Cluster {
	cl := newCluster(shards, func(f netem.Fabric) { buildChain(f) })
	cl.Instrument(wallNow)
	pl := buildChain(cl)
	type pair struct{ s, r *netem.Node }
	var eps []pair
	for i := range pl.LongSenders {
		eps = append(eps, pair{pl.LongSenders[i], pl.LongReceivers[i]})
	}
	for h := range pl.CrossSenders {
		for c := range pl.CrossSenders[h] {
			eps = append(eps, pair{pl.CrossSenders[h][c], pl.CrossReceivers[h][c]})
		}
	}
	for fi, ep := range eps {
		key := packet.FlowKey{
			Src: ep.s.ID, Dst: ep.r.ID,
			SrcPort: uint16(1000 + fi), DstPort: uint16(5000 + fi),
			Proto: packet.ProtoTCP,
		}
		tcp.NewConn(ep.s.Engine(), ep.s, tcp.Config{Key: key, Seed: uint64(fi + 1)})
		tcp.NewReceiver(ep.r.Engine(), ep.r, tcp.ReceiverConfig{Key: key})
	}
	cl.Run(sim.Time(2e9))
	return cl
}

// reportClusterMetrics attaches the barrier metrics a multi-shard run
// accumulated; single-engine runs have no windows and report nothing.
func reportClusterMetrics(b *testing.B, stats shard.RunStats) {
	if stats.Windows == 0 {
		return
	}
	b.ReportMetric(float64(stats.BarrierStallNs)/float64(stats.Windows), "stall-ns/window")
	b.ReportMetric(float64(stats.Windows)/float64(b.N), "windows/op")
}

// ChainE2EShards returns the chain benchmark pinned to a shard count, for
// registration in Specs and as a go-test benchmark.
func ChainE2EShards(shards int) func(*testing.B) {
	return func(b *testing.B) { chainE2E(b, shards) }
}

// ChainSpecName names the chain benchmark entry for a shard count.
func ChainSpecName(shards int) string {
	return fmt.Sprintf("ChainE2E/shards=%d", shards)
}
