package benchkit

import (
	"fmt"
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/shard"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// chainE2E measures the sharded multi-bottleneck scenario end to end: a
// 3-hop parking-lot chain (6 long + 24 cross NewReno flows over three
// 100 Mbps bottlenecks), 2 simulated seconds per op, partitioned across
// `shards` engines. The 1- and 4-shard entries bracket the conservative
// parallel runner's speedup; the differential tests in the experiments
// package pin both configurations to byte-identical results, so the
// delta between the two entries is pure wall clock.
func chainE2E(b *testing.B, shards int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl := shard.NewCluster(shards)
		pl := netem.BuildParkingLotOn(cl, netem.ParkingLotConfig{
			Hops:            3,
			LongFlows:       6,
			CrossPerHop:     []int{8, 8, 8},
			BottleneckBps:   100e6,
			LinkDelay:       sim.Time(5e6),
			AccessDelay:     sim.Time(5e6),
			BottleneckQdisc: func(dev *netem.Device) netem.Qdisc { return qdisc.NewFIFO(850 * 1500) },
			DefaultQdisc:    func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
		})
		type pair struct{ s, r *netem.Node }
		var eps []pair
		for i := range pl.LongSenders {
			eps = append(eps, pair{pl.LongSenders[i], pl.LongReceivers[i]})
		}
		for h := range pl.CrossSenders {
			for c := range pl.CrossSenders[h] {
				eps = append(eps, pair{pl.CrossSenders[h][c], pl.CrossReceivers[h][c]})
			}
		}
		for fi, ep := range eps {
			key := packet.FlowKey{
				Src: ep.s.ID, Dst: ep.r.ID,
				SrcPort: uint16(1000 + fi), DstPort: uint16(5000 + fi),
				Proto: packet.ProtoTCP,
			}
			tcp.NewConn(ep.s.Engine(), ep.s, tcp.Config{Key: key, Seed: uint64(fi + 1)})
			tcp.NewReceiver(ep.r.Engine(), ep.r, tcp.ReceiverConfig{Key: key})
		}
		cl.Run(sim.Time(2e9))
		Sink = int(cl.Processed())
	}
}

// ChainE2EShards returns the chain benchmark pinned to a shard count, for
// registration in Specs and as a go-test benchmark.
func ChainE2EShards(shards int) func(*testing.B) {
	return func(b *testing.B) { chainE2E(b, shards) }
}

// ChainSpecName names the chain benchmark entry for a shard count.
func ChainSpecName(shards int) string {
	return fmt.Sprintf("ChainE2E/shards=%d", shards)
}
