package benchkit

import (
	"sync"
	"testing"
	"time"

	"cebinae/experiments"
)

// ffCell is the fluid fast-forward scoring cell, kept in lockstep with
// the experiments package's differential test: an access-limited BBR
// dumbbell whose stationary per-flow rates are pinned by the edge links,
// so the exact packet-level run converges and the fluid model must
// reproduce it within the 1% per-flow bound.
func ffCell() experiments.Scenario {
	return experiments.Scenario{
		Name: "ff-bench", BottleneckBps: 100e6, BufferBytes: 375000,
		AccessBps: 20e6,
		Groups:    []experiments.FlowGroup{{CC: "bbr", Count: 4, RTT: experiments.Millis(40)}},
		Duration:  experiments.Seconds(120), Qdisc: experiments.Cebinae, Seed: 1,
	}
}

// ffExact caches the exact packet-level side of the differential: it is
// the fixed reference the accelerated runs are scored against, so one
// measurement serves every b.N calibration round.
var ffExact struct {
	once sync.Once
	res  experiments.Result
	wall time.Duration
}

// FastForward measures the fluid fast-forward path on the scoring cell
// and reports the derived quality metrics alongside the timing: speedup
// (exact wall clock over accelerated wall clock), eventsx (event-count
// reduction), and errpct (worst per-flow goodput error against the exact
// run, in percent — the differential gate holds this ≤ 1).
func FastForward(b *testing.B) {
	cell := ffCell()
	ffExact.once.Do(func() {
		t0 := time.Now()
		ffExact.res = experiments.Run(cell)
		ffExact.wall = time.Since(t0)
	})
	ff := cell
	ff.FastForward = true
	b.ReportAllocs()
	b.ResetTimer()
	t0 := time.Now()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		last = experiments.Run(ff)
	}
	wall := time.Since(t0)
	b.StopTimer()
	b.ReportMetric(ffExact.wall.Seconds()/(wall.Seconds()/float64(b.N)), "speedup")
	b.ReportMetric(float64(ffExact.res.Events)/float64(last.Events), "eventsx")
	b.ReportMetric(100*ffWorstErr(ffExact.res, last), "errpct")
}

// ffWorstErr returns the worst per-flow goodput error (fraction) of the
// accelerated run against the exact one.
func ffWorstErr(exact, ff experiments.Result) float64 {
	worst := 0.0
	for i := range exact.Flows {
		e, f := exact.Flows[i].GoodputBps, ff.Flows[i].GoodputBps
		if e == 0 {
			continue
		}
		err := (f - e) / e
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	return worst
}
