package benchkit

// The multi-core grid measures how the conservative parallel runner
// actually scales: every (GOMAXPROCS, shards) cell of the ladder runs the
// same sharded specs, so BENCH_baseline.json carries one row per procs
// value and the speedup column is computed against the shards=1 row of
// the same procs (never across procs, which would conflate scheduler
// effects with sharding). On a single-core host the ladder collapses to
// procs=1 and the grid degenerates to the serial entries — the rows are
// still recorded so the snapshot shape is host-independent.

import (
	"fmt"
	"runtime"
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/shard"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// ProcsLadder returns the GOMAXPROCS values the grid measures: powers of
// two up to the machine's core count, capped at 8.
func ProcsLadder() []int {
	var out []int
	for p := 1; p <= runtime.NumCPU() && p <= 8; p *= 2 {
		out = append(out, p)
	}
	return out
}

// gridShards are the shard counts each grid cell measures.
var gridShards = []int{1, 2, 4}

// withProcs pins GOMAXPROCS around one benchmark body.
func withProcs(procs int, fn func(*testing.B)) func(*testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		fn(b)
	}
}

// buildDumbbell4 constructs the grid's second topology: a 12-flow uniform
// 40 ms dumbbell. The min-cut planner splits it into four regions — three
// sender groups cut at their ~20 ms access links plus the switches-and-
// receivers region — so, unlike the chain (whose cut links are the
// bottlenecks themselves), this spec exercises parallel cut access links
// and the widest adaptive windows the planner can find.
func buildDumbbell4(f netem.Fabric) *netem.Dumbbell {
	return netem.BuildDumbbellOn(f, netem.DumbbellConfig{
		FlowCount:       12,
		BottleneckBps:   100e6,
		BottleneckDelay: sim.Time(0.1e6),
		RTTs:            []sim.Time{sim.Time(40e6)},
		BottleneckQdisc: func(dev *netem.Device) netem.Qdisc { return qdisc.NewFIFO(850 * 1500) },
		DefaultQdisc:    func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
	})
}

// dumbbell4E2E runs the 12-flow dumbbell for 2 simulated seconds per op,
// auto-partitioned across `shards` engines, with the same barrier metrics
// as chainE2E.
func dumbbell4E2E(b *testing.B, shards int) {
	b.ReportAllocs()
	var stats shard.RunStats
	for i := 0; i < b.N; i++ {
		cl := newCluster(shards, func(f netem.Fabric) { buildDumbbell4(f) })
		cl.Instrument(wallNow)
		d := buildDumbbell4(cl)
		for fi := range d.Senders {
			key := packet.FlowKey{
				Src: d.Senders[fi].ID, Dst: d.Receivers[fi].ID,
				SrcPort: uint16(1000 + fi), DstPort: uint16(5000 + fi),
				Proto: packet.ProtoTCP,
			}
			tcp.NewConn(d.Senders[fi].Engine(), d.Senders[fi], tcp.Config{Key: key, Seed: uint64(fi + 1)})
			tcp.NewReceiver(d.Receivers[fi].Engine(), d.Receivers[fi], tcp.ReceiverConfig{Key: key})
		}
		cl.Run(sim.Time(2e9))
		stats.Windows += cl.Stats.Windows
		stats.Widened += cl.Stats.Widened
		stats.BarrierStallNs += cl.Stats.BarrierStallNs
		Sink = int(cl.Processed())
	}
	reportClusterMetrics(b, stats)
}

// Dumbbell4Shards returns the dumbbell grid benchmark pinned to a shard
// count.
func Dumbbell4Shards(shards int) func(*testing.B) {
	return func(b *testing.B) { dumbbell4E2E(b, shards) }
}

// GridSpecs enumerates the multi-core scaling cells: each sharded family
// at every (shards, procs) point of the ladder.
func GridSpecs() []Spec {
	var out []Spec
	for _, procs := range ProcsLadder() {
		for _, shards := range gridShards {
			out = append(out,
				Spec{gridName("ChainE2E", shards, procs), withProcs(procs, ChainE2EShards(shards))},
				Spec{gridName("Dumbbell4", shards, procs), withProcs(procs, Dumbbell4Shards(shards))},
			)
		}
	}
	return out
}

func gridName(family string, shards, procs int) string {
	return fmt.Sprintf("%s/shards=%d/procs=%d", family, shards, procs)
}

// attachSpeedups adds a "speedup" metric to every multi-shard grid row:
// wall-clock ns/op of the same family's shards=1 row at the same procs,
// divided by this row's. >1 means sharding paid off at that core count.
func attachSpeedups(results []Result) {
	index := make(map[string]int, len(results))
	for i, r := range results {
		index[r.Name] = i
	}
	for _, procs := range ProcsLadder() {
		for _, family := range []string{"ChainE2E", "Dumbbell4"} {
			base, ok := index[gridName(family, 1, procs)]
			if !ok || results[base].NsPerOp <= 0 {
				continue
			}
			for _, shards := range gridShards[1:] {
				i, ok := index[gridName(family, shards, procs)]
				if !ok || results[i].NsPerOp <= 0 {
					continue
				}
				if results[i].Metrics == nil {
					results[i].Metrics = make(map[string]float64, 1)
				}
				results[i].Metrics["speedup"] = results[base].NsPerOp / results[i].NsPerOp
			}
		}
	}
}
