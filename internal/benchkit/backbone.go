package benchkit

import (
	"runtime"
	"testing"

	"cebinae/internal/core"
	"cebinae/internal/netem"
	"cebinae/internal/qdisc"
	"cebinae/internal/replay"
	"cebinae/internal/sim"
	"cebinae/internal/trace"
)

// The backbone benchmark drives the replay subsystem at its design point —
// a standing population of 10⁵ closed-loop flows through a Cebinae core —
// on a lean rig with none of the experiments package's scoring
// instrumentation (no sketch, no cache, no truth map), so the measured
// numbers are the replay+netem+core data path alone. Two custom metrics
// ride along in BENCH_baseline.json: flows/s (schedule entries retired per
// wall-clock second, the sustained scale figure) and B/flow (resident heap
// per live flow at full population, the footprint figure).

const (
	backboneFlows      = 100_000
	backboneHeavyFlows = 1_000_000
	backboneHorizon    = sim.Time(40e6) // 40 ms simulated per op
)

func backboneSchedule() []trace.FlowSpec { return backboneScheduleFor(backboneFlows) }

func backboneScheduleFor(flows int) []trace.FlowSpec {
	tc := trace.DefaultConfig()
	tc.Duration = backboneHorizon
	tc.StandingFlows = flows
	tc.LifetimeScale = float64(flows) / 2000
	tc.LinkBps = 0 // no offline thinning: the replay loop paces live
	tc.Seed = 1
	return trace.Flows(tc)
}

type backboneRig struct {
	eng      *sim.Engine
	src, dst *netem.Node
}

// newBackboneRig builds the src—sw1═(10G core, Cebinae)═sw2—dst chain with
// both route directions (feedback flows back), but no senders yet.
func newBackboneRig() *backboneRig {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	src, sw1 := w.NewNode("src"), w.NewNode("sw1")
	sw2, dst := w.NewNode("sw2"), w.NewNode("dst")
	edge := func() netem.Qdisc { return qdisc.NewFIFO(64 << 20) }
	access := netem.LinkConfig{RateBps: 40e9, Delay: sim.Time(200e3), QdiscFactory: edge}
	coreLink := netem.LinkConfig{RateBps: 10e9, Delay: sim.Time(2e6), QdiscFactory: edge}
	sa, as := w.Connect(src, sw1, access)
	bb, bb2 := w.Connect(sw1, sw2, coreLink)
	sd, ds := w.Connect(sw2, dst, access)

	rtt := 2 * sim.Time(2e6+2*200e3)
	cq := core.New(eng, 10e9, 8<<20, core.DefaultParams(10e9, 8<<20, rtt))
	cq.OnDrain = bb.Kick
	bb.SetQdisc(cq)

	src.AddRoute(dst.ID, sa)
	sw1.AddRoute(dst.ID, bb)
	sw2.AddRoute(dst.ID, sd)
	dst.AddRoute(src.ID, ds)
	sw2.AddRoute(src.ID, bb2)
	sw1.AddRoute(src.ID, as)
	return &backboneRig{eng: eng, src: src, dst: dst}
}

func (r *backboneRig) attach(schedule []trace.FlowSpec) *replay.Source {
	source := replay.NewSource(r.src, schedule, replay.Config{
		To: r.dst.ID, ClosedLoop: true, ECN: true,
	})
	replay.NewSink(r.dst, replay.SinkConfig{ClosedLoop: true})
	return source
}

// Backbone measures the 10⁵-flow closed-loop replay tier end to end: 40
// simulated milliseconds per op. Reports flows/s sustained and resident
// B/flow alongside the standard ns/B/allocs columns.
func Backbone(b *testing.B) { backboneBench(b, backboneFlows) }

// BackboneHeavy is the same rig at the paper's 10⁶-flow design ceiling —
// the scale tier the Fig.-13 regime claims. An op takes tens of seconds
// and the standing population holds hundreds of megabytes live, so it is
// scored only behind cebinae-bench's -bench-heavy flag.
func BackboneHeavy(b *testing.B) { backboneBench(b, backboneHeavyFlows) }

func backboneBench(b *testing.B, flows int) {
	schedule := backboneScheduleFor(flows)

	// Footprint pre-pass: heap growth from admitting the whole standing
	// population (records, arena chunks, armed wheel timers, feedback
	// index) before the first byte moves, amortised per live flow. Both
	// readings follow a forced GC, so the delta is live bytes, not
	// allocator slack.
	rig := newBackboneRig()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	source := rig.attach(schedule)
	rig.eng.RunUntil(1) // t=0 admission burst only
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if source.Stats.PeakActive < flows {
		b.Fatalf("admission burst left %d of %d flows live", source.Stats.PeakActive, flows)
	}
	var bytesPerFlow float64
	if m1.HeapAlloc > m0.HeapAlloc {
		bytesPerFlow = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(source.Stats.PeakActive)
	}

	b.ReportAllocs()
	var finished uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig := newBackboneRig()
		source := rig.attach(schedule)
		rig.eng.RunUntil(backboneHorizon)
		finished += source.Stats.Finished
		Sink = int(rig.eng.Processed)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(finished)/secs, "flows/s")
	}
	b.ReportMetric(bytesPerFlow, "B/flow")
}
