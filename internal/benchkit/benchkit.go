// Package benchkit is the perf measurement harness shared by the go-test
// benchmarks and `cebinae-bench -benchjson`: microbenchmarks of the event
// engine's schedule/cancel/dispatch cycle, the netem forwarding hot path,
// and an end-to-end dumbbell TCP run. Keeping the bodies here (rather than
// in _test files) lets the CLI emit a machine-readable perf snapshot
// (BENCH_baseline.json) with exactly the numbers the benchmarks report, so
// every PR leaves a comparable point on the perf trajectory.
package benchkit

import (
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// Sink defeats dead-code elimination in benchmark bodies.
var Sink int

// EngineDispatch measures the pooled typed-event schedule+dispatch cycle —
// the simulator's innermost loop. Steady state is allocation-free: the
// self-rescheduling handler reuses one recycled event for the whole run.
func EngineDispatch(b *testing.B) {
	eng := sim.NewEngine()
	l := &dispatchLoop{eng: eng, remaining: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	eng.ScheduleCall(1, l, nil)
	eng.RunAll()
	Sink = int(eng.Processed)
}

type dispatchLoop struct {
	eng       *sim.Engine
	remaining int
}

func (l *dispatchLoop) OnEvent(any) {
	l.remaining--
	if l.remaining > 0 {
		l.eng.ScheduleCall(1, l, nil)
	}
}

// EngineDispatchClosure measures the same cycle through the cold-path
// closure API (Schedule), for comparison with EngineDispatch: the delta is
// the cost of the per-event allocation the typed fast path avoids.
func EngineDispatchClosure(b *testing.B) {
	eng := sim.NewEngine()
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			eng.Schedule(1, next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(1, next)
	eng.RunAll()
	Sink = count
}

// EngineScheduleCancel measures handle-carrying schedule + cancel churn
// (heap push + arbitrary-position remove), the pattern of retransmission
// and delayed-ACK timers.
func EngineScheduleCancel(b *testing.B) {
	eng := sim.NewEngine()
	fn := func() {}
	// A standing population keeps the heap realistically deep.
	const depth = 256
	var evs [depth]*sim.Event
	for i := range evs {
		evs[i] = eng.Schedule(sim.Time(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % depth
		eng.Cancel(evs[slot])
		evs[slot] = eng.Schedule(sim.Time(slot+1), fn)
	}
}

// TimerChurn measures embedded-timer re-arm churn against a standing
// population of 256 armed timers — the same workload as
// EngineScheduleCancel, driven through the wheel-backed Timer surface
// (ArmTimer re-arms in place). The delta between the two benchmarks is
// what the RTO/pacing/delayed-ACK migration saved per timer operation:
// wheel-resident timers re-arm via an O(1) bucket unlink and the cycle
// allocates nothing.
func TimerChurn(b *testing.B) {
	eng := sim.NewEngine()
	h := timerNopHandler{}
	const depth = 256
	var tms [depth]sim.Timer
	for i := range tms {
		eng.ArmTimer(&tms[i], sim.Time(i+1)*sim.Time(1e6), h, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % depth
		eng.ArmTimer(&tms[slot], sim.Time(slot+1)*sim.Time(1e6), h, nil)
	}
}

type timerNopHandler struct{}

func (timerNopHandler) OnEvent(any) {}

type nullEndpoint struct{}

func (nullEndpoint) Deliver(p *packet.Packet) {}

// NetemForward measures one packet per op through a two-node
// store-and-forward hop: pool alloc, qdisc enqueue/dequeue, persistent
// transmit event, pooled propagation event, delivery, pool release.
// Steady state is allocation-free.
func NetemForward(b *testing.B) {
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, c := w.NewNode("a"), w.NewNode("b")
	da, db := w.Connect(a, c, netem.LinkConfig{RateBps: 1e9, Delay: 1000})
	da.SetQdisc(qdisc.NewFIFO(1 << 20))
	db.SetQdisc(qdisc.NewFIFO(1 << 20))
	key := packet.FlowKey{Src: a.ID, Dst: c.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	c.Register(key, nullEndpoint{})
	a.AddRoute(c.ID, da)
	forward := func() {
		p := a.AllocPacket()
		p.Flow = key
		p.Size = 1500
		p.PayloadSize = 1448
		a.Inject(p)
		eng.RunAll()
	}
	forward() // warm the packet pool and event free list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forward()
	}
	Sink = int(eng.Processed)
}

// DumbbellE2E measures full-stack simulated packet throughput: one NewReno
// flow over a 100 Mbps dumbbell, 2 simulated seconds per op (the same
// scenario as the root package's BenchmarkTCPEndToEnd, kept in lockstep so
// BENCH_baseline.json entries compare across PRs).
func DumbbellE2E(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		w := netem.NewNetwork(eng)
		d := netem.BuildDumbbell(w, netem.DumbbellConfig{
			FlowCount:       1,
			BottleneckBps:   100e6,
			BottleneckDelay: sim.Time(0.1e6),
			RTTs:            []sim.Time{sim.Time(20e6)},
			BottleneckQdisc: func(dev *netem.Device) netem.Qdisc { return qdisc.NewFIFO(450 * 1500) },
			DefaultQdisc:    func() netem.Qdisc { return qdisc.NewFIFO(16 << 20) },
		})
		key := packet.FlowKey{Src: d.Senders[0].ID, Dst: d.Receivers[0].ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
		tcp.NewConn(eng, d.Senders[0], tcp.Config{Key: key})
		tcp.NewReceiver(eng, d.Receivers[0], tcp.ReceiverConfig{Key: key})
		eng.Run(sim.Time(2e9))
		Sink = int(eng.Processed)
	}
}

// Result is one measured benchmark, in the shape BENCH_baseline.json
// records.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics carries the benchmark's custom b.ReportMetric values (e.g.
	// the backbone tier's flows/s and B/flow); absent when a benchmark
	// reports none. JSON renders map keys sorted, so the snapshot stays
	// byte-stable.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Spec is one named benchmark in the harness.
type Spec struct {
	Name string
	Fn   func(*testing.B)
}

// Specs enumerates the harness's benchmarks in reporting order: the
// serial microbenchmarks and end-to-end runs, then the multi-core
// scaling grid (one row per (shards, GOMAXPROCS) cell).
func Specs() []Spec {
	out := []Spec{
		{"EngineDispatch", EngineDispatch},
		{"EngineDispatchClosure", EngineDispatchClosure},
		{"EngineScheduleCancel", EngineScheduleCancel},
		{"TimerChurn", TimerChurn},
		{"NetemForward", NetemForward},
		{"DumbbellE2E", DumbbellE2E},
		{"FastForward", FastForward},
		{ChainSpecName(1), ChainE2EShards(1)},
		{ChainSpecName(4), ChainE2EShards(4)},
		{"Backbone", Backbone},
	}
	return append(out, GridSpecs()...)
}

// HeavySpecs enumerates the benchmarks behind cebinae-bench's
// -bench-heavy flag: the million-flow backbone tier, too expensive for
// the default snapshot but scored with the same machinery when asked.
func HeavySpecs() []Spec {
	return []Spec{{"BackboneHeavy", BackboneHeavy}}
}

// RunAll executes the default benchmark suite via testing.Benchmark and
// returns the measured results.
func RunAll() []Result { return RunSuite(false) }

// RunSuite executes the benchmark suite — plus the heavy tier when asked
// — and attaches the grid's derived speedup metrics.
func RunSuite(heavy bool) []Result {
	specs := Specs()
	if heavy {
		specs = append(specs, HeavySpecs()...)
	}
	var out []Result
	for _, s := range specs {
		out = append(out, resultOf(s.Name, testing.Benchmark(s.Fn)))
	}
	attachSpeedups(out)
	return out
}

// resultOf flattens one testing.BenchmarkResult into the snapshot shape,
// carrying any b.ReportMetric extras along.
func resultOf(name string, r testing.BenchmarkResult) Result {
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if len(r.Extra) > 0 {
		res.Metrics = make(map[string]float64, len(r.Extra))
		for unit, v := range r.Extra {
			res.Metrics[unit] = v
		}
	}
	return res
}
