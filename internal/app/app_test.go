package app

import (
	"testing"

	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
)

type countSink struct{ n *uint64 }

func (s countSink) Deliver(p *packet.Packet) { *s.n++ }

// pipe builds a simple a→b link and returns the pieces.
func pipe(eng *sim.Engine, rate float64) (*netem.Node, *netem.Node) {
	w := netem.NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	ab, ba := w.Connect(a, b, netem.LinkConfig{RateBps: rate, Delay: sim.Duration(1e6)})
	ab.SetQdisc(qdisc.NewFIFO(4 << 20))
	ba.SetQdisc(qdisc.NewFIFO(4 << 20))
	a.AddRoute(b.ID, ab)
	b.AddRoute(a.ID, ba)
	return a, b
}

func TestCBRRateAccuracy(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pipe(eng, 100e6)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	var got uint64
	b.Register(key, countSink{&got})
	c := NewCBR(eng, a, key, 12e6, 0)
	eng.Run(sim.Duration(2e9))
	// 12 Mbps of 1500 B packets for 2 s ⇒ 2000 packets.
	if c.Sent < 1990 || c.Sent > 2010 {
		t.Fatalf("CBR sent %d packets, want ≈2000", c.Sent)
	}
	if got < c.Sent-5 {
		t.Fatalf("deliveries %d below sends %d", got, c.Sent)
	}
}

func TestCBRStartAndStop(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pipe(eng, 100e6)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	var got uint64
	b.Register(key, countSink{&got})
	c := NewCBR(eng, a, key, 12e6, sim.Duration(1e9))
	eng.At(sim.Duration(1.5e9), c.Stop)
	eng.Run(sim.Duration(3e9))
	// Active only 0.5 s ⇒ ≈500 packets.
	if c.Sent < 490 || c.Sent > 510 {
		t.Fatalf("windowed CBR sent %d, want ≈500", c.Sent)
	}
}

func TestOnOffDutyCycle(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pipe(eng, 100e6)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	var got uint64
	b.Register(key, countSink{&got})
	// 50% duty cycle at 24 Mbps ⇒ average ≈12 Mbps ⇒ ≈2000 packets in 2 s.
	o := NewOnOff(eng, a, key, 24e6, sim.Duration(50e6), sim.Duration(50e6), 3)
	eng.Run(sim.Duration(2e9))
	if o.Sent < 1200 || o.Sent > 2800 {
		t.Fatalf("on-off sent %d, want ≈2000 (duty-cycled)", o.Sent)
	}
	o.Stop()
}

func TestChurnCompletesTransfers(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pipe(eng, 100e6)
	ch := NewChurn(eng, a, b, ChurnConfig{
		ArrivalsPerSec: 50,
		MeanFlowBytes:  50 << 10,
		BasePort:       100,
		Seed:           1,
	})
	eng.Run(sim.Duration(5e9))
	ch.Stop()
	if ch.Started < 150 {
		t.Fatalf("expected ≈250 arrivals in 5 s, got %d", ch.Started)
	}
	if float64(ch.Completed) < 0.8*float64(ch.Started) {
		t.Fatalf("only %d of %d transfers completed", ch.Completed, ch.Started)
	}
	if len(ch.CompletionTimes) != int(ch.Completed) {
		t.Fatal("completion-time bookkeeping inconsistent")
	}
	for _, ct := range ch.CompletionTimes {
		if ct <= 0 {
			t.Fatal("non-positive completion time")
		}
	}
}

func TestChurnUnknownCCPanics(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pipe(eng, 100e6)
	ch := NewChurn(eng, a, b, ChurnConfig{ArrivalsPerSec: 1000, CC: "bogus", Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown CC should panic at first flow start")
		}
	}()
	_ = ch
	eng.Run(sim.Duration(1e9))
}
