// Package app provides non-TCP traffic applications for experiments: blind
// constant-bit-rate (UDP-like) sources, on-off bursty sources, and a
// Poisson flow-churn workload of finite TCP transfers. The paper's
// discussion motivates each: blind flows that ignore congestion signals
// (§4, "a blind UDP flow…"), bursty senders that stress the LBF's virtual
// pacing, and the high-churn conditions of backbone links (§5.5).
package app

import (
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// CBR is a blind constant-bit-rate source: fixed-size packets at a fixed
// rate, no congestion response (a UDP blaster).
type CBR struct {
	eng  *sim.Engine
	node *netem.Node
	key  packet.FlowKey

	// RateBps is the emission rate in bits/second.
	RateBps float64
	// PacketBytes is the wire size per packet (default 1500).
	PacketBytes int
	// ECN marks emitted packets ECT.
	ECN bool

	Sent    uint64
	stopped bool
	timer   sim.Timer
}

// cbrTick is the CBR emission-timer handler (named pointer type over CBR:
// no closure, no allocation per packet).
type cbrTick CBR

func (h *cbrTick) OnEvent(any) { (*CBR)(h).tick() }

// NewCBR creates and starts the source at startAt.
func NewCBR(eng *sim.Engine, node *netem.Node, key packet.FlowKey, rateBps float64, startAt sim.Time) *CBR {
	c := &CBR{eng: eng, node: node, key: key, RateBps: rateBps, PacketBytes: 1500}
	// The start instant is a traffic discontinuity: pinned so a fluid
	// fast-forward skip can never jump across it. Per-packet re-arms in
	// tick are regular and clear the mark.
	eng.ArmPinnedTimerAt(&c.timer, startAt, (*cbrTick)(c), nil)
	return c
}

func (c *CBR) tick() {
	if c.stopped {
		return
	}
	p := c.node.AllocPacket()
	p.Flow = c.key
	p.Size = int32(c.PacketBytes)
	p.PayloadSize = int32(c.PacketBytes - packet.HeaderBytes)
	p.SentAt = c.eng.Now()
	if c.ECN {
		p.ECN = packet.ECNECT
	}
	c.node.Inject(p)
	c.Sent++
	gap := sim.Time(float64(c.PacketBytes*8) / c.RateBps * 1e9)
	c.eng.ArmTimer(&c.timer, gap, (*cbrTick)(c), nil)
}

// Stop halts emission.
func (c *CBR) Stop() {
	c.stopped = true
	c.eng.StopTimer(&c.timer)
}

// OnOff is a two-state bursty source: during ON periods it emits at
// RateBps, then idles. Period lengths are exponentially distributed.
type OnOff struct {
	eng  *sim.Engine
	node *netem.Node
	key  packet.FlowKey

	RateBps     float64
	PacketBytes int
	MeanOn      sim.Time
	MeanOff     sim.Time

	rng        *sim.Rand
	on         bool
	stopped    bool
	Sent       uint64
	stateTimer sim.Timer // ON/OFF period transitions
	emitTimer  sim.Timer // per-packet emission during ON periods
}

// onOffSwitch / onOffEmit are the source's two timer handlers.
type (
	onOffSwitch OnOff
	onOffEmit   OnOff
)

func (h *onOffSwitch) OnEvent(any) { (*OnOff)(h).switchState() }
func (h *onOffEmit) OnEvent(any)   { (*OnOff)(h).emit() }

// NewOnOff creates and starts the source (beginning with an OFF period so
// starts de-synchronise across sources).
func NewOnOff(eng *sim.Engine, node *netem.Node, key packet.FlowKey, rateBps float64, meanOn, meanOff sim.Time, seed uint64) *OnOff {
	o := &OnOff{
		eng: eng, node: node, key: key,
		RateBps: rateBps, PacketBytes: 1500,
		MeanOn: meanOn, MeanOff: meanOff,
		rng: sim.NewRand(seed ^ key.Hash(0x0F0F)),
	}
	// ON/OFF transitions are traffic discontinuities: pinned (see CBR).
	eng.ArmPinnedTimer(&o.stateTimer, o.expDur(meanOff), (*onOffSwitch)(o), nil)
	return o
}

func (o *OnOff) expDur(mean sim.Time) sim.Time {
	//lint:ignore simtime exponential sampling is inherently float; mean on/off periods are seconds at most (~1e9 ns « 2^53), so the round-trip is exact
	return sim.Time(o.rng.ExpFloat64() * float64(mean))
}

func (o *OnOff) switchState() {
	if o.stopped {
		return
	}
	o.on = !o.on
	if o.on {
		o.emit()
		o.eng.ArmPinnedTimer(&o.stateTimer, o.expDur(o.MeanOn), (*onOffSwitch)(o), nil)
	} else {
		o.eng.ArmPinnedTimer(&o.stateTimer, o.expDur(o.MeanOff), (*onOffSwitch)(o), nil)
	}
}

func (o *OnOff) emit() {
	if o.stopped || !o.on {
		return
	}
	p := o.node.AllocPacket()
	p.Flow = o.key
	p.Size = int32(o.PacketBytes)
	p.PayloadSize = int32(o.PacketBytes - packet.HeaderBytes)
	p.SentAt = o.eng.Now()
	o.node.Inject(p)
	o.Sent++
	o.eng.ArmTimer(&o.emitTimer, sim.Time(float64(o.PacketBytes*8)/o.RateBps*1e9), (*onOffEmit)(o), nil)
}

// Stop halts emission.
func (o *OnOff) Stop() { o.stopped = true }

// ChurnConfig parameterises a Poisson workload of finite TCP transfers
// between a sender and receiver node pair.
type ChurnConfig struct {
	// ArrivalsPerSec is the Poisson flow arrival rate.
	ArrivalsPerSec float64
	// MeanFlowBytes is the mean of the exponential flow-size distribution.
	MeanFlowBytes int64
	// CC names the congestion control algorithm for every transfer.
	CC string
	// BasePort numbers the flows (incrementing destination ports).
	BasePort uint16
	Seed     uint64
	// MinRTO for the transfers (0 = transport default).
	MinRTO sim.Time
}

// Churn drives finite TCP transfers with Poisson arrivals between src and
// dst, tracking completions.
type Churn struct {
	eng  *sim.Engine
	src  *netem.Node
	dst  *netem.Node
	cfg  ChurnConfig
	rng  *sim.Rand
	next uint16

	Started   uint64
	Completed uint64
	// CompletionTimes collects per-flow transfer durations.
	CompletionTimes []sim.Time
	stopped         bool
	timer           sim.Timer
}

// churnArrival fires one Poisson arrival: start the flow, draw the next
// inter-arrival gap.
type churnArrival Churn

func (h *churnArrival) OnEvent(any) {
	c := (*Churn)(h)
	c.startFlow()
	c.scheduleNext()
}

// NewChurn creates and starts the workload.
func NewChurn(eng *sim.Engine, src, dst *netem.Node, cfg ChurnConfig) *Churn {
	if cfg.MeanFlowBytes <= 0 {
		cfg.MeanFlowBytes = 100 << 10
	}
	if cfg.CC == "" {
		cfg.CC = "newreno"
	}
	c := &Churn{eng: eng, src: src, dst: dst, cfg: cfg, rng: sim.NewRand(cfg.Seed + 1), next: cfg.BasePort}
	c.scheduleNext()
	return c
}

func (c *Churn) scheduleNext() {
	if c.stopped || c.cfg.ArrivalsPerSec <= 0 {
		return
	}
	gap := sim.Time(c.rng.ExpFloat64() / c.cfg.ArrivalsPerSec * 1e9)
	// Poisson arrivals are traffic discontinuities: pinned (see CBR).
	c.eng.ArmPinnedTimer(&c.timer, gap, (*churnArrival)(c), nil)
}

func (c *Churn) startFlow() {
	if c.stopped {
		return
	}
	size := int64(c.rng.ExpFloat64() * float64(c.cfg.MeanFlowBytes))
	if size < 1448 {
		size = 1448
	}
	key := packet.FlowKey{Src: c.src.ID, Dst: c.dst.ID, SrcPort: c.next, DstPort: c.next + 1, Proto: packet.ProtoTCP}
	c.next += 2
	cc, ok := tcp.NewCC(c.cfg.CC)
	if !ok {
		panic("app: unknown CC " + c.cfg.CC)
	}
	start := c.eng.Now()
	conn := tcp.NewConn(c.eng, c.src, tcp.Config{
		Key: key, CC: cc, DataLimit: size,
		Seed: c.cfg.Seed + uint64(c.next), MinRTO: c.cfg.MinRTO,
	})
	tcp.NewReceiver(c.eng, c.dst, tcp.ReceiverConfig{Key: key})
	c.Started++
	conn.OnFinish = func() {
		c.Completed++
		c.CompletionTimes = append(c.CompletionTimes, c.eng.Now()-start)
	}
}

// Stop halts new arrivals (in-flight transfers continue).
func (c *Churn) Stop() { c.stopped = true }
