package qdisc

import (
	"math"

	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// CoDelParams are the controlled-delay AQM knobs (RFC 8289 defaults).
type CoDelParams struct {
	Target   sim.Time // acceptable standing-queue sojourn time (5 ms)
	Interval sim.Time // sliding window for minimum tracking (100 ms)
}

// DefaultCoDelParams mirrors RFC 8289 §4.4.
func DefaultCoDelParams() CoDelParams {
	return CoDelParams{
		Target:   sim.Duration(5e6),   // 5 ms
		Interval: sim.Duration(100e6), // 100 ms
	}
}

// codelState is the per-queue CoDel dropper state machine. It is embedded in
// each FQ-CoDel flow queue and operates purely on packet sojourn times
// observed at dequeue.
type codelState struct {
	params        CoDelParams
	firstAboveAt  sim.Time // time when sojourn first exceeded target (0 = not above)
	dropNextAt    sim.Time
	dropCount     uint32
	lastDropCount uint32
	dropping      bool
}

// shouldDrop evaluates the RFC 8289 state machine for a packet whose queue
// sojourn ended at now, returning true when the packet must be dropped.
func (c *codelState) shouldDrop(sojourn, now sim.Time, queueBytes int) bool {
	okToDrop := c.judge(sojourn, now, queueBytes)
	if c.dropping {
		if !okToDrop {
			c.dropping = false
			return false
		}
		if now >= c.dropNextAt {
			c.dropCount++
			c.dropNextAt = c.controlLaw(c.dropNextAt)
			return true
		}
		return false
	}
	if okToDrop && (now-c.dropNextAt < c.params.Interval || now-c.firstAboveAt >= c.params.Interval) {
		c.dropping = true
		// Hysteresis: restart close to the last drop rate when re-entering
		// the dropping state shortly after leaving it.
		delta := c.dropCount - c.lastDropCount
		c.dropCount = 1
		if delta > 1 && now-c.dropNextAt < 16*c.params.Interval {
			c.dropCount = delta
		}
		c.dropNextAt = c.controlLaw(now)
		c.lastDropCount = c.dropCount
		return true
	}
	return false
}

// judge tracks whether sojourn time has stayed above target for a full
// interval ("ok to drop" in RFC terms).
func (c *codelState) judge(sojourn, now sim.Time, queueBytes int) bool {
	if sojourn < c.params.Target || queueBytes <= 2*packet.MSS {
		c.firstAboveAt = 0
		return false
	}
	if c.firstAboveAt == 0 {
		c.firstAboveAt = now + c.params.Interval
		return false
	}
	return now >= c.firstAboveAt
}

// controlLaw spaces successive drops by interval/sqrt(count).
func (c *codelState) controlLaw(t sim.Time) sim.Time {
	//lint:ignore simtime the control law requires sqrt; Interval is ~1e8 ns, far below float64's 2^53 exact-integer range, so the round-trip is exact to the nanosecond
	return t + sim.Time(float64(c.params.Interval)/math.Sqrt(float64(c.dropCount)))
}
