package qdisc

import (
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// Inner is the surface Lossy requires of the wrapped discipline — the same
// structural subset as netem.Qdisc, declared locally so qdisc need not
// import netem.
type Inner interface {
	// Enqueue admits p into the wrapped discipline.
	//
	//pktown:enqueues p on success the wrapped discipline owns the packet; on failure the caller keeps it
	Enqueue(p *packet.Packet) bool
	// Dequeue surrenders the next packet to the caller.
	//
	//pktown:fresh return a dequeued packet leaves the discipline's custody and the caller owns it
	Dequeue() *packet.Packet
	Len() int
	BytesQueued() int
}

// Lossy wraps another discipline and drops selected packets at enqueue —
// a fault-injection shim for exercising transport loss recovery
// deterministically (drop the Nth data packet, a burst, or a random
// fraction).
type Lossy struct {
	Inner Inner

	// DropSeqs drops data packets whose byte sequence number matches, the
	// given number of times (so a value of 2 also kills the first
	// retransmission when DropRetransmits is set).
	DropSeqs map[int64]int
	// DropNth drops the n-th data packet offered (1-based index set).
	DropNth map[uint64]bool
	// DropProb drops each data packet independently with this probability.
	DropProb float64
	// DropRetransmits extends matching to retransmitted packets (default:
	// only first transmissions are eligible, so recovery can complete).
	DropRetransmits bool

	rng     *sim.Rand
	offered uint64
	Dropped uint64
}

// NewLossy wraps inner with the fault-injection shim.
func NewLossy(inner *FIFO, seed uint64) *Lossy {
	return &Lossy{Inner: inner, rng: sim.NewRand(seed)}
}

// Enqueue applies the drop rules to data packets, then defers to the inner
// discipline.
func (l *Lossy) Enqueue(p *packet.Packet) bool {
	if p.IsData() && (l.DropRetransmits || !p.Retransmit) {
		l.offered++
		drop := false
		if n := l.DropSeqs[p.Seq]; n > 0 {
			l.DropSeqs[p.Seq] = n - 1
			drop = true
		}
		if l.DropNth != nil && l.DropNth[l.offered] {
			delete(l.DropNth, l.offered)
			drop = true
		}
		if l.DropProb > 0 && l.rng.Float64() < l.DropProb {
			drop = true
		}
		if drop {
			l.Dropped++
			return false
		}
	}
	return l.Inner.Enqueue(p)
}

// Dequeue defers to the inner discipline.
func (l *Lossy) Dequeue() *packet.Packet { return l.Inner.Dequeue() }

// Len defers to the inner discipline.
func (l *Lossy) Len() int { return l.Inner.Len() }

// BytesQueued defers to the inner discipline.
func (l *Lossy) BytesQueued() int { return l.Inner.BytesQueued() }
