package qdisc

import (
	"testing"

	"cebinae/internal/packet"
)

func TestPCQRoundRobinFairness(t *testing.T) {
	q := NewPCQ(64, 1500, 1<<20, 4096)
	for i := 0; i < 40; i++ {
		q.Enqueue(afqPkt(1, 1500))
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(afqPkt(2, 1500))
	}
	counts := map[packet.NodeID]int{}
	for i := 0; i < 20; i++ {
		counts[q.Dequeue().Flow.Src]++
	}
	if counts[2] < 8 {
		t.Fatalf("thin flow under-served: %v", counts)
	}
}

// TestPCQSquashesInsteadOfDropping: the defining contrast with AFQ — a
// burst past the horizon is delivered (from the last slot), not dropped.
func TestPCQSquashesInsteadOfDropping(t *testing.T) {
	q := NewPCQ(4, 1500, 1<<20, 4096)
	for i := 0; i < 10; i++ {
		if !q.Enqueue(afqPkt(1, 1500)) {
			t.Fatalf("PCQ must admit beyond-horizon packet %d", i)
		}
	}
	if q.HorizonSquashed == 0 {
		t.Fatal("beyond-horizon packets must be counted as squashed")
	}
	delivered := 0
	for q.Dequeue() != nil {
		delivered++
	}
	if delivered != 10 {
		t.Fatalf("all admitted packets must be deliverable, got %d", delivered)
	}
}

// TestPCQSquashDegradesOrdering: squashed packets land in the last slot,
// so a thin flow arriving later can be served *before* the fat flow's
// squashed tail — fairness preserved for the thin flow.
func TestPCQSquashDegradesOrdering(t *testing.T) {
	q := NewPCQ(4, 1500, 1<<20, 4096)
	for i := 0; i < 8; i++ {
		q.Enqueue(afqPkt(1, 1500)) // slots 1..3 + squashed tail in slot 3
	}
	q.Enqueue(afqPkt(2, 1500)) // thin flow: slot 1
	firstSix := map[packet.NodeID]int{}
	for i := 0; i < 6; i++ {
		firstSix[q.Dequeue().Flow.Src]++
	}
	if firstSix[2] != 1 {
		t.Fatalf("thin flow should be served within the first rounds: %v", firstSix)
	}
}

func TestPCQBufferOverflow(t *testing.T) {
	q := NewPCQ(8, 1500, 2*1500, 4096)
	q.Enqueue(afqPkt(1, 1500))
	q.Enqueue(afqPkt(2, 1500))
	if q.Enqueue(afqPkt(3, 1500)) {
		t.Fatal("buffer overflow must drop")
	}
	if q.OverflowDrops != 1 {
		t.Fatalf("overflow drops = %d", q.OverflowDrops)
	}
}

func TestPCQIdleRecovery(t *testing.T) {
	q := NewPCQ(8, 1500, 1<<20, 4096)
	q.Enqueue(afqPkt(1, 1500))
	q.Dequeue()
	if q.Dequeue() != nil {
		t.Fatal("drained PCQ must return nil")
	}
	if !q.Enqueue(afqPkt(2, 1500)) || q.Dequeue() == nil {
		t.Fatal("post-idle arrival broken")
	}
	if q.Len() != 0 || q.BytesQueued() != 0 {
		t.Fatal("accounting broken after idle cycle")
	}
}
