package qdisc

import (
	"testing"

	"cebinae/internal/packet"
)

func afqPkt(flow int, size int32) *packet.Packet {
	return &packet.Packet{
		Flow: packet.FlowKey{Src: packet.NodeID(flow), Dst: 99, SrcPort: uint16(flow), DstPort: 80, Proto: packet.ProtoTCP},
		Size: size, PayloadSize: size - packet.HeaderBytes,
	}
}

func TestAFQRoundRobinFairness(t *testing.T) {
	// Two flows, one bursting 40 packets, one 10: with BpR = one packet,
	// service must interleave near-perfectly (per-round fairness).
	a := NewAFQ(64, 1500, 1<<20, 4096)
	for i := 0; i < 40; i++ {
		if !a.Enqueue(afqPkt(1, 1500)) {
			t.Fatalf("flow1 pkt %d dropped (horizon too small?)", i)
		}
	}
	for i := 0; i < 10; i++ {
		if !a.Enqueue(afqPkt(2, 1500)) {
			t.Fatalf("flow2 pkt %d dropped", i)
		}
	}
	counts := map[packet.NodeID]int{}
	for i := 0; i < 20; i++ {
		p := a.Dequeue()
		counts[p.Flow.Src]++
	}
	// First 20 services cover rounds 1..10: both flows served ~equally.
	if counts[2] < 8 {
		t.Fatalf("thin flow under-served: %v", counts)
	}
}

func TestAFQHorizonDrop(t *testing.T) {
	// nQ=4, BpR=1500: a flow may have at most 4 rounds (packets) queued.
	a := NewAFQ(4, 1500, 1<<20, 4096)
	admitted := 0
	for i := 0; i < 10; i++ {
		if a.Enqueue(afqPkt(1, 1500)) {
			admitted++
		}
	}
	if admitted >= 5 {
		t.Fatalf("Eq.1 horizon must cap the burst: admitted %d of 10", admitted)
	}
	if a.Drops == 0 {
		t.Fatal("horizon drops not counted")
	}
}

func TestAFQRoundAdvancesOnDrain(t *testing.T) {
	a := NewAFQ(8, 1500, 1<<20, 4096)
	for i := 0; i < 5; i++ {
		a.Enqueue(afqPkt(1, 1500))
	}
	for i := 0; i < 5; i++ {
		if a.Dequeue() == nil {
			t.Fatalf("packet %d missing", i)
		}
	}
	if a.Dequeue() != nil {
		t.Fatal("drained AFQ should return nil")
	}
	if a.Round() == 0 {
		t.Fatal("round should have advanced")
	}
	// New arrivals after idle must still be schedulable.
	if !a.Enqueue(afqPkt(2, 1500)) {
		t.Fatal("post-idle arrival dropped")
	}
	if a.Dequeue() == nil {
		t.Fatal("post-idle packet lost")
	}
}

func TestAFQBufferOverflow(t *testing.T) {
	a := NewAFQ(64, 1500, 3*1500, 4096)
	for i := 0; i < 3; i++ {
		if !a.Enqueue(afqPkt(i+1, 1500)) {
			t.Fatal("within buffer should fit")
		}
	}
	if a.Enqueue(afqPkt(9, 1500)) {
		t.Fatal("buffer overflow must drop")
	}
	if a.OverflowDrops != 1 {
		t.Fatalf("overflow drops = %d", a.OverflowDrops)
	}
}

func TestAFQAccounting(t *testing.T) {
	a := NewAFQ(16, 3000, 1<<20, 4096)
	a.Enqueue(afqPkt(1, 1500))
	a.Enqueue(afqPkt(2, 1000))
	if a.Len() != 2 || a.BytesQueued() != 2500 {
		t.Fatalf("len=%d bytes=%d", a.Len(), a.BytesQueued())
	}
	a.Dequeue()
	a.Dequeue()
	if a.Len() != 0 || a.BytesQueued() != 0 {
		t.Fatalf("post-drain len=%d bytes=%d", a.Len(), a.BytesQueued())
	}
}

// TestAFQManyFlowsExceedHorizon demonstrates the paper's Eq. 1 scaling
// argument directly: with fixed nQ×BpR, a burst of one BDP per flow fits
// at low flow counts but overruns the calendar at high counts.
func TestAFQManyFlowsExceedHorizon(t *testing.T) {
	burstPerFlow := 8 // packets arriving back-to-back per flow
	run := func(flows int) (dropped uint64) {
		a := NewAFQ(32, 1500, 1<<30, 8192)
		for round := 0; round < burstPerFlow; round++ {
			for f := 0; f < flows; f++ {
				a.Enqueue(afqPkt(f+1, 1500))
			}
		}
		return a.Drops
	}
	if d := run(4); d != 0 {
		t.Fatalf("4 flows × 8 packets must fit a 32-slot calendar, dropped %d", d)
	}
	if d := run(64); d != 0 {
		// Per-flow bursts of 8 < 32 slots still fit regardless of flow
		// count — AFQ's horizon is per flow.
		t.Fatalf("64 flows × 8 packets should fit per-flow horizons, dropped %d", d)
	}
	// The horizon binds per flow: 40 packets per flow exceeds 32 slots.
	a := NewAFQ(32, 1500, 1<<30, 8192)
	for i := 0; i < 40; i++ {
		a.Enqueue(afqPkt(1, 1500))
	}
	if a.Drops == 0 {
		t.Fatal("per-flow burst beyond nQ slots must drop")
	}
}
