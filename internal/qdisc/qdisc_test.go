package qdisc

import (
	"testing"
	"testing/quick"

	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

func pkt(flow int, size int32) *packet.Packet {
	return &packet.Packet{
		Flow: packet.FlowKey{Src: packet.NodeID(flow), Dst: 99, SrcPort: uint16(flow), DstPort: 80, Proto: packet.ProtoTCP},
		Size: size, PayloadSize: size - packet.HeaderBytes,
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(1 << 20)
	for i := 0; i < 100; i++ {
		p := pkt(i, 100)
		p.Seq = int64(i)
		if !f.Enqueue(p) {
			t.Fatal("unexpected drop")
		}
	}
	for i := 0; i < 100; i++ {
		p := f.Dequeue()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("FIFO order violated at %d", i)
		}
	}
	if f.Dequeue() != nil {
		t.Fatal("empty queue should return nil")
	}
}

func TestFIFOByteLimit(t *testing.T) {
	f := NewFIFO(1000)
	if !f.Enqueue(pkt(1, 600)) || !f.Enqueue(pkt(2, 400)) {
		t.Fatal("within limit should fit")
	}
	if f.Enqueue(pkt(3, 100)) {
		t.Fatal("over limit should tail-drop")
	}
	if f.Drops != 1 {
		t.Fatalf("drop counter: %d", f.Drops)
	}
	f.Dequeue()
	if !f.Enqueue(pkt(3, 100)) {
		t.Fatal("space freed should admit")
	}
}

func TestFIFOAccounting(t *testing.T) {
	f := NewFIFO(0) // unbounded default
	f.Enqueue(pkt(1, 100))
	f.Enqueue(pkt(2, 200))
	if f.Len() != 2 || f.BytesQueued() != 300 {
		t.Fatalf("len=%d bytes=%d", f.Len(), f.BytesQueued())
	}
	f.Dequeue()
	if f.Len() != 1 || f.BytesQueued() != 200 {
		t.Fatalf("after dequeue len=%d bytes=%d", f.Len(), f.BytesQueued())
	}
}

// TestFIFOConservation: packets out ≤ packets in, and every admitted packet
// eventually dequeues in order — for arbitrary interleavings.
func TestFIFOConservation(t *testing.T) {
	f := func(ops []bool, sizes []uint16) bool {
		q := NewFIFO(64 << 10)
		var in, out int64
		seq := int64(0)
		expect := int64(0)
		si := 0
		for _, enq := range ops {
			if enq {
				size := int32(64)
				if si < len(sizes) {
					size = int32(sizes[si]%1400) + 64
					si++
				}
				p := pkt(1, size)
				p.Seq = seq
				if q.Enqueue(p) {
					in++
					seq++
				} else {
					seq++
					// dropped packets never appear at dequeue; renumber
					// expectations by tracking admitted seqs instead
					continue
				}
			} else if p := q.Dequeue(); p != nil {
				out++
				_ = expect
			}
		}
		for q.Dequeue() != nil {
			out++
		}
		return in == out && q.BytesQueued() == 0 && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingGrowth(t *testing.T) {
	var r ring
	for round := 0; round < 3; round++ {
		for i := 0; i < 1000; i++ {
			p := pkt(1, 100)
			p.Seq = int64(i)
			r.push(p)
		}
		for i := 0; i < 1000; i++ {
			p := r.pop()
			if p.Seq != int64(i) {
				t.Fatalf("ring order broken at round %d idx %d", round, i)
			}
		}
		if r.pop() != nil {
			t.Fatal("drained ring should pop nil")
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	var r ring
	// Interleave pushes and pops so head/tail wrap repeatedly.
	seq := int64(0)
	next := int64(0)
	for i := 0; i < 10000; i++ {
		p := pkt(1, 64)
		p.Seq = seq
		seq++
		r.push(p)
		if i%3 != 0 {
			got := r.pop()
			if got.Seq != next {
				t.Fatalf("wrap order broken: got %d want %d", got.Seq, next)
			}
			next++
		}
	}
}

func TestCoDelBelowTargetNeverDrops(t *testing.T) {
	c := codelState{params: DefaultCoDelParams()}
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now += sim.Duration(1e6)
		if c.shouldDrop(sim.Duration(1e6), now, 100*1500) {
			t.Fatal("sojourn below target must never drop")
		}
	}
}

func TestCoDelSustainedAboveTargetDrops(t *testing.T) {
	c := codelState{params: DefaultCoDelParams()}
	now := sim.Time(0)
	drops := 0
	// 50 ms sojourn sustained for 2 s of dequeues.
	for i := 0; i < 2000; i++ {
		now += sim.Duration(1e6)
		if c.shouldDrop(sim.Duration(50e6), now, 100*1500) {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("sustained high sojourn must trigger drops")
	}
	if drops > 400 {
		t.Fatalf("control law should pace drops, got %d", drops)
	}
}

func TestCoDelSmallQueueExemption(t *testing.T) {
	c := codelState{params: DefaultCoDelParams()}
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		now += sim.Duration(1e6)
		if c.shouldDrop(sim.Duration(50e6), now, packet.MSS) {
			t.Fatal("queues of ≤ 2 MTU must never drop (RFC 8289)")
		}
	}
}

func TestFQCoDelPerFlowIsolationAndDRR(t *testing.T) {
	eng := sim.NewEngine()
	q := NewFQCoDel(eng, 1<<20, 1500, DefaultCoDelParams())
	// Flow 1 dumps 60 packets; flow 2 sends 10. DRR must interleave so
	// flow 2 isn't starved behind flow 1's backlog.
	for i := 0; i < 60; i++ {
		q.Enqueue(pkt(1, 1500))
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(2, 1500))
	}
	firstTwenty := map[packet.NodeID]int{}
	for i := 0; i < 20; i++ {
		p := q.Dequeue()
		firstTwenty[p.Flow.Src]++
	}
	if firstTwenty[2] < 8 {
		t.Fatalf("DRR should serve the thin flow promptly: %v", firstTwenty)
	}
}

func TestFQCoDelQuantumByteFairness(t *testing.T) {
	eng := sim.NewEngine()
	q := NewFQCoDel(eng, 4<<20, 1500, DefaultCoDelParams())
	// Flow 1 uses 1500-byte packets, flow 2 uses 300-byte packets. Over a
	// long drain, bytes served should be near-equal (DRR is byte-fair).
	for i := 0; i < 400; i++ {
		q.Enqueue(pkt(1, 1500))
		for j := 0; j < 5; j++ {
			q.Enqueue(pkt(2, 300))
		}
	}
	bytes := map[packet.NodeID]int{}
	for i := 0; i < 600; i++ {
		p := q.Dequeue()
		if p == nil {
			break
		}
		bytes[p.Flow.Src] += int(p.Size)
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("byte fairness broken: %v (ratio %.2f)", bytes, ratio)
	}
}

func TestFQCoDelOverflowDropsFromFatFlow(t *testing.T) {
	eng := sim.NewEngine()
	q := NewFQCoDel(eng, 14999, 1500, DefaultCoDelParams())
	for i := 0; i < 9; i++ {
		q.Enqueue(pkt(1, 1500))
	}
	// Thin flow's packet arrives at a full buffer: the fat flow pays.
	admitted := q.Enqueue(pkt(2, 1500))
	if !admitted {
		t.Fatal("thin flow's packet should be admitted; fat flow drops instead")
	}
	if q.Drops != 1 {
		t.Fatalf("exactly one overflow drop expected, got %d", q.Drops)
	}
	// Flow 2's packet must still be there.
	found := false
	for {
		p := q.Dequeue()
		if p == nil {
			break
		}
		if p.Flow.Src == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("thin flow's packet was lost")
	}
}

func TestFQCoDelFlowGC(t *testing.T) {
	eng := sim.NewEngine()
	q := NewFQCoDel(eng, 1<<20, 1500, DefaultCoDelParams())
	for f := 0; f < 50; f++ {
		q.Enqueue(pkt(f, 1500))
	}
	if q.FlowCount() != 50 {
		t.Fatalf("expected 50 active flows, got %d", q.FlowCount())
	}
	for q.Dequeue() != nil {
	}
	if q.FlowCount() != 0 {
		t.Fatalf("drained flows must be garbage collected, %d remain", q.FlowCount())
	}
	if q.Len() != 0 || q.BytesQueued() != 0 {
		t.Fatalf("counters should be zero: len=%d bytes=%d", q.Len(), q.BytesQueued())
	}
}

func TestFQCoDelECNMarksInsteadOfDrops(t *testing.T) {
	eng := sim.NewEngine()
	q := NewFQCoDel(eng, 1<<20, 1500, DefaultCoDelParams())
	// Stuff one flow, advance time far beyond interval so CoDel engages,
	// with ECT packets: expect CE marks, not drops.
	for i := 0; i < 200; i++ {
		p := pkt(1, 1500)
		p.ECN = packet.ECNECT
		q.Enqueue(p)
	}
	eng.Schedule(sim.Duration(500e6), func() {})
	eng.RunAll() // advance clock to 500 ms
	marked := 0
	for {
		p := q.Dequeue()
		if p == nil {
			break
		}
		if p.ECN == packet.ECNCE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("CoDel should CE-mark ECT packets under sustained delay")
	}
	if q.Drops != 0 {
		t.Fatalf("ECT packets should not be dropped by AQM: %d", q.Drops)
	}
}
