// Package qdisc implements the baseline queue disciplines the paper compares
// Cebinae against: drop-tail FIFO and FQ-CoDel (DRR fair queuing with a
// CoDel AQM instance per flow queue, RFC 8290). All disciplines satisfy the
// structural Qdisc interface consumed by internal/netem devices.
package qdisc

import "cebinae/internal/packet"

// FIFO is a byte-bounded drop-tail queue — the paper's "FIFO" baseline.
type FIFO struct {
	limitBytes int
	q          ring
	bytes      int

	Drops uint64
}

// NewFIFO returns a drop-tail FIFO holding at most limitBytes. A limit of
// zero or less means effectively unbounded.
func NewFIFO(limitBytes int) *FIFO {
	if limitBytes <= 0 {
		limitBytes = 1 << 40
	}
	return &FIFO{limitBytes: limitBytes}
}

// Enqueue admits p unless it would exceed the byte limit.
func (f *FIFO) Enqueue(p *packet.Packet) bool {
	if f.bytes+int(p.Size) > f.limitBytes {
		f.Drops++
		return false
	}
	f.bytes += int(p.Size)
	f.q.push(p)
	return true
}

// Dequeue removes and returns the head packet, or nil when empty.
func (f *FIFO) Dequeue() *packet.Packet {
	p := f.q.pop()
	if p != nil {
		f.bytes -= int(p.Size)
	}
	return p
}

// Len returns the number of queued packets.
func (f *FIFO) Len() int { return f.q.len() }

// BytesQueued returns the number of queued bytes.
func (f *FIFO) BytesQueued() int { return f.bytes }

// ring is a growable FIFO ring buffer of packets, avoiding the per-element
// allocation of container/list on the hot path.
type ring struct {
	buf        []*packet.Packet
	head, tail int
	count      int
}

func (r *ring) len() int { return r.count }

func (r *ring) push(p *packet.Packet) {
	if r.count == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = p
	r.tail = (r.tail + 1) % len(r.buf)
	r.count++
}

func (r *ring) pop() *packet.Packet {
	if r.count == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return p
}

func (r *ring) peek() *packet.Packet {
	if r.count == 0 {
		return nil
	}
	return r.buf[r.head]
}

func (r *ring) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*packet.Packet, size)
	for i := 0; i < r.count; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
	r.tail = r.count
}
