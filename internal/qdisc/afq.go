package qdisc

import (
	"cebinae/internal/cmsketch"
	"cebinae/internal/packet"
)

// AFQ implements Approximate Fair Queueing (Sharma et al., NSDI '18) — the
// calendar-queue fair-queueing approximation the Cebinae paper analyses as
// its main scalability comparison (§2). The switch keeps nQ FIFO queues,
// each representing a future service round of BpR bytes per flow; a
// count-min sketch tracks every flow's cumulative "bid". An arriving packet
// is placed in the queue for round bid/BpR; if that round is more than nQ
// slots ahead of the round currently being served, the packet is dropped —
// the Eq. 1 constraint (buffer_req ≤ BpR × nQ) that caps AFQ's scalability
// in flows, RTT, and burstiness.
type AFQ struct {
	NQ  int   // number of calendar queues (priority levels consumed)
	BpR int64 // bytes per round, per flow

	limitBytes int
	round      int64 // round currently in service
	queues     []ring
	queued     []int // bytes per queue
	bytes      int
	packets    int
	sketch     *cmsketch.Sketch

	Drops         uint64 // horizon (Eq. 1) drops
	OverflowDrops uint64 // shared-buffer drops
}

// NewAFQ builds an AFQ instance. The sketch geometry follows the NSDI
// prototype's scale (4 rows); cols sizes collision probability.
func NewAFQ(nQ int, bpr int64, limitBytes, sketchCols int) *AFQ {
	if nQ <= 0 || bpr <= 0 {
		panic("qdisc: AFQ needs positive nQ and BpR")
	}
	if limitBytes <= 0 {
		limitBytes = 32 << 20
	}
	if sketchCols <= 0 {
		sketchCols = 4096
	}
	return &AFQ{
		NQ:         nQ,
		BpR:        bpr,
		limitBytes: limitBytes,
		queues:     make([]ring, nQ),
		queued:     make([]int, nQ),
		sketch:     cmsketch.New(4, sketchCols),
	}
}

// Enqueue implements the AFQ schedule: compute the flow's bid, map it to a
// calendar slot, drop beyond the horizon.
func (a *AFQ) Enqueue(p *packet.Packet) bool {
	if a.bytes+int(p.Size) > a.limitBytes {
		a.OverflowDrops++
		return false
	}
	// bid = max(storedBid, R·BpR) + size  (flows never bid into the past).
	floor := a.round * a.BpR
	bid := a.sketch.Estimate(p.Flow)
	if bid < floor {
		bid = floor
	}
	bid += int64(p.Size)
	slot := bid / a.BpR
	if slot >= a.round+int64(a.NQ) {
		a.Drops++ // beyond the calendar horizon (Eq. 1)
		return false
	}
	a.sketch.UpdateMax(p.Flow, bid)
	idx := int(slot % int64(a.NQ))
	a.queued[idx] += int(p.Size)
	a.bytes += int(p.Size)
	a.packets++
	a.queues[idx].push(p)
	return true
}

// Dequeue serves the current round's queue, rotating to the next non-empty
// round when it drains (work-conserving across rounds).
func (a *AFQ) Dequeue() *packet.Packet {
	for tries := 0; tries <= a.NQ; tries++ {
		idx := int(a.round % int64(a.NQ))
		if p := a.queues[idx].pop(); p != nil {
			a.queued[idx] -= int(p.Size)
			a.bytes -= int(p.Size)
			a.packets--
			return p
		}
		if a.packets == 0 {
			return nil
		}
		a.round++ // current round drained: open the next slot
	}
	return nil
}

// Len returns the queued packet count.
func (a *AFQ) Len() int { return a.packets }

// BytesQueued returns the buffered byte total.
func (a *AFQ) BytesQueued() int { return a.bytes }

// Round returns the round currently in service (diagnostics).
func (a *AFQ) Round() int64 { return a.round }
