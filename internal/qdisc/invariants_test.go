package qdisc

import (
	"math"
	"testing"

	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// balanceQdisc is the surface the conservation invariant needs; FIFO,
// FQCoDel, and Lossy all satisfy it.
type balanceQdisc interface {
	Enqueue(p *packet.Packet) bool
	Dequeue() *packet.Packet
	Len() int
	BytesQueued() int
}

// TestBacklogAndBalanceInvariants drives each discipline with a seeded,
// enqueue-biased op sequence and checks after every single operation that
// the backlog never goes negative, Len and BytesQueued agree about
// emptiness, and every packet ever offered is accounted for as exactly one
// of delivered, still queued, or counted in a drop counter. The limits are
// tight enough that every case actually exercises its drop path.
func TestBacklogAndBalanceInvariants(t *testing.T) {
	cases := []struct {
		name  string
		build func(eng *sim.Engine) (q balanceQdisc, drops func() uint64)
	}{
		{"fifo", func(eng *sim.Engine) (balanceQdisc, func() uint64) {
			q := NewFIFO(8 << 10)
			return q, func() uint64 { return q.Drops }
		}},
		{"fqcodel", func(eng *sim.Engine) (balanceQdisc, func() uint64) {
			// Drops counts both fattest-flow overflow at enqueue and CoDel
			// drops at dequeue, so the same identity covers both paths.
			q := NewFQCoDel(eng, 8<<10, 1500, DefaultCoDelParams())
			return q, func() uint64 { return q.Drops }
		}},
		{"lossy", func(eng *sim.Engine) (balanceQdisc, func() uint64) {
			inner := NewFIFO(8 << 10)
			l := NewLossy(inner, 7)
			l.DropProb = 0.05
			l.DropNth = map[uint64]bool{3: true, 50: true}
			return l, func() uint64 { return l.Dropped + inner.Drops }
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			q, drops := tc.build(eng)
			rng := sim.NewRand(12345)
			var offered, delivered uint64
			const steps = 4000
			for i := 0; i < steps; i++ {
				i := i
				// Real time must advance between ops so FQCoDel sees
				// nonzero sojourns rather than a frozen clock.
				eng.Schedule(sim.Time(i)*5e5, func() {
					if rng.Intn(100) < 60 {
						p := pkt(rng.Intn(4), int32(100+rng.Intn(1400)))
						p.Seq = int64(i) * 64
						offered++
						q.Enqueue(p)
					} else if p := q.Dequeue(); p != nil {
						delivered++
					}
					if q.Len() < 0 || q.BytesQueued() < 0 {
						t.Fatalf("step %d: negative backlog len=%d bytes=%d", i, q.Len(), q.BytesQueued())
					}
					if (q.Len() == 0) != (q.BytesQueued() == 0) {
						t.Fatalf("step %d: len=%d and bytes=%d disagree about emptiness", i, q.Len(), q.BytesQueued())
					}
					if got := delivered + uint64(q.Len()) + drops(); got != offered {
						t.Fatalf("step %d: delivered %d + queued %d + dropped %d != offered %d",
							i, delivered, q.Len(), drops(), offered)
					}
				})
			}
			eng.RunAll()
			for p := q.Dequeue(); p != nil; p = q.Dequeue() {
				delivered++
			}
			if q.Len() != 0 || q.BytesQueued() != 0 {
				t.Fatalf("drained queue reports len=%d bytes=%d", q.Len(), q.BytesQueued())
			}
			if delivered+drops() != offered {
				t.Fatalf("final balance: delivered %d + dropped %d != offered %d", delivered, drops(), offered)
			}
			if drops() == 0 {
				t.Fatal("scenario exercised no drops; the limit is not tight enough to test the drop path")
			}
		})
	}
}

// TestCoDelDropSpacingFollowsControlLaw pins the RFC 8289 control law on
// the raw state machine: within a dropping episode the scheduled drop
// times advance by exactly Interval/sqrt(dropCount), so successive gaps
// shrink monotonically while dropNextAt strictly increases. It then checks
// that one below-target sojourn ends the episode, and that re-entering
// shortly after resumes near the previous drop rate instead of restarting
// from one drop per interval.
func TestCoDelDropSpacingFollowsControlLaw(t *testing.T) {
	st := codelState{params: DefaultCoDelParams()}
	interval := st.params.Interval
	sojourn := 2 * st.params.Target
	qbytes := 10 * packet.MSS

	type obs struct {
		at, next sim.Time
		count    uint32
	}
	var drops []obs
	var last sim.Time
	for now := sim.Time(0); now < 3e9; now += 1e6 {
		if st.shouldDrop(sojourn, now, qbytes) {
			drops = append(drops, obs{now, st.dropNextAt, st.dropCount})
		}
		last = now
	}
	if len(drops) < 20 {
		t.Fatalf("sustained above-target sojourn produced only %d drops", len(drops))
	}
	// Entry: okToDrop needs a full interval above target, and the cold
	// dropNextAt=0 path needs a second interval before now-firstAboveAt
	// reaches Interval, so the first drop lands exactly at 2*Interval.
	if drops[0].at != 2*interval || drops[0].count != 1 {
		t.Fatalf("first drop at %d with count %d, want %d with count 1", drops[0].at, drops[0].count, 2*interval)
	}
	for i := 1; i < len(drops); i++ {
		if drops[i].count != drops[i-1].count+1 {
			t.Fatalf("drop %d: count %d, want %d", i, drops[i].count, drops[i-1].count+1)
		}
		if drops[i].next <= drops[i-1].next {
			t.Fatalf("drop %d: dropNextAt %d did not advance past %d", i, drops[i].next, drops[i-1].next)
		}
		gap := drops[i].next - drops[i-1].next
		want := sim.Time(float64(interval) / math.Sqrt(float64(drops[i].count)))
		if gap != want {
			t.Fatalf("drop %d: dropNextAt advanced by %d, control law says %d", i, gap, want)
		}
		prevGap := drops[i-1].next - func() sim.Time {
			if i >= 2 {
				return drops[i-2].next
			}
			return drops[i-1].next - gap - 1 // force prevGap > gap for i==1
		}()
		if gap >= prevGap {
			t.Fatalf("drop %d: gap %d did not shrink from %d", i, gap, prevGap)
		}
		// The actual drop instant is the first 1 ms tick at or after the
		// previously scheduled dropNextAt.
		if drops[i].at < drops[i-1].next || drops[i].at-drops[i-1].next >= 1e6 {
			t.Fatalf("drop %d fired at %d, scheduled for %d", i, drops[i].at, drops[i-1].next)
		}
	}

	// A single below-target sojourn exits the dropping state.
	peakCount := st.dropCount
	if st.shouldDrop(st.params.Target-1, last+1e6, qbytes) {
		t.Fatal("below-target sojourn must never drop")
	}
	if st.dropping {
		t.Fatal("below-target sojourn must end the dropping episode")
	}

	// Re-entering within 16 intervals restores the previous drop rate
	// (dropCount resumes near its peak) instead of resetting to 1.
	reentered := false
	for now := last + 2e6; now < last+4e8; now += 1e6 {
		if st.shouldDrop(sojourn, now, qbytes) {
			reentered = true
			break
		}
	}
	if !reentered {
		t.Fatal("sustained above-target sojourn after exit never re-entered dropping")
	}
	if st.dropCount < peakCount/2 {
		t.Errorf("re-entry within 16 intervals restarted at count %d, want hysteresis near %d", st.dropCount, peakCount)
	}
}

// TestLossyDropRules pins each fault-injection rule: per-seq countdown,
// 1-based offered-index drops that skip non-data packets, the retransmit
// exemption, and bitwise reproducibility of probabilistic drops under the
// same seed.
func TestLossyDropRules(t *testing.T) {
	mk := func(seq int64, retx bool) *packet.Packet {
		p := pkt(1, 1500)
		p.Seq = seq
		p.Retransmit = retx
		return p
	}

	t.Run("seq countdown", func(t *testing.T) {
		l := NewLossy(NewFIFO(0), 1)
		l.DropSeqs = map[int64]int{1000: 2}
		if l.Enqueue(mk(1000, false)) || l.Enqueue(mk(1000, false)) {
			t.Fatal("first two offers of seq 1000 must drop")
		}
		if !l.Enqueue(mk(1000, false)) {
			t.Fatal("countdown exhausted; third offer must pass")
		}
		if !l.Enqueue(mk(2000, false)) {
			t.Fatal("unlisted seq must pass")
		}
		if l.Dropped != 2 {
			t.Fatalf("Dropped = %d, want 2", l.Dropped)
		}
	})

	t.Run("nth offered skips non-data", func(t *testing.T) {
		l := NewLossy(NewFIFO(0), 1)
		l.DropNth = map[uint64]bool{1: true, 3: true}
		ack := &packet.Packet{Flow: packet.FlowKey{Src: 1, Dst: 99}, Size: packet.HeaderBytes}
		if !l.Enqueue(ack) {
			t.Fatal("pure ACK must bypass the drop rules")
		}
		got := []bool{
			l.Enqueue(mk(0, false)),
			l.Enqueue(mk(64, false)),
			l.Enqueue(mk(128, false)),
			l.Enqueue(mk(192, false)),
		}
		want := []bool{false, true, false, true}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("data offer %d admitted=%v, want %v (ACKs must not consume indices)", i+1, got[i], want[i])
			}
		}
		if len(l.DropNth) != 0 {
			t.Fatalf("consumed indices must be deleted, %d left", len(l.DropNth))
		}
	})

	t.Run("retransmit exemption", func(t *testing.T) {
		l := NewLossy(NewFIFO(0), 1)
		l.DropSeqs = map[int64]int{500: 1}
		if !l.Enqueue(mk(500, true)) {
			t.Fatal("retransmission must be exempt by default")
		}
		l.DropRetransmits = true
		if l.Enqueue(mk(500, true)) {
			t.Fatal("DropRetransmits must extend matching to retransmissions")
		}
		if l.Dropped != 1 {
			t.Fatalf("Dropped = %d, want 1", l.Dropped)
		}
	})

	t.Run("prob reproducible per seed", func(t *testing.T) {
		pattern := func(seed uint64) []bool {
			l := NewLossy(NewFIFO(0), seed)
			l.DropProb = 0.3
			out := make([]bool, 300)
			for i := range out {
				out[i] = l.Enqueue(mk(int64(i)*64, false))
			}
			if l.Dropped == 0 || l.Dropped == 300 {
				t.Fatalf("seed %d: %d/300 dropped, want a nontrivial fraction", seed, l.Dropped)
			}
			return out
		}
		a, b := pattern(99), pattern(99)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same seed diverged at offer %d", i)
			}
		}
	})
}
