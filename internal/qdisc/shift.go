package qdisc

import "cebinae/internal/sim"

// ShiftTime translates the enqueue stamps of every buffered packet by d,
// for the fluid fast-forward layer (internal/fluid): a queue frozen
// across a clock skip must keep each packet's sojourn-so-far.
func (f *FIFO) ShiftTime(d sim.Time) {
	f.q.shiftTime(d)
}

// ShiftTime translates all absolute stamps held by the discipline by d:
// buffered packets' enqueue stamps and each per-flow CoDel state
// machine's deadlines. Map iteration is mutation-only (every flow gets
// the same translation), so order cannot affect the result.
func (f *FQCoDel) ShiftTime(d sim.Time) {
	for _, fl := range f.flows {
		fl.q.shiftTime(d)
		fl.codel.shiftTime(d)
	}
}

// shiftTime translates the CoDel dropper's absolute deadlines. Zero
// values are "never" sentinels (not above target / never dropped) and
// stay zero so the re-entry hysteresis window does not resurrect.
func (c *codelState) shiftTime(d sim.Time) {
	if c.firstAboveAt != 0 {
		c.firstAboveAt += d
	}
	if c.dropNextAt != 0 {
		c.dropNextAt += d
	}
}

// shiftTime translates the stamps of every packet in the ring.
func (r *ring) shiftTime(d sim.Time) {
	for i := 0; i < r.count; i++ {
		r.buf[(r.head+i)%len(r.buf)].ShiftTime(d)
	}
}
