package qdisc

import (
	"cebinae/internal/cmsketch"
	"cebinae/internal/packet"
)

// PCQ implements the fair-queueing instantiation of Programmable Calendar
// Queues (Sharma et al., NSDI '20) — the other scalability comparison the
// paper's §5.5 names ("AFQ or PCQ"). Like AFQ it schedules each packet into
// the calendar slot of its flow's bid round; the distinctive difference is
// overflow handling: where AFQ *drops* packets whose round lies beyond the
// nQ-slot horizon, PCQ enqueues them into the *last* queue, trading
// fairness degradation for delivery. Rotation is queue-drain driven: when
// the head queue empties it is recycled to the tail as the farthest-future
// slot.
type PCQ struct {
	NQ  int
	BpR int64

	limitBytes int
	round      int64
	queues     []ring
	bytes      int
	packets    int
	sketch     *cmsketch.Sketch

	// HorizonSquashed counts packets scheduled past the horizon and
	// squashed into the last queue (PCQ's fairness-degradation mode).
	HorizonSquashed uint64
	OverflowDrops   uint64
}

// NewPCQ builds a PCQ instance (geometry as NewAFQ).
func NewPCQ(nQ int, bpr int64, limitBytes, sketchCols int) *PCQ {
	if nQ <= 0 || bpr <= 0 {
		panic("qdisc: PCQ needs positive nQ and BpR")
	}
	if limitBytes <= 0 {
		limitBytes = 32 << 20
	}
	if sketchCols <= 0 {
		sketchCols = 4096
	}
	return &PCQ{
		NQ:         nQ,
		BpR:        bpr,
		limitBytes: limitBytes,
		queues:     make([]ring, nQ),
		sketch:     cmsketch.New(4, sketchCols),
	}
}

// Enqueue schedules into the bid round's slot, squashing beyond-horizon
// packets into the last queue.
func (q *PCQ) Enqueue(p *packet.Packet) bool {
	if q.bytes+int(p.Size) > q.limitBytes {
		q.OverflowDrops++
		return false
	}
	floor := q.round * q.BpR
	bid := q.sketch.Estimate(p.Flow)
	if bid < floor {
		bid = floor
	}
	bid += int64(p.Size)
	slot := bid / q.BpR
	if slot >= q.round+int64(q.NQ) {
		slot = q.round + int64(q.NQ) - 1
		q.HorizonSquashed++
	}
	q.sketch.UpdateMax(p.Flow, bid)
	idx := int(slot % int64(q.NQ))
	q.bytes += int(p.Size)
	q.packets++
	q.queues[idx].push(p)
	return true
}

// Dequeue serves the head slot, rotating drained queues to the tail.
func (q *PCQ) Dequeue() *packet.Packet {
	for tries := 0; tries <= q.NQ; tries++ {
		idx := int(q.round % int64(q.NQ))
		if p := q.queues[idx].pop(); p != nil {
			q.bytes -= int(p.Size)
			q.packets--
			return p
		}
		if q.packets == 0 {
			return nil
		}
		q.round++ // ROTATE: drained head becomes the farthest-future slot
	}
	return nil
}

// Len returns the queued packet count.
func (q *PCQ) Len() int { return q.packets }

// BytesQueued returns the buffered byte total.
func (q *PCQ) BytesQueued() int { return q.bytes }

// Round returns the slot currently in service (diagnostics).
func (q *PCQ) Round() int64 { return q.round }
