package qdisc

import (
	"cebinae/internal/packet"
	"cebinae/internal/sim"
)

// FQCoDel implements the RFC 8290 scheduler the paper uses as its "FQ"
// baseline: Deficit Round Robin across per-flow queues, CoDel AQM within
// each queue. Matching the paper's configuration ("we change the default
// 1024 queues to 2^32−1 to ensure an ideal per-flow queue"), flows map to
// dedicated queues with no hash collisions.
type FQCoDel struct {
	eng        *sim.Engine
	limitBytes int
	quantum    int
	codel      CoDelParams

	flows map[packet.FlowKey]*fqFlow
	// nextSeq stamps flow queues in creation order so drop-victim ties
	// resolve deterministically (map iteration order is randomised per
	// process, and byte-identical reruns depend on a total order here).
	nextSeq uint64
	// DRR schedule: new flows get one quantum of priority before joining
	// the old-flows round robin, per RFC 8290 §4.2.
	newFlows list
	oldFlows list

	bytes   int
	packets int

	Drops     uint64
	ECNMarked uint64
}

type fqFlow struct {
	key     packet.FlowKey
	seq     uint64
	q       ring
	bytes   int
	deficit int
	codel   codelState
	// where: 0 = detached, 1 = new list, 2 = old list
	where      int
	next, prev *fqFlow
}

// NewFQCoDel builds the discipline. limitBytes bounds total buffered bytes
// (<=0 means a large default); quantum <= 0 selects one MTU.
func NewFQCoDel(eng *sim.Engine, limitBytes, quantum int, params CoDelParams) *FQCoDel {
	if limitBytes <= 0 {
		limitBytes = 32 << 20
	}
	if quantum <= 0 {
		quantum = 1500
	}
	return &FQCoDel{
		eng:        eng,
		limitBytes: limitBytes,
		quantum:    quantum,
		codel:      params,
		flows:      make(map[packet.FlowKey]*fqFlow),
	}
}

// Enqueue classifies p to its flow queue. On overflow it drops from the
// largest queue (RFC 8290 §4.1.3), which may or may not be p's own.
func (f *FQCoDel) Enqueue(p *packet.Packet) bool {
	fl, ok := f.flows[p.Flow]
	if !ok {
		fl = &fqFlow{key: p.Flow, seq: f.nextSeq}
		f.nextSeq++
		f.flows[p.Flow] = fl
	}
	p.EnqueuedAt = f.eng.Now()
	fl.bytes += int(p.Size)
	f.bytes += int(p.Size)
	f.packets++
	fl.q.push(p)

	if fl.where == 0 {
		fl.deficit = f.quantum
		f.newFlows.pushBack(fl)
		fl.where = 1
	}

	dropped := false
	for f.bytes > f.limitBytes {
		victim := f.fattestFlow()
		if victim == nil {
			break
		}
		dp := victim.q.pop()
		victim.bytes -= int(dp.Size)
		f.bytes -= int(dp.Size)
		f.packets--
		f.Drops++
		//lint:ignore pktown pointer identity test only — the drop loop may pop back the packet just enqueued; nothing dereferences it
		if dp == p {
			dropped = true
		}
	}
	return !dropped
}

// Dequeue runs one DRR scheduling step, applying CoDel to the head of the
// selected flow queue.
func (f *FQCoDel) Dequeue() *packet.Packet {
	for {
		fl := f.selectFlow()
		if fl == nil {
			return nil
		}
		p := f.codelDequeue(fl)
		if p == nil {
			// Queue emptied (possibly by CoDel drops): per RFC 8290, a new
			// flow that empties moves to the old list; an old flow detaches.
			if fl.where == 1 {
				f.newFlows.remove(fl)
				f.oldFlows.pushBack(fl)
				fl.where = 2
			} else {
				f.oldFlows.remove(fl)
				fl.where = 0
				delete(f.flows, fl.key)
			}
			continue
		}
		fl.deficit -= int(p.Size)
		return p
	}
}

// selectFlow picks the next flow with positive deficit, preferring the new
// list, recharging deficits as rounds complete.
func (f *FQCoDel) selectFlow() *fqFlow {
	for {
		fl := f.newFlows.front
		fromNew := true
		if fl == nil {
			fl = f.oldFlows.front
			fromNew = false
		}
		if fl == nil {
			return nil
		}
		if fl.deficit <= 0 {
			fl.deficit += f.quantum
			if fromNew {
				f.newFlows.remove(fl)
				f.oldFlows.pushBack(fl)
				fl.where = 2
			} else {
				f.oldFlows.remove(fl)
				f.oldFlows.pushBack(fl)
			}
			continue
		}
		return fl
	}
}

// codelDequeue pops packets from fl, dropping while CoDel says to. ECN-capable
// packets are CE-marked instead of dropped (RFC 8290 §4.2).
func (f *FQCoDel) codelDequeue(fl *fqFlow) *packet.Packet {
	now := f.eng.Now()
	for {
		p := fl.q.pop()
		if p == nil {
			return nil
		}
		fl.bytes -= int(p.Size)
		f.bytes -= int(p.Size)
		f.packets--
		sojourn := now - p.EnqueuedAt
		if fl.codel.shouldDrop(sojourn, now, fl.bytes) {
			if p.ECN == packet.ECNECT {
				p.ECN = packet.ECNCE
				f.ECNMarked++
				return p
			}
			f.Drops++
			continue
		}
		return p
	}
}

// Len returns the number of queued packets across all flows.
func (f *FQCoDel) Len() int { return f.packets }

// BytesQueued returns the buffered byte total.
func (f *FQCoDel) BytesQueued() int { return f.bytes }

// FlowCount returns the number of active flow queues.
func (f *FQCoDel) FlowCount() int { return len(f.flows) }

// fattestFlow picks the drop victim: the largest backlog, ties broken by
// oldest flow queue. The tie-break matters — iteration order over the
// flows map differs between processes, and equal backlogs are the common
// case with homogeneous flows.
func (f *FQCoDel) fattestFlow() *fqFlow {
	var fat *fqFlow
	//lint:ignore mapiter the comparison below is a total order — bytes descending with creation-seq tie-break — so the selected victim is independent of map iteration order (this is the PR-1 fix the analyzer guards)
	for _, fl := range f.flows {
		if fl.q.len() == 0 {
			continue
		}
		if fat == nil || fl.bytes > fat.bytes || (fl.bytes == fat.bytes && fl.seq < fat.seq) {
			fat = fl
		}
	}
	return fat
}

// list is an intrusive doubly linked list of fqFlows.
type list struct {
	front, back *fqFlow
}

func (l *list) pushBack(fl *fqFlow) {
	fl.next, fl.prev = nil, l.back
	if l.back != nil {
		l.back.next = fl
	} else {
		l.front = fl
	}
	l.back = fl
}

func (l *list) remove(fl *fqFlow) {
	if fl.prev != nil {
		fl.prev.next = fl.next
	} else if l.front == fl {
		l.front = fl.next
	}
	if fl.next != nil {
		fl.next.prev = fl.prev
	} else if l.back == fl {
		l.back = fl.prev
	}
	fl.next, fl.prev = nil, nil
}
