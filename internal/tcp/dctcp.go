package tcp

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010; RFC
// 8257): the sender estimates the fraction α of bytes that were CE-marked
// over each observation window and, once per window, reduces the
// congestion window proportionally — cwnd ← cwnd·(1 − α/2) — instead of
// halving on every congestion signal. This exercises Cebinae's ECN path
// (Fig. 5 line 26: the LBF CE-marks ECN-capable packets it delays), giving
// an end-to-end ECN-responsive workload.
//
// Connections running DCTCP should set Config.ECN so data is ECT-marked.
type DCTCP struct {
	// G is the EWMA gain for the marking-fraction estimate (RFC 8257
	// default 1/16).
	G float64

	alpha        float64
	ackedBytes   int64 // bytes acked in the current observation window
	markedBytes  int64 // of which carried ECN-Echo
	windowEnd    int64 // snd_una-relative end of the observation window
	reduced      bool  // one reduction per window
	lastReduceAt int64
}

// NewDCTCP returns DCTCP with RFC 8257 defaults (g = 1/16, α₀ = 1).
func NewDCTCP() *DCTCP { return &DCTCP{G: 1.0 / 16, alpha: 1} }

// Name implements CongestionControl.
func (*DCTCP) Name() string { return "dctcp" }

// Init implements CongestionControl.
func (d *DCTCP) Init(c *Conn) {
	d.alpha = 1
	d.ackedBytes, d.markedBytes = 0, 0
	d.windowEnd = 0
}

// OnAck runs Reno-style growth plus the per-window α update.
func (d *DCTCP) OnAck(c *Conn, rs RateSample) {
	d.observe(c, rs, false)
	mss := float64(c.cfg.MSS)
	if c.Cwnd < c.Ssthresh {
		c.Cwnd += float64(rs.AckedBytes)
		if c.Cwnd > c.Ssthresh {
			c.Cwnd = c.Ssthresh
		}
		return
	}
	c.Cwnd += mss * mss / c.Cwnd
}

// OnECE records marked bytes and applies the fraction-proportional
// reduction at the end of each observation window (ECNReactor).
func (d *DCTCP) OnECE(c *Conn, rs RateSample) {
	d.observe(c, rs, true)
}

// observe accumulates the window's byte counts and closes the window once
// a full cwnd of data has been acknowledged.
func (d *DCTCP) observe(c *Conn, rs RateSample, marked bool) {
	d.ackedBytes += rs.AckedBytes
	if marked {
		d.markedBytes += rs.AckedBytes
	}
	if rs.Delivered < d.windowEnd {
		return
	}
	// Window complete: refresh α and react if anything was marked.
	if d.ackedBytes > 0 {
		f := float64(d.markedBytes) / float64(d.ackedBytes)
		d.alpha = (1-d.G)*d.alpha + d.G*f
		if d.markedBytes > 0 {
			w := c.Cwnd * (1 - d.alpha/2)
			min := 2 * float64(c.cfg.MSS)
			if w < min {
				w = min
			}
			c.Cwnd = w
			c.Ssthresh = w
		}
	}
	d.ackedBytes, d.markedBytes = 0, 0
	d.windowEnd = rs.Delivered + rs.InFlight
}

// OnRecoveryAck keeps slow-start regrowth after an RTO.
func (d *DCTCP) OnRecoveryAck(c *Conn, rs RateSample) {
	if c.Cwnd < c.Ssthresh {
		c.Cwnd += float64(rs.AckedBytes)
		if c.Cwnd > c.Ssthresh {
			c.Cwnd = c.Ssthresh
		}
	}
}

// OnEnterRecovery halves on packet loss (DCTCP keeps standard loss
// behaviour; α only moderates ECN reactions).
func (d *DCTCP) OnEnterRecovery(c *Conn) {
	half := c.Cwnd / 2
	min := 2 * float64(c.cfg.MSS)
	if half < min {
		half = min
	}
	c.Ssthresh = half
	c.Cwnd = half
}

// OnExitRecovery implements CongestionControl.
func (*DCTCP) OnExitRecovery(c *Conn) { c.Cwnd = c.Ssthresh }

// OnRTO collapses the window.
func (d *DCTCP) OnRTO(c *Conn) {
	d.OnEnterRecovery(c)
	c.Cwnd = float64(c.cfg.MSS)
}

// PacingRate implements CongestionControl: ACK-clocked.
func (*DCTCP) PacingRate(c *Conn) float64 { return 0 }

// Alpha exposes the current marking-fraction estimate (diagnostics).
func (d *DCTCP) Alpha() float64 { return d.alpha }
