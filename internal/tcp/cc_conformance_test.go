package tcp

import (
	"math"
	"testing"

	"cebinae/internal/sim"
)

// Conformance tests: scripted ACK/loss/mark traces against the published
// behaviour of each algorithm — the CUBIC window curve of RFC 8312, the
// BBRv1 state machine of Cardwell et al., BIC's binary search, Vegas's
// α/β/γ rules, and DCTCP's α EWMA from RFC 8257. Unlike the unit tests in
// cc_test.go (single hooks), these drive whole trajectories and pin the
// shape of the response.

// advanceClock moves the detached connection's engine forward by dt.
func advanceClock(c *Conn, dt sim.Time) {
	c.eng.Schedule(dt, func() {})
	c.eng.RunAll()
}

// TestCubicCurveShape drives CUBIC through a full post-loss epoch with
// ACK-clocked rounds and checks the three regions of the RFC 8312 curve:
// concave deceleration toward W_max, a plateau with W(K) ≈ W_max at
// t = K = cbrt((W_max − W_max·β)/C), and convex acceleration beyond K.
func TestCubicCurveShape(t *testing.T) {
	cu := NewCubic()
	c := ccConn(cu)
	mss := float64(c.cfg.MSS)
	c.srtt = sim.Duration(100e6) // 100 ms RTT

	c.Cwnd = 400 * mss
	c.cc.OnEnterRecovery(c) // wMax = 400 segs, cwnd -> 280
	c.Ssthresh = c.Cwnd     // congestion avoidance from here

	k := math.Cbrt((400 - 280) / cu.C) // ≈ 6.69 s
	const step = sim.Time(100e6)       // one RTT per step
	stepSec := step.Seconds()
	steps := int(k/stepSec*1.45) + 1

	traj := make([]float64, 0, steps+1)
	traj = append(traj, c.Cwnd/mss)
	for i := 0; i < steps; i++ {
		c.eng.Schedule(step, func() {
			// One RTT delivers a full window of ACKs.
			for n := int(c.Cwnd / mss); n > 0; n-- {
				c.cc.OnAck(c, RateSample{AckedBytes: int64(mss)})
			}
		})
		c.eng.RunAll()
		traj = append(traj, c.Cwnd/mss)
	}

	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1]-1e-9 {
			t.Fatalf("window shrank without loss at step %d: %.2f -> %.2f segs", i, traj[i-1], traj[i])
		}
	}
	atK := traj[int(k/stepSec)]
	if atK < 0.95*400 || atK > 1.05*400 {
		t.Fatalf("W(K) = %.1f segs, want ≈ W_max = 400 (RFC 8312 plateau)", atK)
	}
	avgInc := func(from, to float64) float64 { // seconds -> segs/step
		lo, hi := int(from/stepSec), int(to/stepSec)
		return (traj[hi] - traj[lo]) / float64(hi-lo)
	}
	early := avgInc(0.5, 1.5)    // deep in the concave region
	nearK := avgInc(k-1.0, k)    // flattening into the plateau
	late := avgInc(1.15*k, 1.4*k) // convex probing past W_max
	if early < 2*nearK {
		t.Errorf("concave region not decelerating: early %.2f segs/RTT vs near-K %.2f", early, nearK)
	}
	if late < 2*nearK {
		t.Errorf("convex region not accelerating: late %.2f segs/RTT vs near-K %.2f", late, nearK)
	}
}

// TestBBRStartupDrainProbeBW walks the BBRv1 state machine along the
// published path: STARTUP while the bandwidth estimate still grows,
// DRAIN once three flat rounds signal a full pipe (with pacing below the
// estimate to empty the queue), then PROBE_BW when inflight falls to the
// estimated BDP.
func TestBBRStartupDrainProbeBW(t *testing.T) {
	b := NewBBR()
	c := ccConn(b)
	rtt := sim.Duration(20e6)
	ack := func(rate float64, inflight int64) {
		c.cc.OnAck(c, RateSample{AckedBytes: 1448, RTT: rtt, DeliveryRate: rate, RoundStart: true, InFlight: inflight})
	}

	// Bandwidth still growing ≥ 1.25× per round: must stay in STARTUP.
	for _, rate := range []float64{0.4e6, 0.8e6, 1.25e6} {
		ack(rate, 100000)
		if b.State() != "STARTUP" {
			t.Fatalf("left STARTUP while the estimate was still growing (state %s)", b.State())
		}
	}
	if pr := b.PacingRate(c); pr < 2.8*b.BtlBw() {
		t.Errorf("STARTUP pacing %.0f, want high-gain ≈ 2.885 × btlBw %.0f", pr, b.BtlBw())
	}

	// Three plateaued rounds: full-pipe detection must fire and enter
	// DRAIN while inflight is far above the BDP (1.25e6 B/s × 20 ms = 25 kB).
	for i := 0; i < 3; i++ {
		ack(1.25e6, 100000)
	}
	if b.State() != "DRAIN" {
		t.Fatalf("three flat rounds should enter DRAIN, state %s", b.State())
	}
	if pr := b.PacingRate(c); pr >= b.BtlBw() {
		t.Errorf("DRAIN must pace below the bottleneck estimate: %.0f vs %.0f", pr, b.BtlBw())
	}

	// Queue drained (inflight ≤ BDP): advance to PROBE_BW.
	ack(1.25e6, 20000)
	if b.State() != "PROBE_BW" {
		t.Fatalf("drained pipe should enter PROBE_BW, state %s", b.State())
	}
}

// TestBBRProbeRTTCycle pins the PROBE_RTT leg: when the min-RTT filter
// goes 10 s without a new minimum the algorithm must drop to 4 MSS of
// inflight, hold for 200 ms, then restore the prior window and return to
// PROBE_BW.
func TestBBRProbeRTTCycle(t *testing.T) {
	b := NewBBR()
	c := ccConn(b)
	mss := float64(c.cfg.MSS)
	rtt := sim.Duration(20e6)
	ack := func(obsRTT sim.Time, inflight int64) {
		c.cc.OnAck(c, RateSample{AckedBytes: 1448, RTT: obsRTT, DeliveryRate: 1.25e6, RoundStart: true, InFlight: inflight})
	}

	for _, rate := range []float64{0.4e6, 0.8e6, 1.25e6} {
		c.cc.OnAck(c, RateSample{AckedBytes: 1448, RTT: rtt, DeliveryRate: rate, RoundStart: true, InFlight: 100000})
	}
	for i := 0; i < 3; i++ {
		ack(rtt, 100000)
	}
	ack(rtt, 20000)
	if b.State() != "PROBE_BW" {
		t.Fatalf("setup failed to reach PROBE_BW (state %s)", b.State())
	}

	// 11 s with only higher RTT samples: the 10 s filter expires.
	advanceClock(c, sim.Time(11e9))
	ack(sim.Duration(25e6), 50000)
	if b.State() != "PROBE_RTT" {
		t.Fatalf("expired rtProp filter must enter PROBE_RTT, state %s", b.State())
	}
	if c.Cwnd != 4*mss {
		t.Fatalf("PROBE_RTT cwnd = %.0f, want exactly 4 MSS = %.0f", c.Cwnd, 4*mss)
	}
	priorCwnd := b.priorCwnd

	// Inflight reaches the floor: the 200 ms dwell starts; 300 ms later the
	// algorithm must be back in PROBE_BW with the prior window restored.
	ack(sim.Duration(25e6), 5000)
	if b.State() != "PROBE_RTT" {
		t.Fatalf("left PROBE_RTT before the 200 ms dwell elapsed (state %s)", b.State())
	}
	advanceClock(c, sim.Time(300e6))
	ack(sim.Duration(25e6), 5000)
	if b.State() != "PROBE_BW" {
		t.Fatalf("PROBE_RTT should return to PROBE_BW after its dwell, state %s", b.State())
	}
	if c.Cwnd < priorCwnd {
		t.Errorf("cwnd %.0f not restored to the pre-probe window %.0f", c.Cwnd, priorCwnd)
	}
}

// TestBICConvergesSlowlyNearLastMax drives BIC's binary search into its
// terminal phase: just below the last known maximum the per-RTT step is
// half the remaining distance, so the window creeps up without crossing
// far past lastMax; once beyond it, max probing accelerates.
func TestBICConvergesSlowlyNearLastMax(t *testing.T) {
	b := NewBIC()
	c := ccConn(b)
	mss := float64(c.cfg.MSS)
	b.lastMax = 200
	c.Cwnd = 198 * mss
	c.Ssthresh = c.Cwnd
	window := func() float64 {
		start := c.Cwnd
		for n := int(c.Cwnd / mss); n > 0; n-- {
			c.cc.OnAck(c, RateSample{AckedBytes: int64(mss)})
		}
		return (c.Cwnd - start) / mss
	}

	if gain := window(); gain < 0.3 || gain > 1.5 {
		t.Fatalf("2 segs below lastMax the binary-search step should be ≈1 seg/RTT, got %.2f", gain)
	}
	for i := 0; i < 4; i++ {
		window()
	}
	if seg := c.Cwnd / mss; seg > b.lastMax+1.5 {
		t.Fatalf("binary search overshot lastMax: %.2f segs vs lastMax %.0f", seg, b.lastMax)
	}

	// Past the old maximum, max probing grows the step each RTT.
	c.Cwnd = 210 * mss
	g1 := window()
	g2 := window()
	if g2 <= g1 {
		t.Errorf("max probing should accelerate: %.2f then %.2f segs/RTT", g1, g2)
	}
}

// TestVegasGammaLeavesSlowStart checks the γ rule: when the per-round
// queue estimate exceeds γ during slow start, Vegas clamps the window to
// the queue-emptying target (cwnd·baseRTT/rtt + 1 MSS) and drops ssthresh
// so the flow lands in congestion avoidance.
func TestVegasGammaLeavesSlowStart(t *testing.T) {
	v := NewVegas()
	c := ccConn(v)
	mss := float64(c.cfg.MSS)
	base := sim.Duration(20e6)
	obs := sim.Duration(30e6) // diff = 10·(10/30) ≈ 3.33 > γ = 1
	v.baseRTT = base
	v.beginSeq = 2
	c.cc.OnAck(c, RateSample{AckedBytes: int64(mss), RTT: obs, Delivered: 1})
	c.cc.OnAck(c, RateSample{AckedBytes: int64(mss), RTT: obs, Delivered: 2, InFlight: int64(mss)})

	wantCwnd := 10*float64(base)/float64(obs)*mss + mss
	if math.Abs(c.Cwnd-wantCwnd) > 1 {
		t.Errorf("γ clamp: cwnd %.1f, want target %.1f", c.Cwnd, wantCwnd)
	}
	if c.Ssthresh > c.Cwnd-mss+1 {
		t.Errorf("ssthresh %.1f must drop below cwnd %.1f so slow start ends", c.Ssthresh, c.Cwnd)
	}
}

// TestVegasLossFloors pins the loss-path floors: fast recovery keeps at
// least 2 MSS, an RTO restarts from exactly 1 MSS, and a round without
// enough RTT samples falls back to one MSS of Reno growth instead of
// freezing the window.
func TestVegasLossFloors(t *testing.T) {
	v := NewVegas()
	c := ccConn(v)
	mss := float64(c.cfg.MSS)
	c.Cwnd = 3 * mss
	c.cc.OnEnterRecovery(c)
	if c.Cwnd != 2*mss || c.Ssthresh != 2*mss {
		t.Fatalf("loss at 3 MSS must floor at 2 MSS: cwnd %.0f ssthresh %.0f", c.Cwnd, c.Ssthresh)
	}
	c.cc.OnRTO(c)
	if c.Cwnd != mss {
		t.Fatalf("RTO must restart from 1 MSS, got %.0f", c.Cwnd)
	}

	// A round with a single RTT sample cannot run the estimator; the
	// documented fallback is +1 MSS so tiny windows never freeze.
	c2 := ccConn(NewVegas())
	c2.Ssthresh = c2.Cwnd - mss
	start := c2.Cwnd
	c2.cc.OnAck(c2, RateSample{AckedBytes: int64(mss), RTT: sim.Duration(20e6), Delivered: 1, InFlight: int64(mss)})
	if c2.Cwnd != start+mss {
		t.Fatalf("sample-starved round should add 1 MSS: %.0f -> %.0f", start, c2.Cwnd)
	}
}

// dctcpWindowACKs is the span of one scripted DCTCP observation window:
// InFlight is pinned to this many MSS on every ACK, so each window closes
// exactly dctcpWindowACKs ACKs after the previous one.
const dctcpWindowACKs = 10

// dctcpDriver scripts DCTCP observation windows: ACKs of one MSS each,
// the last m of a window carrying ECN-Echo, so a marked window always
// closes on an OnECE call (which performs no growth — the reduction is
// exact).
type dctcpDriver struct {
	delivered int64
}

func (dr *dctcpDriver) window(c *Conn, d *DCTCP, n, m int) {
	for i := 0; i < n; i++ {
		dr.delivered += 1448
		rs := RateSample{AckedBytes: 1448, Delivered: dr.delivered, InFlight: dctcpWindowACKs * 1448}
		if i >= n-m {
			d.OnECE(c, rs)
		} else {
			d.OnAck(c, rs)
		}
	}
}

// TestDCTCPAlphaEWMA replays the RFC 8257 recurrence against scripted
// marking fractions: after every observation window the estimator must
// hold α = (1−g)·α + g·F exactly, and a marked window must scale the
// window by (1 − α/2).
func TestDCTCPAlphaEWMA(t *testing.T) {
	d := NewDCTCP()
	c := ccConn(d)
	c.Ssthresh = c.Cwnd // congestion avoidance
	dr := &dctcpDriver{}

	// Bootstrap ACK closes the degenerate first window (windowEnd = 0).
	dr.window(c, d, 1, 0)
	expected := (1 - d.G) * 1.0
	if math.Abs(d.Alpha()-expected) > 1e-12 {
		t.Fatalf("bootstrap α = %v, want %v", d.Alpha(), expected)
	}

	const n = dctcpWindowACKs
	for i, m := range []int{0, 5, 10, 2, 0, 7} {
		var cwndBefore float64
		if m > 0 {
			// All growth happens on the window's unmarked ACKs; capture the
			// window just before the closing marked run applies the cut.
			dr.window(c, d, n-m, 0)
			// ...but those ACKs must not close the window: they can't, since
			// the closing Delivered is n ACKs away. Now the marked tail:
			cwndBefore = c.Cwnd
			dr.window(c, d, m, m)
		} else {
			dr.window(c, d, n, 0)
		}
		f := float64(m) / float64(n)
		expected = (1-d.G)*expected + d.G*f
		if math.Abs(d.Alpha()-expected) > 1e-12 {
			t.Fatalf("window %d (F=%.1f): α = %v, want %v (RFC 8257 EWMA)", i, f, d.Alpha(), expected)
		}
		if m > 0 {
			want := cwndBefore * (1 - expected/2)
			if math.Abs(c.Cwnd-want) > 1e-6 {
				t.Fatalf("window %d: cwnd %.3f after cut, want %.3f = %.3f·(1−α/2)", i, c.Cwnd, want, cwndBefore)
			}
		}
	}

	// Sustained full marking drives α toward 1 and the window toward the
	// 2 MSS floor.
	for i := 0; i < 40; i++ {
		dr.window(c, d, n, n)
	}
	if d.Alpha() < 0.95 {
		t.Errorf("α after sustained marking = %v, want → 1", d.Alpha())
	}
	if c.Cwnd != 2*float64(c.cfg.MSS) {
		t.Errorf("sustained marking should pin cwnd at the 2 MSS floor, got %.0f", c.Cwnd)
	}

	// Mark-free windows decay α geometrically toward 0.
	before := d.Alpha()
	for i := 0; i < 40; i++ {
		dr.window(c, d, n, 0)
	}
	if d.Alpha() >= before/10 {
		t.Errorf("α should decay without marks: %v -> %v", before, d.Alpha())
	}
}
