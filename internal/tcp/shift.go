package tcp

import "cebinae/internal/sim"

// TimeShifter is implemented by components that hold absolute virtual-time
// stamps and must move them when the fluid fast-forward layer
// (internal/fluid) skips the clock forward: relative intervals (RTTs,
// pacing gaps, epochs in progress) are preserved by translating every
// absolute stamp by the skip. Congestion-control algorithms that keep
// absolute stamps implement it; duration-only state (srtt, baseRTT, …)
// needs no translation.
type TimeShifter interface {
	ShiftTime(d sim.Time)
}

// ShiftTime translates all absolute virtual-time state held by the
// connection by d: delivery-rate stamps, pacing release times, the
// per-segment sent records, and the congestion controller's own stamps if
// it holds any. The connection's pending timers (RTO, pacing, delayed
// ACK) are shifted by the engine itself (sim.Engine.FastForward); this
// method covers only state the engine cannot see. Zero-valued stamps are
// "not yet set" sentinels and stay zero.
func (c *Conn) ShiftTime(d sim.Time) {
	if c.deliveredTime != 0 {
		c.deliveredTime += d
	}
	if c.firstTxTime != 0 {
		c.firstTxTime += d
	}
	if c.nextSendTime != 0 {
		c.nextSendTime += d
	}
	if c.lastInjectTime != 0 {
		c.lastInjectTime += d
	}
	// In-flight segment records: shifting every record by the same d
	// keeps all pairwise deltas (and hence every future RTT and
	// delivery-rate sample) exact, so iteration order is immaterial.
	for _, rec := range c.sent {
		if rec.sentAt != 0 {
			rec.sentAt += d
		}
		if rec.txTimeAtTx != 0 {
			rec.txTimeAtTx += d
		}
		if rec.firstTxAtTx != 0 {
			rec.firstTxAtTx += d
		}
	}
	if s, ok := c.cc.(TimeShifter); ok {
		s.ShiftTime(d)
	}
}

// ShiftTime implements TimeShifter: BBR keeps absolute stamps for the
// RTprop filter window, the ProbeBW gain-cycle phase, and the ProbeRTT
// exit deadline.
func (b *BBR) ShiftTime(d sim.Time) {
	if b.rtPropStamp != 0 {
		b.rtPropStamp += d
	}
	if b.cycleStamp != 0 {
		b.cycleStamp += d
	}
	if b.probeRTTDone != 0 {
		b.probeRTTDone += d
	}
}

// ShiftTime implements TimeShifter: the cubic window-growth curve is a
// function of time since the current epoch began.
func (cu *Cubic) ShiftTime(d sim.Time) {
	if cu.epochAt != 0 {
		cu.epochAt += d
	}
}

// ShiftTime implements TimeShifter: H-TCP's additive-increase step grows
// with time since the last loss event.
func (h *HTCP) ShiftTime(d sim.Time) {
	if h.lastLossAt != 0 {
		h.lastLossAt += d
	}
}
