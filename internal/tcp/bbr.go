package tcp

import (
	"cebinae/internal/sim"
)

// bbrState enumerates the BBRv1 state machine.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "STARTUP"
	case bbrDrain:
		return "DRAIN"
	case bbrProbeBW:
		return "PROBE_BW"
	default:
		return "PROBE_RTT"
	}
}

// bbrHighGain is 2/ln(2), the startup gain that doubles delivery rate each
// round.
const bbrHighGain = 2.88539

// bbrPacingGainCycle is the PROBE_BW gain cycle: probe up, drain, then six
// steady rounds.
var bbrPacingGainCycle = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// BBR implements BBRv1 (Cardwell et al., 2016): a model-based algorithm that
// estimates the bottleneck bandwidth (windowed-max delivery rate) and the
// round-trip propagation delay (windowed-min RTT), paces at gain-cycled
// multiples of the bandwidth estimate, and caps inflight at a multiple of
// the estimated BDP. BBRv1 largely ignores packet loss, which is why a
// single BBR flow can claim a large share against many loss-based flows —
// the behaviour the paper's Table 2 and Fig. 8a exercise.
type BBR struct {
	// btlBw filter: windowed max over bbrBtlBwWindowRounds rounds.
	bwFilter maxFilter
	// rtProp: windowed min RTT.
	rtProp      sim.Time
	rtPropStamp sim.Time

	state      bbrState
	pacingGain float64
	cwndGain   float64

	fullBW       float64
	fullBWCount  int
	filledPipe   bool
	cycleIndex   int
	cycleStamp   sim.Time
	probeRTTDone sim.Time
	priorCwnd    float64

	nextRoundDelivered int64
	roundStart         bool
	roundCount         int64
}

const (
	bbrBtlBwWindowRounds = 10
	bbrRTpropWindow      = sim.Time(10e9)  // 10 s
	bbrProbeRTTDuration  = sim.Time(200e6) // 200 ms
	bbrMinCwndSegments   = 4
)

// NewBBR returns a BBRv1 instance in STARTUP.
func NewBBR() *BBR {
	return &BBR{state: bbrStartup, pacingGain: bbrHighGain, cwndGain: bbrHighGain}
}

// Name implements CongestionControl.
func (*BBR) Name() string { return "bbr" }

// Init implements CongestionControl.
func (b *BBR) Init(c *Conn) {
	c.Cwnd = float64(c.cfg.InitialCwndSegments * c.cfg.MSS)
}

// State returns the current state name (diagnostics).
func (b *BBR) State() string { return b.state.String() }

// BtlBw returns the bandwidth estimate in bytes/second.
func (b *BBR) BtlBw() float64 { return b.bwFilter.max() }

// OnAck runs the BBR model update on every delivery.
func (b *BBR) OnAck(c *Conn, rs RateSample) { b.update(c, rs) }

// OnRecoveryAck keeps the model updated during loss recovery.
func (b *BBR) OnRecoveryAck(c *Conn, rs RateSample) { b.update(c, rs) }

func (b *BBR) update(c *Conn, rs RateSample) {
	now := c.Engine().Now()

	// Round accounting (BBR keeps its own to drive the bw filter window).
	b.roundStart = rs.RoundStart
	if rs.RoundStart {
		b.roundCount++
	}

	// Update the bandwidth filter; app-limited samples may only raise it.
	if rs.DeliveryRate > 0 && (!rs.IsAppLimited || rs.DeliveryRate > b.bwFilter.max()) {
		b.bwFilter.update(b.roundCount, rs.DeliveryRate, bbrBtlBwWindowRounds)
	}

	// Update the min-RTT estimate. Expiry must be decided before the
	// filter refreshes its stamp: a stale-but-refreshed filter is exactly
	// the condition that sends BBR into PROBE_RTT.
	rtPropExpired := b.rtProp > 0 && now-b.rtPropStamp > bbrRTpropWindow
	if rs.RTT > 0 && (b.rtProp == 0 || rs.RTT <= b.rtProp || rtPropExpired) {
		b.rtProp = rs.RTT
		b.rtPropStamp = now
	}

	b.checkFullPipe(rs)
	b.checkDrain(c, rs)
	b.updateCycle(c, rs, now)
	b.checkProbeRTT(c, rs, now, rtPropExpired)
	b.setCwnd(c, rs)
}

func (b *BBR) checkFullPipe(rs RateSample) {
	if b.filledPipe || !b.roundStart || rs.IsAppLimited {
		return
	}
	if b.bwFilter.max() >= b.fullBW*1.25 {
		b.fullBW = b.bwFilter.max()
		b.fullBWCount = 0
		return
	}
	b.fullBWCount++
	if b.fullBWCount >= 3 {
		b.filledPipe = true
		if b.state == bbrStartup {
			b.state = bbrDrain
			b.pacingGain = 1 / bbrHighGain
			b.cwndGain = bbrHighGain
		}
	}
}

func (b *BBR) checkDrain(c *Conn, rs RateSample) {
	if b.state == bbrDrain && float64(rs.InFlight) <= b.bdp(1.0) {
		b.enterProbeBW(c.Engine().Now())
	}
}

func (b *BBR) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cwndGain = 2
	// Start the cycle at a random-ish phase; deterministically use phase 2
	// (gain 1) to avoid synchronised probing across flows being an artifact.
	b.cycleIndex = 2
	b.pacingGain = bbrPacingGainCycle[b.cycleIndex]
	b.cycleStamp = now
}

func (b *BBR) updateCycle(c *Conn, rs RateSample, now sim.Time) {
	if b.state != bbrProbeBW {
		return
	}
	elapsed := now - b.cycleStamp
	advance := false
	switch {
	case b.pacingGain > 1:
		// Probe until inflight reaches the probed BDP (or a loss/ECN event
		// would cap it); at least one rtProp.
		advance = elapsed > b.rtProp && float64(rs.InFlight) >= b.bdp(b.pacingGain)
		if elapsed > 2*b.rtProp {
			advance = true
		}
	case b.pacingGain < 1:
		// Drain until inflight is at or below the unprobed BDP.
		advance = float64(rs.InFlight) <= b.bdp(1.0) || elapsed > b.rtProp
	default:
		advance = elapsed > b.rtProp
	}
	if advance {
		b.cycleIndex = (b.cycleIndex + 1) % len(bbrPacingGainCycle)
		b.pacingGain = bbrPacingGainCycle[b.cycleIndex]
		b.cycleStamp = now
	}
}

func (b *BBR) checkProbeRTT(c *Conn, rs RateSample, now sim.Time, expired bool) {
	if b.state != bbrProbeRTT && expired {
		b.state = bbrProbeRTT
		b.pacingGain = 1
		b.cwndGain = 1
		b.priorCwnd = c.Cwnd
		b.probeRTTDone = 0
	}
	if b.state == bbrProbeRTT {
		minCwnd := float64(bbrMinCwndSegments * c.cfg.MSS)
		if b.probeRTTDone == 0 && float64(rs.InFlight) <= minCwnd {
			b.probeRTTDone = now + bbrProbeRTTDuration
		}
		if b.probeRTTDone != 0 && now > b.probeRTTDone {
			b.rtPropStamp = now
			if c.Cwnd < b.priorCwnd {
				c.Cwnd = b.priorCwnd
			}
			if b.filledPipe {
				b.enterProbeBW(now)
			} else {
				b.state = bbrStartup
				b.pacingGain = bbrHighGain
				b.cwndGain = bbrHighGain
			}
		}
	}
}

// bdp returns gain × (btlBw × rtProp) in bytes, or a large fallback before
// the model has estimates.
func (b *BBR) bdp(gain float64) float64 {
	bw := b.bwFilter.max()
	if bw == 0 || b.rtProp == 0 {
		return 1 << 40
	}
	return gain * bw * b.rtProp.Seconds()
}

func (b *BBR) setCwnd(c *Conn, rs RateSample) {
	minCwnd := float64(bbrMinCwndSegments * c.cfg.MSS)
	if b.state == bbrProbeRTT {
		c.Cwnd = minCwnd
		return
	}
	target := b.bdp(b.cwndGain)
	if target == 1<<40 {
		return // keep the initial window until the model warms up
	}
	// Grow towards target by at most newly acked bytes (packet
	// conservation), never below the floor.
	if c.Cwnd < target {
		c.Cwnd += float64(rs.AckedBytes)
		if c.Cwnd > target {
			c.Cwnd = target
		}
	} else {
		c.Cwnd = target
	}
	if c.Cwnd < minCwnd {
		c.Cwnd = minCwnd
	}
}

// OnEnterRecovery: BBRv1 does not reduce its rate on loss; it conservatively
// caps the window at the current inflight for one round (as Linux does).
func (b *BBR) OnEnterRecovery(c *Conn) {
	b.priorCwnd = c.Cwnd
	inflight := float64(c.InFlight())
	min := float64(bbrMinCwndSegments * c.cfg.MSS)
	if inflight < min {
		inflight = min
	}
	c.Ssthresh = c.Cwnd // unused by BBR, kept coherent
	c.Cwnd = inflight
}

// OnExitRecovery restores the model-driven window.
func (b *BBR) OnExitRecovery(c *Conn) {
	if c.Cwnd < b.priorCwnd {
		c.Cwnd = b.priorCwnd
	}
}

// OnRTO collapses to the minimal window; the model estimates survive.
func (b *BBR) OnRTO(c *Conn) {
	b.priorCwnd = c.Cwnd
	c.Cwnd = float64(c.cfg.MSS)
}

// PacingRate paces at pacingGain × btlBw.
func (b *BBR) PacingRate(c *Conn) float64 {
	bw := b.bwFilter.max()
	if bw == 0 {
		// Before any estimate: pace at initial cwnd / initial RTT guess.
		rtt := c.SRTT()
		if rtt == 0 {
			return 0 // unpaced until the first RTT sample
		}
		bw = c.Cwnd / rtt.Seconds()
	}
	return b.pacingGain * bw
}

// maxFilter is a windowed maximum over a round-indexed sample stream (a
// simplified form of the Kathleen Nichols windowed min/max estimator).
type maxFilter struct {
	samples []struct {
		round int64
		v     float64
	}
}

func (f *maxFilter) update(round int64, v float64, window int64) {
	// Evict expired samples and any samples dominated by the new value.
	keep := f.samples[:0]
	for _, s := range f.samples {
		if s.round >= round-window && s.v > v {
			keep = append(keep, s)
		}
	}
	f.samples = append(keep, struct {
		round int64
		v     float64
	}{round, v})
}

func (f *maxFilter) max() float64 {
	m := 0.0
	for _, s := range f.samples {
		if s.v > m {
			m = s.v
		}
	}
	return m
}
