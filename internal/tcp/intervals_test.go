package tcp

import (
	"testing"
	"testing/quick"
)

func TestIntervalSetAddMerge(t *testing.T) {
	var s intervalSet
	if got := s.add(10, 20); got != 10 {
		t.Fatalf("fresh add should cover 10 bytes, got %d", got)
	}
	if got := s.add(15, 25); got != 5 {
		t.Fatalf("overlapping add should cover 5 new bytes, got %d", got)
	}
	if s.len() != 1 || s.max() != 25 {
		t.Fatalf("intervals should merge: %+v", s.ivs)
	}
	if got := s.add(30, 40); got != 10 || s.len() != 2 {
		t.Fatalf("disjoint add wrong: %d, %+v", got, s.ivs)
	}
	if got := s.add(20, 30); got != 5 {
		t.Fatalf("bridging add should cover the 25–30 gap only: %d", got)
	}
	if s.len() != 1 || s.max() != 40 {
		t.Fatalf("bridge should merge everything: %+v", s.ivs)
	}
	if s.add(12, 18) != 0 {
		t.Fatal("fully-covered add should report 0 new bytes")
	}
}

func TestIntervalSetEmptyAdd(t *testing.T) {
	var s intervalSet
	if s.add(5, 5) != 0 || s.add(7, 3) != 0 || s.len() != 0 {
		t.Fatal("degenerate ranges must be ignored")
	}
}

func TestIntervalSetTrimBelow(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	if got := s.trimBelow(15); got != 5 {
		t.Fatalf("trim should remove 5 bytes, got %d", got)
	}
	if s.contains(14) || !s.contains(15) {
		t.Fatal("trim boundary wrong")
	}
	if got := s.trimBelow(50); got != 15 {
		t.Fatalf("full trim should remove the rest (15), got %d", got)
	}
	if s.len() != 0 {
		t.Fatal("set should be empty after full trim")
	}
}

func TestIntervalSetQueries(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	if !s.contains(10) || !s.contains(19) || s.contains(20) || s.contains(25) {
		t.Fatal("contains wrong")
	}
	if s.nextUncovered(5) != 5 {
		t.Fatal("uncovered before first interval")
	}
	if s.nextUncovered(12) != 20 {
		t.Fatal("uncovered inside interval should skip to its end")
	}
	if s.nextUncovered(35) != 40 {
		t.Fatal("uncovered inside last interval")
	}
	if s.total() != 20 {
		t.Fatalf("total = %d", s.total())
	}
	s.clear()
	if s.len() != 0 || s.max() != 0 {
		t.Fatal("clear failed")
	}
}

// TestIntervalSetAgainstReference: compare against a brute-force bitmap for
// arbitrary operation sequences.
func TestIntervalSetAgainstReference(t *testing.T) {
	const space = 256
	f := func(ops []uint16) bool {
		var s intervalSet
		ref := make([]bool, space)
		for _, op := range ops {
			a := int64(op % space)
			b := int64((op >> 8) % space)
			if a > b {
				a, b = b, a
			}
			newBytes := s.add(a, b)
			var refNew int64
			for i := a; i < b; i++ {
				if !ref[i] {
					ref[i] = true
					refNew++
				}
			}
			if newBytes != refNew {
				return false
			}
		}
		// Check invariants: sorted, disjoint, queries agree.
		for i := 1; i < s.len(); i++ {
			if s.ivs[i].start <= s.ivs[i-1].end {
				return false
			}
		}
		var refTotal int64
		for i := 0; i < space; i++ {
			covered := ref[i]
			if covered {
				refTotal++
			}
			if s.contains(int64(i)) != covered {
				return false
			}
		}
		return s.total() == refTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTrimAgainstReference validates trimBelow against the bitmap.
func TestTrimAgainstReference(t *testing.T) {
	const space = 128
	f := func(adds []uint16, bound uint8) bool {
		var s intervalSet
		ref := make([]bool, space)
		for _, op := range adds {
			a := int64(op % space)
			b := int64((op >> 8) % space)
			if a > b {
				a, b = b, a
			}
			s.add(a, b)
			for i := a; i < b; i++ {
				ref[i] = true
			}
		}
		bd := int64(bound) % space
		removed := s.trimBelow(bd)
		var refRemoved int64
		for i := int64(0); i < bd; i++ {
			if ref[i] {
				refRemoved++
				ref[i] = false
			}
		}
		if removed != refRemoved {
			return false
		}
		for i := int64(0); i < space; i++ {
			if s.contains(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
