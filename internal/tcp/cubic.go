package tcp

import (
	"math"

	"cebinae/internal/sim"
)

// Cubic implements RFC 8312 CUBIC congestion control: the window follows a
// cubic function of time since the last reduction, anchored at the window
// size where the loss happened (W_max), with a TCP-friendly region to avoid
// underperforming Reno at low BDP, and optional fast convergence.
type Cubic struct {
	// C is the cubic scaling constant (segments/s³); Beta the
	// multiplicative decrease factor. RFC 8312 defaults.
	C    float64
	Beta float64
	// FastConvergence shrinks W_max further when losses come before the
	// previous W_max was reached, releasing bandwidth to newer flows.
	FastConvergence bool

	wMax      float64 // segments
	epochAt   sim.Time
	originW   float64 // segments at epoch start
	k         float64 // seconds to return to wMax
	ackCount  float64 // for Reno-friendly window estimate
	wTCP      float64 // segments
	epochInit bool
}

// NewCubic returns CUBIC with RFC 8312 defaults (C=0.4, β=0.7, fast
// convergence on), matching Linux.
func NewCubic() *Cubic {
	return &Cubic{C: 0.4, Beta: 0.7, FastConvergence: true}
}

// Name implements CongestionControl.
func (*Cubic) Name() string { return "cubic" }

// Init implements CongestionControl.
func (cu *Cubic) Init(c *Conn) { cu.reset() }

func (cu *Cubic) reset() {
	cu.wMax = 0
	cu.epochInit = false
}

// OnAck grows the window along the cubic (or Reno-friendly) trajectory.
func (cu *Cubic) OnAck(c *Conn, rs RateSample) {
	mss := float64(c.cfg.MSS)
	if c.Cwnd < c.Ssthresh {
		c.Cwnd += float64(rs.AckedBytes)
		if c.Cwnd > c.Ssthresh {
			c.Cwnd = c.Ssthresh
		}
		return
	}

	now := c.Engine().Now()
	cwndSeg := c.Cwnd / mss
	if !cu.epochInit {
		cu.epochInit = true
		cu.epochAt = now
		cu.originW = cwndSeg
		if cwndSeg < cu.wMax {
			cu.k = math.Cbrt((cu.wMax - cwndSeg) / cu.C)
		} else {
			cu.k = 0
			cu.wMax = cwndSeg
		}
		cu.ackCount = 0
		cu.wTCP = cwndSeg
	}

	t := (now - cu.epochAt).Seconds()
	// Target the cubic curve one RTT ahead, per RFC 8312 §4.1:
	// W_cubic(t) = C(t−K)³ + W_max.
	rtt := c.SRTT().Seconds()
	target := cu.C*math.Pow(t+rtt-cu.k, 3) + cu.wMax

	// Reno-friendly window (RFC 8312 §4.2).
	cu.ackCount += float64(rs.AckedBytes) / mss
	if rtt > 0 {
		cu.wTCP += 3 * (1 - cu.Beta) / (1 + cu.Beta) * (float64(rs.AckedBytes) / mss / cwndSeg)
	}
	if target < cu.wTCP {
		target = cu.wTCP
	}

	var inc float64
	if target > cwndSeg {
		inc = (target - cwndSeg) / cwndSeg * float64(rs.AckedBytes) / mss * mss
		// Cap growth at slow-start pace.
		if inc > float64(rs.AckedBytes) {
			inc = float64(rs.AckedBytes)
		}
	} else {
		inc = mss / (100 * cwndSeg) // minimal probing growth
	}
	c.Cwnd += inc
}

// OnRecoveryAck grows the window in slow start while below ssthresh —
// after an RTO the window restarts from one segment and must regrow while
// the scoreboard repairs losses (RFC 5681 §3.1); fast recovery entry sets
// cwnd = ssthresh, so this is a no-op there.
func (*Cubic) OnRecoveryAck(c *Conn, rs RateSample) {
	if c.Cwnd < c.Ssthresh {
		c.Cwnd += float64(rs.AckedBytes)
		if c.Cwnd > c.Ssthresh {
			c.Cwnd = c.Ssthresh
		}
	}
}

// OnEnterRecovery applies the β reduction and records W_max.
func (cu *Cubic) OnEnterRecovery(c *Conn) {
	mss := float64(c.cfg.MSS)
	cwndSeg := c.Cwnd / mss
	if cu.FastConvergence && cwndSeg < cu.wMax {
		cu.wMax = cwndSeg * (1 + cu.Beta) / 2
	} else {
		cu.wMax = cwndSeg
	}
	w := c.Cwnd * cu.Beta
	min := 2 * mss
	if w < min {
		w = min
	}
	c.Ssthresh = w
	c.Cwnd = w
	cu.epochInit = false
}

// OnExitRecovery implements CongestionControl.
func (cu *Cubic) OnExitRecovery(c *Conn) {
	c.Cwnd = c.Ssthresh
}

// OnRTO collapses the window and resets the cubic epoch.
func (cu *Cubic) OnRTO(c *Conn) {
	cu.OnEnterRecovery(c)
	c.Cwnd = float64(c.cfg.MSS)
}

// PacingRate implements CongestionControl: CUBIC is ACK-clocked.
func (*Cubic) PacingRate(c *Conn) float64 { return 0 }
