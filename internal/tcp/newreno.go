package tcp

// NewReno implements classic loss-based congestion control (RFC 5681/6582):
// slow start to ssthresh, additive increase of one MSS per RTT afterwards,
// halving on loss, with the connection layer providing NewReno partial-ACK
// recovery.
type NewReno struct{}

// NewNewReno returns the algorithm.
func NewNewReno() *NewReno { return &NewReno{} }

// Name implements CongestionControl.
func (*NewReno) Name() string { return "newreno" }

// Init implements CongestionControl.
func (*NewReno) Init(c *Conn) {}

// OnAck grows the window: +acked in slow start, +MSS²/cwnd in avoidance.
func (*NewReno) OnAck(c *Conn, rs RateSample) {
	mss := float64(c.cfg.MSS)
	if c.Cwnd < c.Ssthresh {
		c.Cwnd += float64(rs.AckedBytes)
		if c.Cwnd > c.Ssthresh {
			c.Cwnd = c.Ssthresh
		}
		return
	}
	c.Cwnd += mss * mss / c.Cwnd
}

// OnRecoveryAck grows the window in slow start while below ssthresh —
// after an RTO the window restarts from one segment and must regrow while
// the scoreboard repairs losses (RFC 5681 §3.1); fast recovery entry sets
// cwnd = ssthresh, so this is a no-op there.
func (*NewReno) OnRecoveryAck(c *Conn, rs RateSample) {
	if c.Cwnd < c.Ssthresh {
		c.Cwnd += float64(rs.AckedBytes)
		if c.Cwnd > c.Ssthresh {
			c.Cwnd = c.Ssthresh
		}
	}
}

// OnEnterRecovery halves the window (multiplicative decrease).
func (*NewReno) OnEnterRecovery(c *Conn) {
	half := c.Cwnd / 2
	min := 2 * float64(c.cfg.MSS)
	if half < min {
		half = min
	}
	c.Ssthresh = half
	c.Cwnd = half
}

// OnExitRecovery deflates the window back to ssthresh.
func (*NewReno) OnExitRecovery(c *Conn) {
	c.Cwnd = c.Ssthresh
}

// OnRTO collapses to one segment and restarts slow start.
func (*NewReno) OnRTO(c *Conn) {
	half := c.Cwnd / 2
	min := 2 * float64(c.cfg.MSS)
	if half < min {
		half = min
	}
	c.Ssthresh = half
	c.Cwnd = float64(c.cfg.MSS)
}

// PacingRate implements CongestionControl: Reno is ACK-clocked.
func (*NewReno) PacingRate(c *Conn) float64 { return 0 }
