package tcp

// intervalSet maintains a sorted list of disjoint half-open byte ranges.
// It backs both the receiver's out-of-order buffer and the sender's SACK
// scoreboard. The list stays short in practice (one entry per loss hole),
// so linear operations are fine.
type intervalSet struct {
	ivs []interval
}

// add merges [start, end) into the set, returning the number of bytes that
// were not previously covered.
func (s *intervalSet) add(start, end int64) int64 {
	if start >= end {
		return 0
	}
	newBytes := end - start
	out := s.ivs[:0:0]
	placed := false
	for _, iv := range s.ivs {
		switch {
		case iv.end < start:
			out = append(out, iv)
		case iv.start > end:
			if !placed {
				out = append(out, interval{start, end})
				placed = true
			}
			out = append(out, iv)
		default:
			// Overlap or adjacency: fold into the pending interval.
			overlapLo, overlapHi := max64(iv.start, start), min64(iv.end, end)
			if overlapHi > overlapLo {
				newBytes -= overlapHi - overlapLo
			}
			if iv.start < start {
				start = iv.start
			}
			if iv.end > end {
				end = iv.end
			}
		}
	}
	if !placed {
		out = append(out, interval{start, end})
	}
	s.ivs = out
	return newBytes
}

// trimBelow removes coverage below bound, returning the bytes removed.
func (s *intervalSet) trimBelow(bound int64) int64 {
	var removed int64
	out := s.ivs[:0]
	for _, iv := range s.ivs {
		switch {
		case iv.end <= bound:
			removed += iv.end - iv.start
		case iv.start < bound:
			removed += bound - iv.start
			out = append(out, interval{bound, iv.end})
		default:
			out = append(out, iv)
		}
	}
	s.ivs = out
	return removed
}

// contains reports whether seq is covered.
func (s *intervalSet) contains(seq int64) bool {
	for _, iv := range s.ivs {
		if seq < iv.start {
			return false
		}
		if seq < iv.end {
			return true
		}
	}
	return false
}

// nextUncovered returns the first byte ≥ seq that is not covered.
func (s *intervalSet) nextUncovered(seq int64) int64 {
	for _, iv := range s.ivs {
		if seq < iv.start {
			return seq
		}
		if seq < iv.end {
			seq = iv.end
		}
	}
	return seq
}

// max returns the highest covered byte boundary, or 0 when empty.
func (s *intervalSet) max() int64 {
	if len(s.ivs) == 0 {
		return 0
	}
	return s.ivs[len(s.ivs)-1].end
}

// total returns the covered byte count.
func (s *intervalSet) total() int64 {
	var t int64
	for _, iv := range s.ivs {
		t += iv.end - iv.start
	}
	return t
}

// clear empties the set.
func (s *intervalSet) clear() { s.ivs = s.ivs[:0] }

// len returns the number of disjoint ranges.
func (s *intervalSet) len() int { return len(s.ivs) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
