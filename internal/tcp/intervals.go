package tcp

// intervalSet maintains a sorted list of disjoint half-open byte ranges.
// It backs both the receiver's out-of-order buffer and the sender's SACK
// scoreboard. The list stays short in practice (one entry per loss hole),
// so linear operations are fine.
type intervalSet struct {
	ivs []interval
}

// add merges [start, end) into the set, returning the number of bytes that
// were not previously covered. The merge is performed in place: the hot
// path (SACK scoreboard updates on every ACK) only allocates when the
// backing array must grow, which amortises to nothing.
func (s *intervalSet) add(start, end int64) int64 {
	if start >= end {
		return 0
	}
	ivs := s.ivs
	n := len(ivs)
	newBytes := end - start

	// Locate the run ivs[i:j] of intervals overlapping or abutting
	// [start, end); everything before i sorts strictly below, everything
	// from j on strictly above.
	i := 0
	for i < n && ivs[i].end < start {
		i++
	}
	j, lo, hi := i, start, end
	for j < n && ivs[j].start <= end {
		iv := ivs[j]
		if oLo, oHi := max64(iv.start, start), min64(iv.end, end); oHi > oLo {
			newBytes -= oHi - oLo
		}
		if iv.start < lo {
			lo = iv.start
		}
		if iv.end > hi {
			hi = iv.end
		}
		j++
	}

	if i == j {
		// No overlap: open a one-slot gap at i.
		ivs = append(ivs, interval{})
		copy(ivs[i+1:], ivs[i:])
		ivs[i] = interval{lo, hi}
	} else {
		// Collapse the run into a single merged interval.
		ivs[i] = interval{lo, hi}
		ivs = append(ivs[:i+1], ivs[j:]...)
	}
	s.ivs = ivs
	return newBytes
}

// trimBelow removes coverage below bound, returning the bytes removed.
func (s *intervalSet) trimBelow(bound int64) int64 {
	var removed int64
	out := s.ivs[:0]
	for _, iv := range s.ivs {
		switch {
		case iv.end <= bound:
			removed += iv.end - iv.start
		case iv.start < bound:
			removed += bound - iv.start
			out = append(out, interval{bound, iv.end})
		default:
			out = append(out, iv)
		}
	}
	s.ivs = out
	return removed
}

// contains reports whether seq is covered.
func (s *intervalSet) contains(seq int64) bool {
	for _, iv := range s.ivs {
		if seq < iv.start {
			return false
		}
		if seq < iv.end {
			return true
		}
	}
	return false
}

// nextUncovered returns the first byte ≥ seq that is not covered.
func (s *intervalSet) nextUncovered(seq int64) int64 {
	for _, iv := range s.ivs {
		if seq < iv.start {
			return seq
		}
		if seq < iv.end {
			seq = iv.end
		}
	}
	return seq
}

// max returns the highest covered byte boundary, or 0 when empty.
func (s *intervalSet) max() int64 {
	if len(s.ivs) == 0 {
		return 0
	}
	return s.ivs[len(s.ivs)-1].end
}

// total returns the covered byte count.
func (s *intervalSet) total() int64 {
	var t int64
	for _, iv := range s.ivs {
		t += iv.end - iv.start
	}
	return t
}

// clear empties the set.
func (s *intervalSet) clear() { s.ivs = s.ivs[:0] }

// len returns the number of disjoint ranges.
func (s *intervalSet) len() int { return len(s.ivs) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
