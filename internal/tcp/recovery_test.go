package tcp_test

import (
	"testing"

	"cebinae/internal/metrics"
	"cebinae/internal/netem"
	"cebinae/internal/packet"
	"cebinae/internal/qdisc"
	"cebinae/internal/sim"
	"cebinae/internal/tcp"
)

// lossRig is a two-node path with a fault-injection shim on the data
// direction: sender → (lossy 10 Mbps link) → receiver.
type lossRig struct {
	eng   *sim.Engine
	conn  *tcp.Conn
	recv  *tcp.Receiver
	lossy *qdisc.Lossy
	meter *metrics.FlowMeter
}

func buildLossRig(t *testing.T, mutate func(l *qdisc.Lossy), cfg tcp.Config) *lossRig {
	t.Helper()
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	ab, ba := w.Connect(a, b, netem.LinkConfig{RateBps: 10e6, Delay: sim.Duration(5e6)})
	lossy := qdisc.NewLossy(qdisc.NewFIFO(1<<20), 1)
	mutate(lossy)
	ab.SetQdisc(lossy)
	ba.SetQdisc(qdisc.NewFIFO(1 << 20))
	a.AddRoute(b.ID, ab)
	b.AddRoute(a.ID, ba)

	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	cfg.Key = key
	conn := tcp.NewConn(eng, a, cfg)
	recv := tcp.NewReceiver(eng, b, tcp.ReceiverConfig{Key: key})
	m := &metrics.FlowMeter{}
	recv.GoodputAt = m.Record
	return &lossRig{eng: eng, conn: conn, recv: recv, lossy: lossy, meter: m}
}

// TestSingleLossFastRetransmit: one dropped segment is repaired by SACK
// fast retransmit — exactly one retransmission, no timeout.
func TestSingleLossFastRetransmit(t *testing.T) {
	r := buildLossRig(t, func(l *qdisc.Lossy) {
		l.DropNth = map[uint64]bool{30: true}
	}, tcp.Config{DataLimit: 1 << 20})
	r.eng.Run(sim.Duration(30e9))
	if got := r.recv.Stats.GoodputBytes; got != 1<<20 {
		t.Fatalf("transfer incomplete: %d of %d", got, 1<<20)
	}
	if r.conn.Stats.Timeouts != 0 {
		t.Fatalf("single loss must not need an RTO: %+v", r.conn.Stats)
	}
	if r.conn.Stats.Retransmits != 1 {
		t.Fatalf("expected exactly 1 retransmit, got %d", r.conn.Stats.Retransmits)
	}
	if r.conn.Stats.FastRecoveries != 1 {
		t.Fatalf("expected 1 fast recovery, got %d", r.conn.Stats.FastRecoveries)
	}
}

// TestBurstLossRecoversWithoutTimeout: SACK recovery must repair a burst of
// adjacent losses within one recovery episode (classic NewReno would need
// one RTT per hole; RFC 6675-style pipe accounting repairs them together).
func TestBurstLossRecoversWithoutTimeout(t *testing.T) {
	r := buildLossRig(t, func(l *qdisc.Lossy) {
		l.DropNth = map[uint64]bool{}
		for i := uint64(40); i < 48; i++ {
			l.DropNth[i] = true
		}
	}, tcp.Config{DataLimit: 1 << 20})
	r.eng.Run(sim.Duration(30e9))
	if got := r.recv.Stats.GoodputBytes; got != 1<<20 {
		t.Fatalf("transfer incomplete: %d", got)
	}
	if r.conn.Stats.Timeouts != 0 {
		t.Fatalf("burst loss should be SACK-repaired without RTO: %+v", r.conn.Stats)
	}
	if r.conn.Stats.Retransmits != 8 {
		t.Fatalf("expected 8 retransmits, got %d", r.conn.Stats.Retransmits)
	}
	if r.conn.Stats.FastRecoveries != 1 {
		t.Fatalf("one recovery episode expected, got %d", r.conn.Stats.FastRecoveries)
	}
}

// TestScatteredLossesOneWindow: several non-adjacent losses in one window
// are all repaired in a single recovery episode.
func TestScatteredLossesOneWindow(t *testing.T) {
	r := buildLossRig(t, func(l *qdisc.Lossy) {
		l.DropNth = map[uint64]bool{30: true, 34: true, 38: true}
	}, tcp.Config{DataLimit: 1 << 20})
	r.eng.Run(sim.Duration(30e9))
	if got := r.recv.Stats.GoodputBytes; got != 1<<20 {
		t.Fatalf("transfer incomplete: %d", got)
	}
	if r.conn.Stats.Timeouts != 0 || r.conn.Stats.Retransmits != 3 {
		t.Fatalf("scattered losses should cost 3 retransmits, 0 RTO: %+v", r.conn.Stats)
	}
}

// TestLostRetransmitFallsBackToRTO: when the retransmission itself is lost,
// the connection must recover via timeout and still complete.
func TestLostRetransmitFallsBackToRTO(t *testing.T) {
	r := buildLossRig(t, func(l *qdisc.Lossy) {
		// Kill the segment at seq 30·MSS twice: the original and its fast
		// retransmission; only the RTO-driven copy survives.
		l.DropSeqs = map[int64]int{30 * 1448: 2}
		l.DropRetransmits = true
	}, tcp.Config{DataLimit: 1 << 20})
	r.eng.Run(sim.Duration(60e9))
	if got := r.recv.Stats.GoodputBytes; got != 1<<20 {
		t.Fatalf("transfer incomplete after lost retransmit: %d (%+v)", got, r.conn.Stats)
	}
	if r.conn.Stats.Timeouts == 0 {
		t.Fatalf("lost retransmission must eventually RTO: %+v", r.conn.Stats)
	}
}

// TestHeavyRandomLossCompletes: 5% random loss — brutal, but the transfer
// must still complete correctly (integrity via receiver byte count).
func TestHeavyRandomLossCompletes(t *testing.T) {
	r := buildLossRig(t, func(l *qdisc.Lossy) {
		l.DropProb = 0.05
	}, tcp.Config{DataLimit: 512 << 10})
	r.eng.Run(sim.Duration(120e9))
	if got := r.recv.Stats.GoodputBytes; got != 512<<10 {
		t.Fatalf("transfer incomplete under 5%% loss: %d (%+v)", got, r.conn.Stats)
	}
}

// TestAllCCAsSurviveRandomLoss: each CCA completes a transfer under 2%
// random loss — guards the CC/recovery interaction for every algorithm.
func TestAllCCAsSurviveRandomLoss(t *testing.T) {
	for _, name := range []string{"newreno", "cubic", "bic", "vegas", "bbr", "dctcp", "scalable", "htcp", "illinois"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cc, _ := tcp.NewCC(name)
			r := buildLossRig(t, func(l *qdisc.Lossy) {
				l.DropProb = 0.02
			}, tcp.Config{DataLimit: 256 << 10, CC: cc})
			r.eng.Run(sim.Duration(120e9))
			if got := r.recv.Stats.GoodputBytes; got != 256<<10 {
				t.Fatalf("%s incomplete under loss: %d (%+v)", name, got, r.conn.Stats)
			}
		})
	}
}

// TestNoSpuriousRetransmits: a clean path must not retransmit at all.
func TestNoSpuriousRetransmits(t *testing.T) {
	r := buildLossRig(t, func(l *qdisc.Lossy) {}, tcp.Config{DataLimit: 1 << 20})
	r.eng.Run(sim.Duration(30e9))
	if r.conn.Stats.Retransmits != 0 || r.conn.Stats.Timeouts != 0 {
		t.Fatalf("clean path retransmitted: %+v", r.conn.Stats)
	}
	if got := r.recv.Stats.GoodputBytes; got != 1<<20 {
		t.Fatalf("transfer incomplete: %d", got)
	}
}

// TestFirstSegmentLost: the very first data packet is dropped; recovery
// must come from the RTO (no dupACKs possible) and the flow completes.
func TestFirstSegmentLost(t *testing.T) {
	r := buildLossRig(t, func(l *qdisc.Lossy) {
		l.DropNth = map[uint64]bool{1: true}
	}, tcp.Config{DataLimit: 64 << 10})
	r.eng.Run(sim.Duration(30e9))
	if got := r.recv.Stats.GoodputBytes; got != 64<<10 {
		t.Fatalf("transfer incomplete: %d (%+v)", got, r.conn.Stats)
	}
}

// TestReorderingTolerated: mild reordering (a delayed packet overtaken by
// two later ones) must not trigger fast retransmit (needs 3 dupACKs).
func TestReorderingTolerated(t *testing.T) {
	// Simulate reordering by dropping nothing but injecting the segments
	// through a path whose jitter can reorder at most adjacent packets —
	// the sender's own jitter is order-preserving, so instead we verify
	// the dupACK threshold directly: two dupACKs must not enter recovery.
	eng := sim.NewEngine()
	w := netem.NewNetwork(eng)
	a, b := w.NewNode("a"), w.NewNode("b")
	ab, ba := w.Connect(a, b, netem.LinkConfig{RateBps: 10e6, Delay: sim.Duration(5e6)})
	ab.SetQdisc(qdisc.NewFIFO(1 << 20))
	ba.SetQdisc(qdisc.NewFIFO(1 << 20))
	a.AddRoute(b.ID, ab)
	b.AddRoute(a.ID, ba)
	key := packet.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	conn := tcp.NewConn(eng, a, tcp.Config{Key: key, DataLimit: 1 << 30})
	tcp.NewReceiver(eng, b, tcp.ReceiverConfig{Key: key})
	eng.Run(sim.Duration(1e9))

	// Deliver two duplicate ACKs by hand: no recovery may start.
	before := conn.Stats.FastRecoveries
	for i := 0; i < 2; i++ {
		conn.Deliver(&packet.Packet{Flow: key.Reverse(), Flags: packet.FlagACK, Ack: conn.Delivered()})
	}
	if conn.Stats.FastRecoveries != before {
		t.Fatal("two dupACKs must not trigger fast retransmit")
	}
}
