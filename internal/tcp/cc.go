// Package tcp implements a packet-level TCP sender/receiver pair for the
// simulator with pluggable congestion control. The transport provides slow
// start, AIMD congestion avoidance, duplicate-ACK fast retransmit, NewReno
// partial-ACK recovery, RFC 6298 retransmission timeouts, delayed ACKs,
// optional ECN, and delivery-rate sampling (for BBR), which together are
// sufficient for the congestion phenomena the Cebinae paper studies to
// emerge: RTT unfairness, Cubic-vs-NewReno capture, BBR aggression, and
// Vegas starvation by loss-based algorithms.
package tcp

import (
	"sort"

	"cebinae/internal/sim"
)

// RateSample carries per-ACK delivery information to the congestion control
// module, in the style of Linux's tcp_rate sampling.
type RateSample struct {
	// AckedBytes is the number of bytes newly cumulatively acknowledged.
	AckedBytes int64
	// RTT is the round-trip sample for the most recently acked segment
	// (zero when the segment was retransmitted — Karn's algorithm).
	RTT sim.Time
	// DeliveryRate is the estimated delivery rate in bytes/second (zero
	// when no valid sample is available).
	DeliveryRate float64
	// IsAppLimited marks samples taken while the sender had no data to
	// send; rate filters should not let such samples lower their estimate.
	IsAppLimited bool
	// RoundStart is true when this ACK begins a new round trip.
	RoundStart bool
	// InFlight is the bytes outstanding after processing this ACK.
	InFlight int64
	// Delivered is the connection's total delivered-byte counter.
	Delivered int64
}

// CongestionControl is the pluggable algorithm interface. Implementations
// mutate the connection's cwnd/ssthresh (in bytes) through the hooks; an
// algorithm that paces (BBR) additionally reports a pacing rate.
type CongestionControl interface {
	// Name returns the algorithm's short name (e.g. "cubic").
	Name() string
	// Init is called once when the connection starts.
	Init(c *Conn)
	// OnAck is called for every ACK that advances snd_una outside of
	// loss recovery.
	OnAck(c *Conn, rs RateSample)
	// OnRecoveryAck is called for ACKs processed during fast recovery
	// (needed by algorithms, like BBR, that track delivery continuously).
	OnRecoveryAck(c *Conn, rs RateSample)
	// OnEnterRecovery is called once on the third duplicate ACK, before
	// the fast retransmit. It must set c.Ssthresh (and may set c.Cwnd).
	OnEnterRecovery(c *Conn)
	// OnExitRecovery is called when recovery completes (full ACK).
	OnExitRecovery(c *Conn)
	// OnRTO is called on a retransmission timeout.
	OnRTO(c *Conn)
	// PacingRate returns the bytes/second at which segments should be
	// paced out, or 0 to use pure ACK clocking.
	PacingRate(c *Conn) float64
}

// ECNReactor is an optional extension: algorithms that implement it (DCTCP)
// receive every ECN-Echo themselves instead of the connection's default
// RFC 3168 once-per-RTT window halving.
type ECNReactor interface {
	// OnECE is called for each ACK carrying an ECN-Echo.
	OnECE(c *Conn, rs RateSample)
}

// ccRegistry maps algorithm names to constructors so experiment configs can
// reference CCAs by string.
var ccRegistry = map[string]func() CongestionControl{
	"newreno":  func() CongestionControl { return NewNewReno() },
	"cubic":    func() CongestionControl { return NewCubic() },
	"bic":      func() CongestionControl { return NewBIC() },
	"vegas":    func() CongestionControl { return NewVegas() },
	"bbr":      func() CongestionControl { return NewBBR() },
	"dctcp":    func() CongestionControl { return NewDCTCP() },
	"scalable": func() CongestionControl { return NewScalable() },
	"htcp":     func() CongestionControl { return NewHTCP() },
	"illinois": func() CongestionControl { return NewIllinois() },
}

// NewCC constructs a congestion control module by name; the boolean is
// false for unknown names.
func NewCC(name string) (CongestionControl, bool) {
	f, ok := ccRegistry[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// CCNames returns the registered algorithm names in sorted order, so
// lists built from the registry (usage strings, sweep enumerations) are
// identical across runs.
func CCNames() []string {
	names := make([]string, 0, len(ccRegistry))
	for n := range ccRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
