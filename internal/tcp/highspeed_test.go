package tcp

import (
	"testing"

	"cebinae/internal/sim"
)

func TestScalableMIMDGrowth(t *testing.T) {
	s := NewScalable()
	c := ccConn(s)
	c.Cwnd = 100 * 1448 // well above the legacy window
	c.Ssthresh = c.Cwnd
	start := c.Cwnd
	// One window of ACKs: MIMD adds a·window = 1% of the window per RTT.
	for i := 0; i < 100; i++ {
		c.cc.OnAck(c, RateSample{AckedBytes: 1448})
	}
	gain := (c.Cwnd - start) / start
	if gain < 0.009 || gain > 0.011 {
		t.Fatalf("Scalable should grow 1%%/RTT, grew %.4f", gain)
	}
}

func TestScalableLegacyRegionIsReno(t *testing.T) {
	s := NewScalable()
	c := ccConn(s) // 10 segments < LegacyWindow
	c.Ssthresh = c.Cwnd
	start := c.Cwnd
	for i := 0; i < 10; i++ {
		c.cc.OnAck(c, RateSample{AckedBytes: 1448})
	}
	gain := c.Cwnd - start
	if gain < 1300 || gain > 1600 {
		t.Fatalf("legacy region should grow ≈1 MSS/RTT, grew %v", gain)
	}
}

func TestScalableShallowBackoff(t *testing.T) {
	s := NewScalable()
	c := ccConn(s)
	c.Cwnd = 100 * 1448
	c.cc.OnEnterRecovery(c)
	want := 0.875 * 100 * 1448
	if c.Cwnd < want*0.99 || c.Cwnd > want*1.01 {
		t.Fatalf("Scalable backoff should be 12.5%%: %v", c.Cwnd)
	}
}

func TestHTCPLowSpeedRegime(t *testing.T) {
	h := NewHTCP()
	c := ccConn(h)
	c.Ssthresh = c.Cwnd
	// Immediately after a loss (elapsed < Δ_L) the step is Reno-like.
	h.lastLossAt = c.eng.Now()
	start := c.Cwnd
	for i := 0; i < 10; i++ {
		c.cc.OnAck(c, RateSample{AckedBytes: 1448})
	}
	gain := (c.Cwnd - start) / 1448
	if gain > 2.5 {
		t.Fatalf("H-TCP within Δ_L should stay near 1 seg/RTT, grew %.2f", gain)
	}
}

func TestHTCPAcceleratesWithTime(t *testing.T) {
	h := NewHTCP()
	c := ccConn(h)
	c.Ssthresh = c.Cwnd
	h.lastLossAt = 0
	// Advance the virtual clock 5 s past the loss: α(Δ) grows quadratically.
	c.eng.Schedule(sim.Duration(5e9), func() {})
	c.eng.RunAll()
	alphaLate := h.alphaNow(c.eng.Now())
	if alphaLate < 30 {
		t.Fatalf("H-TCP α should be large 5 s after loss: %.1f", alphaLate)
	}
	if early := h.alphaNow(sim.Duration(500e6)); early != 1 {
		t.Fatalf("α within Δ_L must be 1, got %v", early)
	}
}

func TestHTCPAdaptiveBeta(t *testing.T) {
	h := NewHTCP()
	c := ccConn(h)
	c.Cwnd = 100 * 1448
	// Small RTT spread ⇒ β near min/max ratio, clamped to [0.5, 0.8].
	h.minRTT = sim.Duration(20e6)
	h.maxRTT = sim.Duration(22e6)
	c.cc.OnEnterRecovery(c)
	if h.beta != 0.8 {
		t.Fatalf("tight RTT spread should clamp β to 0.8, got %v", h.beta)
	}
	c.Cwnd = 100 * 1448
	h.minRTT = sim.Duration(20e6)
	h.maxRTT = sim.Duration(100e6)
	c.cc.OnEnterRecovery(c)
	if h.beta != 0.5 {
		t.Fatalf("wide RTT spread should clamp β to 0.5, got %v", h.beta)
	}
}

func TestIllinoisAlphaRespondsToDelay(t *testing.T) {
	il := NewIllinois()
	c := ccConn(il)
	c.Ssthresh = c.Cwnd - 1448
	base := sim.Duration(20e6)

	feedRound := func(rtt sim.Time) {
		il.roundAt = 0
		c.cc.OnAck(c, RateSample{AckedBytes: 1448, RTT: rtt, Delivered: 1, InFlight: 1448})
	}
	// Establish the delay profile: base 20 ms, max 60 ms.
	il.baseRTT = base
	il.maxRTT = sim.Duration(60e6)
	// Low delay round ⇒ α at maximum.
	feedRound(base + sim.Duration(1e6))
	if il.alpha < il.AlphaMax*0.9 {
		t.Fatalf("low delay should give α≈αmax, got %v", il.alpha)
	}
	// High delay round ⇒ α near minimum, β near maximum.
	feedRound(sim.Duration(58e6))
	if il.alpha > 1 {
		t.Fatalf("high delay should shrink α, got %v", il.alpha)
	}
	if il.beta < 0.4 {
		t.Fatalf("high delay should raise β, got %v", il.beta)
	}
}

func TestIllinoisBackoffUsesBeta(t *testing.T) {
	il := NewIllinois()
	c := ccConn(il)
	c.Cwnd = 100 * 1448
	il.beta = 0.125
	c.cc.OnEnterRecovery(c)
	want := 0.875 * 100 * 1448
	if c.Cwnd < want*0.99 || c.Cwnd > want*1.01 {
		t.Fatalf("Illinois low-delay backoff should be 12.5%%: %v", c.Cwnd)
	}
}

func TestDCTCPProportionalReduction(t *testing.T) {
	d := NewDCTCP()
	c := ccConn(d)
	c.Ssthresh = c.Cwnd
	// Half the window's ACKs marked ⇒ F = 0.5; with α₀ = 1, α stays high
	// and the reduction is ≈ α/2 when the window closes.
	start := c.Cwnd
	for i := 0; i < 5; i++ {
		d.OnAck(c, RateSample{AckedBytes: 1448, Delivered: int64(i) * 1448, InFlight: 1 << 20})
	}
	for i := 5; i < 10; i++ {
		d.OnECE(c, RateSample{AckedBytes: 1448, Delivered: int64(i) * 1448, InFlight: 1 << 20})
	}
	// Close the window (Delivered passes windowEnd = 0 + ... first call set
	// windowEnd; force a final closing sample).
	d.OnECE(c, RateSample{AckedBytes: 1448, Delivered: 1 << 30, InFlight: 0})
	if c.Cwnd >= start {
		t.Fatalf("DCTCP must reduce on a marked window: %v -> %v", start, c.Cwnd)
	}
	if c.Cwnd < start*0.4 {
		t.Fatalf("DCTCP reduction should be proportional (≤α/2), not a collapse: %v -> %v", start, c.Cwnd)
	}
}

func TestDCTCPKeepsLossResponse(t *testing.T) {
	d := NewDCTCP()
	c := ccConn(d)
	c.Cwnd = 100 * 1448
	c.cc.OnEnterRecovery(c)
	if c.Cwnd != 50*1448 {
		t.Fatalf("DCTCP must still halve on loss: %v", c.Cwnd)
	}
}
